/**
 * @file
 * Multi-GPU DataParallel scaling demo (the paper's Fig. 6): epoch
 * time of GCN and GAT on MNIST-superpixel graphs at 1/2/4/8 GPUs.
 *
 * Usage: multigpu_scaling [num_graphs] [batch_size]
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace gnnperf;

int
main(int argc, char **argv)
{
    MnistSuperpixelConfig cfg;
    cfg.numGraphs = argc > 1 ? std::atoll(argv[1]) : 600;
    const int64_t batch = argc > 2 ? std::atoll(argv[2]) : 256;

    std::printf("generating %ld MNIST superpixel graphs...\n",
                cfg.numGraphs);
    GraphDataset dataset = makeMnistSuperpixels(cfg);
    DatasetInfo info = dataset.info();
    std::printf("%s: avg %.1f nodes, %.1f edges per graph\n",
                info.name.c_str(), info.avgNodes, info.avgEdges);

    std::vector<MultiGpuCell> cells = runMultiGpuScaling(
        dataset, {ModelKind::GCN, ModelKind::GAT}, {batch},
        {1, 2, 4, 8}, /*seed=*/3);

    std::printf("\n%s",
                renderMultiGpuTable(dataset.name, cells).c_str());
    std::printf("\nExpected shape (paper): mild gains 1→4 GPUs "
                "(loading-bound), little or negative gain at 8.\n");
    return 0;
}
