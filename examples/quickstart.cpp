/**
 * @file
 * Quickstart: train one GNN on a small synthetic protein dataset under
 * both framework backends and compare accuracy, simulated epoch time,
 * and peak device memory.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "common/string_utils.hh"

using namespace gnnperf;

int
main()
{
    // A small ENZYMES-like dataset (120 graphs, 6 classes).
    GraphDataset dataset = makeEnzymes(/*seed=*/42, /*num_graphs=*/120);
    std::printf("dataset: %s — %zu graphs, %ld features, %ld classes\n",
                dataset.name.c_str(), dataset.graphs.size(),
                dataset.numFeatures, dataset.numClasses);

    // One stratified fold (8:1:1 split).
    std::vector<FoldSplit> folds =
        stratifiedKFold(dataset.labels(), 10, /*seed=*/1);
    const FoldSplit &fold = folds.front();

    for (FrameworkKind fw : allFrameworks()) {
        TrainOptions opts;
        opts.maxEpochs = 15;
        opts.seed = 7;
        GraphTrainResult r = trainGraphTask(ModelKind::GCN,
                                            getBackend(fw), dataset,
                                            fold, opts);
        std::printf(
            "GCN under %-3s: test acc %5.1f%%  epoch %7.2f ms  "
            "(load %5.2f ms, fwd %5.2f ms, bwd %5.2f ms)  "
            "peak mem %s  GPU util %4.1f%%\n",
            frameworkName(fw), r.testAccuracy * 100.0,
            r.epochTime * 1e3, r.profile.breakdown.dataLoading * 1e3,
            r.profile.breakdown.forward * 1e3,
            r.profile.breakdown.backward * 1e3,
            formatBytes(r.profile.peakMemoryBytes).c_str(),
            r.profile.gpuUtilization * 100.0);
    }
    std::printf("\nExpected shape (paper): PyG faster than DGL, mostly "
                "due to data loading.\n");
    return 0;
}
