/**
 * @file
 * Trace dump: run one training iteration of a chosen model/framework,
 * replay its trace, and write (a) a Chrome trace-event JSON viewable
 * in chrome://tracing or Perfetto, and (b) an nvprof-style per-kernel
 * CSV summary — the offline equivalent of the paper's profiler views.
 *
 * Usage: trace_dump [model] [framework] [out_prefix]
 */

#include <cstdio>
#include <string>

#include "backends/backend.hh"
#include "common/fs.hh"
#include "common/string_utils.hh"
#include "core/config.hh"
#include "data/tu_dataset.hh"
#include "device/profiler.hh"
#include "device/trace_export.hh"
#include "models/model_factory.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"

using namespace gnnperf;

int
main(int argc, char **argv)
{
    const ModelKind kind =
        modelKindFromName(argc > 1 ? argv[1] : "GAT");
    const std::string fw_name = argc > 2 ? argv[2] : "DGL";
    const std::string prefix = argc > 3 ? argv[3] : "gnnperf_trace";
    const FrameworkKind fw = iequals(fw_name, "dgl")
        ? FrameworkKind::DGL : FrameworkKind::PyG;
    const Backend &backend = getBackend(fw);

    GraphDataset dataset = makeEnzymes(/*seed=*/42, /*num_graphs=*/128);
    std::vector<const Graph *> graphs;
    for (const Graph &g : dataset.graphs)
        graphs.push_back(&g);

    Profiler &prof = Profiler::instance();
    prof.reset();
    prof.setEnabled(true);

    Hyperparameters hp = graphTaskHyperparameters(
        kind, dataset.numFeatures, dataset.numClasses, /*seed=*/1);
    auto model = makeModel(kind, backend, hp.model);
    nn::Adam optimizer(model->parameters(), hp.train.lr);

    BatchedGraph batch;
    {
        PhaseScope phase(Phase::DataLoading);
        batch = backend.collate(graphs);
    }
    {
        PhaseScope phase(Phase::Forward);
        Var logits = model->forward(batch);
        PhaseScope loss_phase(Phase::Other);
        Var loss = nn::crossEntropy(logits, batch.graphLabels);
        PhaseScope bwd_phase(Phase::Backward);
        model->zeroGrad();
        loss.backward();
    }
    {
        PhaseScope phase(Phase::Update);
        optimizer.step();
    }

    const CostModel &cost = CostModel::defaultModel();
    const double dispatch = backend.dispatchOverhead();
    TimelineResult t = Timeline::replay(prof.trace(), cost, dispatch,
                                        prof.layerNames());

    const std::string json_path = prefix + ".json";
    const std::string csv_path = prefix + "_kernels.csv";
    const std::string phases_path = prefix + "_phases.csv";
    writeFile(json_path,
              traceToChromeJson(prof.trace(), cost, dispatch));
    writeFile(csv_path,
              kernelSummaryToCsv(summarizeKernels(prof.trace(), cost)));
    writeFile(phases_path, timelineToCsv(t));

    std::printf("%s under %s: one iteration over %zu graphs\n",
                modelName(kind), backend.name(), graphs.size());
    std::printf("  simulated time : %.3f ms (%zu kernel launches)\n",
                t.elapsed * 1e3, t.kernelLaunches);
    std::printf("  GPU utilization: %.1f%%\n", t.utilization() * 100.0);
    std::printf("  wrote %s (chrome://tracing), %s, %s\n",
                json_path.c_str(), csv_path.c_str(),
                phases_path.c_str());

    std::printf("\n  top kernels by modelled GPU time:\n");
    auto rows = summarizeKernels(prof.trace(), cost);
    for (std::size_t i = 0; i < rows.size() && i < 8; ++i)
        std::printf("    %-22s ×%-5zu %8.1f µs\n",
                    rows[i].name.c_str(), rows[i].count,
                    rows[i].gpuSeconds * 1e6);
    return 0;
}
