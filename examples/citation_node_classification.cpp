/**
 * @file
 * Node classification on a citation network (the paper's Table IV
 * workload) for a user-chosen model and framework.
 *
 * Usage: citation_node_classification [model] [framework] [dataset]
 *                                     [epochs]
 *   model     GCN | GAT | SAGE | GIN | MoNet | GatedGCN  (default GCN)
 *   framework PyG | DGL                                   (default PyG)
 *   dataset   cora | pubmed                               (default cora)
 *   epochs    positive integer                            (default 60)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"
#include "common/string_utils.hh"

using namespace gnnperf;

int
main(int argc, char **argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "GCN";
    const std::string fw_name = argc > 2 ? argv[2] : "PyG";
    const std::string ds_name = argc > 3 ? argv[3] : "cora";
    const int epochs = argc > 4 ? std::atoi(argv[4]) : 60;

    const ModelKind kind = modelKindFromName(model_name);
    const FrameworkKind fw = iequals(fw_name, "dgl")
        ? FrameworkKind::DGL : FrameworkKind::PyG;

    std::printf("generating %s...\n", ds_name.c_str());
    NodeDataset dataset = iequals(ds_name, "pubmed")
        ? makePubMed() : makeCora();
    DatasetInfo info = dataset.info();
    std::printf("%s: %ld nodes, %.0f edges, %ld features, %ld classes\n",
                info.name.c_str(),
                static_cast<int64_t>(info.avgNodes), info.avgEdges,
                info.numFeatures, info.numClasses);

    TrainOptions opts;
    opts.maxEpochs = epochs;
    opts.seed = 3;
    opts.verbose = true;
    NodeTrainResult r = trainNodeTask(kind, getBackend(fw), dataset,
                                      opts);

    std::printf("\n%s under %s on %s\n", modelName(kind),
                frameworkName(fw), dataset.name.c_str());
    std::printf("  test accuracy   : %.1f%% (best val %.1f%%)\n",
                r.testAccuracy * 100.0, r.bestValAccuracy * 100.0);
    std::printf("  epochs run      : %d\n", r.epochsRun);
    std::printf("  time per epoch  : %.4f s (simulated 2080Ti)\n",
                r.epochTime);
    std::printf("  total time      : %.2f s (incl. evaluation)\n",
                r.totalTime);
    std::printf("  GPU utilization : %.1f%%\n",
                r.profile.gpuUtilization * 100.0);
    std::printf("  peak memory     : %s\n",
                formatBytes(r.profile.peakMemoryBytes).c_str());
    std::printf("  kernels/epoch   : %zu\n",
                r.profile.kernelsPerEpoch);
    return 0;
}
