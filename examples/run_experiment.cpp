/**
 * @file
 * General experiment runner — the kitchen-sink CLI over the public
 * API. Runs any model × framework × dataset combination with explicit
 * knobs and prints the paper-style row plus the profile.
 *
 * Usage:
 *   run_experiment --task node|graph [--model GCN]
 *                  [--dataset cora|pubmed|enzymes|dd|mnist]
 *                  [--epochs N] [--folds N] [--seeds N]
 *                  [--graphs N] [--verbose]
 *                  [--threads N]
 *                  [--ir eager|graph]
 *                  [--allocator direct|caching]
 *                  [--stats-out FILE] [--events-out FILE]
 *                  [--roofline-out FILE] [--bench-out FILE]
 *                  [--trace-out FILE] [--hwprof[=sw]] [--version]
 *
 * Both frameworks are always run and compared side by side, as in the
 * paper's tables. Flags accept both `--key value` and `--key=value`.
 *
 * --threads sets the host thread-pool width for every kernel (default:
 * GNNPERF_THREADS, else hardware concurrency). `--threads 1` runs the
 * exact historical serial path; any width is byte-identical on the
 * deterministic kernels, so accuracy and logical-memory series match
 * across thread counts.
 *
 * --ir selects the dispatch path (default: eager; GNNPERF_IR
 * overrides the default). `graph` records each training iteration
 * into the op-graph IR, fuses gather→elementwise→scatter chains into
 * single launches and pre-places the iteration's allocations before
 * replaying (src/ir, docs/IR.md). Both paths are numerically
 * bit-identical at every thread width; only launch counts, spans and
 * the reserved-pool series change. BENCH JSONs carry the `ir.*`
 * dispatch series either way.
 *
 * --allocator selects the device allocator for the process (default:
 * caching; GNNPERF_ALLOCATOR overrides the default). Logical peak
 * memory (the Fig. 4 number) is allocator-invariant; only the
 * reserved-pool numbers and device allocation counts change.
 *
 * --stats-out writes the metrics registry's JSON snapshot after the
 * run; --events-out writes the per-epoch run-event log as JSONL.
 * Either flag turns stats sampling on for the process.
 *
 * --roofline-out re-runs the configuration with per-epoch roofline
 * attribution, prints the Fig-5-style utilization table plus the
 * per-kernel breakdowns, and writes the JSON suite (obs/roofline.hh).
 *
 * --bench-out writes a BENCH baseline: the per-row performance series
 * (epoch/total seconds, accuracy, epoch count) plus the per-framework
 * stats counters, as the flat JSON `gnnperf_diff` compares. Turns
 * stats sampling on.
 *
 * --trace-out writes the merged execution trace (obs/exec_trace.hh):
 * simulated host/GPU tracks, real wall-clock host spans and the
 * per-device memory timeline in one Chrome/Perfetto JSON, and prints
 * the cuda peak-attribution table. GNNPERF_TRACE=FILE is the env
 * equivalent (the flag wins when both are set). Inspect or merge the
 * files with tools/gnnperf_trace.
 *
 * --hwprof turns on the hardware-counter profiler (obs/hwprof.hh):
 * roofline output gains Measured columns (IPC, cache-miss rate, an
 * empirical bound class) and a modeled-vs-measured agreement verdict
 * per kernel, stats/BENCH JSONs gain hwprof.* series, and the trace
 * gains pid-4 counter tracks. --hwprof=sw forces the software
 * fallback tier (rusage + /proc); when perf_event_open is denied the
 * profiler falls back to it automatically and never fails the run.
 * GNNPERF_HWPROF=1|sw is the env equivalent (the flag wins). All
 * non-hwprof numerics are byte-identical with the profiler on or off.
 *
 * --version prints build provenance (git, compiler, build type,
 * sanitizers) and exits.
 *
 * Examples:
 *   run_experiment --task node --model GAT --dataset cora --epochs 100
 *   run_experiment --task graph --model GatedGCN --dataset enzymes \
 *                  --epochs 20 --folds 3
 *   run_experiment --task node --model GCN --dataset cora --epochs 3 \
 *                  --stats-out stats.json --events-out events.jsonl
 *   run_experiment --task graph --model GatedGCN --dataset enzymes \
 *                  --graphs 60 --epochs 2 --folds 1 \
 *                  --roofline-out roofline.json --bench-out bench.json
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/buildinfo.hh"
#include "common/fs.hh"
#include "common/logging.hh"
#include "common/string_utils.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "device/device.hh"
#include "device/trace_export.hh"
#include "ir/ir.hh"
#include "obs/diff.hh"
#include "obs/exec_trace.hh"
#include "obs/hwprof.hh"
#include "obs/roofline.hh"
#include "obs/stats.hh"
#include "obs/stats_export.hh"
#include "parallel/thread_pool.hh"

using namespace gnnperf;

namespace {

/** Minimal parser accepting --key value and --key=value. */
std::map<std::string, std::string>
parseArgs(int argc, char **argv)
{
    std::map<std::string, std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            gnnperf_fatal("unexpected argument: ", key);
        key = key.substr(2);
        const std::size_t eq = key.find('=');
        if (eq != std::string::npos) {
            args[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (key == "verbose" || key == "hwprof" ||
                   key == "version") {
            args[key] = "1";
        } else {
            if (i + 1 >= argc)
                gnnperf_fatal("--", key, " needs a value");
            args[key] = argv[++i];
        }
    }
    return args;
}

std::string
get(const std::map<std::string, std::string> &args, const char *key,
    const std::string &fallback)
{
    auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
}

int64_t
getInt(const std::map<std::string, std::string> &args, const char *key,
       int64_t fallback)
{
    auto it = args.find(key);
    return it == args.end() ? fallback : std::atoll(it->second.c_str());
}

/** Write --stats-out / --events-out artifacts after the run. */
void
writeStatsOutputs(const std::map<std::string, std::string> &args)
{
    const std::string stats_path = get(args, "stats-out", "");
    const std::string events_path = get(args, "events-out", "");
    // Mirror the counter totals into hwprof.* gauges so the stats
    // snapshot carries them (no-op with the profiler off).
    hwprof::publishStats();
    if (!stats_path.empty()) {
        writeFile(stats_path, stats::statsToJson());
        std::printf("wrote %s\n", stats_path.c_str());
    }
    if (!events_path.empty()) {
        writeFile(events_path, stats::eventsToJsonl());
        std::printf("wrote %s\n", events_path.c_str());
    }
}

/** Print the roofline tables and write the JSON suite. */
void
writeRooflineOutputs(const std::string &path,
                     const std::vector<RooflineReport> &suite)
{
    // State the counter tier up front so a fallback run says so in
    // the report (acceptance criterion for denied perf_event_open).
    for (const auto &report : suite) {
        if (report.hwprofTier != hwprof::Tier::Off) {
            std::printf("hwprof: %s tier — %s\n",
                        hwprof::tierName(report.hwprofTier),
                        report.hwprofTierReason.c_str());
            break;
        }
    }
    std::printf("%s\n", renderRooflineTable(suite).c_str());
    for (const auto &report : suite) {
        std::printf("%s\n%s\n", report.label.c_str(),
                    renderRooflineKernels(report).c_str());
    }
    writeFile(path, rooflineSuiteToJson(suite));
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Per-framework stats counters worth gating on: the counters whose
 * names carry the framework, so both frameworks' work shows up in one
 * process-wide snapshot without double counting.
 */
void
appendStatsSeries(std::vector<std::pair<std::string, double>> &series)
{
    static const char *kTracked[] = {
        "backend.pyg.edges_touched", "backend.pyg.collate_bytes",
        "backend.dgl.edges_touched", "backend.dgl.collate_bytes",
        "backend.dgl.dispatch_ops", "kernel.spmm.nnz",
    };
    for (const auto &snap : stats::Registry::instance().snapshotAll()) {
        for (const char *name : kTracked) {
            if (snap.name == name)
                series.emplace_back("stats." + snap.name, snap.value);
        }
    }
}

/** Write the BENCH baseline JSON for the run's rows. */
void
writeBenchOutput(const std::string &path, const std::string &bench_name,
                 std::vector<std::pair<std::string, double>> series)
{
    appendStatsSeries(series);
    appendAllocatorSeries(series);
    appendParallelSeries(series);
    appendIrSeries(series);
    appendHwprofSeries(series);
    writeFile(path, diff::baselineToJson(bench_name, series));
    std::printf("wrote %s\n", path.c_str());
}

/** --hwprof[=MODE], falling back to GNNPERF_HWPROF (flag wins). */
std::string
hwprofMode(const std::map<std::string, std::string> &args)
{
    auto it = args.find("hwprof");
    if (it != args.end())
        return it->second;
    if (const char *env = std::getenv("GNNPERF_HWPROF"))
        return env;
    return "";
}

/** --trace-out FILE, falling back to GNNPERF_TRACE=FILE. */
std::string
tracePath(const std::map<std::string, std::string> &args)
{
    std::string path = get(args, "trace-out", "");
    if (path.empty()) {
        if (const char *env = std::getenv("GNNPERF_TRACE"))
            path = env;
    }
    return path;
}

/** Print the peak-attribution table and write the merged trace. */
void
writeTraceOutput(const std::string &path)
{
    if (path.empty())
        return;
    ExecTrace &trace = ExecTrace::instance();
    trace.disable();
    std::printf("%s\n", trace.peakTable(DeviceKind::Cuda).c_str());
    trace.writeTo(path);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = parseArgs(argc, argv);
    if (args.count("version") > 0) {
        std::printf("%s\n",
                    buildinfo::versionLine("run_experiment").c_str());
        return 0;
    }
    const std::string task = get(args, "task", "graph");
    const ModelKind model =
        modelKindFromName(get(args, "model", "GCN"));
    const std::string dataset_name =
        get(args, "dataset", task == "node" ? "cora" : "enzymes");
    const bool verbose = args.count("verbose") > 0;
    const int64_t threads = getInt(args, "threads", 0);
    if (threads > 0)
        par::ThreadPool::instance().setNumThreads(
            static_cast<int>(threads));
    const std::string allocator = get(args, "allocator", "");
    if (!allocator.empty()) {
        DeviceManager::instance().setAllocator(
            allocatorKindFromName(allocator));
    }
    const std::string ir_mode = get(args, "ir", "");
    if (!ir_mode.empty())
        ir::setMode(ir::modeFromString(ir_mode.c_str()));
    const std::string roofline_path = get(args, "roofline-out", "");
    const std::string bench_path = get(args, "bench-out", "");
    if (args.count("stats-out") > 0 || args.count("events-out") > 0 ||
        !bench_path.empty())
        stats::setSamplingEnabled(true);
    // Enable before dataset construction so the memory timeline covers
    // the dataset's allocations too.
    const std::string trace_path = tracePath(args);
    if (!trace_path.empty())
        ExecTrace::instance().enable();
    // Counter profiling starts before the dataset too, so warm-up
    // faults land in the aggregates rather than the first kernel.
    hwprof::configure(hwprofMode(args));

    if (task == "node") {
        NodeDataset ds;
        if (iequals(dataset_name, "cora"))
            ds = makeCora();
        else if (iequals(dataset_name, "pubmed"))
            ds = makePubMed();
        else
            gnnperf_fatal("node task supports cora|pubmed, got ",
                          dataset_name);
        const int epochs =
            static_cast<int>(getInt(args, "epochs", 60));
        const int seeds = static_cast<int>(getInt(args, "seeds", 1));
        auto rows = runNodeClassification(ds, {model}, seeds, epochs,
                                          verbose);
        std::printf("%s\n", renderNodeTable(ds.name, rows).c_str());
        if (!bench_path.empty()) {
            std::vector<std::pair<std::string, double>> series;
            for (const auto &row : rows) {
                const std::string key =
                    std::string(modelName(row.model)) + "/" +
                    frameworkName(row.framework);
                series.emplace_back(key + ".epoch_s", row.epochTime);
                series.emplace_back(key + ".total_s", row.totalTime);
                series.emplace_back(key + ".acc_mean",
                                    row.accuracy.mean);
                series.emplace_back(key + ".epochs", row.epochsRun);
            }
            writeBenchOutput(bench_path, "node_" + dataset_name,
                             std::move(series));
        }
        if (!roofline_path.empty()) {
            writeRooflineOutputs(
                roofline_path,
                runNodeRoofline(ds, {model}, epochs, /*seed=*/1000));
        }
        writeTraceOutput(trace_path);
        writeStatsOutputs(args);
        return 0;
    }

    if (task == "graph") {
        GraphDataset ds;
        const int64_t graphs = getInt(args, "graphs", 0);
        if (iequals(dataset_name, "enzymes"))
            ds = makeEnzymes(42, graphs > 0 ? graphs : 300);
        else if (iequals(dataset_name, "dd"))
            ds = makeDD(42, graphs > 0 ? graphs : 96, 300);
        else if (iequals(dataset_name, "mnist")) {
            MnistSuperpixelConfig cfg;
            cfg.numGraphs = graphs > 0 ? graphs : 500;
            ds = makeMnistSuperpixels(cfg);
        } else {
            gnnperf_fatal("graph task supports enzymes|dd|mnist, got ",
                          dataset_name);
        }
        const int epochs =
            static_cast<int>(getInt(args, "epochs", 15));
        const int folds = static_cast<int>(getInt(args, "folds", 2));
        auto rows = runGraphClassification(ds, {model}, folds, epochs,
                                           /*seed=*/1, verbose);
        std::printf("%s\n", renderGraphTable(ds.name, rows).c_str());
        if (!bench_path.empty()) {
            std::vector<std::pair<std::string, double>> series;
            for (const auto &row : rows) {
                const std::string key =
                    std::string(modelName(row.model)) + "/" +
                    frameworkName(row.framework);
                series.emplace_back(key + ".epoch_s", row.epochTime);
                series.emplace_back(key + ".total_s", row.totalTime);
                series.emplace_back(key + ".acc_mean",
                                    row.accuracy.mean);
                series.emplace_back(key + ".epochs", row.epochsRun);
            }
            writeBenchOutput(bench_path, "graph_" + dataset_name,
                             std::move(series));
        }
        if (!roofline_path.empty()) {
            writeRooflineOutputs(
                roofline_path,
                runGraphRoofline(ds, {model}, epochs,
                                 /*batch_size=*/0, /*seed=*/1));
        }
        writeTraceOutput(trace_path);
        writeStatsOutputs(args);
        return 0;
    }

    gnnperf_fatal("--task must be node or graph, got ", task);
}
