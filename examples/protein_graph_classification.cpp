/**
 * @file
 * Graph classification on an ENZYMES-like protein dataset (the
 * paper's Table V workload): 10-fold cross-validation for one model
 * under both frameworks, with the per-epoch execution-time breakdown.
 *
 * Usage: protein_graph_classification [model] [folds] [epochs]
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace gnnperf;

int
main(int argc, char **argv)
{
    const ModelKind kind =
        modelKindFromName(argc > 1 ? argv[1] : "GIN");
    const int folds = argc > 2 ? std::atoi(argv[2]) : 2;
    const int epochs = argc > 3 ? std::atoi(argv[3]) : 12;

    GraphDataset dataset = makeEnzymes(/*seed=*/42,
                                       /*num_graphs=*/240);
    std::printf("dataset: %s (%zu graphs)\n", dataset.name.c_str(),
                dataset.graphs.size());

    std::vector<FoldSplit> splits =
        stratifiedKFold(dataset.labels(), 10, /*seed=*/1);

    for (FrameworkKind fw : allFrameworks()) {
        std::vector<double> accs;
        GraphTrainResult last;
        for (int f = 0; f < folds; ++f) {
            TrainOptions opts;
            opts.maxEpochs = epochs;
            opts.seed = 11 + static_cast<uint64_t>(f);
            last = trainGraphTask(kind, getBackend(fw), dataset,
                                  splits[static_cast<std::size_t>(f)],
                                  opts);
            accs.push_back(last.testAccuracy);
        }
        SeriesStats stats = computeStats(accs);
        const EpochBreakdown &b = last.profile.breakdown;
        std::printf(
            "%s under %-3s: acc %5.1f%%±%.1f  epoch %7.2f ms  "
            "breakdown: load %.2f / fwd %.2f / bwd %.2f / upd %.2f / "
            "other %.2f ms\n",
            modelName(kind), frameworkName(fw), stats.mean * 100.0,
            stats.stddev * 100.0, last.epochTime * 1e3,
            b.dataLoading * 1e3, b.forward * 1e3, b.backward * 1e3,
            b.update * 1e3, b.other * 1e3);
    }
    return 0;
}
