/**
 * @file
 * Layer-wise profiler (the paper's Fig. 3 view): per-layer forward
 * execution time, epoch breakdown, utilization and memory for one
 * model × framework × batch size on the protein dataset.
 *
 * Usage: framework_profiler [model] [framework] [batch_size]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"
#include "common/string_utils.hh"

using namespace gnnperf;

int
main(int argc, char **argv)
{
    const ModelKind kind =
        modelKindFromName(argc > 1 ? argv[1] : "GAT");
    const std::string fw_name = argc > 2 ? argv[2] : "DGL";
    const int64_t batch = argc > 3 ? std::atoll(argv[3]) : 128;
    const FrameworkKind fw = iequals(fw_name, "dgl")
        ? FrameworkKind::DGL : FrameworkKind::PyG;

    GraphDataset dataset = makeEnzymes(/*seed=*/42,
                                       /*num_graphs=*/240);
    std::vector<FoldSplit> splits =
        stratifiedKFold(dataset.labels(), 10, /*seed=*/1);

    ProfileResult p = profileGraphTask(kind, getBackend(fw), dataset,
                                       splits.front(), /*epochs=*/3,
                                       batch, /*seed=*/5);

    std::printf("%s under %s, batch %ld on %s\n", modelName(kind),
                frameworkName(fw), batch, dataset.name.c_str());
    std::printf("  epoch time     : %.2f ms (simulated 2080Ti)\n",
                p.epochTime * 1e3);
    const EpochBreakdown &b = p.breakdown;
    std::printf("  breakdown (ms) : load %.2f | fwd %.2f | bwd %.2f | "
                "update %.2f | other %.2f\n",
                b.dataLoading * 1e3, b.forward * 1e3, b.backward * 1e3,
                b.update * 1e3, b.other * 1e3);
    std::printf("  GPU utilization: %.1f%%\n",
                p.gpuUtilization * 100.0);
    std::printf("  peak memory    : %s\n",
                formatBytes(p.peakMemoryBytes).c_str());
    std::printf("  kernels/epoch  : %zu\n", p.kernelsPerEpoch);
    std::printf("\n  forward time per layer (µs/iteration):\n");
    for (const auto &[layer, seconds] : p.layerTimes)
        std::printf("    %-12s %8.1f\n", layer.c_str(),
                    seconds * 1e6);
    return 0;
}
