file(REMOVE_RECURSE
  "libgnnperf_models.a"
)
