# Empty compiler generated dependencies file for gnnperf_models.
# This may be replaced when dependencies are built.
