
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/gat.cc" "src/CMakeFiles/gnnperf_models.dir/models/gat.cc.o" "gcc" "src/CMakeFiles/gnnperf_models.dir/models/gat.cc.o.d"
  "/root/repo/src/models/gated_gcn.cc" "src/CMakeFiles/gnnperf_models.dir/models/gated_gcn.cc.o" "gcc" "src/CMakeFiles/gnnperf_models.dir/models/gated_gcn.cc.o.d"
  "/root/repo/src/models/gcn.cc" "src/CMakeFiles/gnnperf_models.dir/models/gcn.cc.o" "gcc" "src/CMakeFiles/gnnperf_models.dir/models/gcn.cc.o.d"
  "/root/repo/src/models/gin.cc" "src/CMakeFiles/gnnperf_models.dir/models/gin.cc.o" "gcc" "src/CMakeFiles/gnnperf_models.dir/models/gin.cc.o.d"
  "/root/repo/src/models/gnn_model.cc" "src/CMakeFiles/gnnperf_models.dir/models/gnn_model.cc.o" "gcc" "src/CMakeFiles/gnnperf_models.dir/models/gnn_model.cc.o.d"
  "/root/repo/src/models/graphsage.cc" "src/CMakeFiles/gnnperf_models.dir/models/graphsage.cc.o" "gcc" "src/CMakeFiles/gnnperf_models.dir/models/graphsage.cc.o.d"
  "/root/repo/src/models/model_factory.cc" "src/CMakeFiles/gnnperf_models.dir/models/model_factory.cc.o" "gcc" "src/CMakeFiles/gnnperf_models.dir/models/model_factory.cc.o.d"
  "/root/repo/src/models/monet.cc" "src/CMakeFiles/gnnperf_models.dir/models/monet.cc.o" "gcc" "src/CMakeFiles/gnnperf_models.dir/models/monet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnnperf_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
