file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_models.dir/models/gat.cc.o"
  "CMakeFiles/gnnperf_models.dir/models/gat.cc.o.d"
  "CMakeFiles/gnnperf_models.dir/models/gated_gcn.cc.o"
  "CMakeFiles/gnnperf_models.dir/models/gated_gcn.cc.o.d"
  "CMakeFiles/gnnperf_models.dir/models/gcn.cc.o"
  "CMakeFiles/gnnperf_models.dir/models/gcn.cc.o.d"
  "CMakeFiles/gnnperf_models.dir/models/gin.cc.o"
  "CMakeFiles/gnnperf_models.dir/models/gin.cc.o.d"
  "CMakeFiles/gnnperf_models.dir/models/gnn_model.cc.o"
  "CMakeFiles/gnnperf_models.dir/models/gnn_model.cc.o.d"
  "CMakeFiles/gnnperf_models.dir/models/graphsage.cc.o"
  "CMakeFiles/gnnperf_models.dir/models/graphsage.cc.o.d"
  "CMakeFiles/gnnperf_models.dir/models/model_factory.cc.o"
  "CMakeFiles/gnnperf_models.dir/models/model_factory.cc.o.d"
  "CMakeFiles/gnnperf_models.dir/models/monet.cc.o"
  "CMakeFiles/gnnperf_models.dir/models/monet.cc.o.d"
  "libgnnperf_models.a"
  "libgnnperf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
