file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_autograd.dir/autograd/functions.cc.o"
  "CMakeFiles/gnnperf_autograd.dir/autograd/functions.cc.o.d"
  "CMakeFiles/gnnperf_autograd.dir/autograd/grad_check.cc.o"
  "CMakeFiles/gnnperf_autograd.dir/autograd/grad_check.cc.o.d"
  "CMakeFiles/gnnperf_autograd.dir/autograd/variable.cc.o"
  "CMakeFiles/gnnperf_autograd.dir/autograd/variable.cc.o.d"
  "libgnnperf_autograd.a"
  "libgnnperf_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
