# Empty compiler generated dependencies file for gnnperf_autograd.
# This may be replaced when dependencies are built.
