file(REMOVE_RECURSE
  "libgnnperf_autograd.a"
)
