file(REMOVE_RECURSE
  "libgnnperf_common.a"
)
