file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_common.dir/common/env.cc.o"
  "CMakeFiles/gnnperf_common.dir/common/env.cc.o.d"
  "CMakeFiles/gnnperf_common.dir/common/logging.cc.o"
  "CMakeFiles/gnnperf_common.dir/common/logging.cc.o.d"
  "CMakeFiles/gnnperf_common.dir/common/random.cc.o"
  "CMakeFiles/gnnperf_common.dir/common/random.cc.o.d"
  "CMakeFiles/gnnperf_common.dir/common/string_utils.cc.o"
  "CMakeFiles/gnnperf_common.dir/common/string_utils.cc.o.d"
  "CMakeFiles/gnnperf_common.dir/common/table.cc.o"
  "CMakeFiles/gnnperf_common.dir/common/table.cc.o.d"
  "libgnnperf_common.a"
  "libgnnperf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
