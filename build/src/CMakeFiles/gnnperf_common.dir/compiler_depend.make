# Empty compiler generated dependencies file for gnnperf_common.
# This may be replaced when dependencies are built.
