file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_graph.dir/graph/batched_graph.cc.o"
  "CMakeFiles/gnnperf_graph.dir/graph/batched_graph.cc.o.d"
  "CMakeFiles/gnnperf_graph.dir/graph/edge_softmax.cc.o"
  "CMakeFiles/gnnperf_graph.dir/graph/edge_softmax.cc.o.d"
  "CMakeFiles/gnnperf_graph.dir/graph/graph.cc.o"
  "CMakeFiles/gnnperf_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/gnnperf_graph.dir/graph/scatter.cc.o"
  "CMakeFiles/gnnperf_graph.dir/graph/scatter.cc.o.d"
  "CMakeFiles/gnnperf_graph.dir/graph/segment.cc.o"
  "CMakeFiles/gnnperf_graph.dir/graph/segment.cc.o.d"
  "CMakeFiles/gnnperf_graph.dir/graph/spmm.cc.o"
  "CMakeFiles/gnnperf_graph.dir/graph/spmm.cc.o.d"
  "libgnnperf_graph.a"
  "libgnnperf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
