file(REMOVE_RECURSE
  "libgnnperf_graph.a"
)
