# Empty dependencies file for gnnperf_graph.
# This may be replaced when dependencies are built.
