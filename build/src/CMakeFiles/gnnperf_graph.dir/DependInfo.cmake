
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/batched_graph.cc" "src/CMakeFiles/gnnperf_graph.dir/graph/batched_graph.cc.o" "gcc" "src/CMakeFiles/gnnperf_graph.dir/graph/batched_graph.cc.o.d"
  "/root/repo/src/graph/edge_softmax.cc" "src/CMakeFiles/gnnperf_graph.dir/graph/edge_softmax.cc.o" "gcc" "src/CMakeFiles/gnnperf_graph.dir/graph/edge_softmax.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/gnnperf_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/gnnperf_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/scatter.cc" "src/CMakeFiles/gnnperf_graph.dir/graph/scatter.cc.o" "gcc" "src/CMakeFiles/gnnperf_graph.dir/graph/scatter.cc.o.d"
  "/root/repo/src/graph/segment.cc" "src/CMakeFiles/gnnperf_graph.dir/graph/segment.cc.o" "gcc" "src/CMakeFiles/gnnperf_graph.dir/graph/segment.cc.o.d"
  "/root/repo/src/graph/spmm.cc" "src/CMakeFiles/gnnperf_graph.dir/graph/spmm.cc.o" "gcc" "src/CMakeFiles/gnnperf_graph.dir/graph/spmm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnnperf_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
