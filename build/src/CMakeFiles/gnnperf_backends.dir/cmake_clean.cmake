file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_backends.dir/backends/backend.cc.o"
  "CMakeFiles/gnnperf_backends.dir/backends/backend.cc.o.d"
  "CMakeFiles/gnnperf_backends.dir/backends/dgl/dgl_collate.cc.o"
  "CMakeFiles/gnnperf_backends.dir/backends/dgl/dgl_collate.cc.o.d"
  "CMakeFiles/gnnperf_backends.dir/backends/dgl/dgl_ops.cc.o"
  "CMakeFiles/gnnperf_backends.dir/backends/dgl/dgl_ops.cc.o.d"
  "CMakeFiles/gnnperf_backends.dir/backends/dgl/hetero_graph.cc.o"
  "CMakeFiles/gnnperf_backends.dir/backends/dgl/hetero_graph.cc.o.d"
  "CMakeFiles/gnnperf_backends.dir/backends/pyg/pyg_collate.cc.o"
  "CMakeFiles/gnnperf_backends.dir/backends/pyg/pyg_collate.cc.o.d"
  "CMakeFiles/gnnperf_backends.dir/backends/pyg/pyg_ops.cc.o"
  "CMakeFiles/gnnperf_backends.dir/backends/pyg/pyg_ops.cc.o.d"
  "libgnnperf_backends.a"
  "libgnnperf_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
