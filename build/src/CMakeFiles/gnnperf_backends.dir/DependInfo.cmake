
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/backend.cc" "src/CMakeFiles/gnnperf_backends.dir/backends/backend.cc.o" "gcc" "src/CMakeFiles/gnnperf_backends.dir/backends/backend.cc.o.d"
  "/root/repo/src/backends/dgl/dgl_collate.cc" "src/CMakeFiles/gnnperf_backends.dir/backends/dgl/dgl_collate.cc.o" "gcc" "src/CMakeFiles/gnnperf_backends.dir/backends/dgl/dgl_collate.cc.o.d"
  "/root/repo/src/backends/dgl/dgl_ops.cc" "src/CMakeFiles/gnnperf_backends.dir/backends/dgl/dgl_ops.cc.o" "gcc" "src/CMakeFiles/gnnperf_backends.dir/backends/dgl/dgl_ops.cc.o.d"
  "/root/repo/src/backends/dgl/hetero_graph.cc" "src/CMakeFiles/gnnperf_backends.dir/backends/dgl/hetero_graph.cc.o" "gcc" "src/CMakeFiles/gnnperf_backends.dir/backends/dgl/hetero_graph.cc.o.d"
  "/root/repo/src/backends/pyg/pyg_collate.cc" "src/CMakeFiles/gnnperf_backends.dir/backends/pyg/pyg_collate.cc.o" "gcc" "src/CMakeFiles/gnnperf_backends.dir/backends/pyg/pyg_collate.cc.o.d"
  "/root/repo/src/backends/pyg/pyg_ops.cc" "src/CMakeFiles/gnnperf_backends.dir/backends/pyg/pyg_ops.cc.o" "gcc" "src/CMakeFiles/gnnperf_backends.dir/backends/pyg/pyg_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnnperf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
