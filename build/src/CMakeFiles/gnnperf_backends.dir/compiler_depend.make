# Empty compiler generated dependencies file for gnnperf_backends.
# This may be replaced when dependencies are built.
