file(REMOVE_RECURSE
  "libgnnperf_backends.a"
)
