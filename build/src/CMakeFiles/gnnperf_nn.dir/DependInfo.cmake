
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/activation.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/activation.cc.o.d"
  "/root/repo/src/nn/batch_norm.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/batch_norm.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/batch_norm.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/lr_scheduler.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/lr_scheduler.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/lr_scheduler.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/gnnperf_nn.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/gnnperf_nn.dir/nn/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnnperf_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
