# Empty compiler generated dependencies file for gnnperf_nn.
# This may be replaced when dependencies are built.
