file(REMOVE_RECURSE
  "libgnnperf_nn.a"
)
