file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_nn.dir/nn/activation.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/activation.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/batch_norm.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/batch_norm.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/dropout.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/dropout.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/linear.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/loss.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/loss.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/lr_scheduler.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/lr_scheduler.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/module.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/module.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/gnnperf_nn.dir/nn/serialize.cc.o"
  "CMakeFiles/gnnperf_nn.dir/nn/serialize.cc.o.d"
  "libgnnperf_nn.a"
  "libgnnperf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
