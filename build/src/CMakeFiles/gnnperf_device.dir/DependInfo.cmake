
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/cost_model.cc" "src/CMakeFiles/gnnperf_device.dir/device/cost_model.cc.o" "gcc" "src/CMakeFiles/gnnperf_device.dir/device/cost_model.cc.o.d"
  "/root/repo/src/device/device.cc" "src/CMakeFiles/gnnperf_device.dir/device/device.cc.o" "gcc" "src/CMakeFiles/gnnperf_device.dir/device/device.cc.o.d"
  "/root/repo/src/device/multi_gpu.cc" "src/CMakeFiles/gnnperf_device.dir/device/multi_gpu.cc.o" "gcc" "src/CMakeFiles/gnnperf_device.dir/device/multi_gpu.cc.o.d"
  "/root/repo/src/device/profiler.cc" "src/CMakeFiles/gnnperf_device.dir/device/profiler.cc.o" "gcc" "src/CMakeFiles/gnnperf_device.dir/device/profiler.cc.o.d"
  "/root/repo/src/device/timeline.cc" "src/CMakeFiles/gnnperf_device.dir/device/timeline.cc.o" "gcc" "src/CMakeFiles/gnnperf_device.dir/device/timeline.cc.o.d"
  "/root/repo/src/device/trace.cc" "src/CMakeFiles/gnnperf_device.dir/device/trace.cc.o" "gcc" "src/CMakeFiles/gnnperf_device.dir/device/trace.cc.o.d"
  "/root/repo/src/device/trace_export.cc" "src/CMakeFiles/gnnperf_device.dir/device/trace_export.cc.o" "gcc" "src/CMakeFiles/gnnperf_device.dir/device/trace_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnnperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
