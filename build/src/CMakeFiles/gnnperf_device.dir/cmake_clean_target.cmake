file(REMOVE_RECURSE
  "libgnnperf_device.a"
)
