# Empty dependencies file for gnnperf_device.
# This may be replaced when dependencies are built.
