file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_device.dir/device/cost_model.cc.o"
  "CMakeFiles/gnnperf_device.dir/device/cost_model.cc.o.d"
  "CMakeFiles/gnnperf_device.dir/device/device.cc.o"
  "CMakeFiles/gnnperf_device.dir/device/device.cc.o.d"
  "CMakeFiles/gnnperf_device.dir/device/multi_gpu.cc.o"
  "CMakeFiles/gnnperf_device.dir/device/multi_gpu.cc.o.d"
  "CMakeFiles/gnnperf_device.dir/device/profiler.cc.o"
  "CMakeFiles/gnnperf_device.dir/device/profiler.cc.o.d"
  "CMakeFiles/gnnperf_device.dir/device/timeline.cc.o"
  "CMakeFiles/gnnperf_device.dir/device/timeline.cc.o.d"
  "CMakeFiles/gnnperf_device.dir/device/trace.cc.o"
  "CMakeFiles/gnnperf_device.dir/device/trace.cc.o.d"
  "CMakeFiles/gnnperf_device.dir/device/trace_export.cc.o"
  "CMakeFiles/gnnperf_device.dir/device/trace_export.cc.o.d"
  "libgnnperf_device.a"
  "libgnnperf_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
