# Empty compiler generated dependencies file for gnnperf_data.
# This may be replaced when dependencies are built.
