file(REMOVE_RECURSE
  "libgnnperf_data.a"
)
