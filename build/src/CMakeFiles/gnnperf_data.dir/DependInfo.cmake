
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/citation.cc" "src/CMakeFiles/gnnperf_data.dir/data/citation.cc.o" "gcc" "src/CMakeFiles/gnnperf_data.dir/data/citation.cc.o.d"
  "/root/repo/src/data/dataloader.cc" "src/CMakeFiles/gnnperf_data.dir/data/dataloader.cc.o" "gcc" "src/CMakeFiles/gnnperf_data.dir/data/dataloader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/gnnperf_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/gnnperf_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/mnist_superpixel.cc" "src/CMakeFiles/gnnperf_data.dir/data/mnist_superpixel.cc.o" "gcc" "src/CMakeFiles/gnnperf_data.dir/data/mnist_superpixel.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/CMakeFiles/gnnperf_data.dir/data/splits.cc.o" "gcc" "src/CMakeFiles/gnnperf_data.dir/data/splits.cc.o.d"
  "/root/repo/src/data/tu_dataset.cc" "src/CMakeFiles/gnnperf_data.dir/data/tu_dataset.cc.o" "gcc" "src/CMakeFiles/gnnperf_data.dir/data/tu_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnnperf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
