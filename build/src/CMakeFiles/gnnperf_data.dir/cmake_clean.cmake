file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_data.dir/data/citation.cc.o"
  "CMakeFiles/gnnperf_data.dir/data/citation.cc.o.d"
  "CMakeFiles/gnnperf_data.dir/data/dataloader.cc.o"
  "CMakeFiles/gnnperf_data.dir/data/dataloader.cc.o.d"
  "CMakeFiles/gnnperf_data.dir/data/dataset.cc.o"
  "CMakeFiles/gnnperf_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/gnnperf_data.dir/data/mnist_superpixel.cc.o"
  "CMakeFiles/gnnperf_data.dir/data/mnist_superpixel.cc.o.d"
  "CMakeFiles/gnnperf_data.dir/data/splits.cc.o"
  "CMakeFiles/gnnperf_data.dir/data/splits.cc.o.d"
  "CMakeFiles/gnnperf_data.dir/data/tu_dataset.cc.o"
  "CMakeFiles/gnnperf_data.dir/data/tu_dataset.cc.o.d"
  "libgnnperf_data.a"
  "libgnnperf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
