file(REMOVE_RECURSE
  "libgnnperf_core.a"
)
