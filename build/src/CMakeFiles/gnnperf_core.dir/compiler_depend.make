# Empty compiler generated dependencies file for gnnperf_core.
# This may be replaced when dependencies are built.
