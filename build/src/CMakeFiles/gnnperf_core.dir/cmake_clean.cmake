file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_core.dir/core/config.cc.o"
  "CMakeFiles/gnnperf_core.dir/core/config.cc.o.d"
  "CMakeFiles/gnnperf_core.dir/core/evaluator.cc.o"
  "CMakeFiles/gnnperf_core.dir/core/evaluator.cc.o.d"
  "CMakeFiles/gnnperf_core.dir/core/experiment.cc.o"
  "CMakeFiles/gnnperf_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/gnnperf_core.dir/core/report.cc.o"
  "CMakeFiles/gnnperf_core.dir/core/report.cc.o.d"
  "CMakeFiles/gnnperf_core.dir/core/trainer.cc.o"
  "CMakeFiles/gnnperf_core.dir/core/trainer.cc.o.d"
  "libgnnperf_core.a"
  "libgnnperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
