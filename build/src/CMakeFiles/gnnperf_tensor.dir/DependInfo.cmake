
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/init.cc" "src/CMakeFiles/gnnperf_tensor.dir/tensor/init.cc.o" "gcc" "src/CMakeFiles/gnnperf_tensor.dir/tensor/init.cc.o.d"
  "/root/repo/src/tensor/matmul.cc" "src/CMakeFiles/gnnperf_tensor.dir/tensor/matmul.cc.o" "gcc" "src/CMakeFiles/gnnperf_tensor.dir/tensor/matmul.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/gnnperf_tensor.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/gnnperf_tensor.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/gnnperf_tensor.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/gnnperf_tensor.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnnperf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
