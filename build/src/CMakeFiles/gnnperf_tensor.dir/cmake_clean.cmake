file(REMOVE_RECURSE
  "CMakeFiles/gnnperf_tensor.dir/tensor/init.cc.o"
  "CMakeFiles/gnnperf_tensor.dir/tensor/init.cc.o.d"
  "CMakeFiles/gnnperf_tensor.dir/tensor/matmul.cc.o"
  "CMakeFiles/gnnperf_tensor.dir/tensor/matmul.cc.o.d"
  "CMakeFiles/gnnperf_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/gnnperf_tensor.dir/tensor/ops.cc.o.d"
  "CMakeFiles/gnnperf_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/gnnperf_tensor.dir/tensor/tensor.cc.o.d"
  "libgnnperf_tensor.a"
  "libgnnperf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnperf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
