# Empty compiler generated dependencies file for gnnperf_tensor.
# This may be replaced when dependencies are built.
