file(REMOVE_RECURSE
  "libgnnperf_tensor.a"
)
