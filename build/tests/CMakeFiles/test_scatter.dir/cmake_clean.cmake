file(REMOVE_RECURSE
  "CMakeFiles/test_scatter.dir/test_scatter.cc.o"
  "CMakeFiles/test_scatter.dir/test_scatter.cc.o.d"
  "test_scatter"
  "test_scatter.pdb"
  "test_scatter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
