# Empty dependencies file for test_scatter.
# This may be replaced when dependencies are built.
