file(REMOVE_RECURSE
  "CMakeFiles/test_edge_softmax.dir/test_edge_softmax.cc.o"
  "CMakeFiles/test_edge_softmax.dir/test_edge_softmax.cc.o.d"
  "test_edge_softmax"
  "test_edge_softmax.pdb"
  "test_edge_softmax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
