# Empty dependencies file for test_edge_softmax.
# This may be replaced when dependencies are built.
