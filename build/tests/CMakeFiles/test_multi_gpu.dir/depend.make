# Empty dependencies file for test_multi_gpu.
# This may be replaced when dependencies are built.
