file(REMOVE_RECURSE
  "CMakeFiles/test_multi_gpu.dir/test_multi_gpu.cc.o"
  "CMakeFiles/test_multi_gpu.dir/test_multi_gpu.cc.o.d"
  "test_multi_gpu"
  "test_multi_gpu.pdb"
  "test_multi_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
