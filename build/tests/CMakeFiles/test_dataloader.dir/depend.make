# Empty dependencies file for test_dataloader.
# This may be replaced when dependencies are built.
