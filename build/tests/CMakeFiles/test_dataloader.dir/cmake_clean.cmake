file(REMOVE_RECURSE
  "CMakeFiles/test_dataloader.dir/test_dataloader.cc.o"
  "CMakeFiles/test_dataloader.dir/test_dataloader.cc.o.d"
  "test_dataloader"
  "test_dataloader.pdb"
  "test_dataloader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataloader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
