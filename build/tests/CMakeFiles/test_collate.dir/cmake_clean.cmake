file(REMOVE_RECURSE
  "CMakeFiles/test_collate.dir/test_collate.cc.o"
  "CMakeFiles/test_collate.dir/test_collate.cc.o.d"
  "test_collate"
  "test_collate.pdb"
  "test_collate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
