# Empty compiler generated dependencies file for test_collate.
# This may be replaced when dependencies are built.
