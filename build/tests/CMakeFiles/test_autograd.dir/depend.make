# Empty dependencies file for test_autograd.
# This may be replaced when dependencies are built.
