file(REMOVE_RECURSE
  "CMakeFiles/test_autograd.dir/test_autograd.cc.o"
  "CMakeFiles/test_autograd.dir/test_autograd.cc.o.d"
  "test_autograd"
  "test_autograd.pdb"
  "test_autograd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
