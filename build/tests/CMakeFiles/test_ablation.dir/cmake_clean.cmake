file(REMOVE_RECURSE
  "CMakeFiles/test_ablation.dir/test_ablation.cc.o"
  "CMakeFiles/test_ablation.dir/test_ablation.cc.o.d"
  "test_ablation"
  "test_ablation.pdb"
  "test_ablation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
