# Empty dependencies file for test_gnn_model_base.
# This may be replaced when dependencies are built.
