file(REMOVE_RECURSE
  "CMakeFiles/test_gnn_model_base.dir/test_gnn_model_base.cc.o"
  "CMakeFiles/test_gnn_model_base.dir/test_gnn_model_base.cc.o.d"
  "test_gnn_model_base"
  "test_gnn_model_base.pdb"
  "test_gnn_model_base[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnn_model_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
