file(REMOVE_RECURSE
  "CMakeFiles/test_splits.dir/test_splits.cc.o"
  "CMakeFiles/test_splits.dir/test_splits.cc.o.d"
  "test_splits"
  "test_splits.pdb"
  "test_splits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
