# Empty compiler generated dependencies file for test_splits.
# This may be replaced when dependencies are built.
