file(REMOVE_RECURSE
  "CMakeFiles/test_model_gradcheck.dir/test_model_gradcheck.cc.o"
  "CMakeFiles/test_model_gradcheck.dir/test_model_gradcheck.cc.o.d"
  "test_model_gradcheck"
  "test_model_gradcheck.pdb"
  "test_model_gradcheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_gradcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
