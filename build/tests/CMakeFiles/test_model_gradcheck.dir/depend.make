# Empty dependencies file for test_model_gradcheck.
# This may be replaced when dependencies are built.
