file(REMOVE_RECURSE
  "CMakeFiles/test_spmm.dir/test_spmm.cc.o"
  "CMakeFiles/test_spmm.dir/test_spmm.cc.o.d"
  "test_spmm"
  "test_spmm.pdb"
  "test_spmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
