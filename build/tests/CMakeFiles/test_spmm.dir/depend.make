# Empty dependencies file for test_spmm.
# This may be replaced when dependencies are built.
