file(REMOVE_RECURSE
  "CMakeFiles/test_nn_modules.dir/test_nn_modules.cc.o"
  "CMakeFiles/test_nn_modules.dir/test_nn_modules.cc.o.d"
  "test_nn_modules"
  "test_nn_modules.pdb"
  "test_nn_modules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
