# Empty dependencies file for bench_table5_graph_classification.
# This may be replaced when dependencies are built.
