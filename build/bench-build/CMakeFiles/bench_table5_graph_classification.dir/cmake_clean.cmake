file(REMOVE_RECURSE
  "../bench/bench_table5_graph_classification"
  "../bench/bench_table5_graph_classification.pdb"
  "CMakeFiles/bench_table5_graph_classification.dir/bench_table5_graph_classification.cc.o"
  "CMakeFiles/bench_table5_graph_classification.dir/bench_table5_graph_classification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_graph_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
