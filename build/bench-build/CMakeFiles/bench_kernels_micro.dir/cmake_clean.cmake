file(REMOVE_RECURSE
  "../bench/bench_kernels_micro"
  "../bench/bench_kernels_micro.pdb"
  "CMakeFiles/bench_kernels_micro.dir/bench_kernels_micro.cc.o"
  "CMakeFiles/bench_kernels_micro.dir/bench_kernels_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
