# Empty compiler generated dependencies file for bench_fig5_gpu_util.
# This may be replaced when dependencies are built.
