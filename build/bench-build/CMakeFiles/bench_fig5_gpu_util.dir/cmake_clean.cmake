file(REMOVE_RECURSE
  "../bench/bench_fig5_gpu_util"
  "../bench/bench_fig5_gpu_util.pdb"
  "CMakeFiles/bench_fig5_gpu_util.dir/bench_fig5_gpu_util.cc.o"
  "CMakeFiles/bench_fig5_gpu_util.dir/bench_fig5_gpu_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
