file(REMOVE_RECURSE
  "../bench/bench_ablation_backends"
  "../bench/bench_ablation_backends.pdb"
  "CMakeFiles/bench_ablation_backends.dir/bench_ablation_backends.cc.o"
  "CMakeFiles/bench_ablation_backends.dir/bench_ablation_backends.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
