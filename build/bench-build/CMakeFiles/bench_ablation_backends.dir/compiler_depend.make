# Empty compiler generated dependencies file for bench_ablation_backends.
# This may be replaced when dependencies are built.
