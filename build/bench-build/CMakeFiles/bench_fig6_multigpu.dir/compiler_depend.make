# Empty compiler generated dependencies file for bench_fig6_multigpu.
# This may be replaced when dependencies are built.
