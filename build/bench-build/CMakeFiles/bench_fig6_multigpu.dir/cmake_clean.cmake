file(REMOVE_RECURSE
  "../bench/bench_fig6_multigpu"
  "../bench/bench_fig6_multigpu.pdb"
  "CMakeFiles/bench_fig6_multigpu.dir/bench_fig6_multigpu.cc.o"
  "CMakeFiles/bench_fig6_multigpu.dir/bench_fig6_multigpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
