# Empty compiler generated dependencies file for bench_fig2_breakdown_dd.
# This may be replaced when dependencies are built.
