file(REMOVE_RECURSE
  "../bench/bench_fig2_breakdown_dd"
  "../bench/bench_fig2_breakdown_dd.pdb"
  "CMakeFiles/bench_fig2_breakdown_dd.dir/bench_fig2_breakdown_dd.cc.o"
  "CMakeFiles/bench_fig2_breakdown_dd.dir/bench_fig2_breakdown_dd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_breakdown_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
