
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_breakdown_dd.cc" "bench-build/CMakeFiles/bench_fig2_breakdown_dd.dir/bench_fig2_breakdown_dd.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig2_breakdown_dd.dir/bench_fig2_breakdown_dd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gnnperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gnnperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
