file(REMOVE_RECURSE
  "../bench/bench_fig3_layerwise"
  "../bench/bench_fig3_layerwise.pdb"
  "CMakeFiles/bench_fig3_layerwise.dir/bench_fig3_layerwise.cc.o"
  "CMakeFiles/bench_fig3_layerwise.dir/bench_fig3_layerwise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
