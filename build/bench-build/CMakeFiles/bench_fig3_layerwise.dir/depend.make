# Empty dependencies file for bench_fig3_layerwise.
# This may be replaced when dependencies are built.
