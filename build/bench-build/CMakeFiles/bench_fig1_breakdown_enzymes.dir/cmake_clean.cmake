file(REMOVE_RECURSE
  "../bench/bench_fig1_breakdown_enzymes"
  "../bench/bench_fig1_breakdown_enzymes.pdb"
  "CMakeFiles/bench_fig1_breakdown_enzymes.dir/bench_fig1_breakdown_enzymes.cc.o"
  "CMakeFiles/bench_fig1_breakdown_enzymes.dir/bench_fig1_breakdown_enzymes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_breakdown_enzymes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
