# Empty dependencies file for bench_fig1_breakdown_enzymes.
# This may be replaced when dependencies are built.
