file(REMOVE_RECURSE
  "../bench/bench_table4_node_classification"
  "../bench/bench_table4_node_classification.pdb"
  "CMakeFiles/bench_table4_node_classification.dir/bench_table4_node_classification.cc.o"
  "CMakeFiles/bench_table4_node_classification.dir/bench_table4_node_classification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_node_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
