# Empty dependencies file for bench_table4_node_classification.
# This may be replaced when dependencies are built.
