# Empty compiler generated dependencies file for multigpu_scaling.
# This may be replaced when dependencies are built.
