file(REMOVE_RECURSE
  "CMakeFiles/multigpu_scaling.dir/multigpu_scaling.cpp.o"
  "CMakeFiles/multigpu_scaling.dir/multigpu_scaling.cpp.o.d"
  "multigpu_scaling"
  "multigpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
