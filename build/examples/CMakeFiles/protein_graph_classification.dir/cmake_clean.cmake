file(REMOVE_RECURSE
  "CMakeFiles/protein_graph_classification.dir/protein_graph_classification.cpp.o"
  "CMakeFiles/protein_graph_classification.dir/protein_graph_classification.cpp.o.d"
  "protein_graph_classification"
  "protein_graph_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_graph_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
