# Empty dependencies file for protein_graph_classification.
# This may be replaced when dependencies are built.
