file(REMOVE_RECURSE
  "CMakeFiles/citation_node_classification.dir/citation_node_classification.cpp.o"
  "CMakeFiles/citation_node_classification.dir/citation_node_classification.cpp.o.d"
  "citation_node_classification"
  "citation_node_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_node_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
