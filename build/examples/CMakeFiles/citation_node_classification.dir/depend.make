# Empty dependencies file for citation_node_classification.
# This may be replaced when dependencies are built.
