# Empty dependencies file for framework_profiler.
# This may be replaced when dependencies are built.
