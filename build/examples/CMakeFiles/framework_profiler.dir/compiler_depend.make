# Empty compiler generated dependencies file for framework_profiler.
# This may be replaced when dependencies are built.
