file(REMOVE_RECURSE
  "CMakeFiles/framework_profiler.dir/framework_profiler.cpp.o"
  "CMakeFiles/framework_profiler.dir/framework_profiler.cpp.o.d"
  "framework_profiler"
  "framework_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
