/**
 * @file
 * gnnperf_prof — inspect and self-check the measured-vs-modeled
 * hardware-counter reconciliation in roofline suite JSONs.
 *
 * Operates on the suite documents written by `run_experiment
 * --roofline-out` (obs/roofline.hh): `{"version":1, "meta":...,
 * "reports":{label: report}}`. A bare single-report document is also
 * accepted. Reports carry an optional top-level `hwprof` block (tier,
 * demotion reason, classification thresholds) and per-group `hwprof`
 * counter objects when the run was profiled with --hwprof.
 *
 * Usage:
 *   gnnperf_prof summary FILE   print, per report, the counter tier
 *                               and a per-kernel reconciliation table
 *                               (modeled bound vs measured IPC,
 *                               miss rate, measured bound, verdict)
 *   gnnperf_prof check FILE     verify the reconciliation contract:
 *                               the tier is a known name, derived
 *                               ratios (ipc, miss_rate) match their
 *                               raw counters, miss_rate is in [0,1],
 *                               and measured_bound / agreement are
 *                               exactly what the file's own emitted
 *                               thresholds re-derive
 *
 * A file with no hwprof data is not an error — both modes report that
 * and exit 0, so gates can run unconditionally.
 *
 * Exit codes: 0 = ok, 1 = check failed, 2 = bad usage or
 * unreadable/unparsable input.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/buildinfo.hh"
#include "common/fs.hh"
#include "common/json.hh"
#include "common/string_utils.hh"

using namespace gnnperf;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr, "usage: %s summary FILE | check FILE\n",
                 argv0);
    return 2;
}

bool
loadJson(const char *path, JsonValue &out)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "gnnperf_prof: cannot read %s\n", path);
        return false;
    }
    std::string error;
    if (!parseJson(text, out, &error)) {
        std::fprintf(stderr, "gnnperf_prof: %s: %s\n", path,
                     error.c_str());
        return false;
    }
    return true;
}

/**
 * The (label, report) pairs of a document: the `reports` map of a
 * suite, or the document itself when it is a bare report.
 */
std::vector<std::pair<std::string, const JsonValue *>>
collectReports(const JsonValue &doc)
{
    std::vector<std::pair<std::string, const JsonValue *>> out;
    const JsonValue *reports = doc.find("reports");
    if (reports != nullptr && reports->isObject()) {
        for (const auto &kv : reports->object)
            out.emplace_back(kv.first, &kv.second);
        return out;
    }
    if (doc.find("total") != nullptr)
        out.emplace_back("report", &doc);
    return out;
}

std::string
stringAt(const JsonValue &obj, const char *key, const char *fallback)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->isString() ? v->str : fallback;
}

double
numberAt(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr ? v->asNumber() : 0.0;
}

/** The group's measured-counter block, or nullptr when unprofiled. */
const JsonValue *
measuredBlock(const JsonValue &group)
{
    const JsonValue *m = group.find("hwprof");
    return m != nullptr && m->isObject() ? m : nullptr;
}

/**
 * Re-derive the measured boundedness class from raw counters using
 * the thresholds the report itself carries (mirrors
 * obs/roofline.cc measuredBound()).
 */
std::string
deriveMeasuredBound(const JsonValue &m, double bw_miss_rate,
                    double dispatch_instr_per_window)
{
    const double windows = numberAt(m, "windows");
    const double instructions = numberAt(m, "instructions");
    if (windows <= 0.0 ||
        instructions / windows < dispatch_instr_per_window)
        return "dispatch";
    const double refs = numberAt(m, "cache_refs");
    const double misses = numberAt(m, "cache_misses");
    const double miss_rate = refs > 0.0 ? misses / refs : 0.0;
    return miss_rate >= bw_miss_rate ? "bandwidth" : "compute";
}

// ----- summary --------------------------------------------------------------

void
summarizeReport(const std::string &label, const JsonValue &report)
{
    const JsonValue *hw = report.find("hwprof");
    std::printf("report %s\n", label.c_str());
    if (hw == nullptr || !hw->isObject()) {
        std::printf("  no hwprof data (run with --hwprof / "
                    "GNNPERF_HWPROF=1)\n\n");
        return;
    }
    std::printf("  tier:   %s (%s)\n",
                stringAt(*hw, "tier", "?").c_str(),
                stringAt(*hw, "reason", "no reason recorded").c_str());
    const JsonValue *total = report.find("total");
    const JsonValue *tm =
        total != nullptr ? measuredBlock(*total) : nullptr;
    if (tm != nullptr) {
        std::printf("  total:  windows=%.0f ipc=%.2f miss_rate=%.3f "
                    "measured=%s agreement=%s\n",
                    numberAt(*tm, "windows"), numberAt(*tm, "ipc"),
                    numberAt(*tm, "miss_rate"),
                    stringAt(*tm, "measured_bound", "?").c_str(),
                    stringAt(*tm, "agreement", "?").c_str());
    }
    const JsonValue *kernels = report.find("kernels");
    if (kernels == nullptr || !kernels->isObject()) {
        std::printf("\n");
        return;
    }
    std::printf("  %-28s %-10s %8s %8s %-10s %s\n", "kernel",
                "modeled", "ipc", "miss%", "measured", "verdict");
    for (const auto &kv : kernels->object) {
        const JsonValue &g = kv.second;
        const std::string modeled = stringAt(g, "bound", "?");
        const JsonValue *m = measuredBlock(g);
        if (m == nullptr) {
            std::printf("  %-28s %-10s %8s %8s %-10s %s\n",
                        kv.first.c_str(), modeled.c_str(), "-", "-",
                        "n/a", "n/a");
            continue;
        }
        const bool hw_tier =
            stringAt(*m, "measured_bound", "n/a") != "n/a";
        const std::string ipc =
            hw_tier ? strprintf("%.2f", numberAt(*m, "ipc")) : "-";
        const std::string miss =
            hw_tier
                ? strprintf("%.1f", numberAt(*m, "miss_rate") * 100.0)
                : "-";
        std::printf("  %-28s %-10s %8s %8s %-10s %s\n",
                    kv.first.c_str(), modeled.c_str(), ipc.c_str(),
                    miss.c_str(),
                    stringAt(*m, "measured_bound", "n/a").c_str(),
                    stringAt(*m, "agreement", "n/a").c_str());
    }
    std::printf("\n");
}

// ----- check ----------------------------------------------------------------

struct CheckState
{
    int failures = 0;

    void
    fail(const std::string &where, const std::string &what)
    {
        std::fprintf(stderr, "FAIL %s: %s\n", where.c_str(),
                     what.c_str());
        ++failures;
    }
};

/** |a - b| within a relative-or-absolute tolerance for ratios. */
bool
closeEnough(double a, double b)
{
    const double diff = std::fabs(a - b);
    return diff <= 1e-6 + 1e-4 * std::fabs(b);
}

void
checkGroup(CheckState &state, const std::string &where,
           const JsonValue &group, double bw_miss_rate,
           double dispatch_instr_per_window)
{
    const JsonValue *m = measuredBlock(group);
    if (m == nullptr)
        return;
    const double windows = numberAt(*m, "windows");
    if (windows < 1.0)
        state.fail(where, "hwprof block with zero windows");

    const double cycles = numberAt(*m, "cycles");
    const double instructions = numberAt(*m, "instructions");
    const double ipc = numberAt(*m, "ipc");
    const double want_ipc =
        cycles > 0.0 ? instructions / cycles : 0.0;
    if (!closeEnough(ipc, want_ipc))
        state.fail(where, "ipc " + std::to_string(ipc) +
                              " != instructions/cycles " +
                              std::to_string(want_ipc));

    const double refs = numberAt(*m, "cache_refs");
    const double misses = numberAt(*m, "cache_misses");
    const double miss_rate = numberAt(*m, "miss_rate");
    const double want_miss = refs > 0.0 ? misses / refs : 0.0;
    if (miss_rate < 0.0 || miss_rate > 1.0)
        state.fail(where, "miss_rate outside [0,1]: " +
                              std::to_string(miss_rate));
    if (!closeEnough(miss_rate, want_miss))
        state.fail(where, "miss_rate " + std::to_string(miss_rate) +
                              " != cache_misses/cache_refs " +
                              std::to_string(want_miss));

    const std::string measured =
        stringAt(*m, "measured_bound", "<missing>");
    const std::string agreement =
        stringAt(*m, "agreement", "<missing>");
    if (measured == "n/a") {
        // Software tier: no PMU data, so no measured class and no
        // verdict.
        if (agreement != "n/a")
            state.fail(where,
                       "measured_bound n/a but agreement is '" +
                           agreement + "'");
        return;
    }
    const std::string want_bound = deriveMeasuredBound(
        *m, bw_miss_rate, dispatch_instr_per_window);
    if (measured != want_bound)
        state.fail(where, "measured_bound '" + measured +
                              "' but thresholds re-derive '" +
                              want_bound + "'");
    const std::string modeled = stringAt(group, "bound", "<missing>");
    const std::string want_agreement =
        measured == modeled ? "agree" : "disagree";
    if (agreement != want_agreement)
        state.fail(where, "agreement '" + agreement + "' but '" +
                              measured + "' vs modeled '" + modeled +
                              "' means '" + want_agreement + "'");
}

void
checkGroupMap(CheckState &state, const std::string &prefix,
              const JsonValue *map, double bw_miss_rate,
              double dispatch_instr_per_window)
{
    if (map == nullptr || !map->isObject())
        return;
    for (const auto &kv : map->object)
        checkGroup(state, prefix + "." + kv.first, kv.second,
                   bw_miss_rate, dispatch_instr_per_window);
}

void
checkReport(CheckState &state, const std::string &label,
            const JsonValue &report)
{
    const JsonValue *hw = report.find("hwprof");
    if (hw == nullptr || !hw->isObject()) {
        // Unprofiled report: no hwprof block anywhere may appear.
        const JsonValue *total = report.find("total");
        if (total != nullptr && measuredBlock(*total) != nullptr)
            state.fail(label, "total carries hwprof counters but the "
                              "report has no hwprof tier block");
        return;
    }
    const std::string tier = stringAt(*hw, "tier", "<missing>");
    if (tier != "hardware" && tier != "software")
        state.fail(label, "unknown hwprof tier '" + tier + "'");
    const JsonValue *thresholds = hw->find("thresholds");
    if (thresholds == nullptr || !thresholds->isObject()) {
        state.fail(label, "hwprof block without thresholds");
        return;
    }
    const double bw_miss_rate =
        numberAt(*thresholds, "bandwidth_miss_rate");
    const double dispatch_instr =
        numberAt(*thresholds, "dispatch_instructions_per_window");
    if (bw_miss_rate <= 0.0 || dispatch_instr <= 0.0) {
        state.fail(label, "non-positive hwprof thresholds");
        return;
    }
    const JsonValue *total = report.find("total");
    if (total != nullptr)
        checkGroup(state, label + ".total", *total, bw_miss_rate,
                   dispatch_instr);
    checkGroupMap(state, label + ".kernels", report.find("kernels"),
                  bw_miss_rate, dispatch_instr);
    checkGroupMap(state, label + ".layers", report.find("layers"),
                  bw_miss_rate, dispatch_instr);
    checkGroupMap(state, label + ".phases", report.find("phases"),
                  bw_miss_rate, dispatch_instr);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--version") == 0) {
        std::printf("%s\n",
                    buildinfo::versionLine("gnnperf_prof").c_str());
        return 0;
    }
    if (argc != 3)
        return usage(argv[0]);
    const std::string mode = argv[1];
    JsonValue doc;
    if (!loadJson(argv[2], doc))
        return 2;
    const auto reports = collectReports(doc);
    if (reports.empty()) {
        std::fprintf(stderr,
                     "gnnperf_prof: %s: no roofline reports found\n",
                     argv[2]);
        return 2;
    }

    if (mode == "summary") {
        bool any = false;
        for (const auto &kv : reports) {
            summarizeReport(kv.first, *kv.second);
            any = any || kv.second->find("hwprof") != nullptr;
        }
        if (!any)
            std::printf("no hwprof data in %s — nothing to "
                        "reconcile\n",
                        argv[2]);
        return 0;
    }

    if (mode == "check") {
        CheckState state;
        bool any = false;
        for (const auto &kv : reports) {
            checkReport(state, kv.first, *kv.second);
            const JsonValue *hw = kv.second->find("hwprof");
            any = any || (hw != nullptr && hw->isObject());
        }
        if (state.failures > 0) {
            std::fprintf(stderr, "check FAILED: %d violation(s)\n",
                         state.failures);
            return 1;
        }
        if (!any) {
            std::printf("check ok: no hwprof data in %s (nothing to "
                        "verify)\n",
                        argv[2]);
            return 0;
        }
        std::printf("check ok: %zu report(s) reconciled\n",
                    reports.size());
        return 0;
    }

    return usage(argv[0]);
}
