/**
 * @file
 * gnnperf_diff — the run-diff perf gate.
 *
 * Compares two machine-readable run artifacts (stats snapshots,
 * roofline reports/suites, BENCH baselines — any exporter JSON) and
 * exits non-zero when a tracked series regressed beyond the
 * threshold, so CI can gate on it directly.
 *
 * Usage:
 *   gnnperf_diff BASELINE.json CURRENT.json
 *                [--threshold 0.20] [--noise-floor 1e-12]
 *                [--only SUBSTR]... [--ignore SUBSTR]...
 *                [--higher-better SUBSTR]... [--all]
 *
 * --only / --ignore filter series by substring (repeatable). Series
 * matching a --higher-better pattern regress on a *decrease*
 * (defaults: "acc", "utilization"). --all lists unchanged series too.
 *
 * Exit codes: 0 = no regressions, 1 = regressions found, 2 = bad
 * usage or unreadable/unparsable input.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/buildinfo.hh"
#include "common/fs.hh"
#include "common/json.hh"
#include "obs/diff.hh"

using namespace gnnperf;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CURRENT.json "
                 "[--threshold F] [--noise-floor F] [--only S]... "
                 "[--ignore S]... [--higher-better S]... [--all]\n",
                 argv0);
    return 2;
}

bool
loadJson(const char *path, JsonValue &out)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "gnnperf_diff: cannot read %s\n", path);
        return false;
    }
    std::string error;
    if (!parseJson(text, out, &error)) {
        std::fprintf(stderr, "gnnperf_diff: %s: %s\n", path,
                     error.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--version") == 0) {
        std::printf("%s\n",
                    buildinfo::versionLine("gnnperf_diff").c_str());
        return 0;
    }
    const char *paths[2] = {nullptr, nullptr};
    int npaths = 0;
    diff::DiffOptions opts;
    bool all = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threshold") {
            opts.relThreshold = std::atof(value());
        } else if (arg == "--noise-floor") {
            opts.noiseFloor = std::atof(value());
        } else if (arg == "--only") {
            opts.only.push_back(value());
        } else if (arg == "--ignore") {
            opts.ignore.push_back(value());
        } else if (arg == "--higher-better") {
            opts.higherIsBetter.push_back(value());
        } else if (arg == "--all") {
            all = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage(argv[0]);
        } else if (npaths < 2) {
            paths[npaths++] = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (npaths != 2)
        return usage(argv[0]);

    JsonValue baseline, current;
    if (!loadJson(paths[0], baseline) || !loadJson(paths[1], current))
        return 2;

    diff::RunDiff result = diff::compareRuns(baseline, current, opts);
    std::printf("%s", diff::renderRunDiff(result, all).c_str());
    if (!result.ok()) {
        std::printf("FAIL: %zu series regressed beyond %.0f%%\n",
                    result.regressions(), opts.relThreshold * 100.0);
        return 1;
    }
    std::printf("OK: no series regressed beyond %.0f%%\n",
                opts.relThreshold * 100.0);
    return 0;
}
