/**
 * @file
 * gnnperf_trace — inspect, self-check and merge execution traces.
 *
 * Operates on the object-format Chrome trace JSON written by
 * `run_experiment --trace-out` / GNNPERF_TRACE (obs/exec_trace.hh):
 * `{"traceEvents":[...], "meta":..., "stats_peaks":...,
 * "peak_attribution":...}`.
 *
 * Usage:
 *   gnnperf_trace summary FILE     print track/event counts and the
 *                                  peak-attribution report
 *   gnnperf_trace check FILE       verify the exactness contract: the
 *                                  memory counter-track maxima at or
 *                                  after the last reset_peak marker
 *                                  per device equal the recorded
 *                                  MemoryStats peaks, byte for byte
 *   gnnperf_trace merge OUT IN...  merge trace files into one (pids
 *                                  offset per input so tracks stay
 *                                  distinct in the viewer)
 *
 * Exit codes: 0 = ok, 1 = check failed, 2 = bad usage or
 * unreadable/unparsable input.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/buildinfo.hh"
#include "common/fs.hh"
#include "common/json.hh"

using namespace gnnperf;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s summary FILE | check FILE | "
                 "merge OUT IN...\n",
                 argv0);
    return 2;
}

bool
loadJson(const char *path, JsonValue &out)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "gnnperf_trace: cannot read %s\n", path);
        return false;
    }
    std::string error;
    if (!parseJson(text, out, &error)) {
        std::fprintf(stderr, "gnnperf_trace: %s: %s\n", path,
                     error.c_str());
        return false;
    }
    return true;
}

/** The traceEvents array of a document (accepts the bare-array form). */
const JsonValue *
traceEvents(const JsonValue &doc)
{
    if (doc.isArray())
        return &doc;
    const JsonValue *events = doc.find("traceEvents");
    return events != nullptr && events->isArray() ? events : nullptr;
}

/** Per-device recomputation of the counter-track maxima. */
struct DeviceWindow
{
    double lastResetTs = -1.0;
    std::size_t logicalMax = 0;
    std::size_t reservedMax = 0;
    std::size_t counterEvents = 0;
};

/**
 * Scan the memory counter track of one device: find the last
 * reset_peak marker, then the logical/reserved maxima over counter
 * samples at or after it.
 */
DeviceWindow
scanDevice(const JsonValue &events, const std::string &device)
{
    const std::string counter_name = "mem." + device;
    DeviceWindow w;
    // Pass 1: the last reset_peak instant on this device's row.
    for (const JsonValue &ev : events.array) {
        if (ev.at("name").str == "reset_peak" &&
            ev.at("cat").str == counter_name)
            w.lastResetTs = std::max(w.lastResetTs,
                                     ev.at("ts").asNumber());
    }
    // Pass 2: maxima over the final measurement window.
    for (const JsonValue &ev : events.array) {
        if (ev.at("name").str != counter_name ||
            ev.at("ph").str != "C")
            continue;
        ++w.counterEvents;
        if (ev.at("ts").asNumber() < w.lastResetTs)
            continue;
        const JsonValue &args = ev.at("args");
        w.logicalMax = std::max(
            w.logicalMax,
            static_cast<std::size_t>(args.at("logical").asNumber()));
        w.reservedMax = std::max(
            w.reservedMax,
            static_cast<std::size_t>(args.at("reserved").asNumber()));
    }
    return w;
}

bool
checkDevice(const JsonValue &doc, const JsonValue &events,
            const std::string &device)
{
    const DeviceWindow w = scanDevice(events, device);
    const JsonValue &peaks = doc.at("stats_peaks").at(device);
    const auto logical =
        static_cast<std::size_t>(peaks.at("logical").asNumber());
    const auto reserved =
        static_cast<std::size_t>(peaks.at("reserved").asNumber());
    bool ok = true;
    if (w.logicalMax != logical) {
        std::fprintf(stderr,
                     "FAIL %s: logical counter max %zu != stats peak "
                     "%zu\n",
                     device.c_str(), w.logicalMax, logical);
        ok = false;
    }
    if (w.reservedMax != reserved) {
        std::fprintf(stderr,
                     "FAIL %s: reserved counter max %zu != stats peak "
                     "%zu\n",
                     device.c_str(), w.reservedMax, reserved);
        ok = false;
    }
    // Attribution sanity: tracked live bytes never exceed the level.
    for (const char *which : {"logical", "reserved"}) {
        const JsonValue &snap =
            doc.at("peak_attribution").at(device).at(which);
        if (snap.isNull())
            continue;
        const auto total =
            static_cast<std::size_t>(snap.at("total_bytes").asNumber());
        const auto tracked = static_cast<std::size_t>(
            snap.at("tracked_bytes").asNumber());
        if (tracked > total) {
            std::fprintf(stderr,
                         "FAIL %s/%s: tracked bytes %zu > total %zu\n",
                         device.c_str(), which, tracked, total);
            ok = false;
        }
    }
    if (ok) {
        std::printf("ok %s: logical peak %zu, reserved peak %zu "
                    "(%zu counter samples)\n",
                    device.c_str(), logical, reserved,
                    w.counterEvents);
    }
    return ok;
}

int
cmdCheck(const char *path)
{
    JsonValue doc;
    if (!loadJson(path, doc))
        return 2;
    const JsonValue *events = traceEvents(doc);
    if (events == nullptr) {
        std::fprintf(stderr, "gnnperf_trace: %s: no traceEvents\n",
                     path);
        return 2;
    }
    bool ok = checkDevice(doc, *events, "cuda");
    ok = checkDevice(doc, *events, "host") && ok;
    return ok ? 0 : 1;
}

void
printSnapshot(const char *device, const char *which,
              const JsonValue &snap)
{
    if (!snap.at("valid").boolean) {
        std::printf("  %s %s peak: (none recorded)\n", device, which);
        return;
    }
    std::printf("  %s %s peak: %.0f bytes in phase %s", device, which,
                snap.at("total_bytes").asNumber(),
                snap.at("phase").str.c_str());
    if (!snap.at("layer").str.empty())
        std::printf(", layer %s", snap.at("layer").str.c_str());
    if (!snap.at("span").str.empty())
        std::printf(", span %s", snap.at("span").str.c_str());
    std::printf("\n");
    for (const JsonValue &block : snap.at("top_blocks").array) {
        std::printf("    block #%.0f: %.0f bytes (%s%s%s)\n",
                    block.at("id").asNumber(),
                    block.at("bytes").asNumber(),
                    block.at("phase").str.c_str(),
                    block.at("layer").str.empty() ? "" : ", ",
                    block.at("layer").str.c_str());
    }
}

int
cmdSummary(const char *path)
{
    JsonValue doc;
    if (!loadJson(path, doc))
        return 2;
    const JsonValue *events = traceEvents(doc);
    if (events == nullptr) {
        std::fprintf(stderr, "gnnperf_trace: %s: no traceEvents\n",
                     path);
        return 2;
    }

    // Event counts per pid (track group).
    std::vector<std::pair<int, std::size_t>> by_pid;
    for (const JsonValue &ev : events->array) {
        const int pid = static_cast<int>(ev.at("pid").asNumber());
        bool found = false;
        for (auto &[p, n] : by_pid) {
            if (p == pid) {
                ++n;
                found = true;
            }
        }
        if (!found)
            by_pid.emplace_back(pid, 1);
    }
    std::printf("%s: %zu events in %zu track groups\n", path,
                events->array.size(), by_pid.size());
    for (const auto &[pid, n] : by_pid)
        std::printf("  pid %d: %zu events\n", pid, n);

    const JsonValue &meta = doc.at("meta");
    if (meta.isObject()) {
        std::printf("  backend %s, %0.f simulated epochs, "
                    "%.0f spans (%.0f dropped), %.0f mem events "
                    "(%.0f dropped)\n",
                    meta.at("backend").str.c_str(),
                    meta.at("simulated_epochs").asNumber(),
                    meta.at("span_count").asNumber(),
                    meta.at("spans_dropped").asNumber(),
                    meta.at("mem_event_count").asNumber(),
                    meta.at("mem_events_dropped").asNumber());
    }
    const JsonValue &attribution = doc.at("peak_attribution");
    if (attribution.isObject()) {
        for (const char *device : {"cuda", "host"}) {
            for (const char *which : {"logical", "reserved"}) {
                printSnapshot(device, which,
                              attribution.at(device).at(which));
            }
        }
    }
    return 0;
}

/** Shift every pid in an event list so merged inputs stay distinct. */
void
offsetPids(JsonValue &events, double offset)
{
    for (JsonValue &ev : events.array) {
        for (auto &[key, value] : ev.object) {
            if (key == "pid" && value.isNumber())
                value.number += offset;
        }
    }
}

int
cmdMerge(const char *out_path, const std::vector<const char *> &inputs)
{
    JsonValue merged;
    merged.type = JsonValue::Type::Object;
    JsonValue all_events;
    all_events.type = JsonValue::Type::Array;
    JsonValue sources;
    sources.type = JsonValue::Type::Array;

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        JsonValue doc;
        if (!loadJson(inputs[i], doc))
            return 2;
        const JsonValue *events = traceEvents(doc);
        if (events == nullptr) {
            std::fprintf(stderr,
                         "gnnperf_trace: %s: no traceEvents\n",
                         inputs[i]);
            return 2;
        }
        JsonValue copy = *events;
        // 100 pids per input leaves room for every track group.
        offsetPids(copy, static_cast<double>(i) * 100.0);
        for (JsonValue &ev : copy.array)
            all_events.array.push_back(std::move(ev));
        JsonValue src;
        src.type = JsonValue::Type::String;
        src.str = inputs[i];
        sources.array.push_back(std::move(src));
    }
    merged.object.emplace_back("traceEvents", std::move(all_events));
    merged.object.emplace_back("merged_from", std::move(sources));
    writeFile(out_path, jsonToString(merged) + "\n");
    std::printf("wrote %s (%zu inputs)\n", out_path, inputs.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--version") == 0) {
        std::printf("%s\n",
                    buildinfo::versionLine("gnnperf_trace").c_str());
        return 0;
    }
    if (argc < 3)
        return usage(argv[0]);
    const char *cmd = argv[1];
    if (std::strcmp(cmd, "summary") == 0 && argc == 3)
        return cmdSummary(argv[2]);
    if (std::strcmp(cmd, "check") == 0 && argc == 3)
        return cmdCheck(argv[2]);
    if (std::strcmp(cmd, "merge") == 0 && argc >= 4) {
        std::vector<const char *> inputs(argv + 3, argv + argc);
        return cmdMerge(argv[2], inputs);
    }
    return usage(argv[0]);
}
