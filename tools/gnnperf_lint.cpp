/**
 * @file
 * gnnperf_lint — repo-specific static checks the compiler cannot see.
 *
 * Walks the source tree (common/fs) and enforces five conventions
 * that keep the observability and memory layers trustworthy:
 *
 *  1. no raw `new` / `delete` outside src/device/ — storage must flow
 *     through the allocator layer so the Fig. 4 accounting stays
 *     complete. Leaked process singletons carry a same-line
 *     `lint:allow` marker with a reason.
 *  2. no `std::cout` outside tools/ and bench/ — library code reports
 *     through the logging/stats/export layers, never stdout.
 *  3. every kernel-name literal passed to recordKernel (and its
 *     wrappers) is registered in src/device/kernel_registry.cc, so
 *     roofline/diff/doc name keys cannot drift.
 *  4. every `stats.` metric-name literal registered in src/ is
 *     mentioned in docs/OBSERVABILITY.md, so the metric reference
 *     stays complete.
 *  5. every `GNNPERF_*` environment-variable literal under src/ is
 *     mentioned in the src/common/env.hh docblock, so the knob
 *     reference stays complete.
 *
 * Usage:
 *   gnnperf_lint [REPO_ROOT]
 *
 * Exit codes (matching gnnperf_diff): 0 = clean, 1 = violations
 * found, 2 = bad usage or unreadable tree.
 */

#include <cstdio>
#include <cstring>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "common/buildinfo.hh"
#include "common/fs.hh"

using namespace gnnperf;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr, "usage: %s [REPO_ROOT]\n", argv0);
    return 2;
}

struct Violation
{
    std::string file;
    int line;
    std::string message;
};

std::vector<Violation> g_violations;

void
report(const std::string &file, int line, const std::string &message)
{
    g_violations.push_back(Violation{file, line, message});
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool
contains(const std::string &s, const char *needle)
{
    return s.find(needle) != std::string::npos;
}

/** C++ translation units and headers under lint jurisdiction. */
bool
isSourceFile(const std::string &path)
{
    return endsWith(path, ".cc") || endsWith(path, ".cpp") ||
           endsWith(path, ".hh") || endsWith(path, ".h");
}

/**
 * Strip line comments, block comments and string/char literals so the
 * structural rules (new/delete, std::cout) cannot fire on prose or
 * message text. Preserves line structure; the `lint:allow` marker is
 * checked on the raw line before the stripped one is matched.
 */
std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum { Code, Line, Block, Str, Chr } state = Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case Code:
            if (c == '/' && n == '/') {
                state = Line;
                ++i;
            } else if (c == '/' && n == '*') {
                state = Block;
                ++i;
            } else if (c == '"') {
                state = Str;
                out.push_back(' ');
            } else if (c == '\'') {
                state = Chr;
                out.push_back(' ');
            } else {
                out.push_back(c);
            }
            break;
          case Line:
            if (c == '\n') {
                state = Code;
                out.push_back('\n');
            }
            break;
          case Block:
            if (c == '*' && n == '/') {
                state = Code;
                ++i;
            } else if (c == '\n') {
                out.push_back('\n');
            }
            break;
          case Str:
            if (c == '\\')
                ++i;
            else if (c == '"')
                state = Code;
            else if (c == '\n')
                out.push_back('\n');
            break;
          case Chr:
            if (c == '\\')
                ++i;
            else if (c == '\'')
                state = Code;
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

/** Rule 1: raw new/delete outside src/device/. */
void
checkRawNewDelete(const std::string &file, const std::string &rel,
                  const std::vector<std::string> &raw,
                  const std::vector<std::string> &code)
{
    if (rel.rfind("src/", 0) != 0 || rel.rfind("src/device/", 0) == 0)
        return;
    static const std::regex new_re(
        "\\bnew\\b\\s*(\\(|[A-Za-z_:])");
    static const std::regex delete_re("\\bdelete\\b\\s*(\\[\\])?\\s*"
                                      "[A-Za-z_\\(\\*]");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (i < raw.size() && contains(raw[i], "lint:allow"))
            continue;
        if (std::regex_search(code[i], new_re))
            report(file, static_cast<int>(i + 1),
                   "raw `new` outside src/device/ — allocate through "
                   "the device allocator layer, or mark a leaked "
                   "singleton with `lint:allow <reason>`");
        if (std::regex_search(code[i], delete_re))
            report(file, static_cast<int>(i + 1),
                   "raw `delete` outside src/device/ — release "
                   "through the device allocator layer, or mark with "
                   "`lint:allow <reason>`");
    }
}

/** Rule 2: std::cout outside tools/ and bench/. */
void
checkStdout(const std::string &file, const std::string &rel,
            const std::vector<std::string> &raw,
            const std::vector<std::string> &code)
{
    if (rel.rfind("tools/", 0) == 0 || rel.rfind("bench/", 0) == 0)
        return;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (i < raw.size() && contains(raw[i], "lint:allow"))
            continue;
        if (contains(code[i], "std::cout"))
            report(file, static_cast<int>(i + 1),
                   "std::cout outside tools//bench/ — library code "
                   "reports through logging/stats/export");
    }
}

/** Extract every string literal between `from` and `to` markers. */
std::set<std::string>
literalsBetween(const std::string &text, const char *from,
                const char *to)
{
    std::set<std::string> out;
    const std::size_t b = text.find(from);
    if (b == std::string::npos)
        return out;
    std::size_t e = text.find(to, b);
    if (e == std::string::npos)
        e = text.size();
    static const std::regex lit_re("\"([^\"]*)\"");
    auto begin = std::sregex_iterator(text.begin() + b, text.begin() + e,
                                      lit_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
        out.insert((*it)[1].str());
    return out;
}

/**
 * Rule 3: kernel-name literals passed to the record wrappers must be
 * registered. Matches the first string literal inside the call parens
 * (calls that pass a variable name are covered at runtime by the
 * checked-build assert in Profiler::recordKernel).
 */
void
checkKernelNames(const std::string &file, const std::string &text,
                 const std::set<std::string> &registered)
{
    static const std::regex call_re(
        "(?:recordKernel|recordGemm|recordSpmm|recordElementwise|"
        "binaryOp|unaryOp|segmentReduce|segmentBroadcast)\\s*\\("
        "[^\")]*\"([A-Za-z0-9_.]+)\"");
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        call_re);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (registered.count(name) != 0)
            continue;
        const int line = 1 + static_cast<int>(std::count(
                                 text.begin(),
                                 text.begin() + it->position(0), '\n'));
        report(file, line,
               "kernel '" + name +
                   "' is not registered in "
                   "src/device/kernel_registry.cc");
    }
}

/**
 * Rule 4: every stats metric-name literal must appear in
 * docs/OBSERVABILITY.md.
 */
void
checkMetricNames(const std::string &file, const std::string &text,
                 const std::string &doc)
{
    static const std::regex metric_re(
        "stats::(?:counter|gauge|distribution)\\s*\\(\\s*"
        "\"([A-Za-z0-9_.]+)\"");
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        metric_re);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (contains(doc, ("`" + name + "`").c_str()))
            continue;
        const int line = 1 + static_cast<int>(std::count(
                                 text.begin(),
                                 text.begin() + it->position(0), '\n'));
        report(file, line,
               "metric '" + name +
                   "' is not documented in docs/OBSERVABILITY.md");
    }
}

/**
 * Rule 5: every GNNPERF_* environment-variable literal must appear in
 * the src/common/env.hh docblock (the knob reference).
 */
void
checkEnvNames(const std::string &file, const std::string &text,
              const std::string &env_doc)
{
    static const std::regex env_re("\"(GNNPERF_[A-Z0-9_]+)\"");
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        env_re);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (contains(env_doc, name.c_str()))
            continue;
        const int line = 1 + static_cast<int>(std::count(
                                 text.begin(),
                                 text.begin() + it->position(0), '\n'));
        report(file, line,
               "env var '" + name +
                   "' is not documented in src/common/env.hh");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--version") == 0) {
        std::printf("%s\n",
                    buildinfo::versionLine("gnnperf_lint").c_str());
        return 0;
    }
    std::string root = ".";
    if (argc > 2)
        return usage(argv[0]);
    if (argc == 2) {
        if (std::strcmp(argv[1], "-h") == 0 ||
            std::strcmp(argv[1], "--help") == 0)
            return usage(argv[0]);
        root = argv[1];
    }

    std::vector<std::string> files;
    bool any_dir = false;
    for (const char *dir : {"src", "tools", "bench", "tests"}) {
        std::vector<std::string> sub;
        if (!listFiles(root + "/" + dir, {}, sub))
            continue;
        any_dir = true;
        for (std::string &f : sub)
            if (isSourceFile(f))
                files.push_back(std::move(f));
    }
    if (!any_dir) {
        std::fprintf(stderr,
                     "gnnperf_lint: %s has no src/tools/bench/tests "
                     "directories — wrong root?\n",
                     root.c_str());
        return 2;
    }

    std::string registry_text;
    if (!readFile(root + "/src/device/kernel_registry.cc",
                  registry_text)) {
        std::fprintf(stderr,
                     "gnnperf_lint: cannot read "
                     "src/device/kernel_registry.cc under %s\n",
                     root.c_str());
        return 2;
    }
    const std::set<std::string> registered =
        literalsBetween(registry_text, "kKernelNames[] = {", "};");
    if (registered.empty()) {
        std::fprintf(stderr, "gnnperf_lint: kernel registry table "
                             "parsed empty\n");
        return 2;
    }

    std::string doc;
    if (!readFile(root + "/docs/OBSERVABILITY.md", doc)) {
        std::fprintf(stderr, "gnnperf_lint: cannot read "
                             "docs/OBSERVABILITY.md under %s\n",
                     root.c_str());
        return 2;
    }

    std::string env_doc;
    if (!readFile(root + "/src/common/env.hh", env_doc)) {
        std::fprintf(stderr, "gnnperf_lint: cannot read "
                             "src/common/env.hh under %s\n",
                     root.c_str());
        return 2;
    }

    const std::string prefix = root == "." ? "" : root + "/";
    for (const std::string &file : files) {
        std::string text;
        if (!readFile(file, text)) {
            std::fprintf(stderr, "gnnperf_lint: cannot read %s\n",
                         file.c_str());
            return 2;
        }
        std::string rel = file;
        if (!prefix.empty() && rel.rfind(prefix, 0) == 0)
            rel = rel.substr(prefix.size());
        else if (rel.rfind("./", 0) == 0)
            rel = rel.substr(2);

        const std::vector<std::string> raw = splitLines(text);
        const std::string stripped = stripCommentsAndStrings(text);
        const std::vector<std::string> code = splitLines(stripped);

        const bool in_src = rel.rfind("src/", 0) == 0;
        checkRawNewDelete(rel, rel, raw, code);
        checkStdout(rel, rel, raw, code);
        if (in_src) {
            // Name rules match the raw text: the literals themselves
            // are what is being checked.
            checkKernelNames(rel, text, registered);
            checkMetricNames(rel, text, doc);
            if (rel != "src/common/env.hh")
                checkEnvNames(rel, text, env_doc);
        }
    }

    for (const Violation &v : g_violations)
        std::printf("%s:%d: %s\n", v.file.c_str(), v.line,
                    v.message.c_str());
    if (!g_violations.empty()) {
        std::printf("gnnperf_lint: %zu violation(s)\n",
                    g_violations.size());
        return 1;
    }
    std::printf("gnnperf_lint: clean (%zu files)\n", files.size());
    return 0;
}
