/**
 * @file
 * Table I — dataset statistics of the five (synthetic stand-in)
 * datasets. Paper values for reference:
 *   Cora    1 graph, 2708 nodes, 5429 edges, 1433 feats, 7 classes
 *   PubMed  1 graph, 19717 nodes, 44338 edges, 500 feats, 3 classes
 *   ENZYMES 600 graphs, 32.63 nodes, 62.14 edges, 18 feats, 6 classes
 *   MNIST   70000 graphs, 70.57 nodes, 564.53 edges, 1 feat, 10 cls
 *   DD      1178 graphs, 284.32 nodes, 715.66 edges, 89 feats, 2 cls
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("table1");
    banner("Table I — dataset statistics", "paper Table I");

    std::vector<DatasetInfo> infos;
    infos.push_back(benchCora().info());
    infos.push_back(benchPubMed().info());
    infos.push_back(benchEnzymes().info());
    infos.push_back(benchMnist().info());
    infos.push_back(benchDD().info());

    std::printf("%s\n", renderDatasetTable(infos).c_str());
    maybeWriteCsv("table1_datasets.csv", datasetInfoCsv(infos));
    std::printf("Note: at smoke scale PubMed/ENZYMES/MNIST/DD are "
                "sub-sampled; run with GNNPERF_SCALE=full for the "
                "paper's sizes.\n");
    return 0;
}
