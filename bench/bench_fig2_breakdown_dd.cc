/**
 * @file
 * Fig. 2 — per-epoch execution-time breakdown on DD at batch sizes
 * 64/128/256.
 *
 * Expected shape vs the paper: unlike ENZYMES, doubling the batch
 * size barely reduces forward+backward time (DD's big graphs make the
 * kernels compute-bound); DGL loading still dominates PyG's.
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("fig2");
    banner("Fig. 2 — epoch-time breakdown on DD", "paper Fig. 2");
    const int epochs = static_cast<int>(envEpochs(2, 5));

    GraphDataset dd = benchDD();
    auto cells = runProfileGrid(dd, allModels(), {64, 128, 256},
                                epochs, /*seed=*/1);
    std::printf("%s\n", renderBreakdownTable(dd.name, cells).c_str());
    maybeWriteCsv("fig2_dd_breakdown.csv",
                  profileGridCsv(dd.name, cells));
    return 0;
}
