/**
 * @file
 * Fig. 6 — multi-GPU DataParallel scaling: time per epoch of GCN and
 * GAT on MNIST-superpixels at batch sizes 128/256/512 on 1/2/4/8
 * GPUs, under both frameworks.
 *
 * Expected shape vs the paper: small epoch-time reductions from 1→2
 * and 2→4 GPUs (host-side data loading bounds the speedup); from 4→8
 * GPUs the time flattens or increases (replication/transfer
 * overhead).
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("fig6");
    banner("Fig. 6 — multi-GPU scaling on MNIST", "paper Fig. 6");

    GraphDataset mnist = benchMnist();
    DatasetInfo info = mnist.info();
    std::printf("%s: %ld graphs, avg %.1f nodes / %.1f edges\n\n",
                info.name.c_str(), info.numGraphs, info.avgNodes,
                info.avgEdges);

    auto cells = runMultiGpuScaling(
        mnist, {ModelKind::GCN, ModelKind::GAT}, {128, 256, 512},
        {1, 2, 4, 8}, /*seed=*/3);
    std::printf("%s\n", renderMultiGpuTable(mnist.name, cells).c_str());
    maybeWriteCsv("fig6_multigpu.csv", multiGpuCsv(mnist.name, cells));
    return 0;
}
