/**
 * @file
 * Table V — graph classification on ENZYMES and DD with stratified
 * k-fold cross-validation: time per epoch, total training time and
 * test accuracy ± s.d. for the six models under both frameworks.
 *
 * Expected shape vs the paper: PyG significantly faster than DGL on
 * every model/dataset; GatedGCN under DGL is the slowest cell;
 * accuracies similar across frameworks.
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("table5");
    Baseline baseline("table5");
    banner("Table V — graph classification (ENZYMES, DD)",
           "paper Table V");
    const int folds = static_cast<int>(envFolds(2, 10));
    const int enz_epochs = static_cast<int>(envEpochs(10, 1000));
    const int dd_epochs = static_cast<int>(envEpochs(5, 1000));
    std::printf("folds=%d, max epochs: ENZYMES=%d DD=%d\n\n", folds,
                enz_epochs, dd_epochs);

    {
        GraphDataset enzymes = benchEnzymes();
        auto rows = runGraphClassification(enzymes, allModels(), folds,
                                           enz_epochs, /*seed=*/1);
        std::printf("%s\n",
                    renderGraphTable(enzymes.name, rows).c_str());
        maybeWriteCsv("table5_enzymes.csv",
                      graphTableCsv(enzymes.name, rows));
        baseline.addGraphRows("enzymes", rows);
    }
    {
        GraphDataset dd = benchDD();
        auto rows = runGraphClassification(dd, allModels(), folds,
                                           dd_epochs, /*seed=*/1);
        std::printf("%s\n", renderGraphTable(dd.name, rows).c_str());
        maybeWriteCsv("table5_dd.csv", graphTableCsv(dd.name, rows));
        baseline.addGraphRows("dd", rows);
    }
    return 0;
}
