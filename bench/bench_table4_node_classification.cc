/**
 * @file
 * Table IV — node classification on Cora and PubMed: time per epoch,
 * total training time and test accuracy ± s.d. for the six models
 * under both frameworks.
 *
 * Expected shape vs the paper: PyG beats DGL on epoch time for every
 * model; anisotropic models (GAT/MoNet/GatedGCN) cost more than
 * isotropic ones; DGL GatedGCN is the slowest cell by a wide margin
 * (edge-feature updates); accuracies are statistically similar across
 * frameworks.
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("table4");
    Baseline baseline("table4");
    banner("Table IV — node classification (Cora, PubMed)",
           "paper Table IV");
    const int seeds = static_cast<int>(envSeeds(2, 4));
    const int epochs = static_cast<int>(envEpochs(30, 200));
    std::printf("seeds=%d, max epochs=%d\n\n", seeds, epochs);

    {
        NodeDataset cora = benchCora();
        auto rows = runNodeClassification(cora, allModels(), seeds,
                                          epochs);
        std::printf("%s\n", renderNodeTable(cora.name, rows).c_str());
        maybeWriteCsv("table4_cora.csv",
                      nodeTableCsv(cora.name, rows));
        baseline.addNodeRows("cora", rows);
    }
    {
        NodeDataset pubmed = benchPubMed();
        auto rows = runNodeClassification(pubmed, allModels(), seeds,
                                          epochs);
        std::printf("%s\n", renderNodeTable(pubmed.name, rows).c_str());
        maybeWriteCsv("table4_pubmed.csv",
                      nodeTableCsv(pubmed.name, rows));
        baseline.addNodeRows("pubmed", rows);
    }
    return 0;
}
