/**
 * @file
 * Fig. 4 — peak device memory of training at batch sizes 64/128/256
 * on ENZYMES and DD for the six models under both frameworks.
 *
 * Expected shape vs the paper: DGL uses more memory than PyG in most
 * cells; anisotropic models use more than isotropic ones and grow
 * faster with batch size; DGL GatedGCN is the largest cell by far
 * (edge-feature stream through a fully connected layer); within PyG,
 * GAT is the hungriest (materialised per-edge multi-head messages).
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("fig4");
    banner("Fig. 4 — peak memory usage (ENZYMES, DD)",
           "paper Fig. 4");
    const int epochs = static_cast<int>(envEpochs(1, 3));

    {
        GraphDataset enzymes = benchEnzymes();
        auto cells = runProfileGrid(enzymes, allModels(),
                                    {64, 128, 256}, epochs, /*seed=*/1);
        std::printf("%s\n",
                    renderMemoryTable(enzymes.name, cells).c_str());
        maybeWriteCsv("fig4_enzymes_memory.csv",
                      profileGridCsv(enzymes.name, cells));
    }
    {
        GraphDataset dd = benchDD();
        auto cells = runProfileGrid(dd, allModels(), {64, 128, 256},
                                    epochs, /*seed=*/1);
        std::printf("%s\n", renderMemoryTable(dd.name, cells).c_str());
        maybeWriteCsv("fig4_dd_memory.csv",
                      profileGridCsv(dd.name, cells));
    }
    std::printf("Note: 'Peak' is the logical live-tensor high-water "
                "mark (allocator-invariant); 'Reserved' is the "
                "allocator pool's high-water mark — the number "
                "nvidia-smi (the paper's tool) actually sees, minus "
                "the ~0.5 GiB CUDA context.\n");
    return 0;
}
