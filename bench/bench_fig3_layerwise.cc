/**
 * @file
 * Fig. 3 — layer-wise forward execution time of one training
 * iteration on ENZYMES (batch 128) for the six models under both
 * frameworks.
 *
 * Expected shape vs the paper: DGL conv layers cost more than PyG's;
 * conv1 is the most expensive conv under DGL; DGL's pooling (segment
 * reduction) costs more than PyG's scatter-based pooling.
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("fig3");
    banner("Fig. 3 — layer-wise execution time on ENZYMES",
           "paper Fig. 3");
    const int epochs = static_cast<int>(envEpochs(2, 5));

    GraphDataset enzymes = benchEnzymes();
    auto cells = runLayerwiseProfile(enzymes, allModels(), 128, epochs,
                                     /*seed=*/1);
    std::printf("%s\n",
                renderLayerwiseTable(enzymes.name, cells).c_str());
    maybeWriteCsv("fig3_layerwise.csv",
                  profileGridCsv(enzymes.name, cells));
    return 0;
}
