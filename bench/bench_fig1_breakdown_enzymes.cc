/**
 * @file
 * Fig. 1 — per-epoch execution-time breakdown (data loading /
 * forward / backward / update / other) on ENZYMES at batch sizes
 * 64/128/256 for the six models under both frameworks.
 *
 * Expected shape vs the paper: data loading is the dominant share;
 * DGL's loading is much larger than PyG's; doubling the batch size
 * nearly halves forward+backward time (small graphs are
 * dispatch-bound).
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("fig1");
    banner("Fig. 1 — epoch-time breakdown on ENZYMES",
           "paper Fig. 1");
    const int epochs = static_cast<int>(envEpochs(2, 5));

    GraphDataset enzymes = benchEnzymes();
    auto cells = runProfileGrid(enzymes, allModels(), {64, 128, 256},
                                epochs, /*seed=*/1);
    std::printf("%s\n",
                renderBreakdownTable(enzymes.name, cells).c_str());
    maybeWriteCsv("fig1_enzymes_breakdown.csv",
                  profileGridCsv(enzymes.name, cells));
    return 0;
}
