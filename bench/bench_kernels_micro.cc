/**
 * @file
 * Microbenchmarks (google-benchmark) for the framework-differentiated
 * kernels — the ablations behind the paper's §IV-C analysis:
 *
 *  - PyG gather+scatter aggregation vs DGL fused GSpMM
 *  - PyG Batch.from_data_list collation vs DGL heterograph collation
 *  - PyG scatter-based pooling vs DGL segment reduction
 *  - PyG composed edge softmax vs DGL fused edge softmax
 *
 * These measure REAL CPU time of our implementations (not the
 * simulated-GPU times the table benches report); they justify the
 * relative op counts/bytes that drive the timing model.
 *
 * After the google-benchmark suite, a thread-scaling pass times the
 * hot kernels at 1/2/4/hw pool widths (src/parallel/), asserts each
 * width's output is byte-identical to the single-thread run, and emits
 * the results as `threads.<kernel>.t<N>.{ms,speedup_x,match_t1}`
 * series into the BENCH baseline (GNNPERF_CSV_DIR →
 * BENCH_kernels_micro.json) so `gnnperf_diff` can gate the
 * deterministic match_t1 bits. Wall-clock ms/speedup values are
 * machine-dependent; gate them only with generous thresholds.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>

#include "autograd/functions.hh"
#include "backends/backend.hh"
#include "bench_common.hh"
#include "common/random.hh"
#include "data/tu_dataset.hh"
#include "device/device.hh"
#include "device/profiler.hh"
#include "graph/edge_softmax.hh"
#include "graph/scatter.hh"
#include "graph/segment.hh"
#include "graph/spmm.hh"
#include "parallel/thread_pool.hh"
#include "tensor/init.hh"
#include "tensor/matmul.hh"
#include "tensor/ops.hh"

namespace {

using namespace gnnperf;

/** A reusable collated batch fixture. */
struct BatchFixture
{
    GraphDataset dataset;
    BatchedGraph batch;
    Tensor features;

    BatchFixture(int64_t graphs, int64_t feat, FrameworkKind fw)
        : dataset(makeEnzymes(3, graphs))
    {
        std::vector<const Graph *> members;
        for (const Graph &g : dataset.graphs)
            members.push_back(&g);
        batch = getBackend(fw).collate(members);
        Rng rng(5);
        features = init::normal({batch.numNodes, feat}, 0.0f, 1.0f,
                                rng);
        batch.ensureInIndex();
        batch.ensureOutIndex();
    }
};

void
BM_AggregatePygScatter(benchmark::State &state)
{
    BatchFixture fix(64, state.range(0), FrameworkKind::PyG);
    Backend &backend = getBackend(FrameworkKind::PyG);
    for (auto _ : state) {
        Var out = backend.aggregate(fix.batch, Var(fix.features),
                                    Reduce::Sum);
        benchmark::DoNotOptimize(out.value().data());
    }
    state.SetItemsProcessed(state.iterations() * fix.batch.numEdges());
}
BENCHMARK(BM_AggregatePygScatter)->Arg(32)->Arg(128);

void
BM_AggregateDglGspmm(benchmark::State &state)
{
    BatchFixture fix(64, state.range(0), FrameworkKind::DGL);
    Backend &backend = getBackend(FrameworkKind::DGL);
    for (auto _ : state) {
        Var out = backend.aggregate(fix.batch, Var(fix.features),
                                    Reduce::Sum);
        benchmark::DoNotOptimize(out.value().data());
    }
    state.SetItemsProcessed(state.iterations() * fix.batch.numEdges());
}
BENCHMARK(BM_AggregateDglGspmm)->Arg(32)->Arg(128);

void
BM_CollatePyg(benchmark::State &state)
{
    GraphDataset ds = makeEnzymes(3, state.range(0));
    std::vector<const Graph *> members;
    for (const Graph &g : ds.graphs)
        members.push_back(&g);
    Backend &backend = getBackend(FrameworkKind::PyG);
    for (auto _ : state) {
        BatchedGraph batch = backend.collate(members);
        benchmark::DoNotOptimize(batch.numNodes);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollatePyg)->Arg(64)->Arg(128);

void
BM_CollateDgl(benchmark::State &state)
{
    GraphDataset ds = makeEnzymes(3, state.range(0));
    std::vector<const Graph *> members;
    for (const Graph &g : ds.graphs)
        members.push_back(&g);
    Backend &backend = getBackend(FrameworkKind::DGL);
    for (auto _ : state) {
        BatchedGraph batch = backend.collate(members);
        benchmark::DoNotOptimize(batch.numNodes);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollateDgl)->Arg(64)->Arg(128);

void
BM_ReadoutPygScatterPool(benchmark::State &state)
{
    BatchFixture fix(128, 64, FrameworkKind::PyG);
    Backend &backend = getBackend(FrameworkKind::PyG);
    for (auto _ : state) {
        Var out = backend.readoutMean(fix.batch, Var(fix.features));
        benchmark::DoNotOptimize(out.value().data());
    }
}
BENCHMARK(BM_ReadoutPygScatterPool);

void
BM_ReadoutDglSegment(benchmark::State &state)
{
    BatchFixture fix(128, 64, FrameworkKind::DGL);
    Backend &backend = getBackend(FrameworkKind::DGL);
    for (auto _ : state) {
        Var out = backend.readoutMean(fix.batch, Var(fix.features));
        benchmark::DoNotOptimize(out.value().data());
    }
}
BENCHMARK(BM_ReadoutDglSegment);

void
BM_EdgeSoftmaxPygComposed(benchmark::State &state)
{
    BatchFixture fix(64, 8, FrameworkKind::PyG);
    Rng rng(9);
    Tensor logits = init::normal({fix.batch.numEdges(), 8}, 0.0f, 1.0f,
                                 rng);
    Backend &backend = getBackend(FrameworkKind::PyG);
    for (auto _ : state) {
        Var out = backend.edgeSoftmax(fix.batch, Var(logits));
        benchmark::DoNotOptimize(out.value().data());
    }
}
BENCHMARK(BM_EdgeSoftmaxPygComposed);

void
BM_EdgeSoftmaxDglFused(benchmark::State &state)
{
    BatchFixture fix(64, 8, FrameworkKind::DGL);
    Rng rng(9);
    Tensor logits = init::normal({fix.batch.numEdges(), 8}, 0.0f, 1.0f,
                                 rng);
    Backend &backend = getBackend(FrameworkKind::DGL);
    for (auto _ : state) {
        Var out = backend.edgeSoftmax(fix.batch, Var(logits));
        benchmark::DoNotOptimize(out.value().data());
    }
}
BENCHMARK(BM_EdgeSoftmaxDglFused);

/**
 * Allocator ablation: the same aggregation kernel loop under the
 * direct and the caching allocator. The loop's intermediates churn
 * through the allocator every iteration, so the caching pool turns
 * almost all backing (device) allocations into cache hits while the
 * logical bytes stay identical.
 */
void
BM_AggregateAllocator(benchmark::State &state, AllocatorKind which)
{
    DeviceManager &dm = DeviceManager::instance();
    const AllocatorKind saved = dm.allocatorKind(DeviceKind::Cuda);
    dm.setAllocator(which);
    dm.emptyCaches();
    {
        BatchFixture fix(64, 64, FrameworkKind::PyG);
        Backend &backend = getBackend(FrameworkKind::PyG);
        const MemoryStats &s = dm.stats(DeviceKind::Cuda);
        const std::size_t allocs0 = s.allocCount;
        const std::size_t hits0 = s.cacheHits;
        const std::size_t acquires0 = s.acquireCount;
        for (auto _ : state) {
            Var out = backend.aggregate(fix.batch, Var(fix.features),
                                        Reduce::Sum);
            benchmark::DoNotOptimize(out.value().data());
        }
        const auto iters = static_cast<double>(state.iterations());
        state.counters["device_allocs_per_iter"] =
            static_cast<double>(s.allocCount - allocs0) / iters;
        state.counters["cache_hits_per_iter"] =
            static_cast<double>(s.cacheHits - hits0) / iters;
        state.counters["acquires_per_iter"] =
            static_cast<double>(s.acquireCount - acquires0) / iters;
    }
    dm.emptyCaches();
    dm.setAllocator(saved);
}
BENCHMARK_CAPTURE(BM_AggregateAllocator, direct,
                  AllocatorKind::Direct);
BENCHMARK_CAPTURE(BM_AggregateAllocator, caching,
                  AllocatorKind::Caching);

void
BM_Sgemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(4);
    Tensor a = init::normal({n, n}, 0.0f, 1.0f, rng);
    Tensor b = init::normal({n, n}, 0.0f, 1.0f, rng);
    for (auto _ : state) {
        Tensor c = ops::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(256);

/**
 * Thread-scaling series: per kernel, wall-clock best-of-5 at each pool
 * width plus a byte-identity bit against the single-thread output.
 */
void
runThreadScaling(bench::Baseline &base)
{
    std::printf("\nthread scaling (best-of-5 wall ms per width)\n");
    BatchFixture fix(64, 64, FrameworkKind::DGL);
    const CsrIndex &in = *fix.batch.inIndex;
    Rng rng(11);
    const Tensor ga = init::normal({256, 256}, 0.0f, 1.0f, rng);
    const Tensor gb = init::normal({256, 256}, 0.0f, 1.0f, rng);
    const Tensor logits =
        init::normal({fix.batch.numEdges(), 8}, 0.0f, 1.0f, rng);

    struct ScaleKernel
    {
        const char *name;
        std::function<Tensor()> run;
    };
    const std::vector<ScaleKernel> kernels = {
        {"spmm", [&] { return graphops::spmmCopyUSum(in, fix.features); }},
        {"gemm", [&] { return ops::matmul(ga, gb); }},
        {"edge_softmax",
         [&] { return graphops::edgeSoftmaxFused(in, logits); }},
        {"segment_sum",
         [&] {
             return graphops::segmentSum(fix.features,
                                         fix.batch.graphPtr);
         }},
        {"scatter_add",
         [&] {
             return ops::scatterAddRows(fix.features, fix.batch.nodeGraph,
                                        fix.batch.numGraphs);
         }},
        {"relu", [&] { return ops::relu(fix.features); }},
    };

    std::vector<int> widths = {1, 2, 4,
                               par::ThreadPool::defaultThreads()};
    std::sort(widths.begin(), widths.end());
    widths.erase(std::unique(widths.begin(), widths.end()),
                 widths.end());

    auto bestMs = [](const std::function<Tensor()> &run) {
        double best = 1e300;
        for (int rep = 0; rep < 5; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            Tensor out = run();
            const auto t1 = std::chrono::steady_clock::now();
            benchmark::DoNotOptimize(out.data());
            best = std::min(
                best, std::chrono::duration<double, std::milli>(t1 - t0)
                          .count());
        }
        return best;
    };

    for (const auto &k : kernels) {
        Tensor ref;
        double t1_ms = 0.0;
        {
            par::ThreadScope scope(1);
            ref = k.run(); // warm-up + reference output
            t1_ms = bestMs(k.run);
        }
        for (int w : widths) {
            par::ThreadScope scope(w);
            Tensor out = k.run(); // warm-up + identity check
            const bool match =
                out.numel() == ref.numel() &&
                std::memcmp(out.data(), ref.data(),
                            static_cast<std::size_t>(out.numel()) *
                                sizeof(float)) == 0;
            const double ms = bestMs(k.run);
            const std::string key =
                std::string("threads.") + k.name + ".t" +
                std::to_string(w);
            base.add(key + ".ms", ms);
            base.add(key + ".speedup_x", ms > 0.0 ? t1_ms / ms : 0.0);
            base.add(key + ".match_t1", match ? 1.0 : 0.0);
            std::printf("  %-14s t%-2d %8.3f ms  %5.2fx  %s\n", k.name,
                        w, ms, ms > 0.0 ? t1_ms / ms : 0.0,
                        match ? "bitwise==t1" : "MISMATCH");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::StatsScope stats("kernels_micro");
    bench::Baseline baseline("kernels_micro");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    runThreadScaling(baseline);
    return 0;
}
