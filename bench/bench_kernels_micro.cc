/**
 * @file
 * Microbenchmarks (google-benchmark) for the framework-differentiated
 * kernels — the ablations behind the paper's §IV-C analysis:
 *
 *  - PyG gather+scatter aggregation vs DGL fused GSpMM
 *  - PyG Batch.from_data_list collation vs DGL heterograph collation
 *  - PyG scatter-based pooling vs DGL segment reduction
 *  - PyG composed edge softmax vs DGL fused edge softmax
 *
 * These measure REAL single-core CPU time of our implementations (not
 * the simulated-GPU times the table benches report); they justify the
 * relative op counts/bytes that drive the timing model.
 */

#include <benchmark/benchmark.h>

#include "autograd/functions.hh"
#include "backends/backend.hh"
#include "common/random.hh"
#include "data/tu_dataset.hh"
#include "device/device.hh"
#include "device/profiler.hh"
#include "graph/edge_softmax.hh"
#include "graph/scatter.hh"
#include "graph/segment.hh"
#include "graph/spmm.hh"
#include "tensor/init.hh"
#include "tensor/matmul.hh"
#include "tensor/ops.hh"

namespace {

using namespace gnnperf;

/** A reusable collated batch fixture. */
struct BatchFixture
{
    GraphDataset dataset;
    BatchedGraph batch;
    Tensor features;

    BatchFixture(int64_t graphs, int64_t feat, FrameworkKind fw)
        : dataset(makeEnzymes(3, graphs))
    {
        std::vector<const Graph *> members;
        for (const Graph &g : dataset.graphs)
            members.push_back(&g);
        batch = getBackend(fw).collate(members);
        Rng rng(5);
        features = init::normal({batch.numNodes, feat}, 0.0f, 1.0f,
                                rng);
        batch.ensureInIndex();
        batch.ensureOutIndex();
    }
};

void
BM_AggregatePygScatter(benchmark::State &state)
{
    BatchFixture fix(64, state.range(0), FrameworkKind::PyG);
    Backend &backend = getBackend(FrameworkKind::PyG);
    for (auto _ : state) {
        Var out = backend.aggregate(fix.batch, Var(fix.features),
                                    Reduce::Sum);
        benchmark::DoNotOptimize(out.value().data());
    }
    state.SetItemsProcessed(state.iterations() * fix.batch.numEdges());
}
BENCHMARK(BM_AggregatePygScatter)->Arg(32)->Arg(128);

void
BM_AggregateDglGspmm(benchmark::State &state)
{
    BatchFixture fix(64, state.range(0), FrameworkKind::DGL);
    Backend &backend = getBackend(FrameworkKind::DGL);
    for (auto _ : state) {
        Var out = backend.aggregate(fix.batch, Var(fix.features),
                                    Reduce::Sum);
        benchmark::DoNotOptimize(out.value().data());
    }
    state.SetItemsProcessed(state.iterations() * fix.batch.numEdges());
}
BENCHMARK(BM_AggregateDglGspmm)->Arg(32)->Arg(128);

void
BM_CollatePyg(benchmark::State &state)
{
    GraphDataset ds = makeEnzymes(3, state.range(0));
    std::vector<const Graph *> members;
    for (const Graph &g : ds.graphs)
        members.push_back(&g);
    Backend &backend = getBackend(FrameworkKind::PyG);
    for (auto _ : state) {
        BatchedGraph batch = backend.collate(members);
        benchmark::DoNotOptimize(batch.numNodes);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollatePyg)->Arg(64)->Arg(128);

void
BM_CollateDgl(benchmark::State &state)
{
    GraphDataset ds = makeEnzymes(3, state.range(0));
    std::vector<const Graph *> members;
    for (const Graph &g : ds.graphs)
        members.push_back(&g);
    Backend &backend = getBackend(FrameworkKind::DGL);
    for (auto _ : state) {
        BatchedGraph batch = backend.collate(members);
        benchmark::DoNotOptimize(batch.numNodes);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollateDgl)->Arg(64)->Arg(128);

void
BM_ReadoutPygScatterPool(benchmark::State &state)
{
    BatchFixture fix(128, 64, FrameworkKind::PyG);
    Backend &backend = getBackend(FrameworkKind::PyG);
    for (auto _ : state) {
        Var out = backend.readoutMean(fix.batch, Var(fix.features));
        benchmark::DoNotOptimize(out.value().data());
    }
}
BENCHMARK(BM_ReadoutPygScatterPool);

void
BM_ReadoutDglSegment(benchmark::State &state)
{
    BatchFixture fix(128, 64, FrameworkKind::DGL);
    Backend &backend = getBackend(FrameworkKind::DGL);
    for (auto _ : state) {
        Var out = backend.readoutMean(fix.batch, Var(fix.features));
        benchmark::DoNotOptimize(out.value().data());
    }
}
BENCHMARK(BM_ReadoutDglSegment);

void
BM_EdgeSoftmaxPygComposed(benchmark::State &state)
{
    BatchFixture fix(64, 8, FrameworkKind::PyG);
    Rng rng(9);
    Tensor logits = init::normal({fix.batch.numEdges(), 8}, 0.0f, 1.0f,
                                 rng);
    Backend &backend = getBackend(FrameworkKind::PyG);
    for (auto _ : state) {
        Var out = backend.edgeSoftmax(fix.batch, Var(logits));
        benchmark::DoNotOptimize(out.value().data());
    }
}
BENCHMARK(BM_EdgeSoftmaxPygComposed);

void
BM_EdgeSoftmaxDglFused(benchmark::State &state)
{
    BatchFixture fix(64, 8, FrameworkKind::DGL);
    Rng rng(9);
    Tensor logits = init::normal({fix.batch.numEdges(), 8}, 0.0f, 1.0f,
                                 rng);
    Backend &backend = getBackend(FrameworkKind::DGL);
    for (auto _ : state) {
        Var out = backend.edgeSoftmax(fix.batch, Var(logits));
        benchmark::DoNotOptimize(out.value().data());
    }
}
BENCHMARK(BM_EdgeSoftmaxDglFused);

/**
 * Allocator ablation: the same aggregation kernel loop under the
 * direct and the caching allocator. The loop's intermediates churn
 * through the allocator every iteration, so the caching pool turns
 * almost all backing (device) allocations into cache hits while the
 * logical bytes stay identical.
 */
void
BM_AggregateAllocator(benchmark::State &state, AllocatorKind which)
{
    DeviceManager &dm = DeviceManager::instance();
    const AllocatorKind saved = dm.allocatorKind(DeviceKind::Cuda);
    dm.setAllocator(which);
    dm.emptyCaches();
    {
        BatchFixture fix(64, 64, FrameworkKind::PyG);
        Backend &backend = getBackend(FrameworkKind::PyG);
        const MemoryStats &s = dm.stats(DeviceKind::Cuda);
        const std::size_t allocs0 = s.allocCount;
        const std::size_t hits0 = s.cacheHits;
        const std::size_t acquires0 = s.acquireCount;
        for (auto _ : state) {
            Var out = backend.aggregate(fix.batch, Var(fix.features),
                                        Reduce::Sum);
            benchmark::DoNotOptimize(out.value().data());
        }
        const auto iters = static_cast<double>(state.iterations());
        state.counters["device_allocs_per_iter"] =
            static_cast<double>(s.allocCount - allocs0) / iters;
        state.counters["cache_hits_per_iter"] =
            static_cast<double>(s.cacheHits - hits0) / iters;
        state.counters["acquires_per_iter"] =
            static_cast<double>(s.acquireCount - acquires0) / iters;
    }
    dm.emptyCaches();
    dm.setAllocator(saved);
}
BENCHMARK_CAPTURE(BM_AggregateAllocator, direct,
                  AllocatorKind::Direct);
BENCHMARK_CAPTURE(BM_AggregateAllocator, caching,
                  AllocatorKind::Caching);

void
BM_Sgemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(4);
    Tensor a = init::normal({n, n}, 0.0f, 1.0f, rng);
    Tensor b = init::normal({n, n}, 0.0f, 1.0f, rng);
    for (auto _ : state) {
        Tensor c = ops::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(256);

} // namespace

BENCHMARK_MAIN();
