/**
 * @file
 * Ablation study — the optimisation opportunities the paper's
 * conclusion calls out (§V), measured by swapping one mechanism at a
 * time:
 *
 *   PyG            baseline fast framework
 *   DGL            baseline slow framework
 *   DGL+fastbatch  DGL kernels/runtime + homogeneous collation fast
 *                  path ("more efficient graph batching strategies
 *                  will greatly speed up GNN training")
 *   PyG+fused      PyG collation/dispatch + DGL fused GSpMM kernels
 *                  (kernel fusion isolated from the DGL runtime)
 *
 * Expected shape: DGL+fastbatch recovers most of the PyG/DGL gap
 * (collation dominates); PyG+fused trims kernels per epoch but moves
 * epoch time only modestly (dispatch- and loading-bound regime).
 */

#include "bench_common.hh"

#include "backends/ablation/ablation_backends.hh"
#include "common/string_utils.hh"
#include "common/table.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("ablation");
    banner("Ablations — collation fast path & kernel fusion",
           "paper §IV-C analysis / §V optimisation suggestions");
    const int epochs = static_cast<int>(envEpochs(2, 5));

    GraphDataset enzymes = benchEnzymes();
    std::vector<FoldSplit> folds =
        stratifiedKFold(enzymes.labels(), 10, 1);

    FastCollateDglBackend fast_dgl;
    FusedPygBackend fused_pyg;
    std::vector<const Backend *> backends{
        &getBackend(FrameworkKind::PyG),
        &getBackend(FrameworkKind::DGL), &fast_dgl, &fused_pyg};

    TextTable table;
    table.setHeader({"Dataset", "Model", "Backend", ">Epoch(ms)",
                     ">Load(ms)", ">Fwd+Bwd(ms)", ">Kernels",
                     ">Peak mem"});
    for (ModelKind kind : {ModelKind::GCN, ModelKind::GAT}) {
        for (const Backend *backend : backends) {
            TrainOptions opts;
            opts.maxEpochs = epochs;
            opts.batchSize = 128;
            opts.seed = 1;
            GraphTrainResult r = trainGraphTask(
                kind, *backend, enzymes, folds.front(), opts);
            const EpochBreakdown &b = r.profile.breakdown;
            table.addRow({enzymes.name, modelName(kind),
                          backend->name(),
                          strprintf("%.2f", r.epochTime * 1e3),
                          strprintf("%.2f", b.dataLoading * 1e3),
                          strprintf("%.2f",
                                    (b.forward + b.backward) * 1e3),
                          strprintf("%zu", r.profile.kernelsPerEpoch),
                          formatBytes(r.profile.peakMemoryBytes)});
        }
        table.addSeparator();
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
