/**
 * @file
 * Fig. 5 — GPU compute utilization (paper Eq. 5: kernel-busy time
 * over elapsed time) at batch sizes 64/128/256 on ENZYMES and DD.
 *
 * Expected shape vs the paper: utilization is low everywhere (mostly
 * under 40%); DGL slightly below PyG; it rises with batch size and is
 * higher on DD (bigger kernels) than on ENZYMES.
 */

#include "bench_common.hh"

using namespace gnnperf;
using namespace gnnperf::bench;

int
main()
{
    StatsScope stats_scope("fig5");
    Baseline baseline("fig5");
    banner("Fig. 5 — GPU compute utilization (ENZYMES, DD)",
           "paper Fig. 5");
    const int epochs = static_cast<int>(envEpochs(1, 3));

    {
        GraphDataset enzymes = benchEnzymes();
        auto cells = runProfileGrid(enzymes, allModels(),
                                    {64, 128, 256}, epochs, /*seed=*/1);
        std::printf("%s\n",
                    renderUtilizationTable(enzymes.name,
                                           cells).c_str());
        maybeWriteCsv("fig5_enzymes_util.csv",
                      profileGridCsv(enzymes.name, cells));
        baseline.addProfileCells("enzymes", cells);
    }
    {
        GraphDataset dd = benchDD();
        auto cells = runProfileGrid(dd, allModels(), {64, 128, 256},
                                    epochs, /*seed=*/1);
        std::printf("%s\n",
                    renderUtilizationTable(dd.name, cells).c_str());
        maybeWriteCsv("fig5_dd_util.csv",
                      profileGridCsv(dd.name, cells));
        baseline.addProfileCells("dd", cells);
    }
    return 0;
}
