/**
 * @file
 * Shared helpers for the table/figure benches: scale-aware dataset
 * construction and header printing. Smoke scale keeps the whole bench
 * suite runnable in minutes on one CPU core; GNNPERF_SCALE=full uses
 * the paper's protocol (see DESIGN.md §6).
 */

#ifndef GNNPERF_BENCH_BENCH_COMMON_HH
#define GNNPERF_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "obs/diff.hh"
#include "obs/exec_trace.hh"
#include "obs/hwprof.hh"
#include "obs/stats.hh"

namespace gnnperf {
namespace bench {

/** Print a bench banner with the active scale. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("==============================================\n");
    std::printf("gnnperf bench: %s\n", what);
    std::printf("reproduces:    %s\n", paper_ref);
    std::printf("scale:         %s (GNNPERF_SCALE=full for paper "
                "protocol)\n",
                fullScale() ? "full" : "smoke");
    std::printf("==============================================\n\n");
}

/**
 * Opt-in stats collection for a bench main: GNNPERF_STATS=1 turns
 * sampling on for the process, and at scope exit the registry's JSON /
 * CSV / event-log artifacts land in GNNPERF_CSV_DIR (when set) under
 * the given prefix. Declare one at the top of main().
 *
 * GNNPERF_TRACE additionally records the merged execution trace
 * (obs/exec_trace.hh): GNNPERF_TRACE=FILE writes it to FILE at scope
 * exit; GNNPERF_TRACE=1 writes `<prefix>.trace.json` into
 * GNNPERF_CSV_DIR next to the stats artifacts (no-op when the dir is
 * unset).
 *
 * GNNPERF_HWPROF=1|sw turns on the hardware-counter profiler for the
 * bench (obs/hwprof.hh); its totals land in the stats snapshot as
 * hwprof.* gauges and in BENCH JSONs via the Baseline scope.
 */
class StatsScope
{
  public:
    explicit StatsScope(const char *prefix) : prefix_(prefix)
    {
        if (envInt("GNNPERF_STATS", 0) != 0)
            stats::setSamplingEnabled(true);
        tracePath_ = envString("GNNPERF_TRACE", "");
        if (tracePath_ == "1") {
            const std::string dir = envString("GNNPERF_CSV_DIR", "");
            tracePath_ =
                dir.empty() ? "" : dir + "/" + prefix_ + ".trace.json";
        }
        if (!tracePath_.empty())
            ExecTrace::instance().enable();
        hwprof::configure(envString("GNNPERF_HWPROF", ""));
    }

    ~StatsScope()
    {
        if (!tracePath_.empty()) {
            ExecTrace &trace = ExecTrace::instance();
            trace.disable();
            trace.writeTo(tracePath_);
            std::printf("wrote %s\n", tracePath_.c_str());
        }
        hwprof::publishStats();
        maybeWriteStatsArtifacts(prefix_);
    }

  private:
    std::string prefix_;
    std::string tracePath_;
};

/**
 * Machine-readable bench baseline: collect the run's headline series
 * and at scope exit write `BENCH_<name>.json` into GNNPERF_CSV_DIR
 * (when set) in the flat schema `gnnperf_diff` compares. Declare one
 * per bench main(), next to the StatsScope.
 */
class Baseline
{
  public:
    explicit Baseline(std::string bench_name)
        : name_(std::move(bench_name))
    {}

    ~Baseline()
    {
        appendAllocatorSeries(series_);
        appendParallelSeries(series_);
        appendHwprofSeries(series_);
        maybeWriteCsv("BENCH_" + name_ + ".json",
                      diff::baselineToJson(name_, series_));
    }

    void add(const std::string &series, double value)
    {
        series_.emplace_back(series, value);
    }

    void
    addNodeRows(const std::string &dataset,
                const std::vector<NodeExperimentRow> &rows)
    {
        for (const auto &row : rows)
            addRow(dataset, modelName(row.model),
                   frameworkName(row.framework), row.epochTime,
                   row.totalTime, row.accuracy.mean, row.epochsRun);
    }

    void
    addGraphRows(const std::string &dataset,
                 const std::vector<GraphExperimentRow> &rows)
    {
        for (const auto &row : rows)
            addRow(dataset, modelName(row.model),
                   frameworkName(row.framework), row.epochTime,
                   row.totalTime, row.accuracy.mean, row.epochsRun);
    }

    void
    addProfileCells(const std::string &dataset,
                    const std::vector<ProfileCell> &cells)
    {
        for (const auto &cell : cells) {
            const std::string key =
                dataset + "." + modelName(cell.model) + "/" +
                frameworkName(cell.framework) + ".b" +
                std::to_string(cell.batchSize);
            add(key + ".gpu_utilization",
                cell.profile.gpuUtilization);
            add(key + ".epoch_s", cell.profile.breakdown.total());
            add(key + ".kernels",
                static_cast<double>(cell.profile.kernelsPerEpoch));
        }
    }

  private:
    void
    addRow(const std::string &dataset, const char *model,
           const char *fw, double epoch_s, double total_s, double acc,
           int epochs)
    {
        const std::string key =
            dataset + "." + model + "/" + fw;
        add(key + ".epoch_s", epoch_s);
        add(key + ".total_s", total_s);
        add(key + ".acc_mean", acc);
        add(key + ".epochs", epochs);
    }

    std::string name_;
    std::vector<std::pair<std::string, double>> series_;
};

/** Cora at paper size (cheap enough at every scale). */
inline NodeDataset
benchCora()
{
    return makeCora(/*seed=*/7);
}

/**
 * PubMed: paper size at full scale; a quarter-size network with the
 * same feature width and class count at smoke scale (full-batch
 * training on 19 717 × 500 features is minutes of single-core GEMM).
 */
inline NodeDataset
benchPubMed()
{
    if (fullScale())
        return makePubMed(/*seed=*/7);
    CitationConfig cfg;
    cfg.name = "PubMed(smoke-1/4)";
    cfg.numNodes = 4930;
    cfg.numUndirectedEdges = 11085;
    cfg.numFeatures = 500;
    cfg.numClasses = 3;
    cfg.trainPerClass = 20;
    cfg.valCount = 500;
    cfg.testCount = 1000;
    cfg.homophily = 0.82;
    cfg.wordsPerDoc = 24;
    cfg.topicFidelity = 0.60;
    cfg.labelNoise = 0.13;
    cfg.seed = 7 ^ 0xc0ffee;
    return makeCitation(cfg);
}

/** ENZYMES: 600 graphs at full scale, 300 at smoke scale. */
inline GraphDataset
benchEnzymes()
{
    const int64_t n = envInt("GNNPERF_ENZYMES_GRAPHS",
                             fullScale() ? 600 : 300);
    return makeEnzymes(/*seed=*/42, n);
}

/**
 * DD: 1178 graphs with the full heavy tail at full scale; at smoke
 * scale 96 graphs capped at 300 nodes (DD's 5 748-node outliers are
 * minutes each on one core).
 */
inline GraphDataset
benchDD()
{
    if (fullScale())
        return makeDD(/*seed=*/42, 1178, 0);
    const int64_t n = envInt("GNNPERF_DD_GRAPHS", 96);
    return makeDD(/*seed=*/42, n, /*max_nodes_cap=*/300);
}

/** MNIST: 70 000 graphs at full scale, 800 at smoke scale. */
inline GraphDataset
benchMnist()
{
    MnistSuperpixelConfig cfg;
    cfg.numGraphs = envInt("GNNPERF_MNIST_GRAPHS",
                           fullScale() ? 70000 : 800);
    return makeMnistSuperpixels(cfg);
}

} // namespace bench
} // namespace gnnperf

#endif // GNNPERF_BENCH_BENCH_COMMON_HH
