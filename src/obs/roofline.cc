#include "obs/roofline.hh"

#include <algorithm>
#include <cmath>

#include "common/buildinfo.hh"
#include "common/string_utils.hh"
#include "common/table.hh"
#include "parallel/thread_pool.hh"

namespace gnnperf {

const char *
boundClassName(BoundClass cls)
{
    switch (cls) {
      case BoundClass::Compute: return "compute";
      case BoundClass::Bandwidth: return "bandwidth";
      case BoundClass::Dispatch: return "dispatch";
    }
    return "?";
}

KernelBound
classifyKernel(const KernelRecord &k, const CostModel &model,
               double dispatch_overhead)
{
    KernelBound b;
    b.computeSeconds = k.flops / model.gpu.flopsPerSec;
    b.memorySeconds = k.bytes / model.gpu.bytesPerSec;
    b.overheadSeconds = model.gpu.kernelOverhead;
    b.dispatchSeconds = dispatch_overhead;
    b.gpuSeconds = model.kernelTime(k);
    b.intensity = k.bytes > 0.0 ? k.flops / k.bytes : 0.0;
    const double work = std::max(b.computeSeconds, b.memorySeconds);
    const double fixed = b.overheadSeconds + b.dispatchSeconds;
    if (work < fixed)
        b.cls = BoundClass::Dispatch;
    else if (b.computeSeconds >= b.memorySeconds)
        b.cls = BoundClass::Compute;
    else
        b.cls = BoundClass::Bandwidth;
    return b;
}

double
MeasuredGroup::ipc() const
{
    return cycles > 0.0 ? instructions / cycles : 0.0;
}

double
MeasuredGroup::missRate() const
{
    return cacheRefs > 0.0 ? cacheMisses / cacheRefs : 0.0;
}

BoundClass
measuredBound(const MeasuredGroup &m)
{
    if (m.windows <= 0.0 ||
        m.instructions / m.windows < kMeasuredDispatchInstrPerWindow)
        return BoundClass::Dispatch;
    if (m.missRate() >= kMeasuredBandwidthMissRate)
        return BoundClass::Bandwidth;
    return BoundClass::Compute;
}

const char *
agreementVerdict(BoundClass modeled, const MeasuredGroup &m)
{
    if (!m.valid || !m.hw)
        return "n/a";
    return measuredBound(m) == modeled ? "agree" : "disagree";
}

double
RooflineGroup::intensity() const
{
    return bytes > 0.0 ? flops / bytes : 0.0;
}

double
RooflineGroup::boundShare(BoundClass cls) const
{
    double total = 0.0;
    for (double s : boundSeconds)
        total += s;
    return total > 0.0
               ? boundSeconds[static_cast<int>(cls)] / total : 0.0;
}

BoundClass
RooflineGroup::dominantBound() const
{
    int best = static_cast<int>(BoundClass::Dispatch);
    for (int c = 0; c < kNumBoundClasses; ++c) {
        if (boundSeconds[c] > boundSeconds[best])
            best = c;
    }
    return static_cast<BoundClass>(best);
}

double
RooflineReport::achievedFlopsFraction() const
{
    if (elapsed <= 0.0 || peakFlopsPerSec <= 0.0)
        return 0.0;
    return (total.flops / elapsed) / peakFlopsPerSec;
}

double
RooflineReport::achievedBandwidthFraction() const
{
    if (elapsed <= 0.0 || peakBytesPerSec <= 0.0)
        return 0.0;
    return (total.bytes / elapsed) / peakBytesPerSec;
}

RooflineAnalyzer::RooflineAnalyzer(const CostModel &model,
                                   double dispatch_overhead,
                                   std::string label)
    : model_(model), dispatch_(dispatch_overhead),
      label_(std::move(label))
{
    total_.name = "total";
}

namespace {

void
addKernelTo(RooflineGroup &g, const KernelRecord &k,
            const KernelBound &b, double frontier_delta)
{
    ++g.launches;
    g.flops += k.flops;
    g.bytes += k.bytes;
    g.gpuSeconds += b.gpuSeconds;
    g.dispatchSeconds += b.dispatchSeconds;
    g.elapsedSeconds += frontier_delta;
    g.boundSeconds[static_cast<int>(b.cls)] +=
        b.gpuSeconds + b.dispatchSeconds;
    ++g.boundLaunches[static_cast<int>(b.cls)];
}

} // namespace

void
RooflineAnalyzer::addTrace(const Trace &trace,
                           const std::vector<std::string> &layer_names)
{
    auto layerKey = [&](int16_t layer) -> std::string {
        if (layer >= 0 &&
            static_cast<std::size_t>(layer) < layer_names.size())
            return layer_names[static_cast<std::size_t>(layer)];
        return "(none)";
    };

    TimelineResult t = Timeline::replay(
        trace, model_, dispatch_, {},
        [&](const RecordTiming &rt) {
            if (rt.entry.isKernel) {
                const KernelRecord &k = rt.entry.kernel;
                const KernelBound b =
                    classifyKernel(k, model_, dispatch_);
                addKernelTo(total_, k, b, rt.frontierDelta);

                RooflineGroup &kg = byKernel_[k.name];
                kg.name = k.name;
                addKernelTo(kg, k, b, rt.frontierDelta);

                RooflineGroup &lg = byLayer_[layerKey(k.layer)];
                lg.name = layerKey(k.layer);
                addKernelTo(lg, k, b, rt.frontierDelta);

                RooflineGroup &pg =
                    byPhase_[static_cast<int>(k.phase)];
                pg.name = phaseName(k.phase);
                addKernelTo(pg, k, b, rt.frontierDelta);
            } else {
                const HostRecord &h = rt.entry.host;
                HostOpGroup &hg =
                    byHostOp_[static_cast<int>(h.kind)];
                if (hg.name.empty())
                    hg.name = hostOpKindName(h.kind);
                ++hg.ops;
                hg.bytes += h.bytes;
                hg.items += h.items;
                hg.seconds += rt.duration;
                hg.elapsedSeconds += rt.frontierDelta;

                // Host ops still advance the frontier inside a layer
                // or phase; charge them so the shares sum to 100%.
                RooflineGroup &lg = byLayer_[layerKey(h.layer)];
                lg.name = layerKey(h.layer);
                lg.elapsedSeconds += rt.frontierDelta;
                RooflineGroup &pg =
                    byPhase_[static_cast<int>(h.phase)];
                pg.name = phaseName(h.phase);
                pg.elapsedSeconds += rt.frontierDelta;
            }
        });

    ++epochs_;
    elapsed_ += t.elapsed;
    gpuBusy_ += t.gpuBusy;
    hostBusy_ += t.hostBusy;
}

RooflineReport
RooflineAnalyzer::report() const
{
    RooflineReport r;
    r.label = label_;
    r.epochs = epochs_;
    r.peakFlopsPerSec = model_.gpu.flopsPerSec;
    r.peakBytesPerSec = model_.gpu.bytesPerSec;
    r.dispatchOverhead = dispatch_;
    r.elapsed = elapsed_;
    r.gpuBusy = gpuBusy_;
    r.hostBusy = hostBusy_;
    r.hostThreads = par::ThreadPool::instance().numThreads();
    r.hostParallelSpeedup = model_.parallel.speedup(r.hostThreads);
    r.total = total_;
    for (const auto &[name, g] : byKernel_)
        r.byKernel.push_back(g);
    for (const auto &[name, g] : byLayer_)
        r.byLayer.push_back(g);
    for (const auto &[idx, g] : byPhase_)
        r.byPhase.push_back(g);
    for (const auto &[idx, g] : byHostOp_)
        r.byHostOp.push_back(g);
    return r;
}

namespace {

MeasuredGroup
toMeasured(const hwprof::Agg &a)
{
    MeasuredGroup m;
    if (a.windows == 0)
        return m;
    m.valid = true;
    m.hw = a.hwValid;
    m.windows = static_cast<double>(a.windows);
    m.instructions = static_cast<double>(a.sum[hwprof::kInstructions]);
    m.cycles = static_cast<double>(a.sum[hwprof::kCycles]);
    m.cacheRefs = static_cast<double>(a.sum[hwprof::kCacheRefs]);
    m.cacheMisses = static_cast<double>(a.sum[hwprof::kCacheMisses]);
    m.branchMisses =
        static_cast<double>(a.sum[hwprof::kBranchMisses]);
    m.stalledCycles =
        static_cast<double>(a.sum[hwprof::kStalledCycles]);
    m.minorFaults = static_cast<double>(a.sum[hwprof::kMinorFaults]);
    m.majorFaults = static_cast<double>(a.sum[hwprof::kMajorFaults]);
    m.ctxSwitchesVol =
        static_cast<double>(a.sum[hwprof::kCtxSwitchesVol]);
    m.ctxSwitchesInvol =
        static_cast<double>(a.sum[hwprof::kCtxSwitchesInvol]);
    return m;
}

void
attachByName(std::vector<RooflineGroup> &groups,
             const std::vector<std::pair<std::string, hwprof::Agg>>
                 &aggs)
{
    for (auto &g : groups) {
        for (const auto &kv : aggs) {
            if (kv.first == g.name) {
                g.measured = toMeasured(kv.second);
                break;
            }
        }
    }
}

} // namespace

void
attachMeasuredCounters(RooflineReport &report,
                       const hwprof::Snapshot &snap)
{
    if (snap.tier == hwprof::Tier::Off || snap.total.windows == 0)
        return;
    report.hwprofTier = snap.tier;
    report.hwprofTierReason = snap.tierReason;
    report.total.measured = toMeasured(snap.total);
    attachByName(report.byKernel, snap.byKernel);
    attachByName(report.byLayer, snap.byLayer);
    for (auto &g : report.byPhase) {
        for (int p = 0; p < kNumPhases; ++p) {
            if (g.name == phaseName(static_cast<Phase>(p))) {
                g.measured = toMeasured(
                    snap.byPhase[static_cast<std::size_t>(p)]);
                break;
            }
        }
    }
}

void
attachMeasuredCounters(RooflineReport &report)
{
    if (!hwprof::enabled())
        return;
    attachMeasuredCounters(report, hwprof::snapshot());
}

RooflineReport
analyzeRoofline(const Trace &trace, const CostModel &model,
                double dispatch_overhead,
                const std::vector<std::string> &layer_names,
                std::string label)
{
    RooflineAnalyzer analyzer(model, dispatch_overhead,
                              std::move(label));
    analyzer.addTrace(trace, layer_names);
    return analyzer.report();
}

namespace {

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15)
        return strprintf("%.0f", v);
    return strprintf("%.9g", v);
}

void
appendGroupJson(std::string &out, const RooflineGroup &g,
                double elapsed, int indent)
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    out += strprintf(
        "{\n%s\"launches\": %zu, \"flops\": %s, \"bytes\": %s,\n"
        "%s\"gpu_s\": %s, \"dispatch_s\": %s, \"elapsed_s\": %s,\n"
        "%s\"elapsed_share\": %s, \"intensity\": %s,\n"
        "%s\"bound\": \"%s\"",
        pad.c_str(), g.launches, num(g.flops).c_str(),
        num(g.bytes).c_str(), pad.c_str(), num(g.gpuSeconds).c_str(),
        num(g.dispatchSeconds).c_str(),
        num(g.elapsedSeconds).c_str(), pad.c_str(),
        num(elapsed > 0.0 ? g.elapsedSeconds / elapsed : 0.0).c_str(),
        num(g.intensity()).c_str(), pad.c_str(),
        boundClassName(g.dominantBound()));
    out += strprintf(",\n%s\"bound_shares\": {", pad.c_str());
    for (int c = 0; c < kNumBoundClasses; ++c) {
        out += strprintf(
            "%s\"%s\": %s", c ? ", " : "",
            boundClassName(static_cast<BoundClass>(c)),
            num(g.boundShare(static_cast<BoundClass>(c))).c_str());
    }
    out += "}";
    // Measured counters, only when the run carried them: hwprof-off
    // output stays byte-identical.
    if (g.measured.valid) {
        const MeasuredGroup &m = g.measured;
        out += strprintf(
            ",\n%s\"hwprof\": {\"windows\": %s, "
            "\"instructions\": %s, \"cycles\": %s,\n"
            "%s  \"cache_refs\": %s, \"cache_misses\": %s, "
            "\"branch_misses\": %s, \"stalled_cycles\": %s,\n"
            "%s  \"minor_faults\": %s, \"major_faults\": %s, "
            "\"ctx_switches_vol\": %s, \"ctx_switches_invol\": %s,\n"
            "%s  \"ipc\": %s, \"miss_rate\": %s, "
            "\"measured_bound\": \"%s\", \"agreement\": \"%s\"}",
            pad.c_str(), num(m.windows).c_str(),
            num(m.instructions).c_str(), num(m.cycles).c_str(),
            pad.c_str(), num(m.cacheRefs).c_str(),
            num(m.cacheMisses).c_str(), num(m.branchMisses).c_str(),
            num(m.stalledCycles).c_str(), pad.c_str(),
            num(m.minorFaults).c_str(), num(m.majorFaults).c_str(),
            num(m.ctxSwitchesVol).c_str(),
            num(m.ctxSwitchesInvol).c_str(), pad.c_str(),
            num(m.ipc()).c_str(), num(m.missRate()).c_str(),
            m.hw ? boundClassName(measuredBound(m)) : "n/a",
            agreementVerdict(g.dominantBound(), m));
    }
    out += "}";
}

void
appendGroupMap(std::string &out, const char *key,
               const std::vector<RooflineGroup> &groups, double elapsed)
{
    out += strprintf("  \"%s\": {", key);
    bool first = true;
    for (const auto &g : groups) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf("    \"%s\": ", jsonEscape(g.name).c_str());
        appendGroupJson(out, g, elapsed, 6);
    }
    out += "\n  }";
}

} // namespace

std::string
rooflineReportToJson(const RooflineReport &r)
{
    std::string out = "{\n";
    out += strprintf("  \"version\": 1,\n");
    out += strprintf("  \"label\": \"%s\",\n",
                     jsonEscape(r.label).c_str());
    out += strprintf("  \"epochs\": %zu,\n", r.epochs);
    out += strprintf(
        "  \"device\": {\"peak_flops_per_sec\": %s, "
        "\"peak_bytes_per_sec\": %s, \"ridge_intensity\": %s, "
        "\"dispatch_overhead_s\": %s},\n",
        num(r.peakFlopsPerSec).c_str(), num(r.peakBytesPerSec).c_str(),
        num(r.ridgeIntensity()).c_str(),
        num(r.dispatchOverhead).c_str());
    out += strprintf(
        "  \"host_parallelism\": {\"threads\": %d, "
        "\"model_speedup\": %s},\n",
        r.hostThreads, num(r.hostParallelSpeedup).c_str());
    out += strprintf(
        "  \"elapsed_s\": %s, \"gpu_busy_s\": %s, "
        "\"host_busy_s\": %s,\n",
        num(r.elapsed).c_str(), num(r.gpuBusy).c_str(),
        num(r.hostBusy).c_str());
    out += strprintf(
        "  \"utilization\": %s, \"arithmetic_intensity\": %s,\n"
        "  \"achieved_flops_frac\": %s, \"achieved_bw_frac\": %s,\n",
        num(r.utilization()).c_str(), num(r.total.intensity()).c_str(),
        num(r.achievedFlopsFraction()).c_str(),
        num(r.achievedBandwidthFraction()).c_str());
    if (r.hwprofTier != hwprof::Tier::Off) {
        // Thresholds ride along so gnnperf_prof check re-derives the
        // measured_bound/agreement verdicts from the file itself.
        out += strprintf(
            "  \"hwprof\": {\"tier\": \"%s\", \"reason\": \"%s\",\n"
            "    \"thresholds\": {\"bandwidth_miss_rate\": %s, "
            "\"dispatch_instructions_per_window\": %s}},\n",
            hwprof::tierName(r.hwprofTier),
            jsonEscape(r.hwprofTierReason).c_str(),
            num(kMeasuredBandwidthMissRate).c_str(),
            num(kMeasuredDispatchInstrPerWindow).c_str());
    }
    out += "  \"total\": ";
    appendGroupJson(out, r.total, r.elapsed, 4);
    out += ",\n";
    appendGroupMap(out, "kernels", r.byKernel, r.elapsed);
    out += ",\n";
    appendGroupMap(out, "layers", r.byLayer, r.elapsed);
    out += ",\n";
    appendGroupMap(out, "phases", r.byPhase, r.elapsed);
    out += ",\n  \"host_ops\": {";
    bool first = true;
    for (const auto &h : r.byHostOp) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf(
            "    \"%s\": {\"ops\": %zu, \"bytes\": %s, "
            "\"items\": %s, \"seconds\": %s, \"elapsed_share\": %s}",
            jsonEscape(h.name).c_str(), h.ops, num(h.bytes).c_str(),
            num(h.items).c_str(), num(h.seconds).c_str(),
            num(r.elapsed > 0.0 ? h.elapsedSeconds / r.elapsed : 0.0)
                .c_str());
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
rooflineSuiteToJson(const std::vector<RooflineReport> &suite)
{
    std::string out = strprintf(
        "{\n  \"version\": 1,\n  \"meta\": %s,\n  \"reports\": {",
        buildinfo::metaJson().c_str());
    bool first = true;
    for (const auto &r : suite) {
        out += first ? "\n" : ",\n";
        first = false;
        std::string body = rooflineReportToJson(r);
        // Indent the nested report by four spaces for readability.
        std::string indented;
        indented.reserve(body.size());
        for (std::size_t i = 0; i < body.size(); ++i) {
            indented += body[i];
            if (body[i] == '\n' && i + 1 < body.size())
                indented += "    ";
        }
        while (!indented.empty() &&
               (indented.back() == '\n' || indented.back() == ' '))
            indented.pop_back();
        out += strprintf("    \"%s\": %s",
                         jsonEscape(r.label).c_str(), indented.c_str());
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
renderRooflineTable(const std::vector<RooflineReport> &suite)
{
    // Measured columns appear only when at least one report carries
    // hwprof counters, so the table is unchanged on hwprof-off runs.
    bool measured = false;
    for (const auto &r : suite)
        measured = measured || r.total.measured.valid;
    TextTable table;
    std::vector<std::string> header = {
        "Config", ">Elapsed(ms)", ">Util%", ">AI(F/B)", ">Peak-F%",
        ">Peak-BW%", ">Comp%", ">BW%", ">Disp%", ">Kernels",
        ">HostThr", ">HostSpd"};
    if (measured) {
        header.push_back(">M-IPC");
        header.push_back(">M-Miss%");
        header.push_back("HWTier");
    }
    table.setHeader(header);
    for (const auto &r : suite) {
        std::vector<std::string> row = {
            r.label, strprintf("%.2f", r.elapsed * 1e3),
            strprintf("%.1f", r.utilization() * 100.0),
            strprintf("%.2f", r.total.intensity()),
            strprintf("%.1f", r.achievedFlopsFraction() * 100.0),
            strprintf("%.1f", r.achievedBandwidthFraction() * 100.0),
            strprintf("%.1f",
                      r.total.boundShare(BoundClass::Compute) * 100.0),
            strprintf("%.1f",
                      r.total.boundShare(BoundClass::Bandwidth) *
                          100.0),
            strprintf("%.1f",
                      r.total.boundShare(BoundClass::Dispatch) *
                          100.0),
            strprintf("%zu", r.total.launches),
            strprintf("%d", r.hostThreads),
            strprintf("%.2fx", r.hostParallelSpeedup)};
        if (measured) {
            const MeasuredGroup &m = r.total.measured;
            row.push_back(m.valid && m.hw
                              ? strprintf("%.2f", m.ipc())
                              : "-");
            row.push_back(m.valid && m.hw
                              ? strprintf("%.1f", m.missRate() * 100.0)
                              : "-");
            row.push_back(hwprof::tierName(r.hwprofTier));
        }
        table.addRow(row);
    }
    return table.render();
}

std::string
renderRooflineKernels(const RooflineReport &r)
{
    const bool measured = r.total.measured.valid;
    TextTable table;
    std::vector<std::string> header = {"Kernel", ">Launches",
                                       ">GPU(ms)", ">AI(F/B)",
                                       "Bound", ">Elapsed%"};
    if (measured) {
        header.push_back(">M-IPC");
        header.push_back(">M-Miss%");
        header.push_back("Measured");
        header.push_back("Verdict");
    }
    table.setHeader(header);
    // Heaviest kernels first.
    std::vector<const RooflineGroup *> order;
    for (const auto &g : r.byKernel)
        order.push_back(&g);
    std::sort(order.begin(), order.end(),
              [](const RooflineGroup *a, const RooflineGroup *b) {
                  return a->gpuSeconds > b->gpuSeconds;
              });
    for (const RooflineGroup *g : order) {
        std::vector<std::string> row = {
            g->name, strprintf("%zu", g->launches),
            strprintf("%.3f", g->gpuSeconds * 1e3),
            strprintf("%.2f", g->intensity()),
            boundClassName(g->dominantBound()),
            strprintf("%.1f",
                      r.elapsed > 0.0
                          ? g->elapsedSeconds / r.elapsed * 100.0
                          : 0.0)};
        if (measured) {
            const MeasuredGroup &m = g->measured;
            const bool hw = m.valid && m.hw;
            row.push_back(hw ? strprintf("%.2f", m.ipc()) : "-");
            row.push_back(
                hw ? strprintf("%.1f", m.missRate() * 100.0) : "-");
            row.push_back(hw ? boundClassName(measuredBound(m))
                             : "n/a");
            row.push_back(agreementVerdict(g->dominantBound(), m));
        }
        table.addRow(row);
    }
    return table.render();
}

} // namespace gnnperf
