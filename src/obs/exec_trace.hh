/**
 * @file
 * Unified execution trace: one Chrome/Perfetto JSON file merging
 * three synchronized views of a run.
 *
 *  - pid 1 "gnnperf simulated" — the modeled execution: per-epoch
 *    Profiler traces priced by the cost model (host dispatch on tid 1,
 *    GPU stream on tid 2), epochs laid back to back on the simulated
 *    clock. This is the paper's nvprof/Nsight kernel timeline.
 *  - pid 2 "gnnperf host (real)" — wall-clock HostSpan slices from
 *    the SpanTracer (obs/spans.hh): dataloader batches, collation,
 *    epochs — what the host actually spent time on.
 *  - pid 3 "gnnperf memory" — logical/reserved counter tracks per
 *    device sampled from the MemTracer's allocator events
 *    (obs/memtrace.hh), plus instant markers for split/coalesce/trim/
 *    emptyCache/resetPeak. The counter maxima at-or-after the last
 *    reset_peak marker equal the DeviceManager's MemoryStats peaks
 *    exactly.
 *
 * The two clocks are independent: pid 1 runs on the modeled timeline
 * (starts at 0, epochs concatenated), pids 2–3 on the process-wide
 * steady-clock epoch of SpanTracer::nowUs(). The file is the *object*
 * Chrome trace format — `{"traceEvents":[...]}` with extra top-level
 * keys `meta`, `stats_peaks` and `peak_attribution` (the "who owns
 * the peak" report) that tools/gnnperf_trace reads back.
 */

#ifndef GNNPERF_OBS_EXEC_TRACE_HH
#define GNNPERF_OBS_EXEC_TRACE_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>

#include "device/device.hh"
#include "device/trace.hh"

namespace gnnperf {

/**
 * Process-wide accumulator for the merged trace. Enabling turns on
 * the SpanTracer and MemTracer; the trainer's replay hook feeds each
 * epoch's simulated trace in before it is cleared.
 */
class ExecTrace
{
  public:
    /** The process-wide instance (leaked, like the tracers). */
    static ExecTrace &instance();

    /**
     * Start collecting: clears prior state and enables the SpanTracer
     * and MemTracer (the latter resets the DeviceManager peaks so the
     * stats and the trace describe the same window).
     */
    void enable();

    /** Stop collecting (keeps accumulated state for export). */
    void disable();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Append one epoch's simulated trace (priced with the default
     * cost model) to the pid-1 track, laid after previously captured
     * epochs. Branch + return when disabled; the trainer calls this
     * from its replay hook just before clearing the Profiler trace.
     */
    void captureSimulated(const Trace &trace, double dispatch_overhead,
                          const std::string &label);

    /** Simulated epochs captured so far. */
    std::size_t capturedEpochs() const;

    /** Render the merged trace (object-format Chrome JSON). */
    std::string toJson() const;

    /** Write toJson() to a file (fatal on I/O error). */
    void writeTo(const std::string &path) const;

    /**
     * Human-readable "who owns the peak" table for one device:
     * logical and reserved peak context plus the top live blocks.
     */
    std::string peakTable(DeviceKind device) const;

    /** Drop accumulated simulated events and reset the tracers. */
    void reset();

  private:
    ExecTrace() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::string simEvents_;    ///< ",\n{...}" pid-1 event fragments
    double simEndUs_ = 0.0;    ///< simulated clock after last epoch
    std::size_t simEpochs_ = 0;
    std::string label_;        ///< backend label of the last capture
};

} // namespace gnnperf

#endif // GNNPERF_OBS_EXEC_TRACE_HH
