#include "obs/memtrace.hh"

#include <algorithm>
#include <utility>

#include "device/allocator.hh"
#include "device/profiler.hh"
#include "obs/spans.hh"

namespace gnnperf {

namespace {

/** Interned layer id → name ("" when out of scope). */
std::string
layerNameOf(int16_t layer)
{
    if (layer < 0)
        return "";
    const auto &names = Profiler::instance().layerNames();
    const auto idx = static_cast<std::size_t>(layer);
    return idx < names.size() ? names[idx] : "";
}

} // namespace

const char *
memEventName(MemEventKind kind)
{
    switch (kind) {
      case MemEventKind::Alloc:
        return "alloc";
      case MemEventKind::Free:
        return "free";
      case MemEventKind::Split:
        return "split";
      case MemEventKind::Coalesce:
        return "coalesce";
      case MemEventKind::Trim:
        return "trim";
      case MemEventKind::EmptyCache:
        return "empty_cache";
      case MemEventKind::ResetPeak:
        return "reset_peak";
      case MemEventKind::GuardViolation:
        return "guard_violation";
      case MemEventKind::Plan:
        return "plan";
    }
    return "?";
}

MemTracer &
MemTracer::instance()
{
    // Leaked like the DeviceManager: blocks released during static
    // destruction must still find the tracer alive.
    static MemTracer *tracer = new MemTracer();  // lint:allow leaked singleton
    return *tracer;
}

void
MemTracer::setEnabled(bool on)
{
    if (!on) {
        enabled_.store(false, std::memory_order_relaxed);
        return;
    }
    reset();
    enabled_.store(true, std::memory_order_relaxed);
    // Open the measurement window: resetting the peaks routes back
    // through onResetPeak(), so the trace starts with one ResetPeak
    // marker per device and the MemoryStats peaks cover exactly the
    // recorded interval.
    DeviceManager &dm = DeviceManager::instance();
    dm.resetPeak(DeviceKind::Host);
    dm.resetPeak(DeviceKind::Cuda);
}

void
MemTracer::onAlloc(DeviceKind device, MemoryBlock *block)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    PerDevice &d = dev(device);
    block->traceId = ++lastId_;
    const Profiler &prof = Profiler::instance();
    LiveBlock live;
    live.bytes = block->requested;
    live.phase = prof.phase();
    live.layer = prof.layer();
    live.tsUs = SpanTracer::nowUs();
    d.trackedLiveBytes += live.bytes;
    d.live.emplace(block->traceId, live);
    pushEvent(device, MemEventKind::Alloc, block->traceId,
              block->requested);
}

void
MemTracer::onFree(DeviceKind device, const MemoryBlock *block)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    PerDevice &d = dev(device);
    std::size_t bytes = block->requested;
    if (block->traceId != 0) {
        // Blocks allocated before tracing was enabled carry id 0 and
        // are simply not in the live map; their frees still record.
        auto it = d.live.find(block->traceId);
        if (it != d.live.end()) {
            bytes = it->second.bytes;
            d.trackedLiveBytes -= bytes;
            d.live.erase(it);
        }
    }
    pushEvent(device, MemEventKind::Free, block->traceId, bytes);
}

void
MemTracer::onSplit(DeviceKind device, std::size_t bytes)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    pushEvent(device, MemEventKind::Split, 0, bytes);
}

void
MemTracer::onCoalesce(DeviceKind device, std::size_t bytes)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    pushEvent(device, MemEventKind::Coalesce, 0, bytes);
}

void
MemTracer::onCacheRelease(DeviceKind device, MemEventKind kind,
                          std::size_t bytes)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    pushEvent(device, kind, 0, bytes);
}

void
MemTracer::onGuardViolation(DeviceKind device,
                            const MemoryBlock *block,
                            std::size_t offset)
{
    // Deliberately no enabled() gate: the allocator is about to panic,
    // and a post-mortem reader of the trace must find the violation
    // regardless of whether recording was on.
    std::lock_guard<std::mutex> lock(mu_);
    pushEvent(device, MemEventKind::GuardViolation, block->traceId,
              offset);
}

void
MemTracer::onPlan(DeviceKind device, std::size_t bytes)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    pushEvent(device, MemEventKind::Plan, 0, bytes);
}

void
MemTracer::onResetPeak(DeviceKind device)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    pushEvent(device, MemEventKind::ResetPeak, 0, 0);
}

std::vector<MemEvent>
MemTracer::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::size_t
MemTracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

PeakSnapshot
MemTracer::logicalPeak(DeviceKind device) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dev(device).logicalPeak;
}

PeakSnapshot
MemTracer::reservedPeak(DeviceKind device) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dev(device).reservedPeak;
}

void
MemTracer::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    dropped_ = 0;
    lastId_ = 0;
    host_ = PerDevice{};
    cuda_ = PerDevice{};
}

void
MemTracer::setEventCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    eventCapacity_ = capacity > 0 ? capacity : 1;
    events_.clear();
    dropped_ = 0;
}

// mu_ must be held.
void
MemTracer::pushEvent(DeviceKind device, MemEventKind kind,
                     uint64_t block_id, std::size_t bytes)
{
    const MemoryStats &stats = DeviceManager::instance().stats(device);
    MemEvent ev;
    ev.tsUs = SpanTracer::nowUs();
    ev.blockId = block_id;
    ev.bytes = bytes;
    ev.logicalBytes = stats.currentBytes;
    ev.reservedBytes = stats.reservedBytes;
    ev.kind = kind;
    ev.device = device;
    const Profiler &prof = Profiler::instance();
    ev.phase = prof.phase();
    ev.layer = prof.layer();

    PerDevice &d = dev(device);
    bool must_store = kind == MemEventKind::ResetPeak;
    if (kind == MemEventKind::ResetPeak) {
        // New measurement window: maxima restart at the current
        // levels, matching MemoryStats::resetPeak().
        d.logicalMax = ev.logicalBytes;
        d.reservedMax = ev.reservedBytes;
        captureSnapshot(d, d.logicalPeak, ev.logicalBytes);
        captureSnapshot(d, d.reservedPeak, ev.reservedBytes);
    } else {
        if (ev.logicalBytes > d.logicalMax) {
            d.logicalMax = ev.logicalBytes;
            captureSnapshot(d, d.logicalPeak, ev.logicalBytes);
            must_store = true;
        }
        if (ev.reservedBytes > d.reservedMax) {
            d.reservedMax = ev.reservedBytes;
            captureSnapshot(d, d.reservedPeak, ev.reservedBytes);
            must_store = true;
        }
    }
    // Markers and max-establishing events are stored past capacity so
    // the counter-track maxima stay exact under overflow.
    if (events_.size() < eventCapacity_ || must_store)
        events_.push_back(ev);
    else
        ++dropped_;
}

// mu_ must be held.
void
MemTracer::captureSnapshot(PerDevice &d, PeakSnapshot &snap,
                           std::size_t total_bytes) const
{
    snap.valid = true;
    snap.tsUs = SpanTracer::nowUs();
    const Profiler &prof = Profiler::instance();
    snap.phase = prof.phase();
    snap.layer = layerNameOf(prof.layer());
    snap.span = SpanTracer::instance().currentSpanName();
    snap.totalBytes = total_bytes;
    snap.trackedBytes = d.trackedLiveBytes;
    snap.liveBlockCount = d.live.size();

    std::vector<PeakBlockInfo> blocks;
    blocks.reserve(d.live.size());
    for (const auto &[id, live] : d.live) {
        PeakBlockInfo info;
        info.id = id;
        info.bytes = live.bytes;
        info.phase = live.phase;
        info.layer = layerNameOf(live.layer);
        info.allocTsUs = live.tsUs;
        blocks.push_back(std::move(info));
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const PeakBlockInfo &a, const PeakBlockInfo &b) {
                  if (a.bytes != b.bytes)
                      return a.bytes > b.bytes;
                  return a.id < b.id;
              });
    if (blocks.size() > static_cast<std::size_t>(kTopK))
        blocks.resize(kTopK);
    snap.topBlocks = std::move(blocks);
}

} // namespace gnnperf
