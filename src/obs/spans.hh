/**
 * @file
 * Real wall-clock host spans (RAII) into a thread-safe ring buffer.
 *
 * The Profiler (device/profiler.hh) records the *modeled* execution —
 * kernels with FLOP/byte counts priced by the cost model. This tracer
 * records what actually happened on the host: wall-clock begin/end of
 * dataloader batches, collation, training phases and layer scopes, so
 * the real host time can be laid next to the simulated Timeline in
 * one Chrome/Perfetto trace (obs/exec_trace.hh) — the offline stand-in
 * for the paper's nvprof/Nsight host-side timelines.
 *
 * Cost discipline mirrors the Profiler: collection is off by default
 * and every record site starts with a relaxed atomic load — a branch
 * and a return when disabled. When enabled, spans land in a fixed
 * capacity ring buffer (oldest overwritten, drops counted) guarded by
 * a mutex, so threaded callers (device/multi_gpu replicas, future
 * thread pools) can record safely.
 */

#ifndef GNNPERF_OBS_SPANS_HH
#define GNNPERF_OBS_SPANS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/trace.hh"

namespace gnnperf {

/** One completed wall-clock span. Names are interned (see tracer). */
struct SpanRecord
{
    double startUs = 0.0;   ///< µs since the trace clock epoch
    double durUs = 0.0;     ///< wall-clock duration in µs
    int32_t nameId = -1;    ///< interned name id
    int32_t tid = 0;        ///< small per-thread slot (0 = first seen)
    Phase phase = Phase::Other;  ///< profiler phase at span start
    int16_t layer = -1;     ///< profiler layer scope at span start
};

/** In-flight span state held by HostSpan between open and close. */
struct OpenSpan
{
    double startUs = 0.0;
    int32_t nameId = -1;
    Phase phase = Phase::Other;
    int16_t layer = -1;
};

/**
 * Process-wide wall-clock span sink. All methods are thread-safe;
 * the HostSpan fast path takes the mutex only when enabled.
 */
class SpanTracer
{
  public:
    /** Default ring capacity (spans are scope-, not op-grained). */
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    /** The process-wide instance. */
    static SpanTracer &instance();

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** µs since the process-wide trace clock epoch (steady clock). */
    static double nowUs();

    /**
     * Begin a span: interns the name, stamps the start time and the
     * active profiler phase/layer, pushes this thread's open stack.
     */
    OpenSpan open(const char *name);

    /** Finish a span begun with open() and append it to the ring. */
    void close(const OpenSpan &span);

    /** Innermost open span name on this thread ("" when none). */
    std::string currentSpanName() const;

    /** Spans in chronological order (unwraps the ring). */
    std::vector<SpanRecord> snapshot() const;

    /** All interned names, indexed by id. */
    std::vector<std::string> names() const;

    std::size_t recordedCount() const;  ///< spans currently held
    std::size_t droppedCount() const;   ///< spans lost to ring wrap

    /** Drop all spans and interning; keep enabled state/capacity. */
    void reset();

    /** Resize the ring (drops existing spans). Test hook. */
    void setCapacity(std::size_t capacity);

  private:
    SpanTracer() { ring_.reserve(kDefaultCapacity); }

    int32_t internNameLocked(const char *name);
    int32_t threadSlotLocked();

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<SpanRecord> ring_;
    std::size_t capacity_ = kDefaultCapacity;
    std::size_t next_ = 0;        ///< ring write cursor
    std::uint64_t total_ = 0;     ///< spans ever recorded
    std::vector<std::string> names_;
    std::unordered_map<std::string, int32_t> nameIds_;
    std::unordered_map<std::uint64_t, int32_t> threadSlots_;
};

/**
 * RAII wall-clock span. When the tracer is disabled at construction
 * the constructor is a branch and a member store; nothing is recorded.
 */
class HostSpan
{
  public:
    explicit HostSpan(const char *name)
    {
        SpanTracer &t = SpanTracer::instance();
        if (!t.enabled())
            return;
        armed_ = true;
        open_ = t.open(name);
    }

    ~HostSpan()
    {
        if (armed_)
            SpanTracer::instance().close(open_);
    }

    HostSpan(const HostSpan &) = delete;
    HostSpan &operator=(const HostSpan &) = delete;

  private:
    bool armed_ = false;
    OpenSpan open_;
};

} // namespace gnnperf

#endif // GNNPERF_OBS_SPANS_HH
