/**
 * @file
 * Run-diff engine: compare two machine-readable run artifacts and
 * produce a regression verdict.
 *
 * Any JSON the exporters emit works as input — a stats snapshot
 * (obs/stats_export.hh), a roofline report or suite (obs/roofline.hh),
 * or a BENCH_<name>.json baseline — because both documents are
 * flattened into dotted-path → number series ("reports.GatedGCN/DGL.
 * utilization", "metrics.backend.dgl.edges_touched.value", ...) and
 * aligned by name. A series regresses when its relative change exceeds
 * the threshold in the harmful direction; series whose magnitude never
 * leaves the noise floor are ignored. Most series are lower-is-better
 * (times, bytes, launches); substring patterns mark the
 * higher-is-better exceptions (accuracy, utilization).
 *
 * The gnnperf_diff CLI (tools/) wraps this as the CI perf gate.
 */

#ifndef GNNPERF_OBS_DIFF_HH
#define GNNPERF_OBS_DIFF_HH

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"

namespace gnnperf {
namespace diff {

/** Comparison knobs. */
struct DiffOptions
{
    /** Relative change beyond which a series counts as a move. */
    double relThreshold = 0.20;

    /** Series with |value| below this in both runs are skipped. */
    double noiseFloor = 1e-12;

    /** Substring filters: when non-empty, a series must match one. */
    std::vector<std::string> only;

    /** Substring filters: matching series are skipped. */
    std::vector<std::string> ignore;

    /**
     * Substring patterns for series where an *increase* is an
     * improvement (default: accuracy and utilization metrics).
     */
    std::vector<std::string> higherIsBetter = {"acc", "utilization"};
};

/** What happened to one series between the two runs. */
enum class SeriesVerdict {
    Unchanged,  ///< within threshold
    Improved,   ///< moved beyond threshold in the helpful direction
    Regressed,  ///< moved beyond threshold in the harmful direction
    Added,      ///< only in the new run
    Removed,    ///< only in the baseline
};

/** "unchanged" / "improved" / "regressed" / "added" / "removed". */
const char *seriesVerdictName(SeriesVerdict verdict);

/** One aligned series. */
struct SeriesDiff
{
    std::string name;
    double before = 0.0;
    double after = 0.0;
    double relChange = 0.0;  ///< (after - before) / |before|
    SeriesVerdict verdict = SeriesVerdict::Unchanged;
};

/** Result of comparing two runs. */
struct RunDiff
{
    std::vector<SeriesDiff> series;  ///< name-sorted

    std::size_t compared = 0;  ///< aligned series (after filters)
    std::size_t regressions() const;
    std::size_t improvements() const;

    /** True when no tracked series regressed. */
    bool ok() const { return regressions() == 0; }
};

/**
 * Flatten every numeric leaf of a JSON document into dotted-path →
 * value (booleans count as 0/1, array elements as path.<index>;
 * strings and nulls are skipped).
 */
std::map<std::string, double> flattenNumeric(const JsonValue &doc);

/** Compare two parsed run artifacts (baseline first). */
RunDiff compareRuns(const JsonValue &baseline, const JsonValue &current,
                    const DiffOptions &opts = {});

/**
 * Render a diff: changed series as a table, plus a one-line summary.
 * With `all` set, unchanged series are listed too.
 */
std::string renderRunDiff(const RunDiff &diff, bool all = false);

/**
 * BENCH baseline JSON: {"version": 1, "bench": <name>,
 * "series": {<dotted name>: <value>, ...}} — the machine-readable
 * trajectory format the bench binaries emit and CI compares.
 */
std::string baselineToJson(
    const std::string &bench_name,
    const std::vector<std::pair<std::string, double>> &series);

} // namespace diff
} // namespace gnnperf

#endif // GNNPERF_OBS_DIFF_HH
