/**
 * @file
 * Allocator event recording: the memory timeline and peak ownership.
 *
 * PR 3's allocators report *aggregate* MemoryStats — end-of-run
 * counters that say how high the logical and reserved lines got, but
 * not *when* memory moved or *which* live tensors owned the peak. The
 * MemTracer records one timestamped event per allocator action
 * (alloc/free/split/coalesce/trim/emptyCache plus peak-reset markers)
 * with the block id, size, device and the profiler phase/layer active
 * at the time, sampling the post-event logical/reserved levels; the
 * merged execution trace (obs/exec_trace.hh) renders those samples as
 * per-device counter tracks next to the host spans and the simulated
 * GPU stream — the paper's Fig. 4 curve as a timeline instead of a
 * single number.
 *
 * On top of the stream it keeps per-device **peak attribution**: at
 * every new logical or reserved high-water mark it snapshots the
 * active phase/layer/span and the top-K live blocks by size, so "who
 * owns the peak" is answerable after the run. Enabling the tracer
 * resets the DeviceManager's peak accounting (emitting ResetPeak
 * markers), so the trace window and MemoryStats peaks describe the
 * same interval and the counter-track maxima equal the stats peaks
 * exactly.
 *
 * Cost discipline mirrors the Profiler/SpanTracer: off by default,
 * every hook starts with a relaxed atomic load — a branch and a
 * return when disabled.
 */

#ifndef GNNPERF_OBS_MEMTRACE_HH
#define GNNPERF_OBS_MEMTRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/device.hh"
#include "device/trace.hh"

namespace gnnperf {

struct MemoryBlock;

/** What an allocator event describes. */
enum class MemEventKind : uint8_t {
    Alloc,       ///< a block was handed to a tensor (logical +=)
    Free,        ///< a live block was released (logical -=)
    Split,       ///< a cached block was split (caching allocator)
    Coalesce,    ///< free neighbours merged (caching allocator)
    Trim,        ///< generational cache trim returned segments
    EmptyCache,  ///< emptyCache() returned every free segment
    ResetPeak,   ///< peak accounting was reset (new measure window)
    GuardViolation,  ///< redzone/poison corruption (checked builds)
    Plan,        ///< IR memory planner pre-placed a segment (src/ir)
};

/** Number of distinct memory-event kinds. */
constexpr int kNumMemEventKinds = 9;

/** Human-readable event-kind name ("alloc", "reset_peak", …). */
const char *memEventName(MemEventKind kind);

/** One timestamped allocator event with sampled memory levels. */
struct MemEvent
{
    double tsUs = 0.0;           ///< µs on the shared trace clock
    uint64_t blockId = 0;        ///< tracer block id (0 = n/a)
    std::size_t bytes = 0;       ///< kind-specific payload bytes
    std::size_t logicalBytes = 0;   ///< live bytes after the event
    std::size_t reservedBytes = 0;  ///< pool bytes after the event
    MemEventKind kind = MemEventKind::Alloc;
    DeviceKind device = DeviceKind::Host;
    Phase phase = Phase::Other;  ///< profiler phase at event time
    int16_t layer = -1;          ///< profiler layer scope at event time
};

/** One live block inside a peak snapshot. */
struct PeakBlockInfo
{
    uint64_t id = 0;
    std::size_t bytes = 0;
    Phase phase = Phase::Other;  ///< phase the block was allocated in
    std::string layer;           ///< layer scope at allocation ("")
    double allocTsUs = 0.0;
};

/**
 * State captured at a memory high-water mark: who was running and
 * which live blocks own the bytes. `trackedBytes` sums every live
 * block the tracer has seen allocated; `totalBytes` is the
 * DeviceManager level at capture, so `totalBytes - trackedBytes` is
 * memory allocated before tracing was enabled.
 */
struct PeakSnapshot
{
    bool valid = false;
    double tsUs = 0.0;
    Phase phase = Phase::Other;  ///< active phase at the peak
    std::string layer;           ///< active layer scope ("" = none)
    std::string span;            ///< innermost open host span ("")
    std::size_t totalBytes = 0;
    std::size_t trackedBytes = 0;
    std::size_t liveBlockCount = 0;   ///< tracked live blocks
    std::vector<PeakBlockInfo> topBlocks;  ///< largest first, ≤ kTopK
};

/**
 * Process-wide allocator event sink. Thread-safe; intentionally
 * leaked (like the DeviceManager) so blocks released during static
 * destruction can still notify it.
 */
class MemTracer
{
  public:
    /** Live blocks kept per peak snapshot. */
    static constexpr int kTopK = 8;

    /** Default event-list capacity (see class comment on overflow). */
    static constexpr std::size_t kDefaultEventCapacity = 1 << 20;

    /** The process-wide instance. */
    static MemTracer &instance();

    /**
     * Enable/disable recording. Enabling resets the tracer *and* the
     * DeviceManager peak accounting on every device (emitting
     * ResetPeak markers) so the stats peaks and the recorded window
     * coincide.
     */
    void setEnabled(bool on);

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    // --- allocator hooks (branch + return when disabled) ---

    /** A block was handed out; assigns `block->traceId`. */
    void onAlloc(DeviceKind device, MemoryBlock *block);

    /** A live block is being released (call before it is recycled). */
    void onFree(DeviceKind device, const MemoryBlock *block);

    void onSplit(DeviceKind device, std::size_t bytes);
    void onCoalesce(DeviceKind device, std::size_t bytes);

    /** trim()/emptyCache() returned `bytes` to the system. */
    void onCacheRelease(DeviceKind device, MemEventKind kind,
                        std::size_t bytes);

    /** DeviceManager::resetPeak hook: emit a window marker. */
    void onResetPeak(DeviceKind device);

    /**
     * The IR memory planner pre-placed `bytes` of recorded-segment
     * outputs through the device's allocator (src/ir/planner.cc).
     * Levels are unchanged by the marker itself — the constituent
     * Alloc events carry them — so peak windows are unaffected.
     */
    void onPlan(DeviceKind device, std::size_t bytes);

    /**
     * The allocator guard layer found a torn canary/poison byte in
     * `block` at `offset` (docs/CORRECTNESS.md). Recorded even while
     * the tracer is disabled — the process is about to panic, and the
     * event must not depend on tracing being on to exist.
     */
    void onGuardViolation(DeviceKind device, const MemoryBlock *block,
                          std::size_t offset);

    // --- queries ---

    /** Recorded events in chronological order. */
    std::vector<MemEvent> events() const;

    /** Events not stored because the capacity was reached. */
    std::size_t droppedCount() const;

    /** Snapshot at the device's logical high-water mark. */
    PeakSnapshot logicalPeak(DeviceKind device) const;

    /** Snapshot at the device's reserved high-water mark. */
    PeakSnapshot reservedPeak(DeviceKind device) const;

    /** Drop all events, live-block tracking and snapshots. */
    void reset();

    /** Shrink/grow the event capacity (drops events). Test hook. */
    void setEventCapacity(std::size_t capacity);

  private:
    MemTracer() = default;

    struct LiveBlock
    {
        std::size_t bytes = 0;
        Phase phase = Phase::Other;
        int16_t layer = -1;
        double tsUs = 0.0;
    };

    struct PerDevice
    {
        std::unordered_map<uint64_t, LiveBlock> live;
        std::size_t trackedLiveBytes = 0;
        std::size_t logicalMax = 0;   ///< window max of logical bytes
        std::size_t reservedMax = 0;  ///< window max of reserved bytes
        PeakSnapshot logicalPeak;
        PeakSnapshot reservedPeak;
    };

    PerDevice &dev(DeviceKind device)
    {
        return device == DeviceKind::Cuda ? cuda_ : host_;
    }

    const PerDevice &dev(DeviceKind device) const
    {
        return device == DeviceKind::Cuda ? cuda_ : host_;
    }

    /**
     * Append an event stamped with the clock/phase/layer and the
     * device's post-event levels; maintains window maxima and peak
     * snapshots. Events that establish a new window maximum (and
     * ResetPeak markers) are always stored, so the counter-track
     * maxima survive capacity overflow exactly.
     */
    void pushEvent(DeviceKind device, MemEventKind kind,
                   uint64_t block_id, std::size_t bytes);

    void captureSnapshot(PerDevice &d, PeakSnapshot &snap,
                         std::size_t total_bytes) const;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<MemEvent> events_;
    std::size_t eventCapacity_ = kDefaultEventCapacity;
    std::size_t dropped_ = 0;
    uint64_t lastId_ = 0;
    PerDevice host_;
    PerDevice cuda_;
};

} // namespace gnnperf

#endif // GNNPERF_OBS_MEMTRACE_HH
