#include "obs/stats_export.hh"

#include <cmath>

#include "common/buildinfo.hh"
#include "common/string_utils.hh"

namespace gnnperf {
namespace stats {

namespace {

/** Format a metric value as a JSON/CSV number (integers unpadded). */
std::string
formatValue(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15)
        return strprintf("%.0f", v);
    return strprintf("%.9g", v);
}

} // namespace

std::string
statsToJson(const Registry &r)
{
    const auto snaps = r.snapshotAll();
    std::string out = strprintf("{\n  \"version\": 1,\n"
                                "  \"meta\": %s,\n"
                                "  \"epochs\": %zu,\n"
                                "  \"metrics\": {",
                                buildinfo::metaJson().c_str(),
                                r.epochsRolled());
    bool first = true;
    for (const auto &snap : snaps) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf("    \"%s\": {\"type\": \"%s\"",
                         jsonEscape(snap.name).c_str(),
                         metricTypeName(snap.type));
        if (snap.type == MetricType::Distribution) {
            const auto &d = snap.dist;
            out += strprintf(", \"count\": %llu, \"min\": %s, "
                             "\"max\": %s, \"mean\": %s, "
                             "\"stddev\": %s, \"buckets\": [",
                             static_cast<unsigned long long>(d.count),
                             formatValue(d.min).c_str(),
                             formatValue(d.max).c_str(),
                             formatValue(d.mean).c_str(),
                             formatValue(d.stddev).c_str());
            for (int i = 0; i < Distribution::kNumBuckets; ++i) {
                out += strprintf("%s%llu", i ? "," : "",
                                 static_cast<unsigned long long>(
                                     d.buckets[static_cast<
                                         std::size_t>(i)]));
            }
            out += "]}";
        } else {
            out += strprintf(", \"value\": %s}",
                             formatValue(snap.value).c_str());
        }
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
statsSeriesToCsv(const Registry &r)
{
    const auto snaps = r.snapshotAll();
    const std::size_t epochs = r.epochsRolled();
    std::string out = "epoch";
    for (const auto &snap : snaps)
        out += "," + csvEscape(snap.name);
    out += "\n";
    for (std::size_t e = 0; e < epochs; ++e) {
        out += strprintf("%zu", e);
        for (const auto &snap : snaps) {
            out += ",";
            out += e < snap.series.size()
                       ? formatValue(snap.series[e]) : "0";
        }
        out += "\n";
    }
    return out;
}

std::string
eventsToJsonl(const Registry &r)
{
    std::string out;
    for (const auto &event : r.events()) {
        out += strprintf("{\"event\": \"%s\", \"epoch\": %lld, "
                         "\"metrics\": {",
                         jsonEscape(event.label).c_str(),
                         static_cast<long long>(event.epoch));
        bool first = true;
        for (const auto &[name, delta] : event.deltas) {
            out += strprintf("%s\"%s\": %s", first ? "" : ", ",
                             jsonEscape(name).c_str(),
                             formatValue(delta).c_str());
            first = false;
        }
        out += "}}\n";
    }
    return out;
}

} // namespace stats
} // namespace gnnperf
