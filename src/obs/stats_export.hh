/**
 * @file
 * Exporters for the stats registry (obs/stats.hh): a machine-readable
 * JSON snapshot for cross-PR regression tracking, a per-epoch CSV
 * time series, and a JSONL run-event log (one line per epoch with the
 * metric deltas attached by Registry::rollEpoch).
 */

#ifndef GNNPERF_OBS_STATS_EXPORT_HH
#define GNNPERF_OBS_STATS_EXPORT_HH

#include <string>

#include "obs/stats.hh"

namespace gnnperf {
namespace stats {

/**
 * Full registry snapshot as a JSON object:
 *
 *   {"version": 1, "epochs": N, "metrics": {
 *      "dataloader.batches": {"type": "counter", "value": 12},
 *      "alloc.cuda.peak_bytes": {"type": "gauge", "value": 1024.0},
 *      "kernel.spmm.rows": {"type": "distribution", "count": 8,
 *        "min": ..., "max": ..., "mean": ..., "stddev": ...,
 *        "buckets": [...]}}}
 */
std::string statsToJson(const Registry &r = Registry::instance());

/**
 * Per-epoch time series as CSV: one column per metric (name-sorted),
 * one row per rolled epoch. Counter and distribution columns carry
 * the per-epoch delta; gauge columns carry the end-of-epoch level.
 */
std::string statsSeriesToCsv(const Registry &r = Registry::instance());

/**
 * Run-event log as JSONL: one JSON object per line,
 *
 *   {"event": "epoch", "epoch": 0,
 *    "metrics": {"trainer.epochs": 1, ...}}
 */
std::string eventsToJsonl(const Registry &r = Registry::instance());

} // namespace stats
} // namespace gnnperf

#endif // GNNPERF_OBS_STATS_EXPORT_HH
