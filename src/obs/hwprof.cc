/**
 * @file
 * Counter plumbing for the hardware profiler. All Linux-specific
 * syscall use (perf_event_open, RUSAGE_THREAD, /proc/self/statm)
 * is confined here; other platforms compile to the software tier
 * with zeroed counters.
 *
 * Tier state machine: Undecided -> Hardware on the first successful
 * per-thread probe, or -> Software when the probe is denied
 * (EACCES/EPERM from perf_event_paranoid, ENOENT on missing PMU) or
 * forced. Demotion is process-wide and sticky: once any thread is
 * refused, hardware slots are ignored everywhere so every window in
 * a run is measured the same way.
 */

#include "obs/hwprof.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "obs/spans.hh"
#include "obs/stats.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace gnnperf {
namespace hwprof {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

/// Cap on the timed-sample series (one entry per phase boundary).
constexpr std::size_t kMaxSeries = std::size_t{1} << 14;

/// Process-wide tier: 0 undecided, 1 software, 2 hardware.
constexpr int kTierUndecided = 0;
constexpr int kTierSoftware = 1;
constexpr int kTierHardware = 2;
std::atomic<int> g_tierState{kTierUndecided};
std::atomic<bool> g_forceSoftware{false};

/// Bumped on enable/reset so stale per-thread cursors self-expire
/// instead of attributing pre-enable work to the first kernel.
std::atomic<uint64_t> g_epoch{1};

/// Pool-worker deltas parked until the next kernel attribution on
/// the launching thread drains them (see workerEnd).
std::array<std::atomic<uint64_t>, kNumCounters> g_pending{};
std::atomic<bool> g_pendingHw{false};

struct Central {
    std::mutex mu;
    std::string tierReason = "off";
    Agg total;
    std::map<std::string, Agg> byKernel;
    std::map<std::string, Agg> byLayer;
    std::array<Agg, kNumPhases> byPhase{};
    /// Cumulative totals mirrored outside Agg for the timed series.
    std::array<uint64_t, kNumCounters> seriesTotal{};
    std::vector<TimedSample> series;
    std::size_t seriesDropped = 0;
    std::size_t rssPeak = 0;
};

Central &
central()
{
    static Central c;
    return c;
}

/** Record the reason for the current tier (first writer wins until
 *  a reset; demotion overwrites so the report explains itself). */
void
setTierReason(const std::string &reason)
{
    Central &c = central();
    std::lock_guard<std::mutex> lock(c.mu);
    c.tierReason = reason;
}

/** Demote the whole process to the software tier, once, loudly. */
void
demoteToSoftware(const std::string &reason)
{
    int expected = g_tierState.load(std::memory_order_relaxed);
    if (expected == kTierSoftware)
        return;
    g_tierState.store(kTierSoftware, std::memory_order_relaxed);
    setTierReason(reason);
    gnnperf_inform("hwprof: ", reason);
}

/// Per-thread perf fds, opened lazily on first read.
struct ThreadSlot {
    bool probed = false;
    bool anyHw = false;
    std::array<int, kFirstSoftwareCounter> fd;
    Sample cursor;
    uint64_t epoch = 0;

    ThreadSlot() { fd.fill(-1); }
};

thread_local ThreadSlot t_slot;

#if defined(__linux__)
int
perfOpenOne(uint64_t config)
{
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    // User-space only: works at perf_event_paranoid <= 2, which is
    // the common default; counting kernel time would need <= 1.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}
#endif

/** Open this thread's counters; decides/confirms the process tier. */
void
probeThread(ThreadSlot &slot)
{
    slot.probed = true;
    if (g_forceSoftware.load(std::memory_order_relaxed)) {
        demoteToSoftware(
            "software tier forced (GNNPERF_HWPROF=sw)");
        return;
    }
    if (g_tierState.load(std::memory_order_relaxed) == kTierSoftware)
        return;
#if defined(__linux__)
    static const uint64_t configs[kFirstSoftwareCounter] = {
        PERF_COUNT_HW_CPU_CYCLES,
        PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_REFERENCES,
        PERF_COUNT_HW_CACHE_MISSES,
        PERF_COUNT_HW_BRANCH_MISSES,
        PERF_COUNT_HW_STALLED_CYCLES_FRONTEND,
    };
    int open_errno = 0;
    for (int i = 0; i < kFirstSoftwareCounter; ++i) {
        int fd = perfOpenOne(configs[i]);
        if (fd >= 0) {
            slot.fd[i] = fd;
        } else if (i == kCycles) {
            // The PMU's most basic event was refused: no point
            // probing the rest on this platform.
            open_errno = errno;
            break;
        }
        // Individual refusals past kCycles (stalled-cycles is often
        // unimplemented) leave that slot at -1 but keep the tier.
    }
    slot.anyHw =
        slot.fd[kCycles] >= 0 && slot.fd[kInstructions] >= 0;
    if (slot.anyHw) {
        int expected = kTierUndecided;
        if (g_tierState.compare_exchange_strong(
                expected, kTierHardware, std::memory_order_relaxed))
            setTierReason(
                "hardware counters active (perf_event_open)");
    } else {
        demoteToSoftware(strprintf(
            "perf_event_open denied (%s); software fallback tier "
            "(rusage + /proc) engaged",
            std::strerror(open_errno ? open_errno : EACCES)));
    }
#else
    demoteToSoftware(
        "perf_event_open unavailable on this platform; software "
        "fallback tier engaged");
#endif
}

/** now - prev, saturating at zero per slot. */
Sample
sampleDelta(const Sample &now, const Sample &prev)
{
    Sample d;
    for (int i = 0; i < kNumCounters; ++i)
        d.v[i] = now.v[i] >= prev.v[i] ? now.v[i] - prev.v[i] : 0;
    d.hwValid = now.hwValid;
    return d;
}

/**
 * Delta since this thread's cursor (zero on the first window of an
 * epoch), with any parked pool-worker deltas drained in. Advances
 * the cursor.
 */
Sample
takeThreadDelta()
{
    ThreadSlot &slot = t_slot;
    Sample now = readThread();
    uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
    Sample delta;
    if (slot.epoch == epoch)
        delta = sampleDelta(now, slot.cursor);
    else
        delta.hwValid = now.hwValid;
    slot.cursor = now;
    slot.epoch = epoch;
    for (int i = 0; i < kNumCounters; ++i) {
        uint64_t pending =
            g_pending[i].exchange(0, std::memory_order_relaxed);
        delta.v[i] += pending;
    }
    if (g_pendingHw.exchange(false, std::memory_order_relaxed))
        delta.hwValid = true;
    return delta;
}

/** Accumulate a delta under the central lock (caller holds it). */
void
bookDeltaLocked(Central &c, const Sample &delta)
{
    c.total.add(delta);
    for (int i = 0; i < kNumCounters; ++i)
        c.seriesTotal[i] += delta.v[i];
}

} // namespace

const char *
tierName(Tier tier)
{
    switch (tier) {
    case Tier::Off: return "off";
    case Tier::Software: return "software";
    case Tier::Hardware: return "hardware";
    }
    return "unknown";
}

const char *
counterName(int counter)
{
    static const char *const names[kNumCounters] = {
        "cycles",          "instructions",
        "cache_refs",      "cache_misses",
        "branch_misses",   "stalled_cycles",
        "minor_faults",    "major_faults",
        "ctx_switches_vol", "ctx_switches_invol",
    };
    if (counter < 0 || counter >= kNumCounters)
        return "unknown";
    return names[counter];
}

void
Agg::add(const Sample &delta)
{
    for (int i = 0; i < kNumCounters; ++i)
        sum[i] += delta.v[i];
    windows += 1;
    hwValid = hwValid || delta.hwValid;
}

void
Agg::merge(const Agg &other)
{
    for (int i = 0; i < kNumCounters; ++i)
        sum[i] += other.sum[i];
    windows += other.windows;
    hwValid = hwValid || other.hwValid;
}

double
Agg::ipc() const
{
    if (sum[kCycles] == 0)
        return 0.0;
    return static_cast<double>(sum[kInstructions]) /
           static_cast<double>(sum[kCycles]);
}

double
Agg::missRate() const
{
    if (sum[kCacheRefs] == 0)
        return 0.0;
    return static_cast<double>(sum[kCacheMisses]) /
           static_cast<double>(sum[kCacheRefs]);
}

void
setEnabled(bool on)
{
    if (on) {
        g_epoch.fetch_add(1, std::memory_order_relaxed);
        detail::g_enabled.store(true, std::memory_order_relaxed);
        // Probe on the enabling thread so tier() is decided before
        // the first kernel window (and the demotion message, if any,
        // prints up front rather than mid-run).
        readThread();
    } else {
        detail::g_enabled.store(false, std::memory_order_relaxed);
    }
}

void
forceSoftwareTier()
{
    g_forceSoftware.store(true, std::memory_order_relaxed);
    demoteToSoftware("software tier forced (GNNPERF_HWPROF=sw)");
}

void
configure(const std::string &mode)
{
    std::string m = mode;
    for (char &c : m)
        c = static_cast<char>(std::tolower(c));
    if (m.empty() || m == "0" || m == "off") {
        setEnabled(false);
        return;
    }
    if (m == "sw" || m == "software")
        forceSoftwareTier();
    setEnabled(true);
}

Tier
tier()
{
    switch (g_tierState.load(std::memory_order_relaxed)) {
    case kTierHardware: return Tier::Hardware;
    case kTierSoftware: return Tier::Software;
    default: return Tier::Off;
    }
}

std::string
tierReason()
{
    Central &c = central();
    std::lock_guard<std::mutex> lock(c.mu);
    return c.tierReason;
}

void
resetAggregates()
{
    Central &c = central();
    std::lock_guard<std::mutex> lock(c.mu);
    c.total = Agg{};
    c.byKernel.clear();
    c.byLayer.clear();
    c.byPhase.fill(Agg{});
    c.seriesTotal.fill(0);
    c.series.clear();
    c.seriesDropped = 0;
    c.rssPeak = 0;
    g_epoch.fetch_add(1, std::memory_order_relaxed);
    for (auto &p : g_pending)
        p.store(0, std::memory_order_relaxed);
    g_pendingHw.store(false, std::memory_order_relaxed);
}

Snapshot
snapshot()
{
    Central &c = central();
    std::lock_guard<std::mutex> lock(c.mu);
    Snapshot s;
    s.tier = tier();
    s.tierReason = c.tierReason;
    s.total = c.total;
    s.byKernel.assign(c.byKernel.begin(), c.byKernel.end());
    s.byLayer.assign(c.byLayer.begin(), c.byLayer.end());
    s.byPhase = c.byPhase;
    s.series = c.series;
    s.seriesDropped = c.seriesDropped;
    s.rssPeakBytes = c.rssPeak;
    return s;
}

void
onKernelRecord(const char *kernel, Phase phase, int16_t layer,
               const std::string *layerName)
{
    if (!enabled())
        return;
    Sample delta = takeThreadDelta();
    Central &c = central();
    std::lock_guard<std::mutex> lock(c.mu);
    bookDeltaLocked(c, delta);
    c.byKernel[kernel].add(delta);
    c.byPhase[static_cast<int>(phase)].add(delta);
    if (layer >= 0 && layerName != nullptr)
        c.byLayer[*layerName].add(delta);
}

void
onPhaseBoundary(Phase phase)
{
    if (!enabled())
        return;
    Sample delta = takeThreadDelta();
    std::size_t rss = readRssBytes();
    Central &c = central();
    std::lock_guard<std::mutex> lock(c.mu);
    bookDeltaLocked(c, delta);
    c.byPhase[static_cast<int>(phase)].add(delta);
    c.rssPeak = std::max(c.rssPeak, rss);
    if (c.series.size() < kMaxSeries) {
        TimedSample ts;
        ts.tsUs = SpanTracer::nowUs();
        ts.total = c.seriesTotal;
        ts.rssBytes = rss;
        c.series.push_back(ts);
    } else {
        ++c.seriesDropped;
    }
}

Sample
readThread()
{
    ThreadSlot &slot = t_slot;
    if (!slot.probed)
        probeThread(slot);
    Sample s;
#if defined(__linux__)
    if (slot.anyHw &&
        g_tierState.load(std::memory_order_relaxed) ==
            kTierHardware) {
        for (int i = 0; i < kFirstSoftwareCounter; ++i) {
            if (slot.fd[i] < 0)
                continue;
            uint64_t value = 0;
            if (read(slot.fd[i], &value, sizeof(value)) ==
                static_cast<ssize_t>(sizeof(value)))
                s.v[i] = value;
        }
        s.hwValid = true;
    }
    struct rusage ru;
#if defined(RUSAGE_THREAD)
    const int who = RUSAGE_THREAD;
#else
    const int who = RUSAGE_SELF;
#endif
    if (getrusage(who, &ru) == 0) {
        s.v[kMinorFaults] = static_cast<uint64_t>(ru.ru_minflt);
        s.v[kMajorFaults] = static_cast<uint64_t>(ru.ru_majflt);
        s.v[kCtxSwitchesVol] = static_cast<uint64_t>(ru.ru_nvcsw);
        s.v[kCtxSwitchesInvol] =
            static_cast<uint64_t>(ru.ru_nivcsw);
    }
#endif
    return s;
}

std::size_t
readRssBytes()
{
#if defined(__linux__)
    // /proc/self/statm: size resident shared text lib data dt, in
    // pages. Field 2 is the resident set.
    std::FILE *f = std::fopen("/proc/self/statm", "re");
    if (f == nullptr)
        return 0;
    unsigned long long size_pages = 0, rss_pages = 0;
    int got = std::fscanf(f, "%llu %llu", &size_pages, &rss_pages);
    std::fclose(f);
    if (got != 2)
        return 0;
    long page = sysconf(_SC_PAGESIZE);
    if (page <= 0)
        page = 4096;
    return static_cast<std::size_t>(rss_pages) *
           static_cast<std::size_t>(page);
#else
    return 0;
#endif
}

Sample
workerBegin()
{
    return readThread();
}

void
workerEnd(const Sample &start)
{
    Sample now = readThread();
    Sample delta = sampleDelta(now, start);
    for (int i = 0; i < kNumCounters; ++i) {
        if (delta.v[i] != 0)
            g_pending[i].fetch_add(delta.v[i],
                                   std::memory_order_relaxed);
    }
    if (now.hwValid)
        g_pendingHw.store(true, std::memory_order_relaxed);
}

void
publishStats()
{
    if (!enabled())
        return;
    Snapshot s = snapshot();
    double tier_level = s.tier == Tier::Hardware  ? 2
                        : s.tier == Tier::Software ? 1
                                                   : 0;
    stats::gauge("hwprof.tier").set(tier_level);
    stats::gauge("hwprof.windows")
        .set(static_cast<double>(s.total.windows));
    stats::gauge("hwprof.cycles")
        .set(static_cast<double>(s.total.sum[kCycles]));
    stats::gauge("hwprof.instructions")
        .set(static_cast<double>(s.total.sum[kInstructions]));
    stats::gauge("hwprof.cache_refs")
        .set(static_cast<double>(s.total.sum[kCacheRefs]));
    stats::gauge("hwprof.cache_misses")
        .set(static_cast<double>(s.total.sum[kCacheMisses]));
    stats::gauge("hwprof.branch_misses")
        .set(static_cast<double>(s.total.sum[kBranchMisses]));
    stats::gauge("hwprof.stalled_cycles")
        .set(static_cast<double>(s.total.sum[kStalledCycles]));
    stats::gauge("hwprof.minor_faults")
        .set(static_cast<double>(s.total.sum[kMinorFaults]));
    stats::gauge("hwprof.major_faults")
        .set(static_cast<double>(s.total.sum[kMajorFaults]));
    stats::gauge("hwprof.ctx_switches_vol")
        .set(static_cast<double>(s.total.sum[kCtxSwitchesVol]));
    stats::gauge("hwprof.ctx_switches_invol")
        .set(static_cast<double>(s.total.sum[kCtxSwitchesInvol]));
    stats::gauge("hwprof.rss_peak_bytes")
        .set(static_cast<double>(s.rssPeakBytes));
}

} // namespace hwprof
} // namespace gnnperf
