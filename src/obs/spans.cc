#include "obs/spans.hh"

#include <chrono>
#include <functional>
#include <thread>

#include "device/profiler.hh"

namespace gnnperf {

namespace {

/** Innermost-first stack of open span name ids, per thread. */
thread_local std::vector<int32_t> t_openStack;

} // namespace

SpanTracer &
SpanTracer::instance()
{
    static SpanTracer tracer;
    return tracer;
}

double
SpanTracer::nowUs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double, std::micro>(clock::now() -
                                                     epoch)
        .count();
}

int32_t
SpanTracer::internNameLocked(const char *name)
{
    auto it = nameIds_.find(name);
    if (it != nameIds_.end())
        return it->second;
    const auto id = static_cast<int32_t>(names_.size());
    names_.emplace_back(name);
    nameIds_.emplace(name, id);
    return id;
}

int32_t
SpanTracer::threadSlotLocked()
{
    const std::uint64_t key = static_cast<std::uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    auto it = threadSlots_.find(key);
    if (it != threadSlots_.end())
        return it->second;
    const auto slot = static_cast<int32_t>(threadSlots_.size());
    threadSlots_.emplace(key, slot);
    return slot;
}

OpenSpan
SpanTracer::open(const char *name)
{
    OpenSpan span;
    {
        std::lock_guard<std::mutex> lock(mu_);
        span.nameId = internNameLocked(name);
    }
    t_openStack.push_back(span.nameId);
    const Profiler &prof = Profiler::instance();
    span.phase = prof.phase();
    span.layer = prof.layer();
    // Stamp time last so the span excludes the bookkeeping above.
    span.startUs = nowUs();
    return span;
}

void
SpanTracer::close(const OpenSpan &open)
{
    const double end = nowUs();
    SpanRecord span;
    span.startUs = open.startUs;
    span.durUs = end - open.startUs;
    span.nameId = open.nameId;
    span.phase = open.phase;
    span.layer = open.layer;
    if (!t_openStack.empty())
        t_openStack.pop_back();

    std::lock_guard<std::mutex> lock(mu_);
    span.tid = threadSlotLocked();
    ++total_;
    if (ring_.size() < capacity_) {
        ring_.push_back(span);
        return;
    }
    // Ring full: overwrite the oldest span.
    ring_[next_] = span;
    next_ = (next_ + 1) % capacity_;
}

std::string
SpanTracer::currentSpanName() const
{
    if (t_openStack.empty())
        return "";
    std::lock_guard<std::mutex> lock(mu_);
    const auto id = static_cast<std::size_t>(t_openStack.back());
    return id < names_.size() ? names_[id] : "";
}

std::vector<SpanRecord>
SpanTracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    // Oldest first: the wrapped region starts at the write cursor.
    for (std::size_t i = next_; i < ring_.size(); ++i)
        out.push_back(ring_[i]);
    for (std::size_t i = 0; i < next_; ++i)
        out.push_back(ring_[i]);
    return out;
}

std::vector<std::string>
SpanTracer::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return names_;
}

std::size_t
SpanTracer::recordedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

std::size_t
SpanTracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void
SpanTracer::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    next_ = 0;
    total_ = 0;
    names_.clear();
    nameIds_.clear();
    threadSlots_.clear();
    t_openStack.clear();
}

void
SpanTracer::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity > 0 ? capacity : 1;
    ring_.clear();
    ring_.reserve(capacity_);
    next_ = 0;
    total_ = 0;
}

} // namespace gnnperf
