#include "obs/exec_trace.hh"

#include <algorithm>

#include "common/buildinfo.hh"
#include "common/fs.hh"
#include "common/string_utils.hh"
#include "common/table.hh"
#include "device/cost_model.hh"
#include "device/profiler.hh"
#include "device/trace_export.hh"
#include "obs/hwprof.hh"
#include "obs/memtrace.hh"
#include "obs/spans.hh"

namespace gnnperf {

namespace {

// Process ids of the four track groups in the merged file.
constexpr int kSimPid = 1;
constexpr int kHostPid = 2;
constexpr int kMemPid = 3;
constexpr int kProfPid = 4;

// pid-3 thread ids: one row of markers per device.
constexpr int kCudaTid = 1;
constexpr int kHostDevTid = 2;

int
memTid(DeviceKind device)
{
    return device == DeviceKind::Cuda ? kCudaTid : kHostDevTid;
}

/** Span layer id → name via the Profiler's current interning. */
std::string
layerNameOf(int16_t layer)
{
    if (layer < 0)
        return "";
    const auto &names = Profiler::instance().layerNames();
    const auto idx = static_cast<std::size_t>(layer);
    return idx < names.size() ? names[idx] : "";
}

/** One PeakSnapshot as a JSON object. */
std::string
snapshotJson(const PeakSnapshot &snap)
{
    std::string out = strprintf(
        "{\"valid\":%s,\"ts_us\":%.3f,\"phase\":\"%s\","
        "\"layer\":\"%s\",\"span\":\"%s\",\"total_bytes\":%zu,"
        "\"tracked_bytes\":%zu,\"live_blocks\":%zu,\"top_blocks\":[",
        snap.valid ? "true" : "false", snap.tsUs, phaseName(snap.phase),
        jsonEscape(snap.layer).c_str(), jsonEscape(snap.span).c_str(),
        snap.totalBytes, snap.trackedBytes, snap.liveBlockCount);
    for (std::size_t i = 0; i < snap.topBlocks.size(); ++i) {
        const PeakBlockInfo &b = snap.topBlocks[i];
        out += strprintf(
            "%s{\"id\":%llu,\"bytes\":%zu,\"phase\":\"%s\","
            "\"layer\":\"%s\",\"alloc_ts_us\":%.3f}",
            i == 0 ? "" : ",",
            static_cast<unsigned long long>(b.id), b.bytes,
            phaseName(b.phase), jsonEscape(b.layer).c_str(),
            b.allocTsUs);
    }
    out += "]}";
    return out;
}

/** Both peak snapshots of one device as a JSON object. */
std::string
devicePeaksJson(const MemTracer &tracer, DeviceKind device)
{
    return strprintf(
        "{\"logical\":%s,\"reserved\":%s}",
        snapshotJson(tracer.logicalPeak(device)).c_str(),
        snapshotJson(tracer.reservedPeak(device)).c_str());
}

/** Append the pid-2 real host-span slices (and thread names). */
void
appendHostSpans(std::string &out)
{
    const SpanTracer &tracer = SpanTracer::instance();
    const std::vector<SpanRecord> spans = tracer.snapshot();
    const std::vector<std::string> names = tracer.names();

    int32_t max_tid = 0;
    for (const SpanRecord &s : spans)
        max_tid = std::max(max_tid, s.tid);
    out += ",\n" + chromeProcessName(kHostPid, "gnnperf host (real)");
    for (int32_t t = 0; t <= max_tid; ++t) {
        out += ",\n" + chromeThreadName(
                           kHostPid, t + 1,
                           strprintf("host thread %d", t));
    }

    for (const SpanRecord &s : spans) {
        const auto idx = static_cast<std::size_t>(s.nameId);
        const std::string name =
            idx < names.size() ? jsonEscape(names[idx]) : "?";
        out += strprintf(
            ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
            "\"args\":{\"layer\":\"%s\"}}",
            name.c_str(), phaseName(s.phase), kHostPid, s.tid + 1,
            s.startUs, s.durUs,
            jsonEscape(layerNameOf(s.layer)).c_str());
    }
}

/** Append the pid-3 memory counter tracks and allocator markers. */
void
appendMemoryTrack(std::string &out)
{
    const std::vector<MemEvent> events = MemTracer::instance().events();

    out += ",\n" + chromeProcessName(kMemPid, "gnnperf memory");
    out += ",\n" + chromeThreadName(kMemPid, kCudaTid, "cuda events");
    out += ",\n" + chromeThreadName(kMemPid, kHostDevTid, "host events");

    for (const MemEvent &ev : events) {
        // Every event samples the post-event levels: one counter
        // point per event gives the exact step curve.
        out += strprintf(
            ",\n{\"name\":\"mem.%s\",\"ph\":\"C\",\"pid\":%d,"
            "\"tid\":%d,\"ts\":%.3f,"
            "\"args\":{\"logical\":%zu,\"reserved\":%zu}}",
            deviceName(ev.device), kMemPid, memTid(ev.device), ev.tsUs,
            ev.logicalBytes, ev.reservedBytes);
        // Alloc/free are the counter steps themselves; the rarer
        // allocator actions additionally get an instant marker.
        if (ev.kind == MemEventKind::Alloc ||
            ev.kind == MemEventKind::Free) {
            continue;
        }
        out += strprintf(
            ",\n{\"name\":\"%s\",\"cat\":\"mem.%s\",\"ph\":\"i\","
            "\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
            "\"args\":{\"bytes\":%zu}}",
            memEventName(ev.kind), deviceName(ev.device), kMemPid,
            memTid(ev.device), ev.tsUs, ev.bytes);
    }
}

/**
 * Append the pid-4 hardware-counter tracks: one cumulative counter
 * point per phase boundary. Emitted only when hwprof collected
 * samples, so hwprof-off traces are unchanged.
 */
void
appendHwprofTrack(std::string &out)
{
    if (!hwprof::enabled())
        return;
    const hwprof::Snapshot snap = hwprof::snapshot();
    if (snap.series.empty())
        return;

    out += ",\n" + chromeProcessName(
                       kProfPid,
                       strprintf("gnnperf hw counters (%s tier)",
                                 hwprof::tierName(snap.tier)));
    out += ",\n" + chromeThreadName(kProfPid, 1, "counters");
    out += ",\n" + chromeThreadName(kProfPid, 2, "rss");

    for (const hwprof::TimedSample &ts : snap.series) {
        if (snap.tier == hwprof::Tier::Hardware) {
            out += strprintf(
                ",\n{\"name\":\"hwprof.counters\",\"ph\":\"C\","
                "\"pid\":%d,\"tid\":1,\"ts\":%.3f,"
                "\"args\":{\"cycles\":%llu,\"instructions\":%llu,"
                "\"cache_misses\":%llu}}",
                kProfPid, ts.tsUs,
                static_cast<unsigned long long>(
                    ts.total[hwprof::kCycles]),
                static_cast<unsigned long long>(
                    ts.total[hwprof::kInstructions]),
                static_cast<unsigned long long>(
                    ts.total[hwprof::kCacheMisses]));
        }
        out += strprintf(
            ",\n{\"name\":\"hwprof.faults\",\"ph\":\"C\","
            "\"pid\":%d,\"tid\":1,\"ts\":%.3f,"
            "\"args\":{\"minor\":%llu,\"major\":%llu,"
            "\"ctx_switches\":%llu}}",
            kProfPid, ts.tsUs,
            static_cast<unsigned long long>(
                ts.total[hwprof::kMinorFaults]),
            static_cast<unsigned long long>(
                ts.total[hwprof::kMajorFaults]),
            static_cast<unsigned long long>(
                ts.total[hwprof::kCtxSwitchesVol] +
                ts.total[hwprof::kCtxSwitchesInvol]));
        out += strprintf(
            ",\n{\"name\":\"hwprof.rss\",\"ph\":\"C\","
            "\"pid\":%d,\"tid\":2,\"ts\":%.3f,"
            "\"args\":{\"bytes\":%zu}}",
            kProfPid, ts.tsUs, ts.rssBytes);
    }
}

/** One table section for a peak snapshot. */
void
addPeakRows(TextTable &table, const char *which,
            const PeakSnapshot &snap)
{
    if (!snap.valid) {
        table.addRow({which, "(no events recorded)", "", "", ""});
        return;
    }
    table.addRow({which,
                  strprintf("peak %s", formatBytes(snap.totalBytes).c_str()),
                  phaseName(snap.phase),
                  snap.layer.empty() ? "-" : snap.layer,
                  snap.span.empty() ? "-" : snap.span});
    for (const PeakBlockInfo &b : snap.topBlocks) {
        table.addRow({"",
                      strprintf("block #%llu %s",
                                static_cast<unsigned long long>(b.id),
                                formatBytes(b.bytes).c_str()),
                      phaseName(b.phase),
                      b.layer.empty() ? "-" : b.layer, ""});
    }
    if (snap.totalBytes > snap.trackedBytes) {
        table.addRow({"",
                      strprintf("untracked %s (pre-trace)",
                                formatBytes(snap.totalBytes -
                                            snap.trackedBytes)
                                    .c_str()),
                      "", "", ""});
    }
}

} // namespace

ExecTrace &
ExecTrace::instance()
{
    // Leaked like the tracers it drives.
    static ExecTrace *trace = new ExecTrace();  // lint:allow leaked singleton
    return *trace;
}

void
ExecTrace::enable()
{
    reset();
    SpanTracer::instance().setEnabled(true);
    MemTracer::instance().setEnabled(true);
    enabled_.store(true, std::memory_order_relaxed);
}

void
ExecTrace::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
    SpanTracer::instance().setEnabled(false);
    MemTracer::instance().setEnabled(false);
}

void
ExecTrace::captureSimulated(const Trace &trace,
                            double dispatch_overhead,
                            const std::string &label)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    simEndUs_ = appendChromeTraceEvents(simEvents_, trace,
                                        CostModel::defaultModel(),
                                        dispatch_overhead, kSimPid,
                                        simEndUs_);
    ++simEpochs_;
    label_ = label;
}

std::size_t
ExecTrace::capturedEpochs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return simEpochs_;
}

std::string
ExecTrace::toJson() const
{
    const MemTracer &mem = MemTracer::instance();
    const DeviceManager &dm = DeviceManager::instance();

    std::string out = "{\n\"traceEvents\": [\n";
    out += chromeProcessName(kSimPid, "gnnperf simulated") + ",\n";
    out += chromeThreadName(kSimPid, 1, "host dispatch") + ",\n";
    out += chromeThreadName(kSimPid, 2, "gpu stream");
    {
        std::lock_guard<std::mutex> lock(mu_);
        out += simEvents_;
    }
    appendHostSpans(out);
    appendMemoryTrack(out);
    appendHwprofTrack(out);
    out += "\n],\n";

    {
        std::lock_guard<std::mutex> lock(mu_);
        out += strprintf(
            "\"meta\": {\"tool\":\"gnnperf\",\"backend\":\"%s\","
            "\"simulated_epochs\":%zu,\"sim_end_us\":%.3f,"
            "\"span_count\":%zu,\"spans_dropped\":%zu,"
            "\"mem_event_count\":%zu,\"mem_events_dropped\":%zu,"
            "\"provenance\":%s},\n",
            jsonEscape(label_).c_str(), simEpochs_, simEndUs_,
            SpanTracer::instance().recordedCount(),
            SpanTracer::instance().droppedCount(), mem.events().size(),
            mem.droppedCount(), buildinfo::metaJson().c_str());
    }

    // The self-check contract: counter maxima at-or-after the last
    // reset_peak marker per device must equal these numbers exactly.
    out += strprintf(
        "\"stats_peaks\": {"
        "\"cuda\":{\"logical\":%zu,\"reserved\":%zu},"
        "\"host\":{\"logical\":%zu,\"reserved\":%zu}},\n",
        dm.peak(DeviceKind::Cuda), dm.reservedPeak(DeviceKind::Cuda),
        dm.peak(DeviceKind::Host), dm.reservedPeak(DeviceKind::Host));

    out += "\"peak_attribution\": {\"cuda\":" +
           devicePeaksJson(mem, DeviceKind::Cuda) +
           ",\"host\":" + devicePeaksJson(mem, DeviceKind::Host) +
           "}\n}\n";
    return out;
}

void
ExecTrace::writeTo(const std::string &path) const
{
    writeFile(path, toJson());
}

std::string
ExecTrace::peakTable(DeviceKind device) const
{
    const MemTracer &mem = MemTracer::instance();
    TextTable table;
    table.setHeader({"peak", "owner", "phase", "layer", "span"});
    addPeakRows(table, "logical", mem.logicalPeak(device));
    table.addSeparator();
    addPeakRows(table, "reserved", mem.reservedPeak(device));
    return strprintf("%s memory peak attribution\n",
                     deviceName(device)) +
           table.render();
}

void
ExecTrace::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    simEvents_.clear();
    simEndUs_ = 0.0;
    simEpochs_ = 0;
    label_.clear();
    SpanTracer::instance().reset();
    MemTracer::instance().reset();
}

} // namespace gnnperf
