#include "obs/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gnnperf {
namespace stats {

std::atomic<bool> g_samplingEnabled{false};

void
setSamplingEnabled(bool on)
{
    g_samplingEnabled.store(on, std::memory_order_relaxed);
}

const char *
metricTypeName(MetricType type)
{
    switch (type) {
      case MetricType::Counter: return "counter";
      case MetricType::Gauge: return "gauge";
      case MetricType::Distribution: return "distribution";
    }
    return "?";
}

int
Distribution::bucketIndex(double v)
{
    if (!(v >= 1.0))
        return 0;
    // ilogb(+inf) is INT_MAX, so `1 + ilogb(v)` would be signed
    // overflow (UB) for infinite samples; clamp before the increment.
    const int e = std::min(std::ilogb(v), kNumBuckets - 2);
    const int b = 1 + e;
    return b < kNumBuckets ? b : kNumBuckets - 1;
}

void
Distribution::sample(double v)
{
    if (!samplingEnabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sumSq_ += v * v;
    ++buckets_[static_cast<std::size_t>(bucketIndex(v))];
}

Distribution::Snapshot
Distribution::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s;
    s.count = count_;
    s.min = min_;
    s.max = max_;
    s.buckets = buckets_;
    if (count_ > 0) {
        s.mean = sum_ / static_cast<double>(count_);
        const double var =
            sumSq_ / static_cast<double>(count_) - s.mean * s.mean;
        s.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    return s;
}

namespace {

/**
 * The well-known metric set, registered eagerly so that every stats
 * snapshot spans all instrumented namespaces with stable columns —
 * even for workloads that never touch some of them (a node-task run
 * has no DataLoader, a PyG run has no heterograph dispatch).
 */
struct CoreMetric
{
    const char *name;
    MetricType type;
};

constexpr CoreMetric kCoreMetrics[] = {
    {"dataloader.epochs", MetricType::Counter},
    {"dataloader.batches", MetricType::Counter},
    {"dataloader.graphs", MetricType::Counter},
    {"backend.pyg.collate_batches", MetricType::Counter},
    {"backend.pyg.collate_bytes", MetricType::Counter},
    {"backend.pyg.edges_touched", MetricType::Counter},
    {"backend.dgl.collate_batches", MetricType::Counter},
    {"backend.dgl.collate_bytes", MetricType::Counter},
    {"backend.dgl.edges_touched", MetricType::Counter},
    {"backend.dgl.dispatch_ops", MetricType::Counter},
    {"backend.dgl.frame_bytes", MetricType::Counter},
    {"kernel.spmm.calls", MetricType::Counter},
    {"kernel.spmm.nnz", MetricType::Counter},
    {"kernel.spmm.rows", MetricType::Distribution},
    {"kernel.sddmm.calls", MetricType::Counter},
    {"kernel.sddmm.nnz", MetricType::Counter},
    {"kernel.scatter.calls", MetricType::Counter},
    {"kernel.scatter.rows", MetricType::Distribution},
    {"kernel.segment.calls", MetricType::Counter},
    {"kernel.segment.segments", MetricType::Counter},
    {"alloc.cuda.allocs", MetricType::Counter},
    {"alloc.cuda.frees", MetricType::Counter},
    {"alloc.cuda.alloc_bytes", MetricType::Counter},
    {"alloc.cuda.current_bytes", MetricType::Gauge},
    {"alloc.cuda.peak_bytes", MetricType::Gauge},
    // Pool (reserved) line: named reserved_peak, not *_peak_bytes, so
    // substring filters on the logical peak_bytes don't catch it.
    {"alloc.cuda.reserved_bytes", MetricType::Gauge},
    {"alloc.cuda.reserved_peak", MetricType::Gauge},
    {"alloc.cuda.device_allocs", MetricType::Counter},
    {"alloc.cuda.cache_hits", MetricType::Counter},
    {"alloc.cuda.cache_misses", MetricType::Counter},
    {"alloc.cuda.splits", MetricType::Counter},
    {"alloc.cuda.coalesces", MetricType::Counter},
    {"alloc.host.allocs", MetricType::Counter},
    {"trainer.epochs", MetricType::Counter},
    {"trainer.evals", MetricType::Counter},
    {"trainer.early_stops", MetricType::Counter},
    {"trainer.lr_drops", MetricType::Counter},
};

} // namespace

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Registry::Registry()
{
    for (const CoreMetric &m : kCoreMetrics)
        findOrCreate(m.name, m.type);
}

Registry::Slot &
Registry::findOrCreate(const std::string &name, MetricType type)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(name);
    if (it != slots_.end()) {
        if (it->second.type != type) {
            gnnperf_fatal("stats: metric '", name, "' registered as ",
                          metricTypeName(it->second.type),
                          ", requested as ", metricTypeName(type));
        }
        return it->second;
    }
    Slot slot;
    slot.type = type;
    switch (type) {
      case MetricType::Counter:
        slot.counter = std::make_unique<Counter>();
        break;
      case MetricType::Gauge:
        slot.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::Distribution:
        slot.dist = std::make_unique<Distribution>();
        break;
    }
    // Late registrations join mid-run: pad the series so every metric
    // has one entry per rolled epoch.
    slot.series.assign(epochsRolled_, 0.0);
    return slots_.emplace(name, std::move(slot)).first->second;
}

Counter &
Registry::counter(const std::string &name)
{
    return *findOrCreate(name, MetricType::Counter).counter;
}

Gauge &
Registry::gauge(const std::string &name)
{
    return *findOrCreate(name, MetricType::Gauge).gauge;
}

Distribution &
Registry::distribution(const std::string &name)
{
    return *findOrCreate(name, MetricType::Distribution).dist;
}

void
Registry::rollEpoch(const std::string &label)
{
    if (!samplingEnabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    RunEvent event;
    event.label = label;
    event.epoch = static_cast<int64_t>(epochsRolled_);
    for (auto &[name, slot] : slots_) {
        double sample = 0.0;
        switch (slot.type) {
          case MetricType::Counter: {
            const uint64_t now = slot.counter->value();
            sample = static_cast<double>(now - slot.counter->rolled_);
            slot.counter->rolled_ = now;
            break;
          }
          case MetricType::Gauge:
            sample = slot.gauge->value();
            break;
          case MetricType::Distribution: {
            std::lock_guard<std::mutex> dlock(slot.dist->mutex_);
            sample = static_cast<double>(slot.dist->count_ -
                                         slot.dist->rolledCount_);
            slot.dist->rolledCount_ = slot.dist->count_;
            break;
          }
        }
        slot.series.push_back(sample);
        if (sample != 0.0)
            event.deltas.emplace_back(name, sample);
    }
    events_.push_back(std::move(event));
    ++epochsRolled_;
}

std::size_t
Registry::epochsRolled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return epochsRolled_;
}

void
Registry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, slot] : slots_) {
        switch (slot.type) {
          case MetricType::Counter:
            slot.counter->value_.store(0, std::memory_order_relaxed);
            slot.counter->rolled_ = 0;
            break;
          case MetricType::Gauge:
            slot.gauge->value_.store(0.0, std::memory_order_relaxed);
            break;
          case MetricType::Distribution: {
            std::lock_guard<std::mutex> dlock(slot.dist->mutex_);
            slot.dist->count_ = 0;
            slot.dist->min_ = 0.0;
            slot.dist->max_ = 0.0;
            slot.dist->sum_ = 0.0;
            slot.dist->sumSq_ = 0.0;
            slot.dist->buckets_.fill(0);
            slot.dist->rolledCount_ = 0;
            break;
          }
        }
        slot.series.clear();
    }
    events_.clear();
    epochsRolled_ = 0;
}

std::vector<MetricSnapshot>
Registry::snapshotAll() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSnapshot> out;
    out.reserve(slots_.size());
    for (const auto &[name, slot] : slots_) {
        MetricSnapshot snap;
        snap.name = name;
        snap.type = slot.type;
        snap.series = slot.series;
        switch (slot.type) {
          case MetricType::Counter:
            snap.value = static_cast<double>(slot.counter->value());
            break;
          case MetricType::Gauge:
            snap.value = slot.gauge->value();
            break;
          case MetricType::Distribution:
            snap.dist = slot.dist->snapshot();
            snap.value = static_cast<double>(snap.dist.count);
            break;
        }
        out.push_back(std::move(snap));
    }
    return out;
}

std::vector<RunEvent>
Registry::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

} // namespace stats
} // namespace gnnperf
