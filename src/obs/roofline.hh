/**
 * @file
 * Roofline attribution: *why* a run spends its time where it does.
 *
 * The Timeline (device/timeline.hh) prices a trace into elapsed time
 * and GPU utilization — the paper's Fig. 5 numbers. This layer walks
 * the same priced replay (via Timeline's record-visitation hook) and
 * classifies every kernel record against the roofline the cost model
 * priced it with:
 *
 *  - **compute-bound** — flops/peak_flops dominates the kernel's time;
 *  - **bandwidth-bound** — bytes/peak_bandwidth dominates;
 *  - **dispatch/overhead-bound** — the useful work is smaller than the
 *    fixed per-launch cost (kernel ramp + framework dispatch), the
 *    regime behind the paper's small-graph observations.
 *
 * Classified records are aggregated per kernel kind, per layer scope,
 * per phase and per host-op kind, with arithmetic intensity, achieved
 * vs peak rates, and bound-class time shares — so claims like
 * "GatedGCN under DGL is edge-collation-bound" become machine-readable
 * JSON, diffable across runs by obs/diff.hh. This is the
 * operation-level bottleneck attribution of Hosseini et al. and Huang
 * et al. applied to the simulated deployment.
 */

#ifndef GNNPERF_OBS_ROOFLINE_HH
#define GNNPERF_OBS_ROOFLINE_HH

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "device/cost_model.hh"
#include "device/timeline.hh"
#include "device/trace.hh"
#include "obs/hwprof.hh"

namespace gnnperf {

/** Which roofline regime bounds a kernel. */
enum class BoundClass : uint8_t { Compute, Bandwidth, Dispatch };

/** Number of bound classes. */
constexpr int kNumBoundClasses = 3;

/** "compute" / "bandwidth" / "dispatch". */
const char *boundClassName(BoundClass cls);

/** Roofline decomposition of one kernel launch. */
struct KernelBound
{
    BoundClass cls = BoundClass::Dispatch;
    double gpuSeconds = 0.0;      ///< priced on-GPU time
    double computeSeconds = 0.0;  ///< flops / peak flops
    double memorySeconds = 0.0;   ///< bytes / peak bandwidth
    double overheadSeconds = 0.0; ///< fixed on-GPU launch cost
    double dispatchSeconds = 0.0; ///< host-side framework dispatch
    double intensity = 0.0;       ///< flops / bytes (0 when no bytes)
};

/**
 * Classify one kernel record against a cost model. The kernel is
 * dispatch/overhead-bound when its roofline work (max of compute and
 * memory time) is smaller than the fixed per-launch cost; otherwise
 * the larger of compute and memory time picks the class.
 */
KernelBound classifyKernel(const KernelRecord &k, const CostModel &model,
                           double dispatch_overhead);

/**
 * Measured hardware/OS counters attached to a roofline group — the
 * empirical sibling of the modeled classification. Filled from an
 * hwprof snapshot by attachMeasuredCounters; `valid` stays false on
 * hwprof-off runs so exporters can skip the block entirely.
 */
struct MeasuredGroup
{
    bool valid = false;
    /// True when the windows carried real PMU readings (hardware
    /// tier); IPC/miss-rate are meaningless otherwise.
    bool hw = false;
    double windows = 0.0;
    double instructions = 0.0;
    double cycles = 0.0;
    double cacheRefs = 0.0;
    double cacheMisses = 0.0;
    double branchMisses = 0.0;
    double stalledCycles = 0.0;
    double minorFaults = 0.0;
    double majorFaults = 0.0;
    double ctxSwitchesVol = 0.0;
    double ctxSwitchesInvol = 0.0;

    /** Measured instructions per cycle (0 when cycles == 0). */
    double ipc() const;

    /** Measured cache miss rate (0 when no references). */
    double missRate() const;
};

/**
 * Measured-classification thresholds, mirrored into the roofline
 * JSON so `gnnperf_prof check` re-derives verdicts from the file
 * instead of trusting a possibly-drifted constant.
 */
constexpr double kMeasuredBandwidthMissRate = 0.30;
constexpr double kMeasuredDispatchInstrPerWindow = 20e3;

/**
 * Empirical bound class: too few instructions per launch window to
 * amortize anything -> Dispatch; cache miss rate at or above
 * kMeasuredBandwidthMissRate -> Bandwidth; else Compute. Only
 * meaningful when the group is hardware-tier.
 */
BoundClass measuredBound(const MeasuredGroup &m);

/**
 * Modeled-vs-measured agreement verdict: "agree"/"disagree" when the
 * group carries hardware-tier counters, "n/a" otherwise (software
 * tier has no IPC/miss-rate to judge with).
 */
const char *agreementVerdict(BoundClass modeled,
                             const MeasuredGroup &m);

/** Aggregated kernel-side attribution for one grouping key. */
struct RooflineGroup
{
    std::string name;
    std::size_t launches = 0;
    double flops = 0.0;
    double bytes = 0.0;
    double gpuSeconds = 0.0;
    double dispatchSeconds = 0.0;
    /** Elapsed (frontier) seconds attributed to this group. */
    double elapsedSeconds = 0.0;
    /** (GPU + dispatch) seconds per bound class. */
    std::array<double, kNumBoundClasses> boundSeconds{};
    std::array<std::size_t, kNumBoundClasses> boundLaunches{};

    /** Aggregate arithmetic intensity (flops per byte). */
    double intensity() const;

    /** Share of this group's kernel time in the given class, [0,1]. */
    double boundShare(BoundClass cls) const;

    /** Dominant bound class by time (Dispatch when empty). */
    BoundClass dominantBound() const;

    /** Measured counters for this group (valid only with --hwprof). */
    MeasuredGroup measured;
};

/** Aggregated host-op attribution for one HostOpKind. */
struct HostOpGroup
{
    std::string name;
    std::size_t ops = 0;
    double bytes = 0.0;
    double items = 0.0;
    double seconds = 0.0;         ///< priced host execution time
    double elapsedSeconds = 0.0;  ///< frontier seconds attributed
};

/** Full attribution report for one run (e.g. one model × backend). */
struct RooflineReport
{
    std::string label;         ///< e.g. "GatedGCN/DGL"
    std::size_t epochs = 0;    ///< traces merged into this report

    // Device parameters the records were priced with.
    double peakFlopsPerSec = 0.0;
    double peakBytesPerSec = 0.0;
    double dispatchOverhead = 0.0;

    double elapsed = 0.0;      ///< simulated wall-clock seconds
    double gpuBusy = 0.0;
    double hostBusy = 0.0;

    // Host-side effective parallelism: the pool width the run executed
    // with and the speedup the cost model credits that width with
    // (ParallelSpec::speedup). Keeps roofline claims honest about what
    // the host threads can actually deliver.
    int hostThreads = 1;
    double hostParallelSpeedup = 1.0;

    RooflineGroup total;       ///< all kernels together
    std::vector<RooflineGroup> byKernel;  ///< per kernel name
    std::vector<RooflineGroup> byLayer;   ///< per layer scope
    std::vector<RooflineGroup> byPhase;   ///< per training phase
    std::vector<HostOpGroup> byHostOp;    ///< per HostOpKind

    // Measured-counter tier the run executed under (hwprof::Tier
    // values; Off when --hwprof was not given) and the reason the
    // tier was chosen, quoted in reports so a fallback run says so.
    hwprof::Tier hwprofTier = hwprof::Tier::Off;
    std::string hwprofTierReason;

    /** GPU compute utilization (paper Eq. 5). */
    double
    utilization() const
    {
        return elapsed > 0.0 ? gpuBusy / elapsed : 0.0;
    }

    /** Flops-rate intensity where compute == memory time. */
    double
    ridgeIntensity() const
    {
        return peakBytesPerSec > 0.0
                   ? peakFlopsPerSec / peakBytesPerSec : 0.0;
    }

    /** Achieved fraction of the device's peak FLOP rate over elapsed. */
    double achievedFlopsFraction() const;

    /** Achieved fraction of the device's peak bandwidth over elapsed. */
    double achievedBandwidthFraction() const;
};

/**
 * Builds a RooflineReport from one or more traces (typically one per
 * epoch, fed by the trainers' trace observer).
 */
class RooflineAnalyzer
{
  public:
    RooflineAnalyzer(const CostModel &model, double dispatch_overhead,
                     std::string label);

    /** Classify and accumulate one trace (replayed internally). */
    void addTrace(const Trace &trace,
                  const std::vector<std::string> &layer_names);

    /** Number of traces accumulated so far. */
    std::size_t traces() const { return epochs_; }

    /** Finish: name-sorted groups, grand totals. */
    RooflineReport report() const;

  private:
    CostModel model_;
    double dispatch_;
    std::string label_;
    std::size_t epochs_ = 0;
    double elapsed_ = 0.0;
    double gpuBusy_ = 0.0;
    double hostBusy_ = 0.0;
    RooflineGroup total_;
    std::map<std::string, RooflineGroup> byKernel_;
    std::map<std::string, RooflineGroup> byLayer_;
    std::map<int, RooflineGroup> byPhase_;  ///< keyed by phase index
    std::map<int, HostOpGroup> byHostOp_;   ///< keyed by kind index
};

/**
 * One-shot convenience: analyze a single trace.
 */
RooflineReport analyzeRoofline(const Trace &trace, const CostModel &model,
                               double dispatch_overhead,
                               const std::vector<std::string> &layer_names,
                               std::string label);

/**
 * Merge the current hwprof aggregates into a finished report: the
 * by-kernel/layer/phase groups gain Measured counters matched by
 * name, and the report records the tier. No-op (report untouched)
 * when the profiler is off or has seen no windows, so hwprof-off
 * output is byte-identical.
 */
void attachMeasuredCounters(RooflineReport &report);

/** Same, from an explicit snapshot (testable without global state). */
void attachMeasuredCounters(RooflineReport &report,
                            const hwprof::Snapshot &snap);

/**
 * JSON for one report (schema documented in docs/OBSERVABILITY.md).
 * Numeric leaves only, so obs/diff.hh can align any two reports by
 * dotted path.
 */
std::string rooflineReportToJson(const RooflineReport &report);

/** JSON for a suite of reports, keyed by label. */
std::string rooflineSuiteToJson(const std::vector<RooflineReport> &suite);

/**
 * Fig-5-style utilization table: one row per report with utilization,
 * arithmetic intensity, achieved-vs-peak fractions and bound-class
 * time shares.
 */
std::string renderRooflineTable(const std::vector<RooflineReport> &suite);

/** Per-kernel-kind attribution table for one report. */
std::string renderRooflineKernels(const RooflineReport &report);

} // namespace gnnperf

#endif // GNNPERF_OBS_ROOFLINE_HH
