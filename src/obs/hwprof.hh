/**
 * @file
 * Hardware/OS counter profiler: the measured half of the
 * measured-vs-modeled roofline reconciliation.
 *
 * Everything the roofline engine classifies today is derived from the
 * simulated cost model; this layer reads what the machine actually
 * did. Each thread owns a lazily-opened set of perf_event_open
 * counters (cycles, instructions, cache-references/misses,
 * branch-misses, stalled-cycles where the PMU offers them) plus
 * rusage fault/context-switch counters. Deltas are attributed to the
 * kernel launch, phase and layer active when `Profiler::recordKernel`
 * fires, with pool-worker deltas folded in through a lock-free
 * pending accumulator, so the aggregates line up one-to-one with the
 * modeled roofline groups.
 *
 * Tiers, never fatal: when `perf_event_paranoid` (or the platform)
 * denies counters, the profiler demotes itself process-wide and
 * stickily to a software tier — getrusage minor/major faults,
 * voluntary/involuntary context switches, /proc/self/statm RSS — and
 * keeps going. `GNNPERF_HWPROF=sw` (or forceSoftwareTier) selects the
 * software tier explicitly, which is what CI's fallback smoke and the
 * tests use. Off by default: with the gate down every hook is a
 * relaxed load + branch, and no exporter output changes by a byte.
 *
 * This header stays free of Linux headers so src/device/profiler.hh
 * can include it; all syscall plumbing lives in hwprof.cc.
 */

#ifndef GNNPERF_OBS_HWPROF_HH
#define GNNPERF_OBS_HWPROF_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "device/trace.hh"

namespace gnnperf {
namespace hwprof {

/** Which counter source is active. */
enum class Tier : uint8_t {
    Off,       ///< gate down; every hook is a no-op
    Software,  ///< rusage + /proc fallback (or forced via =sw)
    Hardware,  ///< perf_event_open counters (plus the software set)
};

/** Human-readable tier name ("off" / "software" / "hardware"). */
const char *tierName(Tier tier);

/**
 * Counter slots. The first six are hardware PMU events, valid only
 * in the hardware tier; the rest come from getrusage and are filled
 * in both tiers.
 */
enum Counter : int {
    kCycles = 0,
    kInstructions,
    kCacheRefs,
    kCacheMisses,
    kBranchMisses,
    kStalledCycles,
    kMinorFaults,
    kMajorFaults,
    kCtxSwitchesVol,
    kCtxSwitchesInvol,
    kNumCounters,
};

/** First software (rusage) counter slot. */
constexpr int kFirstSoftwareCounter = kMinorFaults;

/** Stable short name for a counter slot, e.g. "cache_misses". */
const char *counterName(int counter);

/** One point-in-time reading of every counter on one thread. */
struct Sample {
    std::array<uint64_t, kNumCounters> v{};
    /// True when the hardware slots hold real PMU readings.
    bool hwValid = false;
};

/** Accumulated counter deltas for one attribution group. */
struct Agg {
    std::array<uint64_t, kNumCounters> sum{};
    /// Attribution windows folded in (kernel launches for kernel
    /// groups; kernels + residual flushes for phases and the total).
    uint64_t windows = 0;
    /// True when at least one window carried hardware readings.
    bool hwValid = false;

    void add(const Sample &delta);
    void merge(const Agg &other);
    /// Instructions per cycle; 0 when cycles were not measured.
    double ipc() const;
    /// cache_misses / cache_references; 0 when refs were 0.
    double missRate() const;
};

/** Timestamped cumulative totals, feeding the pid-4 trace tracks. */
struct TimedSample {
    double tsUs = 0;  ///< SpanTracer::nowUs() timestamp
    std::array<uint64_t, kNumCounters> total{};
    std::size_t rssBytes = 0;
};

/** Copy of all aggregates, safe to read without the profiler lock. */
struct Snapshot {
    Tier tier = Tier::Off;
    std::string tierReason;
    Agg total;
    std::vector<std::pair<std::string, Agg>> byKernel;
    std::vector<std::pair<std::string, Agg>> byLayer;
    std::array<Agg, kNumPhases> byPhase{};
    std::vector<TimedSample> series;
    std::size_t seriesDropped = 0;
    std::size_t rssPeakBytes = 0;
};

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** True when the profiler gate is up. Relaxed; hot-path safe. */
inline bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Raise/lower the gate. Raising probes counters lazily per thread;
 * a denied probe demotes the whole process to the software tier
 * (sticky, logged once, never fatal). Lowering keeps aggregates.
 */
void setEnabled(bool on);

/**
 * Skip perf_event_open entirely and run on the software tier. Sticky
 * for the process; used by GNNPERF_HWPROF=sw and the tests.
 */
void forceSoftwareTier();

/**
 * Apply a --hwprof / GNNPERF_HWPROF mode string: "" / "0" / "off"
 * lowers the gate, "sw"/"software" forces the software tier and
 * enables, anything else ("1", "hw", ...) enables with auto tiers.
 */
void configure(const std::string &mode);

/** Current tier (Off until enabled at least once). */
Tier tier();

/** Why the current tier was chosen (e.g. the perf open errno). */
std::string tierReason();

/** Clear aggregates, series and peaks; tier and gate are kept. */
void resetAggregates();

/** Copy out aggregates, series and tier state. */
Snapshot snapshot();

/**
 * Attribute the delta since this thread's last cursor to `kernel`
 * under `phase`/`layer`, folding in any pending pool-worker deltas.
 * Called by Profiler::recordKernel on profiled runs. `layer` < 0
 * means "no layer scope".
 */
void onKernelRecord(const char *kernel, Phase phase, int16_t layer,
                    const std::string *layerName);

/**
 * Flush the delta since the cursor to `phase` as a residual (no
 * kernel window) and append a timed sample for the trace tracks.
 * Called at PhaseScope boundaries.
 */
void onPhaseBoundary(Phase phase);

/** Read this thread's counters now (opens counters on first use). */
Sample readThread();

/** Current RSS in bytes from /proc/self/statm (0 if unreadable). */
std::size_t readRssBytes();

/**
 * Pool-worker bracket: sample at work start, then fold the delta
 * into the pending accumulator at work end. The caller slot samples
 * through the normal cursor path instead.
 */
Sample workerBegin();
void workerEnd(const Sample &start);

/** Publish snapshot totals as `hwprof.*` registry gauges. */
void publishStats();

} // namespace hwprof
} // namespace gnnperf

#endif // GNNPERF_OBS_HWPROF_HH
