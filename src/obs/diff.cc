#include "obs/diff.hh"

#include <algorithm>
#include <cmath>

#include "common/buildinfo.hh"
#include "common/string_utils.hh"
#include "common/table.hh"

namespace gnnperf {
namespace diff {

const char *
seriesVerdictName(SeriesVerdict verdict)
{
    switch (verdict) {
      case SeriesVerdict::Unchanged: return "unchanged";
      case SeriesVerdict::Improved: return "improved";
      case SeriesVerdict::Regressed: return "regressed";
      case SeriesVerdict::Added: return "added";
      case SeriesVerdict::Removed: return "removed";
    }
    return "?";
}

std::size_t
RunDiff::regressions() const
{
    return static_cast<std::size_t>(std::count_if(
        series.begin(), series.end(), [](const SeriesDiff &s) {
            return s.verdict == SeriesVerdict::Regressed;
        }));
}

std::size_t
RunDiff::improvements() const
{
    return static_cast<std::size_t>(std::count_if(
        series.begin(), series.end(), [](const SeriesDiff &s) {
            return s.verdict == SeriesVerdict::Improved;
        }));
}

namespace {

void
flattenInto(const JsonValue &v, const std::string &prefix,
            std::map<std::string, double> &out)
{
    switch (v.type) {
      case JsonValue::Type::Number:
        out[prefix] = v.number;
        break;
      case JsonValue::Type::Bool:
        out[prefix] = v.boolean ? 1.0 : 0.0;
        break;
      case JsonValue::Type::Object:
        for (const auto &[key, child] : v.object) {
            flattenInto(child,
                        prefix.empty() ? key : prefix + "." + key,
                        out);
        }
        break;
      case JsonValue::Type::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            flattenInto(v.array[i],
                        strprintf("%s.%zu", prefix.c_str(), i), out);
        }
        break;
      case JsonValue::Type::String:
      case JsonValue::Type::Null:
        break;
    }
}

bool
matchesAny(const std::string &name,
           const std::vector<std::string> &patterns)
{
    for (const auto &p : patterns) {
        if (name.find(p) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

std::map<std::string, double>
flattenNumeric(const JsonValue &doc)
{
    std::map<std::string, double> out;
    flattenInto(doc, "", out);
    return out;
}

RunDiff
compareRuns(const JsonValue &baseline, const JsonValue &current,
            const DiffOptions &opts)
{
    const auto a = flattenNumeric(baseline);
    const auto b = flattenNumeric(current);

    auto tracked = [&](const std::string &name) {
        if (!opts.only.empty() && !matchesAny(name, opts.only))
            return false;
        return !matchesAny(name, opts.ignore);
    };

    RunDiff diff;
    for (const auto &[name, before] : a) {
        if (!tracked(name))
            continue;
        SeriesDiff s;
        s.name = name;
        s.before = before;
        auto it = b.find(name);
        if (it == b.end()) {
            s.verdict = SeriesVerdict::Removed;
            diff.series.push_back(std::move(s));
            continue;
        }
        s.after = it->second;
        ++diff.compared;
        if (std::max(std::fabs(s.before), std::fabs(s.after)) <
            opts.noiseFloor) {
            s.verdict = SeriesVerdict::Unchanged;
            diff.series.push_back(std::move(s));
            continue;
        }
        const double denom =
            std::max(std::fabs(s.before), opts.noiseFloor);
        s.relChange = (s.after - s.before) / denom;
        const bool higher_better =
            matchesAny(name, opts.higherIsBetter);
        const double harmful =
            higher_better ? -s.relChange : s.relChange;
        if (harmful > opts.relThreshold)
            s.verdict = SeriesVerdict::Regressed;
        else if (-harmful > opts.relThreshold)
            s.verdict = SeriesVerdict::Improved;
        else
            s.verdict = SeriesVerdict::Unchanged;
        diff.series.push_back(std::move(s));
    }
    for (const auto &[name, after] : b) {
        if (!tracked(name) || a.count(name))
            continue;
        SeriesDiff s;
        s.name = name;
        s.after = after;
        s.verdict = SeriesVerdict::Added;
        diff.series.push_back(std::move(s));
    }
    return diff;
}

std::string
renderRunDiff(const RunDiff &diff, bool all)
{
    TextTable table;
    table.setHeader({"Series", ">Baseline", ">Current", ">Change%",
                     "Verdict"});
    std::size_t listed = 0;
    for (const auto &s : diff.series) {
        if (!all && s.verdict == SeriesVerdict::Unchanged)
            continue;
        ++listed;
        const bool aligned = s.verdict != SeriesVerdict::Added &&
                             s.verdict != SeriesVerdict::Removed;
        table.addRow({s.name, strprintf("%.6g", s.before),
                      strprintf("%.6g", s.after),
                      aligned ? strprintf("%+.1f", s.relChange * 100.0)
                              : std::string("-"),
                      seriesVerdictName(s.verdict)});
    }
    std::string out;
    if (listed > 0)
        out += table.render();
    out += strprintf("%zu series compared, %zu regressed, "
                     "%zu improved\n",
                     diff.compared, diff.regressions(),
                     diff.improvements());
    return out;
}

std::string
baselineToJson(const std::string &bench_name,
               const std::vector<std::pair<std::string, double>> &series)
{
    std::string out = strprintf("{\n  \"version\": 1,\n"
                                "  \"meta\": %s,\n"
                                "  \"bench\": \"%s\",\n"
                                "  \"series\": {",
                                buildinfo::metaJson().c_str(),
                                jsonEscape(bench_name).c_str());
    bool first = true;
    for (const auto &[name, value] : series) {
        out += first ? "\n" : ",\n";
        first = false;
        std::string v;
        if (!std::isfinite(value))
            v = "0";
        else if (value == std::floor(value) &&
                 std::fabs(value) < 9.007199254740992e15)
            v = strprintf("%.0f", value);
        else
            v = strprintf("%.9g", value);
        out += strprintf("    \"%s\": %s", jsonEscape(name).c_str(),
                         v.c_str());
    }
    out += "\n  }\n}\n";
    return out;
}

} // namespace diff
} // namespace gnnperf
