/**
 * @file
 * Process-wide metrics registry in the gem5 Stats style.
 *
 * The Profiler (device/profiler.hh) records an *event-level* trace;
 * this registry is the *aggregate* layer on top of it: named Counters,
 * Gauges and Distributions registered lazily by dotted name
 * ("dataloader.batches", "backend.dgl.dispatch_ops", ...), plus a
 * per-epoch time series and a structured run-event log rolled by the
 * trainers. Exporters live in obs/stats_export.hh.
 *
 * Cost discipline: sampling is off by default and every mutation
 * starts with a relaxed load of the global sampling flag — a branch
 * and a return when off. When on, Counter/Gauge mutations are single
 * relaxed atomic operations (no locks on the hot path); Distribution
 * sampling and registration take a registry-level mutex and are
 * expected on cold(er) paths only.
 *
 * Instrumentation sites cache the metric reference in a function-local
 * static so the name lookup happens once:
 *
 *     static stats::Counter &batches =
 *         stats::counter("dataloader.batches");
 *     batches.inc();
 */

#ifndef GNNPERF_OBS_STATS_HH
#define GNNPERF_OBS_STATS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gnnperf {
namespace stats {

/** Global sampling switch; off by default. */
extern std::atomic<bool> g_samplingEnabled;

/** Whether metric mutations are recorded (relaxed load, hot path). */
inline bool
samplingEnabled()
{
    return g_samplingEnabled.load(std::memory_order_relaxed);
}

/** Turn sampling on/off process-wide. */
void setSamplingEnabled(bool on);

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        if (!samplingEnabled())
            return;
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<uint64_t> value_{0};
    uint64_t rolled_ = 0;  ///< cumulative value at the last epoch roll
};

/** Last-write-wins level (peak bytes, learning rate, ...). */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (!samplingEnabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<double> value_{0.0};
};

/**
 * Sample statistics: min/max/mean/stddev plus fixed log2 buckets.
 * Bucket 0 holds samples < 1 (including non-positive values); bucket
 * i >= 1 holds samples in [2^(i-1), 2^i); the last bucket absorbs the
 * overflow tail.
 */
class Distribution
{
  public:
    static constexpr int kNumBuckets = 33;

    struct Snapshot
    {
        uint64_t count = 0;
        double min = 0.0;
        double max = 0.0;
        double mean = 0.0;
        double stddev = 0.0;
        std::array<uint64_t, kNumBuckets> buckets{};
    };

    void sample(double v);
    Snapshot snapshot() const;

    /** log2 bucket index for a sample value. */
    static int bucketIndex(double v);

  private:
    friend class Registry;
    mutable std::mutex mutex_;
    uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    std::array<uint64_t, kNumBuckets> buckets_{};
    uint64_t rolledCount_ = 0;
};

/** What a registered name refers to. */
enum class MetricType { Counter, Gauge, Distribution };

/** "counter" / "gauge" / "distribution". */
const char *metricTypeName(MetricType type);

/**
 * One structured run event (normally one per epoch): the event label,
 * the 0-based epoch index, and the metric deltas attached at roll
 * time — counter/distribution-count deltas since the previous event
 * plus current gauge levels, non-zero entries only.
 */
struct RunEvent
{
    std::string label;
    int64_t epoch = 0;
    std::vector<std::pair<std::string, double>> deltas;
};

/** Read-only view of one metric for exporters. */
struct MetricSnapshot
{
    std::string name;
    MetricType type = MetricType::Counter;
    double value = 0.0;          ///< counter/dist count or gauge level
    Distribution::Snapshot dist; ///< populated for distributions
    std::vector<double> series;  ///< one entry per rolled epoch
};

/**
 * The process-wide metric registry. Lookups are find-or-create under
 * a mutex; returned references stay valid for the process lifetime.
 * Re-registering a name with a different type is a fatal error.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Distribution &distribution(const std::string &name);

    /**
     * Close the current epoch: append every metric's per-epoch sample
     * to its series (counter/distribution deltas, gauge levels) and
     * log a RunEvent carrying the non-zero deltas. No-op while
     * sampling is off.
     */
    void rollEpoch(const std::string &label = "epoch");

    /** Number of epochs rolled since the last reset. */
    std::size_t epochsRolled() const;

    /**
     * Zero every metric and drop series + events. Registrations (and
     * the addresses instrumentation sites cached) are kept.
     */
    void resetValues();

    /** Stable-order (name-sorted) snapshot of every metric. */
    std::vector<MetricSnapshot> snapshotAll() const;

    /** Copy of the run-event log. */
    std::vector<RunEvent> events() const;

  private:
    Registry();

    struct Slot
    {
        MetricType type;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Distribution> dist;
        std::vector<double> series;
    };

    Slot &findOrCreate(const std::string &name, MetricType type);

    mutable std::mutex mutex_;
    std::map<std::string, Slot> slots_;
    std::vector<RunEvent> events_;
    std::size_t epochsRolled_ = 0;
};

/** Find-or-create conveniences on the process-wide registry. */
inline Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

inline Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

inline Distribution &
distribution(const std::string &name)
{
    return Registry::instance().distribution(name);
}

} // namespace stats
} // namespace gnnperf

#endif // GNNPERF_OBS_STATS_HH
