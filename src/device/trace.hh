/**
 * @file
 * Execution trace records.
 *
 * gnnperf runs every workload for real (real floating point math, real
 * data movement) on the host CPU, and *additionally* emits a trace of
 * the operations a GPU deployment would execute: GPU kernels (with their
 * real FLOP and byte counts) and host-side framework operations (graph
 * collation, metadata construction, Python-level dispatch). The trace is
 * replayed against a calibrated cost model (see cost_model.hh) by the
 * Timeline (see timeline.hh) to obtain deterministic simulated times,
 * phase breakdowns and GPU utilization — this substitutes for the
 * paper's nvprof/Nsight measurements on a real 2080Ti.
 */

#ifndef GNNPERF_DEVICE_TRACE_HH
#define GNNPERF_DEVICE_TRACE_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace gnnperf {

/** Training-loop phase a trace record belongs to (paper Fig. 1/2). */
enum class Phase : uint8_t {
    DataLoading,  ///< batch collation + host→device transfer
    Forward,      ///< forward propagation
    Backward,     ///< backward propagation
    Update,       ///< optimizer parameter update
    Evaluation,   ///< validation / test passes
    Other,        ///< everything else (loss bookkeeping, logging, ...)
};

/** Number of distinct phases. */
constexpr int kNumPhases = 6;

/** Human-readable phase name. */
const char *phaseName(Phase phase);

/** Kind of host-side (CPU) operation, with distinct cost rates. */
enum class HostOpKind : uint8_t {
    Memcpy,         ///< contiguous bulk copy (PyTorch-backed tensor op)
    IndexedGather,  ///< per-element indexed copy (generic, slow path)
    MetaBuild,      ///< graph/type metadata construction (per item)
    H2DTransfer,    ///< host→device PCIe transfer
    Dispatch,       ///< framework-level op dispatch overhead
};

/** Number of distinct host-op kinds. */
constexpr int kNumHostOpKinds = 5;

/** Human-readable host-op kind name ("memcpy", "indexed_gather", …). */
const char *hostOpKindName(HostOpKind kind);

/** A GPU kernel launch observed during real execution. */
struct KernelRecord
{
    const char *name;    ///< static kernel name (e.g. "sgemm")
    double flops;        ///< floating point operations performed
    double bytes;        ///< bytes read + written by the kernel
    Phase phase;         ///< phase active when the kernel was launched
    int16_t layer;       ///< layer-scope id, -1 when outside any layer
};

/** A host-side operation observed during real execution. */
struct HostRecord
{
    const char *name;    ///< static op name (e.g. "collate.copy_feat")
    HostOpKind kind;     ///< which cost rate applies
    double bytes;        ///< bytes touched
    double items;        ///< item count (per-item overheads, e.g. graphs)
    Phase phase;         ///< phase active when the op ran
    int16_t layer;       ///< layer-scope id, -1 when outside any layer
};

/**
 * Ordered trace entry. Kernel and host payloads share storage: both
 * records are trivially copyable, so the tagged union halves the
 * per-entry footprint (and memcpy traffic on vector growth) relative
 * to embedding both records side by side.
 */
struct TraceEntry
{
    bool isKernel;
    union {
        KernelRecord kernel;  ///< valid when isKernel
        HostRecord host;      ///< valid when !isKernel
    };

    explicit TraceEntry(const KernelRecord &k)
        : isKernel(true), kernel(k)
    {}

    explicit TraceEntry(const HostRecord &h)
        : isKernel(false), host(h)
    {}
};

static_assert(std::is_trivially_copyable_v<TraceEntry>,
              "TraceEntry must stay memcpy-able");
static_assert(sizeof(TraceEntry) <=
                  sizeof(KernelRecord) + sizeof(HostRecord),
              "TraceEntry must not store both payloads");

/** An append-only execution trace. */
class Trace
{
  public:
    /**
     * Initial entry capacity. A profiled epoch emits hundreds to
     * thousands of records; reserving up front keeps the enabled
     * profiler from paying the early vector doublings every epoch
     * (clear() preserves capacity between epochs).
     */
    static constexpr std::size_t kInitialCapacity = 1024;

    Trace() { entries_.reserve(kInitialCapacity); }

    void
    addKernel(const KernelRecord &k)
    {
        entries_.emplace_back(k);
    }

    void
    addHost(const HostRecord &h)
    {
        entries_.emplace_back(h);
    }

    const std::vector<TraceEntry> &entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }

    /** Total kernel launches in the trace. */
    std::size_t kernelCount() const;

    /** Sum of kernel FLOPs / bytes over the trace. */
    double totalFlops() const;
    double totalKernelBytes() const;

  private:
    std::vector<TraceEntry> entries_;
};

} // namespace gnnperf

#endif // GNNPERF_DEVICE_TRACE_HH
