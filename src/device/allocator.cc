#include "device/allocator.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "obs/memtrace.hh"

namespace gnnperf {

// --- DirectAllocator ---------------------------------------------------

MemoryBlock *
DirectAllocator::allocate(std::size_t bytes)
{
    // Like the historical Storage: always hand out a usable pointer,
    // even for zero-element tensors, but account the requested size.
    const std::size_t capacity = std::max(bytes, sizeof(float));
    auto *block = new MemoryBlock;
    block->ptr = new char[capacity]();
    block->size = capacity;
    block->requested = bytes;
    block->owner = this;
    block->segmentHead = true;
    DeviceManager &dm = DeviceManager::instance();
    dm.notifyReserve(device_, capacity);
    dm.notifyAlloc(device_, bytes);
    MemTracer::instance().onAlloc(device_, block);
    return block;
}

void
DirectAllocator::release(MemoryBlock *block)
{
    gnnperf_assert(block != nullptr && block->owner == this,
                   "releasing a block to the wrong allocator");
    DeviceManager &dm = DeviceManager::instance();
    dm.notifyFree(device_, block->requested);
    dm.notifyUnreserve(device_, block->size);
    MemTracer::instance().onFree(device_, block);
    delete[] block->ptr;
    delete block;
}

// --- CachingAllocator --------------------------------------------------

CachingAllocator::~CachingAllocator()
{
    // The DeviceManager (and with it this allocator) is intentionally
    // leaked, so this runs only in ad-hoc standalone use. Free the
    // fully coalesced segments; nodes of segments that still hold live
    // blocks must stay intact for those blocks' eventual release.
    std::vector<MemoryBlock *> whole;
    for (MemoryBlock *b : free_)
        if (b->segmentHead && b->prev == nullptr && b->next == nullptr)
            whole.push_back(b);
    for (MemoryBlock *b : whole) {
        free_.erase(b);
        delete[] b->ptr;
        delete b;
    }
}

std::size_t
CachingAllocator::roundUp(std::size_t bytes)
{
    const std::size_t n = std::max<std::size_t>(bytes, 1);
    return (n + kQuantum - 1) / kQuantum * kQuantum;
}

MemoryBlock *
CachingAllocator::allocate(std::size_t bytes)
{
    const std::size_t rounded = roundUp(bytes);
    DeviceManager &dm = DeviceManager::instance();

    MemoryBlock key;
    key.size = rounded;
    auto it = free_.lower_bound(&key); // best fit: smallest size >= rounded
    MemoryBlock *block = nullptr;
    if (it != free_.end()) {
        block = *it;
        free_.erase(it);
        dm.notifyCacheHit(device_);
        if (block->size >= rounded + kQuantum) {
            // Split: keep `rounded` bytes, return the tail to the pool.
            auto *rest = new MemoryBlock;
            rest->ptr = block->ptr + rounded;
            rest->size = block->size - rounded;
            rest->owner = this;
            rest->prev = block;
            rest->next = block->next;
            rest->isFree = true;
            rest->lastUseGen = gen_;
            if (block->next != nullptr)
                block->next->prev = rest;
            block->next = rest;
            block->size = rounded;
            free_.insert(rest);
            dm.notifySplit(device_);
            MemTracer::instance().onSplit(device_, rest->size);
        }
    } else {
        // Pool miss: reserve a fresh segment from the system.
        dm.notifyCacheMiss(device_);
        block = new MemoryBlock;
        block->ptr = new char[rounded]();
        block->size = rounded;
        block->owner = this;
        block->segmentHead = true;
        dm.notifyReserve(device_, rounded);
    }
    block->isFree = false;
    block->requested = bytes;
    block->lastUseGen = gen_;
    dm.notifyAlloc(device_, bytes);
    MemTracer::instance().onAlloc(device_, block);
    return block;
}

void
CachingAllocator::mergeWithNext(MemoryBlock *b)
{
    MemoryBlock *n = b->next;
    b->size += n->size;
    b->next = n->next;
    if (n->next != nullptr)
        n->next->prev = b;
    delete n;
}

void
CachingAllocator::release(MemoryBlock *block)
{
    gnnperf_assert(block != nullptr && block->owner == this,
                   "releasing a block to the wrong allocator");
    gnnperf_assert(!block->isFree, "double free of a cached block");
    DeviceManager &dm = DeviceManager::instance();
    dm.notifyFree(device_, block->requested);
    MemTracer::instance().onFree(device_, block);
    block->requested = 0;
    block->isFree = true;

    // Coalesce with free address-neighbours inside the segment.
    if (block->next != nullptr && block->next->isFree) {
        const std::size_t absorbed = block->next->size;
        free_.erase(block->next);
        mergeWithNext(block);
        dm.notifyCoalesce(device_);
        MemTracer::instance().onCoalesce(device_, absorbed);
    }
    if (block->prev != nullptr && block->prev->isFree) {
        MemoryBlock *prev = block->prev;
        const std::size_t absorbed = block->size;
        free_.erase(prev);
        mergeWithNext(prev);
        dm.notifyCoalesce(device_);
        MemTracer::instance().onCoalesce(device_, absorbed);
        block = prev;
    }
    block->lastUseGen = gen_;
    free_.insert(block);
}

std::size_t
CachingAllocator::releaseSegments(bool only_stale)
{
    DeviceManager &dm = DeviceManager::instance();
    std::vector<MemoryBlock *> victims;
    for (MemoryBlock *b : free_) {
        // A fully coalesced free segment is a lone chain node that
        // owns its backing array.
        if (!(b->segmentHead && b->prev == nullptr && b->next == nullptr))
            continue;
        if (only_stale && b->lastUseGen >= gen_)
            continue;
        victims.push_back(b);
    }
    std::size_t freed = 0;
    for (MemoryBlock *b : victims) {
        free_.erase(b);
        dm.notifyUnreserve(device_, b->size);
        freed += b->size;
        delete[] b->ptr;
        delete b;
    }
    return freed;
}

void
CachingAllocator::emptyCache()
{
    const std::size_t freed = releaseSegments(/*only_stale=*/false);
    MemTracer::instance().onCacheRelease(device_,
                                         MemEventKind::EmptyCache,
                                         freed);
}

void
CachingAllocator::trim()
{
    // A block survives the first trim after its last use and is
    // dropped by the next one — i.e. cached memory unused for a full
    // epoch goes back to the system.
    const std::size_t freed = releaseSegments(/*only_stale=*/true);
    ++gen_;
    MemTracer::instance().onCacheRelease(device_, MemEventKind::Trim,
                                         freed);
}

std::size_t
CachingAllocator::cachedBytes() const
{
    std::size_t total = 0;
    for (const MemoryBlock *b : free_)
        total += b->size;
    return total;
}

} // namespace gnnperf
