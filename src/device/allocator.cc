#include "device/allocator.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/checks.hh"
#include "common/logging.hh"
#include "obs/memtrace.hh"

namespace gnnperf {

// --- Guard layer (checked builds) --------------------------------------

namespace {

/** First offset in [p, p + n) whose byte differs from `expect`. */
const char *
findTornByte(const char *p, std::size_t n, unsigned char expect)
{
    for (std::size_t i = 0; i < n; ++i)
        if (static_cast<unsigned char>(p[i]) != expect)
            return p + i;
    return nullptr;
}

/**
 * Usable bytes of a live block: every block promises at least one
 * float even for zero-byte requests (the historical Storage
 * contract), so the tail redzone starts past that floor.
 */
std::size_t
usableBytes(const MemoryBlock *block)
{
    return std::max(block->requested, sizeof(float));
}

} // namespace

void
Allocator::armGuards(MemoryBlock *block)
{
    if (block->guard == 0)
        return;
    // Front redzone, then everything between the usable bytes and
    // the backing capacity (tail redzone + rounding slack).
    std::memset(block->ptr, kCanaryByte, block->guard);
    char *tail = block->ptr + block->guard + usableBytes(block);
    std::memset(tail, kCanaryByte,
                static_cast<std::size_t>(block->ptr + block->size -
                                         tail));
}

void
Allocator::verifyGuards(const MemoryBlock *block, const char *where)
{
    if (block->guard == 0)
        return;
    if (const char *torn =
            findTornByte(block->ptr, block->guard, kCanaryByte)) {
        guardViolation(block, "redzone underrun (write before the "
                              "tensor start)",
                       where,
                       static_cast<std::size_t>(torn - block->ptr));
    }
    const char *tail = block->ptr + block->guard + usableBytes(block);
    const std::size_t tail_len =
        static_cast<std::size_t>(block->ptr + block->size - tail);
    if (const char *torn = findTornByte(tail, tail_len, kCanaryByte)) {
        guardViolation(block, "redzone overrun (write past the tensor "
                              "end)",
                       where,
                       static_cast<std::size_t>(torn - block->ptr));
    }
}

void
Allocator::poison(MemoryBlock *block)
{
    std::memset(block->ptr, kPoisonByte, block->size);
    block->poisoned = true;
}

void
Allocator::verifyPoison(const MemoryBlock *block, const char *where)
{
    if (!block->poisoned)
        return;
    if (const char *torn =
            findTornByte(block->ptr, block->size, kPoisonByte)) {
        guardViolation(block, "poison torn (use-after-free write into "
                              "cached memory)",
                       where,
                       static_cast<std::size_t>(torn - block->ptr));
    }
}

void
Allocator::guardViolation(const MemoryBlock *block, const char *what,
                          const char *where, std::size_t offset)
{
    MemTracer::instance().onGuardViolation(device_, block, offset);
    gnnperf_panic("allocator guard: ", what, " detected on ", where,
                  " (device ", deviceName(device_), ", block #",
                  block->traceId, ", capacity ", block->size,
                  " bytes, requested ", block->requested,
                  ", torn byte at offset ", offset, ")");
}

// --- DirectAllocator ---------------------------------------------------

MemoryBlock *
DirectAllocator::allocate(std::size_t bytes)
{
    // Like the historical Storage: always hand out a usable pointer,
    // even for zero-element tensors, but account the requested size.
    const std::size_t guard = checksEnabled() ? kRedzone : 0;
    const std::size_t capacity =
        std::max(bytes, sizeof(float)) + 2 * guard;
    auto *block = new MemoryBlock;
    block->ptr = new char[capacity]();
    block->size = capacity;
    block->requested = bytes;
    block->guard = guard;
    block->owner = this;
    block->segmentHead = true;
    armGuards(block);
    DeviceManager &dm = DeviceManager::instance();
    dm.notifyReserve(device_, capacity);
    dm.notifyAlloc(device_, bytes);
    MemTracer::instance().onAlloc(device_, block);
    return block;
}

void
DirectAllocator::release(MemoryBlock *block)
{
    gnnperf_assert(block != nullptr && block->owner == this,
                   "releasing a block to the wrong allocator");
    verifyGuards(block, "release");
    DeviceManager &dm = DeviceManager::instance();
    dm.notifyFree(device_, block->requested);
    dm.notifyUnreserve(device_, block->size);
    MemTracer::instance().onFree(device_, block);
    // Poison before the backing free so a dangling reader sees
    // obviously-dead bytes even in the window before the heap reuses
    // the pages.
    if (block->guard != 0)
        poison(block);
    delete[] block->ptr;
    delete block;
}

// --- CachingAllocator --------------------------------------------------

CachingAllocator::~CachingAllocator()
{
    // The DeviceManager (and with it this allocator) is intentionally
    // leaked, so this runs only in ad-hoc standalone use. Free the
    // fully coalesced segments; nodes of segments that still hold live
    // blocks must stay intact for those blocks' eventual release.
    std::vector<MemoryBlock *> whole;
    for (MemoryBlock *b : free_)
        if (b->segmentHead && b->prev == nullptr && b->next == nullptr)
            whole.push_back(b);
    for (MemoryBlock *b : whole) {
        free_.erase(b);
        delete[] b->ptr;
        delete b;
    }
}

std::size_t
CachingAllocator::roundUp(std::size_t bytes)
{
    const std::size_t n = std::max<std::size_t>(bytes, 1);
    return (n + kQuantum - 1) / kQuantum * kQuantum;
}

MemoryBlock *
CachingAllocator::allocate(std::size_t bytes)
{
    // Guarded allocations carry their redzones inside the rounded
    // capacity, so split/coalesce arithmetic is untouched; logical
    // accounting stays `bytes`, reserved accounting grows by the
    // redzones (checked builds only).
    const std::size_t guard = checksEnabled() ? kRedzone : 0;
    const std::size_t rounded = roundUp(bytes + 2 * guard);
    DeviceManager &dm = DeviceManager::instance();

    MemoryBlock key;
    key.size = rounded;
    auto it = free_.lower_bound(&key); // best fit: smallest size >= rounded
    MemoryBlock *block = nullptr;
    if (it != free_.end()) {
        block = *it;
        free_.erase(it);
        dm.notifyCacheHit(device_);
        // The whole cached block was poison-filled when it was
        // released; a torn byte means a stale pointer wrote into the
        // pool while the block sat in the free list.
        verifyPoison(block, "reuse");
        if (block->size >= rounded + kQuantum) {
            // Split: keep `rounded` bytes, return the tail to the pool.
            auto *rest = new MemoryBlock;
            rest->ptr = block->ptr + rounded;
            rest->size = block->size - rounded;
            rest->owner = this;
            rest->prev = block;
            rest->next = block->next;
            rest->isFree = true;
            rest->poisoned = block->poisoned;
            rest->lastUseGen = gen_;
            if (block->next != nullptr)
                block->next->prev = rest;
            block->next = rest;
            block->size = rounded;
            free_.insert(rest);
            dm.notifySplit(device_);
            MemTracer::instance().onSplit(device_, rest->size);
        }
        if (block->poisoned) {
            // Un-poison like a fresh segment: zero the capacity so
            // checked runs see the same deterministic contents a pool
            // miss would hand out.
            std::memset(block->ptr, 0, block->size);
            block->poisoned = false;
        }
    } else {
        // Pool miss: reserve a fresh segment from the system.
        dm.notifyCacheMiss(device_);
        block = new MemoryBlock;
        block->ptr = new char[rounded]();
        block->size = rounded;
        block->owner = this;
        block->segmentHead = true;
        dm.notifyReserve(device_, rounded);
    }
    block->isFree = false;
    block->requested = bytes;
    block->guard = guard;
    block->lastUseGen = gen_;
    armGuards(block);
    dm.notifyAlloc(device_, bytes);
    MemTracer::instance().onAlloc(device_, block);
    return block;
}

void
CachingAllocator::mergeWithNext(MemoryBlock *b)
{
    MemoryBlock *n = b->next;
    b->size += n->size;
    b->next = n->next;
    if (n->next != nullptr)
        n->next->prev = b;
    delete n;
}

void
CachingAllocator::release(MemoryBlock *block)
{
    gnnperf_assert(block != nullptr && block->owner == this,
                   "releasing a block to the wrong allocator");
    gnnperf_assert(!block->isFree, "double free of a cached block");
    verifyGuards(block, "release");
    DeviceManager &dm = DeviceManager::instance();
    dm.notifyFree(device_, block->requested);
    MemTracer::instance().onFree(device_, block);
    block->requested = 0;
    block->isFree = true;
    if (block->guard != 0) {
        block->guard = 0;
        poison(block);
    }

    // Coalesce with free address-neighbours inside the segment. A
    // merged block stays poison-checkable only if both halves were
    // poisoned (a half cached before checks were on never was).
    if (block->next != nullptr && block->next->isFree) {
        const std::size_t absorbed = block->next->size;
        const bool both = block->poisoned && block->next->poisoned;
        free_.erase(block->next);
        mergeWithNext(block);
        block->poisoned = both;
        dm.notifyCoalesce(device_);
        MemTracer::instance().onCoalesce(device_, absorbed);
    }
    if (block->prev != nullptr && block->prev->isFree) {
        MemoryBlock *prev = block->prev;
        const std::size_t absorbed = block->size;
        const bool both = prev->poisoned && block->poisoned;
        free_.erase(prev);
        mergeWithNext(prev);
        prev->poisoned = both;
        dm.notifyCoalesce(device_);
        MemTracer::instance().onCoalesce(device_, absorbed);
        block = prev;
    }
    block->lastUseGen = gen_;
    free_.insert(block);
}

std::size_t
CachingAllocator::releaseSegments(bool only_stale)
{
    DeviceManager &dm = DeviceManager::instance();
    std::vector<MemoryBlock *> victims;
    for (MemoryBlock *b : free_) {
        // A fully coalesced free segment is a lone chain node that
        // owns its backing array.
        if (!(b->segmentHead && b->prev == nullptr && b->next == nullptr))
            continue;
        if (only_stale && b->lastUseGen >= gen_)
            continue;
        victims.push_back(b);
    }
    std::size_t freed = 0;
    for (MemoryBlock *b : victims) {
        // Last chance to catch a dangling write before the segment's
        // backing memory goes back to the system.
        verifyPoison(b, only_stale ? "trim" : "emptyCache");
        free_.erase(b);
        dm.notifyUnreserve(device_, b->size);
        freed += b->size;
        delete[] b->ptr;
        delete b;
    }
    return freed;
}

std::size_t
CachingAllocator::checkGuards()
{
    std::size_t checked = 0;
    for (const MemoryBlock *b : free_) {
        if (!b->poisoned)
            continue;
        verifyPoison(b, "checkGuards");
        ++checked;
    }
    return checked;
}

void
CachingAllocator::emptyCache()
{
    const std::size_t freed = releaseSegments(/*only_stale=*/false);
    MemTracer::instance().onCacheRelease(device_,
                                         MemEventKind::EmptyCache,
                                         freed);
}

void
CachingAllocator::trim()
{
    // A block survives the first trim after its last use and is
    // dropped by the next one — i.e. cached memory unused for a full
    // epoch goes back to the system.
    const std::size_t freed = releaseSegments(/*only_stale=*/true);
    ++gen_;
    MemTracer::instance().onCacheRelease(device_, MemEventKind::Trim,
                                         freed);
}

std::size_t
CachingAllocator::cachedBytes() const
{
    std::size_t total = 0;
    for (const MemoryBlock *b : free_)
        total += b->size;
    return total;
}

} // namespace gnnperf
