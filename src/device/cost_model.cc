#include "device/cost_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gnnperf {

double
ParallelSpec::speedup(int threads) const
{
    if (threads <= 1)
        return 1.0;
    const double n = static_cast<double>(threads);
    // Amdahl's law with a per-thread efficiency derate on the parallel
    // portion, capped at the thread count itself.
    const double s =
        1.0 / (serialFraction + (1.0 - serialFraction) / (n * efficiency));
    return std::min(s, n);
}

double
CostModel::kernelTime(const KernelRecord &k) const
{
    double compute = k.flops / gpu.flopsPerSec;
    double memory = k.bytes / gpu.bytesPerSec;
    return gpu.kernelOverhead + std::max(compute, memory);
}

double
CostModel::hostTime(const HostRecord &h) const
{
    double t = host.hostOpBase;
    switch (h.kind) {
      case HostOpKind::Memcpy:
        t += h.bytes / host.memcpyBytesPerSec;
        break;
      case HostOpKind::IndexedGather:
        t += h.bytes / host.gatherBytesPerSec;
        break;
      case HostOpKind::MetaBuild:
        t += h.items * host.metaItemCost +
             h.bytes / host.metaBytesPerSec;
        break;
      case HostOpKind::H2DTransfer:
        t += host.h2dLatency + h.bytes / gpu.h2dBytesPerSec;
        break;
      case HostOpKind::Dispatch:
        t += h.items * host.dispatchItemCost;
        break;
    }
    return t;
}

const CostModel &
CostModel::defaultModel()
{
    static const CostModel model{};
    return model;
}

} // namespace gnnperf
