/**
 * @file
 * Trace replay: converts an execution trace into simulated times.
 *
 * The model is a single host thread feeding one GPU stream:
 *
 *  - a host record advances the host cursor by its priced duration;
 *  - a kernel record first advances the host cursor by the framework's
 *    per-op dispatch overhead (asynchronous launch), then the kernel
 *    executes on the GPU starting at max(host cursor, GPU free time).
 *
 * Elapsed time is the frontier max(host cursor, GPU free time) at the
 * end of the trace — i.e. there is an implicit device synchronisation
 * at the end (as PyTorch does when the loss value is read). This gives
 * the classic behaviour that dispatch-bound workloads hide kernel time
 * behind host overhead, while kernel-bound workloads run ahead of the
 * host — exactly the regimes the paper contrasts between ENZYMES and
 * DD (§IV-C).
 *
 * GPU utilization is total kernel busy time divided by elapsed time
 * (paper Eq. 5). Per-phase and per-layer attributions charge each
 * record with the amount it advanced the frontier.
 */

#ifndef GNNPERF_DEVICE_TIMELINE_HH
#define GNNPERF_DEVICE_TIMELINE_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "device/cost_model.hh"
#include "device/trace.hh"

namespace gnnperf {

/** Elapsed seconds per training phase. */
struct PhaseTimes
{
    std::array<double, kNumPhases> seconds{};

    double &operator[](Phase p) { return seconds[static_cast<int>(p)]; }
    double operator[](Phase p) const
    {
        return seconds[static_cast<int>(p)];
    }

    /** Sum over all phases. */
    double total() const;
};

/** Result of replaying one trace. */
struct TimelineResult
{
    double elapsed = 0.0;   ///< simulated wall-clock seconds
    double gpuBusy = 0.0;   ///< total kernel busy seconds
    double hostBusy = 0.0;  ///< total host-op + dispatch seconds
    std::size_t kernelLaunches = 0;
    PhaseTimes phaseElapsed;

    /** Kernel launches per phase. */
    std::array<std::size_t, kNumPhases> phaseKernels{};

    /** GPU busy seconds per phase. */
    PhaseTimes phaseGpuBusy;

    /** Elapsed seconds attributed to each interned layer scope. */
    std::vector<double> layerElapsed;
    std::vector<std::string> layerNames;

    /** GPU compute utilization in [0, 1] (paper Eq. 5). */
    double
    utilization() const
    {
        return elapsed > 0.0 ? gpuBusy / elapsed : 0.0;
    }
};

/**
 * Scheduling of one record during a replay, handed to a RecordVisitor.
 * For kernels `start`/`duration` describe the on-GPU execution (host
 * dispatch excluded); for host ops they describe the host execution.
 * `frontierDelta` is the amount this record advanced the elapsed-time
 * frontier — summing it over a replay reproduces `elapsed` exactly,
 * which is what makes per-record attributions add up to 100%.
 */
struct RecordTiming
{
    const TraceEntry &entry;
    double start = 0.0;
    double duration = 0.0;
    double frontierDelta = 0.0;
};

/** Per-record callback invoked by Timeline::replay in trace order. */
using RecordVisitor = std::function<void(const RecordTiming &)>;

/**
 * Stateless trace pricer.
 */
class Timeline
{
  public:
    /**
     * Replay a trace against a cost model.
     *
     * @param trace the recorded execution
     * @param model rate parameters
     * @param dispatch_overhead per-kernel host dispatch seconds
     *        (framework specific; see Backend::dispatchOverhead())
     * @param layer_names interned layer names from the Profiler
     * @param visitor optional per-record observer: called once per
     *        trace entry with its priced placement (the roofline
     *        engine classifies records through this hook)
     */
    static TimelineResult replay(const Trace &trace,
                                 const CostModel &model,
                                 double dispatch_overhead,
                                 std::vector<std::string> layer_names = {},
                                 const RecordVisitor &visitor = {});
};

} // namespace gnnperf

#endif // GNNPERF_DEVICE_TIMELINE_HH
