#include "device/device.hh"

#include "common/logging.hh"
#include "obs/stats.hh"

namespace gnnperf {

const char *
deviceName(DeviceKind kind)
{
    return kind == DeviceKind::Host ? "host" : "cuda";
}

void
MemoryStats::onFree(std::size_t bytes)
{
    gnnperf_assert(bytes <= currentBytes,
                   "freeing ", bytes, " bytes but only ", currentBytes,
                   " live");
    currentBytes -= bytes;
}

DeviceManager &
DeviceManager::instance()
{
    static DeviceManager manager;
    return manager;
}

MemoryStats &
DeviceManager::stats(DeviceKind kind)
{
    return kind == DeviceKind::Host ? host_ : cuda_;
}

const MemoryStats &
DeviceManager::stats(DeviceKind kind) const
{
    return kind == DeviceKind::Host ? host_ : cuda_;
}

void
DeviceManager::notifyAlloc(DeviceKind kind, std::size_t bytes)
{
    stats(kind).onAlloc(bytes);
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &allocs = stats::counter("alloc.cuda.allocs");
        static stats::Counter &alloc_bytes =
            stats::counter("alloc.cuda.alloc_bytes");
        static stats::Gauge &current =
            stats::gauge("alloc.cuda.current_bytes");
        static stats::Gauge &peak = stats::gauge("alloc.cuda.peak_bytes");
        allocs.inc();
        alloc_bytes.inc(bytes);
        current.set(static_cast<double>(cuda_.currentBytes));
        peak.set(static_cast<double>(cuda_.peakBytes));
    } else {
        static stats::Counter &allocs = stats::counter("alloc.host.allocs");
        allocs.inc();
    }
}

void
DeviceManager::notifyFree(DeviceKind kind, std::size_t bytes)
{
    stats(kind).onFree(bytes);
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &frees = stats::counter("alloc.cuda.frees");
        static stats::Gauge &current =
            stats::gauge("alloc.cuda.current_bytes");
        frees.inc();
        current.set(static_cast<double>(cuda_.currentBytes));
    }
}

} // namespace gnnperf
