#include "device/device.hh"

#include "common/logging.hh"

namespace gnnperf {

const char *
deviceName(DeviceKind kind)
{
    return kind == DeviceKind::Host ? "host" : "cuda";
}

void
MemoryStats::onFree(std::size_t bytes)
{
    gnnperf_assert(bytes <= currentBytes,
                   "freeing ", bytes, " bytes but only ", currentBytes,
                   " live");
    currentBytes -= bytes;
}

DeviceManager &
DeviceManager::instance()
{
    static DeviceManager manager;
    return manager;
}

MemoryStats &
DeviceManager::stats(DeviceKind kind)
{
    return kind == DeviceKind::Host ? host_ : cuda_;
}

const MemoryStats &
DeviceManager::stats(DeviceKind kind) const
{
    return kind == DeviceKind::Host ? host_ : cuda_;
}

void
DeviceManager::notifyAlloc(DeviceKind kind, std::size_t bytes)
{
    stats(kind).onAlloc(bytes);
}

void
DeviceManager::notifyFree(DeviceKind kind, std::size_t bytes)
{
    stats(kind).onFree(bytes);
}

} // namespace gnnperf
