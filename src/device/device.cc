#include "device/device.hh"

#include <cstdlib>

#include "common/buildinfo.hh"
#include "common/logging.hh"
#include "device/allocator.hh"
#include "obs/memtrace.hh"
#include "obs/stats.hh"

namespace gnnperf {

const char *
deviceName(DeviceKind kind)
{
    return kind == DeviceKind::Host ? "host" : "cuda";
}

const char *
allocatorName(AllocatorKind kind)
{
    return kind == AllocatorKind::Direct ? "direct" : "caching";
}

AllocatorKind
allocatorKindFromName(const std::string &name)
{
    if (name == "direct")
        return AllocatorKind::Direct;
    if (name == "caching")
        return AllocatorKind::Caching;
    gnnperf_fatal("unknown allocator '", name,
                  "' (expected direct|caching)");
}

void
MemoryStats::onAlloc(std::size_t bytes)
{
    currentBytes += bytes;
    totalAllocated += bytes;
    ++acquireCount;
    if (currentBytes > peakBytes)
        peakBytes = currentBytes;
}

void
MemoryStats::onFree(std::size_t bytes)
{
    gnnperf_assert(bytes <= currentBytes,
                   "freeing ", bytes, " bytes but only ", currentBytes,
                   " live");
    currentBytes -= bytes;
}

void
MemoryStats::onReserve(std::size_t bytes)
{
    reservedBytes += bytes;
    ++allocCount;
    if (reservedBytes > reservedPeak)
        reservedPeak = reservedBytes;
}

void
MemoryStats::onUnreserve(std::size_t bytes)
{
    gnnperf_assert(bytes <= reservedBytes,
                   "unreserving ", bytes, " bytes but only ",
                   reservedBytes, " reserved");
    reservedBytes -= bytes;
}

void
MemoryStats::leakCheck(std::size_t baseline_bytes, const char *what) const
{
    gnnperf_assert(currentBytes == baseline_bytes,
                   "memory leak in ", what, ": ", currentBytes,
                   " live bytes, expected baseline ", baseline_bytes);
}

DeviceManager::DeviceManager()
{
    for (DeviceKind kind : {DeviceKind::Host, DeviceKind::Cuda}) {
        PerDevice &d = device(kind);
        d.direct = std::make_unique<DirectAllocator>(kind);
        d.caching = std::make_unique<CachingAllocator>(kind);
    }
    AllocatorKind which = AllocatorKind::Caching;
    if (const char *env = std::getenv("GNNPERF_ALLOCATOR"))
        which = allocatorKindFromName(env);
    setAllocator(which);
}

DeviceManager &
DeviceManager::instance()
{
    // Deliberately leaked: tensors living in static storage release
    // their blocks after main() returns, and the owning allocator must
    // still be alive to take them back.
    static DeviceManager *manager = new DeviceManager;
    return *manager;
}

DeviceManager::PerDevice &
DeviceManager::device(DeviceKind kind)
{
    return kind == DeviceKind::Host ? host_ : cuda_;
}

const DeviceManager::PerDevice &
DeviceManager::device(DeviceKind kind) const
{
    return kind == DeviceKind::Host ? host_ : cuda_;
}

MemoryStats &
DeviceManager::stats(DeviceKind kind)
{
    return device(kind).stats;
}

const MemoryStats &
DeviceManager::stats(DeviceKind kind) const
{
    return device(kind).stats;
}

Allocator &
DeviceManager::allocator(DeviceKind kind)
{
    return *device(kind).active;
}

void
DeviceManager::setAllocator(DeviceKind kind, AllocatorKind which)
{
    PerDevice &d = device(kind);
    d.active = which == AllocatorKind::Direct ? d.direct.get()
                                              : d.caching.get();
    if (kind == DeviceKind::Cuda)
        buildinfo::setRunFact("allocator", allocatorName(which));
}

void
DeviceManager::setAllocator(AllocatorKind which)
{
    setAllocator(DeviceKind::Host, which);
    setAllocator(DeviceKind::Cuda, which);
}

AllocatorKind
DeviceManager::allocatorKind(DeviceKind kind) const
{
    return device(kind).active->kind();
}

void
DeviceManager::resetPeak(DeviceKind kind)
{
    stats(kind).resetPeak();
    // Emit a reset_peak marker so the trace's measurement window and
    // the stats peaks stay aligned.
    MemTracer::instance().onResetPeak(kind);
}

void
DeviceManager::emptyCaches()
{
    for (DeviceKind kind : {DeviceKind::Host, DeviceKind::Cuda}) {
        device(kind).direct->emptyCache();
        device(kind).caching->emptyCache();
    }
}

void
DeviceManager::trimCaches()
{
    for (DeviceKind kind : {DeviceKind::Host, DeviceKind::Cuda}) {
        device(kind).direct->trim();
        device(kind).caching->trim();
    }
}

std::size_t
DeviceManager::checkGuards()
{
    std::size_t checked = 0;
    for (DeviceKind kind : {DeviceKind::Host, DeviceKind::Cuda}) {
        checked += device(kind).direct->checkGuards();
        checked += device(kind).caching->checkGuards();
    }
    return checked;
}

namespace {

/**
 * Keep the exported gauges in lockstep with the MemoryStats they
 * mirror. Refreshed on every logical *and* reserve event so that
 * reserved_peak >= peak_bytes holds at any export point.
 */
void
refreshCudaGauges(const MemoryStats &s)
{
    static stats::Gauge &current = stats::gauge("alloc.cuda.current_bytes");
    static stats::Gauge &peak = stats::gauge("alloc.cuda.peak_bytes");
    static stats::Gauge &reserved =
        stats::gauge("alloc.cuda.reserved_bytes");
    static stats::Gauge &reserved_peak =
        stats::gauge("alloc.cuda.reserved_peak");
    current.set(static_cast<double>(s.currentBytes));
    peak.set(static_cast<double>(s.peakBytes));
    reserved.set(static_cast<double>(s.reservedBytes));
    reserved_peak.set(static_cast<double>(s.reservedPeak));
}

} // namespace

void
DeviceManager::notifyAlloc(DeviceKind kind, std::size_t bytes)
{
    stats(kind).onAlloc(bytes);
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &allocs = stats::counter("alloc.cuda.allocs");
        static stats::Counter &alloc_bytes =
            stats::counter("alloc.cuda.alloc_bytes");
        allocs.inc();
        alloc_bytes.inc(bytes);
        refreshCudaGauges(stats(kind));
    } else {
        static stats::Counter &allocs = stats::counter("alloc.host.allocs");
        allocs.inc();
    }
}

void
DeviceManager::notifyFree(DeviceKind kind, std::size_t bytes)
{
    stats(kind).onFree(bytes);
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &frees = stats::counter("alloc.cuda.frees");
        frees.inc();
        refreshCudaGauges(stats(kind));
    }
}

void
DeviceManager::notifyReserve(DeviceKind kind, std::size_t bytes)
{
    stats(kind).onReserve(bytes);
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &device_allocs =
            stats::counter("alloc.cuda.device_allocs");
        device_allocs.inc();
        refreshCudaGauges(stats(kind));
    }
}

void
DeviceManager::notifyUnreserve(DeviceKind kind, std::size_t bytes)
{
    stats(kind).onUnreserve(bytes);
    if (kind == DeviceKind::Cuda)
        refreshCudaGauges(stats(kind));
}

void
DeviceManager::notifyCacheHit(DeviceKind kind)
{
    ++stats(kind).cacheHits;
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &hits =
            stats::counter("alloc.cuda.cache_hits");
        hits.inc();
    }
}

void
DeviceManager::notifyCacheMiss(DeviceKind kind)
{
    ++stats(kind).cacheMisses;
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &misses =
            stats::counter("alloc.cuda.cache_misses");
        misses.inc();
    }
}

void
DeviceManager::notifySplit(DeviceKind kind)
{
    ++stats(kind).splitCount;
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &splits = stats::counter("alloc.cuda.splits");
        splits.inc();
    }
}

void
DeviceManager::notifyCoalesce(DeviceKind kind)
{
    ++stats(kind).coalesceCount;
    if (kind == DeviceKind::Cuda) {
        static stats::Counter &coalesces =
            stats::counter("alloc.cuda.coalesces");
        coalesces.inc();
    }
}

} // namespace gnnperf
