/**
 * @file
 * Registry of every kernel name the cost model can price.
 *
 * Trace records are priced by name-agnostic rooflines, but the
 * *analysis* layers key on kernel names: the roofline report buckets
 * by name, gnnperf_diff matches baselines by name, and the docs
 * enumerate them. A typo'd or unregistered name silently falls out of
 * every report. The registry makes the name set a checked, single
 * source of truth:
 *
 *  - checked builds (common/checks.hh) assert every
 *    Profiler::recordKernel name is registered, so an unregistered
 *    kernel aborts the first time it records;
 *  - tools/gnnperf_lint statically cross-checks the record* call
 *    literals in src/ against this table.
 *
 * Adding a kernel = add the recordKernel call and one line in
 * kernel_registry.cc.
 */

#ifndef GNNPERF_DEVICE_KERNEL_REGISTRY_HH
#define GNNPERF_DEVICE_KERNEL_REGISTRY_HH

#include <cstddef>

namespace gnnperf {

/** All registered kernel names; kNumRegisteredKernels entries. */
const char *const *registeredKernels();

/** Number of entries in registeredKernels(). */
std::size_t numRegisteredKernels();

/** Whether `name` names a registered kernel. */
bool kernelRegistered(const char *name);

/**
 * Panic unless `name` is registered. Called by recordKernel in
 * checked builds; kept out of line so the hot path stays one branch.
 */
void assertKernelRegistered(const char *name);

} // namespace gnnperf

#endif // GNNPERF_DEVICE_KERNEL_REGISTRY_HH
