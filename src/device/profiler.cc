#include "device/profiler.hh"

namespace gnnperf {

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

int16_t
Profiler::pushLayer(const char *name)
{
    auto it = layerIds_.find(name);
    int16_t id;
    if (it == layerIds_.end()) {
        id = static_cast<int16_t>(layerNames_.size());
        layerNames_.emplace_back(name);
        layerIds_.emplace(name, id);
    } else {
        id = it->second;
    }
    int16_t prev = layer_;
    layer_ = id;
    return prev;
}

void
Profiler::reset()
{
    trace_.clear();
    layerNames_.clear();
    layerIds_.clear();
    layer_ = -1;
    phase_ = Phase::Other;
}

} // namespace gnnperf
