#include "device/multi_gpu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gnnperf {

double
DataParallelModel::scatterTime(const DataParallelParams &p,
                               const CostModel &model)
{
    // The batch lands on GPU 0 as part of data loading (already in
    // collateTime); scatter moves the other GPUs' shards.
    if (p.numGpus <= 1)
        return 0.0;
    double per_gpu = model.host.h2dLatency +
                     p.shardInputBytes / model.gpu.h2dBytesPerSec;
    return (p.numGpus - 1) * per_gpu;
}

double
DataParallelModel::replicateTime(const DataParallelParams &p,
                                 const CostModel &model)
{
    if (p.numGpus <= 1)
        return 0.0;
    // Parameters are broadcast from GPU 0 to each replica every
    // iteration (DataParallel re-replicates the module each step).
    double copies = static_cast<double>(p.numGpus - 1);
    return copies * (p.paramBytes / model.gpu.p2pBytesPerSec +
                     kPerReplicaOverhead);
}

double
DataParallelModel::gatherReduceTime(const DataParallelParams &p,
                                    const CostModel &model)
{
    if (p.numGpus <= 1)
        return 0.0;
    double copies = static_cast<double>(p.numGpus - 1);
    // Output gather to GPU 0 plus gradient reduction onto GPU 0.
    double gather = copies * (p.shardOutputBytes /
                              model.gpu.p2pBytesPerSec + 30e-6);
    double reduce = copies * (p.paramBytes / model.gpu.p2pBytesPerSec +
                              kPerReplicaOverhead);
    return gather + reduce;
}

double
DataParallelModel::computeTime(const DataParallelParams &p)
{
    // Kernel execution is measured at shard size (so it already
    // shrinks with the GPU count); per-replica dispatch runs on
    // driver threads that overlap except for the interpreter-locked
    // fraction. This is what yields the paper's "computing time can
    // be reduced to 1/N" at large batches while small dispatch-bound
    // models see little gain (§IV-E).
    const double kernel_part =
        std::max(p.shardComputeElapsed - p.shardDispatchTime, 0.0);
    const double n = static_cast<double>(p.numGpus);
    const double dispatch_part =
        p.shardDispatchTime *
        (kDispatchSerialization + (1.0 - kDispatchSerialization) / n);
    return kernel_part + dispatch_part;
}

double
DataParallelModel::iterationTime(const DataParallelParams &p,
                                 const CostModel &model)
{
    gnnperf_assert(p.numGpus >= 1, "iterationTime: numGpus < 1");
    return p.collateTime + scatterTime(p, model) +
           replicateTime(p, model) + computeTime(p) +
           gatherReduceTime(p, model) + p.updateTime;
}

} // namespace gnnperf
