/**
 * @file
 * Trace collection: phases, layer scopes, and record emission.
 *
 * The Profiler is a process-wide sink. When disabled (the default)
 * record emission is a branch and a return, so unprofiled runs (unit
 * tests, accuracy-only training) pay almost nothing. When enabled,
 * tensor ops, graph kernels and collation code append KernelRecord /
 * HostRecord entries annotated with the current Phase and layer scope;
 * the Timeline then prices the trace (see timeline.hh).
 */

#ifndef GNNPERF_DEVICE_PROFILER_HH
#define GNNPERF_DEVICE_PROFILER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/checks.hh"
#include "device/kernel_registry.hh"
#include "device/trace.hh"
#include "obs/hwprof.hh"
#include "obs/spans.hh"

namespace gnnperf {

/**
 * Process-wide trace collector.
 */
class Profiler
{
  public:
    /** The process-wide instance. */
    static Profiler &instance();

    /** Enable/disable trace collection. */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Current phase (stamped into records). */
    void setPhase(Phase phase) { phase_ = phase; }
    Phase phase() const { return phase_; }

    /**
     * Enter a named layer scope (e.g. "conv1"). Returns the previous
     * scope id so callers can restore it. Names are interned: the same
     * name maps to the same id across epochs.
     */
    int16_t pushLayer(const char *name);

    /** Restore a previous layer scope id. */
    void setLayer(int16_t id) { layer_ = id; }
    int16_t layer() const { return layer_; }

    /** All interned layer names, indexed by id. */
    const std::vector<std::string> &layerNames() const
    {
        return layerNames_;
    }

    /** Emit a kernel record (no-op when disabled). */
    void
    recordKernel(const char *name, double flops, double bytes)
    {
        // Checked builds verify the name even while tracing is off:
        // the registry contract holds for every kernel a test runs,
        // not just the profiled ones.
        if (checksEnabled())
            assertKernelRegistered(name);
        if (!enabled_)
            return;
        trace_.addKernel(KernelRecord{name, flops, bytes, phase_, layer_});
        // Hardware-counter attribution shares the kernel window: the
        // delta since the last window on this thread belongs to this
        // launch (gate checked again inside; off = relaxed load).
        if (hwprof::enabled()) {
            const std::string *layer_name =
                layer_ >= 0 &&
                        static_cast<std::size_t>(layer_) <
                            layerNames_.size()
                    ? &layerNames_[layer_]
                    : nullptr;
            hwprof::onKernelRecord(name, phase_, layer_, layer_name);
        }
    }

    /** Emit a host record (no-op when disabled). */
    void
    recordHost(const char *name, HostOpKind kind, double bytes,
               double items)
    {
        if (!enabled_)
            return;
        trace_.addHost(HostRecord{name, kind, bytes, items, phase_,
                                  layer_});
    }

    /** The collected trace. */
    const Trace &trace() const { return trace_; }

    /** Drop all collected records (layer interning is kept). */
    void clearTrace() { trace_.clear(); }

    /** Drop records and layer interning. */
    void reset();

  private:
    Profiler() = default;

    bool enabled_ = false;
    Phase phase_ = Phase::Other;
    int16_t layer_ = -1;
    Trace trace_;
    std::vector<std::string> layerNames_;
    std::unordered_map<std::string, int16_t> layerIds_;
};

/**
 * RAII phase scope: sets the phase, restores the previous on exit.
 * Doubles as a wall-clock HostSpan (obs/spans.hh) so enabling the
 * span tracer times every phase for real; the span opens *after* the
 * phase switch so it is stamped with the new phase.
 */
class PhaseScope
{
  public:
    explicit PhaseScope(Phase phase)
        : prev_(Profiler::instance().phase()), cur_(phase),
          span_((Profiler::instance().setPhase(phase),
                 phaseName(phase)))
    {
        // Close the predecessor's hwprof window at the boundary so
        // inter-kernel time is booked to the phase that spent it.
        if (hwprof::enabled())
            hwprof::onPhaseBoundary(prev_);
    }

    ~PhaseScope()
    {
        if (hwprof::enabled())
            hwprof::onPhaseBoundary(cur_);
        Profiler::instance().setPhase(prev_);
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    Phase prev_;
    Phase cur_;
    HostSpan span_;
};

/**
 * RAII layer scope: tags records with a layer name (e.g. "conv2").
 * Also a wall-clock HostSpan, opened after the layer push so the span
 * carries its own layer id.
 */
class LayerScope
{
  public:
    explicit LayerScope(const char *name)
        : prev_(Profiler::instance().layer()),
          span_((Profiler::instance().pushLayer(name), name))
    {
    }

    ~LayerScope() { Profiler::instance().setLayer(prev_); }

    LayerScope(const LayerScope &) = delete;
    LayerScope &operator=(const LayerScope &) = delete;

  private:
    int16_t prev_;
    HostSpan span_;
};

/** Convenience free functions for emitting records. */
inline void
recordKernel(const char *name, double flops, double bytes)
{
    Profiler::instance().recordKernel(name, flops, bytes);
}

inline void
recordHost(const char *name, HostOpKind kind, double bytes,
           double items = 0.0)
{
    Profiler::instance().recordHost(name, kind, bytes, items);
}

} // namespace gnnperf

#endif // GNNPERF_DEVICE_PROFILER_HH
