#include "device/trace_export.hh"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gnnperf {

std::string
traceToChromeJson(const Trace &trace, const CostModel &model,
                  double dispatch_overhead)
{
    std::string out = "[\n";
    out += strprintf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                     "\"args\":{\"name\":\"gnnperf simulated\"}},\n");
    out += strprintf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                     "\"tid\":1,\"args\":{\"name\":\"host\"}},\n");
    out += strprintf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                     "\"tid\":2,\"args\":{\"name\":\"gpu stream\"}}");

    double host = 0.0;
    double gpu_free = 0.0;
    for (const auto &entry : trace.entries()) {
        if (entry.isKernel) {
            const auto &k = entry.kernel;
            const double dur = model.kernelTime(k);
            const std::string name = jsonEscape(k.name);
            // Host-side launch slice.
            out += strprintf(
                ",\n{\"name\":\"launch %s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f}",
                name.c_str(), phaseName(k.phase), host * 1e6,
                dispatch_overhead * 1e6);
            host += dispatch_overhead;
            const double start = std::max(host, gpu_free);
            gpu_free = start + dur;
            out += strprintf(
                ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":1,\"tid\":2,\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"flops\":%.0f,\"bytes\":%.0f}}",
                name.c_str(), phaseName(k.phase), start * 1e6,
                dur * 1e6, k.flops, k.bytes);
        } else {
            const auto &h = entry.host;
            const double dur = model.hostTime(h);
            out += strprintf(
                ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"bytes\":%.0f,\"items\":%.0f}}",
                jsonEscape(h.name).c_str(), phaseName(h.phase),
                host * 1e6, dur * 1e6, h.bytes, h.items);
            host += dur;
        }
    }
    out += "\n]\n";
    return out;
}

std::string
timelineToCsv(const TimelineResult &result)
{
    std::string out = "phase,elapsed_s,kernels,gpu_busy_s\n";
    for (int p = 0; p < kNumPhases; ++p) {
        const auto phase = static_cast<Phase>(p);
        out += strprintf("%s,%.9f,%zu,%.9f\n", phaseName(phase),
                         result.phaseElapsed[phase],
                         result.phaseKernels[p],
                         result.phaseGpuBusy[phase]);
    }
    out += strprintf("total,%.9f,%zu,%.9f\n", result.elapsed,
                     result.kernelLaunches, result.gpuBusy);
    return out;
}

std::vector<KernelSummaryRow>
summarizeKernels(const Trace &trace, const CostModel &model)
{
    std::map<std::string, KernelSummaryRow> by_name;
    for (const auto &entry : trace.entries()) {
        if (!entry.isKernel)
            continue;
        const auto &k = entry.kernel;
        KernelSummaryRow &row = by_name[k.name];
        row.name = k.name;
        ++row.count;
        row.flops += k.flops;
        row.bytes += k.bytes;
        row.gpuSeconds += model.kernelTime(k);
    }
    std::vector<KernelSummaryRow> rows;
    rows.reserve(by_name.size());
    for (auto &[name, row] : by_name)
        rows.push_back(row);
    std::sort(rows.begin(), rows.end(),
              [](const KernelSummaryRow &a, const KernelSummaryRow &b) {
                  return a.gpuSeconds > b.gpuSeconds;
              });
    return rows;
}

std::string
kernelSummaryToCsv(const std::vector<KernelSummaryRow> &rows)
{
    std::string out = "kernel,count,flops,bytes,gpu_seconds\n";
    for (const auto &row : rows) {
        out += strprintf("%s,%zu,%.0f,%.0f,%.9f\n",
                         csvEscape(row.name).c_str(), row.count,
                         row.flops, row.bytes, row.gpuSeconds);
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        gnnperf_fatal("cannot open ", path, " for writing");
    file << content;
    if (!file)
        gnnperf_fatal("write to ", path, " failed");
}

} // namespace gnnperf
