#include "device/trace_export.hh"

#include <algorithm>
#include <map>

#include "common/string_utils.hh"

namespace gnnperf {

std::string
chromeProcessName(int pid, const std::string &name)
{
    return strprintf("{\"name\":\"process_name\",\"ph\":\"M\","
                     "\"pid\":%d,\"args\":{\"name\":\"%s\"}}",
                     pid, jsonEscape(name).c_str());
}

std::string
chromeThreadName(int pid, int tid, const std::string &name)
{
    return strprintf("{\"name\":\"thread_name\",\"ph\":\"M\","
                     "\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                     pid, tid, jsonEscape(name).c_str());
}

double
appendChromeTraceEvents(std::string &out, const Trace &trace,
                        const CostModel &model,
                        double dispatch_overhead, int pid,
                        double start_ts_us)
{
    double host = start_ts_us * 1e-6;
    double gpu_free = host;
    for (const auto &entry : trace.entries()) {
        if (entry.isKernel) {
            const auto &k = entry.kernel;
            const double dur = model.kernelTime(k);
            const std::string name = jsonEscape(k.name);
            // Host-side launch slice.
            out += strprintf(
                ",\n{\"name\":\"launch %s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":%d,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f}",
                name.c_str(), phaseName(k.phase), pid, host * 1e6,
                dispatch_overhead * 1e6);
            host += dispatch_overhead;
            const double start = std::max(host, gpu_free);
            gpu_free = start + dur;
            out += strprintf(
                ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":%d,\"tid\":2,\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"flops\":%.0f,\"bytes\":%.0f}}",
                name.c_str(), phaseName(k.phase), pid, start * 1e6,
                dur * 1e6, k.flops, k.bytes);
        } else {
            const auto &h = entry.host;
            const double dur = model.hostTime(h);
            out += strprintf(
                ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":%d,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,"
                "\"args\":{\"bytes\":%.0f,\"items\":%.0f}}",
                jsonEscape(h.name).c_str(), phaseName(h.phase), pid,
                host * 1e6, dur * 1e6, h.bytes, h.items);
            host += dur;
        }
    }
    return std::max(host, gpu_free) * 1e6;
}

std::string
traceToChromeJson(const Trace &trace, const CostModel &model,
                  double dispatch_overhead)
{
    std::string out = "[\n";
    out += chromeProcessName(1, "gnnperf simulated") + ",\n";
    out += chromeThreadName(1, 1, "host") + ",\n";
    out += chromeThreadName(1, 2, "gpu stream");
    appendChromeTraceEvents(out, trace, model, dispatch_overhead, 1);
    out += "\n]\n";
    return out;
}

std::string
timelineToCsv(const TimelineResult &result)
{
    std::string out = "phase,elapsed_s,kernels,gpu_busy_s\n";
    for (int p = 0; p < kNumPhases; ++p) {
        const auto phase = static_cast<Phase>(p);
        out += strprintf("%s,%.9f,%zu,%.9f\n", phaseName(phase),
                         result.phaseElapsed[phase],
                         result.phaseKernels[p],
                         result.phaseGpuBusy[phase]);
    }
    out += strprintf("total,%.9f,%zu,%.9f\n", result.elapsed,
                     result.kernelLaunches, result.gpuBusy);
    return out;
}

std::vector<KernelSummaryRow>
summarizeKernels(const Trace &trace, const CostModel &model)
{
    std::map<std::string, KernelSummaryRow> by_name;
    for (const auto &entry : trace.entries()) {
        if (!entry.isKernel)
            continue;
        const auto &k = entry.kernel;
        KernelSummaryRow &row = by_name[k.name];
        row.name = k.name;
        ++row.count;
        row.flops += k.flops;
        row.bytes += k.bytes;
        row.gpuSeconds += model.kernelTime(k);
    }
    std::vector<KernelSummaryRow> rows;
    rows.reserve(by_name.size());
    for (auto &[name, row] : by_name)
        rows.push_back(row);
    std::sort(rows.begin(), rows.end(),
              [](const KernelSummaryRow &a, const KernelSummaryRow &b) {
                  return a.gpuSeconds > b.gpuSeconds;
              });
    return rows;
}

std::string
kernelSummaryToCsv(const std::vector<KernelSummaryRow> &rows)
{
    std::string out = "kernel,count,flops,bytes,gpu_seconds\n";
    for (const auto &row : rows) {
        out += strprintf("%s,%zu,%.0f,%.0f,%.9f\n",
                         csvEscape(row.name).c_str(), row.count,
                         row.flops, row.bytes, row.gpuSeconds);
    }
    return out;
}

} // namespace gnnperf
