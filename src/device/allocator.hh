/**
 * @file
 * Pluggable device allocators behind Storage.
 *
 * Tensor storage no longer calls the heap (or the DeviceManager)
 * directly: it acquires a MemoryBlock from the device's active
 * Allocator and releases it back on destruction. Two implementations:
 *
 *  - DirectAllocator — one backing allocation per block, freed on
 *    release. Reserved bytes equal live bytes; every acquisition is a
 *    device allocation. This is the historical behaviour.
 *  - CachingAllocator — a PyTorch-style pooling allocator: sizes are
 *    rounded to a 512-byte quantum, released blocks go to a
 *    size-ordered free list instead of the system, larger cached
 *    blocks are split (and coalesced again on free), and the pool is
 *    returned wholesale via emptyCache() or generationally via trim().
 *
 * The split models the number the paper's Fig. 4 actually measures:
 * nvidia-smi sees the framework pool's *reserved* bytes, not the
 * logical bytes of live tensors. DeviceManager's MemoryStats therefore
 * carries both: logical current/peak (allocator-invariant, the
 * faithful live-tensor number) and reserved current/peak (the
 * nvidia-smi-like pool high-water mark), plus cache hit/miss and
 * split/coalesce counters for the caching path.
 *
 * Guard layer (checked builds, common/checks.hh): every block is
 * bracketed by redzone canaries — kRedzone bytes of 0xAB in front of
 * the user region and every byte between the usable size and the
 * backing capacity behind it (usable = max(requested, sizeof(float)):
 * like the historical Storage, even a zero-byte block promises one
 * writable float) — verified when the block is released; a
 * torn canary means a kernel overran a tensor. Released blocks are
 * poison-filled (0xDD) over their whole capacity, and the poison is
 * re-verified when the caching pool hands the block out again and when
 * trim()/emptyCache() return its segment to the system — a torn
 * poison byte means something wrote through a dangling pointer into
 * pooled memory. Violations emit a MemTracer GuardViolation event and
 * abort. Logical accounting never includes guard bytes, so the Fig. 4
 * line stays faithful; reserved accounting grows by the redzones
 * (checked builds only). When checks are off the guard fields stay
 * zero and every code path is byte-identical to the unguarded build.
 */

#ifndef GNNPERF_DEVICE_ALLOCATOR_HH
#define GNNPERF_DEVICE_ALLOCATOR_HH

#include <cstddef>
#include <cstdint>
#include <set>

#include "device/device.hh"

namespace gnnperf {

class Allocator;

/**
 * One storage block handed out by an Allocator. Under the caching
 * allocator a block is a slice of a backing segment; prev/next link
 * the slices of one segment in address order so freed neighbours can
 * coalesce. `size` is the backing capacity, `requested` the live
 * logical bytes (0 while the block sits in a free list).
 */
struct MemoryBlock
{
    char *ptr = nullptr;
    std::size_t size = 0;
    std::size_t requested = 0;
    Allocator *owner = nullptr;

    MemoryBlock *prev = nullptr;
    MemoryBlock *next = nullptr;
    bool isFree = false;
    bool segmentHead = false;  ///< owns the segment's backing array
    bool poisoned = false;     ///< capacity poison-filled on release
    uint64_t lastUseGen = 0;   ///< trim generation of the last use
    uint64_t traceId = 0;      ///< MemTracer id (0 = untracked)

    /**
     * Front redzone width. 0 when the block was allocated with checks
     * off; the user region starts at ptr + guard. Carried per block so
     * toggling the check level mid-run releases every block with the
     * geometry it was allocated under.
     */
    std::size_t guard = 0;

    char *data() { return ptr + guard; }
    const char *data() const { return ptr + guard; }

    float *floats() { return reinterpret_cast<float *>(ptr + guard); }
    const float *floats() const
    {
        return reinterpret_cast<const float *>(ptr + guard);
    }
};

/**
 * Abstract allocator for one device. Allocators report logical bytes
 * (the requested size) and reserved bytes (the backing capacity they
 * hold from the system) to the DeviceManager; Storage never touches
 * the DeviceManager directly any more.
 */
class Allocator
{
  public:
    /** Front redzone width in guarded (checked) allocations. */
    static constexpr std::size_t kRedzone = 64;

    /** Canary byte filling redzones while a block is live. */
    static constexpr unsigned char kCanaryByte = 0xAB;

    /** Poison byte filling a block's capacity while it is free. */
    static constexpr unsigned char kPoisonByte = 0xDD;

    explicit Allocator(DeviceKind device) : device_(device) {}
    virtual ~Allocator() = default;

    Allocator(const Allocator &) = delete;
    Allocator &operator=(const Allocator &) = delete;

    virtual AllocatorKind kind() const = 0;

    /** Acquire a block with capacity >= bytes (bytes may be 0). */
    virtual MemoryBlock *allocate(std::size_t bytes) = 0;

    /** Release a block previously returned by allocate(). */
    virtual void release(MemoryBlock *block) = 0;

    /** Return every cached (free) byte to the system. */
    virtual void emptyCache() {}

    /**
     * Epoch-boundary hook: drop cached blocks that have not been
     * reused since the previous trim() call.
     */
    virtual void trim() {}

    /**
     * Sweep every cached (free) block and verify its poison fill is
     * intact — the use-after-free check, callable at any quiescent
     * point (the test main runs it at process exit next to
     * leakCheck()). Blocks cached before checks were enabled are
     * skipped. Returns the number of blocks verified.
     */
    virtual std::size_t checkGuards() { return 0; }

    DeviceKind device() const { return device_; }

  protected:
    DeviceKind device_;

    /** Fill both redzones of a freshly allocated guarded block. */
    void armGuards(MemoryBlock *block);

    /**
     * Verify `block`'s redzones (live block, `where` = "release" site)
     * — panic + MemTracer GuardViolation on a torn canary.
     */
    void verifyGuards(const MemoryBlock *block, const char *where);

    /** Poison a released block's whole capacity. */
    void poison(MemoryBlock *block);

    /**
     * Verify a cached block's poison fill is intact; panic + MemTracer
     * GuardViolation on a torn byte (use-after-free write).
     */
    void verifyPoison(const MemoryBlock *block, const char *where);

    /** Report a guard violation: MemTracer event, then panic. */
    [[noreturn]] void guardViolation(const MemoryBlock *block,
                                     const char *what,
                                     const char *where,
                                     std::size_t offset);
};

/** One backing allocation per block — the historical behaviour. */
class DirectAllocator final : public Allocator
{
  public:
    explicit DirectAllocator(DeviceKind device) : Allocator(device) {}

    AllocatorKind kind() const override { return AllocatorKind::Direct; }
    MemoryBlock *allocate(std::size_t bytes) override;
    void release(MemoryBlock *block) override;
};

/**
 * PyTorch-style caching allocator: size-bucketed free list with
 * split/coalesce of cached blocks. Single-threaded, like the rest of
 * the library.
 */
class CachingAllocator final : public Allocator
{
  public:
    /** Allocation granularity; all block sizes are multiples. */
    static constexpr std::size_t kQuantum = 512;

    explicit CachingAllocator(DeviceKind device) : Allocator(device) {}
    ~CachingAllocator() override;

    AllocatorKind kind() const override
    {
        return AllocatorKind::Caching;
    }

    MemoryBlock *allocate(std::size_t bytes) override;
    void release(MemoryBlock *block) override;
    void emptyCache() override;
    void trim() override;
    std::size_t checkGuards() override;

    /** Free bytes currently held in the pool. */
    std::size_t cachedBytes() const;

  private:
    /** Size-then-address order: lower_bound gives the best fit. */
    struct BlockOrder
    {
        bool
        operator()(const MemoryBlock *a, const MemoryBlock *b) const
        {
            if (a->size != b->size)
                return a->size < b->size;
            return a->ptr < b->ptr;
        }
    };

    static std::size_t roundUp(std::size_t bytes);
    /** Absorb `b->next` (must be free) into `b`. */
    void mergeWithNext(MemoryBlock *b);
    /**
     * Drop every fully-free segment matching `pred`-style gen cut;
     * returns the bytes returned to the system.
     */
    std::size_t releaseSegments(bool only_stale);

    std::set<MemoryBlock *, BlockOrder> free_;
    uint64_t gen_ = 1;
};

} // namespace gnnperf

#endif // GNNPERF_DEVICE_ALLOCATOR_HH
