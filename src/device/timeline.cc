#include "device/timeline.hh"

#include <algorithm>

namespace gnnperf {

double
PhaseTimes::total() const
{
    double t = 0.0;
    for (double s : seconds)
        t += s;
    return t;
}

TimelineResult
Timeline::replay(const Trace &trace, const CostModel &model,
                 double dispatch_overhead,
                 std::vector<std::string> layer_names,
                 const RecordVisitor &visitor)
{
    TimelineResult result;
    result.layerNames = std::move(layer_names);
    result.layerElapsed.assign(result.layerNames.size(), 0.0);

    double host = 0.0;      // host cursor
    double gpuFree = 0.0;   // time the GPU stream becomes idle
    double frontier = 0.0;  // max(host, gpuFree) so far

    auto attribute = [&](Phase phase, int16_t layer, double delta) {
        result.phaseElapsed[phase] += delta;
        if (layer >= 0 &&
            static_cast<std::size_t>(layer) < result.layerElapsed.size()) {
            result.layerElapsed[layer] += delta;
        }
    };

    for (const auto &entry : trace.entries()) {
        if (entry.isKernel) {
            const auto &k = entry.kernel;
            double duration = model.kernelTime(k);
            host += dispatch_overhead;
            double start = std::max(host, gpuFree);
            gpuFree = start + duration;
            result.gpuBusy += duration;
            result.hostBusy += dispatch_overhead;
            ++result.kernelLaunches;
            ++result.phaseKernels[static_cast<int>(k.phase)];
            result.phaseGpuBusy[k.phase] += duration;
            double new_frontier = std::max(host, gpuFree);
            attribute(k.phase, k.layer, new_frontier - frontier);
            if (visitor) {
                visitor(RecordTiming{entry, start, duration,
                                     new_frontier - frontier});
            }
            frontier = new_frontier;
        } else {
            const auto &h = entry.host;
            double duration = model.hostTime(h);
            double start = host;
            host += duration;
            result.hostBusy += duration;
            double new_frontier = std::max(host, gpuFree);
            attribute(h.phase, h.layer, new_frontier - frontier);
            if (visitor) {
                visitor(RecordTiming{entry, start, duration,
                                     new_frontier - frontier});
            }
            frontier = new_frontier;
        }
    }

    result.elapsed = frontier;
    return result;
}

} // namespace gnnperf
