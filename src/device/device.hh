/**
 * @file
 * Simulated device memory accounting with dual (logical vs reserved)
 * bookkeeping.
 *
 * Tensor storage declares a DeviceKind; blocks are acquired from the
 * device's active Allocator (device/allocator.hh), which reports two
 * parallel account lines to the DeviceManager:
 *
 *  - logical bytes — the live tensor bytes the workload materialises.
 *    This is the faithful Fig. 4 number and is byte-identical under
 *    every allocator.
 *  - reserved bytes — the backing capacity the allocator holds from
 *    the system (the pool). This is what nvidia-smi — the paper's
 *    measurement tool — actually reports, and under the caching
 *    allocator it exceeds the logical line.
 *
 * The library is single-threaded by design (the paper's workloads are
 * dispatch-serialised too), so no synchronisation is needed here.
 */

#ifndef GNNPERF_DEVICE_DEVICE_HH
#define GNNPERF_DEVICE_DEVICE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace gnnperf {

/** Where a tensor's storage conceptually lives. */
enum class DeviceKind : uint8_t { Host, Cuda };

/** Human-readable device name. */
const char *deviceName(DeviceKind kind);

/** Which allocator implementation backs a device. */
enum class AllocatorKind : uint8_t { Direct, Caching };

/** "direct" / "caching". */
const char *allocatorName(AllocatorKind kind);

/** Parse an allocator name (fatal on anything else). */
AllocatorKind allocatorKindFromName(const std::string &name);

class Allocator;

/** Allocation statistics for one device. */
struct MemoryStats
{
    // Logical (live-tensor) accounting — the faithful Fig. 4 line.
    std::size_t currentBytes = 0;   ///< live bytes right now
    std::size_t peakBytes = 0;      ///< high-water mark since reset
    std::size_t totalAllocated = 0; ///< cumulative bytes ever acquired
    std::size_t acquireCount = 0;   ///< number of block acquisitions

    // Reserved (pool) accounting — the nvidia-smi-like line.
    std::size_t reservedBytes = 0;  ///< backing bytes held right now
    std::size_t reservedPeak = 0;   ///< high-water mark since reset
    std::size_t allocCount = 0;     ///< backing (device) allocations

    // Cache behaviour (caching allocator only).
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    std::size_t splitCount = 0;
    std::size_t coalesceCount = 0;

    void onAlloc(std::size_t bytes);
    void onFree(std::size_t bytes);
    void onReserve(std::size_t bytes);
    void onUnreserve(std::size_t bytes);

    /** Reset both high-water marks to the current levels. */
    void
    resetPeak()
    {
        peakBytes = currentBytes;
        reservedPeak = reservedBytes;
    }

    /**
     * Assert the logical live size returned to a captured baseline —
     * the leak check for scoped workloads:
     *
     *     const std::size_t base = dm.stats(kind).currentBytes;
     *     { ... workload ... }
     *     dm.stats(kind).leakCheck(base, "workload");
     */
    void leakCheck(std::size_t baseline_bytes,
                   const char *what = "scope") const;
};

/**
 * Process-wide registry of per-device memory statistics and the
 * per-device active allocator. The instance is intentionally leaked so
 * that storage blocks released during static destruction always find
 * their allocator alive.
 */
class DeviceManager
{
  public:
    /** The process-wide instance. */
    static DeviceManager &instance();

    /** Statistics for a device. */
    MemoryStats &stats(DeviceKind kind);
    const MemoryStats &stats(DeviceKind kind) const;

    /** The device's active allocator (Storage acquires through it). */
    Allocator &allocator(DeviceKind kind);

    /**
     * Select the allocator implementation for one device (or both).
     * Blocks already handed out keep their owning allocator, so
     * switching mid-run is safe. The process default is the caching
     * allocator; GNNPERF_ALLOCATOR=direct|caching overrides it.
     */
    void setAllocator(DeviceKind kind, AllocatorKind which);
    void setAllocator(AllocatorKind which);
    AllocatorKind allocatorKind(DeviceKind kind) const;

    /** Return every cached pool byte to the system (both devices). */
    void emptyCaches();

    /** Epoch boundary: drop cached blocks unused for a full epoch. */
    void trimCaches();

    /**
     * Sweep every allocator on every device and verify cached-block
     * poison fills (Allocator::checkGuards). Panics on corruption;
     * returns the number of blocks verified. The test main calls this
     * at process exit next to the leak check.
     */
    std::size_t checkGuards();

    // --- notifications, called by the allocators ---

    /** Logical (live-tensor) acquire / release. */
    void notifyAlloc(DeviceKind kind, std::size_t bytes);
    void notifyFree(DeviceKind kind, std::size_t bytes);

    /** Backing (pool) allocation / return-to-system. */
    void notifyReserve(DeviceKind kind, std::size_t bytes);
    void notifyUnreserve(DeviceKind kind, std::size_t bytes);

    /** Cache behaviour (caching allocator). */
    void notifyCacheHit(DeviceKind kind);
    void notifyCacheMiss(DeviceKind kind);
    void notifySplit(DeviceKind kind);
    void notifyCoalesce(DeviceKind kind);

    // --- device-parametric peak queries ---

    /**
     * Reset a device's logical + reserved high-water marks. Notifies
     * the MemTracer (obs/memtrace.hh) so the trace carries a window
     * marker aligning counter-track maxima with the stats peaks.
     */
    void resetPeak(DeviceKind kind);

    std::size_t
    current(DeviceKind kind) const
    {
        return stats(kind).currentBytes;
    }

    std::size_t peak(DeviceKind kind) const
    {
        return stats(kind).peakBytes;
    }

    std::size_t
    reserved(DeviceKind kind) const
    {
        return stats(kind).reservedBytes;
    }

    std::size_t
    reservedPeak(DeviceKind kind) const
    {
        return stats(kind).reservedPeak;
    }

    // --- legacy conveniences (prefer the device-parametric forms) ---

    void resetCudaPeak() { resetPeak(DeviceKind::Cuda); }
    std::size_t cudaCurrent() const { return current(DeviceKind::Cuda); }
    std::size_t cudaPeak() const { return peak(DeviceKind::Cuda); }

  private:
    DeviceManager();

    struct PerDevice
    {
        MemoryStats stats;
        std::unique_ptr<Allocator> direct;
        std::unique_ptr<Allocator> caching;
        Allocator *active = nullptr;
    };

    PerDevice &device(DeviceKind kind);
    const PerDevice &device(DeviceKind kind) const;

    PerDevice host_;
    PerDevice cuda_;
};

} // namespace gnnperf

#endif // GNNPERF_DEVICE_DEVICE_HH
