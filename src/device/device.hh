/**
 * @file
 * Simulated device memory accounting.
 *
 * Tensor storage declares a DeviceKind; allocations/frees on the Cuda
 * device flow through DeviceManager so that peak memory usage — the
 * quantity the paper reads from nvidia-smi (Fig. 4) — is tracked
 * byte-accurately for the *real* tensors the workload materialises.
 *
 * The library is single-threaded by design (the paper's workloads are
 * dispatch-serialised too), so no synchronisation is needed here.
 */

#ifndef GNNPERF_DEVICE_DEVICE_HH
#define GNNPERF_DEVICE_DEVICE_HH

#include <cstddef>
#include <cstdint>

namespace gnnperf {

/** Where a tensor's storage conceptually lives. */
enum class DeviceKind : uint8_t { Host, Cuda };

/** Human-readable device name. */
const char *deviceName(DeviceKind kind);

/** Allocation statistics for one device. */
struct MemoryStats
{
    std::size_t currentBytes = 0;   ///< live bytes right now
    std::size_t peakBytes = 0;      ///< high-water mark since reset
    std::size_t totalAllocated = 0; ///< cumulative bytes ever allocated
    std::size_t allocCount = 0;     ///< number of allocations

    void
    onAlloc(std::size_t bytes)
    {
        currentBytes += bytes;
        totalAllocated += bytes;
        ++allocCount;
        if (currentBytes > peakBytes)
            peakBytes = currentBytes;
    }

    void onFree(std::size_t bytes);

    /** Reset the high-water mark to the current live size. */
    void resetPeak() { peakBytes = currentBytes; }
};

/**
 * Process-wide registry of per-device memory statistics.
 */
class DeviceManager
{
  public:
    /** The process-wide instance. */
    static DeviceManager &instance();

    /** Statistics for a device. */
    MemoryStats &stats(DeviceKind kind);
    const MemoryStats &stats(DeviceKind kind) const;

    /** Record an allocation / free. */
    void notifyAlloc(DeviceKind kind, std::size_t bytes);
    void notifyFree(DeviceKind kind, std::size_t bytes);

    /** Reset the Cuda peak (e.g. before measuring one configuration). */
    void resetCudaPeak() { cuda_.resetPeak(); }

    /** Convenience: current / peak Cuda bytes. */
    std::size_t cudaCurrent() const { return cuda_.currentBytes; }
    std::size_t cudaPeak() const { return cuda_.peakBytes; }

  private:
    DeviceManager() = default;

    MemoryStats host_;
    MemoryStats cuda_;
};

} // namespace gnnperf

#endif // GNNPERF_DEVICE_DEVICE_HH
