/**
 * @file
 * Calibrated cost model for the simulated GPU deployment.
 *
 * The paper measures on an NVIDIA GeForce RTX 2080Ti driven by Python
 * frameworks (PyTorch + PyG/DGL). We have neither a GPU nor Python, so
 * trace records (see trace.hh) are priced with this model:
 *
 *  - GPU kernels follow a roofline: duration = fixed kernel overhead +
 *    max(flops / effective_flops, bytes / effective_bandwidth). The
 *    effective rates are the 2080Ti peaks (13.45 TFLOP/s FP32,
 *    616 GB/s) derated by typical achieved efficiency.
 *  - Host operations are priced per kind: contiguous copies run at
 *    PyTorch-tensor speed, per-element indexed paths an order of
 *    magnitude slower (DGL's non-PyTorch data processing, paper
 *    §IV-C), metadata construction costs per item (Python object
 *    overhead), and PCIe transfers at ~11 GB/s.
 *  - Every kernel launch additionally costs framework dispatch time on
 *    the host (Python op overhead). This per-op constant is the main
 *    lever behind the paper's observation that small-graph workloads
 *    are dispatch-bound; it is framework specific (DGL's extra
 *    abstraction layers make it larger) and supplied by the Backend.
 *
 * All rates are ordinary data members so tests and ablation benches can
 * construct hypothetical devices.
 */

#ifndef GNNPERF_DEVICE_COST_MODEL_HH
#define GNNPERF_DEVICE_COST_MODEL_HH

#include <cstddef>

#include "device/trace.hh"

namespace gnnperf {

/** GPU-side rate parameters (defaults: RTX 2080Ti). */
struct GpuSpec
{
    /** Effective FP32 throughput (peak 13.45 TFLOP/s, ~45% achieved). */
    double flopsPerSec = 13.45e12 * 0.45;

    /** Effective memory bandwidth (peak 616 GB/s, ~65% achieved). */
    double bytesPerSec = 616e9 * 0.65;

    /** Fixed on-GPU cost of any kernel (ramp-up/down, tail effects). */
    double kernelOverhead = 2.5e-6;

    /** Host→device PCIe 3.0 x16 effective bandwidth. */
    double h2dBytesPerSec = 11e9;

    /** GPU↔GPU transfer bandwidth (through host, no NVLink). */
    double p2pBytesPerSec = 9e9;

    /** Device memory capacity (11 GiB on the 2080Ti). */
    std::size_t memoryCapacity = 11ull << 30;
};

/**
 * Effective-parallelism parameters for host-side kernel execution on
 * the src/parallel/ thread pool. A pool of N threads never yields an
 * N× speedup: launches have a serial fraction (partition setup, the
 * barrier, stragglers) and per-thread efficiency losses (shared memory
 * bandwidth, stealing overhead). Amdahl with a flat efficiency derate
 * keeps the roofline honest about what host parallelism buys.
 */
struct ParallelSpec
{
    /** Per-thread scaling efficiency once parallel (cache/bw sharing). */
    double efficiency = 0.85;

    /** Fraction of a launch that stays serial (setup + barrier). */
    double serialFraction = 0.05;

    /** Expected speedup of an N-thread launch over the serial path. */
    double speedup(int threads) const;
};

/** Host-side rate parameters. */
struct HostSpec
{
    /** Contiguous copy bandwidth (PyTorch-backed tensor ops). */
    double memcpyBytesPerSec = 9e9;

    /** Per-element indexed copy bandwidth (generic slow path). */
    double gatherBytesPerSec = 0.9e9;

    /** Per-item cost of metadata construction (Python object-level). */
    double metaItemCost = 1.2e-6;

    /** Bandwidth of metadata byte traffic. */
    double metaBytesPerSec = 1.5e9;

    /** Fixed latency of a host→device transfer call. */
    double h2dLatency = 8e-6;

    /** Per-item framework dispatch cost (explicit Dispatch records). */
    double dispatchItemCost = 30e-6;

    /** Base cost of any host operation record. */
    double hostOpBase = 1.5e-6;
};

/**
 * Prices trace records. Stateless apart from its parameters.
 */
class CostModel
{
  public:
    GpuSpec gpu;
    HostSpec host;
    ParallelSpec parallel;

    /** On-GPU duration of a kernel (host dispatch NOT included). */
    double kernelTime(const KernelRecord &k) const;

    /** Host-side duration of a host operation. */
    double hostTime(const HostRecord &h) const;

    /** The default model shared by the whole process. */
    static const CostModel &defaultModel();
};

} // namespace gnnperf

#endif // GNNPERF_DEVICE_COST_MODEL_HH
