#include "device/kernel_registry.hh"

#include <string_view>
#include <unordered_set>

#include "common/logging.hh"

namespace gnnperf {

namespace {

/**
 * Every kernel name the repo records, grouped by the file that emits
 * it. Keep alphabetical within each group; gnnperf_lint verifies the
 * record-call literals in src/ stay a subset of this table.
 */
const char *const kKernelNames[] = {
    // tensor/ops.cc — elementwise
    "add",
    "add_",
    "add_bias",
    "add_scalar",
    "axpy_",
    "div",
    "div_cols",
    "dropout",
    "elu",
    "exp",
    "leaky_relu",
    "log",
    "maximum",
    "mul",
    "mul_cols",
    "reciprocal",
    "relu",
    "scale",
    "sigmoid",
    "sqrt",
    "square",
    "sub",
    "tanh",
    // tensor/ops.cc — reductions, shapes, indexing
    "argmax",
    "col_sum",
    "col_var",
    "concat",
    "gather_rows",
    "log_softmax",
    "row_norm",
    "row_sum",
    "scatter_add",
    "slice_cols",
    "slice_rows",
    "softmax",
    "sum_all",
    "transpose",
    // tensor/matmul.cc
    "sgemm",
    "sgemm_nt",
    "sgemm_tn",
    // graph/spmm.cc
    "gsddmm_dot_uv",
    "gspmm_copy_u_max",
    "gspmm_copy_u_max_bwd",
    "gspmm_copy_u_mean",
    "gspmm_copy_u_sum",
    "gspmm_u_mul_e_sum",
    // graph/scatter.cc
    "index_count",
    "scatter_max",
    "scatter_max_bwd",
    // graph/segment.cc
    "segment_mean",
    "segment_mean_bwd",
    "segment_sum",
    "segment_sum_bwd",
    // graph/edge_softmax.cc
    "edge_softmax",
    "edge_softmax_bwd",
    // graph/batched_graph.cc
    "edge_pseudo",
    // autograd/functions.cc
    "elu_bwd",
    "leaky_relu_bwd",
    "mul_rowvec",
    "mul_rowvec_bwd",
    "relu_bwd",
    "row_sum_bwd",
    "sigmoid_bwd",
    "slice_cols_bwd",
    "tanh_bwd",
    // nn/
    "adam_update",
    "batch_norm",
    "batch_norm_bwd",
    "bn_eval_prep",
    "nll_loss",
    "nll_loss_bwd",
    // models/
    "attn_head_dot",
    "attn_head_dot_bwd_a",
    "attn_head_dot_bwd_x",
    "deg_inv_sqrt",
    // ir/executor.cc — fused launches (record-then-execute mode)
    "fused_ew",
    "fused_ew_scatter",
    "fused_gather_ew",
    "fused_gather_ew_scatter",
    // backends/
    "batch_num_nodes",
    "degree",
    "dgl_frame_init",
    "expand_heads",
    "expand_heads_bwd",
    "gspmm_copy_e_sum",
};

constexpr std::size_t kNumKernelNames =
    sizeof(kKernelNames) / sizeof(kKernelNames[0]);

const std::unordered_set<std::string_view> &
kernelNameSet()
{
    static const std::unordered_set<std::string_view> set(
        kKernelNames, kKernelNames + kNumKernelNames);
    return set;
}

} // namespace

const char *const *
registeredKernels()
{
    return kKernelNames;
}

std::size_t
numRegisteredKernels()
{
    return kNumKernelNames;
}

bool
kernelRegistered(const char *name)
{
    return kernelNameSet().count(std::string_view(name)) != 0;
}

void
assertKernelRegistered(const char *name)
{
    if (kernelRegistered(name))
        return;
    gnnperf_panic("kernel '", name,
                  "' is not in the kernel registry — add it to "
                  "src/device/kernel_registry.cc so the roofline, "
                  "diff and docs layers can see it");
}

} // namespace gnnperf
