/**
 * @file
 * DataParallel multi-GPU timing model (paper §IV-E, Fig. 6).
 *
 * The paper parallelises training with PyTorch's `nn.DataParallel`,
 * which per iteration: (1) collates the mini-batch on the host,
 * (2) scatters input shards to the GPUs over PCIe, (3) replicates the
 * module parameters from GPU 0 to the others, (4) runs forward on all
 * GPUs (driver threads share the interpreter, so dispatch is partially
 * serialised), (5) gathers outputs on GPU 0, computes the loss, and
 * backpropagates with gradient reduction onto GPU 0, then (6) updates
 * parameters on GPU 0.
 *
 * We time one shard's compute by really executing a shard-sized batch
 * and replaying its trace (Timeline); this model composes that with the
 * transfer/replication overheads to produce the per-iteration time for
 * N GPUs. The shape the paper reports — mild gains from 1→4 GPUs
 * because host-side loading dominates, and regression at 8 GPUs from
 * transfer overhead — emerges from the composition.
 */

#ifndef GNNPERF_DEVICE_MULTI_GPU_HH
#define GNNPERF_DEVICE_MULTI_GPU_HH

#include <cstddef>

#include "device/cost_model.hh"

namespace gnnperf {

/** Per-iteration measurements and sizes feeding the model. */
struct DataParallelParams
{
    int numGpus = 1;

    /** Model parameter bytes (replicated and reduced every step). */
    double paramBytes = 0.0;

    /** Input bytes of one shard (batch/N) moved host→device. */
    double shardInputBytes = 0.0;

    /** Output logits bytes of one shard (gathered to GPU 0). */
    double shardOutputBytes = 0.0;

    /** Host-side collation time of the full batch (serial). */
    double collateTime = 0.0;

    /** Elapsed fwd+bwd time of one shard (Timeline replay). */
    double shardComputeElapsed = 0.0;

    /** Host dispatch portion of the shard compute (serialised part). */
    double shardDispatchTime = 0.0;

    /** Optimizer step time on GPU 0. */
    double updateTime = 0.0;
};

/**
 * Prices one DataParallel iteration / epoch.
 */
class DataParallelModel
{
  public:
    /**
     * Fraction of per-replica dispatch work that cannot overlap
     * across the driver threads (the interpreter lock serialises the
     * Python part of dispatch; the C++ part releases it and overlaps).
     */
    static constexpr double kDispatchSerialization = 0.35;

    /** Fixed host cost of launching work on one extra replica. */
    static constexpr double kPerReplicaOverhead = 40e-6;

    /** Time of one training iteration on `p.numGpus` GPUs. */
    static double iterationTime(const DataParallelParams &p,
                                const CostModel &model);

    /** Breakdown helpers (also used by tests and the Fig. 6 bench). */
    static double scatterTime(const DataParallelParams &p,
                              const CostModel &model);
    static double replicateTime(const DataParallelParams &p,
                                const CostModel &model);
    static double gatherReduceTime(const DataParallelParams &p,
                                   const CostModel &model);
    static double computeTime(const DataParallelParams &p);
};

} // namespace gnnperf

#endif // GNNPERF_DEVICE_MULTI_GPU_HH
