#include "device/trace.hh"

namespace gnnperf {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::DataLoading: return "data_loading";
      case Phase::Forward: return "forward";
      case Phase::Backward: return "backward";
      case Phase::Update: return "update";
      case Phase::Evaluation: return "evaluation";
      case Phase::Other: return "other";
    }
    return "?";
}

const char *
hostOpKindName(HostOpKind kind)
{
    switch (kind) {
      case HostOpKind::Memcpy: return "memcpy";
      case HostOpKind::IndexedGather: return "indexed_gather";
      case HostOpKind::MetaBuild: return "meta_build";
      case HostOpKind::H2DTransfer: return "h2d_transfer";
      case HostOpKind::Dispatch: return "dispatch";
    }
    return "?";
}

std::size_t
Trace::kernelCount() const
{
    std::size_t n = 0;
    for (const auto &e : entries_)
        n += e.isKernel ? 1 : 0;
    return n;
}

double
Trace::totalFlops() const
{
    double f = 0.0;
    for (const auto &e : entries_)
        if (e.isKernel)
            f += e.kernel.flops;
    return f;
}

double
Trace::totalKernelBytes() const
{
    double b = 0.0;
    for (const auto &e : entries_)
        if (e.isKernel)
            b += e.kernel.bytes;
    return b;
}

} // namespace gnnperf
