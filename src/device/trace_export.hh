/**
 * @file
 * Trace export: Chrome trace-event JSON (chrome://tracing /
 * Perfetto) and CSV summaries.
 *
 * The paper inspects executions with nvprof/Nsight timelines; this is
 * the offline equivalent — replaying a recorded trace against the
 * cost model produces host-thread and GPU-stream tracks with the same
 * async-launch semantics the Timeline uses, viewable in any Chrome
 * trace viewer.
 */

#ifndef GNNPERF_DEVICE_TRACE_EXPORT_HH
#define GNNPERF_DEVICE_TRACE_EXPORT_HH

#include <string>
#include <vector>

#include "device/cost_model.hh"
#include "device/timeline.hh"
#include "device/trace.hh"

namespace gnnperf {

/**
 * Render a trace as Chrome trace-event JSON. Two tracks: tid 1 =
 * host (dispatch + host ops), tid 2 = GPU stream (kernel execution),
 * with the same scheduling the Timeline computes. Timestamps are in
 * microseconds as the format requires.
 */
std::string traceToChromeJson(const Trace &trace, const CostModel &model,
                              double dispatch_overhead);

/**
 * CSV summary of a replayed timeline: one row per phase with elapsed
 * seconds, kernel count and GPU-busy seconds.
 */
std::string timelineToCsv(const TimelineResult &result);

/**
 * Per-kernel-name aggregation of a trace: count, total FLOPs, total
 * bytes, total modelled GPU time — the nvprof "GPU summary" view.
 */
struct KernelSummaryRow
{
    std::string name;
    std::size_t count = 0;
    double flops = 0.0;
    double bytes = 0.0;
    double gpuSeconds = 0.0;
};

std::vector<KernelSummaryRow> summarizeKernels(const Trace &trace,
                                               const CostModel &model);

/** Render a kernel summary as CSV (name,count,flops,bytes,seconds). */
std::string kernelSummaryToCsv(
    const std::vector<KernelSummaryRow> &rows);

/** Write a string to a file (fatal on I/O error). */
void writeFile(const std::string &path, const std::string &content);

} // namespace gnnperf

#endif // GNNPERF_DEVICE_TRACE_EXPORT_HH
