/**
 * @file
 * Trace export: Chrome trace-event JSON (chrome://tracing /
 * Perfetto) and CSV summaries.
 *
 * The paper inspects executions with nvprof/Nsight timelines; this is
 * the offline equivalent — replaying a recorded trace against the
 * cost model produces host-thread and GPU-stream tracks with the same
 * async-launch semantics the Timeline uses, viewable in any Chrome
 * trace viewer.
 */

#ifndef GNNPERF_DEVICE_TRACE_EXPORT_HH
#define GNNPERF_DEVICE_TRACE_EXPORT_HH

#include <string>
#include <vector>

#include "device/cost_model.hh"
#include "device/timeline.hh"
#include "device/trace.hh"

namespace gnnperf {

/**
 * Render a trace as Chrome trace-event JSON. Two tracks: tid 1 =
 * host (dispatch + host ops), tid 2 = GPU stream (kernel execution),
 * with the same scheduling the Timeline computes. Timestamps are in
 * microseconds as the format requires.
 */
std::string traceToChromeJson(const Trace &trace, const CostModel &model,
                              double dispatch_overhead);

/** `{"name":"process_name",...}` metadata event (no trailing comma). */
std::string chromeProcessName(int pid, const std::string &name);

/** `{"name":"thread_name",...}` metadata event (no trailing comma). */
std::string chromeThreadName(int pid, int tid, const std::string &name);

/**
 * Append the priced slices of one trace to a Chrome trace-event
 * stream under the given pid (tid 1 = host, tid 2 = GPU stream),
 * starting at `start_ts_us` on the simulated clock; returns the µs
 * timestamp where the appended slices end, so successive epochs can
 * be laid out back to back. Every emitted event is preceded by ",\n",
 * so the caller must have written at least one event already. Used by
 * both traceToChromeJson and the merged execution trace
 * (obs/exec_trace.hh).
 */
double appendChromeTraceEvents(std::string &out, const Trace &trace,
                               const CostModel &model,
                               double dispatch_overhead, int pid,
                               double start_ts_us = 0.0);

/**
 * CSV summary of a replayed timeline: one row per phase with elapsed
 * seconds, kernel count and GPU-busy seconds.
 */
std::string timelineToCsv(const TimelineResult &result);

/**
 * Per-kernel-name aggregation of a trace: count, total FLOPs, total
 * bytes, total modelled GPU time — the nvprof "GPU summary" view.
 */
struct KernelSummaryRow
{
    std::string name;
    std::size_t count = 0;
    double flops = 0.0;
    double bytes = 0.0;
    double gpuSeconds = 0.0;
};

std::vector<KernelSummaryRow> summarizeKernels(const Trace &trace,
                                               const CostModel &model);

/** Render a kernel summary as CSV (name,count,flops,bytes,seconds). */
std::string kernelSummaryToCsv(
    const std::vector<KernelSummaryRow> &rows);

} // namespace gnnperf

#endif // GNNPERF_DEVICE_TRACE_EXPORT_HH
