/**
 * @file
 * Edge softmax: normalise per-edge scores over the incoming edges of
 * each destination node (GAT's attention normalisation).
 *
 * The fused routines here are DGL's edge_softmax operator (one kernel
 * forward, one backward). PyG has no fused edge softmax at the
 * studied versions — it composes scatter-max / gather / exp /
 * scatter-add / div, which the PyG backend does explicitly from the
 * scatter kernels (more launches and an extra [E,H] temporary).
 */

#ifndef GNNPERF_GRAPH_EDGE_SOFTMAX_HH
#define GNNPERF_GRAPH_EDGE_SOFTMAX_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "tensor/tensor.hh"

namespace gnnperf {
namespace graphops {

/**
 * Fused forward: alpha[e,h] = softmax over {e' : dst(e')=dst(e)} of
 * logits[e',h], computed per head with max-subtraction.
 */
Tensor edgeSoftmaxFused(const CsrIndex &in_index, const Tensor &logits);

/**
 * Fused backward: given alpha and dL/dalpha, returns dL/dlogits:
 * g_e = alpha_e (dalpha_e − Σ_{e' same dst} alpha_{e'} dalpha_{e'}).
 */
Tensor edgeSoftmaxBackwardFused(const CsrIndex &in_index,
                                const Tensor &alpha, const Tensor &grad);

} // namespace graphops
} // namespace gnnperf

#endif // GNNPERF_GRAPH_EDGE_SOFTMAX_HH
