#include "graph/edge_softmax.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "device/profiler.hh"
#include "graph/workspace.hh"
#include "parallel/thread_pool.hh"
#include "parallel/write_check.hh"

namespace gnnperf {
namespace graphops {

Tensor
edgeSoftmaxFused(const CsrIndex &in_index, const Tensor &logits)
{
    gnnperf_assert(logits.rank() == 2, "edgeSoftmax on rank ",
                   logits.rank());
    gnnperf_assert(logits.dim(0) == in_index.numEdges(),
                   "edgeSoftmax: ", logits.dim(0), " logits for ",
                   in_index.numEdges(), " edges");
    const int64_t h = logits.dim(1);
    Tensor alpha(logits.shape(), logits.device());
    const float *pl = logits.data();
    float *pa = alpha.data();
    // Per-head maxima and denominators live in one pooled scratch
    // block instead of two per-call vectors; every pool slot gets its
    // own cacheline-padded slice so concurrent nodes cannot collide.
    static Workspace scratch;
    WorkspaceLease lease(scratch);
    const int slots = par::ThreadPool::instance().numThreads();
    float *base = scratch.ensureSlices(static_cast<std::size_t>(2 * h),
                                       slots, logits.device());
    const std::size_t stride = scratch.sliceStride();
    // Destination nodes own disjoint edge sets in a CSR incidence
    // index, so per-node chunks write disjoint alpha rows and the
    // result is byte-identical at any thread count. The launch iterates
    // nodes but writes *edges*, so checked builds declare the derived
    // write-set over the edge domain: every alpha row must be written
    // exactly once, by exactly one chunk.
    par::WriteSet ws("edge_softmax", in_index.numEdges());
    par::parallelFor(
        "par.edge_softmax", 0, in_index.numNodes(), 64,
        [&](int64_t vb, int64_t ve, int slot) {
            float *mx = base + static_cast<std::size_t>(slot) * stride;
            float *denom = mx + h;
            for (int64_t v = vb; v < ve; ++v) {
                const int64_t begin = in_index.ptr[v],
                              end = in_index.ptr[v + 1];
                if (begin == end)
                    continue;
                for (int64_t hh = 0; hh < h; ++hh) {
                    mx[static_cast<std::size_t>(hh)] =
                        -std::numeric_limits<float>::infinity();
                    denom[static_cast<std::size_t>(hh)] = 0.0f;
                }
                for (int64_t k = begin; k < end; ++k) {
                    const int64_t e =
                        in_index.edgeId[static_cast<std::size_t>(k)];
                    for (int64_t hh = 0; hh < h; ++hh)
                        mx[static_cast<std::size_t>(hh)] =
                            std::max(mx[static_cast<std::size_t>(hh)],
                                     pl[e * h + hh]);
                }
                for (int64_t k = begin; k < end; ++k) {
                    const int64_t e =
                        in_index.edgeId[static_cast<std::size_t>(k)];
                    for (int64_t hh = 0; hh < h; ++hh) {
                        const float ex =
                            std::exp(pl[e * h + hh] -
                                     mx[static_cast<std::size_t>(hh)]);
                        pa[e * h + hh] = ex;
                        denom[static_cast<std::size_t>(hh)] += ex;
                    }
                }
                for (int64_t k = begin; k < end; ++k) {
                    const int64_t e =
                        in_index.edgeId[static_cast<std::size_t>(k)];
                    for (int64_t hh = 0; hh < h; ++hh)
                        pa[e * h + hh] /=
                            denom[static_cast<std::size_t>(hh)];
                    ws.note(slot, e, e + 1);
                }
            }
        });
    recordKernel("edge_softmax",
                 5.0 * static_cast<double>(logits.numel()),
                 2.0 * static_cast<double>(logits.bytes()));
    return alpha;
}

Tensor
edgeSoftmaxBackwardFused(const CsrIndex &in_index, const Tensor &alpha,
                         const Tensor &grad)
{
    gnnperf_assert(alpha.sameShape(grad),
                   "edgeSoftmaxBackward: shape mismatch");
    const int64_t h = alpha.dim(1);
    Tensor out(alpha.shape(), alpha.device());
    const float *pa = alpha.data();
    const float *pg = grad.data();
    float *po = out.data();
    static Workspace scratch;
    WorkspaceLease lease(scratch);
    const int slots = par::ThreadPool::instance().numThreads();
    float *base = scratch.ensureSlices(static_cast<std::size_t>(h),
                                       slots, alpha.device());
    const std::size_t stride = scratch.sliceStride();
    par::WriteSet ws("edge_softmax_bwd", in_index.numEdges());
    par::parallelFor(
        "par.edge_softmax_bwd", 0, in_index.numNodes(), 64,
        [&](int64_t vb, int64_t ve, int slot) {
            float *acc = base + static_cast<std::size_t>(slot) * stride;
            for (int64_t v = vb; v < ve; ++v) {
                const int64_t begin = in_index.ptr[v],
                              end = in_index.ptr[v + 1];
                if (begin == end)
                    continue;
                for (int64_t hh = 0; hh < h; ++hh)
                    acc[static_cast<std::size_t>(hh)] = 0.0f;
                for (int64_t k = begin; k < end; ++k) {
                    const int64_t e =
                        in_index.edgeId[static_cast<std::size_t>(k)];
                    for (int64_t hh = 0; hh < h; ++hh)
                        acc[static_cast<std::size_t>(hh)] +=
                            pa[e * h + hh] * pg[e * h + hh];
                }
                for (int64_t k = begin; k < end; ++k) {
                    const int64_t e =
                        in_index.edgeId[static_cast<std::size_t>(k)];
                    for (int64_t hh = 0; hh < h; ++hh)
                        po[e * h + hh] =
                            pa[e * h + hh] *
                            (pg[e * h + hh] -
                             acc[static_cast<std::size_t>(hh)]);
                    ws.note(slot, e, e + 1);
                }
            }
        });
    recordKernel("edge_softmax_bwd",
                 4.0 * static_cast<double>(alpha.numel()),
                 3.0 * static_cast<double>(alpha.bytes()));
    return out;
}

} // namespace graphops
} // namespace gnnperf
