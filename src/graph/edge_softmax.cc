#include "graph/edge_softmax.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "device/profiler.hh"
#include "graph/workspace.hh"

namespace gnnperf {
namespace graphops {

Tensor
edgeSoftmaxFused(const CsrIndex &in_index, const Tensor &logits)
{
    gnnperf_assert(logits.rank() == 2, "edgeSoftmax on rank ",
                   logits.rank());
    gnnperf_assert(logits.dim(0) == in_index.numEdges(),
                   "edgeSoftmax: ", logits.dim(0), " logits for ",
                   in_index.numEdges(), " edges");
    const int64_t h = logits.dim(1);
    Tensor alpha(logits.shape(), logits.device());
    const float *pl = logits.data();
    float *pa = alpha.data();
    // Per-head maxima and denominators live in one pooled scratch
    // block instead of two per-call vectors.
    static Workspace scratch;
    float *mx = scratch.ensure(static_cast<std::size_t>(2 * h),
                               logits.device());
    float *denom = mx + h;
    for (int64_t v = 0; v < in_index.numNodes(); ++v) {
        const int64_t begin = in_index.ptr[v], end = in_index.ptr[v + 1];
        if (begin == end)
            continue;
        for (int64_t hh = 0; hh < h; ++hh) {
            mx[static_cast<std::size_t>(hh)] =
                -std::numeric_limits<float>::infinity();
            denom[static_cast<std::size_t>(hh)] = 0.0f;
        }
        for (int64_t k = begin; k < end; ++k) {
            const int64_t e =
                in_index.edgeId[static_cast<std::size_t>(k)];
            for (int64_t hh = 0; hh < h; ++hh)
                mx[static_cast<std::size_t>(hh)] = std::max(
                    mx[static_cast<std::size_t>(hh)], pl[e * h + hh]);
        }
        for (int64_t k = begin; k < end; ++k) {
            const int64_t e =
                in_index.edgeId[static_cast<std::size_t>(k)];
            for (int64_t hh = 0; hh < h; ++hh) {
                const float ex = std::exp(
                    pl[e * h + hh] - mx[static_cast<std::size_t>(hh)]);
                pa[e * h + hh] = ex;
                denom[static_cast<std::size_t>(hh)] += ex;
            }
        }
        for (int64_t k = begin; k < end; ++k) {
            const int64_t e =
                in_index.edgeId[static_cast<std::size_t>(k)];
            for (int64_t hh = 0; hh < h; ++hh)
                pa[e * h + hh] /= denom[static_cast<std::size_t>(hh)];
        }
    }
    recordKernel("edge_softmax",
                 5.0 * static_cast<double>(logits.numel()),
                 2.0 * static_cast<double>(logits.bytes()));
    return alpha;
}

Tensor
edgeSoftmaxBackwardFused(const CsrIndex &in_index, const Tensor &alpha,
                         const Tensor &grad)
{
    gnnperf_assert(alpha.sameShape(grad),
                   "edgeSoftmaxBackward: shape mismatch");
    const int64_t h = alpha.dim(1);
    Tensor out(alpha.shape(), alpha.device());
    const float *pa = alpha.data();
    const float *pg = grad.data();
    float *po = out.data();
    static Workspace scratch;
    float *acc =
        scratch.ensure(static_cast<std::size_t>(h), alpha.device());
    for (int64_t v = 0; v < in_index.numNodes(); ++v) {
        const int64_t begin = in_index.ptr[v], end = in_index.ptr[v + 1];
        if (begin == end)
            continue;
        for (int64_t hh = 0; hh < h; ++hh)
            acc[static_cast<std::size_t>(hh)] = 0.0f;
        for (int64_t k = begin; k < end; ++k) {
            const int64_t e =
                in_index.edgeId[static_cast<std::size_t>(k)];
            for (int64_t hh = 0; hh < h; ++hh)
                acc[static_cast<std::size_t>(hh)] +=
                    pa[e * h + hh] * pg[e * h + hh];
        }
        for (int64_t k = begin; k < end; ++k) {
            const int64_t e =
                in_index.edgeId[static_cast<std::size_t>(k)];
            for (int64_t hh = 0; hh < h; ++hh)
                po[e * h + hh] =
                    pa[e * h + hh] * (pg[e * h + hh] -
                                      acc[static_cast<std::size_t>(hh)]);
        }
    }
    recordKernel("edge_softmax_bwd",
                 4.0 * static_cast<double>(alpha.numel()),
                 3.0 * static_cast<double>(alpha.bytes()));
    return out;
}

} // namespace graphops
} // namespace gnnperf
