#include "graph/spmm.hh"

#include <limits>

#include "common/logging.hh"
#include "device/profiler.hh"
#include "obs/stats.hh"
#include "parallel/thread_pool.hh"

namespace gnnperf {
namespace graphops {

namespace {

void
recordSpmm(const char *name, int64_t edges, int64_t f, int64_t n,
           double flops_per_edge_elem)
{
    static stats::Counter &calls = stats::counter("kernel.spmm.calls");
    static stats::Counter &nnz = stats::counter("kernel.spmm.nnz");
    static stats::Distribution &rows =
        stats::distribution("kernel.spmm.rows");
    calls.inc();
    nnz.inc(static_cast<uint64_t>(edges));
    rows.sample(static_cast<double>(n));
    recordKernel(name,
                 flops_per_edge_elem * static_cast<double>(edges) * f,
                 static_cast<double>(edges * f + n * f) * sizeof(float) +
                     static_cast<double>(edges) * 2.0 * sizeof(int64_t));
}

} // namespace

Tensor
spmmCopyUSum(const CsrIndex &in_index, const Tensor &x)
{
    gnnperf_assert(x.rank() == 2, "spmmCopyUSum on rank ", x.rank());
    const int64_t n = in_index.numNodes();
    const int64_t f = x.dim(1);
    Tensor out = Tensor::zeros({n, f}, x.device());
    const float *px = x.data();
    float *po = out.data();
    // Row-parallel: each destination node owns its output row and its
    // CSR neighbour order, so any thread count is byte-identical.
    par::parallelFor(
        "par.spmm_sum", 0, n, 32, [&](int64_t vb, int64_t ve, int) {
            for (int64_t v = vb; v < ve; ++v) {
                float *dst = po + v * f;
                for (int64_t k = in_index.ptr[v]; k < in_index.ptr[v + 1];
                     ++k) {
                    const float *row =
                        px +
                        in_index.neighbor[static_cast<std::size_t>(k)] * f;
                    for (int64_t j = 0; j < f; ++j)
                        dst[j] += row[j];
                }
            }
        });
    recordSpmm("gspmm_copy_u_sum", in_index.numEdges(), f, n, 1.0);
    return out;
}

Tensor
spmmCopyUMean(const CsrIndex &in_index, const Tensor &x)
{
    gnnperf_assert(x.rank() == 2, "spmmCopyUMean on rank ", x.rank());
    const int64_t n = in_index.numNodes();
    const int64_t f = x.dim(1);
    Tensor out = Tensor::zeros({n, f}, x.device());
    const float *px = x.data();
    float *po = out.data();
    par::parallelFor(
        "par.spmm_mean", 0, n, 32, [&](int64_t vb, int64_t ve, int) {
            for (int64_t v = vb; v < ve; ++v) {
                float *dst = po + v * f;
                const int64_t begin = in_index.ptr[v],
                              end = in_index.ptr[v + 1];
                for (int64_t k = begin; k < end; ++k) {
                    const float *row =
                        px +
                        in_index.neighbor[static_cast<std::size_t>(k)] * f;
                    for (int64_t j = 0; j < f; ++j)
                        dst[j] += row[j];
                }
                if (end > begin) {
                    const float inv =
                        1.0f / static_cast<float>(end - begin);
                    for (int64_t j = 0; j < f; ++j)
                        dst[j] *= inv;
                }
            }
        });
    recordSpmm("gspmm_copy_u_mean", in_index.numEdges(), f, n, 1.0);
    return out;
}

Tensor
spmmCopyUMax(const CsrIndex &in_index, const Tensor &x,
             std::vector<int64_t> &arg_src)
{
    gnnperf_assert(x.rank() == 2, "spmmCopyUMax on rank ", x.rank());
    const int64_t n = in_index.numNodes();
    const int64_t f = x.dim(1);
    Tensor out = Tensor::zeros({n, f}, x.device());
    arg_src.assign(static_cast<std::size_t>(n * f), -1);
    const float *px = x.data();
    float *po = out.data();
    int64_t *parg = arg_src.data();
    par::parallelFor(
        "par.spmm_max", 0, n, 32, [&](int64_t vb, int64_t ve, int) {
            for (int64_t v = vb; v < ve; ++v) {
                float *dst = po + v * f;
                int64_t *arg = parg + v * f;
                const int64_t begin = in_index.ptr[v],
                              end = in_index.ptr[v + 1];
                if (begin == end)
                    continue;
                for (int64_t j = 0; j < f; ++j)
                    dst[j] = -std::numeric_limits<float>::infinity();
                for (int64_t k = begin; k < end; ++k) {
                    const int64_t u =
                        in_index.neighbor[static_cast<std::size_t>(k)];
                    const float *row = px + u * f;
                    for (int64_t j = 0; j < f; ++j) {
                        if (row[j] > dst[j]) {
                            dst[j] = row[j];
                            arg[j] = u;
                        }
                    }
                }
            }
        });
    recordSpmm("gspmm_copy_u_max", in_index.numEdges(), f, n, 1.0);
    return out;
}

Tensor
spmmCopyUMaxBackward(const Tensor &grad,
                     const std::vector<int64_t> &arg_src,
                     int64_t num_src_rows)
{
    const int64_t n = grad.dim(0), f = grad.dim(1);
    gnnperf_assert(static_cast<int64_t>(arg_src.size()) == n * f,
                   "spmmCopyUMaxBackward: argmax size mismatch");
    Tensor out = Tensor::zeros({num_src_rows, f}, grad.device());
    const float *pg = grad.data();
    float *po = out.data();
    // Stays serial: the argmax scatter writes arbitrary source rows, so
    // a race-free parallel version would re-scan the whole argmax table
    // per output range — all cost, no speedup at these sizes.
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < f; ++j) {
            const int64_t u = arg_src[static_cast<std::size_t>(i * f + j)];
            if (u >= 0)
                po[u * f + j] += pg[i * f + j];
        }
    }
    recordKernel("gspmm_copy_u_max_bwd",
                 static_cast<double>(grad.numel()),
                 2.0 * static_cast<double>(grad.bytes()));
    return out;
}

Tensor
spmmUMulESum(const CsrIndex &in_index, const Tensor &x, const Tensor &w,
             int64_t heads)
{
    gnnperf_assert(x.rank() == 2 && w.rank() == 2,
                   "spmmUMulESum: rank mismatch");
    gnnperf_assert(w.dim(1) == heads, "spmmUMulESum: weight heads ",
                   w.dim(1), " != ", heads);
    gnnperf_assert(x.dim(1) % heads == 0,
                   "spmmUMulESum: feature width ", x.dim(1),
                   " not divisible by ", heads);
    gnnperf_assert(w.dim(0) == in_index.numEdges(),
                   "spmmUMulESum: ", w.dim(0), " weights for ",
                   in_index.numEdges(), " edges");
    const int64_t n = in_index.numNodes();
    const int64_t f = x.dim(1);
    const int64_t d = f / heads;
    Tensor out = Tensor::zeros({n, f}, x.device());
    const float *px = x.data();
    const float *pw = w.data();
    float *po = out.data();
    par::parallelFor(
        "par.spmm_u_mul_e", 0, n, 32, [&](int64_t vb, int64_t ve, int) {
            for (int64_t v = vb; v < ve; ++v) {
                float *dst = po + v * f;
                for (int64_t k = in_index.ptr[v]; k < in_index.ptr[v + 1];
                     ++k) {
                    const int64_t u =
                        in_index.neighbor[static_cast<std::size_t>(k)];
                    const int64_t e =
                        in_index.edgeId[static_cast<std::size_t>(k)];
                    const float *row = px + u * f;
                    const float *we = pw + e * heads;
                    for (int64_t h = 0; h < heads; ++h) {
                        const float s = we[h];
                        const int64_t base = h * d;
                        for (int64_t j = 0; j < d; ++j)
                            dst[base + j] += s * row[base + j];
                    }
                }
            }
        });
    recordSpmm("gspmm_u_mul_e_sum", in_index.numEdges(), f, n, 2.0);
    return out;
}

Tensor
sddmmDotUV(const std::vector<int64_t> &src,
           const std::vector<int64_t> &dst, const Tensor &a,
           const Tensor &b, int64_t heads)
{
    gnnperf_assert(a.rank() == 2 && b.rank() == 2 &&
                   a.dim(1) == b.dim(1), "sddmmDotUV: shape mismatch");
    gnnperf_assert(a.dim(1) % heads == 0,
                   "sddmmDotUV: width not divisible by heads");
    gnnperf_assert(src.size() == dst.size(), "sddmmDotUV: COO mismatch");
    const int64_t e = static_cast<int64_t>(src.size());
    const int64_t f = a.dim(1);
    const int64_t d = f / heads;
    static stats::Counter &calls = stats::counter("kernel.sddmm.calls");
    static stats::Counter &nnz = stats::counter("kernel.sddmm.nnz");
    calls.inc();
    nnz.inc(static_cast<uint64_t>(e));
    Tensor out({e, heads}, a.device());
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    // Edge-parallel: each edge owns its output element.
    par::parallelFor(
        "par.sddmm_dot", 0, e, 128, [&](int64_t eb, int64_t ee, int) {
            for (int64_t i = eb; i < ee; ++i) {
                const float *ra =
                    pa + src[static_cast<std::size_t>(i)] * f;
                const float *rb =
                    pb + dst[static_cast<std::size_t>(i)] * f;
                for (int64_t h = 0; h < heads; ++h) {
                    float s = 0.0f;
                    const int64_t base = h * d;
                    for (int64_t j = 0; j < d; ++j)
                        s += ra[base + j] * rb[base + j];
                    po[i * heads + h] = s;
                }
            }
        });
    recordKernel("gsddmm_dot_uv", 2.0 * static_cast<double>(e * f),
                 2.0 * static_cast<double>(e * f) * sizeof(float) +
                     static_cast<double>(out.bytes()));
    return out;
}

} // namespace graphops
} // namespace gnnperf
