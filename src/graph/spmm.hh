/**
 * @file
 * Fused generalized sparse-dense matrix kernels — DGL's GSpMM/GSDDMM.
 *
 * The paper (§IV-C) describes GSpMM as fusing "computing messages by
 * the source node and edge features and aggregating the messages as
 * the features on destination nodes into one kernel". These routines
 * traverse a CsrIndex and produce aggregated destination features in a
 * single pass, emitting ONE kernel record each — in contrast to the
 * PyG path, which materialises per-edge messages with gather kernels
 * and reduces with scatter kernels (more launches, more memory
 * traffic, see backends/pyg/pyg_ops.cc).
 *
 * All routines are raw (non-autograd); the DGL backend wires forward
 * and backward pairs (backward of copy_u-sum over the in-index is
 * copy_u-sum over the out-index, etc.).
 */

#ifndef GNNPERF_GRAPH_SPMM_HH
#define GNNPERF_GRAPH_SPMM_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "tensor/tensor.hh"

namespace gnnperf {
namespace graphops {

/** out[v] = Σ_{e:(u→v)} x[u]  — copy_u + sum, fused. */
Tensor spmmCopyUSum(const CsrIndex &in_index, const Tensor &x);

/** out[v] = mean_{e:(u→v)} x[u]  — copy_u + mean, fused. */
Tensor spmmCopyUMean(const CsrIndex &in_index, const Tensor &x);

/**
 * out[v] = max_{e:(u→v)} x[u] elementwise; empty rows are zero.
 * `arg_src` records the winning source-row per output element (-1 when
 * empty) for the backward pass.
 */
Tensor spmmCopyUMax(const CsrIndex &in_index, const Tensor &x,
                    std::vector<int64_t> &arg_src);

/** Backward helper for copy_u-max: route grads to winning sources. */
Tensor spmmCopyUMaxBackward(const Tensor &grad,
                            const std::vector<int64_t> &arg_src,
                            int64_t num_src_rows);

/**
 * out[v, h*D+d] = Σ_{e:(u→v)} w[e,h] · x[u, h*D+d]
 * — u_mul_e + sum with per-head edge weights, fused.
 *
 * @param x [N, heads*D] source features
 * @param w [E, heads] edge weights, indexed by COO edge id
 * @param heads number of heads (1 = plain scalar edge weights)
 */
Tensor spmmUMulESum(const CsrIndex &in_index, const Tensor &x,
                    const Tensor &w, int64_t heads);

/**
 * GSDDMM: per-edge, per-head dot products of endpoint features:
 * out[e,h] = Σ_d a[src_e, h*D+d] · b[dst_e, h*D+d].
 * Used for the edge-weight gradient of u_mul_e-sum and for attention
 * score computation.
 */
Tensor sddmmDotUV(const std::vector<int64_t> &src,
                  const std::vector<int64_t> &dst, const Tensor &a,
                  const Tensor &b, int64_t heads);

} // namespace graphops
} // namespace gnnperf

#endif // GNNPERF_GRAPH_SPMM_HH
