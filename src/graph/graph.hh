/**
 * @file
 * Graph data structures.
 *
 * A Graph stores directed edges in COO form (each undirected edge is
 * stored in both directions, matching how Planetoid/TU datasets are
 * loaded by PyG and DGL). Node features live on the Host device until a
 * batch is moved to the (simulated) GPU. CSR/CSC index structures are
 * built on demand — eagerly by the DGL backend at collation time,
 * never by the PyG backend (whose scatter kernels work on COO).
 */

#ifndef GNNPERF_GRAPH_GRAPH_HH
#define GNNPERF_GRAPH_GRAPH_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnperf {

/**
 * Compressed incidence index over one edge direction.
 *
 * For the "in" orientation: ptr has numNodes+1 entries; for node v,
 * edges [ptr[v], ptr[v+1]) have destination v, with neighbor[k] the
 * source node and edgeId[k] the position of that edge in the COO
 * arrays (so per-edge tensors can be indexed).
 */
struct CsrIndex
{
    std::vector<int64_t> ptr;
    std::vector<int64_t> neighbor;
    std::vector<int64_t> edgeId;

    int64_t numNodes() const
    {
        return static_cast<int64_t>(ptr.size()) - 1;
    }
    int64_t numEdges() const
    {
        return static_cast<int64_t>(neighbor.size());
    }
};

/** Build the index grouping edges by destination (CSC-like). */
CsrIndex buildInIndex(int64_t num_nodes,
                      const std::vector<int64_t> &src,
                      const std::vector<int64_t> &dst);

/** Build the index grouping edges by source (CSR-like). */
CsrIndex buildOutIndex(int64_t num_nodes,
                       const std::vector<int64_t> &src,
                       const std::vector<int64_t> &dst);

/**
 * One graph sample.
 */
struct Graph
{
    int64_t numNodes = 0;
    std::vector<int64_t> edgeSrc;
    std::vector<int64_t> edgeDst;

    /** Node features, [numNodes, F], on the Host device. */
    Tensor x;

    /** Node labels (node classification tasks). */
    std::vector<int64_t> nodeLabels;

    /** Graph label (graph classification tasks), -1 when unused. */
    int64_t graphLabel = -1;

    /** Node coordinates (superpixel datasets), empty when unused. */
    std::vector<float> posX;
    std::vector<float> posY;

    /** Split masks for transductive node tasks (1 = in split). */
    std::vector<uint8_t> trainMask;
    std::vector<uint8_t> valMask;
    std::vector<uint8_t> testMask;

    int64_t numEdges() const
    {
        return static_cast<int64_t>(edgeSrc.size());
    }

    /** Append a directed edge u→v. */
    void addEdge(int64_t u, int64_t v);

    /** Append u→v and v→u. */
    void addUndirectedEdge(int64_t u, int64_t v);

    /** Per-node in-degrees (float tensor on the Host device). */
    Tensor inDegrees() const;

    /** Indices of mask==1 entries. */
    static std::vector<int64_t>
    maskIndices(const std::vector<uint8_t> &mask);
};

} // namespace gnnperf

#endif // GNNPERF_GRAPH_GRAPH_HH
