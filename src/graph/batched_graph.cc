#include "graph/batched_graph.hh"

#include <cmath>

#include "common/logging.hh"
#include "device/profiler.hh"

namespace gnnperf {

void
BatchedGraph::ensureInIndex()
{
    if (!inIndex)
        inIndex = buildInIndex(numNodes, edgeSrc, edgeDst);
}

void
BatchedGraph::ensureOutIndex()
{
    if (!outIndex)
        outIndex = buildOutIndex(numNodes, edgeSrc, edgeDst);
}

Tensor
BatchedGraph::edgePseudoCoordinates() const
{
    gnnperf_assert(inDegrees.defined(),
                   "edgePseudoCoordinates: degrees not computed");
    const int64_t e = numEdges();
    Tensor pseudo({e, 2}, DeviceKind::Cuda);
    const float *deg = inDegrees.data();
    float *p = pseudo.data();
    for (int64_t i = 0; i < e; ++i) {
        const float ds = deg[edgeSrc[static_cast<std::size_t>(i)]];
        const float dd = deg[edgeDst[static_cast<std::size_t>(i)]];
        p[i * 2 + 0] = 1.0f / std::sqrt(ds + 1.0f);
        p[i * 2 + 1] = 1.0f / std::sqrt(dd + 1.0f);
    }
    recordKernel("edge_pseudo", 6.0 * static_cast<double>(e),
                 static_cast<double>(pseudo.bytes()) +
                     2.0 * static_cast<double>(e) * sizeof(int64_t));
    return pseudo;
}

} // namespace gnnperf
