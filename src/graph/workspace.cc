#include "graph/workspace.hh"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "device/allocator.hh"
#include "parallel/thread_pool.hh"

namespace gnnperf {

namespace {

/**
 * Live-workspace registry behind Workspace::releaseAll(). Guarded by
 * its own mutex: workspaces are constructed/destroyed and drained only
 * outside parallel regions, but static init order is arbitrary.
 */
std::mutex &
registryMutex()
{
    static std::mutex mu;
    return mu;
}

std::vector<Workspace *> &
registry()
{
    static std::vector<Workspace *> workspaces;
    return workspaces;
}

} // namespace

Workspace::Workspace(DeviceKind device) : device_(device)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().push_back(this);
}

Workspace::~Workspace()
{
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto &all = registry();
        all.erase(std::find(all.begin(), all.end(), this));
    }
    releaseBlock();
}

void
Workspace::releaseAll()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (Workspace *ws : registry()) {
        gnnperf_assert(!ws->inUse_.load(std::memory_order_acquire),
                       "Workspace::releaseAll with a lease checked out");
        ws->releaseBlock();
    }
}

void
Workspace::releaseBlock()
{
    if (block_ != nullptr) {
        block_->owner->release(block_);
        block_ = nullptr;
        capacity_ = 0;
    }
}

float *
Workspace::ensure(std::size_t count, DeviceKind device)
{
    // The device allocators are single-threaded by design; scratch must
    // be acquired before the parallel launch, never from a worker.
    gnnperf_assert(!par::ThreadPool::inParallelRegion(),
                   "Workspace::ensure inside a parallel region");
    if (block_ == nullptr || capacity_ < count || device != device_) {
        releaseBlock();
        device_ = device;
        const std::size_t grow = std::max(count, capacity_ * 2);
        block_ = DeviceManager::instance()
                     .allocator(device_)
                     .allocate(grow * sizeof(float));
        capacity_ = grow;
    }
    float *p = block_->floats();
    std::memset(p, 0, count * sizeof(float));
    return p;
}

float *
Workspace::ensureSlices(std::size_t count_per_slice, int slices,
                        DeviceKind device)
{
    gnnperf_assert(slices >= 1, "ensureSlices needs >= 1 slice");
    // Pad each slice to a 64-byte multiple so two slots never write the
    // same cacheline.
    constexpr std::size_t kPad = 64 / sizeof(float);
    const std::size_t stride = (count_per_slice + kPad - 1) / kPad * kPad;
    float *p =
        ensure(stride * static_cast<std::size_t>(slices), device);
    sliceStride_ = stride;
    return p;
}

void
Workspace::beginUse()
{
    const bool was = inUse_.exchange(true, std::memory_order_acq_rel);
    gnnperf_assert(!was,
                   "Workspace checked out twice: two kernels are racing "
                   "on one static scratch buffer");
}

void
Workspace::endUse()
{
    inUse_.store(false, std::memory_order_release);
}

} // namespace gnnperf
