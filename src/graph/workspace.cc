#include "graph/workspace.hh"

#include <algorithm>
#include <cstring>

#include "device/allocator.hh"

namespace gnnperf {

Workspace::Workspace(DeviceKind device) : device_(device) {}

Workspace::~Workspace()
{
    releaseBlock();
}

void
Workspace::releaseBlock()
{
    if (block_ != nullptr) {
        block_->owner->release(block_);
        block_ = nullptr;
        capacity_ = 0;
    }
}

float *
Workspace::ensure(std::size_t count, DeviceKind device)
{
    if (block_ == nullptr || capacity_ < count || device != device_) {
        releaseBlock();
        device_ = device;
        const std::size_t grow = std::max(count, capacity_ * 2);
        block_ = DeviceManager::instance()
                     .allocator(device_)
                     .allocate(grow * sizeof(float));
        capacity_ = grow;
    }
    float *p = block_->floats();
    std::memset(p, 0, count * sizeof(float));
    return p;
}

} // namespace gnnperf
