/**
 * @file
 * Scatter-reduce kernels over edge-indexed rows (the torch_scatter
 * primitives PyG builds message passing on). scatter-add lives in
 * tensor/ops.hh because autograd's gather backward needs it; the
 * mean/max variants and index counting live here.
 *
 * All functions are raw (non-autograd) kernels; the PyG backend
 * composes them into differentiable ops.
 */

#ifndef GNNPERF_GRAPH_SCATTER_HH
#define GNNPERF_GRAPH_SCATTER_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnperf {
namespace graphops {

/** Number of contributions per output row: out[r] = |{e : idx[e]=r}|. */
Tensor indexCounts(const std::vector<int64_t> &idx, int64_t num_rows);

/**
 * out[idx[e]] = mean of src rows mapped to that output row; rows with
 * no contribution are zero.
 */
Tensor scatterMeanRows(const Tensor &src,
                       const std::vector<int64_t> &idx,
                       int64_t num_rows);

/**
 * out[idx[e]] = elementwise max over src rows mapped there; rows with
 * no contribution are zero (PyG semantics for empty reductions is a
 * fill value — zero matches the models' usage). `argmax` receives, per
 * output element, the index e of the winning source row or -1.
 */
Tensor scatterMaxRows(const Tensor &src,
                      const std::vector<int64_t> &idx, int64_t num_rows,
                      std::vector<int64_t> &argmax);

/**
 * Backward helper for scatter-max: routes grad rows back to the
 * winning source rows recorded in `argmax`.
 */
Tensor scatterMaxBackward(const Tensor &grad,
                          const std::vector<int64_t> &argmax,
                          int64_t num_src_rows);

} // namespace graphops
} // namespace gnnperf

#endif // GNNPERF_GRAPH_SCATTER_HH
