/**
 * @file
 * Reusable scratch workspaces for graph kernels.
 *
 * Graph kernels need small per-node scratch buffers (softmax maxima,
 * denominators, accumulators). Materialising a std::vector per call
 * pays malloc on every kernel launch; a Workspace instead acquires a
 * block from the device's active allocator and grows it geometrically,
 * so repeated launches with the same shapes hit the allocator cache
 * (or, for a long-lived workspace, reuse the very same block).
 */

#ifndef GNNPERF_GRAPH_WORKSPACE_HH
#define GNNPERF_GRAPH_WORKSPACE_HH

#include <cstddef>

#include "device/device.hh"

namespace gnnperf {

struct MemoryBlock;

/** A float scratch buffer leased from a device allocator. */
class Workspace
{
  public:
    explicit Workspace(DeviceKind device = DeviceKind::Cuda);
    ~Workspace();

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    /**
     * A buffer holding at least `count` floats on `device`, zeroed up
     * to `count`. Grows geometrically; the pointer is stable until the
     * next ensure() call.
     */
    float *ensure(std::size_t count, DeviceKind device);

    std::size_t capacity() const { return capacity_; }

  private:
    void releaseBlock();

    MemoryBlock *block_ = nullptr;
    std::size_t capacity_ = 0; ///< floats
    DeviceKind device_;
};

} // namespace gnnperf

#endif // GNNPERF_GRAPH_WORKSPACE_HH
