/**
 * @file
 * Reusable scratch workspaces for graph kernels.
 *
 * Graph kernels need small per-node scratch buffers (softmax maxima,
 * denominators, accumulators). Materialising a std::vector per call
 * pays malloc on every kernel launch; a Workspace instead acquires a
 * block from the device's active allocator and grows it geometrically,
 * so repeated launches with the same shapes hit the allocator cache
 * (or, for a long-lived workspace, reuse the very same block).
 *
 * Parallel kernels (src/parallel/) must not share one scratch buffer
 * across worker threads. ensureSlices() hands out one cacheline-padded
 * slice per pool slot, acquired in a single allocator call *before*
 * the parallel launch (the device allocator is not thread-safe, and
 * ensure() asserts it is never entered from inside a parallel region).
 * A WorkspaceLease additionally catches two kernels checking out the
 * same static workspace concurrently.
 */

#ifndef GNNPERF_GRAPH_WORKSPACE_HH
#define GNNPERF_GRAPH_WORKSPACE_HH

#include <atomic>
#include <cstddef>

#include "device/device.hh"

namespace gnnperf {

struct MemoryBlock;

/** A float scratch buffer leased from a device allocator. */
class Workspace
{
  public:
    explicit Workspace(DeviceKind device = DeviceKind::Cuda);
    ~Workspace();

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    /**
     * A buffer holding at least `count` floats on `device`, zeroed up
     * to `count`. Grows geometrically; the pointer is stable until the
     * next ensure() call. Must be called outside parallel regions.
     */
    float *ensure(std::size_t count, DeviceKind device);

    /**
     * One zeroed slice of at least `count_per_slice` floats for each
     * of `slices` pool slots, from a single allocator acquisition.
     * Slices are padded to a 64-byte multiple so concurrent writers
     * never share a cacheline; slice i starts at the returned pointer
     * + i * sliceStride().
     */
    float *ensureSlices(std::size_t count_per_slice, int slices,
                        DeviceKind device);

    /** Floats between consecutive slices of the last ensureSlices(). */
    std::size_t sliceStride() const { return sliceStride_; }

    std::size_t capacity() const { return capacity_; }

    /**
     * Debug lease: mark the workspace checked out / returned. A second
     * checkout while one is live — two kernels racing on one static
     * scratch buffer — trips an assertion. Use via WorkspaceLease.
     */
    void beginUse();
    void endUse();

    /**
     * Release the blocks of every live Workspace (they re-acquire on
     * their next ensure()). The test main calls this before its
     * process-exit leak check, so intentionally retained scratch does
     * not mask a real leak. Must be called outside parallel regions
     * and with no lease checked out.
     */
    static void releaseAll();

  private:
    void releaseBlock();

    MemoryBlock *block_ = nullptr;
    std::size_t capacity_ = 0; ///< floats
    std::size_t sliceStride_ = 0;
    DeviceKind device_;
    std::atomic<bool> inUse_{false};
};

/** RAII exclusive-use guard over a (typically static) Workspace. */
class WorkspaceLease
{
  public:
    explicit WorkspaceLease(Workspace &ws) : ws_(ws) { ws_.beginUse(); }
    ~WorkspaceLease() { ws_.endUse(); }

    WorkspaceLease(const WorkspaceLease &) = delete;
    WorkspaceLease &operator=(const WorkspaceLease &) = delete;

  private:
    Workspace &ws_;
};

} // namespace gnnperf

#endif // GNNPERF_GRAPH_WORKSPACE_HH
