/**
 * @file
 * A mini-batch of graphs collated into one big disconnected graph.
 *
 * Both frameworks train graph-classification tasks this way (paper
 * §IV-C): node features are concatenated, edge indices offset, and a
 * batch vector maps each node back to its original graph. The two
 * backends produce structurally identical BatchedGraphs but do very
 * different amounts of work to get there — PyG's collation is feature
 * concatenation plus index offsets; DGL's builds heterograph metadata
 * and eagerly materialises both edge orientations (see
 * backends/dgl/dgl_collate.cc).
 */

#ifndef GNNPERF_GRAPH_BATCHED_GRAPH_HH
#define GNNPERF_GRAPH_BATCHED_GRAPH_HH

#include <optional>
#include <vector>

#include "graph/graph.hh"

namespace gnnperf {

/**
 * Collated batch (also used for single-graph node tasks with
 * numGraphs == 1).
 */
struct BatchedGraph
{
    int64_t numNodes = 0;
    int64_t numGraphs = 0;
    std::vector<int64_t> edgeSrc;
    std::vector<int64_t> edgeDst;

    /** Node features [numNodes, F] on the simulated GPU. */
    Tensor x;

    /** node → graph id, size numNodes. */
    std::vector<int64_t> nodeGraph;

    /** Node offsets per graph, size numGraphs + 1. */
    std::vector<int64_t> graphPtr;

    /** Graph labels (graph tasks), size numGraphs. */
    std::vector<int64_t> graphLabels;

    /** Node labels (node tasks). */
    std::vector<int64_t> nodeLabels;

    /** Split index lists for transductive node tasks. */
    std::vector<int64_t> trainIdx, valIdx, testIdx;

    /** In-degrees [numNodes] on the device (used by GCN/MoNet). */
    Tensor inDegrees;

    /**
     * Incidence indexes. The DGL collation fills both eagerly (its
     * heterograph materialises all formats); the PyG path leaves them
     * empty and its kernels work directly on COO.
     */
    std::optional<CsrIndex> inIndex;
    std::optional<CsrIndex> outIndex;

    /** DGL marks batches that went through heterograph handling. */
    bool heteroProcessed = false;

    /**
     * Device-resident graph-structure buffers, kept only for memory
     * accounting: PyG stores the COO edge index on the GPU; DGL
     * materialises COO + CSR + CSC. One float here stands for four
     * bytes of structure storage.
     */
    std::vector<Tensor> deviceStructures;

    int64_t numEdges() const
    {
        return static_cast<int64_t>(edgeSrc.size());
    }

    /** Bytes of the node-feature payload (DataParallel model input). */
    double featureBytes() const
    {
        return x.defined() ? static_cast<double>(x.bytes()) : 0.0;
    }

    /** Ensure inIndex / outIndex exist (idempotent). */
    void ensureInIndex();
    void ensureOutIndex();

    /**
     * MoNet pseudo-coordinates u_ij = (deg_i^-1/2, deg_j^-1/2)
     * computed per edge, [E, 2] on the device. A kernel record is
     * emitted (both frameworks compute this on the GPU).
     */
    Tensor edgePseudoCoordinates() const;
};

} // namespace gnnperf

#endif // GNNPERF_GRAPH_BATCHED_GRAPH_HH
