/**
 * @file
 * Segment reduction over contiguous node ranges — DGL's
 * segment_reduce operator, used by its readout/pooling (paper §IV-C:
 * "in DGL, the pooling operation is based on their segment reduction
 * operator").
 *
 * Nodes of a collated batch are contiguous per graph, so the readout
 * mean over graph g reduces rows [ptr[g], ptr[g+1]).
 */

#ifndef GNNPERF_GRAPH_SEGMENT_HH
#define GNNPERF_GRAPH_SEGMENT_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnperf {
namespace graphops {

/** out[g] = mean of x rows in [ptr[g], ptr[g+1]); one fused kernel. */
Tensor segmentMean(const Tensor &x, const std::vector<int64_t> &ptr);

/** out[g] = sum of x rows in [ptr[g], ptr[g+1]); one fused kernel. */
Tensor segmentSum(const Tensor &x, const std::vector<int64_t> &ptr);

/**
 * Backward of segmentMean: broadcast each segment's gradient back to
 * its rows, divided by the segment length.
 */
Tensor segmentMeanBackward(const Tensor &grad,
                           const std::vector<int64_t> &ptr);

/** Backward of segmentSum: broadcast each segment's gradient. */
Tensor segmentSumBackward(const Tensor &grad,
                          const std::vector<int64_t> &ptr);

} // namespace graphops
} // namespace gnnperf

#endif // GNNPERF_GRAPH_SEGMENT_HH
