#include "graph/graph.hh"

#include "common/logging.hh"

namespace gnnperf {

namespace {

CsrIndex
buildIndexBy(int64_t num_nodes, const std::vector<int64_t> &key,
             const std::vector<int64_t> &other)
{
    gnnperf_assert(key.size() == other.size(),
                   "buildIndex: src/dst size mismatch");
    CsrIndex index;
    index.ptr.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
    for (int64_t k : key) {
        gnnperf_assert(k >= 0 && k < num_nodes, "edge endpoint ", k,
                       " out of ", num_nodes);
        ++index.ptr[static_cast<std::size_t>(k) + 1];
    }
    for (std::size_t v = 1; v < index.ptr.size(); ++v)
        index.ptr[v] += index.ptr[v - 1];
    index.neighbor.resize(key.size());
    index.edgeId.resize(key.size());
    std::vector<int64_t> cursor(index.ptr.begin(), index.ptr.end() - 1);
    for (std::size_t e = 0; e < key.size(); ++e) {
        const auto slot = static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(key[e])]++);
        index.neighbor[slot] = other[e];
        index.edgeId[slot] = static_cast<int64_t>(e);
    }
    return index;
}

} // namespace

CsrIndex
buildInIndex(int64_t num_nodes, const std::vector<int64_t> &src,
             const std::vector<int64_t> &dst)
{
    return buildIndexBy(num_nodes, dst, src);
}

CsrIndex
buildOutIndex(int64_t num_nodes, const std::vector<int64_t> &src,
              const std::vector<int64_t> &dst)
{
    return buildIndexBy(num_nodes, src, dst);
}

void
Graph::addEdge(int64_t u, int64_t v)
{
    gnnperf_assert(u >= 0 && u < numNodes && v >= 0 && v < numNodes,
                   "addEdge(", u, ",", v, ") out of ", numNodes);
    edgeSrc.push_back(u);
    edgeDst.push_back(v);
}

void
Graph::addUndirectedEdge(int64_t u, int64_t v)
{
    addEdge(u, v);
    addEdge(v, u);
}

Tensor
Graph::inDegrees() const
{
    Tensor deg = Tensor::zeros({numNodes}, DeviceKind::Host);
    float *p = deg.data();
    for (int64_t v : edgeDst)
        p[v] += 1.0f;
    return deg;
}

std::vector<int64_t>
Graph::maskIndices(const std::vector<uint8_t> &mask)
{
    std::vector<int64_t> out;
    for (std::size_t i = 0; i < mask.size(); ++i)
        if (mask[i])
            out.push_back(static_cast<int64_t>(i));
    return out;
}

} // namespace gnnperf
