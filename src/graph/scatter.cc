#include "graph/scatter.hh"

#include <limits>

#include "common/logging.hh"
#include "device/profiler.hh"
#include "obs/stats.hh"
#include "parallel/thread_pool.hh"
#include "parallel/write_check.hh"
#include "tensor/ops.hh"

namespace gnnperf {
namespace graphops {

Tensor
indexCounts(const std::vector<int64_t> &idx, int64_t num_rows)
{
    Tensor counts = Tensor::zeros({num_rows});
    float *p = counts.data();
    for (int64_t r : idx) {
        gnnperf_assert(r >= 0 && r < num_rows, "indexCounts: index ", r,
                       " out of ", num_rows);
        p[r] += 1.0f;
    }
    recordKernel("index_count", static_cast<double>(idx.size()),
                 static_cast<double>(idx.size()) * sizeof(int64_t) +
                     static_cast<double>(counts.bytes()));
    return counts;
}

Tensor
scatterMeanRows(const Tensor &src, const std::vector<int64_t> &idx,
                int64_t num_rows)
{
    Tensor sum = ops::scatterAddRows(src, idx, num_rows);
    Tensor counts = indexCounts(idx, num_rows);
    // Avoid division by zero for isolated rows.
    float *pc = counts.data();
    for (int64_t i = 0; i < num_rows; ++i)
        if (pc[i] == 0.0f)
            pc[i] = 1.0f;
    return ops::divCols(sum, counts);
}

Tensor
scatterMaxRows(const Tensor &src, const std::vector<int64_t> &idx,
               int64_t num_rows, std::vector<int64_t> &argmax)
{
    gnnperf_assert(src.rank() == 2, "scatterMaxRows on rank ",
                   src.rank());
    gnnperf_assert(static_cast<int64_t>(idx.size()) == src.dim(0),
                   "scatterMaxRows: index/source mismatch");
    const int64_t f = src.dim(1);
    static stats::Counter &calls = stats::counter("kernel.scatter.calls");
    static stats::Distribution &rows =
        stats::distribution("kernel.scatter.rows");
    calls.inc();
    rows.sample(static_cast<double>(num_rows));
    Tensor out = Tensor::full({num_rows, f},
                              -std::numeric_limits<float>::infinity(),
                              src.device());
    argmax.assign(static_cast<std::size_t>(num_rows * f), -1);
    const float *ps = src.data();
    float *po = out.data();
    int64_t *parg = argmax.data();
    const int64_t ne = static_cast<int64_t>(idx.size());
    for (std::size_t e = 0; e < idx.size(); ++e)
        gnnperf_assert(idx[e] >= 0 && idx[e] < num_rows,
                       "scatterMaxRows: index ", idx[e], " out of ",
                       num_rows);
    // Output-range partition: every chunk scans the full index vector
    // in edge order but only writes rows inside its range, so the
    // per-row update sequence — and therefore ties in the max — match
    // the serial scan exactly. One chunk per thread (grainFor(.., 1)):
    // each extra chunk re-reads the whole index vector.
    //
    // Checked builds declare the sparse written row set: rows with no
    // incoming edges stay unwritten (requireCover(false)), but the
    // rows each chunk did touch must be disjoint from every other
    // chunk's.
    par::WriteSet ws("scatter_max", num_rows);
    ws.requireCover(false);
    par::parallelFor(
        "par.scatter_max", 0, num_rows, par::grainFor(num_rows, 1),
        [&](int64_t rb, int64_t re, int slot) {
            for (int64_t e = 0; e < ne; ++e) {
                const int64_t r = idx[static_cast<std::size_t>(e)];
                if (r < rb || r >= re)
                    continue;
                const float *row = ps + e * f;
                float *dst = po + r * f;
                int64_t *arg = parg + r * f;
                for (int64_t j = 0; j < f; ++j) {
                    if (row[j] > dst[j]) {
                        dst[j] = row[j];
                        arg[j] = e;
                    }
                }
            }
            if (ws.active()) {
                // Note contiguous runs of touched rows (argmax set for
                // any column) once per run, after the edge scan.
                int64_t run = -1;
                for (int64_t r = rb; r < re; ++r) {
                    bool written = false;
                    const int64_t *arg = parg + r * f;
                    for (int64_t j = 0; j < f && !written; ++j)
                        written = arg[j] >= 0;
                    if (written && run < 0)
                        run = r;
                    else if (!written && run >= 0) {
                        ws.note(slot, run, r);
                        run = -1;
                    }
                }
                if (run >= 0)
                    ws.note(slot, run, re);
            }
        });
    // Empty rows: replace -inf with 0.
    par::parallelFor(
        "par.scatter_max_fill", 0, num_rows * f, 16384,
        [&](int64_t b, int64_t e2, int) {
            for (int64_t i = b; i < e2; ++i)
                if (po[i] == -std::numeric_limits<float>::infinity())
                    po[i] = 0.0f;
        });
    recordKernel("scatter_max", static_cast<double>(src.numel()),
                 2.0 * static_cast<double>(src.bytes()) +
                     static_cast<double>(out.bytes()));
    return out;
}

Tensor
scatterMaxBackward(const Tensor &grad, const std::vector<int64_t> &argmax,
                   int64_t num_src_rows)
{
    gnnperf_assert(grad.rank() == 2, "scatterMaxBackward on rank ",
                   grad.rank());
    const int64_t f = grad.dim(1);
    gnnperf_assert(static_cast<int64_t>(argmax.size()) ==
                   grad.dim(0) * f, "scatterMaxBackward: argmax size");
    Tensor out = Tensor::zeros({num_src_rows, f}, grad.device());
    const float *pg = grad.data();
    float *po = out.data();
    // Stays serial: parallelising this argmax scatter would re-scan the
    // whole table per output range (see spmmCopyUMaxBackward).
    for (int64_t i = 0; i < grad.dim(0); ++i) {
        for (int64_t j = 0; j < f; ++j) {
            const int64_t e = argmax[static_cast<std::size_t>(i * f + j)];
            if (e >= 0)
                po[e * f + j] += pg[i * f + j];
        }
    }
    recordKernel("scatter_max_bwd", static_cast<double>(grad.numel()),
                 2.0 * static_cast<double>(grad.bytes()));
    return out;
}

} // namespace graphops
} // namespace gnnperf
