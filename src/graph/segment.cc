#include "graph/segment.hh"

#include "common/logging.hh"
#include "device/profiler.hh"
#include "obs/stats.hh"
#include "parallel/thread_pool.hh"
#include "parallel/write_check.hh"

namespace gnnperf {
namespace graphops {

namespace {

Tensor
segmentReduce(const Tensor &x, const std::vector<int64_t> &ptr,
              bool mean, const char *name)
{
    gnnperf_assert(x.rank() == 2, "segmentReduce on rank ", x.rank());
    gnnperf_assert(!ptr.empty() && ptr.front() == 0 &&
                   ptr.back() == x.dim(0),
                   "segmentReduce: bad segment pointer");
    const int64_t b = static_cast<int64_t>(ptr.size()) - 1;
    static stats::Counter &calls = stats::counter("kernel.segment.calls");
    static stats::Counter &segments =
        stats::counter("kernel.segment.segments");
    calls.inc();
    segments.inc(static_cast<uint64_t>(b));
    const int64_t f = x.dim(1);
    Tensor out = Tensor::zeros({b, f}, x.device());
    const float *px = x.data();
    float *po = out.data();
    // Segment-parallel: each graph owns its output row. Graph sizes in
    // a batch are power-law skewed, so a small grain leaves room for
    // stealing.
    par::parallelFor(
        "par.segment_reduce", 0, b, 16,
        [&](int64_t gb, int64_t ge, int) {
            for (int64_t g = gb; g < ge; ++g) {
                float *dst = po + g * f;
                const int64_t begin = ptr[static_cast<std::size_t>(g)];
                const int64_t end = ptr[static_cast<std::size_t>(g) + 1];
                for (int64_t i = begin; i < end; ++i) {
                    const float *row = px + i * f;
                    for (int64_t j = 0; j < f; ++j)
                        dst[j] += row[j];
                }
                if (mean && end > begin) {
                    const float inv =
                        1.0f / static_cast<float>(end - begin);
                    for (int64_t j = 0; j < f; ++j)
                        dst[j] *= inv;
                }
            }
        });
    recordKernel(name, static_cast<double>(x.numel()),
                 static_cast<double>(x.bytes()) +
                     static_cast<double>(out.bytes()));
    return out;
}

Tensor
segmentBroadcast(const Tensor &grad, const std::vector<int64_t> &ptr,
                 bool mean, const char *name)
{
    gnnperf_assert(grad.rank() == 2, "segmentBroadcast on rank ",
                   grad.rank());
    gnnperf_assert(static_cast<int64_t>(ptr.size()) == grad.dim(0) + 1,
                   "segmentBroadcast: bad segment pointer");
    const int64_t b = grad.dim(0);
    const int64_t f = grad.dim(1);
    const int64_t n = ptr.back();
    Tensor out = Tensor::zeros({n, f}, grad.device());
    const float *pg = grad.data();
    float *po = out.data();
    // Segments are disjoint node ranges, so per-graph chunks write
    // disjoint output rows. The launch iterates graphs but writes the
    // ptr-derived *node-row* ranges, so checked builds verify those
    // ranges tile [0, n) exactly — a non-monotonic segment pointer
    // aborts here instead of racing.
    par::WriteSet ws(name, n);
    par::parallelFor(
        "par.segment_bcast", 0, b, 16,
        [&](int64_t gb, int64_t ge, int slot) {
            for (int64_t g = gb; g < ge; ++g) {
                const int64_t begin = ptr[static_cast<std::size_t>(g)];
                const int64_t end = ptr[static_cast<std::size_t>(g) + 1];
                const float scale =
                    mean && end > begin
                        ? 1.0f / static_cast<float>(end - begin) : 1.0f;
                const float *row = pg + g * f;
                for (int64_t i = begin; i < end; ++i) {
                    float *dst = po + i * f;
                    for (int64_t j = 0; j < f; ++j)
                        dst[j] = row[j] * scale;
                }
                if (end > begin)
                    ws.note(slot, begin, end);
            }
        });
    recordKernel(name, static_cast<double>(out.numel()),
                 static_cast<double>(grad.bytes()) +
                     static_cast<double>(out.bytes()));
    return out;
}

} // namespace

Tensor
segmentMean(const Tensor &x, const std::vector<int64_t> &ptr)
{
    return segmentReduce(x, ptr, true, "segment_mean");
}

Tensor
segmentSum(const Tensor &x, const std::vector<int64_t> &ptr)
{
    return segmentReduce(x, ptr, false, "segment_sum");
}

Tensor
segmentMeanBackward(const Tensor &grad, const std::vector<int64_t> &ptr)
{
    return segmentBroadcast(grad, ptr, true, "segment_mean_bwd");
}

Tensor
segmentSumBackward(const Tensor &grad, const std::vector<int64_t> &ptr)
{
    return segmentBroadcast(grad, ptr, false, "segment_sum_bwd");
}

} // namespace graphops
} // namespace gnnperf
