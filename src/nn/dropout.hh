/**
 * @file
 * Dropout module holding its own deterministic mask stream.
 */

#ifndef GNNPERF_NN_DROPOUT_HH
#define GNNPERF_NN_DROPOUT_HH

#include "common/random.hh"
#include "nn/module.hh"

namespace gnnperf {
namespace nn {

/**
 * Inverted dropout; inactive in eval mode or when p == 0.
 */
class Dropout : public Module
{
  public:
    /**
     * @param p drop probability
     * @param rng seed stream (one fresh mask seed is drawn per call)
     */
    Dropout(float p, Rng &rng);

    /** Apply dropout according to the current train/eval mode. */
    Var forward(const Var &x);

    float p() const { return p_; }

  private:
    float p_;
    Rng maskSeeds_;
};

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_DROPOUT_HH
