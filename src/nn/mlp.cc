#include "nn/mlp.hh"

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gnnperf {
namespace nn {

Mlp::Mlp(const std::vector<int64_t> &sizes, Activation act, Rng &rng)
    : act_(act)
{
    gnnperf_assert(sizes.size() >= 2, "Mlp needs at least in+out sizes");
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        layers_.push_back(
            std::make_unique<Linear>(sizes[i], sizes[i + 1], rng));
        registerModule(strprintf("fc%zu", i), layers_.back().get());
    }
}

Var
Mlp::forward(const Var &x) const
{
    Var h = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i]->forward(h);
        if (i + 1 < layers_.size())
            h = applyActivation(act_, h);
    }
    return h;
}

MlpReadout::MlpReadout(int64_t in_features, int64_t num_classes,
                       Rng &rng, int levels)
{
    gnnperf_assert(levels >= 0, "MlpReadout: negative levels");
    int64_t width = in_features;
    for (int i = 0; i < levels; ++i) {
        int64_t next = std::max<int64_t>(width / 2, num_classes);
        layers_.push_back(std::make_unique<Linear>(width, next, rng));
        registerModule(strprintf("fc%d", i), layers_.back().get());
        width = next;
    }
    layers_.push_back(std::make_unique<Linear>(width, num_classes, rng));
    registerModule(strprintf("fc%d", levels), layers_.back().get());
}

Var
MlpReadout::forward(const Var &x) const
{
    Var h = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i]->forward(h);
        if (i + 1 < layers_.size())
            h = applyActivation(Activation::ReLU, h);
    }
    return h;
}

} // namespace nn
} // namespace gnnperf
