/**
 * @file
 * Adam optimizer (Kingma & Ba, 2015) — the paper uses Adam for every
 * experiment (§III-C). The step emits per-parameter "adam_update"
 * kernel records, which populate the Update slice of the epoch-time
 * breakdown (paper Figs. 1/2).
 */

#ifndef GNNPERF_NN_OPTIMIZER_HH
#define GNNPERF_NN_OPTIMIZER_HH

#include <vector>

#include "autograd/variable.hh"

namespace gnnperf {
namespace nn {

/**
 * Adam with optional decoupled weight decay.
 */
class Adam
{
  public:
    /**
     * @param params parameters to optimise (state is per-parameter)
     * @param lr learning rate
     * @param beta1 first-moment decay
     * @param beta2 second-moment decay
     * @param eps denominator stabiliser
     * @param weight_decay L2 coefficient (0 = off)
     */
    explicit Adam(std::vector<Var> params, float lr = 1e-3f,
                  float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f, float weight_decay = 0.0f);

    /** Apply one update from the parameters' current gradients. */
    void step();

    /** Clear all parameter gradients. */
    void zeroGrad();

    float learningRate() const { return lr_; }
    void setLearningRate(float lr) { lr_ = lr; }

    int64_t stepCount() const { return t_; }

  private:
    std::vector<Var> params_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    float weightDecay_;
    int64_t t_ = 0;
};

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_OPTIMIZER_HH
