/**
 * @file
 * Base class for neural network modules.
 *
 * Mirrors torch.nn.Module at the granularity the workloads need:
 * parameter registration with recursive collection, train/eval mode,
 * and gradient zeroing. Modules are owned by their parents via
 * unique_ptr or as direct members; registerModule() stores a non-owning
 * pointer for traversal only.
 */

#ifndef GNNPERF_NN_MODULE_HH
#define GNNPERF_NN_MODULE_HH

#include <string>
#include <vector>

#include "autograd/variable.hh"

namespace gnnperf {
namespace nn {

/** A named trainable parameter. */
struct NamedParameter
{
    std::string name;
    Var var;
};

/** A named non-trainable buffer (e.g. batch-norm running stats). */
struct NamedBuffer
{
    std::string name;
    Tensor *tensor;
};

/**
 * Base class for all NN modules.
 */
class Module
{
  public:
    virtual ~Module() = default;

    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** All trainable parameters, including those of submodules. */
    std::vector<Var> parameters() const;

    /** All parameters with hierarchical names ("conv1.weight", ...). */
    std::vector<NamedParameter> namedParameters() const;

    /** All non-trainable buffers with hierarchical names. */
    std::vector<NamedBuffer> namedBuffers() const;

    /** Total scalar parameter count. */
    int64_t parameterCount() const;

    /** Total parameter bytes (for the DataParallel transfer model). */
    double parameterBytes() const;

    /** Set train/eval mode recursively. */
    void train(bool mode = true);
    bool training() const { return training_; }

    /** Zero all parameter gradients. */
    void zeroGrad();

  protected:
    /** Register a trainable parameter (requiresGrad is forced on). */
    Var registerParameter(std::string name, Tensor value);

    /** Register a child module for recursive traversal (non-owning). */
    void registerModule(std::string name, Module *child);

    /**
     * Register a persistent non-trainable buffer. The tensor must be
     * a member of this module (the pointer is stored for state
     * save/restore).
     */
    void registerBuffer(std::string name, Tensor *tensor);

  private:
    std::vector<NamedParameter> params_;
    std::vector<NamedBuffer> buffers_;
    std::vector<std::pair<std::string, Module *>> children_;
    bool training_ = true;

    void collect(const std::string &prefix,
                 std::vector<NamedParameter> &out) const;
    void collectBuffers(const std::string &prefix,
                        std::vector<NamedBuffer> &out) const;
};

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_MODULE_HH
