/**
 * @file
 * ReduceLROnPlateau learning-rate schedule.
 *
 * The paper's graph-classification protocol (§IV-B): the learning rate
 * is halved when the validation loss has not improved for `patience`
 * epochs, and training stops once it decays to `min_lr` or less.
 */

#ifndef GNNPERF_NN_LR_SCHEDULER_HH
#define GNNPERF_NN_LR_SCHEDULER_HH

#include "nn/optimizer.hh"

namespace gnnperf {
namespace nn {

/**
 * Halve-on-plateau scheduler with a stopping signal.
 */
class ReduceLROnPlateau
{
  public:
    /**
     * @param optimizer optimizer whose learning rate is managed
     * @param factor multiplicative decay (paper: 0.5)
     * @param patience epochs without improvement before decaying
     *        (paper: 25)
     * @param min_lr stopping learning rate (paper: 1e-6)
     */
    ReduceLROnPlateau(Adam &optimizer, float factor = 0.5f,
                      int patience = 25, float min_lr = 1e-6f);

    /** Report a validation loss; decays the LR on plateau. */
    void step(double val_loss);

    /** True once the LR has decayed to min_lr or below. */
    bool shouldStop() const;

    int badEpochs() const { return badEpochs_; }
    double bestLoss() const { return bestLoss_; }

  private:
    Adam &optimizer_;
    float factor_;
    int patience_;
    float minLr_;
    double bestLoss_;
    int badEpochs_ = 0;
};

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_LR_SCHEDULER_HH
