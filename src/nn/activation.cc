#include "nn/activation.hh"

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gnnperf {
namespace nn {

Var
applyActivation(Activation act, const Var &x)
{
    switch (act) {
      case Activation::None: return x;
      case Activation::ReLU: return fn::relu(x);
      case Activation::ELU: return fn::elu(x);
      case Activation::LeakyReLU: return fn::leakyRelu(x);
      case Activation::Sigmoid: return fn::sigmoid(x);
      case Activation::Tanh: return fn::tanhV(x);
    }
    gnnperf_panic("unknown activation");
}

Activation
activationFromName(const std::string &name)
{
    if (iequals(name, "none")) return Activation::None;
    if (iequals(name, "relu")) return Activation::ReLU;
    if (iequals(name, "elu")) return Activation::ELU;
    if (iequals(name, "leaky_relu")) return Activation::LeakyReLU;
    if (iequals(name, "sigmoid")) return Activation::Sigmoid;
    if (iequals(name, "tanh")) return Activation::Tanh;
    gnnperf_fatal("unknown activation name: ", name);
}

const char *
activationName(Activation act)
{
    switch (act) {
      case Activation::None: return "none";
      case Activation::ReLU: return "relu";
      case Activation::ELU: return "elu";
      case Activation::LeakyReLU: return "leaky_relu";
      case Activation::Sigmoid: return "sigmoid";
      case Activation::Tanh: return "tanh";
    }
    return "?";
}

} // namespace nn
} // namespace gnnperf
