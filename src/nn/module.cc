#include "nn/module.hh"

#include "common/logging.hh"

namespace gnnperf {
namespace nn {

std::vector<Var>
Module::parameters() const
{
    std::vector<NamedParameter> named;
    collect("", named);
    std::vector<Var> out;
    out.reserve(named.size());
    for (auto &np : named)
        out.push_back(np.var);
    return out;
}

std::vector<NamedParameter>
Module::namedParameters() const
{
    std::vector<NamedParameter> named;
    collect("", named);
    return named;
}

int64_t
Module::parameterCount() const
{
    int64_t n = 0;
    for (const auto &p : parameters())
        n += p.numel();
    return n;
}

double
Module::parameterBytes() const
{
    return static_cast<double>(parameterCount()) * sizeof(float);
}

void
Module::train(bool mode)
{
    training_ = mode;
    for (auto &[name, child] : children_)
        child->train(mode);
}

void
Module::zeroGrad()
{
    for (auto &p : parameters())
        p.zeroGrad();
}

Var
Module::registerParameter(std::string name, Tensor value)
{
    Var v(std::move(value), /*requires_grad=*/true);
    params_.push_back(NamedParameter{std::move(name), v});
    return v;
}

void
Module::registerModule(std::string name, Module *child)
{
    gnnperf_assert(child != nullptr, "registerModule(nullptr)");
    gnnperf_assert(child != this, "registerModule(this)");
    children_.emplace_back(std::move(name), child);
}

void
Module::registerBuffer(std::string name, Tensor *tensor)
{
    gnnperf_assert(tensor != nullptr, "registerBuffer(nullptr)");
    buffers_.push_back(NamedBuffer{std::move(name), tensor});
}

std::vector<NamedBuffer>
Module::namedBuffers() const
{
    std::vector<NamedBuffer> out;
    collectBuffers("", out);
    return out;
}

void
Module::collectBuffers(const std::string &prefix,
                       std::vector<NamedBuffer> &out) const
{
    for (const auto &nb : buffers_) {
        out.push_back(NamedBuffer{
            prefix.empty() ? nb.name : prefix + "." + nb.name,
            nb.tensor});
    }
    for (const auto &[name, child] : children_) {
        child->collectBuffers(prefix.empty() ? name
                                             : prefix + "." + name,
                              out);
    }
}

void
Module::collect(const std::string &prefix,
                std::vector<NamedParameter> &out) const
{
    for (const auto &np : params_) {
        out.push_back(NamedParameter{
            prefix.empty() ? np.name : prefix + "." + np.name, np.var});
    }
    for (const auto &[name, child] : children_) {
        child->collect(prefix.empty() ? name : prefix + "." + name, out);
    }
}

} // namespace nn
} // namespace gnnperf
