/**
 * @file
 * Activation selection shared by configurable modules (MLP, conv
 * layers). The individual activation functions live in
 * autograd/functions.hh; this header provides an enum + apply helper
 * so activations can be chosen from configuration.
 */

#ifndef GNNPERF_NN_ACTIVATION_HH
#define GNNPERF_NN_ACTIVATION_HH

#include <string>

#include "autograd/variable.hh"

namespace gnnperf {
namespace nn {

/** Supported activations. */
enum class Activation { None, ReLU, ELU, LeakyReLU, Sigmoid, Tanh };

/** Apply an activation. */
Var applyActivation(Activation act, const Var &x);

/** Name → enum ("relu", "elu", ...), fatal on unknown names. */
Activation activationFromName(const std::string &name);

/** Enum → name. */
const char *activationName(Activation act);

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_ACTIVATION_HH
