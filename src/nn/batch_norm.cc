#include "nn/batch_norm.hh"

#include <cmath>

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "device/profiler.hh"
#include "tensor/ops.hh"

namespace gnnperf {
namespace nn {

using autograd::Node;

BatchNorm1d::BatchNorm1d(int64_t num_features, float eps, float momentum)
    : numFeatures_(num_features), eps_(eps), momentum_(momentum)
{
    gamma_ = registerParameter("gamma", Tensor::ones({num_features}));
    beta_ = registerParameter("beta", Tensor::zeros({num_features}));
    runningMean_ = Tensor::zeros({num_features});
    runningVar_ = Tensor::ones({num_features});
    registerBuffer("running_mean", &runningMean_);
    registerBuffer("running_var", &runningVar_);
}

Var
BatchNorm1d::forward(const Var &x)
{
    gnnperf_assert(x.rank() == 2 && x.dim(1) == numFeatures_,
                   "BatchNorm1d: ", x.value().describe(), " expected F=",
                   numFeatures_);
    const int64_t n = x.dim(0);
    const int64_t f = numFeatures_;

    if (!training()) {
        // y = gamma * (x - mean) / sqrt(var + eps) + beta, using the
        // running statistics as constants.
        Tensor invstd(runningVar_.shape(), runningVar_.device());
        for (int64_t j = 0; j < f; ++j)
            invstd.set(j, 1.0f / std::sqrt(runningVar_.at(j) + eps_));
        recordKernel("bn_eval_prep", 2.0 * static_cast<double>(f),
                     2.0 * static_cast<double>(f) * sizeof(float));
        Var centered = fn::subRowVec(x, Var(runningMean_));
        Var scaled = fn::mulRowVec(centered, Var(invstd));
        Var with_gamma = fn::mulRowVec(scaled, gamma_);
        return fn::addBias(with_gamma, beta_);
    }

    // Training mode: batch statistics + custom fused backward.
    Tensor mean = ops::meanRows(x.value());
    Tensor var = ops::varRows(x.value(), mean);

    // Update running statistics (no autograd involvement).
    for (int64_t j = 0; j < f; ++j) {
        runningMean_.set(j, (1.0f - momentum_) * runningMean_.at(j) +
                            momentum_ * mean.at(j));
        runningVar_.set(j, (1.0f - momentum_) * runningVar_.at(j) +
                           momentum_ * var.at(j));
    }

    Tensor invstd({f}, x.value().device());
    for (int64_t j = 0; j < f; ++j)
        invstd.set(j, 1.0f / std::sqrt(var.at(j) + eps_));

    // xhat = (x - mean) * invstd ; y = gamma * xhat + beta
    Tensor xhat(x.value().shape(), x.value().device());
    Tensor out(x.value().shape(), x.value().device());
    {
        const float *px = x.value().data();
        const float *pm = mean.data();
        const float *pi = invstd.data();
        const float *pg = gamma_.value().data();
        const float *pb = beta_.value().data();
        float *ph = xhat.data();
        float *po = out.data();
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < f; ++j) {
                const float h = (px[i * f + j] - pm[j]) * pi[j];
                ph[i * f + j] = h;
                po[i * f + j] = pg[j] * h + pb[j];
            }
        }
    }
    recordKernel("batch_norm", 4.0 * static_cast<double>(n * f),
                 3.0 * static_cast<double>(x.value().bytes()));

    Tensor xhat_c = xhat, invstd_c = invstd;
    Tensor gamma_v = gamma_.value();
    return Var::makeOp("batch_norm", std::move(out), {x, gamma_, beta_},
        [xhat_c, invstd_c, gamma_v, n, f](Node &node) {
            const Tensor &g = node.grad;
            const float *pg = g.data();
            const float *ph = xhat_c.data();

            // dgamma_j = sum_i g_ij xhat_ij ; dbeta_j = sum_i g_ij
            Tensor dgamma = Tensor::zeros({f}, g.device());
            Tensor dbeta = Tensor::zeros({f}, g.device());
            float *pdg = dgamma.data();
            float *pdb = dbeta.data();
            for (int64_t i = 0; i < n; ++i) {
                for (int64_t j = 0; j < f; ++j) {
                    pdg[j] += pg[i * f + j] * ph[i * f + j];
                    pdb[j] += pg[i * f + j];
                }
            }

            if (node.inputs[0]->requiresGrad) {
                // dx = gamma*invstd/N * (N*g - dbeta - xhat*dgamma)
                Tensor dx(g.shape(), g.device());
                float *pdx = dx.data();
                const float *pgam = gamma_v.data();
                const float *pinv = invstd_c.data();
                const float inv_n = 1.0f / static_cast<float>(n);
                for (int64_t i = 0; i < n; ++i) {
                    for (int64_t j = 0; j < f; ++j) {
                        const float t = static_cast<float>(n) *
                                            pg[i * f + j] -
                                        pdb[j] -
                                        ph[i * f + j] * pdg[j];
                        pdx[i * f + j] = pgam[j] * pinv[j] * inv_n * t;
                    }
                }
                recordKernel("batch_norm_bwd",
                             8.0 * static_cast<double>(n * f),
                             4.0 * static_cast<double>(g.bytes()));
                node.inputs[0]->accumulateGrad(dx);
            }
            if (node.inputs[1]->requiresGrad)
                node.inputs[1]->accumulateGrad(dgamma);
            if (node.inputs[2]->requiresGrad)
                node.inputs[2]->accumulateGrad(dbeta);
        });
}

} // namespace nn
} // namespace gnnperf
