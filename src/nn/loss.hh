/**
 * @file
 * Classification losses.
 */

#ifndef GNNPERF_NN_LOSS_HH
#define GNNPERF_NN_LOSS_HH

#include <cstdint>
#include <vector>

#include "autograd/variable.hh"

namespace gnnperf {
namespace nn {

/**
 * Cross-entropy over raw logits (log-softmax + NLL), averaged over the
 * selected rows.
 *
 * @param logits [N, C] raw scores
 * @param targets per-row class labels (size N)
 * @param row_subset rows to include; empty = all rows
 */
Var crossEntropy(const Var &logits, const std::vector<int64_t> &targets,
                 const std::vector<int64_t> &row_subset = {});

/**
 * Negative log-likelihood over log-probabilities, averaged over the
 * selected rows (backward writes only the picked entries).
 */
Var nllLoss(const Var &log_probs, const std::vector<int64_t> &targets,
            const std::vector<int64_t> &row_subset = {});

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_LOSS_HH
