#include "nn/optimizer.hh"

#include <cmath>

#include "common/logging.hh"
#include "device/profiler.hh"
#include "parallel/thread_pool.hh"

namespace gnnperf {
namespace nn {

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weightDecay_(weight_decay)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto &p : params_) {
        m_.push_back(Tensor::zeros(p.value().shape(),
                                   p.value().device()));
        v_.push_back(Tensor::zeros(p.value().shape(),
                                   p.value().device()));
    }
}

void
Adam::step()
{
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        if (!params_[i].hasGrad())
            continue;
        Tensor &value = params_[i].valueMutable();
        const Tensor &grad = params_[i].grad();
        float *pv = value.data();
        const float *pg = grad.data();
        float *pm = m_[i].data();
        float *ps = v_[i].data();
        const int64_t numel = value.numel();
        par::parallelFor(
            "par.adam_update", 0, numel, 16384,
            [&](int64_t jb, int64_t je, int) {
                for (int64_t j = jb; j < je; ++j) {
                    float g = pg[j];
                    if (weightDecay_ != 0.0f)
                        g += weightDecay_ * pv[j];
                    pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * g;
                    ps[j] = beta2_ * ps[j] + (1.0f - beta2_) * g * g;
                    const float mhat = pm[j] / bc1;
                    const float vhat = ps[j] / bc2;
                    pv[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
                }
            });
        recordKernel("adam_update", 10.0 * static_cast<double>(numel),
                     4.0 * static_cast<double>(value.bytes()));
    }
}

void
Adam::zeroGrad()
{
    for (auto &p : params_)
        p.zeroGrad();
}

} // namespace nn
} // namespace gnnperf
