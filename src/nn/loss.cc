#include "nn/loss.hh"

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "device/profiler.hh"

namespace gnnperf {
namespace nn {

using autograd::Node;

Var
nllLoss(const Var &log_probs, const std::vector<int64_t> &targets,
        const std::vector<int64_t> &row_subset)
{
    const Tensor &lp = log_probs.value();
    gnnperf_assert(lp.rank() == 2, "nllLoss on rank ", lp.rank());
    const int64_t n = lp.dim(0), c = lp.dim(1);
    gnnperf_assert(static_cast<int64_t>(targets.size()) == n,
                   "nllLoss: ", targets.size(), " targets for ", n,
                   " rows");

    std::vector<int64_t> rows = row_subset;
    if (rows.empty()) {
        rows.resize(static_cast<std::size_t>(n));
        for (int64_t i = 0; i < n; ++i)
            rows[static_cast<std::size_t>(i)] = i;
    }
    gnnperf_assert(!rows.empty(), "nllLoss: empty selection");

    double total = 0.0;
    const float *p = lp.data();
    for (int64_t r : rows) {
        gnnperf_assert(r >= 0 && r < n, "nllLoss: row ", r, " out of ",
                       n);
        const int64_t t = targets[static_cast<std::size_t>(r)];
        gnnperf_assert(t >= 0 && t < c, "nllLoss: label ", t, " out of ",
                       c);
        total -= p[r * c + t];
    }
    const float inv = 1.0f / static_cast<float>(rows.size());
    recordKernel("nll_loss", static_cast<double>(rows.size()),
                 static_cast<double>(rows.size()) * sizeof(float));

    Tensor out = Tensor::scalar(static_cast<float>(total) * inv,
                                lp.device());
    std::vector<int64_t> targets_c = targets;
    std::vector<int64_t> rows_c = rows;
    return Var::makeOp("nll_loss", std::move(out), {log_probs},
        [targets_c, rows_c, n, c, inv](Node &node) {
            if (!node.inputs[0]->requiresGrad)
                return;
            Tensor g = Tensor::zeros({n, c}, node.grad.device());
            const float seed = node.grad.at(0);
            float *pg = g.data();
            for (int64_t r : rows_c) {
                const int64_t t =
                    targets_c[static_cast<std::size_t>(r)];
                pg[r * c + t] = -seed * inv;
            }
            recordKernel("nll_loss_bwd",
                         static_cast<double>(rows_c.size()),
                         static_cast<double>(g.bytes()));
            node.inputs[0]->accumulateGrad(g);
        });
}

Var
crossEntropy(const Var &logits, const std::vector<int64_t> &targets,
             const std::vector<int64_t> &row_subset)
{
    return nllLoss(fn::logSoftmax(logits), targets, row_subset);
}

} // namespace nn
} // namespace gnnperf
