/**
 * @file
 * Fully connected layer: y = x·W + b.
 */

#ifndef GNNPERF_NN_LINEAR_HH
#define GNNPERF_NN_LINEAR_HH

#include "common/random.hh"
#include "nn/module.hh"

namespace gnnperf {
namespace nn {

/**
 * Affine transform with Glorot-uniform initialised weights.
 */
class Linear : public Module
{
  public:
    /**
     * @param in_features input width
     * @param out_features output width
     * @param rng initialisation stream
     * @param bias whether to add a bias vector
     */
    Linear(int64_t in_features, int64_t out_features, Rng &rng,
           bool bias = true);

    /** y = x·W (+ b). x is [N, in_features]. */
    Var forward(const Var &x) const;

    int64_t inFeatures() const { return inFeatures_; }
    int64_t outFeatures() const { return outFeatures_; }
    bool hasBias() const { return bias_.defined(); }

    /** Direct access for tests. */
    const Var &weight() const { return weight_; }
    const Var &bias() const { return bias_; }

  private:
    int64_t inFeatures_;
    int64_t outFeatures_;
    Var weight_;  ///< [in, out]
    Var bias_;    ///< [out], undefined when bias=false
};

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_LINEAR_HH
