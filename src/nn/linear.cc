#include "nn/linear.hh"

#include "autograd/functions.hh"
#include "tensor/init.hh"

namespace gnnperf {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng &rng,
               bool bias)
    : inFeatures_(in_features), outFeatures_(out_features)
{
    weight_ = registerParameter(
        "weight", init::glorotUniform(in_features, out_features, rng));
    if (bias) {
        bias_ = registerParameter(
            "bias", Tensor::zeros({out_features}));
    }
}

Var
Linear::forward(const Var &x) const
{
    Var y = fn::matmul(x, weight_);
    if (bias_.defined())
        y = fn::addBias(y, bias_);
    return y;
}

} // namespace nn
} // namespace gnnperf
