/**
 * @file
 * Multi-layer perceptrons.
 *
 * Two flavours are provided:
 *  - Mlp: a generic stack of Linear+activation layers (used inside GIN's
 *    update function and GraphSAGE's pool aggregator);
 *  - MlpReadout: the graph classifier head of the Dwivedi benchmark the
 *    paper follows — feature width halves per layer down to the class
 *    count (paper §IV-B.4).
 */

#ifndef GNNPERF_NN_MLP_HH
#define GNNPERF_NN_MLP_HH

#include <memory>
#include <vector>

#include "nn/activation.hh"
#include "nn/linear.hh"

namespace gnnperf {
namespace nn {

/**
 * Generic MLP: sizes = {in, h1, ..., out}; activation between layers
 * (not after the last).
 */
class Mlp : public Module
{
  public:
    Mlp(const std::vector<int64_t> &sizes, Activation act, Rng &rng);

    Var forward(const Var &x) const;

    std::size_t layerCount() const { return layers_.size(); }
    const Linear &layer(std::size_t i) const { return *layers_[i]; }

  private:
    std::vector<std::unique_ptr<Linear>> layers_;
    Activation act_;
};

/**
 * Graph classifier head: `levels` halvings then projection to classes,
 * ReLU between layers.
 */
class MlpReadout : public Module
{
  public:
    MlpReadout(int64_t in_features, int64_t num_classes, Rng &rng,
               int levels = 2);

    Var forward(const Var &x) const;

  private:
    std::vector<std::unique_ptr<Linear>> layers_;
};

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_MLP_HH
