#include "nn/serialize.hh"

#include <cstring>
#include <fstream>
#include <map>

#include "common/logging.hh"

namespace gnnperf {
namespace nn {

namespace {

void
appendRaw(std::string &out, const void *data, std::size_t size)
{
    out.append(static_cast<const char *>(data), size);
}

template <typename T>
void
appendValue(std::string &out, T value)
{
    appendRaw(out, &value, sizeof(T));
}

template <typename T>
T
readValue(const std::string &in, std::size_t &cursor)
{
    gnnperf_assert(cursor + sizeof(T) <= in.size(),
                   "checkpoint truncated");
    T value;
    std::memcpy(&value, in.data() + cursor, sizeof(T));
    cursor += sizeof(T);
    return value;
}

void
appendEntry(std::string &out, const std::string &name,
            const Tensor &tensor)
{
    appendValue<uint32_t>(out, static_cast<uint32_t>(name.size()));
    appendRaw(out, name.data(), name.size());
    appendValue<uint32_t>(out, static_cast<uint32_t>(tensor.rank()));
    for (int64_t d = 0; d < tensor.rank(); ++d)
        appendValue<int64_t>(out, tensor.dim(d));
    appendRaw(out, tensor.data(), tensor.bytes());
}

struct Entry
{
    std::vector<int64_t> shape;
    std::vector<float> data;
};

std::map<std::string, Entry>
parseEntries(const std::string &bytes)
{
    std::size_t cursor = 0;
    gnnperf_assert(bytes.size() >= 4 &&
                   std::memcmp(bytes.data(), "GNNP", 4) == 0,
                   "not a gnnperf checkpoint");
    cursor = 4;
    const auto version = readValue<uint32_t>(bytes, cursor);
    gnnperf_assert(version == kCheckpointVersion,
                   "unsupported checkpoint version ", version);
    const auto count = readValue<uint64_t>(bytes, cursor);
    std::map<std::string, Entry> entries;
    for (uint64_t i = 0; i < count; ++i) {
        const auto name_len = readValue<uint32_t>(bytes, cursor);
        gnnperf_assert(cursor + name_len <= bytes.size(),
                       "checkpoint truncated");
        std::string name(bytes.data() + cursor, name_len);
        cursor += name_len;
        const auto rank = readValue<uint32_t>(bytes, cursor);
        Entry entry;
        int64_t numel = 1;
        for (uint32_t d = 0; d < rank; ++d) {
            entry.shape.push_back(readValue<int64_t>(bytes, cursor));
            numel *= entry.shape.back();
        }
        entry.data.resize(static_cast<std::size_t>(numel));
        gnnperf_assert(cursor + entry.data.size() * sizeof(float) <=
                       bytes.size(), "checkpoint truncated");
        std::memcpy(entry.data.data(), bytes.data() + cursor,
                    entry.data.size() * sizeof(float));
        cursor += entry.data.size() * sizeof(float);
        gnnperf_assert(entries.emplace(name, std::move(entry)).second,
                       "duplicate checkpoint entry ", name);
    }
    return entries;
}

void
restoreTensor(Tensor &tensor, const std::string &name,
              const Entry &entry)
{
    gnnperf_assert(tensor.shape() == entry.shape,
                   "checkpoint shape mismatch for ", name);
    std::memcpy(tensor.data(), entry.data.data(),
                entry.data.size() * sizeof(float));
}

} // namespace

std::string
serializeModule(const Module &module)
{
    auto params = module.namedParameters();
    auto buffers = module.namedBuffers();

    std::string out;
    appendRaw(out, "GNNP", 4);
    appendValue<uint32_t>(out, kCheckpointVersion);
    appendValue<uint64_t>(out, params.size() + buffers.size());
    for (const auto &np : params)
        appendEntry(out, "param:" + np.name, np.var.value());
    for (const auto &nb : buffers)
        appendEntry(out, "buffer:" + nb.name, *nb.tensor);
    return out;
}

void
deserializeModule(Module &module, const std::string &bytes)
{
    auto entries = parseEntries(bytes);
    auto params = module.namedParameters();
    auto buffers = module.namedBuffers();
    gnnperf_assert(entries.size() == params.size() + buffers.size(),
                   "checkpoint has ", entries.size(),
                   " entries, module expects ",
                   params.size() + buffers.size());
    for (auto &np : params) {
        auto it = entries.find("param:" + np.name);
        gnnperf_assert(it != entries.end(),
                       "checkpoint missing parameter ", np.name);
        restoreTensor(np.var.valueMutable(), np.name, it->second);
    }
    for (auto &nb : buffers) {
        auto it = entries.find("buffer:" + nb.name);
        gnnperf_assert(it != entries.end(),
                       "checkpoint missing buffer ", nb.name);
        restoreTensor(*nb.tensor, nb.name, it->second);
    }
}

void
saveCheckpoint(const Module &module, const std::string &path)
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        gnnperf_fatal("cannot open ", path, " for writing");
    const std::string bytes = serializeModule(module);
    file.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size()));
    if (!file)
        gnnperf_fatal("write to ", path, " failed");
}

void
loadCheckpoint(Module &module, const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        gnnperf_fatal("cannot open ", path);
    std::string bytes((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
    deserializeModule(module, bytes);
}

} // namespace nn
} // namespace gnnperf
