/**
 * @file
 * 1-D batch normalisation over the row dimension.
 *
 * GIN (paper Eq. 3) and GatedGCN use BN inside every conv layer; the
 * graph-classification configurations (Table III) enable it for all
 * models. Training mode normalises with batch statistics and maintains
 * running estimates; eval mode uses the running estimates.
 */

#ifndef GNNPERF_NN_BATCH_NORM_HH
#define GNNPERF_NN_BATCH_NORM_HH

#include "nn/module.hh"

namespace gnnperf {
namespace nn {

/**
 * BatchNorm1d over [N, F] tensors.
 */
class BatchNorm1d : public Module
{
  public:
    /**
     * @param num_features feature width F
     * @param eps numerical stabiliser inside the square root
     * @param momentum running-statistics update rate
     */
    explicit BatchNorm1d(int64_t num_features, float eps = 1e-5f,
                         float momentum = 0.1f);

    /** Normalise x ([N, F]) according to the current mode. */
    Var forward(const Var &x);

    const Tensor &runningMean() const { return runningMean_; }
    const Tensor &runningVar() const { return runningVar_; }
    const Var &gamma() const { return gamma_; }
    const Var &beta() const { return beta_; }

  private:
    int64_t numFeatures_;
    float eps_;
    float momentum_;
    Var gamma_;           ///< scale, [F]
    Var beta_;            ///< shift, [F]
    Tensor runningMean_;  ///< [F]
    Tensor runningVar_;   ///< [F]
};

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_BATCH_NORM_HH
