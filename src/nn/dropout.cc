#include "nn/dropout.hh"

#include "autograd/functions.hh"

namespace gnnperf {
namespace nn {

Dropout::Dropout(float p, Rng &rng) : p_(p), maskSeeds_(rng.fork()) {}

Var
Dropout::forward(const Var &x)
{
    if (!training() || p_ <= 0.0f)
        return x;
    return fn::dropout(x, p_, /*training=*/true, maskSeeds_.next());
}

} // namespace nn
} // namespace gnnperf
