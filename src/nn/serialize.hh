/**
 * @file
 * Model checkpointing: save/restore a module's parameters and
 * persistent buffers (batch-norm running statistics) to a simple
 * versioned binary format.
 *
 * Format (little-endian):
 *   magic "GNNP" | u32 version | u64 entry count |
 *   per entry: u32 name length | name bytes | u32 rank |
 *              i64 dims[rank] | f32 data[numel]
 *
 * Entries are looked up by hierarchical name on load; a checkpoint
 * must match the module exactly (same entries, same shapes) — a
 * mismatch is a user error and fatal.
 */

#ifndef GNNPERF_NN_SERIALIZE_HH
#define GNNPERF_NN_SERIALIZE_HH

#include <string>

#include "nn/module.hh"

namespace gnnperf {
namespace nn {

/** Checkpoint format version written by saveCheckpoint. */
constexpr uint32_t kCheckpointVersion = 1;

/** Serialise parameters + buffers to a byte string. */
std::string serializeModule(const Module &module);

/** Restore parameters + buffers from a byte string. */
void deserializeModule(Module &module, const std::string &bytes);

/** Save to / load from a file. */
void saveCheckpoint(const Module &module, const std::string &path);
void loadCheckpoint(Module &module, const std::string &path);

} // namespace nn
} // namespace gnnperf

#endif // GNNPERF_NN_SERIALIZE_HH
