#include "nn/lr_scheduler.hh"

#include <limits>

#include "obs/stats.hh"

namespace gnnperf {
namespace nn {

ReduceLROnPlateau::ReduceLROnPlateau(Adam &optimizer, float factor,
                                     int patience, float min_lr)
    : optimizer_(optimizer),
      factor_(factor),
      patience_(patience),
      minLr_(min_lr),
      bestLoss_(std::numeric_limits<double>::infinity())
{
}

void
ReduceLROnPlateau::step(double val_loss)
{
    if (val_loss < bestLoss_ - 1e-7) {
        bestLoss_ = val_loss;
        badEpochs_ = 0;
        return;
    }
    if (++badEpochs_ > patience_) {
        optimizer_.setLearningRate(optimizer_.learningRate() * factor_);
        badEpochs_ = 0;
        static stats::Counter &drops = stats::counter("trainer.lr_drops");
        drops.inc();
    }
}

bool
ReduceLROnPlateau::shouldStop() const
{
    return optimizer_.learningRate() <= minLr_;
}

} // namespace nn
} // namespace gnnperf
