/**
 * @file
 * Forward tensor kernels.
 *
 * Every function really computes its result on the host CPU and emits
 * one KernelRecord (name, FLOPs, bytes moved) to the Profiler, which is
 * how the timing model learns what a GPU deployment would have
 * executed. Autograd wrappers (autograd/functions.hh) compose these.
 *
 * Naming note: `xxxInto` variants write into a preallocated output and
 * are used by the optimizer's in-place updates.
 */

#ifndef GNNPERF_TENSOR_OPS_HH
#define GNNPERF_TENSOR_OPS_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnperf {
namespace ops {

// ----- elementwise kinds ---------------------------------------------------
//
// The recorded-IR layer (src/ir) replays and fuses elementwise kernels,
// so the per-element math is single-sourced here: the eager wrappers,
// the `Into` replay variants and the fused launches all inline the same
// expressions, which is what makes graph mode bit-identical to eager.

/** Unary elementwise kernels (param: scale s, added s, elu α, slope). */
enum class EwUnary
{
    Scale,
    AddScalar,
    Relu,
    Sigmoid,
    Tanh,
    Elu,
    LeakyRelu,
    Exp,
};

/** Binary elementwise kernels. */
enum class EwBinary
{
    Add,
    Sub,
    Mul,
    Div,
};

inline float
ewUnaryApply(EwUnary k, float x, float p)
{
    switch (k) {
      case EwUnary::Scale:
        return p * x;
      case EwUnary::AddScalar:
        return x + p;
      case EwUnary::Relu:
        return x > 0.0f ? x : 0.0f;
      case EwUnary::Sigmoid:
        return 1.0f / (1.0f + std::exp(-x));
      case EwUnary::Tanh:
        return std::tanh(x);
      case EwUnary::Elu:
        return x > 0.0f ? x : p * (std::exp(x) - 1.0f);
      case EwUnary::LeakyRelu:
        return x > 0.0f ? x : p * x;
      case EwUnary::Exp:
        return std::exp(x);
    }
    return x;
}

inline float
ewBinaryApply(EwBinary k, float x, float y)
{
    switch (k) {
      case EwBinary::Add:
        return x + y;
      case EwBinary::Sub:
        return x - y;
      case EwBinary::Mul:
        return x * y;
      case EwBinary::Div:
        return x / y;
    }
    return x;
}

/** Registered kernel name for an elementwise kind. */
const char *ewUnaryName(EwUnary k);
const char *ewBinaryName(EwBinary k);

/** Per-element FLOP cost, matching the eager wrappers' records. */
double ewUnaryFlops(EwUnary k);
double ewBinaryFlops(EwBinary k);

// ----- elementwise binary ------------------------------------------------

/** c = a + b (same shape). */
Tensor add(const Tensor &a, const Tensor &b);

/** c = a - b (same shape). */
Tensor sub(const Tensor &a, const Tensor &b);

/** c = a * b elementwise (same shape). */
Tensor mul(const Tensor &a, const Tensor &b);

/** c = a / b elementwise (same shape). */
Tensor div(const Tensor &a, const Tensor &b);

/** c[i,j] = a[i,j] + b[j]  — row-broadcast add (bias). */
Tensor addRows(const Tensor &a, const Tensor &b);

/** c[i,j] = a[i,j] * b[i]  — column-broadcast multiply. */
Tensor mulCols(const Tensor &a, const Tensor &b);

/** c[i,j] = a[i,j] / b[i]  — column-broadcast divide. */
Tensor divCols(const Tensor &a, const Tensor &b);

/** a += b in place (same shape). */
void addInPlace(Tensor &a, const Tensor &b);

/** a += s * b in place (axpy). */
void addScaledInPlace(Tensor &a, const Tensor &b, float s);

// ----- elementwise unary -------------------------------------------------

/** c = s * a. */
Tensor scale(const Tensor &a, float s);

/** c = a + s. */
Tensor addScalar(const Tensor &a, float s);

Tensor relu(const Tensor &a);
Tensor sigmoid(const Tensor &a);
Tensor tanhT(const Tensor &a);
Tensor elu(const Tensor &a, float alpha = 1.0f);
Tensor leakyRelu(const Tensor &a, float slope = 0.2f);
Tensor expT(const Tensor &a);
Tensor logT(const Tensor &a);
Tensor sqrtT(const Tensor &a);
Tensor square(const Tensor &a);
Tensor reciprocal(const Tensor &a, float eps = 0.0f);

// ----- reductions ----------------------------------------------------------

/** Column sums: [N,F] → [F]. */
Tensor sumRows(const Tensor &a);

/** Column means: [N,F] → [F]. */
Tensor meanRows(const Tensor &a);

/** Column variance (biased): [N,F] → [F]. */
Tensor varRows(const Tensor &a, const Tensor &mean);

/** Per-row sums: [N,F] → [N]. */
Tensor sumCols(const Tensor &a);

/** Sum of all elements → scalar [1]. */
Tensor sumAll(const Tensor &a);

/** Mean of all elements → scalar [1]. */
Tensor meanAll(const Tensor &a);

/** Per-row argmax of a rank-2 tensor. */
std::vector<int64_t> argmaxRows(const Tensor &a);

// ----- softmax -------------------------------------------------------------

/** Row-wise softmax of a rank-2 tensor. */
Tensor softmaxRows(const Tensor &a);

/** Row-wise log-softmax of a rank-2 tensor. */
Tensor logSoftmaxRows(const Tensor &a);

// ----- shaping -------------------------------------------------------------

/** Concatenate along columns: [N,Fa] ++ [N,Fb] → [N,Fa+Fb]. */
Tensor concatCols(const Tensor &a, const Tensor &b);

/** Take columns [begin, end) of a rank-2 tensor. */
Tensor sliceCols(const Tensor &a, int64_t begin, int64_t end);

/** Take rows [begin, end) of a rank-2 tensor. */
Tensor sliceRows(const Tensor &a, int64_t begin, int64_t end);

/** Transpose a rank-2 tensor. */
Tensor transpose(const Tensor &a);

/** Gather rows: out[e] = a[idx[e]]. */
Tensor gatherRows(const Tensor &a, const std::vector<int64_t> &idx);

/** Scatter-add rows: out[idx[e]] += src[e]; out has `num_rows` rows. */
Tensor scatterAddRows(const Tensor &src, const std::vector<int64_t> &idx,
                      int64_t num_rows);

// ----- preallocated-output (`Into`) replay variants ------------------------
//
// Used by the recorded-IR executor (src/ir/executor.cc): the memory
// planner preallocates `out` ahead of the launch, and each variant runs
// the exact eager kernel — same parallelFor launch name, grain and
// KernelRecord — into it, so an unfused replayed node is
// indistinguishable from its eager counterpart.

/** out = unary(a) elementwise; out must match a's shape. */
void ewUnaryInto(Tensor &out, const Tensor &a, EwUnary k, float p);

/** out = a ∘ b elementwise; all three shapes must match. */
void ewBinaryInto(Tensor &out, const Tensor &a, const Tensor &b,
                  EwBinary k);

/** out[e] = a[idx[e]]; out must be [idx.size(), a.dim(1)]. */
void gatherRowsInto(Tensor &out, const Tensor &a,
                    const std::vector<int64_t> &idx);

/**
 * out[idx[e]] += src[e] after zero-filling out in-kernel (each output
 * chunk clears its own rows, so no separate fill pass is needed and
 * the accumulation order matches the eager kernel exactly).
 */
void scatterAddRowsInto(Tensor &out, const Tensor &src,
                        const std::vector<int64_t> &idx);

/** L2-normalise each row (zero rows stay zero). */
Tensor l2NormalizeRows(const Tensor &a, float eps = 1e-12f);

/** Per-row L2 norms: [N,F] → [N]. */
Tensor rowNorms(const Tensor &a, float eps = 1e-12f);

// ----- misc ----------------------------------------------------------------

/** Elementwise maximum of two tensors. */
Tensor maximum(const Tensor &a, const Tensor &b);

/** Dropout forward: returns masked/scaled copy, fills `mask`. */
Tensor dropout(const Tensor &a, float p, Tensor &mask, uint64_t seed);

/** True when all finite (used by tests and loss guards). */
bool allFinite(const Tensor &a);

} // namespace ops
} // namespace gnnperf

#endif // GNNPERF_TENSOR_OPS_HH
