/**
 * @file
 * Forward tensor kernels.
 *
 * Every function really computes its result on the host CPU and emits
 * one KernelRecord (name, FLOPs, bytes moved) to the Profiler, which is
 * how the timing model learns what a GPU deployment would have
 * executed. Autograd wrappers (autograd/functions.hh) compose these.
 *
 * Naming note: `xxxInto` variants write into a preallocated output and
 * are used by the optimizer's in-place updates.
 */

#ifndef GNNPERF_TENSOR_OPS_HH
#define GNNPERF_TENSOR_OPS_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnperf {
namespace ops {

// ----- elementwise binary ------------------------------------------------

/** c = a + b (same shape). */
Tensor add(const Tensor &a, const Tensor &b);

/** c = a - b (same shape). */
Tensor sub(const Tensor &a, const Tensor &b);

/** c = a * b elementwise (same shape). */
Tensor mul(const Tensor &a, const Tensor &b);

/** c = a / b elementwise (same shape). */
Tensor div(const Tensor &a, const Tensor &b);

/** c[i,j] = a[i,j] + b[j]  — row-broadcast add (bias). */
Tensor addRows(const Tensor &a, const Tensor &b);

/** c[i,j] = a[i,j] * b[i]  — column-broadcast multiply. */
Tensor mulCols(const Tensor &a, const Tensor &b);

/** c[i,j] = a[i,j] / b[i]  — column-broadcast divide. */
Tensor divCols(const Tensor &a, const Tensor &b);

/** a += b in place (same shape). */
void addInPlace(Tensor &a, const Tensor &b);

/** a += s * b in place (axpy). */
void addScaledInPlace(Tensor &a, const Tensor &b, float s);

// ----- elementwise unary -------------------------------------------------

/** c = s * a. */
Tensor scale(const Tensor &a, float s);

/** c = a + s. */
Tensor addScalar(const Tensor &a, float s);

Tensor relu(const Tensor &a);
Tensor sigmoid(const Tensor &a);
Tensor tanhT(const Tensor &a);
Tensor elu(const Tensor &a, float alpha = 1.0f);
Tensor leakyRelu(const Tensor &a, float slope = 0.2f);
Tensor expT(const Tensor &a);
Tensor logT(const Tensor &a);
Tensor sqrtT(const Tensor &a);
Tensor square(const Tensor &a);
Tensor reciprocal(const Tensor &a, float eps = 0.0f);

// ----- reductions ----------------------------------------------------------

/** Column sums: [N,F] → [F]. */
Tensor sumRows(const Tensor &a);

/** Column means: [N,F] → [F]. */
Tensor meanRows(const Tensor &a);

/** Column variance (biased): [N,F] → [F]. */
Tensor varRows(const Tensor &a, const Tensor &mean);

/** Per-row sums: [N,F] → [N]. */
Tensor sumCols(const Tensor &a);

/** Sum of all elements → scalar [1]. */
Tensor sumAll(const Tensor &a);

/** Mean of all elements → scalar [1]. */
Tensor meanAll(const Tensor &a);

/** Per-row argmax of a rank-2 tensor. */
std::vector<int64_t> argmaxRows(const Tensor &a);

// ----- softmax -------------------------------------------------------------

/** Row-wise softmax of a rank-2 tensor. */
Tensor softmaxRows(const Tensor &a);

/** Row-wise log-softmax of a rank-2 tensor. */
Tensor logSoftmaxRows(const Tensor &a);

// ----- shaping -------------------------------------------------------------

/** Concatenate along columns: [N,Fa] ++ [N,Fb] → [N,Fa+Fb]. */
Tensor concatCols(const Tensor &a, const Tensor &b);

/** Take columns [begin, end) of a rank-2 tensor. */
Tensor sliceCols(const Tensor &a, int64_t begin, int64_t end);

/** Take rows [begin, end) of a rank-2 tensor. */
Tensor sliceRows(const Tensor &a, int64_t begin, int64_t end);

/** Transpose a rank-2 tensor. */
Tensor transpose(const Tensor &a);

/** Gather rows: out[e] = a[idx[e]]. */
Tensor gatherRows(const Tensor &a, const std::vector<int64_t> &idx);

/** Scatter-add rows: out[idx[e]] += src[e]; out has `num_rows` rows. */
Tensor scatterAddRows(const Tensor &src, const std::vector<int64_t> &idx,
                      int64_t num_rows);

/** L2-normalise each row (zero rows stay zero). */
Tensor l2NormalizeRows(const Tensor &a, float eps = 1e-12f);

/** Per-row L2 norms: [N,F] → [N]. */
Tensor rowNorms(const Tensor &a, float eps = 1e-12f);

// ----- misc ----------------------------------------------------------------

/** Elementwise maximum of two tensors. */
Tensor maximum(const Tensor &a, const Tensor &b);

/** Dropout forward: returns masked/scaled copy, fills `mask`. */
Tensor dropout(const Tensor &a, float p, Tensor &mask, uint64_t seed);

/** True when all finite (used by tests and loss guards). */
bool allFinite(const Tensor &a);

} // namespace ops
} // namespace gnnperf

#endif // GNNPERF_TENSOR_OPS_HH
