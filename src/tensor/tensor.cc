#include "tensor/tensor.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "device/allocator.hh"
#include "device/profiler.hh"

namespace gnnperf {

Storage::Storage(std::size_t numel, DeviceKind device)
    : block_(DeviceManager::instance().allocator(device).allocate(
          numel * sizeof(float))),
      data_(block_->floats()),
      numel_(numel),
      device_(device)
{
}

Storage::~Storage()
{
    block_->owner->release(block_);
}

namespace {

int64_t
shapeNumel(const std::vector<int64_t> &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        gnnperf_assert(d >= 0, "negative dimension ", d);
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int64_t> shape, DeviceKind device)
    : shape_(std::move(shape)),
      numel_(shapeNumel(shape_)),
      storage_(std::make_shared<Storage>(numel_, device))
{
}

Tensor
Tensor::zeros(std::vector<int64_t> shape, DeviceKind device)
{
    Tensor t(std::move(shape), device);
    t.fill(0.0f);
    return t;
}

Tensor
Tensor::ones(std::vector<int64_t> shape, DeviceKind device)
{
    Tensor t(std::move(shape), device);
    t.fill(1.0f);
    return t;
}

Tensor
Tensor::full(std::vector<int64_t> shape, float value, DeviceKind device)
{
    Tensor t(std::move(shape), device);
    t.fill(value);
    return t;
}

Tensor
Tensor::fromVector(const std::vector<float> &values,
                   std::vector<int64_t> shape, DeviceKind device)
{
    Tensor t(std::move(shape), device);
    gnnperf_assert(static_cast<int64_t>(values.size()) == t.numel(),
                   "fromVector: ", values.size(), " values for shape of ",
                   t.numel(), " elements");
    std::copy(values.begin(), values.end(), t.data());
    return t;
}

Tensor
Tensor::scalar(float value, DeviceKind device)
{
    return fromVector({value}, {1}, device);
}

int64_t
Tensor::dim(int64_t i) const
{
    gnnperf_assert(i >= 0 && i < rank(), "dim(", i, ") on rank ", rank());
    return shape_[static_cast<std::size_t>(i)];
}

DeviceKind
Tensor::device() const
{
    gnnperf_assert(defined(), "device() on undefined tensor");
    return storage_->device();
}

float *
Tensor::data()
{
    gnnperf_assert(defined(), "data() on undefined tensor");
    return storage_->data();
}

const float *
Tensor::data() const
{
    gnnperf_assert(defined(), "data() on undefined tensor");
    return storage_->data();
}

float
Tensor::at(int64_t i) const
{
    gnnperf_assert(i >= 0 && i < numel_, "at(", i, ") out of ", numel_);
    return data()[i];
}

float
Tensor::at(int64_t i, int64_t j) const
{
    gnnperf_assert(rank() == 2, "at(i,j) on rank ", rank());
    gnnperf_assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
                   "at(", i, ",", j, ") out of [", shape_[0], ",",
                   shape_[1], "]");
    return data()[i * shape_[1] + j];
}

void
Tensor::set(int64_t i, float v)
{
    gnnperf_assert(i >= 0 && i < numel_, "set(", i, ") out of ", numel_);
    data()[i] = v;
}

void
Tensor::set(int64_t i, int64_t j, float v)
{
    gnnperf_assert(rank() == 2, "set(i,j) on rank ", rank());
    gnnperf_assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
                   "set(", i, ",", j, ") out of [", shape_[0], ",",
                   shape_[1], "]");
    data()[i * shape_[1] + j] = v;
}

Tensor
Tensor::clone() const
{
    gnnperf_assert(defined(), "clone() on undefined tensor");
    Tensor t(shape_, device());
    std::memcpy(t.data(), data(), bytes());
    return t;
}

Tensor
Tensor::to(DeviceKind target) const
{
    gnnperf_assert(defined(), "to() on undefined tensor");
    if (target == device())
        return *this;
    if (device() == DeviceKind::Host && target == DeviceKind::Cuda) {
        recordHost("h2d_copy", HostOpKind::H2DTransfer,
                   static_cast<double>(bytes()), 1.0);
    } else {
        recordHost("d2h_copy", HostOpKind::H2DTransfer,
                   static_cast<double>(bytes()), 1.0);
    }
    Tensor t(shape_, target);
    std::memcpy(t.data(), data(), bytes());
    return t;
}

Tensor
Tensor::reshape(std::vector<int64_t> shape) const
{
    gnnperf_assert(defined(), "reshape() on undefined tensor");
    gnnperf_assert(shapeNumel(shape) == numel_,
                   "reshape: numel mismatch");
    Tensor t;
    t.shape_ = std::move(shape);
    t.numel_ = numel_;
    t.storage_ = storage_;
    return t;
}

void
Tensor::fill(float value)
{
    std::fill(data(), data() + numel_, value);
}

std::vector<float>
Tensor::toVector() const
{
    return std::vector<float>(data(), data() + numel_);
}

std::string
Tensor::describe() const
{
    if (!defined())
        return "[undefined]";
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            os << ", ";
        os << shape_[i];
    }
    os << "] " << deviceName(device());
    return os.str();
}

} // namespace gnnperf
