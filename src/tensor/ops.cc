#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"
#include "device/profiler.hh"
#include "obs/stats.hh"
#include "parallel/thread_pool.hh"

namespace gnnperf {
namespace ops {

namespace {

/** Elementwise grain: chunks below this are cheaper run inline. */
constexpr int64_t kElemGrain = 16384;

/** Emit a kernel record for an elementwise op over n elements. */
void
recordElementwise(const char *name, int64_t n, double flops_per_elem,
                  double tensors_touched)
{
    recordKernel(name, flops_per_elem * static_cast<double>(n),
                 tensors_touched * static_cast<double>(n) *
                     sizeof(float));
}

/** Rows per chunk targeting ~kElemGrain elements for f-wide rows. */
int64_t
rowGrain(int64_t f)
{
    return std::max<int64_t>(1, kElemGrain / std::max<int64_t>(f, 1));
}

void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    gnnperf_assert(a.sameShape(b), op, ": shape mismatch ",
                   a.describe(), " vs ", b.describe());
}

template <typename F>
Tensor
binaryOp(const Tensor &a, const Tensor &b, const char *name, F f)
{
    checkSameShape(a, b, name);
    Tensor out(a.shape(), a.device());
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    const int64_t n = a.numel();
    // Elementwise: disjoint output ranges, trivially deterministic.
    par::parallelFor("par.binary_op", 0, n, kElemGrain,
                     [&](int64_t b2, int64_t e2, int) {
                         for (int64_t i = b2; i < e2; ++i)
                             po[i] = f(pa[i], pb[i]);
                     });
    recordElementwise(name, n, 1.0, 3.0);
    return out;
}

template <typename F>
Tensor
unaryOp(const Tensor &a, const char *name, F f, double flops = 1.0)
{
    Tensor out(a.shape(), a.device());
    const float *pa = a.data();
    float *po = out.data();
    const int64_t n = a.numel();
    par::parallelFor("par.unary_op", 0, n, kElemGrain,
                     [&](int64_t b, int64_t e, int) {
                         for (int64_t i = b; i < e; ++i)
                             po[i] = f(pa[i]);
                     });
    recordElementwise(name, n, flops, 2.0);
    return out;
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, "add", [](float x, float y) {
        return ewBinaryApply(EwBinary::Add, x, y);
    });
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, "sub", [](float x, float y) {
        return ewBinaryApply(EwBinary::Sub, x, y);
    });
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, "mul", [](float x, float y) {
        return ewBinaryApply(EwBinary::Mul, x, y);
    });
}

Tensor
div(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, "div", [](float x, float y) {
        return ewBinaryApply(EwBinary::Div, x, y);
    });
}

Tensor
addRows(const Tensor &a, const Tensor &b)
{
    gnnperf_assert(a.rank() == 2 && b.rank() == 1 &&
                   a.dim(1) == b.dim(0),
                   "addRows: ", a.describe(), " + ", b.describe());
    Tensor out(a.shape(), a.device());
    const int64_t n = a.dim(0), f = a.dim(1);
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    par::parallelFor("par.add_bias", 0, n, rowGrain(f),
                     [&](int64_t ib, int64_t ie, int) {
                         for (int64_t i = ib; i < ie; ++i)
                             for (int64_t j = 0; j < f; ++j)
                                 po[i * f + j] = pa[i * f + j] + pb[j];
                     });
    recordElementwise("add_bias", n * f, 1.0, 2.0);
    return out;
}

Tensor
mulCols(const Tensor &a, const Tensor &b)
{
    gnnperf_assert(a.rank() == 2 && b.rank() == 1 &&
                   a.dim(0) == b.dim(0),
                   "mulCols: ", a.describe(), " * ", b.describe());
    Tensor out(a.shape(), a.device());
    const int64_t n = a.dim(0), f = a.dim(1);
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    par::parallelFor("par.mul_cols", 0, n, rowGrain(f),
                     [&](int64_t ib, int64_t ie, int) {
                         for (int64_t i = ib; i < ie; ++i) {
                             const float s = pb[i];
                             for (int64_t j = 0; j < f; ++j)
                                 po[i * f + j] = pa[i * f + j] * s;
                         }
                     });
    recordElementwise("mul_cols", n * f, 1.0, 2.0);
    return out;
}

Tensor
divCols(const Tensor &a, const Tensor &b)
{
    gnnperf_assert(a.rank() == 2 && b.rank() == 1 &&
                   a.dim(0) == b.dim(0),
                   "divCols: ", a.describe(), " / ", b.describe());
    Tensor out(a.shape(), a.device());
    const int64_t n = a.dim(0), f = a.dim(1);
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    par::parallelFor("par.div_cols", 0, n, rowGrain(f),
                     [&](int64_t ib, int64_t ie, int) {
                         for (int64_t i = ib; i < ie; ++i) {
                             const float s = 1.0f / pb[i];
                             for (int64_t j = 0; j < f; ++j)
                                 po[i * f + j] = pa[i * f + j] * s;
                         }
                     });
    recordElementwise("div_cols", n * f, 1.0, 2.0);
    return out;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "add_");
    float *pa = a.data();
    const float *pb = b.data();
    const int64_t n = a.numel();
    par::parallelFor("par.add_inplace", 0, n, kElemGrain,
                     [&](int64_t b2, int64_t e2, int) {
                         for (int64_t i = b2; i < e2; ++i)
                             pa[i] += pb[i];
                     });
    recordElementwise("add_", n, 1.0, 3.0);
}

void
addScaledInPlace(Tensor &a, const Tensor &b, float s)
{
    checkSameShape(a, b, "axpy_");
    float *pa = a.data();
    const float *pb = b.data();
    const int64_t n = a.numel();
    par::parallelFor("par.axpy", 0, n, kElemGrain,
                     [&](int64_t b2, int64_t e2, int) {
                         for (int64_t i = b2; i < e2; ++i)
                             pa[i] += s * pb[i];
                     });
    recordElementwise("axpy_", n, 2.0, 3.0);
}

Tensor
scale(const Tensor &a, float s)
{
    return unaryOp(a, "scale", [s](float x) {
        return ewUnaryApply(EwUnary::Scale, x, s);
    });
}

Tensor
addScalar(const Tensor &a, float s)
{
    return unaryOp(a, "add_scalar", [s](float x) {
        return ewUnaryApply(EwUnary::AddScalar, x, s);
    });
}

Tensor
relu(const Tensor &a)
{
    return unaryOp(a, "relu", [](float x) {
        return ewUnaryApply(EwUnary::Relu, x, 0.0f);
    });
}

Tensor
sigmoid(const Tensor &a)
{
    return unaryOp(a, "sigmoid", [](float x) {
        return ewUnaryApply(EwUnary::Sigmoid, x, 0.0f);
    }, 4.0);
}

Tensor
tanhT(const Tensor &a)
{
    return unaryOp(a, "tanh", [](float x) {
        return ewUnaryApply(EwUnary::Tanh, x, 0.0f);
    }, 4.0);
}

Tensor
elu(const Tensor &a, float alpha)
{
    return unaryOp(a, "elu", [alpha](float x) {
        return ewUnaryApply(EwUnary::Elu, x, alpha);
    }, 3.0);
}

Tensor
leakyRelu(const Tensor &a, float slope)
{
    return unaryOp(a, "leaky_relu", [slope](float x) {
        return ewUnaryApply(EwUnary::LeakyRelu, x, slope);
    });
}

Tensor
expT(const Tensor &a)
{
    return unaryOp(a, "exp", [](float x) {
        return ewUnaryApply(EwUnary::Exp, x, 0.0f);
    }, 4.0);
}

Tensor
logT(const Tensor &a)
{
    return unaryOp(a, "log", [](float x) { return std::log(x); }, 4.0);
}

Tensor
sqrtT(const Tensor &a)
{
    return unaryOp(a, "sqrt", [](float x) { return std::sqrt(x); }, 2.0);
}

Tensor
square(const Tensor &a)
{
    return unaryOp(a, "square", [](float x) { return x * x; });
}

Tensor
reciprocal(const Tensor &a, float eps)
{
    return unaryOp(a, "reciprocal",
                   [eps](float x) { return 1.0f / (x + eps); }, 2.0);
}

Tensor
sumRows(const Tensor &a)
{
    gnnperf_assert(a.rank() == 2, "sumRows on rank ", a.rank());
    const int64_t n = a.dim(0), f = a.dim(1);
    Tensor out = Tensor::zeros({f}, a.device());
    const float *pa = a.data();
    float *po = out.data();
    // Column partition: each chunk owns a column range and accumulates
    // it over all rows in unchanged i order — byte-identical to the
    // serial scan. One chunk per thread (every chunk reads all rows).
    par::parallelFor(
        "par.col_sum", 0, f, par::grainFor(f, 1),
        [&](int64_t jb, int64_t je, int) {
            for (int64_t i = 0; i < n; ++i)
                for (int64_t j = jb; j < je; ++j)
                    po[j] += pa[i * f + j];
        });
    recordKernel("col_sum", static_cast<double>(n * f),
                 static_cast<double>((n * f + f) * sizeof(float)));
    return out;
}

Tensor
meanRows(const Tensor &a)
{
    Tensor s = sumRows(a);
    const float inv = a.dim(0) > 0 ? 1.0f / a.dim(0) : 0.0f;
    float *p = s.data();
    for (int64_t j = 0; j < s.numel(); ++j)
        p[j] *= inv;
    return s;
}

Tensor
varRows(const Tensor &a, const Tensor &mean)
{
    gnnperf_assert(a.rank() == 2 && mean.rank() == 1 &&
                   a.dim(1) == mean.dim(0), "varRows: shape mismatch");
    const int64_t n = a.dim(0), f = a.dim(1);
    Tensor out = Tensor::zeros({f}, a.device());
    const float *pa = a.data();
    const float *pm = mean.data();
    float *po = out.data();
    const float inv = n > 0 ? 1.0f / n : 0.0f;
    // Column partition, like sumRows; the final scale is per-column so
    // it can live inside the chunk without reordering any accumulation.
    par::parallelFor(
        "par.col_var", 0, f, par::grainFor(f, 1),
        [&](int64_t jb, int64_t je, int) {
            for (int64_t i = 0; i < n; ++i) {
                for (int64_t j = jb; j < je; ++j) {
                    float d = pa[i * f + j] - pm[j];
                    po[j] += d * d;
                }
            }
            for (int64_t j = jb; j < je; ++j)
                po[j] *= inv;
        });
    recordKernel("col_var", 3.0 * static_cast<double>(n * f),
                 static_cast<double>((n * f + 2 * f) * sizeof(float)));
    return out;
}

Tensor
sumCols(const Tensor &a)
{
    gnnperf_assert(a.rank() == 2, "sumCols on rank ", a.rank());
    const int64_t n = a.dim(0), f = a.dim(1);
    Tensor out = Tensor::zeros({n}, a.device());
    const float *pa = a.data();
    float *po = out.data();
    par::parallelFor("par.row_sum", 0, n, rowGrain(f),
                     [&](int64_t ib, int64_t ie, int) {
                         for (int64_t i = ib; i < ie; ++i) {
                             float s = 0.0f;
                             for (int64_t j = 0; j < f; ++j)
                                 s += pa[i * f + j];
                             po[i] = s;
                         }
                     });
    recordKernel("row_sum", static_cast<double>(n * f),
                 static_cast<double>((n * f + n) * sizeof(float)));
    return out;
}

Tensor
sumAll(const Tensor &a)
{
    const float *pa = a.data();
    double s = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i)
        s += pa[i];
    recordKernel("sum_all", static_cast<double>(a.numel()),
                 static_cast<double>(a.bytes()));
    return Tensor::scalar(static_cast<float>(s), a.device());
}

Tensor
meanAll(const Tensor &a)
{
    Tensor s = sumAll(a);
    if (a.numel() > 0)
        s.set(0, s.at(0) / static_cast<float>(a.numel()));
    return s;
}

std::vector<int64_t>
argmaxRows(const Tensor &a)
{
    gnnperf_assert(a.rank() == 2, "argmaxRows on rank ", a.rank());
    const int64_t n = a.dim(0), f = a.dim(1);
    std::vector<int64_t> out(static_cast<std::size_t>(n));
    const float *pa = a.data();
    int64_t *po = out.data();
    par::parallelFor(
        "par.argmax", 0, n, rowGrain(f),
        [&](int64_t ib, int64_t ie, int) {
            for (int64_t i = ib; i < ie; ++i) {
                int64_t best = 0;
                float bestv = pa[i * f];
                for (int64_t j = 1; j < f; ++j) {
                    if (pa[i * f + j] > bestv) {
                        bestv = pa[i * f + j];
                        best = j;
                    }
                }
                po[i] = best;
            }
        });
    recordKernel("argmax", static_cast<double>(n * f),
                 static_cast<double>(a.bytes()));
    return out;
}

Tensor
softmaxRows(const Tensor &a)
{
    gnnperf_assert(a.rank() == 2, "softmaxRows on rank ", a.rank());
    const int64_t n = a.dim(0), f = a.dim(1);
    Tensor out(a.shape(), a.device());
    const float *pa = a.data();
    float *po = out.data();
    par::parallelFor(
        "par.softmax", 0, n, rowGrain(f),
        [&](int64_t ib, int64_t ie, int) {
            for (int64_t i = ib; i < ie; ++i) {
                float mx = pa[i * f];
                for (int64_t j = 1; j < f; ++j)
                    mx = std::max(mx, pa[i * f + j]);
                float denom = 0.0f;
                for (int64_t j = 0; j < f; ++j) {
                    float e = std::exp(pa[i * f + j] - mx);
                    po[i * f + j] = e;
                    denom += e;
                }
                const float inv = 1.0f / denom;
                for (int64_t j = 0; j < f; ++j)
                    po[i * f + j] *= inv;
            }
        });
    recordKernel("softmax", 5.0 * static_cast<double>(n * f),
                 2.0 * static_cast<double>(a.bytes()));
    return out;
}

Tensor
logSoftmaxRows(const Tensor &a)
{
    gnnperf_assert(a.rank() == 2, "logSoftmaxRows on rank ", a.rank());
    const int64_t n = a.dim(0), f = a.dim(1);
    Tensor out(a.shape(), a.device());
    const float *pa = a.data();
    float *po = out.data();
    par::parallelFor(
        "par.log_softmax", 0, n, rowGrain(f),
        [&](int64_t ib, int64_t ie, int) {
            for (int64_t i = ib; i < ie; ++i) {
                float mx = pa[i * f];
                for (int64_t j = 1; j < f; ++j)
                    mx = std::max(mx, pa[i * f + j]);
                float denom = 0.0f;
                for (int64_t j = 0; j < f; ++j)
                    denom += std::exp(pa[i * f + j] - mx);
                const float lse = std::log(denom) + mx;
                for (int64_t j = 0; j < f; ++j)
                    po[i * f + j] = pa[i * f + j] - lse;
            }
        });
    recordKernel("log_softmax", 5.0 * static_cast<double>(n * f),
                 2.0 * static_cast<double>(a.bytes()));
    return out;
}

Tensor
concatCols(const Tensor &a, const Tensor &b)
{
    gnnperf_assert(a.rank() == 2 && b.rank() == 2 &&
                   a.dim(0) == b.dim(0),
                   "concatCols: ", a.describe(), " ++ ", b.describe());
    const int64_t n = a.dim(0), fa = a.dim(1), fb = b.dim(1);
    Tensor out({n, fa + fb}, a.device());
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    for (int64_t i = 0; i < n; ++i) {
        std::memcpy(po + i * (fa + fb), pa + i * fa,
                    static_cast<std::size_t>(fa) * sizeof(float));
        std::memcpy(po + i * (fa + fb) + fa, pb + i * fb,
                    static_cast<std::size_t>(fb) * sizeof(float));
    }
    recordKernel("concat", 0.0,
                 2.0 * static_cast<double>(out.bytes()));
    return out;
}

Tensor
sliceCols(const Tensor &a, int64_t begin, int64_t end)
{
    gnnperf_assert(a.rank() == 2 && begin >= 0 && end <= a.dim(1) &&
                   begin <= end, "sliceCols: bad range [", begin, ",",
                   end, ") of ", a.describe());
    const int64_t n = a.dim(0), f = a.dim(1), w = end - begin;
    Tensor out({n, w}, a.device());
    const float *pa = a.data();
    float *po = out.data();
    for (int64_t i = 0; i < n; ++i)
        std::memcpy(po + i * w, pa + i * f + begin,
                    static_cast<std::size_t>(w) * sizeof(float));
    recordKernel("slice_cols", 0.0,
                 2.0 * static_cast<double>(out.bytes()));
    return out;
}

Tensor
sliceRows(const Tensor &a, int64_t begin, int64_t end)
{
    gnnperf_assert(a.rank() == 2 && begin >= 0 && end <= a.dim(0) &&
                   begin <= end, "sliceRows: bad range");
    const int64_t f = a.dim(1), h = end - begin;
    Tensor out({h, f}, a.device());
    std::memcpy(out.data(), a.data() + begin * f,
                static_cast<std::size_t>(h * f) * sizeof(float));
    recordKernel("slice_rows", 0.0,
                 2.0 * static_cast<double>(out.bytes()));
    return out;
}

Tensor
transpose(const Tensor &a)
{
    gnnperf_assert(a.rank() == 2, "transpose on rank ", a.rank());
    const int64_t n = a.dim(0), f = a.dim(1);
    Tensor out({f, n}, a.device());
    const float *pa = a.data();
    float *po = out.data();
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < f; ++j)
            po[j * n + i] = pa[i * f + j];
    recordKernel("transpose", 0.0,
                 2.0 * static_cast<double>(a.bytes()));
    return out;
}

Tensor
gatherRows(const Tensor &a, const std::vector<int64_t> &idx)
{
    gnnperf_assert(a.rank() == 2, "gatherRows on rank ", a.rank());
    Tensor out({static_cast<int64_t>(idx.size()), a.dim(1)},
               a.device());
    gatherRowsInto(out, a, idx);
    return out;
}

Tensor
scatterAddRows(const Tensor &src, const std::vector<int64_t> &idx,
               int64_t num_rows)
{
    gnnperf_assert(src.rank() == 2, "scatterAddRows on rank ",
                   src.rank());
    Tensor out({num_rows, src.dim(1)}, src.device());
    scatterAddRowsInto(out, src, idx);
    return out;
}

const char *
ewUnaryName(EwUnary k)
{
    switch (k) {
      case EwUnary::Scale:
        return "scale";
      case EwUnary::AddScalar:
        return "add_scalar";
      case EwUnary::Relu:
        return "relu";
      case EwUnary::Sigmoid:
        return "sigmoid";
      case EwUnary::Tanh:
        return "tanh";
      case EwUnary::Elu:
        return "elu";
      case EwUnary::LeakyRelu:
        return "leaky_relu";
      case EwUnary::Exp:
        return "exp";
    }
    return "?";
}

const char *
ewBinaryName(EwBinary k)
{
    switch (k) {
      case EwBinary::Add:
        return "add";
      case EwBinary::Sub:
        return "sub";
      case EwBinary::Mul:
        return "mul";
      case EwBinary::Div:
        return "div";
    }
    return "?";
}

double
ewUnaryFlops(EwUnary k)
{
    switch (k) {
      case EwUnary::Sigmoid:
      case EwUnary::Tanh:
      case EwUnary::Exp:
        return 4.0;
      case EwUnary::Elu:
        return 3.0;
      default:
        return 1.0;
    }
}

double
ewBinaryFlops(EwBinary)
{
    return 1.0;
}

void
ewUnaryInto(Tensor &out, const Tensor &a, EwUnary k, float p)
{
    checkSameShape(out, a, ewUnaryName(k));
    const float *pa = a.data();
    float *po = out.data();
    const int64_t n = a.numel();
    par::parallelFor("par.unary_op", 0, n, kElemGrain,
                     [&](int64_t b, int64_t e, int) {
                         for (int64_t i = b; i < e; ++i)
                             po[i] = ewUnaryApply(k, pa[i], p);
                     });
    recordElementwise(ewUnaryName(k), n, ewUnaryFlops(k), 2.0);
}

void
ewBinaryInto(Tensor &out, const Tensor &a, const Tensor &b, EwBinary k)
{
    checkSameShape(a, b, ewBinaryName(k));
    checkSameShape(out, a, ewBinaryName(k));
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    const int64_t n = a.numel();
    par::parallelFor("par.binary_op", 0, n, kElemGrain,
                     [&](int64_t b2, int64_t e2, int) {
                         for (int64_t i = b2; i < e2; ++i)
                             po[i] = ewBinaryApply(k, pa[i], pb[i]);
                     });
    recordElementwise(ewBinaryName(k), n, ewBinaryFlops(k), 3.0);
}

void
gatherRowsInto(Tensor &out, const Tensor &a,
               const std::vector<int64_t> &idx)
{
    gnnperf_assert(a.rank() == 2, "gatherRows on rank ", a.rank());
    const int64_t f = a.dim(1);
    const int64_t e = static_cast<int64_t>(idx.size());
    gnnperf_assert(out.rank() == 2 && out.dim(0) == e &&
                   out.dim(1) == f,
                   "gatherRowsInto: bad output ", out.describe());
    const float *pa = a.data();
    float *po = out.data();
    // Validate up front so workers never panic off the main thread.
    for (int64_t i = 0; i < e; ++i) {
        const int64_t r = idx[static_cast<std::size_t>(i)];
        gnnperf_assert(r >= 0 && r < a.dim(0), "gatherRows: index ", r,
                       " out of ", a.dim(0));
    }
    par::parallelFor(
        "par.gather_rows", 0, e, rowGrain(f),
        [&](int64_t ib, int64_t ie, int) {
            for (int64_t i = ib; i < ie; ++i)
                std::memcpy(po + i * f,
                            pa + idx[static_cast<std::size_t>(i)] * f,
                            static_cast<std::size_t>(f) * sizeof(float));
        });
    recordKernel("gather_rows", 0.0,
                 2.0 * static_cast<double>(out.bytes()));
}

void
scatterAddRowsInto(Tensor &out, const Tensor &src,
                   const std::vector<int64_t> &idx)
{
    gnnperf_assert(src.rank() == 2, "scatterAddRows on rank ",
                   src.rank());
    gnnperf_assert(static_cast<int64_t>(idx.size()) == src.dim(0),
                   "scatterAddRows: ", idx.size(), " indices for ",
                   src.dim(0), " rows");
    const int64_t f = src.dim(1);
    const int64_t num_rows = out.dim(0);
    gnnperf_assert(out.rank() == 2 && out.dim(1) == f,
                   "scatterAddRowsInto: bad output ", out.describe());
    static stats::Counter &calls = stats::counter("kernel.scatter.calls");
    static stats::Distribution &rows =
        stats::distribution("kernel.scatter.rows");
    calls.inc();
    rows.sample(static_cast<double>(num_rows));
    const float *ps = src.data();
    float *po = out.data();
    const int64_t ne = static_cast<int64_t>(idx.size());
    for (std::size_t e = 0; e < idx.size(); ++e)
        gnnperf_assert(idx[e] >= 0 && idx[e] < num_rows,
                       "scatterAddRows: index ", idx[e], " out of ",
                       num_rows);
    // Output-range partition (see scatterMaxRows): each chunk zeroes
    // its own output rows, then scans the full index vector in edge
    // order but only accumulates rows in its range, so per-row float
    // addition order matches the serial scan.
    par::parallelFor(
        "par.scatter_add", 0, num_rows, par::grainFor(num_rows, 1),
        [&](int64_t rb, int64_t re, int) {
            std::memset(po + rb * f, 0,
                        static_cast<std::size_t>((re - rb) * f) *
                            sizeof(float));
            for (int64_t e = 0; e < ne; ++e) {
                const int64_t r = idx[static_cast<std::size_t>(e)];
                if (r < rb || r >= re)
                    continue;
                const float *row = ps + e * f;
                float *dst = po + r * f;
                for (int64_t j = 0; j < f; ++j)
                    dst[j] += row[j];
            }
        });
    recordKernel("scatter_add", static_cast<double>(src.numel()),
                 2.0 * static_cast<double>(src.bytes()) +
                     static_cast<double>(out.bytes()));
}

Tensor
rowNorms(const Tensor &a, float eps)
{
    gnnperf_assert(a.rank() == 2, "rowNorms on rank ", a.rank());
    const int64_t n = a.dim(0), f = a.dim(1);
    Tensor out({n}, a.device());
    const float *pa = a.data();
    float *po = out.data();
    par::parallelFor(
        "par.row_norm", 0, n, rowGrain(f),
        [&](int64_t ib, int64_t ie, int) {
            for (int64_t i = ib; i < ie; ++i) {
                float s = 0.0f;
                for (int64_t j = 0; j < f; ++j)
                    s += pa[i * f + j] * pa[i * f + j];
                po[i] = std::sqrt(s + eps);
            }
        });
    recordKernel("row_norm", 2.0 * static_cast<double>(n * f),
                 static_cast<double>(a.bytes()));
    return out;
}

Tensor
l2NormalizeRows(const Tensor &a, float eps)
{
    Tensor norms = rowNorms(a, eps);
    return divCols(a, norms);
}

Tensor
maximum(const Tensor &a, const Tensor &b)
{
    return binaryOp(a, b, "maximum",
                    [](float x, float y) { return x > y ? x : y; });
}

Tensor
dropout(const Tensor &a, float p, Tensor &mask, uint64_t seed)
{
    gnnperf_assert(p >= 0.0f && p < 1.0f, "dropout: bad p=", p);
    mask = Tensor(a.shape(), a.device());
    Tensor out(a.shape(), a.device());
    Rng rng(seed);
    const float scale = 1.0f / (1.0f - p);
    const float *pa = a.data();
    float *pm = mask.data();
    float *po = out.data();
    const int64_t n = a.numel();
    // The RNG stream is sequential, so the mask is generated serially
    // (identical draws at every thread count); only the elementwise
    // apply runs on the pool.
    for (int64_t i = 0; i < n; ++i)
        pm[i] = rng.uniform() >= p ? scale : 0.0f;
    par::parallelFor("par.dropout_apply", 0, n, kElemGrain,
                     [&](int64_t b, int64_t e, int) {
                         for (int64_t i = b; i < e; ++i)
                             po[i] = pa[i] * pm[i];
                     });
    recordElementwise("dropout", n, 2.0, 3.0);
    return out;
}

bool
allFinite(const Tensor &a)
{
    const float *pa = a.data();
    for (int64_t i = 0; i < a.numel(); ++i)
        if (!std::isfinite(pa[i]))
            return false;
    return true;
}

} // namespace ops
} // namespace gnnperf
