#include "tensor/matmul.hh"

#include <cstring>

#include "common/logging.hh"
#include "device/profiler.hh"
#include "parallel/thread_pool.hh"

namespace gnnperf {
namespace ops {

namespace {

void
recordGemm(const char *name, int64_t n, int64_t k, int64_t m)
{
    recordKernel(name, 2.0 * static_cast<double>(n) * k * m,
                 static_cast<double>(n * k + k * m + n * m) *
                     sizeof(float));
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    gnnperf_assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
                   "matmul: ", a.describe(), " x ", b.describe());
    const int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
    Tensor c = Tensor::zeros({n, m}, a.device());
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // Output-row parallel: each C row is accumulated by one chunk in
    // the same kk order as the serial loop.
    par::parallelFor(
        "par.sgemm", 0, n, 16, [&](int64_t ib, int64_t ie, int) {
            for (int64_t i = ib; i < ie; ++i) {
                float *crow = pc + i * m;
                for (int64_t kk = 0; kk < k; ++kk) {
                    const float aik = pa[i * k + kk];
                    if (aik == 0.0f)
                        continue;
                    const float *brow = pb + kk * m;
                    for (int64_t j = 0; j < m; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        });
    recordGemm("sgemm", n, k, m);
    return c;
}

Tensor
matmulTransA(const Tensor &a, const Tensor &b)
{
    gnnperf_assert(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0),
                   "matmulTransA: ", a.describe(), "^T x ", b.describe());
    const int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
    Tensor c = Tensor::zeros({k, m}, a.device());
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // C[kk, j] = sum_i A[i, kk] * B[i, j]: accumulate row-wise so the
    // inner loop stays unit-stride on both B and C. Parallelised over
    // output-row (kk) ranges — each chunk runs the full i loop but only
    // touches its C rows, so per-element accumulation order matches the
    // serial scan. One chunk per thread: every chunk re-reads A and B.
    par::parallelFor(
        "par.sgemm_tn", 0, k, par::grainFor(k, 1),
        [&](int64_t kb, int64_t ke, int) {
            for (int64_t i = 0; i < n; ++i) {
                const float *arow = pa + i * k;
                const float *brow = pb + i * m;
                for (int64_t kk = kb; kk < ke; ++kk) {
                    const float aik = arow[kk];
                    if (aik == 0.0f)
                        continue;
                    float *crow = pc + kk * m;
                    for (int64_t j = 0; j < m; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        });
    recordGemm("sgemm_tn", k, n, m);
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    gnnperf_assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
                   "matmulTransB: ", a.describe(), " x ", b.describe(),
                   "^T");
    const int64_t n = a.dim(0), m = a.dim(1), k = b.dim(0);
    Tensor c = Tensor::zeros({n, k}, a.device());
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // C[i, kk] = dot(A[i, :], B[kk, :]) — both unit stride.
    par::parallelFor(
        "par.sgemm_nt", 0, n, 16, [&](int64_t ib, int64_t ie, int) {
            for (int64_t i = ib; i < ie; ++i) {
                const float *arow = pa + i * m;
                float *crow = pc + i * k;
                for (int64_t kk = 0; kk < k; ++kk) {
                    const float *brow = pb + kk * m;
                    float s = 0.0f;
                    for (int64_t j = 0; j < m; ++j)
                        s += arow[j] * brow[j];
                    crow[kk] = s;
                }
            }
        });
    recordGemm("sgemm_nt", n, m, k);
    return c;
}

} // namespace ops
} // namespace gnnperf
