/**
 * @file
 * Dense FP32 tensor with device-accounted storage.
 *
 * Tensors are row-major, contiguous, rank 1 or 2 (the GNN workloads in
 * the paper need nothing higher: multi-head attention is laid out as
 * [N, heads*feat]). Storage is reference counted; clones deep-copy.
 * Storage acquires its block from the device's active Allocator
 * (device/allocator.hh), which accounts logical live bytes (paper
 * Fig. 4) and reserved pool bytes to the DeviceManager.
 */

#ifndef GNNPERF_TENSOR_TENSOR_HH
#define GNNPERF_TENSOR_TENSOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "device/device.hh"

namespace gnnperf {

struct MemoryBlock;

/** Reference-counted flat float buffer on an allocator block. */
class Storage
{
  public:
    Storage(std::size_t numel, DeviceKind device);
    ~Storage();

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;

    float *data() { return data_; }
    const float *data() const { return data_; }
    std::size_t numel() const { return numel_; }
    DeviceKind device() const { return device_; }

    /** The backing allocator block (for aliasing tests/diagnostics). */
    const MemoryBlock *block() const { return block_; }

  private:
    MemoryBlock *block_;
    float *data_;
    std::size_t numel_;
    DeviceKind device_;
};

/**
 * Dense FP32 tensor.
 */
class Tensor
{
  public:
    /** An undefined tensor (no storage). */
    Tensor() = default;

    /** Allocate an uninitialised tensor of the given shape. */
    explicit Tensor(std::vector<int64_t> shape,
                    DeviceKind device = DeviceKind::Cuda);

    /** Zero-filled tensor. */
    static Tensor zeros(std::vector<int64_t> shape,
                        DeviceKind device = DeviceKind::Cuda);

    /** One-filled tensor. */
    static Tensor ones(std::vector<int64_t> shape,
                       DeviceKind device = DeviceKind::Cuda);

    /** Constant-filled tensor. */
    static Tensor full(std::vector<int64_t> shape, float value,
                       DeviceKind device = DeviceKind::Cuda);

    /** Tensor from explicit values (size must match the shape). */
    static Tensor fromVector(const std::vector<float> &values,
                             std::vector<int64_t> shape,
                             DeviceKind device = DeviceKind::Cuda);

    /** Scalar tensor of shape [1]. */
    static Tensor scalar(float value,
                         DeviceKind device = DeviceKind::Cuda);

    bool defined() const { return storage_ != nullptr; }
    int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
    const std::vector<int64_t> &shape() const { return shape_; }
    int64_t dim(int64_t i) const;
    int64_t numel() const { return numel_; }
    std::size_t bytes() const { return numel_ * sizeof(float); }
    DeviceKind device() const;

    float *data();
    const float *data() const;

    /** Element access for rank-1 / rank-2 tensors (bounds-checked). */
    float at(int64_t i) const;
    float at(int64_t i, int64_t j) const;
    void set(int64_t i, float v);
    void set(int64_t i, int64_t j, float v);

    /** Deep copy. */
    Tensor clone() const;

    /**
     * Copy to another device. Host→Cuda copies emit an H2DTransfer
     * host record (PCIe traffic in the timing model); same-device is a
     * cheap shared-storage copy.
     */
    Tensor to(DeviceKind device) const;

    /** View with a new shape (same storage; numel must match). */
    Tensor reshape(std::vector<int64_t> shape) const;

    /** Fill with a constant. */
    void fill(float value);

    /** Copy values out to a std::vector. */
    std::vector<float> toVector() const;

    /** "[2708, 1433] cuda" style description. */
    std::string describe() const;

    /** True when shapes are identical. */
    bool sameShape(const Tensor &other) const
    {
        return shape_ == other.shape_;
    }

  private:
    std::vector<int64_t> shape_;
    int64_t numel_ = 0;
    std::shared_ptr<Storage> storage_;
};

} // namespace gnnperf

#endif // GNNPERF_TENSOR_TENSOR_HH
