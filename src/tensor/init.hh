/**
 * @file
 * Weight initialisers. All draw from a caller-supplied Rng so whole
 * experiments are reproducible from one seed (paper §III-C requires
 * "same initialization" across frameworks — we satisfy it by seeding
 * both frameworks' models identically).
 */

#ifndef GNNPERF_TENSOR_INIT_HH
#define GNNPERF_TENSOR_INIT_HH

#include "common/random.hh"
#include "tensor/tensor.hh"

namespace gnnperf {
namespace init {

/** Glorot/Xavier uniform for a [fan_in, fan_out] matrix. */
Tensor glorotUniform(int64_t fan_in, int64_t fan_out, Rng &rng);

/** Kaiming/He uniform (ReLU gain) for a [fan_in, fan_out] matrix. */
Tensor kaimingUniform(int64_t fan_in, int64_t fan_out, Rng &rng);

/** Uniform in [-bound, bound] of any shape. */
Tensor uniform(std::vector<int64_t> shape, float bound, Rng &rng);

/** Normal(mean, std) of any shape. */
Tensor normal(std::vector<int64_t> shape, float mean, float stddev,
              Rng &rng);

} // namespace init
} // namespace gnnperf

#endif // GNNPERF_TENSOR_INIT_HH
