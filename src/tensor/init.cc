#include "tensor/init.hh"

#include <cmath>

namespace gnnperf {
namespace init {

Tensor
glorotUniform(int64_t fan_in, int64_t fan_out, Rng &rng)
{
    const float bound = std::sqrt(6.0f / static_cast<float>(fan_in +
                                                            fan_out));
    return uniform({fan_in, fan_out}, bound, rng);
}

Tensor
kaimingUniform(int64_t fan_in, int64_t fan_out, Rng &rng)
{
    const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
    return uniform({fan_in, fan_out}, bound, rng);
}

Tensor
uniform(std::vector<int64_t> shape, float bound, Rng &rng)
{
    Tensor t(std::move(shape));
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(rng.uniform(-bound, bound));
    return t;
}

Tensor
normal(std::vector<int64_t> shape, float mean, float stddev, Rng &rng)
{
    Tensor t(std::move(shape));
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(rng.normal(mean, stddev));
    return t;
}

} // namespace init
} // namespace gnnperf
