/**
 * @file
 * Dense matrix multiplication (the cuBLAS sgemm stand-in).
 *
 * The implementation uses an i-k-j loop order with a packed row of A in
 * registers so the inner loop auto-vectorises; this is the single most
 * performance-critical kernel for the node-classification workloads
 * (Cora's 1433-dim features drive a 2708×1433×80 GEMM per layer).
 */

#ifndef GNNPERF_TENSOR_MATMUL_HH
#define GNNPERF_TENSOR_MATMUL_HH

#include "tensor/tensor.hh"

namespace gnnperf {
namespace ops {

/** C[N,M] = A[N,K] · B[K,M]. */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C[K,M] = Aᵀ[K,N] · B[N,M] for A stored as [N,K]. */
Tensor matmulTransA(const Tensor &a, const Tensor &b);

/** C[N,K] = A[N,M] · Bᵀ[M,K] for B stored as [K,M]. */
Tensor matmulTransB(const Tensor &a, const Tensor &b);

} // namespace ops
} // namespace gnnperf

#endif // GNNPERF_TENSOR_MATMUL_HH
