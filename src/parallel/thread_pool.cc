#include "parallel/thread_pool.hh"

#include <algorithm>

#include "common/buildinfo.hh"
#include "common/checks.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "obs/hwprof.hh"
#include "obs/spans.hh"
#include "obs/stats.hh"
#include "parallel/write_check.hh"

namespace gnnperf {
namespace par {

namespace {

/** Set on pool worker threads for their whole lifetime. */
thread_local bool t_onWorker = false;

/** Set while this thread is inside a parallel launch (worker or caller). */
thread_local bool t_inRegion = false;

/**
 * Checked-launch trampoline: run the user's chunk, then log the chunk
 * range into the write-set checker's per-slot log. `ctx` is the
 * (userFn, userCtx) pair published with the launch.
 */
struct CheckedLaunch
{
    ChunkFn fn;
    void *ctx;
};

void
checkedTrampoline(void *ctx, int64_t b, int64_t e, int slot)
{
    auto *launch = static_cast<CheckedLaunch *>(ctx);
    launch->fn(launch->ctx, b, e, slot);
    writecheck::LaunchChecker::instance().noteChunk(slot, b, e);
}

/** One per process: launches never nest (nested calls run inline). */
CheckedLaunch g_checkedLaunch;

} // namespace

ThreadPool &
ThreadPool::instance()
{
    // Leaked, like DeviceManager: workers must outlive every static
    // destructor that might still launch a kernel.
    static ThreadPool *pool = new ThreadPool();  // lint:allow leaked singleton
    return *pool;
}

ThreadPool::ThreadPool() : numThreads_(defaultThreads())
{
    std::lock_guard<std::mutex> lock(mu_);
    spawnWorkersLocked(numThreads_ - 1);
    buildinfo::setRunFact("threads", std::to_string(numThreads_));
}

int
ThreadPool::defaultThreads()
{
    const int64_t env = envInt("GNNPERF_THREADS", 0);
    if (env > 0)
        return static_cast<int>(std::min<int64_t>(env, kMaxThreads));
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1
                   : std::min(static_cast<int>(hc), kMaxThreads);
}

bool
ThreadPool::onWorkerThread()
{
    return t_onWorker;
}

bool
ThreadPool::inParallelRegion()
{
    return t_inRegion;
}

void
ThreadPool::setNumThreads(int n)
{
    gnnperf_assert(!inParallelRegion(),
                   "ThreadPool::setNumThreads inside a parallel region");
    n = std::clamp(n, 1, kMaxThreads);
    std::lock_guard<std::mutex> lock(mu_);
    numThreads_ = n;
    spawnWorkersLocked(n - 1);
    buildinfo::setRunFact("threads", std::to_string(numThreads_));
}

void
ThreadPool::spawnWorkersLocked(int target)
{
    while (static_cast<int>(workers_.size()) < target) {
        const int index = static_cast<int>(workers_.size());
        workers_.emplace_back([this, index] { workerMain(index); });
    }
}

void
ThreadPool::workerMain(int worker_index)
{
    t_onWorker = true;
    uint64_t seen = 0;
    for (;;) {
        int width;
        {
            std::unique_lock<std::mutex> lock(mu_);
            jobCv_.wait(lock, [&] { return generation_ != seen; });
            // Read the launch width under the same lock as the
            // generation: a worker the launch does not use may only
            // reacquire the lock after the *next* launch is published,
            // and must then see that launch's width, not a torn pair.
            seen = generation_;
            width = width_;
        }
        // Worker i owns slot i + 1 (the caller is slot 0); workers
        // beyond the launch width sit this one out. Participants may
        // read the job fields without the lock: the caller is blocked
        // at the barrier until they finish, so nothing mutates them.
        const int slot = worker_index + 1;
        if (slot >= width)
            continue;
        t_inRegion = true;
        uint64_t tasks = 0, steals = 0;
        // Per-thread counter slot: bracket the work so this worker's
        // cycles/instructions land in the pending accumulator and get
        // attributed to the kernel the caller is about to record.
        const bool hw = hwprof::enabled();
        hwprof::Sample hw_start;
        if (hw)
            hw_start = hwprof::workerBegin();
        workOn(slot, width, tasks, steals);
        if (hw)
            hwprof::workerEnd(hw_start);
        t_inRegion = false;
        jobTasks_.fetch_add(tasks, std::memory_order_relaxed);
        jobSteals_.fetch_add(steals, std::memory_order_relaxed);
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Lock/unlock pairs the notify with the caller's wait so
            // the wake-up cannot be lost between its predicate check
            // and its sleep.
            { std::lock_guard<std::mutex> lock(mu_); }
            doneCv_.notify_one();
        }
    }
}

void
ThreadPool::drainPartition(int part, int slot, uint64_t &tasks,
                           uint64_t &steals)
{
    Partition &p = parts_[part];
    const int64_t end = p.end;
    for (;;) {
        // fetch_add claims a disjoint [b, b + grain) window even under
        // contention; overshoot past `end` just means nothing was left.
        const int64_t b =
            p.cursor.fetch_add(grain_, std::memory_order_relaxed);
        if (b >= end)
            return;
        fn_(ctx_, b, std::min(b + grain_, end), slot);
        ++tasks;
        if (part != slot)
            ++steals;
    }
}

void
ThreadPool::workOn(int slot, int width, uint64_t &tasks,
                   uint64_t &steals)
{
    // Own partition first (static chunking, best locality) ...
    drainPartition(slot, slot, tasks, steals);
    // ... then one stealing sweep over everyone else's leftovers.
    for (int off = 1; off < width; ++off)
        drainPartition((slot + off) % width, slot, tasks, steals);
}

void
ThreadPool::run(const char *name, int64_t begin, int64_t end,
                int64_t grain, ChunkFn fn, void *ctx)
{
    static stats::Counter &launches =
        stats::counter("parallel.launches");
    static stats::Counter &taskCount = stats::counter("parallel.tasks");
    static stats::Counter &stealCount =
        stats::counter("parallel.steals");
    static stats::Counter &barrierWaits =
        stats::counter("parallel.barrier_waits");
    static stats::Gauge &threadsGauge = stats::gauge("parallel.threads");

    HostSpan span(name);

    const int64_t total = end - begin;
    const int64_t chunks = (total + grain - 1) / grain;
    const int width = static_cast<int>(std::min<int64_t>(
        numThreads_, std::min<int64_t>(chunks, kMaxThreads)));

    // Checked builds log every chunk this launch executes and verify
    // disjointness + exact coverage after the barrier. The wrap is
    // decided before the launch is published so workers and caller
    // agree on the trampoline.
    const bool checked = checksEnabled();
    if (checked) {
        writecheck::LaunchChecker::instance().beginLaunch(name, begin,
                                                          end);
        g_checkedLaunch = CheckedLaunch{fn, ctx};
        fn = &checkedTrampoline;
        ctx = &g_checkedLaunch;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = fn;
        ctx_ = ctx;
        grain_ = grain;
        width_ = width;
        // Contiguous per-slot partitions: slot s gets
        // [begin + s*base + min(s, rem), ... + base + (s < rem)).
        const int64_t base = total / width;
        const int64_t rem = total % width;
        int64_t at = begin;
        for (int s = 0; s < width; ++s) {
            const int64_t len = base + (s < rem ? 1 : 0);
            parts_[s].cursor.store(at, std::memory_order_relaxed);
            parts_[s].end = at + len;
            at += len;
        }
        if (corruptNextLaunch_) {
            // Seeded partition race (tests only): rewind slot 1's
            // cursor one grain into slot 0's territory so one chunk is
            // claimed twice. The write-set checker must turn this into
            // a deterministic abort.
            corruptNextLaunch_ = false;
            if (width >= 2) {
                const int64_t rewound = std::max(
                    begin, parts_[1].cursor.load(
                               std::memory_order_relaxed) - grain);
                parts_[1].cursor.store(rewound,
                                       std::memory_order_relaxed);
            }
        }
        jobTasks_.store(0, std::memory_order_relaxed);
        jobSteals_.store(0, std::memory_order_relaxed);
        pending_.store(width - 1, std::memory_order_relaxed);
        ++generation_;
    }
    jobCv_.notify_all();

    // The caller is slot 0.
    t_inRegion = true;
    uint64_t tasks = 0, steals = 0;
    workOn(0, width, tasks, steals);
    t_inRegion = false;
    jobTasks_.fetch_add(tasks, std::memory_order_relaxed);
    jobSteals_.fetch_add(steals, std::memory_order_relaxed);

    bool waited = false;
    if (pending_.load(std::memory_order_acquire) != 0) {
        waited = true;
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [&] {
            return pending_.load(std::memory_order_acquire) == 0;
        });
    }

    if (checked)
        writecheck::LaunchChecker::instance().endLaunch();

    launches.inc();
    taskCount.inc(jobTasks_.load(std::memory_order_relaxed));
    stealCount.inc(jobSteals_.load(std::memory_order_relaxed));
    if (waited)
        barrierWaits.inc();
    threadsGauge.set(static_cast<double>(numThreads_));
}

int64_t
grainFor(int64_t total, int chunks_per_slot)
{
    const int64_t slots = ThreadPool::instance().numThreads();
    const int64_t chunks =
        std::max<int64_t>(1, slots * std::max(chunks_per_slot, 1));
    return std::max<int64_t>(1, (total + chunks - 1) / chunks);
}

} // namespace par
} // namespace gnnperf
