#include "parallel/write_check.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "device/profiler.hh"

namespace gnnperf {
namespace par {
namespace writecheck {

namespace {

/**
 * Kernel/phase/layer attribution for a violation message, from the
 * same profiler state that stamps trace records — so a checker abort
 * names the training phase and model layer, not just the kernel.
 */
std::string
attribution(const char *what)
{
    Profiler &prof = Profiler::instance();
    std::string out = what;
    out += " [phase=";
    out += phaseName(prof.phase());
    const int16_t layer = prof.layer();
    if (layer >= 0 &&
        layer < static_cast<int16_t>(prof.layerNames().size())) {
        out += ", layer=";
        out += prof.layerNames()[static_cast<std::size_t>(layer)];
    }
    out += "]";
    return out;
}

} // namespace

void
RangeLog::clear()
{
    for (SlotLog &s : slots_)
        s.ranges.clear();
}

std::size_t
RangeLog::rangeCount() const
{
    std::size_t n = 0;
    for (const SlotLog &s : slots_)
        n += s.ranges.size();
    return n;
}

void
RangeLog::verify(const char *what, int64_t begin, int64_t end,
                 bool require_cover) const
{
    // Gather (range, slot) pairs so the abort can name both writers.
    struct Noted
    {
        Range r;
        int slot;
    };
    std::vector<Noted> all;
    for (int s = 0; s < kMaxSlots; ++s)
        for (const Range &r : slots_[s].ranges) {
            gnnperf_assert(r.begin <= r.end, "write-set checker: ",
                           attribution(what), " slot ", s,
                           " noted inverted range [", r.begin, ", ",
                           r.end, ")");
            if (r.begin < r.end)
                all.push_back(Noted{r, s});
        }

    std::sort(all.begin(), all.end(),
              [](const Noted &a, const Noted &b) {
                  if (a.r.begin != b.r.begin)
                      return a.r.begin < b.r.begin;
                  return a.r.end < b.r.end;
              });

    int64_t frontier = begin;
    int prev_slot = -1;
    for (const Noted &n : all) {
        if (n.r.begin < frontier) {
            gnnperf_panic(
                "write-set checker: overlapping writes in ",
                attribution(what), ": slot ", n.slot, " wrote [",
                n.r.begin, ", ", n.r.end, ") but slot ", prev_slot,
                " had already written up to ", frontier,
                " — partition race (double-claimed chunk or stray "
                "scatter)");
        }
        if (require_cover && n.r.begin > frontier) {
            gnnperf_panic("write-set checker: coverage gap in ",
                          attribution(what), ": [", frontier, ", ",
                          n.r.begin, ") was never written");
        }
        frontier = std::max(frontier, n.r.end);
        prev_slot = n.slot;
    }
    gnnperf_assert(frontier <= end, "write-set checker: ",
                   attribution(what), " wrote up to ", frontier,
                   " past the declared domain end ", end);
    if (require_cover) {
        gnnperf_assert(
            frontier == end && begin <= end,
            "write-set checker: coverage gap in ", attribution(what),
            ": [", frontier, ", ", end, ") was never written");
    }
}

LaunchChecker &
LaunchChecker::instance()
{
    // Leaked like the pool itself: launches can happen during static
    // destruction.
    static LaunchChecker *checker = new LaunchChecker();  // lint:allow leaked singleton
    return *checker;
}

void
LaunchChecker::beginLaunch(const char *name, int64_t begin, int64_t end)
{
    log_.clear();
    name_ = name;
    begin_ = begin;
    end_ = end;
}

void
LaunchChecker::endLaunch()
{
    // Chunks are execution ranges: the pool must run every index of
    // the launch domain exactly once, so coverage is always required.
    log_.verify(name_, begin_, end_, /*require_cover=*/true);
}

} // namespace writecheck
} // namespace par
} // namespace gnnperf
