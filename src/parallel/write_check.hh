/**
 * @file
 * Parallel write-set checker: structural verification of kernel
 * partitioning in checked builds.
 *
 * Every deterministic-parallel kernel in this repo relies on the same
 * unwritten contract: the chunks of one parallelFor launch write
 * disjoint slices of the output, and together they write all of it
 * exactly once. A partitioning bug (an off-by-one in the per-slot
 * ranges, a double-claimed chunk after a cursor rewind, a scatter that
 * strays outside its output range) silently breaks the bit-identical-
 * at-every-width guarantee — the worst kind of race, because the
 * numbers still look plausible.
 *
 * In checked builds (common/checks.hh) this module turns the contract
 * into a deterministic abort:
 *
 *  - **Chunk coverage (automatic).** The thread pool logs every chunk
 *    [b, e) a launch executes into a lock-free per-slot range log.
 *    After the barrier, the verifier sorts the ranges and asserts they
 *    are pairwise disjoint and cover [begin, end) exactly — proving
 *    every index was processed exactly once, at every width, for every
 *    parallelFor/grainFor launch in the process, with no kernel
 *    cooperation needed.
 *  - **Declared write-sets (kernel-assisted).** Kernels whose writes
 *    are *derived* from the launch domain (edge_softmax writes edges
 *    while iterating nodes, segment broadcast writes row ranges from
 *    the segment pointer) open a WriteSet over the *output* domain and
 *    note the ranges they actually write; the destructor runs the same
 *    disjointness/coverage verification. A chunk that writes a row
 *    owned by another chunk dies with kernel/phase/layer attribution
 *    instead of corrupting a reduction.
 *
 * When checks are off every entry point is a branch on a plain bool:
 * no logs, no atomics, byte-identical stats and numerics.
 */

#ifndef GNNPERF_PARALLEL_WRITE_CHECK_HH
#define GNNPERF_PARALLEL_WRITE_CHECK_HH

#include <cstdint>
#include <vector>

#include "common/checks.hh"

namespace gnnperf {
namespace par {

namespace writecheck {

/** One noted half-open index range. */
struct Range
{
    int64_t begin = 0;
    int64_t end = 0;
};

/**
 * Per-slot range logs for one launch. Each slot's log is only ever
 * appended by the thread currently running that slot, so recording
 * needs no synchronisation; verification happens after the barrier,
 * when all writers are done.
 */
class RangeLog
{
  public:
    /** Must match ThreadPool::kMaxThreads. */
    static constexpr int kMaxSlots = 64;

    /** Drop all noted ranges (start of a launch / WriteSet). */
    void clear();

    /** Note that `slot` executed/wrote [b, e). */
    void
    note(int slot, int64_t b, int64_t e)
    {
        slots_[slot].ranges.push_back(Range{b, e});
    }

    /**
     * Verify the noted ranges are pairwise disjoint and — when
     * `require_cover` — exactly cover [begin, end). Panics with
     * `what` plus the active profiler phase/layer on violation.
     */
    void verify(const char *what, int64_t begin, int64_t end,
                bool require_cover) const;

    /** Total noted ranges (test introspection). */
    std::size_t rangeCount() const;

  private:
    /** Padded so two slots never share a cache line. */
    struct alignas(64) SlotLog
    {
        std::vector<Range> ranges;
    };

    SlotLog slots_[kMaxSlots];
};

/**
 * The launch-scoped checker behind the thread pool's automatic chunk
 * coverage. The pool calls begin/note/end around every checked
 * parallel launch; launches never nest (nested parallelFor falls back
 * to the inline serial path), so one process-wide instance suffices.
 */
class LaunchChecker
{
  public:
    static LaunchChecker &instance();

    void beginLaunch(const char *name, int64_t begin, int64_t end);

    void
    noteChunk(int slot, int64_t b, int64_t e)
    {
        log_.note(slot, b, e);
    }

    /** Post-barrier: verify disjointness + exact coverage. */
    void endLaunch();

  private:
    LaunchChecker() = default;

    RangeLog log_;
    const char *name_ = "?";
    int64_t begin_ = 0;
    int64_t end_ = 0;
};

} // namespace writecheck

/**
 * Kernel-declared output write-set over [0, domain) — for kernels
 * whose written indices differ from the launch's iteration domain.
 * Open before the launch, call note(slot, b, e) for every range the
 * chunk writes, and the destructor verifies disjointness (and exact
 * coverage unless requireCover(false) was called) when checks are on.
 * A no-op shell when checks are off.
 *
 *     par::WriteSet ws("edge_softmax", in_index.numEdges());
 *     par::parallelFor(... [&](int64_t vb, int64_t ve, int slot) {
 *         ...
 *         ws.note(slot, e, e + 1);   // for every edge written
 *     });
 *     // ~WriteSet verifies every edge written exactly once
 */
class WriteSet
{
  public:
    WriteSet(const char *what, int64_t domain)
        : what_(what), domain_(domain), active_(checksEnabled())
    {
        if (active_)
            log_.clear();
    }

    ~WriteSet()
    {
        if (active_)
            log_.verify(what_, 0, domain_, cover_);
    }

    WriteSet(const WriteSet &) = delete;
    WriteSet &operator=(const WriteSet &) = delete;

    /**
     * Kernels that legitimately leave part of the domain unwritten
     * (scatter_max rows with no incoming edges) keep the disjointness
     * check but drop the coverage requirement.
     */
    void requireCover(bool on) { cover_ = on; }

    /** Note that `slot` wrote [b, e) of the output domain. */
    void
    note(int slot, int64_t b, int64_t e)
    {
        if (active_)
            log_.note(slot, b, e);
    }

    /** Whether this write-set is recording (checks on). */
    bool active() const { return active_; }

  private:
    writecheck::RangeLog log_;
    const char *what_;
    int64_t domain_;
    bool active_;
    bool cover_ = true;
};

} // namespace par
} // namespace gnnperf

#endif // GNNPERF_PARALLEL_WRITE_CHECK_HH
