/**
 * @file
 * Process-wide work-stealing thread pool: the parallel runtime under
 * every hot kernel.
 *
 * Outside device/multi_gpu the repo historically ran every kernel
 * (SpMM, scatter/gather, edge softmax, segment reduce, dense GEMM) on
 * one thread, so the roofline engine attributed "bandwidth-bound"
 * shares no single core can actually saturate. This subsystem supplies
 * one leaked singleton pool (alongside DeviceManager) of persistent
 * workers and a barrier-synchronised `parallelFor(begin, end, grain,
 * fn)` primitive, in the spirit of ggml's row-sliced op parallelism:
 *
 *  - The index range is split into one contiguous *partition* per
 *    participating thread (static chunking, good locality).
 *  - Each partition is drained in `grain`-sized chunks through an
 *    atomic cursor; a thread that exhausts its own partition *steals*
 *    chunks from the other partitions, so power-law-skewed row costs
 *    (one mega-degree node) cannot serialise the launch.
 *  - The caller participates as slot 0 and blocks until every chunk
 *    has run, so kernel code before/after the launch needs no fences.
 *
 * Determinism contract: every chunk [b, e) is executed exactly once,
 * and the callback receives the *runner's* slot index (for per-thread
 * scratch slices), so a kernel whose chunks write disjoint output rows
 * in unchanged per-row order produces byte-identical results at every
 * thread count — and `threads == 1` short-circuits to a plain inline
 * call, the exact historical serial path.
 *
 * Observability: each parallel launch bumps `parallel.launches`,
 * `parallel.tasks` (chunks run) and `parallel.steals` (chunks run off
 * their home partition) in the stats registry, sets the
 * `parallel.threads` gauge, counts `parallel.barrier_waits` when the
 * caller had to block for stragglers, and opens a wall-clock HostSpan
 * named after the kernel so pool activity shows up in the merged
 * Chrome trace (obs/exec_trace.hh).
 *
 * Thread count: `GNNPERF_THREADS` (env) else hardware_concurrency;
 * `--threads=N` on run_experiment overrides per run; ThreadScope
 * overrides per scope (tests, benches).
 *
 * Checked builds (common/checks.hh): every pooled launch additionally
 * logs the chunk ranges it executes into the parallel write-set
 * checker (parallel/write_check.hh) and verifies disjointness and
 * exact-once coverage after the barrier, so a partitioning bug aborts
 * deterministically instead of corrupting a reduction.
 */

#ifndef GNNPERF_PARALLEL_THREAD_POOL_HH
#define GNNPERF_PARALLEL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace gnnperf {
namespace par {

/** Chunk callback: fn(context, chunk_begin, chunk_end, runner_slot). */
using ChunkFn = void (*)(void *, int64_t, int64_t, int);

/**
 * The process-wide pool. Workers are spawned lazily on first demand
 * and persist for the process lifetime (the instance is intentionally
 * leaked, like DeviceManager, so late static destructors can still
 * launch work).
 */
class ThreadPool
{
  public:
    /** Hard cap on pool width (worker slots, including the caller). */
    static constexpr int kMaxThreads = 64;

    /** The process-wide instance. */
    static ThreadPool &instance();

    /**
     * Configured width: GNNPERF_THREADS when set, else
     * hardware_concurrency (min 1), until setNumThreads overrides it.
     */
    int numThreads() const { return numThreads_; }

    /**
     * Set the pool width (clamped to [1, kMaxThreads]). Spawns missing
     * workers immediately; surplus workers stay parked. Must not be
     * called from inside a parallel region.
     */
    void setNumThreads(int n);

    /** GNNPERF_THREADS else hardware_concurrency, clamped. */
    static int defaultThreads();

    /** True on a pool worker thread (used to refuse nested launches). */
    static bool onWorkerThread();

    /**
     * True while a parallel launch is executing on this thread —
     * either a worker running chunks or the caller inside run().
     * Allocator-touching code (Workspace::ensure) asserts this is
     * false.
     */
    static bool inParallelRegion();

    /**
     * Run fn over [begin, end) in grain-sized chunks across the pool.
     * Blocks until complete. Falls back to one inline serial call
     * (begin, end, slot 0) when the pool width is 1, the range fits in
     * a single chunk, or the caller is already inside a parallel
     * region — the exact historical path, no atomics touched.
     *
     * `name` labels the launch's HostSpan in the execution trace and
     * should be a string literal (names are interned by the tracer).
     */
    template <typename Fn>
    void
    forRange(const char *name, int64_t begin, int64_t end, int64_t grain,
             Fn &&fn)
    {
        if (end <= begin)
            return;
        if (grain < 1)
            grain = 1;
        if (numThreads_ <= 1 || end - begin <= grain ||
            inParallelRegion()) {
            fn(begin, end, 0);
            return;
        }
        run(name, begin, end, grain, &trampoline<Fn>,
            const_cast<void *>(static_cast<const void *>(&fn)));
    }

    /**
     * Test hook: corrupt the *next* pooled launch by rewinding one
     * partition cursor so a chunk is claimed twice — the seeded
     * partition race that proves the write-set checker fires (it
     * aborts the process in checked builds). One-shot; ignored when
     * the next launch takes the serial fallback.
     */
    void testCorruptNextLaunch() { corruptNextLaunch_ = true; }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

  private:
    ThreadPool();
    ~ThreadPool() = default;  // leaked; workers never joined

    template <typename Fn>
    static void
    trampoline(void *ctx, int64_t b, int64_t e, int slot)
    {
        (*static_cast<Fn *>(ctx))(b, e, slot);
    }

    /** One per-slot work partition, padded against false sharing. */
    struct alignas(64) Partition
    {
        std::atomic<int64_t> cursor{0};
        int64_t end = 0;
    };

    void run(const char *name, int64_t begin, int64_t end, int64_t grain,
             ChunkFn fn, void *ctx);
    void workOn(int slot, int width, uint64_t &tasks, uint64_t &steals);
    void drainPartition(int part, int slot, uint64_t &tasks,
                        uint64_t &steals);
    void spawnWorkersLocked(int target);
    void workerMain(int worker_index);

    int numThreads_ = 1;
    bool corruptNextLaunch_ = false;

    std::mutex mu_;
    std::condition_variable jobCv_;   ///< workers wait for a launch
    std::condition_variable doneCv_;  ///< caller waits for the barrier
    uint64_t generation_ = 0;         ///< bumped per launch

    // Current launch (published under mu_, read by woken workers).
    ChunkFn fn_ = nullptr;
    void *ctx_ = nullptr;
    int64_t grain_ = 1;
    int width_ = 1;                   ///< participating slots
    Partition parts_[kMaxThreads];
    std::atomic<int> pending_{0};     ///< workers not yet at the barrier
    std::atomic<uint64_t> jobTasks_{0};
    std::atomic<uint64_t> jobSteals_{0};

    std::vector<std::thread> workers_;
};

/**
 * Convenience free function; see ThreadPool::forRange. The callback is
 * fn(chunk_begin, chunk_end, runner_slot) with runner_slot in
 * [0, numThreads()).
 */
template <typename Fn>
inline void
parallelFor(const char *name, int64_t begin, int64_t end, int64_t grain,
            Fn &&fn)
{
    ThreadPool::instance().forRange(name, begin, end, grain,
                                    std::forward<Fn>(fn));
}

/**
 * A grain that yields ~chunks_per_slot chunks per participating
 * thread. chunks_per_slot == 1 gives pure static partitioning (use
 * when every extra chunk re-reads shared input, e.g. column-split
 * reductions); larger values leave room for stealing on skewed costs.
 */
int64_t grainFor(int64_t total, int chunks_per_slot);

/**
 * RAII thread-count override for tests and benches: sets the pool
 * width on construction, restores the previous width on destruction.
 */
class ThreadScope
{
  public:
    explicit ThreadScope(int n)
        : prev_(ThreadPool::instance().numThreads())
    {
        ThreadPool::instance().setNumThreads(n);
    }

    ~ThreadScope() { ThreadPool::instance().setNumThreads(prev_); }

    ThreadScope(const ThreadScope &) = delete;
    ThreadScope &operator=(const ThreadScope &) = delete;

  private:
    int prev_;
};

} // namespace par
} // namespace gnnperf

#endif // GNNPERF_PARALLEL_THREAD_POOL_HH
