#include "core/experiment.hh"

#include <cmath>

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "device/multi_gpu.hh"
#include "device/profiler.hh"
#include "obs/hwprof.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"

namespace gnnperf {

std::vector<NodeExperimentRow>
runNodeClassification(const NodeDataset &dataset,
                      const std::vector<ModelKind> &models, int seeds,
                      int max_epochs, bool verbose)
{
    std::vector<NodeExperimentRow> rows;
    for (ModelKind kind : models) {
        for (FrameworkKind fw : allFrameworks()) {
            NodeExperimentRow row;
            row.model = kind;
            row.framework = fw;
            std::vector<double> accs;
            double epoch_sum = 0.0, total_sum = 0.0;
            for (int s = 0; s < seeds; ++s) {
                TrainOptions opts;
                opts.maxEpochs = max_epochs;
                opts.seed = 1000 + static_cast<uint64_t>(s);
                opts.verbose = verbose;
                NodeTrainResult r = trainNodeTask(
                    kind, getBackend(fw), dataset, opts);
                accs.push_back(r.testAccuracy);
                epoch_sum += r.epochTime;
                total_sum += r.totalTime;
                row.epochsRun = r.epochsRun;
            }
            row.accuracy = computeStats(accs);
            row.epochTime = epoch_sum / std::max(seeds, 1);
            row.totalTime = total_sum / std::max(seeds, 1);
            rows.push_back(row);
            gnnperf_inform(dataset.name, " ", modelName(kind), "/",
                           frameworkName(fw), ": epoch ",
                           row.epochTime, "s acc ",
                           row.accuracy.mean * 100.0);
        }
    }
    return rows;
}

std::vector<GraphExperimentRow>
runGraphClassification(const GraphDataset &dataset,
                       const std::vector<ModelKind> &models, int folds,
                       int max_epochs, uint64_t seed, bool verbose)
{
    // Paper §IV-B.1: always a 10-fold geometry with fixed indices,
    // reused across all experiments for fair comparisons. Smoke-scale
    // runs simply evaluate fewer of the ten folds.
    std::vector<FoldSplit> splits =
        stratifiedKFold(dataset.labels(), 10, seed);
    folds = std::min<int>(folds, 10);

    std::vector<GraphExperimentRow> rows;
    for (ModelKind kind : models) {
        for (FrameworkKind fw : allFrameworks()) {
            GraphExperimentRow row;
            row.model = kind;
            row.framework = fw;
            std::vector<double> accs;
            double epoch_sum = 0.0, total_sum = 0.0;
            for (int f = 0; f < folds; ++f) {
                TrainOptions opts;
                opts.maxEpochs = max_epochs;
                opts.seed = seed + static_cast<uint64_t>(f);
                opts.verbose = verbose;
                GraphTrainResult r = trainGraphTask(
                    kind, getBackend(fw), dataset,
                    splits[static_cast<std::size_t>(f)], opts);
                accs.push_back(r.testAccuracy);
                epoch_sum += r.epochTime;
                total_sum += r.totalTime;
                row.epochsRun = r.epochsRun;
            }
            row.accuracy = computeStats(accs);
            row.epochTime = epoch_sum / std::max(folds, 1);
            row.totalTime = total_sum / std::max(folds, 1);
            rows.push_back(row);
            gnnperf_inform(dataset.name, " ", modelName(kind), "/",
                           frameworkName(fw), ": epoch ",
                           row.epochTime, "s acc ",
                           row.accuracy.mean * 100.0);
        }
    }
    return rows;
}

std::vector<ProfileCell>
runProfileGrid(const GraphDataset &dataset,
               const std::vector<ModelKind> &models,
               const std::vector<int64_t> &batch_sizes, int epochs,
               uint64_t seed)
{
    std::vector<FoldSplit> splits =
        stratifiedKFold(dataset.labels(), 10, seed);
    const FoldSplit &fold = splits.front();

    std::vector<ProfileCell> cells;
    for (ModelKind kind : models) {
        for (FrameworkKind fw : allFrameworks()) {
            for (int64_t bs : batch_sizes) {
                ProfileCell cell;
                cell.model = kind;
                cell.framework = fw;
                cell.batchSize = bs;
                cell.profile = profileGraphTask(
                    kind, getBackend(fw), dataset, fold, epochs, bs,
                    seed);
                cells.push_back(cell);
            }
        }
    }
    return cells;
}

std::vector<ProfileCell>
runLayerwiseProfile(const GraphDataset &dataset,
                    const std::vector<ModelKind> &models,
                    int64_t batch_size, int epochs, uint64_t seed)
{
    std::vector<FoldSplit> splits =
        stratifiedKFold(dataset.labels(), 10, seed);
    const FoldSplit &fold = splits.front();

    std::vector<ProfileCell> cells;
    for (ModelKind kind : models) {
        for (FrameworkKind fw : allFrameworks()) {
            ProfileCell cell;
            cell.model = kind;
            cell.framework = fw;
            cell.batchSize = batch_size;
            cell.profile = profileGraphTask(kind, getBackend(fw),
                                            dataset, fold, epochs,
                                            batch_size, seed);
            cells.push_back(cell);
        }
    }
    return cells;
}

std::vector<RooflineReport>
runGraphRoofline(const GraphDataset &dataset,
                 const std::vector<ModelKind> &models, int epochs,
                 int64_t batch_size, uint64_t seed)
{
    std::vector<FoldSplit> splits =
        stratifiedKFold(dataset.labels(), 10, seed);
    const FoldSplit &fold = splits.front();

    std::vector<RooflineReport> suite;
    for (ModelKind kind : models) {
        for (FrameworkKind fw : allFrameworks()) {
            const Backend &backend = getBackend(fw);
            RooflineAnalyzer analyzer(
                CostModel::defaultModel(), backend.dispatchOverhead(),
                std::string(modelName(kind)) + "/" +
                    frameworkName(fw));
            TrainOptions opts;
            opts.maxEpochs = epochs;
            opts.batchSize = batch_size;
            opts.seed = seed;
            opts.traceObserver =
                [&analyzer](const Trace &trace,
                            const std::vector<std::string> &names) {
                    analyzer.addTrace(trace, names);
                };
            // Scope measured counters to this config so the Measured
            // columns line up with exactly this report's launches.
            hwprof::resetAggregates();
            trainGraphTask(kind, backend, dataset, fold, opts);
            RooflineReport report = analyzer.report();
            attachMeasuredCounters(report);
            suite.push_back(std::move(report));
        }
    }
    return suite;
}

std::vector<RooflineReport>
runNodeRoofline(const NodeDataset &dataset,
                const std::vector<ModelKind> &models, int epochs,
                uint64_t seed)
{
    std::vector<RooflineReport> suite;
    for (ModelKind kind : models) {
        for (FrameworkKind fw : allFrameworks()) {
            const Backend &backend = getBackend(fw);
            RooflineAnalyzer analyzer(
                CostModel::defaultModel(), backend.dispatchOverhead(),
                std::string(modelName(kind)) + "/" +
                    frameworkName(fw));
            TrainOptions opts;
            opts.maxEpochs = epochs;
            opts.seed = seed;
            opts.traceObserver =
                [&analyzer](const Trace &trace,
                            const std::vector<std::string> &names) {
                    analyzer.addTrace(trace, names);
                };
            hwprof::resetAggregates();
            trainNodeTask(kind, backend, dataset, opts);
            RooflineReport report = analyzer.report();
            attachMeasuredCounters(report);
            suite.push_back(std::move(report));
        }
    }
    return suite;
}

namespace {

/**
 * Measure the DataParallel model inputs for one (model, framework,
 * batch size) configuration by really executing a shard-sized
 * iteration and a full-batch collation.
 */
DataParallelParams
measureDataParallel(ModelKind kind, const Backend &backend,
                    const GraphDataset &dataset,
                    const std::vector<int64_t> &train_idx,
                    int64_t batch_size, int gpus, uint64_t seed)
{
    Profiler &prof = Profiler::instance();
    prof.reset();
    prof.setEnabled(true);

    Hyperparameters hp = graphTaskHyperparameters(
        kind, dataset.numFeatures, dataset.numClasses, seed);
    auto model = makeModel(kind, backend, hp.model);
    nn::Adam optimizer(model->parameters(), hp.train.lr);

    DataParallelParams p;
    p.numGpus = gpus;
    p.paramBytes = model->parameterBytes();

    // (1) Full-batch collation cost (host side, serial).
    {
        std::vector<const Graph *> members;
        for (int64_t i = 0;
             i < batch_size &&
             i < static_cast<int64_t>(train_idx.size()); ++i) {
            members.push_back(&dataset.graphs[static_cast<std::size_t>(
                train_idx[static_cast<std::size_t>(i)])]);
        }
        PhaseScope phase(Phase::DataLoading);
        BatchedGraph full = backend.collate(members);
        TimelineResult t = Timeline::replay(
            prof.trace(), CostModel::defaultModel(),
            backend.dispatchOverhead(), prof.layerNames());
        p.collateTime = t.phaseElapsed[Phase::DataLoading];
        prof.clearTrace();
    }

    // (2) One shard-sized training iteration, really executed.
    const int64_t shard_graphs =
        std::max<int64_t>(batch_size / gpus, 1);
    std::vector<const Graph *> members;
    for (int64_t i = 0;
         i < shard_graphs &&
         i < static_cast<int64_t>(train_idx.size()); ++i) {
        members.push_back(&dataset.graphs[static_cast<std::size_t>(
            train_idx[static_cast<std::size_t>(i)])]);
    }
    BatchedGraph shard = backend.collate(members);
    prof.clearTrace();  // collation of the shard is not compute time
    p.shardInputBytes =
        shard.featureBytes() +
        static_cast<double>(shard.numEdges()) * 2.0 * sizeof(int64_t);
    p.shardOutputBytes = static_cast<double>(shard.numGraphs) *
                         static_cast<double>(dataset.numClasses) *
                         sizeof(float);

    {
        Var logits;
        {
            PhaseScope phase(Phase::Forward);
            logits = model->forward(shard);
        }
        Var loss;
        {
            PhaseScope phase(Phase::Other);
            loss = nn::crossEntropy(logits, shard.graphLabels);
        }
        {
            PhaseScope phase(Phase::Backward);
            model->zeroGrad();
            loss.backward();
        }
        {
            PhaseScope phase(Phase::Update);
            optimizer.step();
        }
    }
    TimelineResult t = Timeline::replay(prof.trace(),
                                        CostModel::defaultModel(),
                                        backend.dispatchOverhead(),
                                        prof.layerNames());
    prof.clearTrace();
    p.shardComputeElapsed = t.phaseElapsed[Phase::Forward] +
                            t.phaseElapsed[Phase::Backward] +
                            t.phaseElapsed[Phase::Other];
    const std::size_t compute_kernels =
        t.phaseKernels[static_cast<int>(Phase::Forward)] +
        t.phaseKernels[static_cast<int>(Phase::Backward)] +
        t.phaseKernels[static_cast<int>(Phase::Other)];
    p.shardDispatchTime = static_cast<double>(compute_kernels) *
                          backend.dispatchOverhead();
    p.updateTime = t.phaseElapsed[Phase::Update];
    return p;
}

} // namespace

std::vector<MultiGpuCell>
runMultiGpuScaling(const GraphDataset &dataset,
                   const std::vector<ModelKind> &models,
                   const std::vector<int64_t> &batch_sizes,
                   const std::vector<int> &gpu_counts, uint64_t seed)
{
    FoldSplit split = stratifiedSplit(dataset.labels(), 0.8, 0.1,
                                      seed);
    std::vector<MultiGpuCell> cells;
    for (ModelKind kind : models) {
        for (FrameworkKind fw : allFrameworks()) {
            for (int64_t bs : batch_sizes) {
                for (int gpus : gpu_counts) {
                    DataParallelParams p = measureDataParallel(
                        kind, getBackend(fw), dataset, split.train, bs,
                        gpus, seed);
                    const double iterations = std::ceil(
                        static_cast<double>(split.train.size()) /
                        static_cast<double>(bs));
                    MultiGpuCell cell;
                    cell.model = kind;
                    cell.framework = fw;
                    cell.batchSize = bs;
                    cell.gpus = gpus;
                    cell.epochTime =
                        iterations *
                        DataParallelModel::iterationTime(
                            p, CostModel::defaultModel());
                    cells.push_back(cell);
                    gnnperf_inform("MNIST ", modelName(kind), "/",
                                   frameworkName(fw), " bs=", bs,
                                   " gpus=", gpus, ": ",
                                   cell.epochTime, " s/epoch");
                }
            }
        }
    }
    return cells;
}

} // namespace gnnperf
