#include "core/config.hh"

#include "common/logging.hh"

namespace gnnperf {

Hyperparameters
nodeTaskHyperparameters(ModelKind kind, int64_t in_features,
                        int64_t num_classes, uint64_t seed)
{
    Hyperparameters hp;
    hp.model.inFeatures = in_features;
    hp.model.numClasses = num_classes;
    hp.model.numLayers = 2;
    hp.model.graphTask = false;
    hp.model.batchNorm = false;
    hp.model.residual = false;
    hp.model.dropout = 0.5f;
    hp.model.seed = seed;
    hp.train.maxEpochs = 200;
    hp.train.earlyStopPatience = 25;
    hp.train.batchSize = 0;  // full batch

    switch (kind) {
      case ModelKind::GCN:
        hp.model.hidden = 80;
        hp.train.lr = 0.01f;
        break;
      case ModelKind::GAT:
        hp.model.hidden = 32;
        hp.model.heads = 8;
        hp.train.lr = 0.01f;
        break;
      case ModelKind::GIN:
        hp.model.hidden = 64;
        hp.model.learnEps = false;  // Table II lists plain sum aggr
        hp.train.lr = 0.005f;
        break;
      case ModelKind::GraphSage:
        hp.model.hidden = 32;
        hp.train.lr = 0.001f;
        break;
      case ModelKind::MoNet:
        hp.model.hidden = 64;
        hp.model.kernels = 2;
        hp.train.lr = 0.003f;
        break;
      case ModelKind::GatedGCN:
        hp.model.hidden = 64;
        hp.train.lr = 0.001f;
        break;
    }
    return hp;
}

Hyperparameters
graphTaskHyperparameters(ModelKind kind, int64_t in_features,
                         int64_t num_classes, uint64_t seed)
{
    Hyperparameters hp;
    hp.model.inFeatures = in_features;
    hp.model.numClasses = num_classes;
    hp.model.numLayers = 4;
    hp.model.graphTask = true;
    hp.model.batchNorm = true;
    hp.model.residual = true;
    hp.model.dropout = 0.0f;
    hp.model.seed = seed;
    hp.train.maxEpochs = 1000;
    hp.train.lrPatience = 25;
    hp.train.lrFactor = 0.5f;
    hp.train.minLr = 1e-6f;
    hp.train.batchSize = 128;

    switch (kind) {
      case ModelKind::GCN:
        hp.model.hidden = 128;
        hp.train.lr = 1e-3f;
        break;
      case ModelKind::GAT:
        hp.model.hidden = 256;  // 8 heads × 32 per head (Table III)
        hp.model.heads = 8;
        hp.train.lr = 1e-3f;
        break;
      case ModelKind::GIN:
        hp.model.hidden = 80;
        hp.model.learnEps = true;
        hp.train.lr = 1e-3f;
        break;
      case ModelKind::GraphSage:
        hp.model.hidden = 96;
        hp.train.lr = 7e-4f;
        break;
      case ModelKind::MoNet:
        hp.model.hidden = 80;
        hp.model.kernels = 2;
        hp.train.lr = 1e-3f;
        break;
      case ModelKind::GatedGCN:
        hp.model.hidden = 96;
        hp.train.lr = 7e-4f;
        break;
    }
    return hp;
}

} // namespace gnnperf
