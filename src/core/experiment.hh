/**
 * @file
 * Experiment drivers: one function per table/figure of the paper.
 * The bench binaries are thin wrappers around these (so they are also
 * exercised by the integration tests at small scale).
 */

#ifndef GNNPERF_CORE_EXPERIMENT_HH
#define GNNPERF_CORE_EXPERIMENT_HH

#include "core/evaluator.hh"
#include "core/trainer.hh"
#include "data/citation.hh"
#include "data/mnist_superpixel.hh"
#include "data/tu_dataset.hh"
#include "obs/roofline.hh"

namespace gnnperf {

/** One Table IV row (per model × framework). */
struct NodeExperimentRow
{
    ModelKind model;
    FrameworkKind framework;
    double epochTime = 0.0;   ///< avg simulated s/epoch over seeds
    double totalTime = 0.0;   ///< avg simulated total s over seeds
    SeriesStats accuracy;     ///< over seeds, in [0,1]
    int epochsRun = 0;
};

/** Table IV: node classification on one dataset. */
std::vector<NodeExperimentRow>
runNodeClassification(const NodeDataset &dataset,
                      const std::vector<ModelKind> &models, int seeds,
                      int max_epochs, bool verbose = false);

/** One Table V row. */
struct GraphExperimentRow
{
    ModelKind model;
    FrameworkKind framework;
    double epochTime = 0.0;
    double totalTime = 0.0;
    SeriesStats accuracy;  ///< over folds
    int epochsRun = 0;
};

/** Table V: graph classification with stratified k-fold CV. */
std::vector<GraphExperimentRow>
runGraphClassification(const GraphDataset &dataset,
                       const std::vector<ModelKind> &models, int folds,
                       int max_epochs, uint64_t seed,
                       bool verbose = false);

/** One cell of the Figs. 1/2/4/5 grids. */
struct ProfileCell
{
    ModelKind model;
    FrameworkKind framework;
    int64_t batchSize = 0;
    ProfileResult profile;
};

/**
 * Figs. 1/2 (breakdown), 4 (memory), 5 (utilization): profile every
 * model × framework × batch size on one dataset.
 */
std::vector<ProfileCell>
runProfileGrid(const GraphDataset &dataset,
               const std::vector<ModelKind> &models,
               const std::vector<int64_t> &batch_sizes, int epochs,
               uint64_t seed);

/** Fig. 3: layer-wise forward time per iteration (batch 128). */
std::vector<ProfileCell>
runLayerwiseProfile(const GraphDataset &dataset,
                    const std::vector<ModelKind> &models,
                    int64_t batch_size, int epochs, uint64_t seed);

/** One Fig. 6 point. */
struct MultiGpuCell
{
    ModelKind model;
    FrameworkKind framework;
    int64_t batchSize = 0;
    int gpus = 1;
    double epochTime = 0.0;
};

/** Fig. 6: DataParallel scaling on MNIST for GCN and GAT. */
std::vector<MultiGpuCell>
runMultiGpuScaling(const GraphDataset &dataset,
                   const std::vector<ModelKind> &models,
                   const std::vector<int64_t> &batch_sizes,
                   const std::vector<int> &gpu_counts, uint64_t seed);

/**
 * Roofline attribution for model × framework on a graph dataset: each
 * configuration trains for `epochs` mini-batch epochs while every
 * epoch's trace is classified (obs/roofline.hh). One report per
 * configuration, labelled "Model/Framework".
 */
std::vector<RooflineReport>
runGraphRoofline(const GraphDataset &dataset,
                 const std::vector<ModelKind> &models, int epochs,
                 int64_t batch_size, uint64_t seed);

/** Roofline attribution for the transductive node task. */
std::vector<RooflineReport>
runNodeRoofline(const NodeDataset &dataset,
                const std::vector<ModelKind> &models, int epochs,
                uint64_t seed);

} // namespace gnnperf

#endif // GNNPERF_CORE_EXPERIMENT_HH
