/**
 * @file
 * Paper-style rendering of experiment results (the tables the bench
 * binaries print).
 */

#ifndef GNNPERF_CORE_REPORT_HH
#define GNNPERF_CORE_REPORT_HH

#include <string>

#include "core/experiment.hh"

namespace gnnperf {

/** "0.0049s/5.82s" — time per epoch / total training time. */
std::string epochTotalCell(double epoch_seconds, double total_seconds);

/** "80.8±1.3" — accuracy mean ± s.d. in percent. */
std::string accuracyCell(const SeriesStats &stats);

/** Render Table IV/V-style rows for one dataset. */
std::string renderNodeTable(const std::string &dataset_name,
                            const std::vector<NodeExperimentRow> &rows);
std::string renderGraphTable(const std::string &dataset_name,
                             const std::vector<GraphExperimentRow> &rows);

/** Render the Fig. 1/2 breakdown grid for one dataset. */
std::string renderBreakdownTable(const std::string &dataset_name,
                                 const std::vector<ProfileCell> &cells);

/** Render the Fig. 4 memory grid. */
std::string renderMemoryTable(const std::string &dataset_name,
                              const std::vector<ProfileCell> &cells);

/** Render the Fig. 5 utilization grid. */
std::string renderUtilizationTable(const std::string &dataset_name,
                                   const std::vector<ProfileCell> &cells);

/** Render the Fig. 3 layer-wise table. */
std::string renderLayerwiseTable(const std::string &dataset_name,
                                 const std::vector<ProfileCell> &cells);

/** Render the Fig. 6 multi-GPU table. */
std::string renderMultiGpuTable(const std::string &dataset_name,
                                const std::vector<MultiGpuCell> &cells);

/** Render Table I for a set of dataset infos. */
std::string renderDatasetTable(const std::vector<DatasetInfo> &infos);

// ----- machine-readable outputs ---------------------------------------------

/** CSV forms of the tables (for downstream plotting). */
std::string nodeTableCsv(const std::string &dataset_name,
                         const std::vector<NodeExperimentRow> &rows);
std::string graphTableCsv(const std::string &dataset_name,
                          const std::vector<GraphExperimentRow> &rows);
std::string profileGridCsv(const std::string &dataset_name,
                           const std::vector<ProfileCell> &cells);
std::string multiGpuCsv(const std::string &dataset_name,
                        const std::vector<MultiGpuCell> &cells);
std::string datasetInfoCsv(const std::vector<DatasetInfo> &infos);

/**
 * When GNNPERF_CSV_DIR is set, write `content` to
 * `$GNNPERF_CSV_DIR/<filename>` and report where; otherwise no-op.
 */
void maybeWriteCsv(const std::string &filename,
                   const std::string &content);

/**
 * Append the process-wide Cuda allocator series (logical/reserved
 * peaks, acquisition and backing-allocation counts, cache hits) to a
 * BENCH series list. Reads DeviceManager's MemoryStats directly, so it
 * works with stats sampling off.
 */
void appendAllocatorSeries(
    std::vector<std::pair<std::string, double>> &series);

/**
 * Append the thread-pool series (configured width, launch and task
 * counts) to a BENCH series list. Only deterministic counters: steals
 * and barrier waits depend on scheduling and would not survive a
 * 0%-tolerance diff of back-to-back runs.
 */
void appendParallelSeries(
    std::vector<std::pair<std::string, double>> &series);

/**
 * Append the hardware-counter series (`hwprof.*`) to a BENCH series
 * list. A no-op when the profiler is off, keeping hwprof-off BENCH
 * JSONs byte-identical; the values are machine-dependent, so gates
 * diff them with --ignore hwprof.
 */
void appendHwprofSeries(
    std::vector<std::pair<std::string, double>> &series);

/**
 * Append the recorded-IR dispatch series (`ir.*`): ops recorded,
 * fused launches, launches saved by fusion, and the planner's
 * reserved peak (the Cuda reserved high-water mark in graph mode, 0
 * in eager, where no plan ran). Deterministic at every thread width,
 * so graph-mode runs diff clean at 0% tolerance.
 */
void appendIrSeries(
    std::vector<std::pair<std::string, double>> &series);

/**
 * When GNNPERF_CSV_DIR is set and stats sampling is on, write the
 * registry's JSON snapshot (`<prefix>_stats.json`), per-epoch series
 * CSV (`<prefix>_stats_epochs.csv`) and run-event log
 * (`<prefix>_events.jsonl`) next to the table CSVs; otherwise no-op.
 */
void maybeWriteStatsArtifacts(const std::string &prefix);

} // namespace gnnperf

#endif // GNNPERF_CORE_REPORT_HH
