#include "core/evaluator.hh"

#include <cmath>

#include "common/logging.hh"
#include "tensor/ops.hh"

namespace gnnperf {

double
accuracy(const Tensor &logits, const std::vector<int64_t> &labels,
         const std::vector<int64_t> &row_subset)
{
    gnnperf_assert(logits.rank() == 2, "accuracy: rank ", logits.rank());
    gnnperf_assert(static_cast<int64_t>(labels.size()) == logits.dim(0),
                   "accuracy: ", labels.size(), " labels for ",
                   logits.dim(0), " rows");
    std::vector<int64_t> preds = ops::argmaxRows(logits);
    std::size_t correct = 0, total = 0;
    if (row_subset.empty()) {
        for (std::size_t i = 0; i < labels.size(); ++i) {
            correct += preds[i] == labels[i] ? 1 : 0;
            ++total;
        }
    } else {
        for (int64_t r : row_subset) {
            gnnperf_assert(r >= 0 &&
                           r < static_cast<int64_t>(labels.size()),
                           "accuracy: row ", r, " out of range");
            correct += preds[static_cast<std::size_t>(r)] ==
                       labels[static_cast<std::size_t>(r)] ? 1 : 0;
            ++total;
        }
    }
    return total > 0 ? static_cast<double>(correct) /
                           static_cast<double>(total) : 0.0;
}

SeriesStats
computeStats(const std::vector<double> &values)
{
    SeriesStats stats;
    stats.count = values.size();
    if (values.empty())
        return stats;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    stats.mean = sum / static_cast<double>(values.size());
    if (values.size() > 1) {
        double ss = 0.0;
        for (double v : values)
            ss += (v - stats.mean) * (v - stats.mean);
        stats.stddev = std::sqrt(
            ss / static_cast<double>(values.size() - 1));
    }
    return stats;
}

} // namespace gnnperf
