/**
 * @file
 * The paper's hyper-parameter tables (Table II for node
 * classification, Table III for graph classification), baked in so
 * every bench and example trains exactly the configurations the paper
 * evaluates.
 */

#ifndef GNNPERF_CORE_CONFIG_HH
#define GNNPERF_CORE_CONFIG_HH

#include "models/gnn_model.hh"

namespace gnnperf {

/** Optimisation schedule. */
struct TrainSetup
{
    float lr = 1e-3f;        ///< (initial) learning rate
    int maxEpochs = 200;
    int earlyStopPatience = 0;  ///< node tasks: val-accuracy patience
    int lrPatience = 25;     ///< graph tasks: plateau patience
    float lrFactor = 0.5f;
    float minLr = 1e-6f;
    int64_t batchSize = 128;
};

/** A model architecture plus its training schedule. */
struct Hyperparameters
{
    ModelConfig model;
    TrainSetup train;
};

/**
 * Table II: node-classification settings (2 layers, full batch,
 * ≤ 200 epochs).
 */
Hyperparameters nodeTaskHyperparameters(ModelKind kind,
                                        int64_t in_features,
                                        int64_t num_classes,
                                        uint64_t seed);

/**
 * Table III: graph-classification settings (4 layers, batch 128,
 * ReduceLROnPlateau 0.5/25/1e-6).
 */
Hyperparameters graphTaskHyperparameters(ModelKind kind,
                                         int64_t in_features,
                                         int64_t num_classes,
                                         uint64_t seed);

} // namespace gnnperf

#endif // GNNPERF_CORE_CONFIG_HH
