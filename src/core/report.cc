#include "core/report.hh"

#include "common/env.hh"
#include "common/fs.hh"
#include "common/logging.hh"
#include "common/string_utils.hh"
#include "common/table.hh"
#include "device/device.hh"
#include "device/trace_export.hh"
#include "ir/ir.hh"
#include "obs/hwprof.hh"
#include "obs/stats.hh"
#include "obs/stats_export.hh"
#include "parallel/thread_pool.hh"

namespace gnnperf {

std::string
epochTotalCell(double epoch_seconds, double total_seconds)
{
    return formatDuration(epoch_seconds) + "/" +
           formatDuration(total_seconds);
}

std::string
accuracyCell(const SeriesStats &stats)
{
    return strprintf("%.1f±%.1f", stats.mean * 100.0,
                     stats.stddev * 100.0);
}

namespace {

std::string
cellKey(ModelKind model, FrameworkKind fw)
{
    return std::string(modelName(model)) + "/" + frameworkName(fw);
}

} // namespace

std::string
renderNodeTable(const std::string &dataset_name,
                const std::vector<NodeExperimentRow> &rows)
{
    TextTable table;
    table.setHeader({"Dataset", "Model", "Framework", ">Epoch/Total",
                     ">Acc±s.d.", ">Epochs"});
    for (const auto &row : rows) {
        table.addRow({dataset_name, modelName(row.model),
                      frameworkName(row.framework),
                      epochTotalCell(row.epochTime, row.totalTime),
                      accuracyCell(row.accuracy),
                      strprintf("%d", row.epochsRun)});
    }
    return table.render();
}

std::string
renderGraphTable(const std::string &dataset_name,
                 const std::vector<GraphExperimentRow> &rows)
{
    TextTable table;
    table.setHeader({"Dataset", "Model", "Framework", ">Epoch/Total",
                     ">Acc±s.d.", ">Epochs"});
    for (const auto &row : rows) {
        table.addRow({dataset_name, modelName(row.model),
                      frameworkName(row.framework),
                      epochTotalCell(row.epochTime, row.totalTime),
                      accuracyCell(row.accuracy),
                      strprintf("%d", row.epochsRun)});
    }
    return table.render();
}

std::string
renderBreakdownTable(const std::string &dataset_name,
                     const std::vector<ProfileCell> &cells)
{
    TextTable table;
    table.setHeader({"Dataset", "Config", ">Batch", ">Load(ms)",
                     ">Fwd(ms)", ">Bwd(ms)", ">Update(ms)",
                     ">Other(ms)", ">Epoch(ms)", ">Load%"});
    for (const auto &cell : cells) {
        const EpochBreakdown &b = cell.profile.breakdown;
        const double total = b.total();
        table.addRow({dataset_name,
                      cellKey(cell.model, cell.framework),
                      strprintf("%ld", cell.batchSize),
                      strprintf("%.2f", b.dataLoading * 1e3),
                      strprintf("%.2f", b.forward * 1e3),
                      strprintf("%.2f", b.backward * 1e3),
                      strprintf("%.2f", b.update * 1e3),
                      strprintf("%.2f", b.other * 1e3),
                      strprintf("%.2f", total * 1e3),
                      strprintf("%.0f%%",
                                total > 0.0
                                    ? b.dataLoading / total * 100.0
                                    : 0.0)});
    }
    return table.render();
}

std::string
renderMemoryTable(const std::string &dataset_name,
                  const std::vector<ProfileCell> &cells)
{
    TextTable table;
    table.setHeader({"Dataset", "Config", ">Batch", ">Peak mem",
                     ">Peak (MiB)", ">Reserved (MiB)"});
    for (const auto &cell : cells) {
        table.addRow({dataset_name,
                      cellKey(cell.model, cell.framework),
                      strprintf("%ld", cell.batchSize),
                      formatBytes(cell.profile.peakMemoryBytes),
                      strprintf("%.1f",
                                static_cast<double>(
                                    cell.profile.peakMemoryBytes) /
                                    (1024.0 * 1024.0)),
                      strprintf("%.1f",
                                static_cast<double>(
                                    cell.profile.reservedPeakBytes) /
                                    (1024.0 * 1024.0))});
    }
    return table.render();
}

std::string
renderUtilizationTable(const std::string &dataset_name,
                       const std::vector<ProfileCell> &cells)
{
    TextTable table;
    table.setHeader({"Dataset", "Config", ">Batch", ">GPU util",
                     ">Kernels/epoch"});
    for (const auto &cell : cells) {
        table.addRow({dataset_name,
                      cellKey(cell.model, cell.framework),
                      strprintf("%ld", cell.batchSize),
                      strprintf("%.1f%%",
                                cell.profile.gpuUtilization * 100.0),
                      strprintf("%zu", cell.profile.kernelsPerEpoch)});
    }
    return table.render();
}

std::string
renderLayerwiseTable(const std::string &dataset_name,
                     const std::vector<ProfileCell> &cells)
{
    TextTable table;
    table.setHeader({"Dataset", "Config", "Layer", ">Time/iter (µs)"});
    for (const auto &cell : cells) {
        for (const auto &[layer, seconds] : cell.profile.layerTimes) {
            table.addRow({dataset_name,
                          cellKey(cell.model, cell.framework), layer,
                          strprintf("%.1f", seconds * 1e6)});
        }
        table.addSeparator();
    }
    return table.render();
}

std::string
renderMultiGpuTable(const std::string &dataset_name,
                    const std::vector<MultiGpuCell> &cells)
{
    TextTable table;
    table.setHeader({"Dataset", "Config", ">Batch", ">GPUs",
                     ">Epoch (s)"});
    for (const auto &cell : cells) {
        table.addRow({dataset_name,
                      cellKey(cell.model, cell.framework),
                      strprintf("%ld", cell.batchSize),
                      strprintf("%d", cell.gpus),
                      strprintf("%.3f", cell.epochTime)});
    }
    return table.render();
}

std::string
nodeTableCsv(const std::string &dataset_name,
             const std::vector<NodeExperimentRow> &rows)
{
    std::string out =
        "dataset,model,framework,epoch_s,total_s,acc_mean,acc_std,"
        "epochs\n";
    for (const auto &row : rows) {
        out += strprintf("%s,%s,%s,%.6f,%.3f,%.4f,%.4f,%d\n",
                         dataset_name.c_str(), modelName(row.model),
                         frameworkName(row.framework), row.epochTime,
                         row.totalTime, row.accuracy.mean,
                         row.accuracy.stddev, row.epochsRun);
    }
    return out;
}

std::string
graphTableCsv(const std::string &dataset_name,
              const std::vector<GraphExperimentRow> &rows)
{
    std::string out =
        "dataset,model,framework,epoch_s,total_s,acc_mean,acc_std,"
        "epochs\n";
    for (const auto &row : rows) {
        out += strprintf("%s,%s,%s,%.6f,%.3f,%.4f,%.4f,%d\n",
                         dataset_name.c_str(), modelName(row.model),
                         frameworkName(row.framework), row.epochTime,
                         row.totalTime, row.accuracy.mean,
                         row.accuracy.stddev, row.epochsRun);
    }
    return out;
}

std::string
profileGridCsv(const std::string &dataset_name,
               const std::vector<ProfileCell> &cells)
{
    std::string out =
        "dataset,model,framework,batch,load_s,forward_s,backward_s,"
        "update_s,other_s,epoch_s,gpu_util,peak_bytes,"
        "reserved_peak_bytes,kernels\n";
    for (const auto &cell : cells) {
        const EpochBreakdown &b = cell.profile.breakdown;
        out += strprintf(
            "%s,%s,%s,%ld,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.4f,%zu,%zu,"
            "%zu\n",
            dataset_name.c_str(), modelName(cell.model),
            frameworkName(cell.framework), cell.batchSize,
            b.dataLoading, b.forward, b.backward, b.update, b.other,
            b.total(), cell.profile.gpuUtilization,
            cell.profile.peakMemoryBytes,
            cell.profile.reservedPeakBytes,
            cell.profile.kernelsPerEpoch);
    }
    return out;
}

std::string
multiGpuCsv(const std::string &dataset_name,
            const std::vector<MultiGpuCell> &cells)
{
    std::string out = "dataset,model,framework,batch,gpus,epoch_s\n";
    for (const auto &cell : cells) {
        out += strprintf("%s,%s,%s,%ld,%d,%.6f\n",
                         dataset_name.c_str(), modelName(cell.model),
                         frameworkName(cell.framework), cell.batchSize,
                         cell.gpus, cell.epochTime);
    }
    return out;
}

std::string
datasetInfoCsv(const std::vector<DatasetInfo> &infos)
{
    std::string out =
        "dataset,graphs,avg_nodes,avg_edges,features,classes\n";
    for (const auto &info : infos) {
        out += strprintf("%s,%ld,%.2f,%.2f,%ld,%ld\n",
                         info.name.c_str(), info.numGraphs,
                         info.avgNodes, info.avgEdges,
                         info.numFeatures, info.numClasses);
    }
    return out;
}

void
maybeWriteCsv(const std::string &filename, const std::string &content)
{
    const std::string dir = envString("GNNPERF_CSV_DIR", "");
    if (dir.empty())
        return;
    if (!ensureDir(dir)) {
        gnnperf_fatal("GNNPERF_CSV_DIR=", dir,
                      ": not a directory and could not be created — "
                      "refusing to drop ", filename);
    }
    const std::string path = dir + "/" + filename;
    writeFile(path, content);
    gnnperf_inform("wrote ", path);
}

void
appendAllocatorSeries(
    std::vector<std::pair<std::string, double>> &series)
{
    const MemoryStats &s =
        DeviceManager::instance().stats(DeviceKind::Cuda);
    series.emplace_back("alloc.cuda.acquires",
                        static_cast<double>(s.acquireCount));
    series.emplace_back("alloc.cuda.device_allocs",
                        static_cast<double>(s.allocCount));
    series.emplace_back("alloc.cuda.cache_hits",
                        static_cast<double>(s.cacheHits));
    series.emplace_back("alloc.cuda.logical_peak",
                        static_cast<double>(s.peakBytes));
    series.emplace_back("alloc.cuda.reserved_peak",
                        static_cast<double>(s.reservedPeak));
}

void
appendParallelSeries(
    std::vector<std::pair<std::string, double>> &series)
{
    series.emplace_back(
        "parallel.threads",
        static_cast<double>(par::ThreadPool::instance().numThreads()));
    // Launches and executed chunks are functions of the kernel shapes
    // and the configured width, not of scheduling, so they diff clean
    // at 0% tolerance (unlike steals/barrier waits, which stay out).
    for (const auto &snap : stats::Registry::instance().snapshotAll()) {
        if (snap.name == "parallel.launches" ||
            snap.name == "parallel.tasks")
            series.emplace_back(snap.name, snap.value);
    }
}

void
appendHwprofSeries(
    std::vector<std::pair<std::string, double>> &series)
{
    if (!hwprof::enabled())
        return;
    const hwprof::Snapshot snap = hwprof::snapshot();
    const double tier_level =
        snap.tier == hwprof::Tier::Hardware   ? 2
        : snap.tier == hwprof::Tier::Software ? 1
                                              : 0;
    series.emplace_back("hwprof.tier", tier_level);
    series.emplace_back("hwprof.windows",
                        static_cast<double>(snap.total.windows));
    for (int c = 0; c < hwprof::kNumCounters; ++c) {
        series.emplace_back(
            std::string("hwprof.") + hwprof::counterName(c),
            static_cast<double>(snap.total.sum[c]));
    }
    series.emplace_back("hwprof.rss_peak_bytes",
                        static_cast<double>(snap.rssPeakBytes));
}

void
appendIrSeries(std::vector<std::pair<std::string, double>> &series)
{
    const ir::IrCounters &c = ir::counters();
    series.emplace_back("ir.recorded_ops",
                        static_cast<double>(c.recordedOps));
    series.emplace_back("ir.fused_launches",
                        static_cast<double>(c.fusedLaunches));
    series.emplace_back("ir.launches_saved",
                        static_cast<double>(c.launchesSaved));
    const double plan_peak =
        ir::mode() == ir::IrMode::Graph
            ? static_cast<double>(DeviceManager::instance().stats(
                  DeviceKind::Cuda).reservedPeak)
            : 0.0;
    series.emplace_back("ir.plan_reserved_peak", plan_peak);
}

void
maybeWriteStatsArtifacts(const std::string &prefix)
{
    if (!stats::samplingEnabled())
        return;
    maybeWriteCsv(prefix + "_stats.json", stats::statsToJson());
    maybeWriteCsv(prefix + "_stats_epochs.csv",
                  stats::statsSeriesToCsv());
    maybeWriteCsv(prefix + "_events.jsonl", stats::eventsToJsonl());
}

std::string
renderDatasetTable(const std::vector<DatasetInfo> &infos)
{
    TextTable table;
    table.setHeader({"Dataset", ">#Graph", ">#Nodes(Avg.)",
                     ">#Edges(Avg.)", ">#Feature", ">#Classes"});
    for (const auto &info : infos) {
        table.addRow({info.name, strprintf("%ld", info.numGraphs),
                      strprintf("%.2f", info.avgNodes),
                      strprintf("%.2f", info.avgEdges),
                      strprintf("%ld", info.numFeatures),
                      strprintf("%ld", info.numClasses)});
    }
    return table.render();
}

} // namespace gnnperf
