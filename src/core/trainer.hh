/**
 * @file
 * Training drivers with built-in performance profiling.
 *
 * Two loops, matching the paper's protocols:
 *  - trainNodeTask: transductive full-batch training (Cora/PubMed,
 *    §IV-A) — Adam, ≤ 200 epochs, early stopping on validation
 *    accuracy;
 *  - trainGraphTask: mini-batch training over one CV fold
 *    (ENZYMES/DD, §IV-B) — Adam with ReduceLROnPlateau(0.5, 25)
 *    stopping at lr ≤ 1e-6, end-of-training parameters evaluated on
 *    the test split.
 *
 * Every epoch's trace is replayed through the Timeline, producing the
 * simulated per-epoch time, the phase breakdown (Figs. 1/2), the
 * layer-wise times (Fig. 3), GPU utilization (Fig. 5) and — via the
 * device allocator — peak memory (Fig. 4).
 */

#ifndef GNNPERF_CORE_TRAINER_HH
#define GNNPERF_CORE_TRAINER_HH

#include <functional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "data/dataloader.hh"
#include "data/splits.hh"
#include "device/timeline.hh"
#include "models/model_factory.hh"

namespace gnnperf {

/** Per-epoch execution-time breakdown (simulated seconds). */
struct EpochBreakdown
{
    double dataLoading = 0.0;
    double forward = 0.0;
    double backward = 0.0;
    double update = 0.0;
    double other = 0.0;

    double
    total() const
    {
        return dataLoading + forward + backward + update + other;
    }

    /** Extract the training phases from a timeline result. */
    static EpochBreakdown fromTimeline(const TimelineResult &t);
};

/** Profiling outputs common to both tasks. */
struct ProfileResult
{
    double epochTime = 0.0;       ///< avg simulated training epoch
    EpochBreakdown breakdown;     ///< avg per epoch
    double gpuUtilization = 0.0;  ///< busy / elapsed over training
    std::size_t peakMemoryBytes = 0;     ///< logical live-tensor peak
    std::size_t reservedPeakBytes = 0;   ///< pool (nvidia-smi-like) peak
    std::size_t kernelsPerEpoch = 0;
    /** Forward-pass time per layer scope, avg per iteration. */
    std::vector<std::pair<std::string, double>> layerTimes;
};

/** Result of one node-classification run. */
struct NodeTrainResult
{
    double testAccuracy = 0.0;
    double bestValAccuracy = 0.0;
    int epochsRun = 0;
    double epochTime = 0.0;  ///< simulated s/epoch (training only)
    double totalTime = 0.0;  ///< simulated s, incl. per-epoch eval
    ProfileResult profile;
};

/** Result of one graph-classification run (one fold). */
struct GraphTrainResult
{
    double testAccuracy = 0.0;
    double finalValLoss = 0.0;
    int epochsRun = 0;
    double epochTime = 0.0;
    double totalTime = 0.0;
    ProfileResult profile;
};

/**
 * Called once per training epoch with the epoch's trace (before it is
 * cleared) and the profiler's interned layer names — the hook the
 * roofline attribution drivers use to see every record.
 */
using EpochTraceObserver =
    std::function<void(const Trace &,
                       const std::vector<std::string> &layer_names)>;

/** Knobs shared by the drivers. */
struct TrainOptions
{
    int maxEpochs = 0;        ///< 0 = use the hyperparameter table
    int64_t batchSize = 0;    ///< 0 = use the hyperparameter table
    uint64_t seed = 1;        ///< data/shuffle/init seed
    bool verbose = false;
    EpochTraceObserver traceObserver;  ///< optional per-epoch hook
};

/** Full-batch transductive training (Table IV protocol). */
NodeTrainResult trainNodeTask(ModelKind kind, const Backend &backend,
                              const NodeDataset &dataset,
                              const TrainOptions &opts);

/** Mini-batch graph classification over one fold (Table V protocol). */
GraphTrainResult trainGraphTask(ModelKind kind, const Backend &backend,
                                const GraphDataset &dataset,
                                const FoldSplit &fold,
                                const TrainOptions &opts);

/**
 * Profile-only run: trains for a few epochs and returns the profile
 * (used by the Fig. 1–5 benches, which need timing/memory shape but
 * not converged accuracy).
 */
ProfileResult profileGraphTask(ModelKind kind, const Backend &backend,
                               const GraphDataset &dataset,
                               const FoldSplit &fold, int epochs,
                               int64_t batch_size, uint64_t seed);

/** Inference latency/throughput of one batch (paper abstract:
 *  "performance (latency, bandwidth, ...)"). */
struct InferenceProfile
{
    double loadLatency = 0.0;     ///< collation + H2D, simulated s
    double forwardLatency = 0.0;  ///< eval forward pass, simulated s
    double graphsPerSecond = 0.0; ///< end-to-end throughput
    std::size_t kernels = 0;      ///< launches per forward pass
};

/**
 * Measure eval-mode inference on batches of the given size
 * (averaged over `repeats` batches).
 */
InferenceProfile profileInference(ModelKind kind,
                                  const Backend &backend,
                                  const GraphDataset &dataset,
                                  int64_t batch_size, int repeats,
                                  uint64_t seed);

} // namespace gnnperf

#endif // GNNPERF_CORE_TRAINER_HH
