/**
 * @file
 * Accuracy metrics and summary statistics (paper §IV-B.3).
 */

#ifndef GNNPERF_CORE_EVALUATOR_HH
#define GNNPERF_CORE_EVALUATOR_HH

#include <cstdint>
#include <vector>

#include "autograd/variable.hh"

namespace gnnperf {

/**
 * Classification accuracy of logits against labels over a row subset
 * (empty subset = all rows).
 */
double accuracy(const Tensor &logits, const std::vector<int64_t> &labels,
                const std::vector<int64_t> &row_subset = {});

/** Mean and (sample) standard deviation of a series. */
struct SeriesStats
{
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;
};

SeriesStats computeStats(const std::vector<double> &values);

} // namespace gnnperf

#endif // GNNPERF_CORE_EVALUATOR_HH
