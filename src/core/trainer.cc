#include "core/trainer.hh"

#include <limits>

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "core/evaluator.hh"
#include "device/profiler.hh"
#include "ir/ir.hh"
#include "nn/loss.hh"
#include "nn/lr_scheduler.hh"
#include "nn/optimizer.hh"
#include "obs/exec_trace.hh"
#include "obs/spans.hh"
#include "obs/stats.hh"

namespace gnnperf {

EpochBreakdown
EpochBreakdown::fromTimeline(const TimelineResult &t)
{
    EpochBreakdown b;
    b.dataLoading = t.phaseElapsed[Phase::DataLoading];
    b.forward = t.phaseElapsed[Phase::Forward];
    b.backward = t.phaseElapsed[Phase::Backward];
    b.update = t.phaseElapsed[Phase::Update];
    b.other = t.phaseElapsed[Phase::Other];
    return b;
}

namespace {

/** Accumulates per-epoch timeline results into a ProfileResult. */
class ProfileAccumulator
{
  public:
    void
    add(const TimelineResult &t)
    {
        ++epochs_;
        EpochBreakdown b = EpochBreakdown::fromTimeline(t);
        sum_.dataLoading += b.dataLoading;
        sum_.forward += b.forward;
        sum_.backward += b.backward;
        sum_.update += b.update;
        sum_.other += b.other;
        busy_ += t.phaseGpuBusy[Phase::DataLoading] +
                 t.phaseGpuBusy[Phase::Forward] +
                 t.phaseGpuBusy[Phase::Backward] +
                 t.phaseGpuBusy[Phase::Update] +
                 t.phaseGpuBusy[Phase::Other];
        kernels_ += t.phaseKernels[static_cast<int>(Phase::Forward)] +
                    t.phaseKernels[static_cast<int>(Phase::Backward)] +
                    t.phaseKernels[static_cast<int>(Phase::Update)];
        if (layerSums_.size() < t.layerElapsed.size())
            layerSums_.resize(t.layerElapsed.size(), 0.0);
        for (std::size_t i = 0; i < t.layerElapsed.size(); ++i)
            layerSums_[i] += t.layerElapsed[i];
        layerNames_ = t.layerNames;
    }

    ProfileResult
    finish(std::size_t iterations_per_epoch) const
    {
        ProfileResult p;
        if (epochs_ == 0)
            return p;
        const double inv = 1.0 / static_cast<double>(epochs_);
        p.breakdown.dataLoading = sum_.dataLoading * inv;
        p.breakdown.forward = sum_.forward * inv;
        p.breakdown.backward = sum_.backward * inv;
        p.breakdown.update = sum_.update * inv;
        p.breakdown.other = sum_.other * inv;
        p.epochTime = p.breakdown.total();
        p.gpuUtilization =
            p.epochTime > 0.0 ? (busy_ * inv) / p.epochTime : 0.0;
        p.kernelsPerEpoch = kernels_ / epochs_;
        p.peakMemoryBytes =
            DeviceManager::instance().peak(DeviceKind::Cuda);
        p.reservedPeakBytes =
            DeviceManager::instance().reservedPeak(DeviceKind::Cuda);
        const double iter_inv =
            iterations_per_epoch > 0
                ? inv / static_cast<double>(iterations_per_epoch) : inv;
        for (std::size_t i = 0; i < layerSums_.size(); ++i) {
            p.layerTimes.emplace_back(
                i < layerNames_.size() ? layerNames_[i] : "?",
                layerSums_[i] * iter_inv);
        }
        return p;
    }

  private:
    std::size_t epochs_ = 0;
    EpochBreakdown sum_;
    double busy_ = 0.0;
    std::size_t kernels_ = 0;
    std::vector<double> layerSums_;
    std::vector<std::string> layerNames_;
};

/** Replay the current trace, hand it to any observer, and clear it. */
TimelineResult
replayAndClear(const Backend &backend, const TrainOptions &opts)
{
    Profiler &prof = Profiler::instance();
    TimelineResult t = Timeline::replay(prof.trace(),
                                        CostModel::defaultModel(),
                                        backend.dispatchOverhead(),
                                        prof.layerNames());
    if (opts.traceObserver)
        opts.traceObserver(prof.trace(), prof.layerNames());
    // Feed the merged execution trace (no-op unless enabled) before
    // the per-epoch trace is dropped.
    ExecTrace::instance().captureSimulated(prof.trace(),
                                          backend.dispatchOverhead(),
                                          backend.name());
    prof.clearTrace();
    return t;
}

/** Evaluation forward pass under no-grad, in Evaluation phase. */
Tensor
evalLogits(GnnModel &model, BatchedGraph &batch)
{
    static stats::Counter &evals = stats::counter("trainer.evals");
    evals.inc();
    NoGradGuard no_grad;
    PhaseScope phase(Phase::Evaluation);
    model.train(false);
    Tensor logits = model.forward(batch).value();
    model.train(true);
    return logits;
}

} // namespace

NodeTrainResult
trainNodeTask(ModelKind kind, const Backend &backend,
              const NodeDataset &dataset, const TrainOptions &opts)
{
    Profiler &prof = Profiler::instance();
    prof.reset();
    prof.setEnabled(true);
    // Like torch.cuda.empty_cache() before measuring: drop pool bytes
    // reserved by earlier configs so both peaks describe this run.
    DeviceManager::instance().emptyCaches();
    DeviceManager::instance().resetPeak(DeviceKind::Cuda);

    Hyperparameters hp = nodeTaskHyperparameters(
        kind, dataset.numFeatures, dataset.numClasses, opts.seed);
    const int max_epochs =
        opts.maxEpochs > 0 ? opts.maxEpochs : hp.train.maxEpochs;

    auto model = makeModel(kind, backend, hp.model);
    nn::Adam optimizer(model->parameters(), hp.train.lr);

    // The single graph is collated (and moved to the device) once —
    // transductive training keeps it resident, so the per-epoch time
    // has no data-loading share.
    std::vector<const Graph *> members{&dataset.graph};
    BatchedGraph batch;
    {
        PhaseScope phase(Phase::DataLoading);
        batch = backend.collate(members);
    }
    prof.clearTrace();  // one-time setup excluded from epoch times

    NodeTrainResult result;
    ProfileAccumulator acc;
    double best_val = -1.0;
    double test_at_best = 0.0;
    int bad_epochs = 0;
    double total_time = 0.0;

    for (int epoch = 0; epoch < max_epochs; ++epoch) {
        HostSpan epoch_span("epoch");
        // --- training step (full batch) ---
        // In --ir=graph mode the scope records ops into the op graph
        // and flushes (fuse → plan → execute) on value access or at
        // scope exit; in eager mode it is a no-op.
        Var logits;
        Var loss;
        {
            ir::IterationScope iteration;
            {
                PhaseScope phase(Phase::Forward);
                logits = model->forward(batch);
            }
            {
                PhaseScope phase(Phase::Other);
                loss = nn::crossEntropy(logits, batch.nodeLabels,
                                        batch.trainIdx);
            }
            {
                PhaseScope phase(Phase::Backward);
                model->zeroGrad();
                loss.backward();
            }
            {
                PhaseScope phase(Phase::Update);
                optimizer.step();
            }
        }

        // --- evaluation (validation + test accuracy) ---
        Tensor eval_logits = evalLogits(*model, batch);
        const double val_acc =
            accuracy(eval_logits, batch.nodeLabels, batch.valIdx);
        const double test_acc =
            accuracy(eval_logits, batch.nodeLabels, batch.testIdx);

        TimelineResult t = replayAndClear(backend, opts);
        acc.add(t);
        total_time += t.elapsed;
        ++result.epochsRun;
        stats::counter("trainer.epochs").inc();
        stats::Registry::instance().rollEpoch();
        // Epoch boundary: return cached blocks unused for a whole
        // epoch to the system (bounds pool growth across epochs).
        DeviceManager::instance().trimCaches();

        if (val_acc > best_val) {
            best_val = val_acc;
            test_at_best = test_acc;
            bad_epochs = 0;
        } else if (hp.train.earlyStopPatience > 0 &&
                   ++bad_epochs > hp.train.earlyStopPatience) {
            stats::counter("trainer.early_stops").inc();
            break;
        }
        if (opts.verbose && epoch % 20 == 0) {
            gnnperf_inform(model->name(), "/", backend.name(),
                           " epoch ", epoch, " loss ", loss.item(),
                           " val ", val_acc);
        }
    }

    result.profile = acc.finish(1);
    result.epochTime = result.profile.epochTime;
    result.totalTime = total_time;
    result.bestValAccuracy = best_val;
    result.testAccuracy = test_at_best;
    return result;
}

namespace {

/** One training epoch over the loader; returns iterations executed. */
std::size_t
runTrainEpoch(GnnModel &model, nn::Adam &optimizer, DataLoader &loader)
{
    loader.startEpoch();
    BatchedGraph batch;
    std::size_t iterations = 0;
    while (loader.next(batch)) {
        // Record-then-execute scope per iteration (no-op in eager
        // mode); see trainNodeTask.
        ir::IterationScope iteration;
        Var logits;
        {
            PhaseScope phase(Phase::Forward);
            logits = model.forward(batch);
        }
        Var loss;
        {
            PhaseScope phase(Phase::Other);
            loss = nn::crossEntropy(logits, batch.graphLabels);
        }
        {
            PhaseScope phase(Phase::Backward);
            model.zeroGrad();
            loss.backward();
        }
        {
            PhaseScope phase(Phase::Update);
            optimizer.step();
        }
        ++iterations;
    }
    return iterations;
}

/** Mean loss / accuracy over an evaluation loader. */
std::pair<double, double>
evaluateLoader(GnnModel &model, DataLoader &loader)
{
    static stats::Counter &evals = stats::counter("trainer.evals");
    evals.inc();
    NoGradGuard no_grad;
    PhaseScope phase(Phase::Evaluation);
    model.train(false);
    loader.startEpoch();
    BatchedGraph batch;
    double loss_sum = 0.0;
    double correct = 0.0;
    int64_t total = 0;
    while (loader.next(batch)) {
        Var logits = model.forward(batch);
        Var loss = nn::crossEntropy(logits, batch.graphLabels);
        const auto batch_n =
            static_cast<int64_t>(batch.graphLabels.size());
        loss_sum += loss.item() * static_cast<double>(batch_n);
        correct += accuracy(logits.value(), batch.graphLabels) *
                   static_cast<double>(batch_n);
        total += batch_n;
    }
    model.train(true);
    if (total == 0)
        return {0.0, 0.0};
    return {loss_sum / static_cast<double>(total),
            correct / static_cast<double>(total)};
}

} // namespace

GraphTrainResult
trainGraphTask(ModelKind kind, const Backend &backend,
               const GraphDataset &dataset, const FoldSplit &fold,
               const TrainOptions &opts)
{
    Profiler &prof = Profiler::instance();
    prof.reset();
    prof.setEnabled(true);
    DeviceManager::instance().emptyCaches();
    DeviceManager::instance().resetPeak(DeviceKind::Cuda);

    Hyperparameters hp = graphTaskHyperparameters(
        kind, dataset.numFeatures, dataset.numClasses, opts.seed);
    const int max_epochs =
        opts.maxEpochs > 0 ? opts.maxEpochs : hp.train.maxEpochs;
    const int64_t batch_size =
        opts.batchSize > 0 ? opts.batchSize : hp.train.batchSize;

    auto model = makeModel(kind, backend, hp.model);
    nn::Adam optimizer(model->parameters(), hp.train.lr);
    nn::ReduceLROnPlateau scheduler(optimizer, hp.train.lrFactor,
                                    hp.train.lrPatience,
                                    hp.train.minLr);

    DataLoader train_loader(dataset, fold.train, batch_size, backend,
                            /*shuffle=*/true, opts.seed);
    DataLoader val_loader(dataset, fold.val, batch_size, backend,
                          /*shuffle=*/false, opts.seed + 1);
    DataLoader test_loader(dataset, fold.test, batch_size, backend,
                           /*shuffle=*/false, opts.seed + 2);

    GraphTrainResult result;
    ProfileAccumulator acc;
    double total_time = 0.0;
    std::size_t iters_per_epoch = 1;

    for (int epoch = 0; epoch < max_epochs; ++epoch) {
        HostSpan epoch_span("epoch");
        iters_per_epoch = runTrainEpoch(*model, optimizer,
                                        train_loader);
        auto [val_loss, val_acc] = evaluateLoader(*model, val_loader);
        scheduler.step(val_loss);
        result.finalValLoss = val_loss;

        TimelineResult t = replayAndClear(backend, opts);
        acc.add(t);
        total_time += t.elapsed;
        ++result.epochsRun;
        stats::counter("trainer.epochs").inc();
        stats::Registry::instance().rollEpoch();
        // Epoch boundary: return cached blocks unused for a whole
        // epoch to the system (bounds pool growth across epochs).
        DeviceManager::instance().trimCaches();

        if (opts.verbose && epoch % 10 == 0) {
            gnnperf_inform(model->name(), "/", backend.name(),
                           " epoch ", epoch, " val_loss ", val_loss,
                           " val_acc ", val_acc, " lr ",
                           optimizer.learningRate());
        }
        if (scheduler.shouldStop()) {
            stats::counter("trainer.early_stops").inc();
            break;
        }
    }

    // Paper: end-of-training parameters evaluated on the test split.
    auto [test_loss, test_acc] = evaluateLoader(*model, test_loader);
    (void)test_loss;
    prof.clearTrace();

    result.profile = acc.finish(iters_per_epoch);
    result.epochTime = result.profile.epochTime;
    result.totalTime = total_time;
    result.testAccuracy = test_acc;
    return result;
}

ProfileResult
profileGraphTask(ModelKind kind, const Backend &backend,
                 const GraphDataset &dataset, const FoldSplit &fold,
                 int epochs, int64_t batch_size, uint64_t seed)
{
    TrainOptions opts;
    opts.maxEpochs = epochs;
    opts.batchSize = batch_size;
    opts.seed = seed;
    GraphTrainResult r = trainGraphTask(kind, backend, dataset, fold,
                                        opts);
    return r.profile;
}

InferenceProfile
profileInference(ModelKind kind, const Backend &backend,
                 const GraphDataset &dataset, int64_t batch_size,
                 int repeats, uint64_t seed)
{
    gnnperf_assert(repeats > 0, "profileInference: repeats <= 0");
    Profiler &prof = Profiler::instance();
    prof.reset();
    prof.setEnabled(true);

    Hyperparameters hp = graphTaskHyperparameters(
        kind, dataset.numFeatures, dataset.numClasses, seed);
    auto model = makeModel(kind, backend, hp.model);
    model->train(false);
    NoGradGuard no_grad;

    std::vector<int64_t> all(dataset.graphs.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<int64_t>(i);
    DataLoader loader(dataset, all, batch_size, backend,
                      /*shuffle=*/false, seed);
    loader.startEpoch();

    InferenceProfile result;
    int64_t graphs_seen = 0;
    double total = 0.0;
    for (int r = 0; r < repeats; ++r) {
        BatchedGraph batch;
        if (!loader.next(batch)) {
            loader.startEpoch();
            gnnperf_assert(loader.next(batch),
                           "profileInference: empty loader");
        }
        {
            PhaseScope phase(Phase::Forward);
            model->forward(batch);
        }
        TimelineResult t = Timeline::replay(prof.trace(),
                                            CostModel::defaultModel(),
                                            backend.dispatchOverhead(),
                                            prof.layerNames());
        prof.clearTrace();
        result.loadLatency += t.phaseElapsed[Phase::DataLoading];
        result.forwardLatency += t.phaseElapsed[Phase::Forward];
        result.kernels +=
            t.phaseKernels[static_cast<int>(Phase::Forward)];
        total += t.elapsed;
        graphs_seen += batch.numGraphs;
    }
    result.loadLatency /= repeats;
    result.forwardLatency /= repeats;
    result.kernels /= static_cast<std::size_t>(repeats);
    result.graphsPerSecond =
        total > 0.0 ? static_cast<double>(graphs_seen) / total : 0.0;
    return result;
}

} // namespace gnnperf
