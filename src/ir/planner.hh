/**
 * @file
 * Ahead-of-time memory planner for the recorded segment.
 *
 * Tensor lifetimes inside a pending segment are trivial — the tape
 * retains every op output until backward, so nothing recorded frees
 * before the flush completes. What the planner controls is *placement
 * order*: instead of interleaving output allocations with kernel
 * launches (eager), it places every output of the iteration segment
 * through the active device allocator up front, largest block first,
 * which is the order the CachingAllocator's best-fit reuse likes.
 * The reserved-peak effect is measured by the `ir.plan_reserved_peak`
 * BENCH series and gated ≤ the eager caching-allocator peak in CI.
 */

#ifndef GNNPERF_IR_PLANNER_HH
#define GNNPERF_IR_PLANNER_HH

#include "ir/op_graph.hh"

namespace gnnperf {
namespace ir {

/**
 * Allocate the tensor of every node output in `g` (externals already
 * hold theirs). Emits one MemTracer Plan event per device planned and
 * an "ir.plan" host span. Must run before execute(), outside any
 * parallel region.
 */
void planAllocations(OpGraph &g);

} // namespace ir
} // namespace gnnperf

#endif // GNNPERF_IR_PLANNER_HH
