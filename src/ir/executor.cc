#include "ir/executor.hh"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "obs/spans.hh"
#include "obs/stats.hh"
#include "parallel/thread_pool.hh"
#include "parallel/write_check.hh"

namespace gnnperf {
namespace ir {

namespace {

/** Flattened per-member execution state for the fused loop. */
struct MemberExec
{
    OpKind kind;
    ops::EwUnary ukind;
    ops::EwBinary bkind;
    float param;
    const int64_t *idx = nullptr;  ///< gather (own) / scatter (shared)
    const float *a = nullptr;
    const float *b = nullptr;
    float *out = nullptr;
    int64_t w = 0;                 ///< row width in elements
};

/** Elementwise grain twin of ops.cc's rowGrain. */
int64_t
fusedRowGrain(int64_t total_width)
{
    constexpr int64_t kElemGrain = 16384;
    return std::max<int64_t>(
        1, kElemGrain / std::max<int64_t>(total_width, 1));
}

/** Compute every member's row `e` (scatters accumulate into row idx[e]). */
inline void
computeRow(const std::vector<MemberExec> &members, int64_t e)
{
    for (const MemberExec &m : members) {
        float *out_row = m.out + e * m.w;
        const float *a_row = m.a + e * m.w;
        switch (m.kind) {
          case OpKind::Gather:
            std::memcpy(m.out + e * m.w, m.a + m.idx[e] * m.w,
                        static_cast<std::size_t>(m.w) * sizeof(float));
            break;
          case OpKind::Unary:
            for (int64_t j = 0; j < m.w; ++j)
                out_row[j] = ops::ewUnaryApply(m.ukind, a_row[j],
                                               m.param);
            break;
          case OpKind::Binary: {
            const float *b_row = m.b + e * m.w;
            for (int64_t j = 0; j < m.w; ++j)
                out_row[j] = ops::ewBinaryApply(m.bkind, a_row[j],
                                                b_row[j]);
            break;
          }
          case OpKind::ScatterAdd: {
            float *dst = m.out + m.idx[e] * m.w;
            for (int64_t j = 0; j < m.w; ++j)
                dst[j] += a_row[j];
            break;
          }
        }
    }
}

const char *
groupKernelName(const FusionGroup &grp)
{
    if (grp.hasGather && grp.hasScatter)
        return "fused_gather_ew_scatter";
    if (grp.hasGather)
        return "fused_gather_ew";
    if (grp.hasScatter)
        return "fused_ew_scatter";
    return "fused_ew";
}

/** "fuse:gather_rows+add+sigmoid" span label (first few members). */
std::string
groupSpanName(const OpGraph &g, const FusionGroup &grp)
{
    std::string name = "fuse:";
    const std::size_t shown = std::min<std::size_t>(
        grp.nodeIds.size(), 6);
    for (std::size_t i = 0; i < shown; ++i) {
        if (i > 0)
            name += '+';
        name += g.nodes[static_cast<std::size_t>(grp.nodeIds[i])].name;
    }
    if (shown < grp.nodeIds.size())
        name += "+..";
    return name;
}

const Tensor &
valueTensor(const OpGraph &g, int32_t id)
{
    const Tensor &t = g.values[static_cast<std::size_t>(id)].tensor;
    gnnperf_assert(t.defined(), "ir: unmaterialized input value ", id);
    return t;
}

void
executeSingle(OpGraph &g, const OpNode &n)
{
    Tensor &out = g.values[static_cast<std::size_t>(n.out)].tensor;
    const Tensor &a = valueTensor(g, n.a);
    switch (n.kind) {
      case OpKind::Gather:
        ops::gatherRowsInto(out, a, *n.idx);
        break;
      case OpKind::ScatterAdd:
        ops::scatterAddRowsInto(out, a, *n.idx);
        break;
      case OpKind::Unary:
        ops::ewUnaryInto(out, a, n.ukind, n.param);
        break;
      case OpKind::Binary:
        ops::ewBinaryInto(out, a, valueTensor(g, n.b), n.bkind);
        break;
    }
}

void
executeFused(OpGraph &g, const FusionGroup &grp)
{
    const int64_t rows = grp.rows;
    std::vector<MemberExec> members;
    members.reserve(grp.nodeIds.size());
    // Fused cost descriptors: FLOPs sum the members'; bytes count every
    // output write (scatter outputs twice: read-modify-write) plus
    // reads of group-external inputs only — in-group intermediates stay
    // in cache-hot just-written rows (docs/IR.md has the formula).
    double flops = 0.0, bytes = 0.0;
    const int32_t first = grp.nodeIds.front();
    const int32_t last = grp.nodeIds.back();
    int64_t total_width = 0;

    static stats::Counter &scatter_calls =
        stats::counter("kernel.scatter.calls");
    static stats::Distribution &scatter_rows =
        stats::distribution("kernel.scatter.rows");

    for (int32_t id : grp.nodeIds) {
        const OpNode &n = g.nodes[static_cast<std::size_t>(id)];
        Value &out = g.values[static_cast<std::size_t>(n.out)];
        MemberExec m;
        m.kind = n.kind;
        m.ukind = n.ukind;
        m.bkind = n.bkind;
        m.param = n.param;
        if (n.idx)
            m.idx = n.idx->data();
        m.a = valueTensor(g, n.a).data();
        if (n.kind == OpKind::Binary)
            m.b = valueTensor(g, n.b).data();
        m.out = out.tensor.data();
        m.w = out.width();
        flops += n.flops;

        const double out_bytes =
            static_cast<double>(out.numel()) * sizeof(float);
        if (n.kind == OpKind::ScatterAdd) {
            bytes += 2.0 * out_bytes;
            scatter_calls.inc();
            scatter_rows.sample(static_cast<double>(out.rows()));
        } else {
            bytes += out_bytes;
        }
        const double row_bytes =
            static_cast<double>(rows * m.w) * sizeof(float);
        if (!g.producedBy(n.a, first, last))
            bytes += row_bytes;
        if (n.kind == OpKind::Binary &&
            !g.producedBy(n.b, first, last))
            bytes += row_bytes;
        total_width += m.w;
        members.push_back(m);
    }

    const std::string span_name = groupSpanName(g, grp);
    HostSpan span(span_name.c_str());

    if (grp.hasScatter) {
        // Ownership partition over the scatter *output* rows: the chunk
        // owning idx[e] computes every member's row e and accumulates
        // the scatters, scanning edges in ascending order — per-row
        // addition order matches the serial scan, so the launch is
        // bit-identical at every width.
        const int64_t out_rows = grp.scatterRows;
        const int64_t *sidx = grp.scatterIdx->data();
        par::WriteSet ws(groupKernelName(grp), rows);
        par::parallelFor(
            "par.fused_scatter", 0, out_rows,
            par::grainFor(out_rows, 1),
            [&](int64_t rb, int64_t re, int slot) {
                for (const MemberExec &m : members) {
                    if (m.kind == OpKind::ScatterAdd)
                        std::memset(
                            m.out + rb * m.w, 0,
                            static_cast<std::size_t>((re - rb) * m.w) *
                                sizeof(float));
                }
                for (int64_t e = 0; e < rows; ++e) {
                    const int64_t r = sidx[e];
                    if (r < rb || r >= re)
                        continue;
                    computeRow(members, e);
                    ws.note(slot, e, e + 1);
                }
            });
    } else {
        par::WriteSet ws(groupKernelName(grp), rows);
        par::parallelFor(
            "par.fused_rows", 0, rows, fusedRowGrain(total_width),
            [&](int64_t b, int64_t e, int slot) {
                for (int64_t i = b; i < e; ++i)
                    computeRow(members, i);
                ws.note(slot, b, e);
            });
    }

    recordKernel(groupKernelName(grp), flops, bytes);
}

} // namespace

void
execute(OpGraph &g, const std::vector<FusionGroup> &groups)
{
    Profiler &prof = Profiler::instance();
    const Phase prev_phase = prof.phase();
    const int16_t prev_layer = prof.layer();
    for (const FusionGroup &grp : groups) {
        const OpNode &head =
            g.nodes[static_cast<std::size_t>(grp.nodeIds.front())];
        prof.setPhase(head.phase);
        prof.setLayer(head.layer);
        if (grp.nodeIds.size() == 1)
            executeSingle(g, head);
        else
            executeFused(g, grp);
    }
    prof.setPhase(prev_phase);
    prof.setLayer(prev_layer);
}

} // namespace ir
} // namespace gnnperf
