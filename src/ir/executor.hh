/**
 * @file
 * Replay engine for the recorded op graph.
 *
 * Runs the fused groups in order through the existing ThreadPool.
 * Singleton groups replay the exact eager `Into` kernels (same launch
 * names, grains and KernelRecords); multi-node groups become one
 * registered fused launch each ("fused_gather_ew",
 * "fused_gather_ew_scatter", "fused_ew", "fused_ew_scatter") whose
 * per-edge member chain inlines the same elementwise math the eager
 * kernels use — bit-identical output at every thread width.
 */

#ifndef GNNPERF_IR_EXECUTOR_HH
#define GNNPERF_IR_EXECUTOR_HH

#include <vector>

#include "ir/op_graph.hh"

namespace gnnperf {
namespace ir {

/**
 * Execute every group in order, filling each node output's tensor.
 * planAllocations(g) must have run first. Profiler phase/layer are
 * restamped per group from record-time values so the trace attributes
 * deferred launches to the layer that recorded them.
 */
void execute(OpGraph &g, const std::vector<FusionGroup> &groups);

} // namespace ir
} // namespace gnnperf

#endif // GNNPERF_IR_EXECUTOR_HH
