#include "ir/planner.hh"

#include <algorithm>
#include <cstddef>

#include "obs/memtrace.hh"
#include "obs/spans.hh"

namespace gnnperf {
namespace ir {

void
planAllocations(OpGraph &g)
{
    HostSpan span("ir.plan");

    std::vector<int32_t> outputs;
    outputs.reserve(g.values.size());
    for (std::size_t i = 0; i < g.values.size(); ++i) {
        if (g.values[i].producer >= 0)
            outputs.push_back(static_cast<int32_t>(i));
    }
    // Largest first; value id breaks ties so placement is
    // deterministic at every thread count and across runs.
    std::sort(outputs.begin(), outputs.end(),
              [&](int32_t a, int32_t b) {
                  const int64_t na =
                      g.values[static_cast<std::size_t>(a)].numel();
                  const int64_t nb =
                      g.values[static_cast<std::size_t>(b)].numel();
                  if (na != nb)
                      return na > nb;
                  return a < b;
              });

    std::size_t planned_host = 0, planned_cuda = 0;
    for (int32_t id : outputs) {
        Value &v = g.values[static_cast<std::size_t>(id)];
        v.tensor = Tensor(v.shape, v.device);
        const std::size_t bytes = v.tensor.bytes();
        if (v.device == DeviceKind::Host)
            planned_host += bytes;
        else
            planned_cuda += bytes;
    }
    if (planned_cuda > 0)
        MemTracer::instance().onPlan(DeviceKind::Cuda, planned_cuda);
    if (planned_host > 0)
        MemTracer::instance().onPlan(DeviceKind::Host, planned_host);
}

} // namespace ir
} // namespace gnnperf
