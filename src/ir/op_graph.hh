/**
 * @file
 * The recorded op graph's internal representation, shared by the
 * recorder (ir.cc), the fusion pass, the memory planner and the
 * executor. Consumers outside src/ir use only ir.hh.
 *
 * Values and nodes live in parallel arrays indexed by int32 ids;
 * record order is program order, hence topological.
 */

#ifndef GNNPERF_IR_OP_GRAPH_HH
#define GNNPERF_IR_OP_GRAPH_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "device/profiler.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace gnnperf {
namespace ir {

/** Recorded launch kinds (the fusable subset of the kernel zoo). */
enum class OpKind
{
    Gather,
    ScatterAdd,
    Unary,
    Binary,
};

/**
 * One tensor in the recorded segment: an external input captured at
 * record time (shared storage, no copy) or a node output materialized
 * by the planner during the flush.
 */
struct Value
{
    std::vector<int64_t> shape;
    DeviceKind device = DeviceKind::Cuda;
    Tensor tensor;                      ///< set for externals at record,
                                        ///< for outputs by the planner
    int32_t producer = -1;              ///< producing node, -1 = external
    std::function<void(Tensor)> sink;   ///< consumer callback (outputs)

    int64_t rows() const { return shape.empty() ? 0 : shape[0]; }

    int64_t numel() const
    {
        int64_t n = 1;
        for (int64_t d : shape)
            n *= d;
        return n;
    }

    /** Row width in elements (rank-1 values are width-1 columns). */
    int64_t width() const
    {
        return shape.size() >= 2 ? numel() / rows() : 1;
    }
};

/** One recorded kernel launch. */
struct OpNode
{
    OpKind kind = OpKind::Unary;
    ops::EwUnary ukind = ops::EwUnary::Relu;
    ops::EwBinary bkind = ops::EwBinary::Add;
    float param = 0.0f;                 ///< unary scalar parameter
    std::shared_ptr<const std::vector<int64_t>> idx; ///< gather/scatter
    int32_t a = -1;                     ///< first input value
    int32_t b = -1;                     ///< second input (Binary only)
    int32_t out = -1;                   ///< output value

    /** What eager would have recorded, for fused-launch descriptors. */
    const char *name = "?";
    double flops = 0.0;
    double bytes = 0.0;

    /** Profiler stamps captured at record time, restored at replay. */
    Phase phase = Phase::Other;
    int16_t layer = -1;
};

/** The pending segment. */
struct OpGraph
{
    std::vector<Value> values;
    std::vector<OpNode> nodes;

    /** Interned index vectors, keyed by source address (per segment). */
    std::vector<std::pair<const void *,
                          std::shared_ptr<const std::vector<int64_t>>>>
        idxCache;

    bool producedBy(int32_t value_id, int32_t first_node,
                    int32_t last_node) const
    {
        const int32_t p = values[static_cast<std::size_t>(value_id)]
                              .producer;
        return p >= first_node && p <= last_node;
    }

    void clear()
    {
        values.clear();
        nodes.clear();
        idxCache.clear();
    }
};

/**
 * One execution unit after fusion: a contiguous-in-record-order run of
 * node ids. Size 1 replays the eager kernel; size >= 2 becomes a
 * single fused launch.
 */
struct FusionGroup
{
    std::vector<int32_t> nodeIds;
    int64_t rows = 0;          ///< shared leading dimension of members
    bool hasScatter = false;   ///< trailing ScatterAdd members present
    bool hasGather = false;
    int64_t scatterRows = 0;   ///< output rows of the shared scatter
    std::shared_ptr<const std::vector<int64_t>> scatterIdx;
};

} // namespace ir
} // namespace gnnperf

#endif // GNNPERF_IR_OP_GRAPH_HH
