#include "ir/ir.hh"

#include <thread>
#include <utility>

#include "common/env.hh"
#include "common/logging.hh"
#include "device/profiler.hh"
#include "ir/executor.hh"
#include "ir/fusion.hh"
#include "ir/op_graph.hh"
#include "ir/planner.hh"
#include "obs/stats.hh"

namespace gnnperf {
namespace ir {

namespace {

IrMode g_mode = IrMode::Eager;
bool g_modeResolved = false;

bool g_scopeActive = false;
std::thread::id g_owner;
bool g_flushing = false;

IrCounters g_counters;

OpGraph &
graph()
{
    static OpGraph *g = new OpGraph();  // lint:allow leaked singleton
    return *g;
}

/** Capture a ValRef into the graph's value table. */
int32_t
internValue(OpGraph &g, const ValRef &ref)
{
    if (ref.slot >= 0) {
        gnnperf_assert(static_cast<std::size_t>(ref.slot) <
                       g.values.size(), "ir: bad pending slot ",
                       ref.slot);
        return ref.slot;
    }
    gnnperf_assert(ref.tensor != nullptr && ref.tensor->defined(),
                   "ir: record on undefined input tensor");
    Value v;
    v.shape = ref.tensor->shape();
    v.device = ref.tensor->device();
    v.tensor = *ref.tensor;  // shared storage, no copy
    g.values.push_back(std::move(v));
    return static_cast<int32_t>(g.values.size() - 1);
}

/** Append a node and its output value; returns the output slot. */
int32_t
pushNode(OpGraph &g, OpNode node, std::vector<int64_t> out_shape,
         DeviceKind device)
{
    const Profiler &prof = Profiler::instance();
    node.phase = prof.phase();
    node.layer = prof.layer();
    Value out;
    out.shape = std::move(out_shape);
    out.device = device;
    out.producer = static_cast<int32_t>(g.nodes.size());
    node.out = static_cast<int32_t>(g.values.size());
    g.values.push_back(std::move(out));
    g.nodes.push_back(std::move(node));
    ++g_counters.recordedOps;
    static stats::Counter &recorded = stats::counter("ir.recorded_ops");
    recorded.inc();
    return g.nodes.back().out;
}

} // namespace

IrMode
mode()
{
    if (!g_modeResolved) {
        g_mode = modeFromString(
            envString("GNNPERF_IR", "eager").c_str());
        g_modeResolved = true;
    }
    return g_mode;
}

void
setMode(IrMode m)
{
    gnnperf_assert(!g_scopeActive,
                   "ir: cannot switch mode inside an IterationScope");
    g_mode = m;
    g_modeResolved = true;
}

IrMode
modeFromString(const char *s)
{
    const std::string v(s);
    if (v == "eager")
        return IrMode::Eager;
    if (v == "graph")
        return IrMode::Graph;
    gnnperf_panic("ir: unknown mode '", v, "' (want eager|graph)");
    return IrMode::Eager;
}

bool
recording()
{
    return g_scopeActive && !g_flushing &&
           std::this_thread::get_id() == g_owner;
}

std::size_t
pendingCount()
{
    return graph().nodes.size();
}

int32_t
recordUnary(ops::EwUnary k, float param, ValRef a)
{
    OpGraph &g = graph();
    const int32_t av = internValue(g, a);
    const Value &in = g.values[static_cast<std::size_t>(av)];
    std::vector<int64_t> shape = in.shape;
    const DeviceKind device = in.device;
    const double n = static_cast<double>(in.numel());
    OpNode node;
    node.kind = OpKind::Unary;
    node.ukind = k;
    node.param = param;
    node.a = av;
    node.name = ops::ewUnaryName(k);
    node.flops = ops::ewUnaryFlops(k) * n;
    node.bytes = 2.0 * n * sizeof(float);
    return pushNode(g, std::move(node), std::move(shape), device);
}

int32_t
recordBinary(ops::EwBinary k, ValRef a, ValRef b)
{
    OpGraph &g = graph();
    const int32_t av = internValue(g, a);
    const int32_t bv = internValue(g, b);
    const Value &ia = g.values[static_cast<std::size_t>(av)];
    const Value &ib = g.values[static_cast<std::size_t>(bv)];
    gnnperf_assert(ia.shape == ib.shape, ops::ewBinaryName(k),
                   ": shape mismatch in recorded op");
    std::vector<int64_t> shape = ia.shape;
    const DeviceKind device = ia.device;
    const double n = static_cast<double>(ia.numel());
    OpNode node;
    node.kind = OpKind::Binary;
    node.bkind = k;
    node.a = av;
    node.b = bv;
    node.name = ops::ewBinaryName(k);
    node.flops = ops::ewBinaryFlops(k) * n;
    node.bytes = 3.0 * n * sizeof(float);
    return pushNode(g, std::move(node), std::move(shape), device);
}

std::shared_ptr<const std::vector<int64_t>>
internedIndex(const std::vector<int64_t> &idx)
{
    OpGraph &g = graph();
    for (const auto &[addr, vec] : g.idxCache) {
        if (addr == static_cast<const void *>(&idx) &&
            *vec == idx)
            return vec;
    }
    auto copy = std::make_shared<const std::vector<int64_t>>(idx);
    g.idxCache.emplace_back(static_cast<const void *>(&idx), copy);
    return copy;
}

int32_t
recordGather(ValRef src, const std::vector<int64_t> &idx)
{
    OpGraph &g = graph();
    const int32_t sv = internValue(g, src);
    const Value &in = g.values[static_cast<std::size_t>(sv)];
    gnnperf_assert(in.shape.size() == 2, "gatherRows on rank ",
                   in.shape.size());
    const int64_t rows = in.shape[0], f = in.shape[1];
    const int64_t e = static_cast<int64_t>(idx.size());
    // Validate at record time: same panic the eager kernel raises at
    // launch time, just earlier.
    for (int64_t i = 0; i < e; ++i) {
        const int64_t r = idx[static_cast<std::size_t>(i)];
        gnnperf_assert(r >= 0 && r < rows, "gatherRows: index ", r,
                       " out of ", rows);
    }
    OpNode node;
    node.kind = OpKind::Gather;
    node.idx = internedIndex(idx);
    node.a = sv;
    node.name = "gather_rows";
    node.flops = 0.0;
    node.bytes = 2.0 * static_cast<double>(e * f) * sizeof(float);
    return pushNode(g, std::move(node), {e, f}, in.device);
}

int32_t
recordScatterAdd(ValRef src, const std::vector<int64_t> &idx,
                 int64_t num_rows)
{
    OpGraph &g = graph();
    const int32_t sv = internValue(g, src);
    const Value &in = g.values[static_cast<std::size_t>(sv)];
    gnnperf_assert(in.shape.size() == 2, "scatterAddRows on rank ",
                   in.shape.size());
    gnnperf_assert(static_cast<int64_t>(idx.size()) == in.shape[0],
                   "scatterAddRows: ", idx.size(), " indices for ",
                   in.shape[0], " rows");
    const int64_t f = in.shape[1];
    for (std::size_t i = 0; i < idx.size(); ++i)
        gnnperf_assert(idx[i] >= 0 && idx[i] < num_rows,
                       "scatterAddRows: index ", idx[i], " out of ",
                       num_rows);
    const double src_bytes =
        static_cast<double>(in.numel()) * sizeof(float);
    OpNode node;
    node.kind = OpKind::ScatterAdd;
    node.idx = internedIndex(idx);
    node.a = sv;
    node.name = "scatter_add";
    node.flops = static_cast<double>(in.numel());
    node.bytes = 2.0 * src_bytes +
                 static_cast<double>(num_rows * f) * sizeof(float);
    return pushNode(g, std::move(node), {num_rows, f}, in.device);
}

void
bindSink(int32_t slot, std::function<void(Tensor)> sink)
{
    OpGraph &g = graph();
    gnnperf_assert(slot >= 0 &&
                   static_cast<std::size_t>(slot) < g.values.size(),
                   "ir: bindSink on bad slot ", slot);
    g.values[static_cast<std::size_t>(slot)].sink = std::move(sink);
}

const std::vector<int64_t> &
shapeOf(int32_t slot)
{
    OpGraph &g = graph();
    gnnperf_assert(slot >= 0 &&
                   static_cast<std::size_t>(slot) < g.values.size(),
                   "ir: shapeOf on bad slot ", slot);
    return g.values[static_cast<std::size_t>(slot)].shape;
}

const IrCounters &
counters()
{
    return g_counters;
}

void
materializeAll()
{
    OpGraph &g = graph();
    if (g.nodes.empty())
        return;
    gnnperf_assert(!g_flushing, "ir: re-entrant flush");
    g_flushing = true;

    const std::vector<FusionGroup> groups = fuse(g);
    static stats::Counter &fused = stats::counter("ir.fused_launches");
    static stats::Counter &saved = stats::counter("ir.launches_saved");
    for (const FusionGroup &grp : groups) {
        if (grp.nodeIds.size() < 2)
            continue;
        ++g_counters.fusedLaunches;
        fused.inc();
        const uint64_t s =
            static_cast<uint64_t>(grp.nodeIds.size()) - 1;
        g_counters.launchesSaved += s;
        saved.inc(s);
    }

    planAllocations(g);
    execute(g, groups);

    // Deliver every output to its consumer, then drop the segment.
    for (Value &v : g.values) {
        if (v.sink)
            v.sink(std::move(v.tensor));
    }
    g.clear();
    g_flushing = false;
}

IterationScope::IterationScope()
    : active_(mode() == IrMode::Graph)
{
    if (!active_)
        return;
    gnnperf_assert(!g_scopeActive, "ir: nested IterationScope");
    g_scopeActive = true;
    g_owner = std::this_thread::get_id();
}

IterationScope::~IterationScope()
{
    if (!active_)
        return;
    materializeAll();
    g_scopeActive = false;
}

} // namespace ir
} // namespace gnnperf
