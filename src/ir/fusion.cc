#include "ir/fusion.hh"

#include <utility>

namespace gnnperf {
namespace ir {

namespace {

/**
 * The domain a node iterates over when fused: output rows for gather
 * and elementwise members, *source* (edge) rows for a scatter-add.
 */
int64_t
memberRows(const OpGraph &g, const OpNode &n)
{
    if (n.kind == OpKind::ScatterAdd)
        return g.values[static_cast<std::size_t>(n.a)].rows();
    return g.values[static_cast<std::size_t>(n.out)].rows();
}

bool
sameIndex(const std::shared_ptr<const std::vector<int64_t>> &a,
          const std::shared_ptr<const std::vector<int64_t>> &b)
{
    return a == b || (a && b && *a == *b);
}

} // namespace

std::vector<FusionGroup>
fuse(const OpGraph &g)
{
    std::vector<FusionGroup> out;
    FusionGroup open;
    int32_t open_first = -1;

    auto close = [&] {
        if (!open.nodeIds.empty())
            out.push_back(std::move(open));
        open = FusionGroup{};
        open_first = -1;
    };

    const int32_t count = static_cast<int32_t>(g.nodes.size());
    for (int32_t i = 0; i < count; ++i) {
        const OpNode &n = g.nodes[static_cast<std::size_t>(i)];
        const int64_t rows = memberRows(g, n);

        bool join = !open.nodeIds.empty() && open.rows == rows;
        if (join) {
            switch (n.kind) {
              case OpKind::Gather:
                // A gather reads arbitrary rows of its source, so the
                // source must be fully materialized before the group
                // runs — it cannot come from the open group itself.
                // Scatters are trailing: nothing joins after one.
                join = !open.hasScatter &&
                       !g.producedBy(n.a, open_first, i - 1);
                break;
              case OpKind::Unary:
              case OpKind::Binary:
                // Row e of an in-group input is written by the same
                // chunk iteration just before it is read, so any mix
                // of in-group and external inputs is fine.
                join = !open.hasScatter;
                break;
              case OpKind::ScatterAdd: {
                // All scatters in a group must share the ownership
                // partition: same index vector, same output height.
                const int64_t out_rows =
                    g.values[static_cast<std::size_t>(n.out)].rows();
                join = !open.hasScatter ||
                       (sameIndex(open.scatterIdx, n.idx) &&
                        open.scatterRows == out_rows);
                break;
              }
            }
        }

        if (!join) {
            close();
            open.rows = rows;
            open_first = i;
        }
        open.nodeIds.push_back(i);
        if (n.kind == OpKind::Gather) {
            open.hasGather = true;
        } else if (n.kind == OpKind::ScatterAdd) {
            open.hasScatter = true;
            open.scatterIdx = n.idx;
            open.scatterRows =
                g.values[static_cast<std::size_t>(n.out)].rows();
        }
    }
    close();
    return out;
}

} // namespace ir
} // namespace gnnperf
