/**
 * @file
 * Fusion pass over the recorded op graph.
 *
 * Partitions the pending segment (in record order, which is program
 * order) into maximal gather→elementwise→scatter groups that one
 * ThreadPool launch can execute. See docs/IR.md for the rules.
 */

#ifndef GNNPERF_IR_FUSION_HH
#define GNNPERF_IR_FUSION_HH

#include <vector>

#include "ir/op_graph.hh"

namespace gnnperf {
namespace ir {

/**
 * Greedy linear partition of `g.nodes` into FusionGroups. Groups are
 * returned in execution order; every node appears in exactly one
 * group, and a node's producers are always in the same or an earlier
 * group (record order is topological).
 */
std::vector<FusionGroup> fuse(const OpGraph &g);

} // namespace ir
} // namespace gnnperf

#endif // GNNPERF_IR_FUSION_HH
