/**
 * @file
 * Recorded op-graph IR: the record-then-execute dispatch path.
 *
 * Eager dispatch launches every kernel at call time. In graph mode
 * (`--ir=graph` / `GNNPERF_IR=graph`) the autograd wrappers instead
 * *record* the gather / elementwise / scatter-add launches of one
 * training iteration into an OpGraph (nodes = kernel launches with
 * their cost-model descriptors, edges = tensor def/use) and defer
 * execution until a recorded value is actually read. A flush then
 * runs three phases over the pending segment:
 *
 *   1. fusion (src/ir/fusion.hh): maximal gather→elementwise→scatter
 *      chains collapse into single registered fused launches;
 *   2. memory planning (src/ir/planner.hh): every node output of the
 *      segment is placed through the active device allocator before
 *      any kernel runs;
 *   3. execution (src/ir/executor.hh): fused groups run as one
 *      ThreadPool launch each, singleton nodes replay through the
 *      exact eager `Into` kernels — graph mode is bit-identical to
 *      eager at every thread width.
 *
 * This layer knows nothing about autograd: consumers hand it shapes,
 * tensors and a type-erased sink per recorded value. The tape
 * (autograd/variable.cc) flushes on value access and repoints its
 * nodes via those sinks.
 *
 * Recording is confined to the thread that opened the current
 * IterationScope (trainers wrap each forward+backward+update block in
 * one); every other thread, and any code outside a scope — eval,
 * inference, dataset prep — takes the unchanged eager path.
 */

#ifndef GNNPERF_IR_IR_HH
#define GNNPERF_IR_IR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace gnnperf {
namespace ir {

/** Dispatch path selector (GNNPERF_IR; --ir on run_experiment wins). */
enum class IrMode
{
    Eager,
    Graph,
};

/** Active mode; first call resolves GNNPERF_IR, default eager. */
IrMode mode();

/** Override the mode (CLI flag, tests). */
void setMode(IrMode m);

/** Parse "eager" / "graph"; panics on anything else. */
IrMode modeFromString(const char *s);

/**
 * True when ops should record instead of execute: graph mode, an
 * IterationScope is open, and the caller is the scope's owner thread.
 */
bool recording();

/** Recorded-but-not-yet-executed node count (tests, diagnostics). */
std::size_t pendingCount();

/**
 * Reference to an op input: either a value already pending in the
 * recorded graph (slot >= 0) or a concrete tensor. The tensor pointer
 * is only read during the record call itself.
 */
struct ValRef
{
    int32_t slot = -1;
    const Tensor *tensor = nullptr;

    static ValRef pending(int32_t s)
    {
        ValRef r;
        r.slot = s;
        return r;
    }

    static ValRef concrete(const Tensor &t)
    {
        ValRef r;
        r.tensor = &t;
        return r;
    }
};

/** Record out = unary(a); returns the output's pending slot. */
int32_t recordUnary(ops::EwUnary k, float param, ValRef a);

/** Record out = a ∘ b (shapes must match). */
int32_t recordBinary(ops::EwBinary k, ValRef a, ValRef b);

/**
 * Record out[e] = src[idx[e]]. The index vector is interned once per
 * iteration (keyed on its address) and shared with the caller, so a
 * backward closure can hold the same copy.
 */
int32_t recordGather(ValRef src, const std::vector<int64_t> &idx);

/** Record out[idx[e]] += src[e] into `num_rows` fresh rows. */
int32_t recordScatterAdd(ValRef src, const std::vector<int64_t> &idx,
                         int64_t num_rows);

/** The interned copy of the last index vector passed for `idx`. */
std::shared_ptr<const std::vector<int64_t>>
internedIndex(const std::vector<int64_t> &idx);

/**
 * Attach the consumer's completion callback to a pending slot; called
 * exactly once, during the flush, with the materialized tensor.
 */
void bindSink(int32_t slot, std::function<void(Tensor)> sink);

/** Shape of a pending value (no flush). */
const std::vector<int64_t> &shapeOf(int32_t slot);

/**
 * Flush: fuse, plan and execute every pending node, deliver all sinks,
 * clear the graph. No-op when nothing is pending.
 */
void materializeAll();

/**
 * Cumulative dispatch accounting for the `ir.*` BENCH series
 * (docs/OBSERVABILITY.md).
 */
struct IrCounters
{
    uint64_t recordedOps = 0;   ///< nodes recorded (eager launches)
    uint64_t fusedLaunches = 0; ///< multi-node groups launched
    uint64_t launchesSaved = 0; ///< recorded ops minus actual launches
};

const IrCounters &counters();

/**
 * RAII bracket around one training iteration: opens recording for the
 * constructing thread in graph mode, flushes any leftover pending
 * nodes on destruction. Inert in eager mode. Must not nest.
 */
class IterationScope
{
  public:
    IterationScope();
    ~IterationScope();

    IterationScope(const IterationScope &) = delete;
    IterationScope &operator=(const IterationScope &) = delete;

  private:
    bool active_;
};

} // namespace ir
} // namespace gnnperf

#endif // GNNPERF_IR_IR_HH
