#include "data/citation.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"

namespace gnnperf {

NodeDataset
makeCitation(const CitationConfig &cfg)
{
    gnnperf_assert(cfg.numClasses >= 2, "citation: need >= 2 classes");
    gnnperf_assert(cfg.trainPerClass * cfg.numClasses + cfg.valCount +
                       cfg.testCount <= cfg.numNodes,
                   "citation: split larger than graph");
    Rng rng(cfg.seed);

    NodeDataset ds;
    ds.name = cfg.name;
    ds.numFeatures = cfg.numFeatures;
    ds.numClasses = cfg.numClasses;

    Graph &g = ds.graph;
    g.numNodes = cfg.numNodes;

    // Class assignment: mildly imbalanced, like real citation data.
    std::vector<double> class_weights(
        static_cast<std::size_t>(cfg.numClasses));
    for (auto &w : class_weights)
        w = rng.uniform(0.7, 1.3);
    g.nodeLabels.resize(static_cast<std::size_t>(cfg.numNodes));
    for (auto &label : g.nodeLabels)
        label = static_cast<int64_t>(rng.categorical(class_weights));

    // Nodes grouped by class for homophilous endpoint sampling.
    std::vector<std::vector<int64_t>> by_class(
        static_cast<std::size_t>(cfg.numClasses));
    for (int64_t v = 0; v < cfg.numNodes; ++v)
        by_class[static_cast<std::size_t>(g.nodeLabels[
            static_cast<std::size_t>(v)])].push_back(v);

    // Edges: degree-biased source, homophilous destination. A small
    // seen-set avoids duplicate pairs without changing the degree
    // distribution materially.
    std::vector<double> degree_bias(
        static_cast<std::size_t>(cfg.numNodes), 1.0);
    std::set<std::pair<int64_t, int64_t>> seen;
    int64_t added = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = cfg.numUndirectedEdges * 20;
    while (added < cfg.numUndirectedEdges &&
           attempts++ < max_attempts) {
        const int64_t u = static_cast<int64_t>(
            rng.categorical(degree_bias));
        int64_t v;
        const auto cls = static_cast<std::size_t>(
            g.nodeLabels[static_cast<std::size_t>(u)]);
        if (rng.bernoulli(cfg.homophily) && by_class[cls].size() > 1) {
            v = by_class[cls][rng.uniformInt(
                static_cast<uint64_t>(by_class[cls].size()))];
        } else {
            v = static_cast<int64_t>(
                rng.uniformInt(static_cast<uint64_t>(cfg.numNodes)));
        }
        if (u == v)
            continue;
        auto key = std::minmax(u, v);
        if (!seen.insert({key.first, key.second}).second)
            continue;
        g.addUndirectedEdge(u, v);
        degree_bias[static_cast<std::size_t>(u)] += 0.6;
        degree_bias[static_cast<std::size_t>(v)] += 0.6;
        ++added;
    }
    gnnperf_assert(added > cfg.numUndirectedEdges / 2,
                   "citation: edge generation starved");

    // Features: sparse binary bag-of-words. Class c owns a topic
    // window of the vocabulary; windows overlap so classes are not
    // trivially separable from features alone.
    const int64_t window = std::max<int64_t>(
        cfg.numFeatures / cfg.numClasses, 4);
    g.x = Tensor::zeros({cfg.numNodes, cfg.numFeatures},
                        DeviceKind::Host);
    float *px = g.x.data();
    for (int64_t v = 0; v < cfg.numNodes; ++v) {
        const int64_t cls = g.nodeLabels[static_cast<std::size_t>(v)];
        const int64_t topic_begin =
            (cls * cfg.numFeatures) / cfg.numClasses;
        for (int64_t w = 0; w < cfg.wordsPerDoc; ++w) {
            int64_t word;
            if (rng.bernoulli(cfg.topicFidelity)) {
                // Own topic window (wrapping), slightly wider than the
                // per-class share to create overlap.
                word = (topic_begin +
                        static_cast<int64_t>(rng.uniformInt(
                            static_cast<uint64_t>(window * 3 / 2)))) %
                       cfg.numFeatures;
            } else {
                word = static_cast<int64_t>(rng.uniformInt(
                    static_cast<uint64_t>(cfg.numFeatures)));
            }
            px[v * cfg.numFeatures + word] = 1.0f;
        }
    }

    // Label noise: flip a fraction of labels to a random other class
    // (applied after structure/features so the graph keeps its clean
    // homophily — only the supervision is noisy, as in real data).
    if (cfg.labelNoise > 0.0) {
        for (auto &label : g.nodeLabels) {
            if (!rng.bernoulli(cfg.labelNoise))
                continue;
            const int64_t offset =
                rng.uniformInt(int64_t{1}, cfg.numClasses - 1);
            label = (label + offset) % cfg.numClasses;
        }
    }

    // Planetoid-style split: trainPerClass per class, then val/test
    // from the remaining nodes.
    g.trainMask.assign(static_cast<std::size_t>(cfg.numNodes), 0);
    g.valMask.assign(static_cast<std::size_t>(cfg.numNodes), 0);
    g.testMask.assign(static_cast<std::size_t>(cfg.numNodes), 0);
    std::vector<int64_t> order(static_cast<std::size_t>(cfg.numNodes));
    for (int64_t v = 0; v < cfg.numNodes; ++v)
        order[static_cast<std::size_t>(v)] = v;
    rng.shuffle(order);
    std::vector<int64_t> taken_per_class(
        static_cast<std::size_t>(cfg.numClasses), 0);
    std::vector<int64_t> rest;
    for (int64_t v : order) {
        auto cls = static_cast<std::size_t>(
            g.nodeLabels[static_cast<std::size_t>(v)]);
        if (taken_per_class[cls] < cfg.trainPerClass) {
            g.trainMask[static_cast<std::size_t>(v)] = 1;
            ++taken_per_class[cls];
        } else {
            rest.push_back(v);
        }
    }
    int64_t val_taken = 0, test_taken = 0;
    for (int64_t v : rest) {
        if (val_taken < cfg.valCount) {
            g.valMask[static_cast<std::size_t>(v)] = 1;
            ++val_taken;
        } else if (test_taken < cfg.testCount) {
            g.testMask[static_cast<std::size_t>(v)] = 1;
            ++test_taken;
        }
    }
    return ds;
}

NodeDataset
makeCora(uint64_t seed)
{
    CitationConfig cfg;
    cfg.name = "CORA";
    cfg.numNodes = 2708;
    cfg.numUndirectedEdges = 5429;
    cfg.numFeatures = 1433;
    cfg.numClasses = 7;
    cfg.trainPerClass = 20;  // 140 train nodes
    cfg.valCount = 500;
    cfg.testCount = 1000;
    cfg.homophily = 0.86;
    cfg.wordsPerDoc = 18;
    cfg.topicFidelity = 0.68;
    cfg.labelNoise = 0.14;
    cfg.seed = seed;
    return makeCitation(cfg);
}

NodeDataset
makePubMed(uint64_t seed)
{
    CitationConfig cfg;
    cfg.name = "PubMed";
    cfg.numNodes = 19717;
    cfg.numUndirectedEdges = 44338;
    cfg.numFeatures = 500;
    cfg.numClasses = 3;
    cfg.trainPerClass = 20;  // 60 train nodes
    cfg.valCount = 500;
    cfg.testCount = 1000;
    cfg.homophily = 0.82;
    cfg.wordsPerDoc = 24;
    cfg.topicFidelity = 0.60;
    cfg.labelNoise = 0.13;
    cfg.seed = seed ^ 0xc0ffee;
    return makeCitation(cfg);
}

} // namespace gnnperf
