#include "data/dataloader.hh"

#include "common/logging.hh"
#include "device/profiler.hh"
#include "obs/spans.hh"
#include "obs/stats.hh"

namespace gnnperf {

DataLoader::DataLoader(const GraphDataset &dataset,
                       std::vector<int64_t> indices, int64_t batch_size,
                       const Backend &backend, bool shuffle,
                       uint64_t seed)
    : dataset_(dataset),
      indices_(std::move(indices)),
      batchSize_(batch_size),
      backend_(backend),
      shuffle_(shuffle),
      rng_(seed)
{
    gnnperf_assert(batchSize_ > 0, "DataLoader: batch size <= 0");
    gnnperf_assert(!indices_.empty(), "DataLoader: empty index set");
    for (int64_t idx : indices_) {
        gnnperf_assert(idx >= 0 && idx < static_cast<int64_t>(
                           dataset_.graphs.size()),
                       "DataLoader: index ", idx, " out of range");
    }
}

void
DataLoader::startEpoch()
{
    static stats::Counter &epochs = stats::counter("dataloader.epochs");
    epochs.inc();
    cursor_ = 0;
    if (shuffle_)
        rng_.shuffle(indices_);
}

bool
DataLoader::next(BatchedGraph &out)
{
    if (cursor_ >= indices_.size())
        return false;
    PhaseScope phase(Phase::DataLoading);
    HostSpan span("dataloader.next");
    const std::size_t end = std::min(
        cursor_ + static_cast<std::size_t>(batchSize_), indices_.size());
    std::vector<const Graph *> members;
    members.reserve(end - cursor_);
    for (std::size_t i = cursor_; i < end; ++i) {
        members.push_back(&dataset_.graphs[static_cast<std::size_t>(
            indices_[i])]);
    }
    cursor_ = end;
    static stats::Counter &batches = stats::counter("dataloader.batches");
    static stats::Counter &graphs = stats::counter("dataloader.graphs");
    batches.inc();
    graphs.inc(members.size());
    out = backend_.collate(members);
    return true;
}

int64_t
DataLoader::numBatches() const
{
    return static_cast<int64_t>(
        (indices_.size() + static_cast<std::size_t>(batchSize_) - 1) /
        static_cast<std::size_t>(batchSize_));
}

} // namespace gnnperf
