/**
 * @file
 * Dataset containers and Table-I statistics.
 *
 * The paper's datasets (Cora, PubMed, ENZYMES, DD, MNIST-superpixels)
 * are not redistributable offline, so gnnperf generates synthetic
 * datasets with the same shape: node/edge/feature/class counts from
 * Table I, and enough label signal that the six models train to
 * accuracies in the paper's band. Each generator documents its
 * construction; DESIGN.md §2 records the substitution rationale.
 */

#ifndef GNNPERF_DATA_DATASET_HH
#define GNNPERF_DATA_DATASET_HH

#include <string>
#include <vector>

#include "graph/graph.hh"

namespace gnnperf {

/** Table-I style statistics. */
struct DatasetInfo
{
    std::string name;
    int64_t numGraphs = 0;
    double avgNodes = 0.0;
    double avgEdges = 0.0;  ///< undirected edge pairs, as Table I
    int64_t numFeatures = 0;
    int64_t numClasses = 0;
};

/** A graph-classification dataset. */
struct GraphDataset
{
    std::string name;
    std::vector<Graph> graphs;
    int64_t numFeatures = 0;
    int64_t numClasses = 0;

    /** Table-I statistics (edges counted as undirected pairs). */
    DatasetInfo info() const;

    /** Per-graph labels. */
    std::vector<int64_t> labels() const;
};

/** A transductive node-classification dataset (one graph + masks). */
struct NodeDataset
{
    std::string name;
    Graph graph;
    int64_t numFeatures = 0;
    int64_t numClasses = 0;

    DatasetInfo info() const;
};

} // namespace gnnperf

#endif // GNNPERF_DATA_DATASET_HH
