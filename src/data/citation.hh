/**
 * @file
 * Synthetic citation-network generator (Cora / PubMed stand-ins).
 *
 * Construction: a degree-biased stochastic block model — documents get
 * classes, edges prefer same-class endpoints (homophily) and
 * high-degree endpoints (preferential attachment); features are sparse
 * binary bags-of-words where each class owns an (overlapping) topic
 * window of the vocabulary. Node counts, edge counts, vocabulary size,
 * class counts and the train/val/test split sizes are taken from
 * Table I and §IV-A of the paper.
 */

#ifndef GNNPERF_DATA_CITATION_HH
#define GNNPERF_DATA_CITATION_HH

#include "data/dataset.hh"

namespace gnnperf {

/** Generator parameters. */
struct CitationConfig
{
    std::string name = "citation";
    int64_t numNodes = 1000;
    int64_t numUndirectedEdges = 2000;
    int64_t numFeatures = 100;
    int64_t numClasses = 5;
    int64_t trainPerClass = 20;
    int64_t valCount = 500;
    int64_t testCount = 1000;
    double homophily = 0.90;    ///< P(edge endpoints share a class)
    int64_t wordsPerDoc = 18;   ///< active features per node
    double topicFidelity = 0.82;///< P(word drawn from own topics)
    /**
     * Fraction of labels flipped to a random other class after the
     * structure/features are generated. Real citation datasets are
     * noisily labelled; this is the lever that puts model accuracy in
     * the paper's 74–83 % band instead of the high 90s.
     */
    double labelNoise = 0.10;
    uint64_t seed = 7;
};

/** Generate a citation dataset from explicit parameters. */
NodeDataset makeCitation(const CitationConfig &cfg);

/** Cora-shaped dataset: 2708 nodes, 5429 edges, 1433 feats, 7 classes,
 *  140/500/1000 split. */
NodeDataset makeCora(uint64_t seed = 7);

/** PubMed-shaped dataset: 19717 nodes, 44338 edges, 500 feats,
 *  3 classes, 60/500/1000 split. */
NodeDataset makePubMed(uint64_t seed = 7);

} // namespace gnnperf

#endif // GNNPERF_DATA_CITATION_HH
