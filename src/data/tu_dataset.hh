/**
 * @file
 * Synthetic TU-style graph-classification datasets (ENZYMES / DD
 * stand-ins).
 *
 * Construction: each class defines (a) a structural recipe — a ring
 * lattice whose connectivity and shortcut rate depend on the class —
 * and (b) a feature prototype — node features are drawn from a
 * class-conditioned Gaussian mixture with heavy noise, so models reach
 * the paper's mid-60s/mid-70s accuracy band rather than 100%.
 * Graph-size distributions match Table I (ENZYMES: small graphs,
 * avg 32.6 nodes; DD: large graphs with a heavy tail, avg 284.3).
 */

#ifndef GNNPERF_DATA_TU_DATASET_HH
#define GNNPERF_DATA_TU_DATASET_HH

#include "data/dataset.hh"

namespace gnnperf {

/** Generator parameters. */
struct TuConfig
{
    std::string name = "TU";
    int64_t numGraphs = 100;
    int64_t numFeatures = 8;
    int64_t numClasses = 2;
    int64_t minNodes = 4;
    int64_t maxNodes = 64;
    double logMeanNodes = 3.2;   ///< log-normal node-count mean
    double logStdNodes = 0.5;    ///< log-normal node-count std
    double baseShortcuts = 0.15; ///< shortcut edges per node
    double featureNoise = 1.5;   ///< per-node Gaussian noise sigma
    double structureSignal = 0.35;///< class-dependent structure delta
    /**
     * Per-graph noise: a random offset shared by all nodes of a graph
     * (on the prototype dims) and a log-normal jitter on the shortcut
     * rate. Per-node noise averages out under mean readout over ~30+
     * nodes; these graph-level terms do not, so they are the lever
     * that caps test accuracy at the paper's 65–78 % band instead of
     * the high 90s.
     */
    double graphNoise = 0.5;
    double structureJitter = 0.35;
    /** Amplitude of the class prototype (smaller = harder task). */
    double protoScale = 1.0;
    uint64_t seed = 11;
};

/** Generate a TU-style dataset from explicit parameters. */
GraphDataset makeTuDataset(const TuConfig &cfg);

/**
 * ENZYMES-shaped dataset: 600 graphs (override with num_graphs),
 * 6 classes, 18 features, sizes 2–126 averaging ≈32.6 nodes.
 */
GraphDataset makeEnzymes(uint64_t seed = 11, int64_t num_graphs = 600);

/**
 * DD-shaped dataset: 1178 graphs (override with num_graphs), 2
 * classes, 89 features, sizes 30–5748 averaging ≈284.3 nodes.
 * `max_nodes_cap` truncates the heavy tail for smoke-scale runs
 * (0 = paper scale).
 */
GraphDataset makeDD(uint64_t seed = 11, int64_t num_graphs = 1178,
                    int64_t max_nodes_cap = 0);

} // namespace gnnperf

#endif // GNNPERF_DATA_TU_DATASET_HH
