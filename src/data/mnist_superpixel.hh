/**
 * @file
 * MNIST-superpixel graph generator (paper §III-C, Fig. 6 workload).
 *
 * The paper converts MNIST images to graphs with SLIC superpixels.
 * Offline we (a) rasterise digits procedurally — each digit class has
 * a stroke-segment template drawn with jitter, translation and
 * rotation onto a 28×28 canvas — then (b) run a simplified SLIC
 * (k-means over x, y, intensity with grid seeding) to extract ~75
 * superpixels, and (c) connect each superpixel to its k nearest
 * neighbors by centroid distance. Resulting graphs average ≈70 nodes
 * with a 1-dim intensity feature, matching Table I.
 */

#ifndef GNNPERF_DATA_MNIST_SUPERPIXEL_HH
#define GNNPERF_DATA_MNIST_SUPERPIXEL_HH

#include "common/random.hh"
#include "data/dataset.hh"

namespace gnnperf {

/** Generator parameters. */
struct MnistSuperpixelConfig
{
    int64_t numGraphs = 2000;  ///< paper scale: 70000
    int64_t targetSuperpixels = 75;
    int64_t knn = 4;           ///< undirected neighbors per node
    int slicIterations = 4;
    uint64_t seed = 5;
};

/** Rasterise one digit (0–9) onto a 28×28 canvas (row-major [784]). */
std::vector<float> rasterizeDigit(int digit, Rng &rng);

/** Convert a 28×28 image to a superpixel graph. */
Graph imageToSuperpixelGraph(const std::vector<float> &image,
                             int64_t label,
                             const MnistSuperpixelConfig &cfg,
                             Rng &rng);

/** Generate the dataset. */
GraphDataset makeMnistSuperpixels(const MnistSuperpixelConfig &cfg);

} // namespace gnnperf

#endif // GNNPERF_DATA_MNIST_SUPERPIXEL_HH
