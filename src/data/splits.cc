#include "data/splits.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/random.hh"

namespace gnnperf {

namespace {

/** Per-class shuffled index lists. */
std::map<int64_t, std::vector<int64_t>>
groupByClass(const std::vector<int64_t> &labels, Rng &rng)
{
    std::map<int64_t, std::vector<int64_t>> by_class;
    for (std::size_t i = 0; i < labels.size(); ++i)
        by_class[labels[i]].push_back(static_cast<int64_t>(i));
    for (auto &[cls, indices] : by_class)
        rng.shuffle(indices);
    return by_class;
}

} // namespace

std::vector<FoldSplit>
stratifiedKFold(const std::vector<int64_t> &labels, int k, uint64_t seed)
{
    gnnperf_assert(k >= 2, "stratifiedKFold: k < 2");
    gnnperf_assert(labels.size() >= static_cast<std::size_t>(k),
                   "stratifiedKFold: fewer samples than folds");
    Rng rng(seed);
    auto by_class = groupByClass(labels, rng);

    // Round-robin each class's samples over the k buckets so every
    // bucket preserves the class distribution.
    std::vector<std::vector<int64_t>> buckets(
        static_cast<std::size_t>(k));
    std::size_t cursor = 0;
    for (auto &[cls, indices] : by_class) {
        for (int64_t idx : indices) {
            buckets[cursor % static_cast<std::size_t>(k)].push_back(idx);
            ++cursor;
        }
    }

    std::vector<FoldSplit> folds;
    folds.reserve(static_cast<std::size_t>(k));
    for (int f = 0; f < k; ++f) {
        FoldSplit split;
        const auto test_b = static_cast<std::size_t>(f);
        const auto val_b = static_cast<std::size_t>((f + 1) % k);
        for (std::size_t b = 0; b < buckets.size(); ++b) {
            auto &dst = b == test_b ? split.test
                        : b == val_b ? split.val : split.train;
            dst.insert(dst.end(), buckets[b].begin(), buckets[b].end());
        }
        folds.push_back(std::move(split));
    }
    return folds;
}

FoldSplit
stratifiedSplit(const std::vector<int64_t> &labels, double train_frac,
                double val_frac, uint64_t seed)
{
    gnnperf_assert(train_frac > 0.0 && val_frac >= 0.0 &&
                   train_frac + val_frac < 1.0,
                   "stratifiedSplit: bad fractions");
    Rng rng(seed);
    auto by_class = groupByClass(labels, rng);
    FoldSplit split;
    for (auto &[cls, indices] : by_class) {
        const auto n = indices.size();
        const auto n_train = static_cast<std::size_t>(
            static_cast<double>(n) * train_frac);
        const auto n_val = static_cast<std::size_t>(
            static_cast<double>(n) * val_frac);
        for (std::size_t i = 0; i < n; ++i) {
            auto &dst = i < n_train ? split.train
                        : i < n_train + n_val ? split.val : split.test;
            dst.push_back(indices[i]);
        }
    }
    return split;
}

} // namespace gnnperf
