#include "data/dataset.hh"

namespace gnnperf {

DatasetInfo
GraphDataset::info() const
{
    DatasetInfo out;
    out.name = name;
    out.numGraphs = static_cast<int64_t>(graphs.size());
    double nodes = 0.0, edges = 0.0;
    for (const Graph &g : graphs) {
        nodes += static_cast<double>(g.numNodes);
        edges += static_cast<double>(g.numEdges()) / 2.0;
    }
    if (!graphs.empty()) {
        out.avgNodes = nodes / static_cast<double>(graphs.size());
        out.avgEdges = edges / static_cast<double>(graphs.size());
    }
    out.numFeatures = numFeatures;
    out.numClasses = numClasses;
    return out;
}

std::vector<int64_t>
GraphDataset::labels() const
{
    std::vector<int64_t> out;
    out.reserve(graphs.size());
    for (const Graph &g : graphs)
        out.push_back(g.graphLabel);
    return out;
}

DatasetInfo
NodeDataset::info() const
{
    DatasetInfo out;
    out.name = name;
    out.numGraphs = 1;
    out.avgNodes = static_cast<double>(graph.numNodes);
    out.avgEdges = static_cast<double>(graph.numEdges()) / 2.0;
    out.numFeatures = numFeatures;
    out.numClasses = numClasses;
    return out;
}

} // namespace gnnperf
