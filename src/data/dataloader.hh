/**
 * @file
 * Mini-batch loader: shuffles sample indices each epoch and collates
 * batches through the framework backend, stamping everything it does
 * with the DataLoading phase (paper Figs. 1/2: "data loading time
 * includes not only data fetching from memory, but also data
 * processing").
 */

#ifndef GNNPERF_DATA_DATALOADER_HH
#define GNNPERF_DATA_DATALOADER_HH

#include "backends/backend.hh"
#include "common/random.hh"
#include "data/dataset.hh"

namespace gnnperf {

/**
 * Iterates a GraphDataset subset in mini-batches.
 */
class DataLoader
{
  public:
    /**
     * @param dataset dataset to draw from (must outlive the loader)
     * @param indices subset to iterate (e.g. a fold's train indices)
     * @param batch_size graphs per batch (paper: 128 default)
     * @param backend framework whose collation builds the batch
     * @param shuffle reshuffle at every epoch start
     * @param seed shuffle seed
     */
    DataLoader(const GraphDataset &dataset, std::vector<int64_t> indices,
               int64_t batch_size, const Backend &backend, bool shuffle,
               uint64_t seed);

    /** Reset to the first batch, reshuffling when enabled. */
    void startEpoch();

    /**
     * Produce the next batch. Returns false at epoch end.
     * Collation work is recorded under Phase::DataLoading.
     */
    bool next(BatchedGraph &out);

    int64_t numBatches() const;
    int64_t batchSize() const { return batchSize_; }
    int64_t sampleCount() const
    {
        return static_cast<int64_t>(indices_.size());
    }

  private:
    const GraphDataset &dataset_;
    std::vector<int64_t> indices_;
    int64_t batchSize_;
    const Backend &backend_;
    bool shuffle_;
    Rng rng_;
    std::size_t cursor_ = 0;
};

} // namespace gnnperf

#endif // GNNPERF_DATA_DATALOADER_HH
