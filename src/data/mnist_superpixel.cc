#include "data/mnist_superpixel.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"

namespace gnnperf {

namespace {

constexpr int kSide = 28;
constexpr int kPixels = kSide * kSide;

/** A stroke segment in the unit box. */
struct Segment
{
    float x0, y0, x1, y1;
};

/** Seven-segment-style stroke templates per digit. */
const std::vector<Segment> &
digitTemplate(int digit)
{
    // Segment endpoints (x, y) with y growing downward.
    static const Segment A{0.2f, 0.15f, 0.8f, 0.15f};
    static const Segment B{0.8f, 0.15f, 0.8f, 0.50f};
    static const Segment C{0.8f, 0.50f, 0.8f, 0.85f};
    static const Segment D{0.2f, 0.85f, 0.8f, 0.85f};
    static const Segment E{0.2f, 0.50f, 0.2f, 0.85f};
    static const Segment F{0.2f, 0.15f, 0.2f, 0.50f};
    static const Segment G{0.2f, 0.50f, 0.8f, 0.50f};
    static const std::vector<Segment> digits[10] = {
        {A, B, C, D, E, F},        // 0
        {B, C},                    // 1
        {A, B, G, E, D},           // 2
        {A, B, G, C, D},           // 3
        {F, G, B, C},              // 4
        {A, F, G, C, D},           // 5
        {A, F, G, E, C, D},        // 6
        {A, B, C},                 // 7
        {A, B, C, D, E, F, G},     // 8
        {A, B, C, D, F, G},        // 9
    };
    gnnperf_assert(digit >= 0 && digit < 10, "digit out of range");
    return digits[digit];
}

} // namespace

std::vector<float>
rasterizeDigit(int digit, Rng &rng)
{
    std::vector<float> image(static_cast<std::size_t>(kPixels), 0.0f);

    // Random affine: rotation, scale, translation.
    const float theta = static_cast<float>(rng.uniform(-0.14, 0.14));
    const float scale = static_cast<float>(rng.uniform(0.85, 1.08));
    const float tx = static_cast<float>(rng.uniform(-0.06, 0.06));
    const float ty = static_cast<float>(rng.uniform(-0.06, 0.06));
    const float ct = std::cos(theta), st = std::sin(theta);
    auto transform = [&](float x, float y, float &ox, float &oy) {
        // Center, scale+rotate, uncenter, translate, to pixel coords.
        const float cx = (x - 0.5f) * scale, cy = (y - 0.5f) * scale;
        ox = (ct * cx - st * cy + 0.5f + tx) * (kSide - 1);
        oy = (st * cx + ct * cy + 0.5f + ty) * (kSide - 1);
    };

    const float thickness = static_cast<float>(rng.uniform(1.0, 1.6));
    for (const Segment &seg : digitTemplate(digit)) {
        // Per-segment endpoint jitter.
        const float jx0 = seg.x0 + static_cast<float>(
            rng.uniform(-0.04, 0.04));
        const float jy0 = seg.y0 + static_cast<float>(
            rng.uniform(-0.04, 0.04));
        const float jx1 = seg.x1 + static_cast<float>(
            rng.uniform(-0.04, 0.04));
        const float jy1 = seg.y1 + static_cast<float>(
            rng.uniform(-0.04, 0.04));
        float px0, py0, px1, py1;
        transform(jx0, jy0, px0, py0);
        transform(jx1, jy1, px1, py1);

        // Walk the segment stamping Gaussian blobs.
        const float len = std::hypot(px1 - px0, py1 - py0);
        const int steps = std::max(2, static_cast<int>(len * 2.0f));
        for (int s = 0; s <= steps; ++s) {
            const float t = static_cast<float>(s) / steps;
            const float cx = px0 + t * (px1 - px0);
            const float cy = py0 + t * (py1 - py0);
            const int x_lo = std::max(0, static_cast<int>(cx - 2.5f));
            const int x_hi = std::min(kSide - 1,
                                      static_cast<int>(cx + 2.5f));
            const int y_lo = std::max(0, static_cast<int>(cy - 2.5f));
            const int y_hi = std::min(kSide - 1,
                                      static_cast<int>(cy + 2.5f));
            for (int y = y_lo; y <= y_hi; ++y) {
                for (int x = x_lo; x <= x_hi; ++x) {
                    const float d2 =
                        (x - cx) * (x - cx) + (y - cy) * (y - cy);
                    const float v = std::exp(
                        -d2 / (2.0f * thickness * thickness));
                    float &pix = image[static_cast<std::size_t>(
                        y * kSide + x)];
                    pix = std::max(pix, v);
                }
            }
        }
    }
    return image;
}

Graph
imageToSuperpixelGraph(const std::vector<float> &image, int64_t label,
                       const MnistSuperpixelConfig &cfg, Rng &rng)
{
    gnnperf_assert(static_cast<int>(image.size()) == kPixels,
                   "imageToSuperpixelGraph: wrong image size");
    const int64_t k = cfg.targetSuperpixels;

    // Grid-seeded centroids in (x, y, intensity).
    const int grid = static_cast<int>(std::ceil(std::sqrt(
        static_cast<double>(k))));
    struct Centroid { float x, y, inten; float sx, sy, si; int count; };
    std::vector<Centroid> centroids;
    centroids.reserve(static_cast<std::size_t>(k));
    for (int64_t c = 0; c < k; ++c) {
        const int gx = static_cast<int>(c) % grid;
        const int gy = static_cast<int>(c) / grid;
        float x = (gx + 0.5f) * kSide / grid +
                  static_cast<float>(rng.uniform(-0.5, 0.5));
        float y = (gy + 0.5f) * kSide / grid +
                  static_cast<float>(rng.uniform(-0.5, 0.5));
        x = std::clamp(x, 0.0f, static_cast<float>(kSide - 1));
        y = std::clamp(y, 0.0f, static_cast<float>(kSide - 1));
        const int xi = static_cast<int>(x), yi = static_cast<int>(y);
        centroids.push_back(Centroid{
            x, y, image[static_cast<std::size_t>(yi * kSide + xi)],
            0, 0, 0, 0});
    }

    // SLIC-style k-means: distance mixes position and intensity.
    const float intensity_weight = 9.0f;
    std::vector<int> assignment(static_cast<std::size_t>(kPixels), 0);
    for (int iter = 0; iter < cfg.slicIterations; ++iter) {
        for (int p = 0; p < kPixels; ++p) {
            const float px = static_cast<float>(p % kSide);
            const float py = static_cast<float>(p / kSide);
            const float pi =
                image[static_cast<std::size_t>(p)] * intensity_weight;
            float best = 1e30f;
            int best_c = 0;
            for (std::size_t c = 0; c < centroids.size(); ++c) {
                const Centroid &cen = centroids[c];
                const float dx = px - cen.x, dy = py - cen.y;
                const float di = pi - cen.inten * intensity_weight;
                const float d = dx * dx + dy * dy + di * di;
                if (d < best) {
                    best = d;
                    best_c = static_cast<int>(c);
                }
            }
            assignment[static_cast<std::size_t>(p)] = best_c;
        }
        for (auto &cen : centroids) {
            cen.sx = cen.sy = cen.si = 0.0f;
            cen.count = 0;
        }
        for (int p = 0; p < kPixels; ++p) {
            Centroid &cen = centroids[static_cast<std::size_t>(
                assignment[static_cast<std::size_t>(p)])];
            cen.sx += static_cast<float>(p % kSide);
            cen.sy += static_cast<float>(p / kSide);
            cen.si += image[static_cast<std::size_t>(p)];
            ++cen.count;
        }
        for (auto &cen : centroids) {
            if (cen.count > 0) {
                cen.x = cen.sx / cen.count;
                cen.y = cen.sy / cen.count;
                cen.inten = cen.si / cen.count;
            }
        }
    }

    // Keep non-empty superpixels as nodes. A handful of clusters are
    // usually empty, giving the ≈70-node average of Table I.
    std::vector<Centroid> kept;
    for (const auto &cen : centroids)
        if (cen.count > 0)
            kept.push_back(cen);
    // Degenerate safety: always at least 2 nodes.
    while (kept.size() < 2)
        kept.push_back(Centroid{14, 14, 0, 0, 0, 0, 1});

    Graph g;
    g.numNodes = static_cast<int64_t>(kept.size());
    g.graphLabel = label;
    g.x = Tensor({g.numNodes, 1}, DeviceKind::Host);
    g.posX.resize(kept.size());
    g.posY.resize(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
        g.x.set(static_cast<int64_t>(i), 0, kept[i].inten);
        g.posX[i] = kept[i].x;
        g.posY[i] = kept[i].y;
    }

    // kNN edges over centroid positions.
    std::set<std::pair<int64_t, int64_t>> seen;
    for (std::size_t i = 0; i < kept.size(); ++i) {
        std::vector<std::pair<float, int64_t>> dists;
        dists.reserve(kept.size() - 1);
        for (std::size_t j = 0; j < kept.size(); ++j) {
            if (i == j)
                continue;
            const float dx = kept[i].x - kept[j].x;
            const float dy = kept[i].y - kept[j].y;
            dists.emplace_back(dx * dx + dy * dy,
                               static_cast<int64_t>(j));
        }
        const std::size_t take = std::min<std::size_t>(
            static_cast<std::size_t>(cfg.knn), dists.size());
        std::partial_sort(dists.begin(), dists.begin() + take,
                          dists.end());
        for (std::size_t t = 0; t < take; ++t) {
            // Not std::minmax: it returns references to its
            // arguments, which here would dangle past this statement.
            const int64_t a = static_cast<int64_t>(i);
            const int64_t b = dists[t].second;
            if (seen.insert({std::min(a, b), std::max(a, b)}).second)
                g.addUndirectedEdge(a, b);
        }
    }
    return g;
}

GraphDataset
makeMnistSuperpixels(const MnistSuperpixelConfig &cfg)
{
    Rng rng(cfg.seed);
    GraphDataset ds;
    ds.name = "MNIST";
    ds.numFeatures = 1;
    ds.numClasses = 10;
    ds.graphs.reserve(static_cast<std::size_t>(cfg.numGraphs));
    for (int64_t i = 0; i < cfg.numGraphs; ++i) {
        const int digit = static_cast<int>(i % 10);
        std::vector<float> image = rasterizeDigit(digit, rng);
        ds.graphs.push_back(
            imageToSuperpixelGraph(image, digit, cfg, rng));
    }
    return ds;
}

} // namespace gnnperf
