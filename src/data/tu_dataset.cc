#include "data/tu_dataset.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace gnnperf {

namespace {

/**
 * One ring-lattice graph with class-dependent connectivity:
 * every node connects to its `k` ring successors, plus shortcut edges
 * whose rate rises with the class id (the structural label signal).
 */
Graph
makeStructuredGraph(int64_t nodes, int64_t cls, const TuConfig &cfg,
                    Rng &rng)
{
    Graph g;
    g.numNodes = nodes;
    g.graphLabel = cls;

    const double class_frac =
        cfg.numClasses > 1
            ? static_cast<double>(cls) /
                  static_cast<double>(cfg.numClasses - 1) : 0.0;

    // Ring lattice: 1 or 2 successor links per node by class.
    const int64_t ring_k =
        1 + (rng.uniform() < cfg.structureSignal * class_frac ? 1 : 0);
    for (int64_t v = 0; v < nodes; ++v) {
        for (int64_t k = 1; k <= ring_k && nodes > 2 * k; ++k)
            g.addUndirectedEdge(v, (v + k) % nodes);
    }

    // Shortcuts with class-dependent rate, jittered per graph so the
    // class signal in the degree distribution is noisy.
    const double shortcut_rate =
        cfg.baseShortcuts * (1.0 + cfg.structureSignal * class_frac) *
        std::exp(rng.normal(0.0, cfg.structureJitter));
    const int64_t shortcuts = rng.poisson(
        shortcut_rate * static_cast<double>(nodes));
    for (int64_t s = 0; s < shortcuts; ++s) {
        const int64_t u = static_cast<int64_t>(
            rng.uniformInt(static_cast<uint64_t>(nodes)));
        const int64_t v = static_cast<int64_t>(
            rng.uniformInt(static_cast<uint64_t>(nodes)));
        if (u != v)
            g.addUndirectedEdge(u, v);
    }

    // Features: class-conditioned Gaussian mixture. Each class has a
    // prototype direction over a subset of the feature dims; nodes get
    // the prototype with role-dependent sign plus heavy noise.
    g.x = Tensor({nodes, cfg.numFeatures}, DeviceKind::Host);
    float *px = g.x.data();
    const int64_t proto_dims = std::max<int64_t>(cfg.numFeatures / 3, 2);
    // Per-graph offset on the prototype dims (shared by all nodes, so
    // mean readout cannot average it away).
    std::vector<double> graph_offset(
        static_cast<std::size_t>(proto_dims));
    for (auto &o : graph_offset)
        o = rng.normal(0.0, cfg.graphNoise);
    for (int64_t v = 0; v < nodes; ++v) {
        const double role = rng.uniform() < 0.5 ? 1.0 : 0.6;
        for (int64_t j = 0; j < cfg.numFeatures; ++j) {
            // Prototype: a class-specific sinusoid over the first
            // proto_dims features (distinct phase per class).
            double mean = 0.0;
            if (j < proto_dims) {
                mean = cfg.protoScale * role *
                           std::sin((class_frac * 2.0 + 1.0) *
                                    static_cast<double>(j + 1) * 0.7) +
                       graph_offset[static_cast<std::size_t>(j)];
            }
            px[v * cfg.numFeatures + j] = static_cast<float>(
                mean + rng.normal(0.0, cfg.featureNoise));
        }
    }
    return g;
}

int64_t
sampleNodeCount(const TuConfig &cfg, Rng &rng)
{
    const double v = std::exp(
        rng.normal(cfg.logMeanNodes, cfg.logStdNodes));
    return std::clamp<int64_t>(static_cast<int64_t>(v + 0.5),
                               cfg.minNodes, cfg.maxNodes);
}

} // namespace

GraphDataset
makeTuDataset(const TuConfig &cfg)
{
    gnnperf_assert(cfg.numGraphs > 0, "tu: numGraphs <= 0");
    Rng rng(cfg.seed);
    GraphDataset ds;
    ds.name = cfg.name;
    ds.numFeatures = cfg.numFeatures;
    ds.numClasses = cfg.numClasses;
    ds.graphs.reserve(static_cast<std::size_t>(cfg.numGraphs));
    for (int64_t i = 0; i < cfg.numGraphs; ++i) {
        const int64_t cls = i % cfg.numClasses;  // balanced classes
        const int64_t nodes = sampleNodeCount(cfg, rng);
        ds.graphs.push_back(makeStructuredGraph(nodes, cls, cfg, rng));
    }
    return ds;
}

GraphDataset
makeEnzymes(uint64_t seed, int64_t num_graphs)
{
    TuConfig cfg;
    cfg.name = "ENZYMES";
    cfg.numGraphs = num_graphs;
    cfg.numFeatures = 18;
    cfg.numClasses = 6;
    cfg.minNodes = 2;
    cfg.maxNodes = 126;
    cfg.logMeanNodes = 3.38;  // exp(3.38 + 0.45^2/2) ≈ 32.5
    cfg.logStdNodes = 0.45;
    cfg.baseShortcuts = 0.42;
    cfg.featureNoise = 1.7;
    cfg.structureSignal = 0.3;
    cfg.graphNoise = 0.62;
    cfg.structureJitter = 0.4;
    cfg.seed = seed;
    return makeTuDataset(cfg);
}

GraphDataset
makeDD(uint64_t seed, int64_t num_graphs, int64_t max_nodes_cap)
{
    TuConfig cfg;
    cfg.name = "DD";
    cfg.numGraphs = num_graphs;
    cfg.numFeatures = 89;
    cfg.numClasses = 2;
    cfg.minNodes = 30;
    cfg.maxNodes = max_nodes_cap > 0 ? max_nodes_cap : 5748;
    cfg.logMeanNodes = 5.42;  // exp(5.42 + 0.55^2/2) ≈ 263, tail ↑ mean
    cfg.logStdNodes = 0.55;
    cfg.baseShortcuts = 0.28;
    cfg.featureNoise = 1.6;
    cfg.structureSignal = 0.35;
    cfg.graphNoise = 0.85;  // two classes: strong per-graph confusion
    cfg.structureJitter = 0.5;
    cfg.protoScale = 0.45;  // big graphs average away node noise, so
                            // the margin itself must be small
    cfg.seed = seed ^ 0xdd;
    return makeTuDataset(cfg);
}

} // namespace gnnperf
