/**
 * @file
 * Dataset splitting (paper §IV-B.1): stratified 10-fold
 * cross-validation producing train/validation/test indices in the
 * ratio 8:1:1, with the class distribution preserved across folds.
 */

#ifndef GNNPERF_DATA_SPLITS_HH
#define GNNPERF_DATA_SPLITS_HH

#include <cstdint>
#include <vector>

namespace gnnperf {

/** One fold's index sets. */
struct FoldSplit
{
    std::vector<int64_t> train;
    std::vector<int64_t> val;
    std::vector<int64_t> test;
};

/**
 * Stratified k-fold splits: fold i uses bucket i as test, bucket
 * (i+1) mod k as validation, and the rest as train.
 *
 * @param labels per-sample class labels
 * @param k number of folds (paper: 10)
 * @param seed shuffle seed (the paper fixes the split across all
 *        experiments for fair comparison; so do we)
 */
std::vector<FoldSplit> stratifiedKFold(const std::vector<int64_t> &labels,
                                       int k, uint64_t seed);

/**
 * Single stratified train/val/test split with the given fractions
 * (used by the MNIST multi-GPU experiment).
 */
FoldSplit stratifiedSplit(const std::vector<int64_t> &labels,
                          double train_frac, double val_frac,
                          uint64_t seed);

} // namespace gnnperf

#endif // GNNPERF_DATA_SPLITS_HH
