/**
 * @file
 * DGL message-passing primitives.
 *
 * Forward passes use the fused GSpMM/GSDDMM kernels from graph/spmm.hh
 * (one kernel per aggregation instead of PyG's gather+scatter chain);
 * backward passes run the transposed GSpMM over the eagerly built
 * out-index. Every graph-level op pays heterograph dispatch on the
 * host and zero-initialises a message frame on the device — the DGL
 * runtime behaviours behind the paper's timing and memory gaps.
 *
 * Under --ir=graph (ir/ir.hh) the GSpMM/GSDDMM ops read operand
 * .value()s directly and so act as graph breaks: DGL's fusion already
 * happened inside the kernel, leaving the recorder's fusion pass only
 * the surrounding elementwise chains and the gather-based apply_edges
 * path (gatherSrc/gatherDst route through recordable fn:: ops).
 */

#include "backends/dgl/dgl_backend.hh"

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "device/profiler.hh"
#include "graph/edge_softmax.hh"
#include "graph/segment.hh"
#include "graph/spmm.hh"
#include "obs/stats.hh"
#include "tensor/ops.hh"

namespace gnnperf {

using autograd::Node;

/** Host-side heterograph op dispatch (format pick, type resolution). */
void
DglBackend::dispatchOp(const char *op) const
{
    if (!emitHeteroDispatch_)
        return;
    static stats::Counter &dispatches =
        stats::counter("backend.dgl.dispatch_ops");
    dispatches.inc();
    recordHost(op, HostOpKind::Dispatch, 0.0, kHeteroDispatchItems);
}

/**
 * DGL's frame storage: graph ops stage per-edge messages in a frame
 * buffer (forward message staging plus backward gradient staging, so
 * two edge-payload buffers) that lives until backward completes. We
 * allocate and zero-initialise the buffer and keep it alive by
 * capturing it in the returned Var's closure, so peak-memory
 * accounting sees what nvidia-smi saw for DGL.
 */
Tensor
DglBackend::frame(int64_t edges, int64_t width) const
{
    if (!allocFrames_)
        return Tensor();
    Tensor buffer = Tensor::zeros({edges, 2 * width}, DeviceKind::Cuda);
    static stats::Counter &frame_bytes =
        stats::counter("backend.dgl.frame_bytes");
    frame_bytes.inc(static_cast<uint64_t>(buffer.bytes()));
    recordKernel("dgl_frame_init", 0.0,
                 static_cast<double>(buffer.bytes()));
    return buffer;
}

Var
DglBackend::aggregate(BatchedGraph &g, const Var &x, Reduce reduce) const
{
    dispatchOp("dgl.update_all");
    statEdgesTouched(FrameworkKind::DGL, g.numEdges());
    g.ensureInIndex();
    g.ensureOutIndex();
    const CsrIndex &in = *g.inIndex;
    const CsrIndex *out = &*g.outIndex;
    Tensor frame = this->frame(g.numEdges(), x.dim(1));

    switch (reduce) {
      case Reduce::Sum: {
        Tensor result = graphops::spmmCopyUSum(in, x.value());
        return Var::makeOp("gspmm_copy_u_sum", std::move(result), {x},
            [out, frame](Node &n) {
                if (!n.inputs[0]->requiresGrad)
                    return;
                n.inputs[0]->accumulateGrad(
                    graphops::spmmCopyUSum(*out, n.grad));
            });
      }
      case Reduce::Mean: {
        Tensor result = graphops::spmmCopyUMean(in, x.value());
        Tensor deg = g.inDegrees;
        return Var::makeOp("gspmm_copy_u_mean", std::move(result), {x},
            [out, deg, frame](Node &n) {
                if (!n.inputs[0]->requiresGrad)
                    return;
                // Scale each destination's grad by 1/deg, then push
                // back along out-edges.
                Tensor safe = deg.clone();
                float *p = safe.data();
                for (int64_t i = 0; i < safe.numel(); ++i)
                    if (p[i] == 0.0f)
                        p[i] = 1.0f;
                Tensor scaled = ops::divCols(n.grad, safe);
                n.inputs[0]->accumulateGrad(
                    graphops::spmmCopyUSum(*out, scaled));
            });
      }
      case Reduce::Max: {
        auto arg = std::make_shared<std::vector<int64_t>>();
        Tensor result = graphops::spmmCopyUMax(in, x.value(), *arg);
        const int64_t n_src = x.dim(0);
        return Var::makeOp("gspmm_copy_u_max", std::move(result), {x},
            [arg, n_src, frame](Node &n) {
                if (!n.inputs[0]->requiresGrad)
                    return;
                n.inputs[0]->accumulateGrad(
                    graphops::spmmCopyUMaxBackward(n.grad, *arg,
                                                   n_src));
            });
      }
    }
    gnnperf_panic("unknown reduce");
}

Var
DglBackend::aggregateWeighted(BatchedGraph &g, const Var &x,
                              const Var &w, int64_t heads) const
{
    dispatchOp("dgl.update_all.u_mul_e");
    statEdgesTouched(FrameworkKind::DGL, g.numEdges());
    g.ensureInIndex();
    g.ensureOutIndex();
    const CsrIndex &in = *g.inIndex;
    const CsrIndex *out = &*g.outIndex;
    Tensor frame = this->frame(g.numEdges(), x.dim(1));

    Tensor result =
        graphops::spmmUMulESum(in, x.value(), w.value(), heads);
    Tensor xc = x.value(), wc = w.value();
    const std::vector<int64_t> *src = &g.edgeSrc;
    const std::vector<int64_t> *dst = &g.edgeDst;
    return Var::makeOp("gspmm_u_mul_e_sum", std::move(result), {x, w},
        [out, xc, wc, heads, src, dst, frame](Node &n) {
            if (n.inputs[0]->requiresGrad) {
                // dX over the reversed graph with the same weights.
                n.inputs[0]->accumulateGrad(
                    graphops::spmmUMulESum(*out, n.grad, wc, heads));
            }
            if (n.inputs[1]->requiresGrad) {
                // dW[e,h] = <x[src_e], dY[dst_e]> per head (GSDDMM).
                n.inputs[1]->accumulateGrad(
                    graphops::sddmmDotUV(*src, *dst, xc, n.grad,
                                         heads));
            }
        });
}

Var
DglBackend::aggregateEdges(BatchedGraph &g, const Var &e_attr) const
{
    dispatchOp("dgl.update_all.copy_e");
    statEdgesTouched(FrameworkKind::DGL, g.numEdges());
    g.ensureInIndex();
    const CsrIndex &in = *g.inIndex;
    const int64_t f = e_attr.dim(1);
    const int64_t n_nodes = g.numNodes;

    // copy_e + sum fused: out[v] = Σ_{e into v} e_attr[e].
    Tensor result = Tensor::zeros({n_nodes, f}, DeviceKind::Cuda);
    {
        const float *pe = e_attr.value().data();
        float *po = result.data();
        for (int64_t v = 0; v < n_nodes; ++v) {
            float *dstp = po + v * f;
            for (int64_t k = in.ptr[v]; k < in.ptr[v + 1]; ++k) {
                const int64_t e =
                    in.edgeId[static_cast<std::size_t>(k)];
                const float *row = pe + e * f;
                for (int64_t j = 0; j < f; ++j)
                    dstp[j] += row[j];
            }
        }
        recordKernel("gspmm_copy_e_sum",
                     static_cast<double>(in.numEdges()) * f,
                     static_cast<double>((in.numEdges() + n_nodes) * f) *
                         sizeof(float));
    }

    const std::vector<int64_t> *dst = &g.edgeDst;
    return Var::makeOp("gspmm_copy_e_sum", std::move(result), {e_attr},
        [dst](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            // dE[e] = dY[dst_e] — a gather along destinations.
            n.inputs[0]->accumulateGrad(
                ops::gatherRows(n.grad, *dst));
        });
}

Var
DglBackend::edgeSoftmax(BatchedGraph &g, const Var &logits) const
{
    dispatchOp("dgl.edge_softmax");
    statEdgesTouched(FrameworkKind::DGL, g.numEdges());
    g.ensureInIndex();
    const CsrIndex *in = &*g.inIndex;
    Tensor alpha = graphops::edgeSoftmaxFused(*in, logits.value());
    Tensor ac = alpha;
    return Var::makeOp("edge_softmax", std::move(alpha), {logits},
        [in, ac](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            n.inputs[0]->accumulateGrad(
                graphops::edgeSoftmaxBackwardFused(*in, ac, n.grad));
        });
}

Var
DglBackend::gatherSrc(BatchedGraph &g, const Var &x) const
{
    dispatchOp("dgl.apply_edges.u");
    return Backend::gatherSrc(g, x);
}

Var
DglBackend::gatherDst(BatchedGraph &g, const Var &x) const
{
    dispatchOp("dgl.apply_edges.v");
    return Backend::gatherDst(g, x);
}

Var
DglBackend::readoutMean(BatchedGraph &g, const Var &x) const
{
    // DGL 0.5's mean_nodes readout is composed: a segment-sum over the
    // batch, a batch_num_nodes query, and a division — each with its
    // own heterograph dispatch. This is why the paper finds DGL's
    // pooling more expensive than PyG's scatter pooling despite the
    // fused segment kernel (§IV-C last paragraph).
    dispatchOp("dgl.readout.sum_nodes");
    const std::vector<int64_t> *ptr = &g.graphPtr;
    Tensor sums = graphops::segmentSum(x.value(), *ptr);

    dispatchOp("dgl.readout.batch_num_nodes");
    Tensor counts({g.numGraphs}, DeviceKind::Cuda);
    for (int64_t i = 0; i < g.numGraphs; ++i) {
        const int64_t n = (*ptr)[static_cast<std::size_t>(i) + 1] -
                          (*ptr)[static_cast<std::size_t>(i)];
        counts.set(i, n > 0 ? static_cast<float>(n) : 1.0f);
    }
    recordKernel("batch_num_nodes", static_cast<double>(g.numGraphs),
                 static_cast<double>(counts.bytes()));

    dispatchOp("dgl.readout.div");
    Tensor result = ops::divCols(sums, counts);
    return Var::makeOp("segment_mean", std::move(result), {x},
        [ptr](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            n.inputs[0]->accumulateGrad(
                graphops::segmentMeanBackward(n.grad, *ptr));
        });
}

} // namespace gnnperf
