/**
 * @file
 * DGL batch collation (dgl.batch).
 *
 * The slow path the paper dissects (§IV-C): every input graph gets
 * heterograph treatment (type metadata + endpoint validation), node
 * features are merged through DGL's own per-element frame path rather
 * than a contiguous torch.cat, and the batched graph eagerly
 * materialises COO, CSR and CSC so kernels can pick any format. The
 * extra host time and the extra device-resident format storage are
 * exactly the mechanisms behind the paper's Figs. 1/2/4 gaps.
 */

#include "backends/dgl/dgl_backend.hh"

#include "backends/dgl/hetero_graph.hh"
#include "common/logging.hh"
#include "device/profiler.hh"
#include "obs/spans.hh"
#include "obs/stats.hh"

namespace gnnperf {

BatchedGraph
DglBackend::collate(const std::vector<const Graph *> &graphs) const
{
    gnnperf_assert(!graphs.empty(), "collate: empty batch");
    HostSpan span("dgl.collate");

    BatchedGraph batch;
    batch.numGraphs = static_cast<int64_t>(graphs.size());
    batch.heteroProcessed = true;

    int64_t total_nodes = 0, total_edges = 0;
    const int64_t f = graphs[0]->x.dim(1);
    for (const Graph *g : graphs) {
        gnnperf_assert(g->x.defined() && g->x.dim(1) == f,
                       "collate: inconsistent feature width");
        total_nodes += g->numNodes;
        total_edges += g->numEdges();
    }
    batch.numNodes = total_nodes;
    batch.graphPtr.reserve(graphs.size() + 1);
    batch.graphPtr.push_back(0);

    // Per-graph heterograph handling: metadata + validation for every
    // member of the batch, plus dgl.batch's own per-graph work.
    for (const Graph *g : graphs) {
        HeteroGraphMeta meta =
            buildHeteroMeta(g->numNodes, g->edgeSrc, g->edgeDst);
        validateHeteroEdges(meta, g->numNodes, g->edgeSrc, g->edgeDst);
    }
    recordHost("dgl.batch", HostOpKind::MetaBuild, 0.0,
               kCollateOpsPerGraph * static_cast<double>(graphs.size()));

    // Feature merge through DGL's frame scheme: per-graph indexed
    // copies (not a single contiguous torch.cat — DGL's data
    // processing "can not use the highly efficient data operations
    // provided by PyTorch", §IV-C).
    Tensor x_host({total_nodes, f}, DeviceKind::Host);
    {
        float *dst = x_host.data();
        for (const Graph *g : graphs) {
            const float *src_p = g->x.data();
            const int64_t count = g->x.numel();
            for (int64_t i = 0; i < count; ++i)
                dst[i] = src_p[i];
            dst += count;
            recordHost("dgl.frame_merge", HostOpKind::IndexedGather,
                       static_cast<double>(g->x.bytes()), 1.0);
        }
    }

    // Edge relabelling + batch bookkeeping.
    batch.edgeSrc.reserve(static_cast<std::size_t>(total_edges));
    batch.edgeDst.reserve(static_cast<std::size_t>(total_edges));
    batch.nodeGraph.reserve(static_cast<std::size_t>(total_nodes));
    int64_t node_offset = 0;
    int64_t gid = 0;
    for (const Graph *g : graphs) {
        for (std::size_t e = 0; e < g->edgeSrc.size(); ++e) {
            batch.edgeSrc.push_back(g->edgeSrc[e] + node_offset);
            batch.edgeDst.push_back(g->edgeDst[e] + node_offset);
        }
        for (int64_t i = 0; i < g->numNodes; ++i)
            batch.nodeGraph.push_back(gid);
        if (g->graphLabel >= 0)
            batch.graphLabels.push_back(g->graphLabel);
        for (int64_t label : g->nodeLabels)
            batch.nodeLabels.push_back(label);
        node_offset += g->numNodes;
        batch.graphPtr.push_back(node_offset);
        ++gid;
    }
    recordHost("dgl.relabel_edges", HostOpKind::IndexedGather,
               static_cast<double>(total_edges) * 2.0 * sizeof(int64_t),
               1.0);
    // Heterograph endpoint validation + relabelling, the eager CSR and
    // CSC builds below, and the degree pass: five full edge walks per
    // batch against PyG's two — the collation half of the paper's
    // all-edges pathology.
    Backend::statEdgesTouched(FrameworkKind::DGL, 5 * total_edges);

    // Node-task split indices (single-graph batches).
    if (graphs.size() == 1) {
        const Graph *g = graphs[0];
        batch.trainIdx = Graph::maskIndices(g->trainMask);
        batch.valIdx = Graph::maskIndices(g->valMask);
        batch.testIdx = Graph::maskIndices(g->testMask);
    }

    // Eager format materialisation: COO is given; build CSR and CSC
    // now (real index construction work, priced by its byte traffic).
    batch.ensureInIndex();
    batch.ensureOutIndex();
    recordHost("dgl.build_formats", HostOpKind::IndexedGather,
               2.0 * (static_cast<double>(total_edges) * 2.0 +
                      static_cast<double>(total_nodes)) *
                   sizeof(int64_t),
               2.0);

    // Device transfer: features, plus COO+CSR+CSC structure storage
    // (≈ (2E) + (E+N) + (E+N) int64 values).
    batch.x = x_host.to(DeviceKind::Cuda);
    const double structure_bytes =
        (4.0 * static_cast<double>(total_edges) +
         2.0 * static_cast<double>(total_nodes)) * sizeof(int64_t);
    recordHost("dgl.formats_h2d", HostOpKind::H2DTransfer,
               structure_bytes, 3.0);
    batch.deviceStructures.push_back(Tensor(
        {total_edges * 8 + total_nodes * 4}, DeviceKind::Cuda));

    // In-degrees on device.
    batch.inDegrees = Tensor::zeros({total_nodes}, DeviceKind::Cuda);
    {
        float *p = batch.inDegrees.data();
        for (int64_t v : batch.edgeDst)
            p[v] += 1.0f;
        recordKernel("degree", static_cast<double>(total_edges),
                     static_cast<double>(total_edges) * sizeof(int64_t) +
                         static_cast<double>(batch.inDegrees.bytes()));
    }

    static stats::Counter &collates =
        stats::counter("backend.dgl.collate_batches");
    static stats::Counter &bytes =
        stats::counter("backend.dgl.collate_bytes");
    collates.inc();
    // Frame merge + relabelled COO + eagerly built CSR/CSC + the
    // device-resident structure storage.
    bytes.inc(static_cast<uint64_t>(x_host.bytes()) +
              static_cast<uint64_t>(total_edges) * 2 * sizeof(int64_t) +
              static_cast<uint64_t>(2 * (2 * total_edges + total_nodes)) *
                  sizeof(int64_t) +
              static_cast<uint64_t>(structure_bytes));

    return batch;
}

} // namespace gnnperf
