#include "backends/dgl/hetero_graph.hh"

#include "common/logging.hh"
#include "device/profiler.hh"

namespace gnnperf {

double
HeteroGraphMeta::metadataBytes() const
{
    return static_cast<double>(nodeTypeIds.size()) * sizeof(int32_t) +
           static_cast<double>(edgeTypeIds.size()) * sizeof(int32_t) +
           static_cast<double>(nodesPerType.size() +
                               edgesPerType.size()) * sizeof(int64_t) +
           static_cast<double>(relations.size()) * sizeof(RelationMeta);
}

HeteroGraphMeta
buildHeteroMeta(int64_t num_nodes, const std::vector<int64_t> &src,
                const std::vector<int64_t> &dst)
{
    gnnperf_assert(src.size() == dst.size(),
                   "buildHeteroMeta: COO mismatch");
    HeteroGraphMeta meta;
    meta.relations.push_back(RelationMeta{
        "_N", "_E", "_N", num_nodes, num_nodes,
        static_cast<int64_t>(src.size())});

    // Type id assignment: trivially all-zero for homogeneous input,
    // but DGL still allocates and fills the arrays.
    meta.nodeTypeIds.assign(static_cast<std::size_t>(num_nodes), 0);
    meta.edgeTypeIds.assign(src.size(), 0);
    meta.nodesPerType.assign(1, 0);
    meta.edgesPerType.assign(1, 0);
    for (int32_t t : meta.nodeTypeIds)
        meta.nodesPerType[static_cast<std::size_t>(t)] += 1;
    for (int32_t t : meta.edgeTypeIds)
        meta.edgesPerType[static_cast<std::size_t>(t)] += 1;

    recordHost("dgl.build_hetero_meta", HostOpKind::MetaBuild,
               meta.metadataBytes(), 2.0);
    return meta;
}

void
validateHeteroEdges(const HeteroGraphMeta &meta, int64_t num_nodes,
                    const std::vector<int64_t> &src,
                    const std::vector<int64_t> &dst)
{
    for (std::size_t e = 0; e < src.size(); ++e) {
        gnnperf_assert(src[e] >= 0 && src[e] < num_nodes &&
                       dst[e] >= 0 && dst[e] < num_nodes,
                       "heterograph edge ", e, " out of range");
        gnnperf_assert(meta.edgeTypeIds[e] == 0,
                       "unexpected edge type in homogeneous graph");
    }
    recordHost("dgl.validate_edges", HostOpKind::IndexedGather,
               static_cast<double>(src.size()) * 2.0 * sizeof(int64_t),
               1.0);
}

} // namespace gnnperf
