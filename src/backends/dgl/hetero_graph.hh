/**
 * @file
 * Heterograph metadata — the per-graph bookkeeping DGL performs even
 * for homogeneous graphs.
 *
 * DGL 0.5 represents every graph as a heterograph: a canonical edge
 * type triple (src type, relation, dst type), per-type node counts,
 * per-type edge id spaces, and a unit-graph per relation that can
 * materialise COO/CSR/CSC formats. For the homogeneous graphs of the
 * paper's datasets all of this collapses to a single type, but the
 * construction work is still performed — that is the "extra-time loss"
 * of §IV-C. We build the metadata for real (type arrays, per-type
 * counters, format conversion) so its cost scales with graph size
 * exactly as DGL's does.
 */

#ifndef GNNPERF_BACKENDS_DGL_HETERO_GRAPH_HH
#define GNNPERF_BACKENDS_DGL_HETERO_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace gnnperf {

/**
 * Metadata of one relation (canonical edge type) in a heterograph.
 */
struct RelationMeta
{
    std::string srcType = "_N";
    std::string relation = "_E";
    std::string dstType = "_N";
    int64_t numSrcNodes = 0;
    int64_t numDstNodes = 0;
    int64_t numEdges = 0;
};

/**
 * Heterograph wrapper over a homogeneous edge list.
 */
struct HeteroGraphMeta
{
    std::vector<RelationMeta> relations;

    /** Per-node type id (all zero for homogeneous graphs). */
    std::vector<int32_t> nodeTypeIds;

    /** Per-edge type id (all zero for homogeneous graphs). */
    std::vector<int32_t> edgeTypeIds;

    /** Per-type node counts. */
    std::vector<int64_t> nodesPerType;

    /** Per-type edge counts. */
    std::vector<int64_t> edgesPerType;

    /** Bytes of metadata constructed (for cost accounting). */
    double metadataBytes() const;
};

/**
 * Build heterograph metadata for one homogeneous graph. Emits a
 * MetaBuild host record sized by the real work done.
 */
HeteroGraphMeta buildHeteroMeta(int64_t num_nodes,
                                const std::vector<int64_t> &src,
                                const std::vector<int64_t> &dst);

/**
 * Validate edge endpoints against the metadata (DGL checks these at
 * graph construction). Emits a host record; panics on violation.
 */
void validateHeteroEdges(const HeteroGraphMeta &meta,
                         int64_t num_nodes,
                         const std::vector<int64_t> &src,
                         const std::vector<int64_t> &dst);

} // namespace gnnperf

#endif // GNNPERF_BACKENDS_DGL_HETERO_GRAPH_HH
