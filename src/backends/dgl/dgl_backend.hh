/**
 * @file
 * Deep Graph Library backend.
 *
 * Mechanisms reproduced from DGL 0.5 (the version the paper studies):
 *  - every graph is wrapped in a heterograph even when homogeneous
 *    (§IV-C: "all graphs are treated as heterogeneous graphs during
 *    data processing, which brings extra-time loss");
 *  - batch collation builds node/edge-type metadata and eagerly
 *    materialises COO, CSR and CSC formats, using DGL's own (non
 *    PyTorch) data-processing routines that run on the slow
 *    per-element path;
 *  - message passing is fused GSpMM (copy_u / u_mul_e × reduce): one
 *    kernel instead of PyG's gather+scatter pair, but every graph op
 *    pays heterograph dispatch on the host and zero-initialises a
 *    message frame;
 *  - readout uses the segment_reduce operator;
 *  - edge softmax is a fused kernel;
 *  - GatedGCN maintains an explicit edge-feature stream updated through
 *    a fully connected layer on ALL edges (paper observation on DGL's
 *    GatedGCN cost/memory).
 */

#ifndef GNNPERF_BACKENDS_DGL_DGL_BACKEND_HH
#define GNNPERF_BACKENDS_DGL_DGL_BACKEND_HH

#include "backends/backend.hh"

namespace gnnperf {

/**
 * DGL implementation of the Backend seam.
 */
class DglBackend : public Backend
{
  public:
    /**
     * Calibrated host dispatch cost per kernel launch. DGL inserts its
     * own operator layer above the DNN backend's dispatcher.
     */
    static constexpr double kDispatchOverhead = 36e-6;

    /**
     * Python/metadata work per graph during collation (heterograph
     * construction, type handling, frame setup), in MetaBuild items.
     */
    static constexpr double kCollateOpsPerGraph = 102.0;

    /**
     * Extra host items per graph-level op: DGL 0.5's update_all /
     * apply_edges route through the Python message-passing layer
     * (type resolution, format pick, frame plumbing) — worth several
     * plain op dispatches each (§IV-C: "the conv layers of all models
     * provided by DGL are more time-consuming").
     */
    static constexpr double kHeteroDispatchItems = 3.0;

    FrameworkKind kind() const override { return FrameworkKind::DGL; }
    double dispatchOverhead() const override { return kDispatchOverhead; }

    BatchedGraph
    collate(const std::vector<const Graph *> &graphs) const override;

    Var aggregate(BatchedGraph &g, const Var &x,
                  Reduce reduce) const override;
    Var aggregateWeighted(BatchedGraph &g, const Var &x, const Var &w,
                          int64_t heads) const override;
    Var aggregateEdges(BatchedGraph &g, const Var &e_attr) const override;
    Var edgeSoftmax(BatchedGraph &g, const Var &logits) const override;
    Var gatherSrc(BatchedGraph &g, const Var &x) const override;
    Var gatherDst(BatchedGraph &g, const Var &x) const override;
    Var readoutMean(BatchedGraph &g, const Var &x) const override;

    bool requiresEdgeFeatures() const override { return true; }

  protected:
    /**
     * Ablation hooks (backends/ablation/): variants can drop the
     * per-op heterograph dispatch and/or the frame staging buffers to
     * isolate what each runtime behaviour costs.
     */
    DglBackend(bool emit_hetero_dispatch, bool alloc_frames)
        : emitHeteroDispatch_(emit_hetero_dispatch),
          allocFrames_(alloc_frames)
    {
    }

    /** Emit a hetero-dispatch host record if enabled. */
    void dispatchOp(const char *op) const;

    /** Allocate a message frame if enabled (undefined Tensor if not). */
    Tensor frame(int64_t edges, int64_t width) const;

  public:
    DglBackend() : DglBackend(true, true) {}

  private:
    bool emitHeteroDispatch_;
    bool allocFrames_;
};

} // namespace gnnperf

#endif // GNNPERF_BACKENDS_DGL_DGL_BACKEND_HH
