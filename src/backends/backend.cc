#include "backends/backend.hh"

#include "autograd/functions.hh"
#include "backends/dgl/dgl_backend.hh"
#include "backends/pyg/pyg_backend.hh"
#include "common/logging.hh"

namespace gnnperf {

const char *
frameworkName(FrameworkKind kind)
{
    return kind == FrameworkKind::PyG ? "PyG" : "DGL";
}

Var
Backend::gatherSrc(BatchedGraph &g, const Var &x) const
{
    return fn::gatherRows(x, g.edgeSrc);
}

Var
Backend::gatherDst(BatchedGraph &g, const Var &x) const
{
    return fn::gatherRows(x, g.edgeDst);
}

Backend &
getBackend(FrameworkKind kind)
{
    static PygBackend pyg;
    static DglBackend dgl;
    if (kind == FrameworkKind::PyG)
        return pyg;
    return dgl;
}

std::vector<FrameworkKind>
allFrameworks()
{
    return {FrameworkKind::PyG, FrameworkKind::DGL};
}

} // namespace gnnperf
