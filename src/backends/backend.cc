#include "backends/backend.hh"

#include "autograd/functions.hh"
#include "backends/dgl/dgl_backend.hh"
#include "backends/pyg/pyg_backend.hh"
#include "common/logging.hh"
#include "obs/stats.hh"

namespace gnnperf {

void
Backend::statEdgesTouched(FrameworkKind kind, int64_t edges)
{
    static stats::Counter &pyg =
        stats::counter("backend.pyg.edges_touched");
    static stats::Counter &dgl =
        stats::counter("backend.dgl.edges_touched");
    (kind == FrameworkKind::PyG ? pyg : dgl)
        .inc(static_cast<uint64_t>(edges));
}

const char *
frameworkName(FrameworkKind kind)
{
    return kind == FrameworkKind::PyG ? "PyG" : "DGL";
}

Var
Backend::gatherSrc(BatchedGraph &g, const Var &x) const
{
    return fn::gatherRows(x, g.edgeSrc);
}

Var
Backend::gatherDst(BatchedGraph &g, const Var &x) const
{
    return fn::gatherRows(x, g.edgeDst);
}

Backend &
getBackend(FrameworkKind kind)
{
    static PygBackend pyg;
    static DglBackend dgl;
    if (kind == FrameworkKind::PyG)
        return pyg;
    return dgl;
}

std::vector<FrameworkKind>
allFrameworks()
{
    return {FrameworkKind::PyG, FrameworkKind::DGL};
}

} // namespace gnnperf
