/**
 * @file
 * Ablation backends — hypothetical framework variants testing the
 * optimisation opportunities the paper identifies (§V):
 *
 *  - FastCollateDglBackend: DGL's kernels and runtime, but with a
 *    homogeneous-graph fast path for batch collation ("more efficient
 *    graph batching strategies will greatly speed up GNN training").
 *  - FusedPygBackend: PyG's collation and dispatch cost, but with
 *    DGL-style fused GSpMM kernels instead of gather+scatter chains —
 *    isolating the value of kernel fusion from the rest of DGL's
 *    runtime.
 *
 * These never appear in the paper-reproduction tables; they exist for
 * bench_ablation_backends and the ablation tests.
 */

#ifndef GNNPERF_BACKENDS_ABLATION_ABLATION_BACKENDS_HH
#define GNNPERF_BACKENDS_ABLATION_ABLATION_BACKENDS_HH

#include "backends/dgl/dgl_backend.hh"
#include "backends/pyg/pyg_backend.hh"

namespace gnnperf {

/**
 * DGL with the paper's suggested collation fix: homogeneous batches
 * skip heterograph metadata and merge features through the contiguous
 * fast path; formats are built lazily on first use.
 */
class FastCollateDglBackend : public DglBackend
{
  public:
    FastCollateDglBackend() : DglBackend(true, true) {}

    const char *name() const override { return "DGL+fastbatch"; }

    BatchedGraph
    collate(const std::vector<const Graph *> &graphs) const override
    {
        // The PyG-style path with DGL's per-graph bookkeeping share.
        BatchedGraph batch =
            collatePygStyle(graphs, PygBackend::kCollateOpsPerGraph);
        batch.heteroProcessed = false;
        return batch;
    }
};

/**
 * PyG with DGL-style fused kernels: inherits the fused op
 * implementations but drops heterograph dispatch and frame staging,
 * and uses PyG's collation and dispatch cost.
 */
class FusedPygBackend : public DglBackend
{
  public:
    FusedPygBackend()
        : DglBackend(/*emit_hetero_dispatch=*/false,
                     /*alloc_frames=*/false)
    {
    }

    FrameworkKind kind() const override { return FrameworkKind::PyG; }
    const char *name() const override { return "PyG+fused"; }

    double
    dispatchOverhead() const override
    {
        return PygBackend::kDispatchOverhead;
    }

    BatchedGraph
    collate(const std::vector<const Graph *> &graphs) const override
    {
        return collatePygStyle(graphs,
                               PygBackend::kCollateOpsPerGraph);
    }

    bool requiresEdgeFeatures() const override { return false; }
};

} // namespace gnnperf

#endif // GNNPERF_BACKENDS_ABLATION_ABLATION_BACKENDS_HH
