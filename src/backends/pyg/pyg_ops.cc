/**
 * @file
 * PyG message-passing primitives.
 *
 * PyG's MessagePassing gathers source features into a per-edge message
 * tensor (x_j = x[edge_index[0]]) and reduces with torch_scatter.
 * Every step is a separate CUDA kernel and the [E,F] message tensor is
 * materialised — more launches and more activation memory than DGL's
 * fused GSpMM, but each kernel is a plain PyTorch op with low dispatch
 * cost, and nothing touches format conversion.
 *
 * Because these primitives compose from recordable fn:: ops, they are
 * the main beneficiary of --ir=graph (ir/ir.hh): the recorder sees the
 * whole gather → elementwise → scatter_add chain and the fusion pass
 * collapses it into one fused launch. Ops that read .value() directly
 * (scatter-max, reciprocal) flush pending work and break the recorded
 * graph at that point.
 */

#include "backends/pyg/pyg_backend.hh"

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "device/profiler.hh"
#include "graph/scatter.hh"
#include "tensor/ops.hh"

namespace gnnperf {

using autograd::Node;

Var
PygBackend::aggregate(BatchedGraph &g, const Var &x, Reduce reduce) const
{
    statEdgesTouched(FrameworkKind::PyG, g.numEdges());
    // x_j = gather(x, src): materialised message tensor.
    Var messages = fn::gatherRows(x, g.edgeSrc);
    switch (reduce) {
      case Reduce::Sum:
        return fn::scatterAddRows(messages, g.edgeDst, g.numNodes);
      case Reduce::Mean: {
        Var sums = fn::scatterAddRows(messages, g.edgeDst, g.numNodes);
        Tensor counts = graphops::indexCounts(g.edgeDst, g.numNodes);
        float *pc = counts.data();
        for (int64_t i = 0; i < counts.numel(); ++i)
            if (pc[i] == 0.0f)
                pc[i] = 1.0f;
        return fn::divCols(sums, Var(counts));
      }
      case Reduce::Max: {
        // Custom op: scatter-max with argmax routing for backward.
        // messages.value() flushes any recorded chain here — max has
        // no Into-kernel replay, so it stays outside the op graph.
        auto argmax = std::make_shared<std::vector<int64_t>>();
        Tensor out = graphops::scatterMaxRows(messages.value(),
                                              g.edgeDst, g.numNodes,
                                              *argmax);
        const int64_t e = messages.dim(0);
        return Var::makeOp("scatter_max", std::move(out), {messages},
            [argmax, e](Node &n) {
                if (!n.inputs[0]->requiresGrad)
                    return;
                n.inputs[0]->accumulateGrad(
                    graphops::scatterMaxBackward(n.grad, *argmax, e));
            });
      }
    }
    gnnperf_panic("unknown reduce");
}

Var
PygBackend::aggregateWeighted(BatchedGraph &g, const Var &x,
                              const Var &w, int64_t heads) const
{
    gnnperf_assert(x.dim(1) % heads == 0,
                   "aggregateWeighted: width not divisible by heads");
    statEdgesTouched(FrameworkKind::PyG, g.numEdges());
    const int64_t d = x.dim(1) / heads;

    // Messages: x_j gathered per edge, then scaled by per-head weight.
    Var messages = fn::gatherRows(x, g.edgeSrc);  // [E, heads*d]
    Var weighted;
    if (d == 1) {
        // Elementwise gating: w is already [E, heads] == [E, F].
        weighted = fn::mul(messages, w);
    } else {
        // Broadcast each head's weight across its feature slice. PyG
        // does this with a view+expand; we materialise the expanded
        // weights (as the contiguous kernel would).
        const Tensor &wv = w.value();
        const int64_t e = wv.dim(0);
        Tensor expanded({e, heads * d}, wv.device());
        const float *pw = wv.data();
        float *po = expanded.data();
        for (int64_t i = 0; i < e; ++i)
            for (int64_t h = 0; h < heads; ++h) {
                const float s = pw[i * heads + h];
                for (int64_t j = 0; j < d; ++j)
                    po[i * heads * d + h * d + j] = s;
            }
        recordKernel("expand_heads", 0.0,
                     static_cast<double>(expanded.bytes()) +
                         static_cast<double>(wv.bytes()));
        Var expanded_w = Var::makeOp("expand_heads", std::move(expanded),
            {w},
            [heads, d](Node &n) {
                if (!n.inputs[0]->requiresGrad)
                    return;
                // Reduce each head's slice back to one column.
                const Tensor &grad = n.grad;
                const int64_t rows = grad.dim(0);
                Tensor out = Tensor::zeros({rows, heads},
                                           grad.device());
                const float *pg = grad.data();
                float *pr = out.data();
                for (int64_t i = 0; i < rows; ++i)
                    for (int64_t h = 0; h < heads; ++h) {
                        float s = 0.0f;
                        for (int64_t j = 0; j < d; ++j)
                            s += pg[i * heads * d + h * d + j];
                        pr[i * heads + h] = s;
                    }
                recordKernel("expand_heads_bwd",
                             static_cast<double>(grad.numel()),
                             static_cast<double>(grad.bytes()));
                n.inputs[0]->accumulateGrad(out);
            });
        weighted = fn::mul(messages, expanded_w);
    }
    return fn::scatterAddRows(weighted, g.edgeDst, g.numNodes);
}

Var
PygBackend::aggregateEdges(BatchedGraph &g, const Var &e_attr) const
{
    statEdgesTouched(FrameworkKind::PyG, g.numEdges());
    return fn::scatterAddRows(e_attr, g.edgeDst, g.numNodes);
}

Var
PygBackend::edgeSoftmax(BatchedGraph &g, const Var &logits) const
{
    // PyG composes edge softmax from scatter primitives
    // (torch_geometric.utils.softmax): scatter-max per destination,
    // subtract, exp, scatter-add, divide. Five kernels and two [E,H]
    // temporaries versus DGL's single fused kernel.
    statEdgesTouched(FrameworkKind::PyG, g.numEdges());
    const int64_t n = g.numNodes;

    // 1. per-destination max (for numerical stability)
    auto argmax = std::make_shared<std::vector<int64_t>>();
    Tensor max_per_dst = graphops::scatterMaxRows(logits.value(),
                                                  g.edgeDst, n, *argmax);
    // The max is treated as a constant (PyTorch detaches it too).
    Var max_edges = fn::gatherRows(Var(max_per_dst), g.edgeDst);

    // 2. shifted = logits - max[dst]; 3. exp
    Var shifted = fn::sub(logits, max_edges);
    Var exps = fn::expV(shifted);

    // 4. denominator per destination; 5. normalise
    Var denom = fn::scatterAddRows(exps, g.edgeDst, n);
    Var denom_edges = fn::gatherRows(denom, g.edgeDst);
    // Guard: isolated destinations never appear as an edge dst, so
    // denom_edges is strictly positive here.
    return fn::mul(exps, Var::makeOp("reciprocal",
        ops::reciprocal(denom_edges.value(), 1e-16f), {denom_edges},
        [](Node &node) {
            if (!node.inputs[0]->requiresGrad)
                return;
            // d(1/x) = -1/x^2 dx
            Tensor inv = ops::reciprocal(node.inputs[0]->value, 1e-16f);
            Tensor g2 = ops::mul(inv, inv);
            node.inputs[0]->accumulateGrad(
                ops::scale(ops::mul(node.grad, g2), -1.0f));
        }));
}

Var
PygBackend::readoutMean(BatchedGraph &g, const Var &x) const
{
    // global_mean_pool: scatter-add by the batch vector + divide.
    Var sums = fn::scatterAddRows(x, g.nodeGraph, g.numGraphs);
    Tensor counts = graphops::indexCounts(g.nodeGraph, g.numGraphs);
    float *pc = counts.data();
    for (int64_t i = 0; i < counts.numel(); ++i)
        if (pc[i] == 0.0f)
            pc[i] = 1.0f;
    return fn::divCols(sums, Var(counts));
}

} // namespace gnnperf
