/**
 * @file
 * PyG batch collation (Batch.from_data_list).
 *
 * The fast path the paper praises: one pass concatenating node
 * features (a contiguous torch.cat), one pass offsetting edge indices,
 * and per-graph Python bookkeeping for slices/batch vectors. No
 * heterograph metadata, no eager format materialisation.
 */

#include "backends/pyg/pyg_backend.hh"

#include <cstring>

#include "common/logging.hh"
#include "device/profiler.hh"
#include "obs/spans.hh"
#include "obs/stats.hh"

namespace gnnperf {

BatchedGraph
PygBackend::collate(const std::vector<const Graph *> &graphs) const
{
    return collatePygStyle(graphs, kCollateOpsPerGraph);
}

BatchedGraph
collatePygStyle(const std::vector<const Graph *> &graphs,
                double ops_per_graph)
{
    gnnperf_assert(!graphs.empty(), "collate: empty batch");
    HostSpan span("pyg.collate");

    BatchedGraph batch;
    batch.numGraphs = static_cast<int64_t>(graphs.size());

    int64_t total_nodes = 0, total_edges = 0;
    const int64_t f = graphs[0]->x.dim(1);
    for (const Graph *g : graphs) {
        gnnperf_assert(g->x.defined() && g->x.dim(1) == f,
                       "collate: inconsistent feature width");
        total_nodes += g->numNodes;
        total_edges += g->numEdges();
    }
    batch.numNodes = total_nodes;
    batch.graphPtr.reserve(graphs.size() + 1);
    batch.graphPtr.push_back(0);

    // Per-graph Python-level bookkeeping (Data.__inc__, slice
    // dictionaries, batch assignment) — priced per graph.
    recordHost("pyg.from_data_list", HostOpKind::MetaBuild, 0.0,
               ops_per_graph * static_cast<double>(graphs.size()));

    // torch.cat of node features: one contiguous host copy.
    Tensor x_host({total_nodes, f}, DeviceKind::Host);
    {
        float *dst = x_host.data();
        for (const Graph *g : graphs) {
            std::memcpy(dst, g->x.data(), g->x.bytes());
            dst += g->x.numel();
        }
        recordHost("pyg.cat_features", HostOpKind::Memcpy,
                   static_cast<double>(x_host.bytes()), 1.0);
    }

    // Edge index offsetting (edge_index + cum_nodes): tensor add.
    batch.edgeSrc.reserve(static_cast<std::size_t>(total_edges));
    batch.edgeDst.reserve(static_cast<std::size_t>(total_edges));
    batch.nodeGraph.reserve(static_cast<std::size_t>(total_nodes));
    int64_t node_offset = 0;
    int64_t gid = 0;
    for (const Graph *g : graphs) {
        for (std::size_t e = 0; e < g->edgeSrc.size(); ++e) {
            batch.edgeSrc.push_back(g->edgeSrc[e] + node_offset);
            batch.edgeDst.push_back(g->edgeDst[e] + node_offset);
        }
        for (int64_t i = 0; i < g->numNodes; ++i)
            batch.nodeGraph.push_back(gid);
        if (g->graphLabel >= 0)
            batch.graphLabels.push_back(g->graphLabel);
        for (int64_t label : g->nodeLabels)
            batch.nodeLabels.push_back(label);
        node_offset += g->numNodes;
        batch.graphPtr.push_back(node_offset);
        ++gid;
    }
    recordHost("pyg.offset_edges", HostOpKind::Memcpy,
               static_cast<double>(total_edges) * 2.0 * sizeof(int64_t),
               1.0);
    // One edge-index offsetting pass plus the degree pass below.
    Backend::statEdgesTouched(FrameworkKind::PyG, 2 * total_edges);

    // Node-task split indices (single-graph batches).
    if (graphs.size() == 1) {
        const Graph *g = graphs[0];
        batch.trainIdx = Graph::maskIndices(g->trainMask);
        batch.valIdx = Graph::maskIndices(g->valMask);
        batch.testIdx = Graph::maskIndices(g->testMask);
    }

    // Move features + edge index to the device (PCIe traffic). The
    // edge index occupies 2·E int64 on the GPU.
    batch.x = x_host.to(DeviceKind::Cuda);
    recordHost("pyg.edge_index_h2d", HostOpKind::H2DTransfer,
               static_cast<double>(total_edges) * 2.0 * sizeof(int64_t),
               1.0);
    batch.deviceStructures.push_back(
        Tensor({total_edges * 4}, DeviceKind::Cuda));

    // In-degrees (used by GCN's normalisation and MoNet's pseudo
    // coordinates) — computed on device at first use in PyG; we do it
    // here once per batch, as the reference implementations cache it.
    batch.inDegrees = Tensor::zeros({total_nodes}, DeviceKind::Cuda);
    {
        float *p = batch.inDegrees.data();
        for (int64_t v : batch.edgeDst)
            p[v] += 1.0f;
        recordKernel("degree", static_cast<double>(total_edges),
                     static_cast<double>(total_edges) * sizeof(int64_t) +
                         static_cast<double>(batch.inDegrees.bytes()));
    }

    static stats::Counter &collates =
        stats::counter("backend.pyg.collate_batches");
    static stats::Counter &bytes =
        stats::counter("backend.pyg.collate_bytes");
    collates.inc();
    // Feature concat + offset edge index + edge-index H2D traffic.
    bytes.inc(static_cast<uint64_t>(x_host.bytes()) +
              static_cast<uint64_t>(total_edges) * 4 * sizeof(int64_t));

    return batch;
}

} // namespace gnnperf
