/**
 * @file
 * PyTorch Geometric backend.
 *
 * Mechanisms reproduced from PyG 1.6 (the version the paper studies):
 *  - COO edge storage only; message passing gathers per-edge source
 *    features (materialising an [E,F] message tensor) and reduces with
 *    torch_scatter kernels;
 *  - `Batch.from_data_list` collation: feature concatenation + edge
 *    index offsetting — the paper calls this "an advanced
 *    mini-batching strategy in which there is no computational or
 *    memory overhead" (§IV-C);
 *  - pooling/readout built on the scatter API;
 *  - edge softmax composed from scatter primitives (no fused kernel);
 *  - GatedGCN without a persistent edge-feature stream.
 */

#ifndef GNNPERF_BACKENDS_PYG_PYG_BACKEND_HH
#define GNNPERF_BACKENDS_PYG_PYG_BACKEND_HH

#include "backends/backend.hh"

namespace gnnperf {

/**
 * PyG implementation of the Backend seam.
 */
class PygBackend : public Backend
{
  public:
    /**
     * Calibrated host dispatch cost per kernel launch. PyG sits
     * directly on PyTorch's dispatcher.
     */
    static constexpr double kDispatchOverhead = 28e-6;

    /**
     * Python-level work per graph during collation (Data object
     * bookkeeping in Batch.from_data_list), in MetaBuild items.
     */
    static constexpr double kCollateOpsPerGraph = 38.0;

    FrameworkKind kind() const override { return FrameworkKind::PyG; }
    double dispatchOverhead() const override { return kDispatchOverhead; }

    BatchedGraph
    collate(const std::vector<const Graph *> &graphs) const override;

    Var aggregate(BatchedGraph &g, const Var &x,
                  Reduce reduce) const override;
    Var aggregateWeighted(BatchedGraph &g, const Var &x, const Var &w,
                          int64_t heads) const override;
    Var aggregateEdges(BatchedGraph &g, const Var &e_attr) const override;
    Var edgeSoftmax(BatchedGraph &g, const Var &logits) const override;
    Var readoutMean(BatchedGraph &g, const Var &x) const override;

    bool requiresEdgeFeatures() const override { return false; }
};

/**
 * The PyG-style fast collation as a free function, shared with the
 * ablation backends (backends/ablation/) that test the paper's
 * "more efficient graph batching strategies" suggestion.
 */
BatchedGraph collatePygStyle(const std::vector<const Graph *> &graphs,
                             double ops_per_graph);

} // namespace gnnperf

#endif // GNNPERF_BACKENDS_PYG_PYG_BACKEND_HH
