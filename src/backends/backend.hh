/**
 * @file
 * The GNN-framework abstraction under study.
 *
 * The paper compares PyTorch Geometric and Deep Graph Library. Both
 * expose the same logical operations to model code — batch collation,
 * neighborhood aggregation, edge softmax, readout — but implement them
 * with different mechanisms, and those mechanisms are exactly what the
 * paper measures. Backend is the seam: the six models are written once
 * against this interface, and the two implementations reproduce each
 * framework's engineering choices (see pyg/ and dgl/).
 *
 * All Var-returning operations are differentiable.
 */

#ifndef GNNPERF_BACKENDS_BACKEND_HH
#define GNNPERF_BACKENDS_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.hh"
#include "graph/batched_graph.hh"

namespace gnnperf {

/** Which framework implementation. */
enum class FrameworkKind { PyG, DGL };

/** "PyG" / "DGL". */
const char *frameworkName(FrameworkKind kind);

/** Reduction mode for neighborhood aggregation. */
enum class Reduce { Sum, Mean, Max };

/**
 * Framework backend interface.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    virtual FrameworkKind kind() const = 0;

    /** Display name; ablation variants override it. */
    virtual const char *name() const { return frameworkName(kind()); }

    /**
     * Host-side per-op dispatch overhead in seconds. Stamped into the
     * Timeline replay: every kernel launch costs this much host time
     * (the Python/framework layers between user code and CUDA).
     */
    virtual double dispatchOverhead() const = 0;

    /**
     * Collate a list of graphs into one batched graph and move its
     * features to the device. This is the "data loading" work of the
     * paper's Figs. 1/2 (the caller wraps it in a DataLoading phase
     * scope).
     */
    virtual BatchedGraph
    collate(const std::vector<const Graph *> &graphs) const = 0;

    /** out[v] = reduce over in-neighbors u of x[u]. */
    virtual Var aggregate(BatchedGraph &g, const Var &x,
                          Reduce reduce) const = 0;

    /**
     * out[v, h*D+d] = Σ_{(u→v)=e} w[e,h] · x[u, h*D+d].
     * w is [E, heads]; heads == x width gives elementwise gating
     * (GatedGCN), heads == 1 gives scalar edge weights (MoNet).
     */
    virtual Var aggregateWeighted(BatchedGraph &g, const Var &x,
                                  const Var &w,
                                  int64_t heads) const = 0;

    /** out[v] = Σ over incoming edges e of edge features e_attr[e]. */
    virtual Var aggregateEdges(BatchedGraph &g,
                               const Var &e_attr) const = 0;

    /** Per-destination softmax of per-edge logits [E, heads]. */
    virtual Var edgeSoftmax(BatchedGraph &g,
                            const Var &logits) const = 0;

    /** Per-edge gather of endpoint features. */
    virtual Var gatherSrc(BatchedGraph &g, const Var &x) const;
    virtual Var gatherDst(BatchedGraph &g, const Var &x) const;

    /** Graph-level mean readout: [N,F] → [numGraphs,F]. */
    virtual Var readoutMean(BatchedGraph &g, const Var &x) const = 0;

    /**
     * Whether GatedGCN must maintain an explicit edge-feature stream
     * (paper §IV-A observation 3: DGL's implementation updates all
     * edge features through a fully connected layer; PyG's does not).
     */
    virtual bool requiresEdgeFeatures() const = 0;

    /**
     * Bump the per-framework "backend.<fw>.edges_touched" stats
     * counter: every edge-payload pass (collation relabelling, format
     * builds, message-passing ops, edge-feature updates) reports the
     * edges it walked here, so the paper's all-edges pathologies show
     * up as a PyG-vs-DGL counter gap (see obs/stats.hh).
     */
    static void statEdgesTouched(FrameworkKind kind, int64_t edges);
};

/** The process-wide backend instance for a framework. */
Backend &getBackend(FrameworkKind kind);

/** Both frameworks, in presentation order (PyG first, as the tables). */
std::vector<FrameworkKind> allFrameworks();

} // namespace gnnperf

#endif // GNNPERF_BACKENDS_BACKEND_HH
