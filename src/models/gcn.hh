/**
 * @file
 * Graph Convolutional Network (Kipf & Welling, 2017) — paper Eq. 1.
 *
 * Each layer symmetrically normalises node features by degree before
 * and after aggregation (the paper notes this normalisation dominates
 * GCN's layer time, §IV-C), aggregates neighbors plus a self loop,
 * and applies a linear transform.
 */

#ifndef GNNPERF_MODELS_GCN_HH
#define GNNPERF_MODELS_GCN_HH

#include "models/gnn_model.hh"
#include "nn/batch_norm.hh"

namespace gnnperf {

/** One GCN layer. */
class GcnConv : public nn::Module
{
  public:
    GcnConv(const Backend &backend, int64_t in_features,
            int64_t out_features, bool batch_norm, bool residual,
            bool output_layer, float dropout, Rng &rng);

    Var forward(BatchedGraph &batch, const Var &h,
                const Var &deg_inv_sqrt);

  private:
    const Backend &backend_;
    std::unique_ptr<nn::Linear> linear_;
    std::unique_ptr<nn::BatchNorm1d> bn_;
    std::unique_ptr<nn::Dropout> dropout_;
    bool residual_;
    bool outputLayer_;
};

/** The full GCN model. */
class Gcn : public GnnModel
{
  public:
    Gcn(const Backend &backend, const ModelConfig &cfg);

    ModelKind modelKind() const override { return ModelKind::GCN; }

  protected:
    Var forwardConvs(BatchedGraph &batch, Var h) override;

  private:
    std::vector<std::unique_ptr<GcnConv>> convs_;
};

} // namespace gnnperf

#endif // GNNPERF_MODELS_GCN_HH
