/**
 * @file
 * Graph Attention Network (Veličković et al., 2018) — the paper's
 * first anisotropic workload. Multi-head additive attention
 * (Tables II/III: 8 heads): per edge (u→v),
 *   e_uv = LeakyReLU(aₛ·Whᵤ + a_d·Wh_v),
 *   α = edge-softmax over v's incoming edges,
 *   h'_v = ‖_heads Σ_u α_uv Whᵤ, then ELU.
 *
 * The edge-softmax is the operation whose implementation differs most
 * between the frameworks (fused kernel in DGL, scatter composition in
 * PyG — §IV-C).
 */

#ifndef GNNPERF_MODELS_GAT_HH
#define GNNPERF_MODELS_GAT_HH

#include "models/gnn_model.hh"
#include "nn/batch_norm.hh"

namespace gnnperf {

/** One multi-head GAT layer. */
class GatConv : public nn::Module
{
  public:
    /**
     * @param out_features total output width (= heads × per-head dim;
     *        must be divisible by heads)
     */
    GatConv(const Backend &backend, int64_t in_features,
            int64_t out_features, int heads, bool batch_norm,
            bool residual, bool output_layer, float dropout, Rng &rng);

    Var forward(BatchedGraph &batch, const Var &h);

  private:
    /** Per-head dot with an attention vector: [N,H·D]×[H·D] → [N,H]. */
    static Var headDot(const Var &x, const Var &a, int64_t heads);

    const Backend &backend_;
    std::unique_ptr<nn::Linear> proj_;  ///< W, no bias
    Var attnSrc_;                        ///< aₛ, [H·D]
    Var attnDst_;                        ///< a_d, [H·D]
    std::unique_ptr<nn::BatchNorm1d> bn_;
    std::unique_ptr<nn::Dropout> attnDropout_;
    std::unique_ptr<nn::Dropout> dropout_;
    int heads_;
    bool residual_;
    bool outputLayer_;
};

/** The full GAT model. */
class Gat : public GnnModel
{
  public:
    Gat(const Backend &backend, const ModelConfig &cfg);

    ModelKind modelKind() const override { return ModelKind::GAT; }

  protected:
    Var forwardConvs(BatchedGraph &batch, Var h) override;

  private:
    std::vector<std::unique_ptr<GatConv>> convs_;
};

} // namespace gnnperf

#endif // GNNPERF_MODELS_GAT_HH
