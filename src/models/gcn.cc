#include "models/gcn.hh"

#include "autograd/functions.hh"
#include "common/string_utils.hh"
#include "device/profiler.hh"

namespace gnnperf {

GcnConv::GcnConv(const Backend &backend, int64_t in_features,
                 int64_t out_features, bool batch_norm, bool residual,
                 bool output_layer, float dropout, Rng &rng)
    : backend_(backend),
      residual_(residual && in_features == out_features),
      outputLayer_(output_layer)
{
    linear_ = std::make_unique<nn::Linear>(in_features, out_features,
                                           rng);
    registerModule("linear", linear_.get());
    if (batch_norm && !output_layer) {
        bn_ = std::make_unique<nn::BatchNorm1d>(out_features);
        registerModule("bn", bn_.get());
    }
    if (dropout > 0.0f) {
        dropout_ = std::make_unique<nn::Dropout>(dropout, rng);
        registerModule("dropout", dropout_.get());
    }
}

Var
GcnConv::forward(BatchedGraph &batch, const Var &h,
                 const Var &deg_inv_sqrt)
{
    // Normalise, aggregate (with self loop), normalise again — the
    // before/after feature normalisation the paper highlights.
    Var scaled = fn::mulCols(h, deg_inv_sqrt);
    Var agg = backend_.aggregate(batch, scaled, Reduce::Sum);
    agg = fn::add(agg, scaled);
    agg = fn::mulCols(agg, deg_inv_sqrt);

    Var out = linear_->forward(agg);
    if (bn_)
        out = bn_->forward(out);
    if (!outputLayer_)
        out = fn::relu(out);
    if (residual_)
        out = fn::add(out, h);
    if (dropout_ && !outputLayer_)
        out = dropout_->forward(out);
    return out;
}

Gcn::Gcn(const Backend &backend, const ModelConfig &cfg)
    : GnnModel(backend, cfg)
{
    for (int layer = 0; layer < cfg_.numLayers; ++layer) {
        convs_.push_back(std::make_unique<GcnConv>(
            backend_, layerInWidth(layer), layerOutWidth(layer),
            cfg_.batchNorm, cfg_.residual, isOutputLayer(layer),
            cfg_.dropout, rng_));
        registerModule(strprintf("conv%d", layer + 1),
                       convs_.back().get());
    }
}

Var
Gcn::forwardConvs(BatchedGraph &batch, Var h)
{
    Var dis = degreeInvSqrt(batch);
    for (std::size_t layer = 0; layer < convs_.size(); ++layer) {
        LayerScope scope(
            strprintf("conv%zu", layer + 1).c_str());
        h = convs_[layer]->forward(batch, h, dis);
    }
    return h;
}

} // namespace gnnperf
