/**
 * @file
 * Graph Isomorphism Network (Xu et al., 2019) — paper Eq. 3:
 * h' = σ(W σ(BN(V((1+ε)h + Σ_j h_j)))), with sum aggregation and a
 * learnable ε (Tables II/III: neighbor_aggr=sum, learn_eps=true).
 */

#ifndef GNNPERF_MODELS_GIN_HH
#define GNNPERF_MODELS_GIN_HH

#include "models/gnn_model.hh"
#include "nn/batch_norm.hh"

namespace gnnperf {

/** One GIN layer (the two-linear MLP update of Eq. 3). */
class GinConv : public nn::Module
{
  public:
    GinConv(const Backend &backend, int64_t in_features,
            int64_t out_features, bool learn_eps, bool residual,
            bool output_layer, float dropout, Rng &rng);

    Var forward(BatchedGraph &batch, const Var &h);

  private:
    const Backend &backend_;
    std::unique_ptr<nn::Linear> fc1_;  ///< V in Eq. 3
    std::unique_ptr<nn::Linear> fc2_;  ///< W in Eq. 3
    std::unique_ptr<nn::BatchNorm1d> bn_;
    std::unique_ptr<nn::Dropout> dropout_;
    Var eps_;  ///< learnable ε, undefined when learn_eps = false
    bool residual_;
    bool outputLayer_;
};

/** The full GIN model. */
class Gin : public GnnModel
{
  public:
    Gin(const Backend &backend, const ModelConfig &cfg);

    ModelKind modelKind() const override { return ModelKind::GIN; }

  protected:
    Var forwardConvs(BatchedGraph &batch, Var h) override;

  private:
    std::vector<std::unique_ptr<GinConv>> convs_;
};

} // namespace gnnperf

#endif // GNNPERF_MODELS_GIN_HH
