#include "models/graphsage.hh"

#include "autograd/functions.hh"
#include "common/string_utils.hh"
#include "device/profiler.hh"

namespace gnnperf {

namespace {
/**
 * Hamilton et al. project embeddings onto the unit ball (paper Eq. 2
 * context), but the framework implementations the paper benchmarks
 * ship with normalisation OFF by default (PyG SAGEConv
 * `normalize=False`; DGL SAGEConv has no norm), and enabling it stalls
 * convergence at Table II's lr = 1e-3. We follow the frameworks.
 */
constexpr bool kSageUnitBall = false;
} // namespace

SageConv::SageConv(const Backend &backend, int64_t in_features,
                   int64_t out_features, bool batch_norm, bool residual,
                   bool output_layer, float dropout, Rng &rng)
    : backend_(backend),
      residual_(residual && in_features == out_features),
      outputLayer_(output_layer)
{
    // Pool transform projects neighbors to the layer's output width
    // before the mean reduction (keeps conv1 cheap on wide inputs,
    // matching the reference implementation's timing profile).
    pool_ = std::make_unique<nn::Linear>(in_features, out_features,
                                         rng);
    registerModule("pool", pool_.get());
    update_ = std::make_unique<nn::Linear>(in_features + out_features,
                                           out_features, rng);
    registerModule("update", update_.get());
    if (batch_norm && !output_layer) {
        bn_ = std::make_unique<nn::BatchNorm1d>(out_features);
        registerModule("bn", bn_.get());
    }
    if (dropout > 0.0f) {
        dropout_ = std::make_unique<nn::Dropout>(dropout, rng);
        registerModule("dropout", dropout_.get());
    }
}

Var
SageConv::forward(BatchedGraph &batch, const Var &h)
{
    Var transformed = fn::relu(pool_->forward(h));
    Var agg = backend_.aggregate(batch, transformed, Reduce::Mean);
    Var out = update_->forward(fn::concatCols(h, agg));
    if (bn_)
        out = bn_->forward(out);
    if (!outputLayer_) {
        out = fn::relu(out);
        // Optional unit-ball projection (see note at kSageUnitBall).
        if (kSageUnitBall)
            out = fn::l2NormalizeRows(out);
    }
    if (residual_)
        out = fn::add(out, h);
    if (dropout_ && !outputLayer_)
        out = dropout_->forward(out);
    return out;
}

GraphSage::GraphSage(const Backend &backend, const ModelConfig &cfg)
    : GnnModel(backend, cfg)
{
    for (int layer = 0; layer < cfg_.numLayers; ++layer) {
        convs_.push_back(std::make_unique<SageConv>(
            backend_, layerInWidth(layer), layerOutWidth(layer),
            cfg_.batchNorm, cfg_.residual, isOutputLayer(layer),
            cfg_.dropout, rng_));
        registerModule(strprintf("conv%d", layer + 1),
                       convs_.back().get());
    }
}

Var
GraphSage::forwardConvs(BatchedGraph &batch, Var h)
{
    for (std::size_t layer = 0; layer < convs_.size(); ++layer) {
        LayerScope scope(strprintf("conv%zu", layer + 1).c_str());
        h = convs_[layer]->forward(batch, h);
    }
    return h;
}

} // namespace gnnperf
