/**
 * @file
 * MoNet / Gaussian Mixture Model network (Monti et al., 2017).
 *
 * Degree-derived pseudo-coordinates u_uv = (deg_u^-1/2, deg_v^-1/2)
 * are projected per layer, and K Gaussian kernels with learnable means
 * and scales produce per-edge weights for K weighted aggregations
 * (Tables II/III: K = 2, pseudo dim = 2).
 */

#ifndef GNNPERF_MODELS_MONET_HH
#define GNNPERF_MODELS_MONET_HH

#include "models/gnn_model.hh"
#include "nn/batch_norm.hh"

namespace gnnperf {

/** One MoNet layer. */
class MoNetConv : public nn::Module
{
  public:
    MoNetConv(const Backend &backend, int64_t in_features,
              int64_t out_features, int kernels, bool batch_norm,
              bool residual, bool output_layer, float dropout,
              Rng &rng);

    Var forward(BatchedGraph &batch, const Var &h);

  private:
    const Backend &backend_;
    std::unique_ptr<nn::Linear> pseudoProj_;  ///< 2 → 2 projection
    std::vector<std::unique_ptr<nn::Linear>> kernelProj_;  ///< V_k
    std::vector<Var> mu_;       ///< kernel means, [2] each
    std::vector<Var> invSigma_; ///< kernel inverse scales, [2] each
    std::unique_ptr<nn::BatchNorm1d> bn_;
    std::unique_ptr<nn::Dropout> dropout_;
    int kernels_;
    bool residual_;
    bool outputLayer_;
};

/** The full MoNet model. */
class MoNet : public GnnModel
{
  public:
    MoNet(const Backend &backend, const ModelConfig &cfg);

    ModelKind modelKind() const override { return ModelKind::MoNet; }

  protected:
    Var forwardConvs(BatchedGraph &batch, Var h) override;

  private:
    std::vector<std::unique_ptr<MoNetConv>> convs_;
};

} // namespace gnnperf

#endif // GNNPERF_MODELS_MONET_HH
