#include "models/monet.hh"

#include "autograd/functions.hh"
#include "common/string_utils.hh"
#include "device/profiler.hh"
#include "tensor/init.hh"

namespace gnnperf {

MoNetConv::MoNetConv(const Backend &backend, int64_t in_features,
                     int64_t out_features, int kernels, bool batch_norm,
                     bool residual, bool output_layer, float dropout,
                     Rng &rng)
    : backend_(backend),
      kernels_(kernels),
      residual_(residual && in_features == out_features),
      outputLayer_(output_layer)
{
    pseudoProj_ = std::make_unique<nn::Linear>(2, 2, rng);
    registerModule("pseudo_proj", pseudoProj_.get());
    for (int k = 0; k < kernels; ++k) {
        kernelProj_.push_back(std::make_unique<nn::Linear>(
            in_features, out_features, rng, /*bias=*/false));
        registerModule(strprintf("kernel_proj%d", k),
                       kernelProj_.back().get());
        mu_.push_back(registerParameter(
            strprintf("mu%d", k),
            init::normal({2}, 0.0f, 0.1f, rng)));
        invSigma_.push_back(registerParameter(
            strprintf("inv_sigma%d", k), Tensor::ones({2})));
    }
    if (batch_norm && !output_layer) {
        bn_ = std::make_unique<nn::BatchNorm1d>(out_features);
        registerModule("bn", bn_.get());
    }
    if (dropout > 0.0f) {
        dropout_ = std::make_unique<nn::Dropout>(dropout, rng);
        registerModule("dropout", dropout_.get());
    }
}

Var
MoNetConv::forward(BatchedGraph &batch, const Var &h)
{
    // Pseudo-coordinates, projected per layer (tanh squashing).
    Var pseudo(batch.edgePseudoCoordinates());
    Var u = fn::tanhV(pseudoProj_->forward(pseudo));  // [E, 2]

    Var out;
    for (int k = 0; k < kernels_; ++k) {
        // Gaussian weight w_k(u) = exp(-1/2 ‖(u − μ_k) ∘ σ_k^-1‖²)
        Var diff = fn::subRowVec(u, mu_[k]);
        Var scaled = fn::mulRowVec(diff, invSigma_[k]);
        Var dist2 = fn::sumCols(fn::square(scaled));         // [E]
        Var w = fn::expV(fn::scale(dist2, -0.5f));           // [E]
        Var w_col = fn::reshape(w, {w.numel(), 1});          // [E, 1]

        Var vh = kernelProj_[k]->forward(h);
        Var agg = backend_.aggregateWeighted(batch, vh, w_col, 1);
        out = (k == 0) ? agg : fn::add(out, agg);
    }

    if (bn_)
        out = bn_->forward(out);
    if (!outputLayer_)
        out = fn::relu(out);
    if (residual_)
        out = fn::add(out, h);
    if (dropout_ && !outputLayer_)
        out = dropout_->forward(out);
    return out;
}

MoNet::MoNet(const Backend &backend, const ModelConfig &cfg)
    : GnnModel(backend, cfg)
{
    for (int layer = 0; layer < cfg_.numLayers; ++layer) {
        convs_.push_back(std::make_unique<MoNetConv>(
            backend_, layerInWidth(layer), layerOutWidth(layer),
            cfg_.kernels, cfg_.batchNorm, cfg_.residual,
            isOutputLayer(layer), cfg_.dropout, rng_));
        registerModule(strprintf("conv%d", layer + 1),
                       convs_.back().get());
    }
}

Var
MoNet::forwardConvs(BatchedGraph &batch, Var h)
{
    for (std::size_t layer = 0; layer < convs_.size(); ++layer) {
        LayerScope scope(strprintf("conv%zu", layer + 1).c_str());
        h = convs_[layer]->forward(batch, h);
    }
    return h;
}

} // namespace gnnperf
