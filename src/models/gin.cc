#include "models/gin.hh"

#include "autograd/functions.hh"
#include "common/string_utils.hh"
#include "device/profiler.hh"

namespace gnnperf {

GinConv::GinConv(const Backend &backend, int64_t in_features,
                 int64_t out_features, bool learn_eps, bool residual,
                 bool output_layer, float dropout, Rng &rng)
    : backend_(backend),
      residual_(residual && in_features == out_features),
      outputLayer_(output_layer)
{
    fc1_ = std::make_unique<nn::Linear>(in_features, out_features, rng);
    registerModule("fc1", fc1_.get());
    fc2_ = std::make_unique<nn::Linear>(out_features, out_features,
                                        rng);
    registerModule("fc2", fc2_.get());
    bn_ = std::make_unique<nn::BatchNorm1d>(out_features);
    registerModule("bn", bn_.get());
    if (learn_eps)
        eps_ = registerParameter("eps", Tensor::zeros({1}));
    if (dropout > 0.0f) {
        dropout_ = std::make_unique<nn::Dropout>(dropout, rng);
        registerModule("dropout", dropout_.get());
    }
}

Var
GinConv::forward(BatchedGraph &batch, const Var &h)
{
    Var agg = backend_.aggregate(batch, h, Reduce::Sum);
    // z = (1 + ε) h + Σ_j h_j
    Var z = fn::add(h, agg);
    if (eps_.defined())
        z = fn::add(z, fn::mulScalarVar(h, eps_));

    Var out = fc1_->forward(z);
    out = bn_->forward(out);
    out = fn::relu(out);
    out = fc2_->forward(out);
    if (!outputLayer_)
        out = fn::relu(out);
    if (residual_)
        out = fn::add(out, h);
    if (dropout_ && !outputLayer_)
        out = dropout_->forward(out);
    return out;
}

Gin::Gin(const Backend &backend, const ModelConfig &cfg)
    : GnnModel(backend, cfg)
{
    for (int layer = 0; layer < cfg_.numLayers; ++layer) {
        convs_.push_back(std::make_unique<GinConv>(
            backend_, layerInWidth(layer), layerOutWidth(layer),
            cfg_.learnEps, cfg_.residual, isOutputLayer(layer),
            cfg_.dropout, rng_));
        registerModule(strprintf("conv%d", layer + 1),
                       convs_.back().get());
    }
}

Var
Gin::forwardConvs(BatchedGraph &batch, Var h)
{
    for (std::size_t layer = 0; layer < convs_.size(); ++layer) {
        LayerScope scope(strprintf("conv%zu", layer + 1).c_str());
        h = convs_[layer]->forward(batch, h);
    }
    return h;
}

} // namespace gnnperf
