#include "models/gnn_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "device/profiler.hh"

namespace gnnperf {

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::GCN: return "GCN";
      case ModelKind::GAT: return "GAT";
      case ModelKind::GraphSage: return "SAGE";
      case ModelKind::GIN: return "GIN";
      case ModelKind::MoNet: return "MoNet";
      case ModelKind::GatedGCN: return "GatedGCN";
    }
    return "?";
}

std::vector<ModelKind>
allModels()
{
    return {ModelKind::GCN, ModelKind::GAT, ModelKind::GraphSage,
            ModelKind::GIN, ModelKind::MoNet, ModelKind::GatedGCN};
}

bool
isAnisotropic(ModelKind kind)
{
    return kind == ModelKind::GAT || kind == ModelKind::MoNet ||
           kind == ModelKind::GatedGCN;
}

GnnModel::GnnModel(const Backend &backend, const ModelConfig &cfg)
    : backend_(backend), cfg_(cfg), rng_(cfg.seed)
{
    gnnperf_assert(cfg_.inFeatures > 0, "model: inFeatures unset");
    gnnperf_assert(cfg_.numClasses > 0, "model: numClasses unset");
    gnnperf_assert(cfg_.numLayers >= 1, "model: numLayers < 1");
    if (cfg_.graphTask) {
        embed_ = std::make_unique<nn::Linear>(cfg_.inFeatures,
                                              cfg_.hidden, rng_);
        registerModule("embed", embed_.get());
        readout_ = std::make_unique<nn::MlpReadout>(cfg_.hidden,
                                                    cfg_.numClasses,
                                                    rng_);
        registerModule("classifier", readout_.get());
    }
}

int64_t
GnnModel::layerInWidth(int layer) const
{
    if (cfg_.graphTask)
        return cfg_.hidden;  // embedding precedes the stack
    return layer == 0 ? cfg_.inFeatures : cfg_.hidden;
}

int64_t
GnnModel::layerOutWidth(int layer) const
{
    if (cfg_.graphTask)
        return cfg_.hidden;
    return layer == cfg_.numLayers - 1 ? cfg_.numClasses : cfg_.hidden;
}

Var
GnnModel::degreeInvSqrt(const BatchedGraph &batch)
{
    gnnperf_assert(batch.inDegrees.defined(),
                   "degreeInvSqrt: batch without degrees");
    Tensor out(batch.inDegrees.shape(), batch.inDegrees.device());
    const float *pd = batch.inDegrees.data();
    float *po = out.data();
    for (int64_t i = 0; i < out.numel(); ++i)
        po[i] = 1.0f / std::sqrt(pd[i] + 1.0f);
    recordKernel("deg_inv_sqrt", 3.0 * static_cast<double>(out.numel()),
                 2.0 * static_cast<double>(out.bytes()));
    return Var(out);
}

Var
GnnModel::forward(BatchedGraph &batch)
{
    gnnperf_assert(batch.x.defined() &&
                   batch.x.device() == DeviceKind::Cuda,
                   "forward: batch features not on device");
    Var h(batch.x);
    if (cfg_.graphTask) {
        LayerScope scope("embed");
        h = embed_->forward(h);
    }
    h = forwardConvs(batch, h);
    if (!cfg_.graphTask)
        return h;
    Var pooled;
    {
        LayerScope scope("readout");
        pooled = backend_.readoutMean(batch, h);
    }
    LayerScope scope("classifier");
    return readout_->forward(pooled);
}

} // namespace gnnperf
