/**
 * @file
 * GraphSAGE (Hamilton et al., 2017) — paper Eq. 2, "meanpool"
 * aggregator per Tables II/III: neighbors are transformed by a pooling
 * MLP, mean-reduced, concatenated with the node's own features, and
 * the result is projected onto the unit ball (row L2 normalisation).
 */

#ifndef GNNPERF_MODELS_GRAPHSAGE_HH
#define GNNPERF_MODELS_GRAPHSAGE_HH

#include "models/gnn_model.hh"
#include "nn/batch_norm.hh"

namespace gnnperf {

/** One GraphSAGE (pool) layer. */
class SageConv : public nn::Module
{
  public:
    SageConv(const Backend &backend, int64_t in_features,
             int64_t out_features, bool batch_norm, bool residual,
             bool output_layer, float dropout, Rng &rng);

    Var forward(BatchedGraph &batch, const Var &h);

  private:
    const Backend &backend_;
    std::unique_ptr<nn::Linear> pool_;    ///< neighbor transform
    std::unique_ptr<nn::Linear> update_;  ///< on concat(self, agg)
    std::unique_ptr<nn::BatchNorm1d> bn_;
    std::unique_ptr<nn::Dropout> dropout_;
    bool residual_;
    bool outputLayer_;
};

/** The full GraphSAGE model. */
class GraphSage : public GnnModel
{
  public:
    GraphSage(const Backend &backend, const ModelConfig &cfg);

    ModelKind modelKind() const override { return ModelKind::GraphSage; }

  protected:
    Var forwardConvs(BatchedGraph &batch, Var h) override;

  private:
    std::vector<std::unique_ptr<SageConv>> convs_;
};

} // namespace gnnperf

#endif // GNNPERF_MODELS_GRAPHSAGE_HH
