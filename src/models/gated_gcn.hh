/**
 * @file
 * GatedGCN / Residual Gated Graph ConvNet (Bresson & Laurent, 2017).
 *
 * Per edge (u→v): ê_uv = A h_v + B h_u (+ C e_uv), gate η = σ(ê);
 * per node: h'_v = U h_v + (Σ_u η ∘ V hᵤ) / (Σ_u η + ε), with batch
 * norm, ReLU and residual connections on nodes (and on the edge
 * stream when it exists).
 *
 * Framework split reproduced from the paper (§IV-A observation 3):
 * under DGL an explicit edge-feature stream is mandatory — every edge's
 * features are updated through a fully connected layer each layer,
 * dominating GatedGCN's DGL time and memory; under PyG no edge stream
 * is kept (gates are computed from endpoint features only).
 */

#ifndef GNNPERF_MODELS_GATED_GCN_HH
#define GNNPERF_MODELS_GATED_GCN_HH

#include "models/gnn_model.hh"
#include "nn/batch_norm.hh"

namespace gnnperf {

/** One GatedGCN layer. */
class GatedGcnConv : public nn::Module
{
  public:
    GatedGcnConv(const Backend &backend, int64_t in_features,
                 int64_t out_features, int64_t edge_in_features,
                 bool edge_stream, bool batch_norm, bool residual,
                 bool output_layer, float dropout, Rng &rng);

    /**
     * @param e edge-feature stream [E, edge_in]; updated in place to
     *        the layer's output width when the stream is enabled
     *        (undefined Var otherwise).
     */
    Var forward(BatchedGraph &batch, const Var &h, Var &e);

  private:
    const Backend &backend_;
    std::unique_ptr<nn::Linear> gateDst_;   ///< A
    std::unique_ptr<nn::Linear> gateSrc_;   ///< B
    std::unique_ptr<nn::Linear> gateEdge_;  ///< C (edge stream only)
    std::unique_ptr<nn::Linear> update_;    ///< U
    std::unique_ptr<nn::Linear> message_;   ///< V
    std::unique_ptr<nn::BatchNorm1d> bnNode_;
    std::unique_ptr<nn::BatchNorm1d> bnEdge_;
    std::unique_ptr<nn::Dropout> dropout_;
    bool edgeStream_;
    bool residual_;
    bool outputLayer_;
};

/** The full GatedGCN model. */
class GatedGcn : public GnnModel
{
  public:
    GatedGcn(const Backend &backend, const ModelConfig &cfg);

    ModelKind modelKind() const override { return ModelKind::GatedGCN; }

  protected:
    Var forwardConvs(BatchedGraph &batch, Var h) override;

  private:
    std::vector<std::unique_ptr<GatedGcnConv>> convs_;
    std::unique_ptr<nn::Linear> edgeEmbed_;  ///< DGL: 1 → width
    bool edgeStream_;
};

} // namespace gnnperf

#endif // GNNPERF_MODELS_GATED_GCN_HH
