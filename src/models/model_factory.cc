#include "models/model_factory.hh"

#include "common/logging.hh"
#include "common/string_utils.hh"
#include "models/gat.hh"
#include "models/gated_gcn.hh"
#include "models/gcn.hh"
#include "models/gin.hh"
#include "models/graphsage.hh"
#include "models/monet.hh"

namespace gnnperf {

std::unique_ptr<GnnModel>
makeModel(ModelKind kind, const Backend &backend, const ModelConfig &cfg)
{
    switch (kind) {
      case ModelKind::GCN:
        return std::make_unique<Gcn>(backend, cfg);
      case ModelKind::GAT:
        return std::make_unique<Gat>(backend, cfg);
      case ModelKind::GraphSage:
        return std::make_unique<GraphSage>(backend, cfg);
      case ModelKind::GIN:
        return std::make_unique<Gin>(backend, cfg);
      case ModelKind::MoNet:
        return std::make_unique<MoNet>(backend, cfg);
      case ModelKind::GatedGCN:
        return std::make_unique<GatedGcn>(backend, cfg);
    }
    gnnperf_panic("unknown model kind");
}

ModelKind
modelKindFromName(const std::string &name)
{
    if (iequals(name, "gcn")) return ModelKind::GCN;
    if (iequals(name, "gat")) return ModelKind::GAT;
    if (iequals(name, "sage") || iequals(name, "graphsage"))
        return ModelKind::GraphSage;
    if (iequals(name, "gin")) return ModelKind::GIN;
    if (iequals(name, "monet")) return ModelKind::MoNet;
    if (iequals(name, "gatedgcn")) return ModelKind::GatedGCN;
    gnnperf_fatal("unknown model name: ", name);
}

} // namespace gnnperf
