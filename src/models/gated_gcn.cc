#include "models/gated_gcn.hh"

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "common/string_utils.hh"
#include "device/profiler.hh"

namespace gnnperf {

GatedGcnConv::GatedGcnConv(const Backend &backend, int64_t in_features,
                           int64_t out_features,
                           int64_t edge_in_features, bool edge_stream,
                           bool batch_norm, bool residual,
                           bool output_layer, float dropout, Rng &rng)
    : backend_(backend),
      edgeStream_(edge_stream),
      residual_(residual && in_features == out_features),
      outputLayer_(output_layer)
{
    gateDst_ = std::make_unique<nn::Linear>(in_features, out_features,
                                            rng);
    registerModule("gate_dst", gateDst_.get());
    gateSrc_ = std::make_unique<nn::Linear>(in_features, out_features,
                                            rng);
    registerModule("gate_src", gateSrc_.get());
    update_ = std::make_unique<nn::Linear>(in_features, out_features,
                                           rng);
    registerModule("update", update_.get());
    message_ = std::make_unique<nn::Linear>(in_features, out_features,
                                            rng);
    registerModule("message", message_.get());
    if (edge_stream) {
        // The fully connected layer over ALL edge features that the
        // paper identifies as DGL GatedGCN's cost driver.
        gateEdge_ = std::make_unique<nn::Linear>(edge_in_features,
                                                 out_features, rng);
        registerModule("gate_edge", gateEdge_.get());
        bnEdge_ = std::make_unique<nn::BatchNorm1d>(out_features);
        registerModule("bn_edge", bnEdge_.get());
    }
    if (batch_norm && !output_layer) {
        bnNode_ = std::make_unique<nn::BatchNorm1d>(out_features);
        registerModule("bn_node", bnNode_.get());
    }
    if (dropout > 0.0f) {
        dropout_ = std::make_unique<nn::Dropout>(dropout, rng);
        registerModule("dropout", dropout_.get());
    }
}

Var
GatedGcnConv::forward(BatchedGraph &batch, const Var &h, Var &e)
{
    // Gate logits per edge: ê = A h_dst + B h_src (+ C e).
    Var a_dst = backend_.gatherDst(batch, gateDst_->forward(h));
    Var b_src = backend_.gatherSrc(batch, gateSrc_->forward(h));
    Var e_hat = fn::add(a_dst, b_src);
    if (edgeStream_) {
        gnnperf_assert(e.defined(),
                       "GatedGcnConv: edge stream not initialised");
        e_hat = fn::add(e_hat, gateEdge_->forward(e));
        // The FC touches every edge's feature row — the all-edges
        // traffic the paper attributes GatedGCN's DGL slowdown to.
        Backend::statEdgesTouched(backend_.kind(), e.dim(0));
    }
    Var eta = fn::sigmoid(e_hat);  // [E, F_out]

    // Gated aggregation: Σ η ∘ V h_src over incoming edges,
    // normalised by Σ η (elementwise gating: heads == width, D == 1).
    Var vh = message_->forward(h);
    const int64_t width = vh.dim(1);
    Var numerator = backend_.aggregateWeighted(batch, vh, eta, width);
    Var denominator = backend_.aggregateEdges(batch, eta);
    Var gated = fn::divElem(numerator,
                            fn::addScalar(denominator, 1e-6f));

    Var out = fn::add(update_->forward(h), gated);
    if (bnNode_)
        out = bnNode_->forward(out);
    if (!outputLayer_)
        out = fn::relu(out);
    if (residual_)
        out = fn::add(out, h);
    if (dropout_ && !outputLayer_)
        out = dropout_->forward(out);

    if (edgeStream_) {
        // Edge stream update with the same norm/act/residual recipe.
        Var e_new = e_hat;
        if (bnEdge_)
            e_new = bnEdge_->forward(e_new);
        e_new = fn::relu(e_new);
        if (e.dim(1) == e_new.dim(1))
            e_new = fn::add(e_new, e);
        e = e_new;
    }
    return out;
}

GatedGcn::GatedGcn(const Backend &backend, const ModelConfig &cfg)
    : GnnModel(backend, cfg), edgeStream_(backend.requiresEdgeFeatures())
{
    if (edgeStream_) {
        // DGL requires an edge-type/feature slot even for plain
        // graphs; initial edge features come from a 1-dim constant
        // through a fully connected layer (paper §IV-A observation 3).
        edgeEmbed_ = std::make_unique<nn::Linear>(1, cfg_.hidden, rng_);
        registerModule("edge_embed", edgeEmbed_.get());
    }
    for (int layer = 0; layer < cfg_.numLayers; ++layer) {
        // Edge stream width entering this layer: hidden for layer 0
        // (from edgeEmbed_), else the previous layer's output width.
        const int64_t edge_in =
            layer == 0 ? cfg_.hidden : layerOutWidth(layer - 1);
        convs_.push_back(std::make_unique<GatedGcnConv>(
            backend_, layerInWidth(layer), layerOutWidth(layer),
            edge_in, edgeStream_, cfg_.batchNorm, cfg_.residual,
            isOutputLayer(layer), cfg_.dropout, rng_));
        registerModule(strprintf("conv%d", layer + 1),
                       convs_.back().get());
    }
}

Var
GatedGcn::forwardConvs(BatchedGraph &batch, Var h)
{
    Var e;
    if (edgeStream_) {
        LayerScope scope("edge_embed");
        // All-ones initial edge feature, updated through the FC layer.
        Var ones(Tensor::ones({batch.numEdges(), 1}, DeviceKind::Cuda));
        e = edgeEmbed_->forward(ones);
    }
    for (std::size_t layer = 0; layer < convs_.size(); ++layer) {
        LayerScope scope(strprintf("conv%zu", layer + 1).c_str());
        h = convs_[layer]->forward(batch, h, e);
    }
    return h;
}

} // namespace gnnperf
