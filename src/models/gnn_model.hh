/**
 * @file
 * Common structure of the six GNN workloads.
 *
 * Every model follows the architecture the paper evaluates (§III-A,
 * §IV): node-classification variants are two conv layers
 * (input → hidden → classes, Table II); graph-classification variants
 * are an input embedding, four conv layers with batch norm and
 * residual connections, mean readout, and an MLP classifier
 * (Table III, §IV-B.4). Models are written once against the Backend
 * interface so PyG and DGL variants share code exactly as the paper's
 * "same network" methodology requires (§III-C).
 */

#ifndef GNNPERF_MODELS_GNN_MODEL_HH
#define GNNPERF_MODELS_GNN_MODEL_HH

#include <memory>
#include <string>

#include "backends/backend.hh"
#include "nn/dropout.hh"
#include "nn/linear.hh"
#include "nn/mlp.hh"
#include "nn/module.hh"

namespace gnnperf {

/** The six workloads. */
enum class ModelKind { GCN, GAT, GraphSage, GIN, MoNet, GatedGCN };

/** Paper-style model name ("GCN", "GAT", "SAGE", ...). */
const char *modelName(ModelKind kind);

/** All six, in the tables' order. */
std::vector<ModelKind> allModels();

/** Isotropic (GCN/GIN/SAGE) vs anisotropic (GAT/MoNet/GatedGCN). */
bool isAnisotropic(ModelKind kind);

/** Architecture configuration (hyper-parameters from Tables II/III). */
struct ModelConfig
{
    int64_t inFeatures = 0;   ///< dataset feature width
    int64_t hidden = 64;      ///< conv layer width
    int64_t numClasses = 2;
    int numLayers = 2;        ///< conv layers (2 node / 4 graph tasks)
    int heads = 8;            ///< GAT attention heads
    int kernels = 2;          ///< MoNet Gaussian kernels
    float dropout = 0.0f;
    bool graphTask = false;   ///< readout+MLP head vs node logits
    bool batchNorm = false;   ///< BN in conv layers (graph tasks)
    bool residual = false;    ///< residual connections (graph tasks)
    bool learnEps = true;     ///< GIN's learnable epsilon
    uint64_t seed = 1;        ///< initialisation seed
};

/**
 * Base class: embedding, conv stack, readout, classifier; layer-scope
 * annotation for the Fig. 3 layer-wise breakdown.
 */
class GnnModel : public nn::Module
{
  public:
    ~GnnModel() override = default;

    /**
     * Full forward pass: batch features → logits ([N, C] for node
     * tasks, [numGraphs, C] for graph tasks). The batch must have its
     * features on the device already (collate does this).
     */
    Var forward(BatchedGraph &batch);

    virtual ModelKind modelKind() const = 0;
    const char *name() const { return modelName(modelKind()); }

    const ModelConfig &config() const { return cfg_; }
    const Backend &backend() const { return backend_; }

  protected:
    GnnModel(const Backend &backend, const ModelConfig &cfg);

    /** The conv stack: node features in, node features out. */
    virtual Var forwardConvs(BatchedGraph &batch, Var h) = 0;

    /** 1/sqrt(deg+1) per node, as a constant Var (GCN/MoNet norm). */
    static Var degreeInvSqrt(const BatchedGraph &batch);

    /** Width of a conv layer's input/output given its index. */
    int64_t layerInWidth(int layer) const;
    int64_t layerOutWidth(int layer) const;
    bool isOutputLayer(int layer) const
    {
        return !cfg_.graphTask && layer == cfg_.numLayers - 1;
    }

    const Backend &backend_;
    ModelConfig cfg_;
    Rng rng_;

    std::unique_ptr<nn::Linear> embed_;        ///< graph tasks only
    std::unique_ptr<nn::MlpReadout> readout_;  ///< graph tasks only
};

} // namespace gnnperf

#endif // GNNPERF_MODELS_GNN_MODEL_HH
