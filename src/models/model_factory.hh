/**
 * @file
 * Model construction by kind.
 */

#ifndef GNNPERF_MODELS_MODEL_FACTORY_HH
#define GNNPERF_MODELS_MODEL_FACTORY_HH

#include <memory>
#include <string>

#include "models/gnn_model.hh"

namespace gnnperf {

/** Construct a model of the given kind against a backend. */
std::unique_ptr<GnnModel> makeModel(ModelKind kind,
                                    const Backend &backend,
                                    const ModelConfig &cfg);

/** Parse a model name ("GCN", "gat", "SAGE", "graphsage", ...). */
ModelKind modelKindFromName(const std::string &name);

} // namespace gnnperf

#endif // GNNPERF_MODELS_MODEL_FACTORY_HH
