#include "models/gat.hh"

#include <cmath>

#include "autograd/functions.hh"
#include "common/logging.hh"
#include "common/string_utils.hh"
#include "device/profiler.hh"
#include "tensor/init.hh"

namespace gnnperf {

using autograd::Node;

GatConv::GatConv(const Backend &backend, int64_t in_features,
                 int64_t out_features, int heads, bool batch_norm,
                 bool residual, bool output_layer, float dropout,
                 Rng &rng)
    : backend_(backend),
      heads_(heads),
      residual_(residual && in_features == out_features),
      outputLayer_(output_layer)
{
    gnnperf_assert(out_features % heads == 0, "GatConv: width ",
                   out_features, " not divisible by ", heads, " heads");
    proj_ = std::make_unique<nn::Linear>(in_features, out_features, rng,
                                         /*bias=*/false);
    registerModule("proj", proj_.get());
    const float bound = 1.0f / std::sqrt(
        static_cast<float>(out_features / heads));
    attnSrc_ = registerParameter(
        "attn_src", init::uniform({out_features}, bound, rng));
    attnDst_ = registerParameter(
        "attn_dst", init::uniform({out_features}, bound, rng));
    if (batch_norm && !output_layer) {
        bn_ = std::make_unique<nn::BatchNorm1d>(out_features);
        registerModule("bn", bn_.get());
    }
    if (dropout > 0.0f) {
        attnDropout_ = std::make_unique<nn::Dropout>(dropout, rng);
        registerModule("attn_dropout", attnDropout_.get());
        dropout_ = std::make_unique<nn::Dropout>(dropout, rng);
        registerModule("dropout", dropout_.get());
    }
}

Var
GatConv::headDot(const Var &x, const Var &a, int64_t heads)
{
    gnnperf_assert(x.rank() == 2 && a.rank() == 1 &&
                   x.dim(1) == a.dim(0), "headDot: shape mismatch");
    const int64_t n = x.dim(0);
    const int64_t f = x.dim(1);
    const int64_t d = f / heads;
    Tensor out({n, heads}, x.value().device());
    {
        const float *px = x.value().data();
        const float *pa = a.value().data();
        float *po = out.data();
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t h = 0; h < heads; ++h) {
                float s = 0.0f;
                for (int64_t j = 0; j < d; ++j)
                    s += px[i * f + h * d + j] * pa[h * d + j];
                po[i * heads + h] = s;
            }
        }
    }
    recordKernel("attn_head_dot", 2.0 * static_cast<double>(n * f),
                 static_cast<double>(x.value().bytes()) +
                     static_cast<double>(out.bytes()));
    Tensor xc = x.value(), ac = a.value();
    return Var::makeOp("attn_head_dot", std::move(out), {x, a},
        [xc, ac, heads, d, f](Node &node) {
            const Tensor &g = node.grad;  // [N, heads]
            const int64_t rows = g.dim(0);
            if (node.inputs[0]->requiresGrad) {
                Tensor gx({rows, f}, g.device());
                const float *pg = g.data();
                const float *pa = ac.data();
                float *po = gx.data();
                for (int64_t i = 0; i < rows; ++i)
                    for (int64_t h = 0; h < heads; ++h) {
                        const float s = pg[i * heads + h];
                        for (int64_t j = 0; j < d; ++j)
                            po[i * f + h * d + j] = s * pa[h * d + j];
                    }
                recordKernel("attn_head_dot_bwd_x",
                             static_cast<double>(rows * f),
                             2.0 * static_cast<double>(gx.bytes()));
                node.inputs[0]->accumulateGrad(gx);
            }
            if (node.inputs[1]->requiresGrad) {
                Tensor ga = Tensor::zeros({f}, g.device());
                const float *pg = g.data();
                const float *px = xc.data();
                float *po = ga.data();
                for (int64_t i = 0; i < rows; ++i)
                    for (int64_t h = 0; h < heads; ++h) {
                        const float s = pg[i * heads + h];
                        for (int64_t j = 0; j < d; ++j)
                            po[h * d + j] += s * px[i * f + h * d + j];
                    }
                recordKernel("attn_head_dot_bwd_a",
                             static_cast<double>(rows * f),
                             static_cast<double>(xc.bytes()));
                node.inputs[1]->accumulateGrad(ga);
            }
        });
}

Var
GatConv::forward(BatchedGraph &batch, const Var &h)
{
    Var wh = proj_->forward(h);  // [N, H·D]

    // Attention logits per edge.
    Var s_src = headDot(wh, attnSrc_, heads_);  // [N, H]
    Var s_dst = headDot(wh, attnDst_, heads_);
    Var e_src = backend_.gatherSrc(batch, s_src);  // [E, H]
    Var e_dst = backend_.gatherDst(batch, s_dst);
    Var logits = fn::leakyRelu(fn::add(e_src, e_dst), 0.2f);

    Var alpha = backend_.edgeSoftmax(batch, logits);
    if (attnDropout_)
        alpha = attnDropout_->forward(alpha);

    Var out = backend_.aggregateWeighted(batch, wh, alpha, heads_);
    if (bn_)
        out = bn_->forward(out);
    if (!outputLayer_)
        out = fn::elu(out);
    if (residual_)
        out = fn::add(out, h);
    if (dropout_ && !outputLayer_)
        out = dropout_->forward(out);
    return out;
}

Gat::Gat(const Backend &backend, const ModelConfig &cfg)
    : GnnModel(backend, cfg)
{
    for (int layer = 0; layer < cfg_.numLayers; ++layer) {
        // The output layer of node-task GAT uses a single head
        // (averaging heads over the class logits, as the reference
        // implementation does).
        const int heads = isOutputLayer(layer) ? 1 : cfg_.heads;
        convs_.push_back(std::make_unique<GatConv>(
            backend_, layerInWidth(layer), layerOutWidth(layer), heads,
            cfg_.batchNorm, cfg_.residual, isOutputLayer(layer),
            cfg_.dropout, rng_));
        registerModule(strprintf("conv%d", layer + 1),
                       convs_.back().get());
    }
}

Var
Gat::forwardConvs(BatchedGraph &batch, Var h)
{
    for (std::size_t layer = 0; layer < convs_.size(); ++layer) {
        LayerScope scope(strprintf("conv%zu", layer + 1).c_str());
        h = convs_[layer]->forward(batch, h);
    }
    return h;
}

} // namespace gnnperf
