#include "autograd/functions.hh"

#include "common/logging.hh"
#include "device/profiler.hh"
#include "ir/ir.hh"
#include "tensor/matmul.hh"
#include "tensor/ops.hh"

namespace gnnperf {
namespace fn {

using autograd::Node;

namespace {

/**
 * Operand reference for the op-graph recorder: pending slot if the
 * input is itself a recorded-but-unflushed op, else its concrete
 * tensor. Reads the tape node directly — going through value() would
 * force a flush and defeat the recording.
 */
ir::ValRef
refOf(const Var &v)
{
    gnnperf_assert(v.defined(), "recording op on undefined Var");
    const auto &node = v.node();
    return node->irSlot >= 0 ? ir::ValRef::pending(node->irSlot)
                             : ir::ValRef::concrete(node->value);
}

} // namespace

Var
matmul(const Var &a, const Var &b)
{
    Tensor out = ops::matmul(a.value(), b.value());
    Tensor av = a.value(), bv = b.value();
    return Var::makeOp("matmul", std::move(out), {a, b},
        [av, bv](Node &n) {
            // dA = dC · Bᵀ ; dB = Aᵀ · dC
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(
                    ops::matmulTransB(n.grad, bv));
            if (n.inputs[1]->requiresGrad)
                n.inputs[1]->accumulateGrad(
                    ops::matmulTransA(av, n.grad));
        });
}

Var
add(const Var &a, const Var &b)
{
    auto bwd = [](Node &n) {
        if (n.inputs[0]->requiresGrad)
            n.inputs[0]->accumulateGrad(n.grad);
        if (n.inputs[1]->requiresGrad)
            n.inputs[1]->accumulateGrad(n.grad);
    };
    if (ir::recording())
        return Var::makeOpRecorded("add",
            ir::recordBinary(ops::EwBinary::Add, refOf(a), refOf(b)),
            {a, b}, bwd);
    return Var::makeOp("add", ops::add(a.value(), b.value()), {a, b},
                       bwd);
}

Var
sub(const Var &a, const Var &b)
{
    auto bwd = [](Node &n) {
        if (n.inputs[0]->requiresGrad)
            n.inputs[0]->accumulateGrad(n.grad);
        if (n.inputs[1]->requiresGrad)
            n.inputs[1]->accumulateGrad(ops::scale(n.grad, -1.0f));
    };
    if (ir::recording())
        return Var::makeOpRecorded("sub",
            ir::recordBinary(ops::EwBinary::Sub, refOf(a), refOf(b)),
            {a, b}, bwd);
    return Var::makeOp("sub", ops::sub(a.value(), b.value()), {a, b},
                       bwd);
}

Var
mul(const Var &a, const Var &b)
{
    auto bwd = [](Node &n) {
        if (n.inputs[0]->requiresGrad)
            n.inputs[0]->accumulateGrad(
                ops::mul(n.grad, n.inputs[1]->value));
        if (n.inputs[1]->requiresGrad)
            n.inputs[1]->accumulateGrad(
                ops::mul(n.grad, n.inputs[0]->value));
    };
    if (ir::recording())
        return Var::makeOpRecorded("mul",
            ir::recordBinary(ops::EwBinary::Mul, refOf(a), refOf(b)),
            {a, b}, bwd);
    return Var::makeOp("mul", ops::mul(a.value(), b.value()), {a, b},
                       bwd);
}

Var
divElem(const Var &a, const Var &b)
{
    auto bwd = [](Node &n) {
        Tensor inv = ops::reciprocal(n.inputs[1]->value);
        if (n.inputs[0]->requiresGrad)
            n.inputs[0]->accumulateGrad(ops::mul(n.grad, inv));
        if (n.inputs[1]->requiresGrad) {
            // db = -g * a / b^2
            Tensor inv2 = ops::mul(inv, inv);
            n.inputs[1]->accumulateGrad(ops::scale(
                ops::mul(ops::mul(n.grad, n.inputs[0]->value), inv2),
                -1.0f));
        }
    };
    if (ir::recording())
        return Var::makeOpRecorded("div",
            ir::recordBinary(ops::EwBinary::Div, refOf(a), refOf(b)),
            {a, b}, bwd);
    return Var::makeOp("div", ops::div(a.value(), b.value()), {a, b},
                       bwd);
}

Var
mulScalarVar(const Var &x, const Var &s)
{
    gnnperf_assert(s.numel() == 1, "mulScalarVar: non-scalar factor");
    Tensor xv = x.value();
    const float sv = s.item();
    return Var::makeOp("mul_scalar_var", ops::scale(xv, sv), {x, s},
        [xv, sv](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(ops::scale(n.grad, sv));
            if (n.inputs[1]->requiresGrad) {
                n.inputs[1]->accumulateGrad(
                    ops::sumAll(ops::mul(n.grad, xv)));
            }
        });
}

Var
scale(const Var &a, float s)
{
    auto bwd = [s](Node &n) {
        if (n.inputs[0]->requiresGrad)
            n.inputs[0]->accumulateGrad(ops::scale(n.grad, s));
    };
    if (ir::recording())
        return Var::makeOpRecorded("scale",
            ir::recordUnary(ops::EwUnary::Scale, s, refOf(a)), {a},
            bwd);
    return Var::makeOp("scale", ops::scale(a.value(), s), {a}, bwd);
}

Var
addScalar(const Var &a, float s)
{
    auto bwd = [](Node &n) {
        if (n.inputs[0]->requiresGrad)
            n.inputs[0]->accumulateGrad(n.grad);
    };
    if (ir::recording())
        return Var::makeOpRecorded("add_scalar",
            ir::recordUnary(ops::EwUnary::AddScalar, s, refOf(a)), {a},
            bwd);
    return Var::makeOp("add_scalar", ops::addScalar(a.value(), s), {a},
                       bwd);
}

Var
neg(const Var &a)
{
    return scale(a, -1.0f);
}

Var
addBias(const Var &x, const Var &b)
{
    return Var::makeOp("add_bias", ops::addRows(x.value(), b.value()),
        {x, b},
        [](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(n.grad);
            if (n.inputs[1]->requiresGrad)
                n.inputs[1]->accumulateGrad(ops::sumRows(n.grad));
        });
}

Var
subRowVec(const Var &x, const Var &v)
{
    Tensor neg_v = ops::scale(v.value(), -1.0f);
    return Var::makeOp("sub_rowvec",
        ops::addRows(x.value(), neg_v), {x, v},
        [](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(n.grad);
            if (n.inputs[1]->requiresGrad)
                n.inputs[1]->accumulateGrad(
                    ops::scale(ops::sumRows(n.grad), -1.0f));
        });
}

Var
mulRowVec(const Var &x, const Var &v)
{
    gnnperf_assert(x.rank() == 2 && v.rank() == 1 &&
                   x.dim(1) == v.dim(0), "mulRowVec: shape mismatch");
    const Tensor &xv = x.value();
    const Tensor &vv = v.value();
    Tensor out(xv.shape(), xv.device());
    const int64_t n = xv.dim(0), f = xv.dim(1);
    const float *px = xv.data();
    const float *pv = vv.data();
    float *po = out.data();
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < f; ++j)
            po[i * f + j] = px[i * f + j] * pv[j];
    recordKernel("mul_rowvec", static_cast<double>(n * f),
                 2.0 * static_cast<double>(xv.bytes()));
    Tensor xc = xv, vc = vv;
    return Var::makeOp("mul_rowvec", std::move(out), {x, v},
        [xc, vc](Node &n2) {
            if (n2.inputs[0]->requiresGrad) {
                // dX = dO * v (row broadcast)
                const Tensor &g = n2.grad;
                Tensor gx(g.shape(), g.device());
                const int64_t rows = g.dim(0), cols = g.dim(1);
                const float *pg = g.data();
                const float *pvv = vc.data();
                float *pgx = gx.data();
                for (int64_t i = 0; i < rows; ++i)
                    for (int64_t j = 0; j < cols; ++j)
                        pgx[i * cols + j] = pg[i * cols + j] * pvv[j];
                recordKernel("mul_rowvec_bwd",
                             static_cast<double>(rows * cols),
                             2.0 * static_cast<double>(g.bytes()));
                n2.inputs[0]->accumulateGrad(gx);
            }
            if (n2.inputs[1]->requiresGrad) {
                // dv = colsum(dO * x)
                n2.inputs[1]->accumulateGrad(
                    ops::sumRows(ops::mul(n2.grad, xc)));
            }
        });
}

Var
mulCols(const Var &x, const Var &s)
{
    Tensor xc = x.value(), sc = s.value();
    return Var::makeOp("mul_cols", ops::mulCols(xc, sc), {x, s},
        [xc, sc](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(ops::mulCols(n.grad, sc));
            if (n.inputs[1]->requiresGrad)
                n.inputs[1]->accumulateGrad(
                    ops::sumCols(ops::mul(n.grad, xc)));
        });
}

Var
divCols(const Var &x, const Var &s)
{
    Tensor inv = ops::reciprocal(s.value());
    Tensor xc = x.value(), sc = s.value(), invc = inv;
    return Var::makeOp("div_cols", ops::mulCols(x.value(), inv), {x, s},
        [xc, invc](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(ops::mulCols(n.grad, invc));
            if (n.inputs[1]->requiresGrad) {
                // ds_i = -sum_j g_ij x_ij / s_i^2
                Tensor num = ops::sumCols(ops::mul(n.grad, xc));
                Tensor inv2 = ops::mul(invc, invc);
                Tensor g = ops::scale(ops::mul(num, inv2), -1.0f);
                n.inputs[1]->accumulateGrad(g);
            }
        });
}

Var
relu(const Var &a)
{
    auto bwd = [](Node &n) {
        if (!n.inputs[0]->requiresGrad)
            return;
        Tensor g(n.grad.shape(), n.grad.device());
        const float *pg = n.grad.data();
        const float *px = n.inputs[0]->value.data();
        float *po = g.data();
        for (int64_t i = 0; i < g.numel(); ++i)
            po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
        recordKernel("relu_bwd", static_cast<double>(g.numel()),
                     3.0 * static_cast<double>(g.bytes()));
        n.inputs[0]->accumulateGrad(g);
    };
    if (ir::recording())
        return Var::makeOpRecorded("relu",
            ir::recordUnary(ops::EwUnary::Relu, 0.0f, refOf(a)), {a},
            bwd);
    return Var::makeOp("relu", ops::relu(a.value()), {a}, bwd);
}

Var
sigmoid(const Var &a)
{
    auto bwd = [](Node &n) {
        if (!n.inputs[0]->requiresGrad)
            return;
        Tensor g(n.grad.shape(), n.grad.device());
        const float *pg = n.grad.data();
        const float *po = n.value.data();
        float *pr = g.data();
        for (int64_t i = 0; i < g.numel(); ++i)
            pr[i] = pg[i] * po[i] * (1.0f - po[i]);
        recordKernel("sigmoid_bwd",
                     3.0 * static_cast<double>(g.numel()),
                     3.0 * static_cast<double>(g.bytes()));
        n.inputs[0]->accumulateGrad(g);
    };
    if (ir::recording())
        return Var::makeOpRecorded("sigmoid",
            ir::recordUnary(ops::EwUnary::Sigmoid, 0.0f, refOf(a)),
            {a}, bwd);
    return Var::makeOp("sigmoid", ops::sigmoid(a.value()), {a}, bwd);
}

Var
tanhV(const Var &a)
{
    auto bwd = [](Node &n) {
        if (!n.inputs[0]->requiresGrad)
            return;
        Tensor g(n.grad.shape(), n.grad.device());
        const float *pg = n.grad.data();
        const float *po = n.value.data();
        float *pr = g.data();
        for (int64_t i = 0; i < g.numel(); ++i)
            pr[i] = pg[i] * (1.0f - po[i] * po[i]);
        recordKernel("tanh_bwd",
                     3.0 * static_cast<double>(g.numel()),
                     3.0 * static_cast<double>(g.bytes()));
        n.inputs[0]->accumulateGrad(g);
    };
    if (ir::recording())
        return Var::makeOpRecorded("tanh",
            ir::recordUnary(ops::EwUnary::Tanh, 0.0f, refOf(a)), {a},
            bwd);
    return Var::makeOp("tanh", ops::tanhT(a.value()), {a}, bwd);
}

Var
elu(const Var &a, float alpha)
{
    auto bwd = [alpha](Node &n) {
        if (!n.inputs[0]->requiresGrad)
            return;
        Tensor g(n.grad.shape(), n.grad.device());
        const float *pg = n.grad.data();
        const float *px = n.inputs[0]->value.data();
        const float *po = n.value.data();
        float *pr = g.data();
        for (int64_t i = 0; i < g.numel(); ++i) {
            const float d = px[i] > 0.0f ? 1.0f : po[i] + alpha;
            pr[i] = pg[i] * d;
        }
        recordKernel("elu_bwd",
                     2.0 * static_cast<double>(g.numel()),
                     3.0 * static_cast<double>(g.bytes()));
        n.inputs[0]->accumulateGrad(g);
    };
    if (ir::recording())
        return Var::makeOpRecorded("elu",
            ir::recordUnary(ops::EwUnary::Elu, alpha, refOf(a)), {a},
            bwd);
    return Var::makeOp("elu", ops::elu(a.value(), alpha), {a}, bwd);
}

Var
leakyRelu(const Var &a, float slope)
{
    auto bwd = [slope](Node &n) {
        if (!n.inputs[0]->requiresGrad)
            return;
        Tensor g(n.grad.shape(), n.grad.device());
        const float *pg = n.grad.data();
        const float *px = n.inputs[0]->value.data();
        float *pr = g.data();
        for (int64_t i = 0; i < g.numel(); ++i)
            pr[i] = px[i] > 0.0f ? pg[i] : slope * pg[i];
        recordKernel("leaky_relu_bwd",
                     static_cast<double>(g.numel()),
                     3.0 * static_cast<double>(g.bytes()));
        n.inputs[0]->accumulateGrad(g);
    };
    if (ir::recording())
        return Var::makeOpRecorded("leaky_relu",
            ir::recordUnary(ops::EwUnary::LeakyRelu, slope, refOf(a)),
            {a}, bwd);
    return Var::makeOp("leaky_relu", ops::leakyRelu(a.value(), slope),
                       {a}, bwd);
}

Var
expV(const Var &a)
{
    auto bwd = [](Node &n) {
        if (n.inputs[0]->requiresGrad)
            n.inputs[0]->accumulateGrad(ops::mul(n.grad, n.value));
    };
    if (ir::recording())
        return Var::makeOpRecorded("exp",
            ir::recordUnary(ops::EwUnary::Exp, 0.0f, refOf(a)), {a},
            bwd);
    return Var::makeOp("exp", ops::expT(a.value()), {a}, bwd);
}

Var
logV(const Var &a)
{
    Tensor av = a.value();
    return Var::makeOp("log", ops::logT(av), {a},
        [av](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(
                    ops::mul(n.grad, ops::reciprocal(av)));
        });
}

Var
square(const Var &a)
{
    Tensor av = a.value();
    return Var::makeOp("square", ops::square(av), {a},
        [av](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(
                    ops::scale(ops::mul(n.grad, av), 2.0f));
        });
}

Var
concatCols(const Var &a, const Var &b)
{
    const int64_t fa = a.dim(1);
    const int64_t fb = b.dim(1);
    return Var::makeOp("concat",
        ops::concatCols(a.value(), b.value()), {a, b},
        [fa, fb](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(
                    ops::sliceCols(n.grad, 0, fa));
            if (n.inputs[1]->requiresGrad)
                n.inputs[1]->accumulateGrad(
                    ops::sliceCols(n.grad, fa, fa + fb));
        });
}

Var
sliceCols(const Var &a, int64_t begin, int64_t end)
{
    const int64_t f = a.dim(1);
    return Var::makeOp("slice_cols",
        ops::sliceCols(a.value(), begin, end), {a},
        [begin, end, f](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            const Tensor &g = n.grad;
            Tensor full = Tensor::zeros({g.dim(0), f}, g.device());
            const int64_t w = end - begin;
            const float *pg = g.data();
            float *pf = full.data();
            for (int64_t i = 0; i < g.dim(0); ++i)
                for (int64_t j = 0; j < w; ++j)
                    pf[i * f + begin + j] = pg[i * w + j];
            recordKernel("slice_cols_bwd", 0.0,
                         2.0 * static_cast<double>(g.bytes()));
            n.inputs[0]->accumulateGrad(full);
        });
}

Var
reshape(const Var &a, std::vector<int64_t> shape)
{
    std::vector<int64_t> orig = a.value().shape();
    return Var::makeOp("reshape", a.value().reshape(std::move(shape)),
        {a},
        [orig](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(n.grad.reshape(orig));
        });
}

Var
gatherRows(const Var &x, const std::vector<int64_t> &idx)
{
    const int64_t num_rows = x.dim(0);
    if (ir::recording()) {
        // One interned copy shared by the graph node and the closure,
        // matching eager's single capture of the index vector.
        auto shared = ir::internedIndex(idx);
        return Var::makeOpRecorded("gather_rows",
            ir::recordGather(refOf(x), idx), {x},
            [shared, num_rows](Node &n) {
                if (n.inputs[0]->requiresGrad)
                    n.inputs[0]->accumulateGrad(
                        ops::scatterAddRows(n.grad, *shared, num_rows));
            });
    }
    return Var::makeOp("gather_rows",
        ops::gatherRows(x.value(), idx), {x},
        [idx, num_rows](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(
                    ops::scatterAddRows(n.grad, idx, num_rows));
        });
}

Var
scatterAddRows(const Var &x, const std::vector<int64_t> &idx,
               int64_t num_rows)
{
    if (ir::recording()) {
        auto shared = ir::internedIndex(idx);
        return Var::makeOpRecorded("scatter_add_rows",
            ir::recordScatterAdd(refOf(x), idx, num_rows), {x},
            [shared](Node &n) {
                if (n.inputs[0]->requiresGrad)
                    n.inputs[0]->accumulateGrad(
                        ops::gatherRows(n.grad, *shared));
            });
    }
    return Var::makeOp("scatter_add_rows",
        ops::scatterAddRows(x.value(), idx, num_rows), {x},
        [idx](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(
                    ops::gatherRows(n.grad, idx));
        });
}

Var
sumCols(const Var &a)
{
    const int64_t f = a.dim(1);
    return Var::makeOp("row_sum", ops::sumCols(a.value()), {a},
        [f](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            // Broadcast the per-row gradient back across columns.
            const Tensor &g = n.grad;
            const int64_t rows = g.dim(0);
            Tensor out({rows, f}, g.device());
            const float *pg = g.data();
            float *po = out.data();
            for (int64_t i = 0; i < rows; ++i)
                for (int64_t j = 0; j < f; ++j)
                    po[i * f + j] = pg[i];
            recordKernel("row_sum_bwd", 0.0,
                         2.0 * static_cast<double>(out.bytes()));
            n.inputs[0]->accumulateGrad(out);
        });
}

Var
sumAll(const Var &a)
{
    std::vector<int64_t> shape = a.value().shape();
    return Var::makeOp("sum_all", ops::sumAll(a.value()), {a},
        [shape](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            n.inputs[0]->accumulateGrad(
                Tensor::full(shape, n.grad.at(0), n.grad.device()));
        });
}

Var
meanAll(const Var &a)
{
    std::vector<int64_t> shape = a.value().shape();
    const float inv = a.numel() > 0
        ? 1.0f / static_cast<float>(a.numel()) : 0.0f;
    return Var::makeOp("mean_all", ops::meanAll(a.value()), {a},
        [shape, inv](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            n.inputs[0]->accumulateGrad(
                Tensor::full(shape, n.grad.at(0) * inv,
                             n.grad.device()));
        });
}

Var
logSoftmax(const Var &a)
{
    Tensor out = ops::logSoftmaxRows(a.value());
    Tensor oc = out;
    return Var::makeOp("log_softmax", std::move(out), {a},
        [oc](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            // dX = dY - softmax(x) * rowsum(dY)
            Tensor soft = ops::expT(oc);
            Tensor row = ops::sumCols(n.grad);
            Tensor g = ops::sub(n.grad, ops::mulCols(soft, row));
            n.inputs[0]->accumulateGrad(g);
        });
}

Var
l2NormalizeRows(const Var &a, float eps)
{
    Tensor av = a.value();
    Tensor norms = ops::rowNorms(av, eps);
    Tensor out = ops::divCols(av, norms);
    Tensor oc = out, nc = norms;
    return Var::makeOp("l2_normalize", std::move(out), {a},
        [oc, nc](Node &n) {
            if (!n.inputs[0]->requiresGrad)
                return;
            // dX = (dY - y * rowsum(dY ∘ y)) / norm
            Tensor dots = ops::sumCols(ops::mul(n.grad, oc));
            Tensor g = ops::sub(n.grad, ops::mulCols(oc, dots));
            n.inputs[0]->accumulateGrad(ops::divCols(g, nc));
        });
}

Var
dropout(const Var &a, float p, bool training, uint64_t seed)
{
    if (!training || p <= 0.0f)
        return a;
    Tensor mask;
    Tensor out = ops::dropout(a.value(), p, mask, seed);
    Tensor mc = mask;
    return Var::makeOp("dropout", std::move(out), {a},
        [mc](Node &n) {
            if (n.inputs[0]->requiresGrad)
                n.inputs[0]->accumulateGrad(ops::mul(n.grad, mc));
        });
}

} // namespace fn
} // namespace gnnperf
