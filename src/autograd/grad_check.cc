#include "autograd/grad_check.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gnnperf {
namespace autograd {

GradCheckResult
checkGradients(const std::function<Var()> &f, std::vector<Var> leaves,
               float eps, double tol)
{
    // Analytic gradients.
    for (auto &leaf : leaves)
        leaf.zeroGrad();
    Var loss = f();
    gnnperf_assert(loss.numel() == 1, "checkGradients: non-scalar loss");
    loss.backward();

    std::vector<Tensor> analytic;
    analytic.reserve(leaves.size());
    for (auto &leaf : leaves) {
        gnnperf_assert(leaf.requiresGrad(),
                       "checkGradients: leaf without requiresGrad");
        analytic.push_back(leaf.hasGrad()
            ? leaf.grad().clone()
            : Tensor::zeros(leaf.value().shape(),
                            leaf.value().device()));
    }

    GradCheckResult result;
    for (std::size_t li = 0; li < leaves.size(); ++li) {
        Tensor &v = leaves[li].valueMutable();
        for (int64_t i = 0; i < v.numel(); ++i) {
            const float orig = v.at(i);
            v.set(i, orig + eps);
            const double fp = f().item();
            v.set(i, orig - eps);
            const double fm = f().item();
            v.set(i, orig);
            const double numeric = (fp - fm) / (2.0 * eps);
            const double exact = analytic[li].at(i);
            const double abs_err = std::abs(exact - numeric);
            const double denom =
                std::max({std::abs(exact), std::abs(numeric), 1.0});
            result.maxAbsError = std::max(result.maxAbsError, abs_err);
            result.maxRelError =
                std::max(result.maxRelError, abs_err / denom);
        }
    }
    result.ok = result.maxRelError <= tol;
    return result;
}

} // namespace autograd
} // namespace gnnperf
