/**
 * @file
 * Numerical gradient checking for autograd ops and modules.
 *
 * Used exclusively by the test suite: given a scalar-valued function of
 * leaf variables, compares backpropagated gradients against central
 * finite differences.
 */

#ifndef GNNPERF_AUTOGRAD_GRAD_CHECK_HH
#define GNNPERF_AUTOGRAD_GRAD_CHECK_HH

#include <functional>
#include <vector>

#include "autograd/variable.hh"

namespace gnnperf {
namespace autograd {

/** Result of a gradient check. */
struct GradCheckResult
{
    double maxAbsError = 0.0;  ///< max |analytic − numeric|
    double maxRelError = 0.0;  ///< max error relative to magnitude
    bool ok = false;           ///< maxRelError within tolerance
};

/**
 * Check gradients of `f` with respect to `leaves`.
 *
 * `f` must re-evaluate the computation from the current leaf values and
 * return a scalar Var. Every leaf must have requiresGrad set.
 *
 * @param f scalar-valued forward function
 * @param leaves variables to differentiate with respect to
 * @param eps finite-difference step
 * @param tol relative tolerance for `ok`
 */
GradCheckResult checkGradients(const std::function<Var()> &f,
                               std::vector<Var> leaves,
                               float eps = 1e-3f, double tol = 5e-2);

} // namespace autograd
} // namespace gnnperf

#endif // GNNPERF_AUTOGRAD_GRAD_CHECK_HH
