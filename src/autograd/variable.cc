#include "autograd/variable.hh"

#include <unordered_set>

#include "common/logging.hh"
#include "ir/ir.hh"
#include "tensor/ops.hh"

namespace gnnperf {
namespace autograd {

bool GradMode::enabled_ = true;

void
Node::accumulateGrad(const Tensor &g)
{
    gnnperf_assert(g.sameShape(value),
                   "gradient shape ", g.describe(), " != value shape ",
                   value.describe(), " for op ", opName);
    if (!grad.defined()) {
        grad = g.clone();
    } else {
        ops::addInPlace(grad, g);
    }
}

Var::Var(Tensor value, bool requires_grad)
    : node_(std::make_shared<Node>())
{
    node_->value = std::move(value);
    node_->requiresGrad = requires_grad;
}

Var
Var::makeOp(const char *name, Tensor value, std::vector<Var> inputs,
            std::function<void(Node &)> backward_fn)
{
    bool any_grad = false;
    if (GradMode::enabled()) {
        for (const auto &in : inputs) {
            if (in.defined() && in.requiresGrad()) {
                any_grad = true;
                break;
            }
        }
    }
    if (!any_grad) {
        // Detached result: no tape edges, no closure retained.
        return Var(std::move(value), false);
    }
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requiresGrad = true;
    node->opName = name;
    node->backwardFn = std::move(backward_fn);
    node->inputs.reserve(inputs.size());
    for (auto &in : inputs)
        node->inputs.push_back(in.node());
    return Var(std::move(node));
}

Var
Var::makeOpRecorded(const char *name, int32_t ir_slot,
                    std::vector<Var> inputs,
                    std::function<void(Node &)> backward_fn)
{
    bool any_grad = false;
    if (GradMode::enabled()) {
        for (const auto &in : inputs) {
            if (in.defined() && in.requiresGrad()) {
                any_grad = true;
                break;
            }
        }
    }
    auto node = std::make_shared<Node>();
    node->irSlot = ir_slot;
    if (any_grad) {
        node->requiresGrad = true;
        node->opName = name;
        node->backwardFn = std::move(backward_fn);
        node->inputs.reserve(inputs.size());
        for (auto &in : inputs)
            node->inputs.push_back(in.node());
    }
    // Pruned results stay pending leaves: either way the flush delivers
    // the tensor through this sink before any backward runs.
    ir::bindSink(ir_slot, [node](Tensor t) {
        node->value = std::move(t);
        node->irSlot = -1;
    });
    return Var(std::move(node));
}

const Tensor &
Var::value() const
{
    gnnperf_assert(defined(), "value() on undefined Var");
    if (node_->irSlot >= 0) {
        ir::materializeAll();
        gnnperf_assert(node_->irSlot < 0,
                       "ir flush left op ", node_->opName, " pending");
    }
    return node_->value;
}

Tensor &
Var::valueMutable()
{
    gnnperf_assert(defined(), "valueMutable() on undefined Var");
    if (node_->irSlot >= 0) {
        ir::materializeAll();
        gnnperf_assert(node_->irSlot < 0,
                       "ir flush left op ", node_->opName, " pending");
    }
    return node_->value;
}

int64_t
Var::dim(int64_t i) const
{
    gnnperf_assert(defined(), "dim() on undefined Var");
    if (node_->irSlot >= 0) {
        const auto &shape = ir::shapeOf(node_->irSlot);
        gnnperf_assert(i >= 0 && i < static_cast<int64_t>(shape.size()),
                       "dim ", i, " out of range for pending op ",
                       node_->opName);
        return shape[static_cast<std::size_t>(i)];
    }
    return node_->value.dim(i);
}

int64_t
Var::rank() const
{
    gnnperf_assert(defined(), "rank() on undefined Var");
    if (node_->irSlot >= 0)
        return static_cast<int64_t>(ir::shapeOf(node_->irSlot).size());
    return node_->value.rank();
}

int64_t
Var::numel() const
{
    gnnperf_assert(defined(), "numel() on undefined Var");
    if (node_->irSlot >= 0) {
        int64_t n = 1;
        for (int64_t d : ir::shapeOf(node_->irSlot))
            n *= d;
        return n;
    }
    return node_->value.numel();
}

const Tensor &
Var::grad() const
{
    gnnperf_assert(defined() && node_->grad.defined(),
                   "grad() on Var without gradient");
    return node_->grad;
}

bool
Var::hasGrad() const
{
    return defined() && node_->grad.defined();
}

bool
Var::requiresGrad() const
{
    return defined() && node_->requiresGrad;
}

float
Var::item() const
{
    gnnperf_assert(numel() == 1, "item() on tensor with ", numel(),
                   " elements");
    return value().at(0);
}

void
Var::zeroGrad()
{
    if (defined())
        node_->grad = Tensor();
}

void
Var::backward()
{
    backward(Tensor::ones(value().shape(), value().device()));
}

void
Var::backward(const Tensor &seed)
{
    gnnperf_assert(defined(), "backward() on undefined Var");

    // Iterative post-order DFS to build a topological order.
    std::vector<Node *> order;
    std::unordered_set<Node *> visited;
    std::vector<std::pair<Node *, std::size_t>> stack;
    stack.emplace_back(node_.get(), 0);
    visited.insert(node_.get());
    while (!stack.empty()) {
        auto &[node, next] = stack.back();
        if (next < node->inputs.size()) {
            Node *child = node->inputs[next].get();
            ++next;
            if (child && child->requiresGrad &&
                visited.insert(child).second) {
                stack.emplace_back(child, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    node_->accumulateGrad(seed);

    // Reverse topological order: root first.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node *node = *it;
        if (node->backwardFn && node->grad.defined())
            node->backwardFn(*node);
    }
}

Var
Var::detach() const
{
    if (!defined())
        return Var();
    return Var(value(), false);
}

} // namespace autograd
} // namespace gnnperf
