/**
 * @file
 * Differentiable operations on Var.
 *
 * Each function computes its forward value with the tensor kernels in
 * tensor/ops.hh (which emit kernel trace records) and registers a
 * backward closure that computes input gradients with further real
 * kernels. Graph-structure ops (message passing, pooling, edge
 * softmax) are NOT here — they are backend-specific and live in
 * src/backends/{pyg,dgl}.
 */

#ifndef GNNPERF_AUTOGRAD_FUNCTIONS_HH
#define GNNPERF_AUTOGRAD_FUNCTIONS_HH

#include <cstdint>
#include <vector>

#include "autograd/variable.hh"

namespace gnnperf {
namespace fn {

// ----- linear algebra ------------------------------------------------------

/** c = a · b. */
Var matmul(const Var &a, const Var &b);

// ----- arithmetic ----------------------------------------------------------

Var add(const Var &a, const Var &b);
Var sub(const Var &a, const Var &b);
Var mul(const Var &a, const Var &b);

/** a / b elementwise (same shape). */
Var divElem(const Var &a, const Var &b);

/** x * s where s is a trainable scalar Var of shape [1] (GIN's ε). */
Var mulScalarVar(const Var &x, const Var &s);
Var scale(const Var &a, float s);
Var addScalar(const Var &a, float s);
Var neg(const Var &a);

/** x[N,F] + b[F] broadcast over rows (bias add). */
Var addBias(const Var &x, const Var &b);

/** x[N,F] - v[F] broadcast over rows. */
Var subRowVec(const Var &x, const Var &v);

/** x[N,F] * v[F] broadcast over rows. */
Var mulRowVec(const Var &x, const Var &v);

/** x[N,F] * s[N] broadcast over columns. */
Var mulCols(const Var &x, const Var &s);

/** x[N,F] / s[N] broadcast over columns. */
Var divCols(const Var &x, const Var &s);

// ----- activations -----------------------------------------------------------

Var relu(const Var &a);
Var sigmoid(const Var &a);
Var tanhV(const Var &a);
Var elu(const Var &a, float alpha = 1.0f);
Var leakyRelu(const Var &a, float slope = 0.2f);
Var expV(const Var &a);
Var logV(const Var &a);
Var square(const Var &a);

// ----- shaping ----------------------------------------------------------------

Var concatCols(const Var &a, const Var &b);
Var sliceCols(const Var &a, int64_t begin, int64_t end);
Var reshape(const Var &a, std::vector<int64_t> shape);

/** out[e] = x[idx[e]] (row gather; backward is scatter-add). */
Var gatherRows(const Var &x, const std::vector<int64_t> &idx);

/** out[idx[e]] += x[e] (row scatter-add; backward is gather). */
Var scatterAddRows(const Var &x, const std::vector<int64_t> &idx,
                   int64_t num_rows);

// ----- reductions / normalisation ------------------------------------------

/** Per-row sums: [N,F] → [N]. */
Var sumCols(const Var &a);

/** Sum / mean of all elements → scalar Var. */
Var sumAll(const Var &a);
Var meanAll(const Var &a);

/** Row-wise log-softmax. */
Var logSoftmax(const Var &a);

/** Row-wise L2 normalisation (GraphSAGE's projection to the unit ball). */
Var l2NormalizeRows(const Var &a, float eps = 1e-6f);

// ----- regularisation ---------------------------------------------------------

/**
 * Inverted dropout. Active only when `training`; a fresh mask is drawn
 * from `seed` each call.
 */
Var dropout(const Var &a, float p, bool training, uint64_t seed);

} // namespace fn
} // namespace gnnperf

#endif // GNNPERF_AUTOGRAD_FUNCTIONS_HH
