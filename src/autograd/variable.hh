/**
 * @file
 * Reverse-mode automatic differentiation.
 *
 * A Var wraps a shared tape Node holding a value, an optional gradient,
 * and a backward closure that distributes the node's gradient to its
 * inputs. Calling backward() on a scalar Var topologically sorts the
 * reachable graph and runs the closures in reverse order — the same
 * define-by-run scheme PyTorch uses, which both PyG and DGL rely on.
 *
 * Gradient computations execute real tensor kernels, so the Backward
 * phase of the trace (paper Figs. 1–3) is populated by genuinely
 * executed work.
 */

#ifndef GNNPERF_AUTOGRAD_VARIABLE_HH
#define GNNPERF_AUTOGRAD_VARIABLE_HH

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hh"

namespace gnnperf {
namespace autograd {

class Node;
using NodePtr = std::shared_ptr<Node>;

/** One tape entry. */
class Node
{
  public:
    Tensor value;
    Tensor grad;                 ///< lazily allocated on first use
    bool requiresGrad = false;
    const char *opName = "leaf";
    std::vector<NodePtr> inputs;

    /**
     * Pending slot in the recorded op graph (src/ir), or -1 once
     * `value` is concrete. The IR flush delivers the tensor through a
     * sink that resets this; any value access flushes first.
     */
    int32_t irSlot = -1;

    /** Distributes `grad` to the inputs; empty for leaves. */
    std::function<void(Node &)> backwardFn;

    /** grad += g, allocating a zero gradient on first accumulation. */
    void accumulateGrad(const Tensor &g);
};

/** Global gradient-recording switch (mirrors torch.no_grad()). */
class GradMode
{
  public:
    static bool enabled() { return enabled_; }
    static void set(bool enabled) { enabled_ = enabled; }

  private:
    static bool enabled_;
};

/** RAII guard that disables gradient recording in its scope. */
class NoGradGuard
{
  public:
    NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set(false); }
    ~NoGradGuard() { GradMode::set(prev_); }

    NoGradGuard(const NoGradGuard &) = delete;
    NoGradGuard &operator=(const NoGradGuard &) = delete;

  private:
    bool prev_;
};

/**
 * Handle to a tape node; the user-facing autograd type.
 */
class Var
{
  public:
    /** Undefined variable. */
    Var() = default;

    /** Leaf variable wrapping a tensor. */
    explicit Var(Tensor value, bool requires_grad = false);

    /**
     * Create an op result node. If gradient recording is off or no
     * input requires a gradient, the result is a detached leaf and
     * `backward_fn` is discarded (graph pruning).
     */
    static Var makeOp(const char *name, Tensor value,
                      std::vector<Var> inputs,
                      std::function<void(Node &)> backward_fn);

    /**
     * Create an op result node whose value is pending in the recorded
     * op graph (`ir_slot` from ir::record*). Applies the same graph
     * pruning as makeOp; either way the node's value arrives through
     * an ir sink at the next flush. The `backward_fn` must read its
     * operands from the tape (`n.inputs[k]->value`, `n.value`) — by
     * flush time those are concrete.
     */
    static Var makeOpRecorded(const char *name, int32_t ir_slot,
                              std::vector<Var> inputs,
                              std::function<void(Node &)> backward_fn);

    bool defined() const { return node_ != nullptr; }

    /** The concrete tensor; flushes the recorded graph if pending. */
    const Tensor &value() const;
    Tensor &valueMutable();
    const Tensor &grad() const;
    bool hasGrad() const;
    bool requiresGrad() const;

    /** Shape helpers; pending-aware (no flush). */
    int64_t dim(int64_t i) const;
    int64_t rank() const;
    int64_t numel() const;

    /** Scalar extraction (requires numel() == 1). */
    float item() const;

    /** Clear this node's gradient. */
    void zeroGrad();

    /**
     * Run reverse-mode differentiation from this node, seeding with
     * ones (the node is usually the scalar loss).
     */
    void backward();

    /** Same, with an explicit seed gradient. */
    void backward(const Tensor &seed);

    /** Detach from the tape (shares the value tensor). */
    Var detach() const;

    NodePtr node() const { return node_; }

  private:
    explicit Var(NodePtr node) : node_(std::move(node)) {}

    NodePtr node_;
};

} // namespace autograd

using autograd::NoGradGuard;
using autograd::Var;

} // namespace gnnperf

#endif // GNNPERF_AUTOGRAD_VARIABLE_HH
