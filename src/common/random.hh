/**
 * @file
 * Deterministic pseudo-random number generation for gnnperf.
 *
 * All stochastic components (dataset generators, weight initialisation,
 * dropout, data shuffling) draw from a Rng instance so that every
 * experiment is reproducible from a single seed. The generator is a
 * xoshiro256** seeded through SplitMix64, which is fast, has a long
 * period, and is identical across platforms (unlike std::mt19937
 * distribution adaptors, whose outputs are implementation-defined for
 * some distributions).
 */

#ifndef GNNPERF_COMMON_RANDOM_HH
#define GNNPERF_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace gnnperf {

/**
 * Deterministic random number generator with the distribution helpers
 * the rest of the library needs.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    uint64_t uniformInt(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal deviate (Box–Muller, cached pair). */
    double normal();

    /** Normal deviate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Poisson-distributed integer with given mean (Knuth / PTRS). */
    int64_t poisson(double mean);

    /**
     * Sample an index from an unnormalised weight vector.
     * @pre weights non-empty, all non-negative, at least one positive.
     */
    std::size_t categorical(const std::vector<double> &weights);

    /** Fisher–Yates shuffle of an index-like vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(static_cast<uint64_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** A derived generator for an independent stream. */
    Rng fork();

  private:
    uint64_t s_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace gnnperf

#endif // GNNPERF_COMMON_RANDOM_HH
