/**
 * @file
 * Small filesystem helpers shared by the artifact writers (table CSVs,
 * stats snapshots, roofline reports, bench baselines) and the diff
 * tool's loaders.
 */

#ifndef GNNPERF_COMMON_FS_HH
#define GNNPERF_COMMON_FS_HH

#include <string>
#include <vector>

namespace gnnperf {

/**
 * Create a directory (and any missing parents), mkdir -p style.
 * Returns true when the directory exists on exit.
 */
bool ensureDir(const std::string &path);

/**
 * Read a whole file into `out`. Returns false (leaving `out`
 * untouched) when the file cannot be opened or read.
 */
bool readFile(const std::string &path, std::string &out);

/**
 * Write a string to a file, fatal on any I/O error. The single
 * artifact writer behind every exporter (tables, stats, roofline,
 * bench baselines, traces): an artifact the user asked for that
 * cannot be written is a fatal misconfiguration, never a silent skip.
 */
void writeFile(const std::string &path, const std::string &content);

/**
 * Recursively list the regular files under `root` (sorted, paths
 * include `root` as prefix). Directories named in `skip_dirs` are not
 * descended into (e.g. "build", ".git"). Returns false when `root` is
 * not a readable directory.
 */
bool listFiles(const std::string &root,
               const std::vector<std::string> &skip_dirs,
               std::vector<std::string> &out);

} // namespace gnnperf

#endif // GNNPERF_COMMON_FS_HH
