#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/string_utils.hh"

namespace gnnperf {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    static const JsonValue null_value;
    const JsonValue *v = find(key);
    return v ? *v : null_value;
}

namespace {

/** Cursor over the input with error reporting. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = strprintf("%s at byte %zu", what.c_str(), pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail("invalid literal");
        pos += len;
        return true;
    }

    bool parseValue(JsonValue &out, int depth);

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape");
                }
                // UTF-8 encode the code point (surrogate pairs are
                // passed through as two 3-byte sequences; exporters
                // never emit them, so lossless handling is not worth
                // the complexity here).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (consume('-')) {}
        if (!(pos < text.size() && std::isdigit(
                  static_cast<unsigned char>(text[pos]))))
            return fail("invalid number");
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (consume('.')) {
            if (!(pos < text.size() && std::isdigit(
                      static_cast<unsigned char>(text[pos]))))
                return fail("invalid number fraction");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (!(pos < text.size() && std::isdigit(
                      static_cast<unsigned char>(text[pos]))))
                return fail("invalid number exponent");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        out.type = JsonValue::Type::Number;
        out.number = std::strtod(text.c_str() + start, nullptr);
        return true;
    }
};

constexpr int kMaxDepth = 64;

bool
Parser::parseValue(JsonValue &out, int depth)
{
    if (depth > kMaxDepth)
        return fail("nesting too deep");
    skipWs();
    if (pos >= text.size())
        return fail("unexpected end of input");
    switch (text[pos]) {
      case '{': {
        ++pos;
        out.type = JsonValue::Type::Object;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        out.type = JsonValue::Type::Array;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.array.push_back(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.type = JsonValue::Type::String;
        return parseString(out.str);
      case 't':
        out.type = JsonValue::Type::Bool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.type = JsonValue::Type::Bool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.type = JsonValue::Type::Null;
        return literal("null", 4);
      default:
        return parseNumber(out);
    }
}

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    Parser p{text, /*pos=*/0, /*error=*/{}};
    out = JsonValue{};
    bool ok = p.parseValue(out, 0);
    if (ok) {
        p.skipWs();
        if (p.pos != text.size())
            ok = p.fail("trailing garbage");
    }
    if (!ok && error)
        *error = p.error;
    return ok;
}

namespace {

void
serialize(const JsonValue &value, std::string &out)
{
    switch (value.type) {
      case JsonValue::Type::Null:
        out += "null";
        return;
      case JsonValue::Type::Bool:
        out += value.boolean ? "true" : "false";
        return;
      case JsonValue::Type::Number: {
        const double n = value.number;
        if (std::isfinite(n) && n == std::floor(n) &&
            std::abs(n) < 1e15) {
            out += strprintf("%.0f", n);
        } else {
            // %.17g round-trips every finite double.
            out += strprintf("%.17g", n);
        }
        return;
      }
      case JsonValue::Type::String:
        out += '"';
        out += jsonEscape(value.str);
        out += '"';
        return;
      case JsonValue::Type::Array:
        out += '[';
        for (std::size_t i = 0; i < value.array.size(); ++i) {
            if (i > 0)
                out += ',';
            serialize(value.array[i], out);
        }
        out += ']';
        return;
      case JsonValue::Type::Object:
        out += '{';
        for (std::size_t i = 0; i < value.object.size(); ++i) {
            if (i > 0)
                out += ',';
            out += '"';
            out += jsonEscape(value.object[i].first);
            out += "\":";
            serialize(value.object[i].second, out);
        }
        out += '}';
        return;
    }
}

} // namespace

std::string
jsonToString(const JsonValue &value)
{
    std::string out;
    serialize(value, out);
    return out;
}

} // namespace gnnperf
