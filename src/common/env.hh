/**
 * @file
 * Environment-variable driven scale knobs for the benchmark harnesses.
 *
 * All benches run a reduced default workload so that the full suite
 * finishes in minutes on one CPU core, and honour:
 *
 *   GNNPERF_SCALE=full    — paper-scale protocol
 *   GNNPERF_EPOCHS=N      — override epoch budget
 *   GNNPERF_SEEDS=N       — override number of seeds / repeats
 *   GNNPERF_FOLDS=N       — override number of CV folds
 *   GNNPERF_QUIET=1       — suppress inform() output (alias of
 *                           GNNPERF_LOG=warn)
 *   GNNPERF_LOG=debug|info|warn — minimum log level (common/logging)
 *   GNNPERF_LOG_TIME=1    — timestamp log lines
 *   GNNPERF_STATS=1       — enable stats sampling in the benches
 *                           (obs/stats.hh)
 *   GNNPERF_THREADS=N     — host thread-pool width for every kernel
 *                           (parallel/thread_pool.hh; default hardware
 *                           concurrency, 1 = exact serial path;
 *                           --threads on run_experiment wins)
 *   GNNPERF_TRACE=FILE|1  — record the merged execution trace
 *                           (obs/exec_trace.hh): FILE writes there;
 *                           1 writes <prefix>.trace.json into
 *                           GNNPERF_CSV_DIR (benches). run_experiment
 *                           honours it too; --trace-out wins when
 *                           both are set.
 *   GNNPERF_ALLOCATOR=caching|direct — Cuda device allocator
 *                           (device/allocator.hh); --allocator on
 *                           run_experiment wins.
 *   GNNPERF_CHECKS=0|1    — runtime switch for the correctness layer
 *                           (common/checks.hh): write-set race
 *                           checker, allocator redzones, registry
 *                           asserts. Wins over the -DGNNPERF_CHECKED
 *                           build default in both directions.
 *   GNNPERF_IR=eager|graph — op dispatch mode (ir/ir.hh): eager
 *                           executes kernels as fn:: ops are called
 *                           (bit-identical reference); graph records
 *                           the iteration into an op graph, fuses
 *                           gather→elementwise→scatter chains, plans
 *                           allocations, then replays. --ir on
 *                           run_experiment wins.
 *   GNNPERF_HWPROF=1|sw|0 — hardware-counter profiling tier
 *                           (obs/hwprof.hh): 1 probes
 *                           perf_event_open and falls back to the
 *                           software (rusage) tier when denied; sw
 *                           forces the software tier; 0/off disables.
 *                           --hwprof on run_experiment wins.
 */

#ifndef GNNPERF_COMMON_ENV_HH
#define GNNPERF_COMMON_ENV_HH

#include <string>

namespace gnnperf {

/** Read an integer env var with a default. */
int64_t envInt(const char *name, int64_t fallback);

/** Read a string env var with a default. */
std::string envString(const char *name, const std::string &fallback);

/** True when GNNPERF_SCALE=full is set. */
bool fullScale();

/** Epoch budget: `fallback_smoke` unless overridden or full scale. */
int64_t envEpochs(int64_t fallback_smoke, int64_t fallback_full);

/** Seed count for repeated runs. */
int64_t envSeeds(int64_t fallback_smoke, int64_t fallback_full);

/** Fold count for cross-validation. */
int64_t envFolds(int64_t fallback_smoke, int64_t fallback_full);

} // namespace gnnperf

#endif // GNNPERF_COMMON_ENV_HH
