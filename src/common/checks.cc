#include "common/checks.hh"

#include "common/env.hh"

namespace gnnperf {

namespace detail {

bool g_checksResolved = false;
bool g_checksEnabled = false;

bool
checksEnabledSlow()
{
#ifdef GNNPERF_CHECKED
    const int64_t fallback = 1;
#else
    const int64_t fallback = 0;
#endif
    g_checksEnabled = envInt("GNNPERF_CHECKS", fallback) != 0;
    g_checksResolved = true;
    return g_checksEnabled;
}

} // namespace detail

void
setChecksEnabled(bool on)
{
    detail::g_checksEnabled = on;
    detail::g_checksResolved = true;
}

} // namespace gnnperf
