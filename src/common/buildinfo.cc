/**
 * @file
 * Provenance implementation. The GNNPERF_GIT_DESCRIBE /
 * GNNPERF_BUILD_TYPE_STR / GNNPERF_SANITIZERS_STR macros are injected
 * on this translation unit only (src/CMakeLists.txt), so touching the
 * git state recompiles one small file, not the tree.
 */

#include "common/buildinfo.hh"

#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

namespace gnnperf {
namespace buildinfo {
namespace {

struct Facts {
    std::mutex mu;
    std::map<std::string, std::string> map;
};

Facts &facts() {
    static Facts f;
    return f;
}

/** Minimal JSON string escape; provenance values are ASCII-ish. */
std::string jsonEscape(const std::string &s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string gitDescribe() {
#ifdef GNNPERF_GIT_DESCRIBE
    return GNNPERF_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

std::string compilerId() {
    std::ostringstream os;
#if defined(__clang__)
    os << "clang " << __clang_major__ << '.' << __clang_minor__ << '.'
       << __clang_patchlevel__;
#elif defined(__GNUC__)
    os << "gcc " << __GNUC__ << '.' << __GNUC_MINOR__ << '.'
       << __GNUC_PATCHLEVEL__;
#else
    os << "unknown";
#endif
    return os.str();
}

std::string buildType() {
#ifdef GNNPERF_BUILD_TYPE_STR
    return GNNPERF_BUILD_TYPE_STR;
#else
    return "unknown";
#endif
}

std::string sanitizers() {
#ifdef GNNPERF_SANITIZERS_STR
    return GNNPERF_SANITIZERS_STR;
#else
    return "none";
#endif
}

void setRunFact(const std::string &key, const std::string &value) {
    Facts &f = facts();
    std::lock_guard<std::mutex> lock(f.mu);
    f.map[key] = value;
}

std::string runFact(const std::string &key,
                    const std::string &fallback) {
    Facts &f = facts();
    std::lock_guard<std::mutex> lock(f.mu);
    auto it = f.map.find(key);
    return it == f.map.end() ? fallback : it->second;
}

std::string metaJson() {
    std::ostringstream os;
    os << "{\"git\": \"" << jsonEscape(gitDescribe())
       << "\", \"compiler\": \"" << jsonEscape(compilerId())
       << "\", \"build_type\": \"" << jsonEscape(buildType())
       << "\", \"sanitizers\": \"" << jsonEscape(sanitizers())
       << "\"";
    Facts &f = facts();
    std::lock_guard<std::mutex> lock(f.mu);
    for (const auto &kv : f.map) {
        os << ", \"" << jsonEscape(kv.first) << "\": \""
           << jsonEscape(kv.second) << "\"";
    }
    os << "}";
    return os.str();
}

std::string versionLine(const char *tool) {
    std::ostringstream os;
    os << tool << " (gnnperf " << gitDescribe() << ", "
       << compilerId() << ", " << buildType() << ", sanitizers: "
       << sanitizers() << ")";
    return os.str();
}

} // namespace buildinfo
} // namespace gnnperf
