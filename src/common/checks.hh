/**
 * @file
 * The process-wide correctness-check level.
 *
 * The repo's headline determinism claim — bit-identical kernel output
 * at every thread width — rests on hand-written partitioning logic and
 * allocator pooling that nothing verifies structurally in release
 * builds. Checked builds turn those conventions into machine-checked
 * invariants:
 *
 *  - the parallel write-set checker (parallel/write_check.hh) records
 *    the index ranges every parallelFor chunk executes/writes and
 *    asserts disjointness and exact-once coverage after the barrier;
 *  - the allocator guard layer (device/allocator.hh) places redzone
 *    canaries around every MemoryBlock and poison-fills freed blocks,
 *    verified on free/reuse/trim/emptyCache;
 *  - the profiler asserts every recorded kernel name is registered in
 *    the cost model's kernel registry (device/kernel_registry.hh).
 *
 * Enabling: GNNPERF_CHECKS=1 in the environment, or configure with
 * -DGNNPERF_CHECKED=ON to make checked the build's default (the env
 * var still wins either way: GNNPERF_CHECKS=0 turns a checked build
 * off). When off, every check site is one branch on a plain bool —
 * stats, numerics and artifacts are byte-identical to a build without
 * the layer (see docs/CORRECTNESS.md).
 */

#ifndef GNNPERF_COMMON_CHECKS_HH
#define GNNPERF_COMMON_CHECKS_HH

namespace gnnperf {

namespace detail {
/** Resolved once from GNNPERF_CHECKS / GNNPERF_CHECKED, then cached. */
bool checksEnabledSlow();
extern bool g_checksResolved;
extern bool g_checksEnabled;
} // namespace detail

/** True when correctness checks are active (see file comment). */
inline bool
checksEnabled()
{
    if (!detail::g_checksResolved)
        return detail::checksEnabledSlow();
    return detail::g_checksEnabled;
}

/**
 * Override the check level at runtime (tests flip it to prove the
 * zero-overhead-when-off contract). Blocks allocated under one level
 * carry their guard geometry with them, so toggling mid-run is safe.
 */
void setChecksEnabled(bool on);

} // namespace gnnperf

#endif // GNNPERF_COMMON_CHECKS_HH
