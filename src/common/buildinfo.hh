/**
 * @file
 * Build/run provenance stamped into every JSON exporter.
 *
 * A perf artifact without provenance is not comparable: the same
 * config produces different numbers across compilers, build types and
 * sanitizer settings, and the committed baselines only make sense
 * against a known build. This module owns one shared `meta` block —
 * git describe, compiler id, build type, sanitizer flags — plus
 * runtime facts pushed by the subsystems that know them (thread-pool
 * width, active allocator), and renders it as a JSON object whose
 * values are all *strings*, so obs/diff.hh (which flattens numeric
 * leaves only) never gates on provenance.
 *
 * The compile-time fields arrive as -D definitions on buildinfo.cc
 * (see src/CMakeLists.txt); missing definitions degrade to "unknown",
 * never to a build error.
 */

#ifndef GNNPERF_COMMON_BUILDINFO_HH
#define GNNPERF_COMMON_BUILDINFO_HH

#include <string>

namespace gnnperf {
namespace buildinfo {

/** `git describe --always --dirty` at configure time ("unknown"). */
std::string gitDescribe();

/** Compiler family and version, e.g. "gcc 13.2.0". */
std::string compilerId();

/** CMAKE_BUILD_TYPE at configure time ("unknown"). */
std::string buildType();

/** Sanitizer summary: "none", "asan,ubsan" or "tsan". */
std::string sanitizers();

/**
 * Record a runtime fact (e.g. "threads" -> "4"). Subsystems push
 * facts when they change; later pushes overwrite. Thread-safe.
 */
void setRunFact(const std::string &key, const std::string &value);

/** Read back a runtime fact, or `fallback` when never pushed. */
std::string runFact(const std::string &key,
                    const std::string &fallback);

/**
 * The shared provenance block as a single-line JSON object. All
 * values are strings (diff-neutral by construction). Runtime facts
 * are appended after the build fields, key-sorted.
 */
std::string metaJson();

/** One-line `--version` output for a tool built from this tree. */
std::string versionLine(const char *tool);

} // namespace buildinfo
} // namespace gnnperf

#endif // GNNPERF_COMMON_BUILDINFO_HH
