#include "common/env.hh"

#include <cstdlib>

#include "common/string_utils.hh"

namespace gnnperf {

int64_t
envInt(const char *name, int64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoll(v, nullptr, 10);
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return (v && *v) ? std::string(v) : fallback;
}

bool
fullScale()
{
    return iequals(envString("GNNPERF_SCALE", "smoke"), "full");
}

int64_t
envEpochs(int64_t fallback_smoke, int64_t fallback_full)
{
    return envInt("GNNPERF_EPOCHS",
                  fullScale() ? fallback_full : fallback_smoke);
}

int64_t
envSeeds(int64_t fallback_smoke, int64_t fallback_full)
{
    return envInt("GNNPERF_SEEDS",
                  fullScale() ? fallback_full : fallback_smoke);
}

int64_t
envFolds(int64_t fallback_smoke, int64_t fallback_full)
{
    return envInt("GNNPERF_FOLDS",
                  fullScale() ? fallback_full : fallback_smoke);
}

} // namespace gnnperf
