#include "common/string_utils.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace gnnperf {

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
formatDuration(double seconds)
{
    if (seconds >= 600.0)  // the paper switches to hours around here
        return strprintf("%.2fhr", seconds / 3600.0);
    if (seconds >= 100.0)
        return strprintf("%.1fs", seconds);
    if (seconds >= 1.0)
        return strprintf("%.2fs", seconds);
    return strprintf("%.4fs", seconds);
}

std::string
formatBytes(std::size_t bytes)
{
    const double b = static_cast<double>(bytes);
    if (b >= 1024.0 * 1024.0 * 1024.0)
        return strprintf("%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
    if (b >= 1024.0 * 1024.0)
        return strprintf("%.1f MiB", b / (1024.0 * 1024.0));
    if (b >= 1024.0)
        return strprintf("%.1f KiB", b / 1024.0);
    return strprintf("%zu B", bytes);
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

} // namespace gnnperf
