/**
 * @file
 * ASCII table renderer used by the benchmark harnesses to print
 * paper-style tables (Table I/IV/V and the figure-series dumps).
 */

#ifndef GNNPERF_COMMON_TABLE_HH
#define GNNPERF_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace gnnperf {

/**
 * A simple text table: set a header row, append body rows, render.
 * Column widths are computed from content; all columns are left-aligned
 * except ones whose header starts with '>' (right-aligned, marker is
 * stripped for display).
 */
class TextTable
{
  public:
    /** Set the header row (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a body row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal separator after the current last row. */
    void addSeparator();

    /** Render the table to a string (trailing newline included). */
    std::string render() const;

    /** Number of body rows (separators excluded). */
    std::size_t rowCount() const { return numRows_; }

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> header_;
    std::vector<bool> rightAlign_;
    std::vector<Row> rows_;
    std::size_t numRows_ = 0;
};

} // namespace gnnperf

#endif // GNNPERF_COMMON_TABLE_HH
