/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * gnnperf's exporters (stats, roofline, bench baselines) only ever
 * *emit* JSON; the run-diff engine (obs/diff.hh) also needs to *load*
 * the artifacts of a previous run to compare against. This parser is
 * intentionally small: it accepts strict RFC 8259 JSON, preserves
 * object key order (so diffs render in emission order) and reports
 * errors with byte offsets instead of dying — a corrupt baseline file
 * must fail the diff tool gracefully, not crash it.
 */

#ifndef GNNPERF_COMMON_JSON_HH
#define GNNPERF_COMMON_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace gnnperf {

/** One JSON value; arrays/objects own their children by value. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Insertion-ordered key/value pairs (duplicate keys kept). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** First member with the given key, or nullptr. */
    const JsonValue *find(const std::string &key) const;

    /** Member lookup that returns a shared Null value when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Number accessor (0.0 for non-numbers). */
    double asNumber() const { return isNumber() ? number : 0.0; }
};

/**
 * Parse a complete JSON document. Returns false (and sets `error` to
 * a message with a byte offset, when non-null) on malformed input or
 * trailing garbage.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

/**
 * Serialize a value back to compact JSON (no whitespace). Numbers
 * print as integers when integral, shortest-round-trip otherwise;
 * object key order and duplicates are preserved, so
 * parse → serialize → parse is lossless. Used by gnnperf_trace to
 * re-emit merged trace documents.
 */
std::string jsonToString(const JsonValue &value);

} // namespace gnnperf

#endif // GNNPERF_COMMON_JSON_HH
