#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace gnnperf {

namespace {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    gnnperf_assert(n > 0, "uniformInt(0)");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (-n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    gnnperf_assert(lo <= hi, "uniformInt: lo > hi");
    return lo + static_cast<int64_t>(
        uniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

int64_t
Rng::poisson(double mean)
{
    gnnperf_assert(mean >= 0.0, "poisson: negative mean");
    if (mean < 30.0) {
        // Knuth's multiplicative method.
        double l = std::exp(-mean);
        int64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation for large means; adequate for workload
    // generation where only the distribution's shape matters.
    double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    gnnperf_assert(!weights.empty(), "categorical: empty weights");
    double total = 0.0;
    for (double w : weights) {
        gnnperf_assert(w >= 0.0, "categorical: negative weight");
        total += w;
    }
    gnnperf_assert(total > 0.0, "categorical: all-zero weights");
    double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace gnnperf
