#include "common/logging.hh"

#include <chrono>
#include <cstdio>

#include "common/env.hh"
#include "common/string_utils.hh"

namespace gnnperf {

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

LogLevel
initialLevel()
{
    if (envInt("GNNPERF_QUIET", 0) != 0)
        return LogLevel::Warn;
    const std::string name = envString("GNNPERF_LOG", "info");
    if (iequals(name, "debug"))
        return LogLevel::Debug;
    if (iequals(name, "warn"))
        return LogLevel::Warn;
    if (!iequals(name, "info")) {
        std::fprintf(stderr,
                     "[warn] GNNPERF_LOG=%s not one of debug|info|warn;"
                     " using info\n", name.c_str());
    }
    return LogLevel::Inform;
}

LogLevel g_minLevel = initialLevel();
bool g_timestamps = envInt("GNNPERF_LOG_TIME", 0) != 0;

const std::chrono::steady_clock::time_point g_start =
    std::chrono::steady_clock::now();

std::string
linePrefix(LogLevel level)
{
    std::string prefix;
    if (g_timestamps) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - g_start).count();
        prefix += strprintf("[%9.3f] ", elapsed);
    }
    prefix += strprintf("[%s] ", levelTag(level));
    return prefix;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_minLevel = level;
}

LogLevel
logLevel()
{
    return g_minLevel;
}

void
setLogTimestamps(bool on)
{
    g_timestamps = on;
}

bool
logTimestamps()
{
    return g_timestamps;
}

void
setVerbose(bool verbose)
{
    g_minLevel = verbose ? LogLevel::Inform : LogLevel::Warn;
}

bool
verbose()
{
    return g_minLevel <= LogLevel::Inform;
}

namespace detail {

void
log(LogLevel level, const std::string &msg)
{
    if (level < g_minLevel)
        return;
    std::fprintf(stderr, "%s%s\n", linePrefix(level).c_str(),
                 msg.c_str());
}

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%s%s:%d: %s\n", linePrefix(level).c_str(),
                 file, line, msg.c_str());
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace gnnperf
