#include "common/logging.hh"

#include <cstdio>

namespace gnnperf {

namespace {

bool g_verbose = true;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

namespace detail {

void
log(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Inform && !g_verbose)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg.c_str());
}

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", levelTag(level), file, line,
                 msg.c_str());
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace gnnperf
