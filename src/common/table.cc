#include "common/table.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/string_utils.hh"

namespace gnnperf {

void
TextTable::setHeader(std::vector<std::string> header)
{
    rightAlign_.clear();
    for (auto &h : header) {
        if (!h.empty() && h[0] == '>') {
            rightAlign_.push_back(true);
            h.erase(h.begin());
        } else {
            rightAlign_.push_back(false);
        }
    }
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    gnnperf_assert(row.size() == header_.size(),
                   "table row width ", row.size(), " != header width ",
                   header_.size());
    rows_.push_back(Row{false, std::move(row)});
    ++numRows_;
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto renderSeparator = [&] {
        std::string line = "+";
        for (std::size_t w : widths)
            line += std::string(w + 2, '-') + "+";
        return line + "\n";
    };
    auto renderCells = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string &cell = cells[c];
            line += ' ';
            line += rightAlign_[c] ? padLeft(cell, widths[c])
                                   : padRight(cell, widths[c]);
            line += " |";
        }
        return line + "\n";
    };

    std::string out = renderSeparator();
    out += renderCells(header_);
    out += renderSeparator();
    for (const auto &row : rows_) {
        out += row.separator ? renderSeparator() : renderCells(row.cells);
    }
    out += renderSeparator();
    return out;
}

} // namespace gnnperf
