/**
 * @file
 * Small string formatting helpers used by reports and benches.
 */

#ifndef GNNPERF_COMMON_STRING_UTILS_HH
#define GNNPERF_COMMON_STRING_UTILS_HH

#include <string>
#include <vector>

namespace gnnperf {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format seconds as "x.xxxx s" or "x.xx hr" like the paper's tables. */
std::string formatDuration(double seconds);

/** Format a byte count with a binary suffix (KiB/MiB/GiB). */
std::string formatBytes(std::size_t bytes);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Left/right padding to a fixed width. */
std::string padLeft(const std::string &s, std::size_t width);
std::string padRight(const std::string &s, std::size_t width);

/** Case-insensitive string equality (ASCII). */
bool iequals(const std::string &a, const std::string &b);

/**
 * Escape a string for embedding inside a JSON string literal: quote,
 * backslash and control characters become their \-escapes.
 */
std::string jsonEscape(const std::string &s);

/**
 * Escape a CSV field (RFC 4180): fields containing a comma, quote or
 * newline are wrapped in quotes with embedded quotes doubled.
 */
std::string csvEscape(const std::string &s);

} // namespace gnnperf

#endif // GNNPERF_COMMON_STRING_UTILS_HH
