/**
 * @file
 * Logging and error-handling primitives in the gem5 style.
 *
 * panic()  — an internal invariant was violated (a gnnperf bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is questionable but execution can continue.
 * inform() — status messages for the user.
 * debug()  — development chatter, off unless GNNPERF_LOG=debug.
 *
 * The minimum emitted level defaults to Inform and can be set at
 * runtime (setLogLevel) or from the environment: GNNPERF_LOG=
 * debug|info|warn (GNNPERF_QUIET=1 is an alias for warn). Set
 * GNNPERF_LOG_TIME=1 (or setLogTimestamps) to prefix each line with
 * seconds since process start.
 */

#ifndef GNNPERF_COMMON_LOGGING_HH
#define GNNPERF_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace gnnperf {

/** Severity of a log message, least severe first. */
enum class LogLevel { Debug, Inform, Warn, Fatal, Panic };

namespace detail {

/** Emit a formatted log line; terminates the process for Fatal/Panic. */
[[noreturn]] void logAndDie(LogLevel level, const char *file, int line,
                            const std::string &msg);

/** Emit a non-fatal log line. */
void log(LogLevel level, const std::string &msg);

/** Stream-compose a message from variadic arguments. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Minimum level that is emitted (default Inform, or GNNPERF_LOG). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Prefix log lines with seconds since process start. */
void setLogTimestamps(bool on);
bool logTimestamps();

/**
 * Whether inform() messages are printed (default true). Kept as a
 * compatibility shim over setLogLevel: verbose on == Inform,
 * verbose off == Warn.
 */
void setVerbose(bool verbose);
bool verbose();

} // namespace gnnperf

/** Abort: an internal invariant was violated. */
#define gnnperf_panic(...)                                                   \
    ::gnnperf::detail::logAndDie(::gnnperf::LogLevel::Panic, __FILE__,       \
        __LINE__, ::gnnperf::detail::composeMessage(__VA_ARGS__))

/** Exit(1): the user requested an impossible configuration. */
#define gnnperf_fatal(...)                                                   \
    ::gnnperf::detail::logAndDie(::gnnperf::LogLevel::Fatal, __FILE__,       \
        __LINE__, ::gnnperf::detail::composeMessage(__VA_ARGS__))

/** Warn but continue. */
#define gnnperf_warn(...)                                                    \
    ::gnnperf::detail::log(::gnnperf::LogLevel::Warn,                        \
        ::gnnperf::detail::composeMessage(__VA_ARGS__))

/** Informational message (suppressed when verbosity is off). */
#define gnnperf_inform(...)                                                  \
    ::gnnperf::detail::log(::gnnperf::LogLevel::Inform,                      \
        ::gnnperf::detail::composeMessage(__VA_ARGS__))

/**
 * Debug chatter (suppressed unless GNNPERF_LOG=debug). The level is
 * checked before the message is composed, so disabled debug lines
 * only cost the comparison.
 */
#define gnnperf_debug(...)                                                   \
    do {                                                                     \
        if (::gnnperf::logLevel() <= ::gnnperf::LogLevel::Debug) {           \
            ::gnnperf::detail::log(::gnnperf::LogLevel::Debug,               \
                ::gnnperf::detail::composeMessage(__VA_ARGS__));             \
        }                                                                    \
    } while (false)

/** Cheap always-on invariant check with a message. */
#define gnnperf_assert(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            gnnperf_panic("assertion failed: " #cond " — ",                  \
                          ::gnnperf::detail::composeMessage(__VA_ARGS__));   \
        }                                                                    \
    } while (false)

#endif // GNNPERF_COMMON_LOGGING_HH
