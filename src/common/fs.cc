#include "common/fs.hh"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace gnnperf {

namespace {

bool
isDir(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace

bool
ensureDir(const std::string &path)
{
    if (path.empty() || isDir(path))
        return !path.empty();
    // Create parents first: walk the path, making each prefix.
    for (std::size_t pos = 1; pos < path.size(); ++pos) {
        if (path[pos] != '/')
            continue;
        const std::string prefix = path.substr(0, pos);
        if (!isDir(prefix) &&
            ::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        return false;
    return isDir(path);
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream file(path, std::ios::binary);
    if (!file)
        gnnperf_fatal("cannot open ", path, " for writing");
    file << content;
    if (!file)
        gnnperf_fatal("write to ", path, " failed");
}

namespace {

bool
walkDir(const std::string &dir,
        const std::vector<std::string> &skip_dirs,
        std::vector<std::string> &out)
{
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return false;
    while (const dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        const std::string path = dir + "/" + name;
        struct stat st{};
        if (::lstat(path.c_str(), &st) != 0)
            continue;
        if (S_ISDIR(st.st_mode)) {
            if (std::find(skip_dirs.begin(), skip_dirs.end(), name) ==
                skip_dirs.end())
                walkDir(path, skip_dirs, out);
        } else if (S_ISREG(st.st_mode)) {
            out.push_back(path);
        }
    }
    ::closedir(d);
    return true;
}

} // namespace

bool
listFiles(const std::string &root,
          const std::vector<std::string> &skip_dirs,
          std::vector<std::string> &out)
{
    if (!isDir(root))
        return false;
    if (!walkDir(root, skip_dirs, out))
        return false;
    std::sort(out.begin(), out.end());
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return false;
    out = buf.str();
    return true;
}

} // namespace gnnperf
