/**
 * @file
 * Edge-softmax tests, including the key cross-framework property:
 * DGL's fused kernel must agree with PyG's scatter composition.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/functions.hh"
#include "backends/backend.hh"
#include "common/random.hh"
#include "graph/edge_softmax.hh"
#include "tensor/init.hh"

using namespace gnnperf;
using namespace gnnperf::graphops;

namespace {

BatchedGraph
starBatch()
{
    // Star: edges 1→0, 2→0, 3→0 plus 0→1 — mixed in-degrees.
    Graph g;
    g.numNodes = 4;
    g.x = Tensor::zeros({4, 1}, DeviceKind::Host);
    g.addEdge(1, 0);
    g.addEdge(2, 0);
    g.addEdge(3, 0);
    g.addEdge(0, 1);
    g.graphLabel = 0;
    std::vector<const Graph *> members{&g};
    return getBackend(FrameworkKind::DGL).collate(members);
}

} // namespace

TEST(EdgeSoftmax, NormalisesPerDestination)
{
    BatchedGraph batch = starBatch();
    Rng rng(1);
    Tensor logits = init::normal({4, 2}, 0.0f, 1.0f, rng);
    Tensor alpha = edgeSoftmaxFused(*batch.inIndex, logits);
    // Edges into node 0 are COO ids 0,1,2; into node 1 is id 3.
    for (int64_t h = 0; h < 2; ++h) {
        float sum0 = alpha.at(0, h) + alpha.at(1, h) + alpha.at(2, h);
        EXPECT_NEAR(sum0, 1.0f, 1e-5);
        EXPECT_NEAR(alpha.at(3, h), 1.0f, 1e-6);  // single edge
    }
}

TEST(EdgeSoftmax, InvariantToLogitShift)
{
    BatchedGraph batch = starBatch();
    Rng rng(2);
    Tensor logits = init::normal({4, 1}, 0.0f, 1.0f, rng);
    Tensor shifted = logits.clone();
    for (int64_t i = 0; i < shifted.numel(); ++i)
        shifted.set(i, shifted.at(i) + 100.0f);
    Tensor a = edgeSoftmaxFused(*batch.inIndex, logits);
    Tensor b = edgeSoftmaxFused(*batch.inIndex, shifted);
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_NEAR(a.at(i), b.at(i), 1e-5);
}

TEST(EdgeSoftmax, FusedMatchesPygComposition)
{
    BatchedGraph dgl_batch = starBatch();
    Graph g;
    g.numNodes = 4;
    g.x = Tensor::zeros({4, 1}, DeviceKind::Host);
    g.addEdge(1, 0);
    g.addEdge(2, 0);
    g.addEdge(3, 0);
    g.addEdge(0, 1);
    g.graphLabel = 0;
    std::vector<const Graph *> members{&g};
    BatchedGraph pyg_batch =
        getBackend(FrameworkKind::PyG).collate(members);

    Rng rng(3);
    Tensor logits = init::normal({4, 3}, 0.0f, 2.0f, rng);
    Var dgl_alpha = getBackend(FrameworkKind::DGL)
                        .edgeSoftmax(dgl_batch, Var(logits));
    Var pyg_alpha = getBackend(FrameworkKind::PyG)
                        .edgeSoftmax(pyg_batch, Var(logits));
    for (int64_t i = 0; i < logits.numel(); ++i)
        EXPECT_NEAR(dgl_alpha.value().at(i), pyg_alpha.value().at(i),
                    1e-5);
}

TEST(EdgeSoftmax, FusedBackwardMatchesAutogradComposition)
{
    BatchedGraph batch = starBatch();
    Rng rng(4);
    Tensor logits = init::normal({4, 2}, 0.0f, 1.0f, rng);
    Tensor upstream = init::normal({4, 2}, 0.0f, 1.0f, rng);

    // Fused backward.
    Tensor alpha = edgeSoftmaxFused(*batch.inIndex, logits);
    Tensor fused = edgeSoftmaxBackwardFused(*batch.inIndex, alpha,
                                            upstream);

    // Autograd through the DGL wrapper.
    Var logits_v(logits, /*requires_grad=*/true);
    Var alpha_v = getBackend(FrameworkKind::DGL)
                      .edgeSoftmax(batch, logits_v);
    alpha_v.backward(upstream);
    for (int64_t i = 0; i < fused.numel(); ++i)
        EXPECT_NEAR(fused.at(i), logits_v.grad().at(i), 1e-5);
}

TEST(EdgeSoftmax, GradSumsToZeroPerDestination)
{
    // Softmax gradients along each softmax group sum to zero when the
    // upstream gradient is constant within the group.
    BatchedGraph batch = starBatch();
    Rng rng(5);
    Tensor logits = init::normal({4, 1}, 0.0f, 1.0f, rng);
    Tensor alpha = edgeSoftmaxFused(*batch.inIndex, logits);
    Tensor upstream = Tensor::ones({4, 1});
    Tensor grad = edgeSoftmaxBackwardFused(*batch.inIndex, alpha,
                                           upstream);
    float sum0 = grad.at(0, 0) + grad.at(1, 0) + grad.at(2, 0);
    EXPECT_NEAR(sum0, 0.0f, 1e-5);
    EXPECT_NEAR(grad.at(3, 0), 0.0f, 1e-6);
}
