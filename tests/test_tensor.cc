/**
 * @file
 * Tensor and elementwise-op tests: construction, shape checks, device
 * accounting hooks, and numerical correctness against hand-computed
 * values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "device/allocator.hh"
#include "device/device.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

using namespace gnnperf;

TEST(Tensor, ConstructionAndShape)
{
    Tensor t({3, 4});
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.dim(0), 3);
    EXPECT_EQ(t.dim(1), 4);
    EXPECT_EQ(t.numel(), 12);
    EXPECT_EQ(t.bytes(), 48u);
    EXPECT_TRUE(t.defined());
}

TEST(Tensor, UndefinedByDefault)
{
    Tensor t;
    EXPECT_FALSE(t.defined());
    EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, ZerosOnesFull)
{
    Tensor z = Tensor::zeros({2, 2});
    Tensor o = Tensor::ones({2, 2});
    Tensor f = Tensor::full({2, 2}, 3.5f);
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(z.at(i), 0.0f);
        EXPECT_EQ(o.at(i), 1.0f);
        EXPECT_EQ(f.at(i), 3.5f);
    }
}

TEST(Tensor, FromVectorAndAt)
{
    Tensor t = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {2, 3});
    EXPECT_EQ(t.at(0, 0), 1.0f);
    EXPECT_EQ(t.at(1, 2), 6.0f);
    t.set(1, 2, 9.0f);
    EXPECT_EQ(t.at(1, 2), 9.0f);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor a = Tensor::ones({2, 2});
    Tensor b = a.clone();
    b.set(0, 5.0f);
    EXPECT_EQ(a.at(0), 1.0f);
    EXPECT_EQ(b.at(0), 5.0f);
}

TEST(Tensor, ReshapeSharesStorage)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, {2, 2});
    Tensor b = a.reshape({4});
    b.set(3, 9.0f);
    EXPECT_EQ(a.at(1, 1), 9.0f);
}

TEST(Tensor, CudaAllocationTracked)
{
    auto &dm = DeviceManager::instance();
    const std::size_t before = dm.cudaCurrent();
    {
        Tensor t({100, 10}, DeviceKind::Cuda);
        EXPECT_EQ(dm.cudaCurrent(), before + 4000);
    }
    EXPECT_EQ(dm.cudaCurrent(), before);
}

TEST(Tensor, PeakTracksHighWater)
{
    auto &dm = DeviceManager::instance();
    dm.resetCudaPeak();
    const std::size_t base = dm.cudaPeak();
    {
        Tensor a({1000}, DeviceKind::Cuda);
        Tensor b({1000}, DeviceKind::Cuda);
        EXPECT_GE(dm.cudaPeak(), base + 8000);
    }
    EXPECT_GE(dm.cudaPeak(), base + 8000);  // peak survives frees
}

namespace {

/** Switch both devices to `kind` for one test, then restore. */
class AllocatorGuard
{
  public:
    explicit AllocatorGuard(AllocatorKind kind)
        : saved_(DeviceManager::instance().allocatorKind(
              DeviceKind::Cuda))
    {
        DeviceManager::instance().setAllocator(kind);
    }
    ~AllocatorGuard() { DeviceManager::instance().setAllocator(saved_); }

  private:
    AllocatorKind saved_;
};

} // namespace

TEST(TensorAliasing, CloneAllocatesFreshBlock)
{
    AllocatorGuard guard(AllocatorKind::Caching);
    Tensor a = Tensor::ones({16, 16});
    Tensor b = a.clone();
    EXPECT_NE(a.data(), b.data());
}

TEST(TensorAliasing, ReshapeSharesBlock)
{
    AllocatorGuard guard(AllocatorKind::Caching);
    Tensor a = Tensor::ones({4, 4});
    Tensor v = a.reshape({16});
    EXPECT_EQ(a.data(), v.data());
}

TEST(TensorAliasing, DyingViewDoesNotReturnLiveBlockToPool)
{
    AllocatorGuard guard(AllocatorKind::Caching);
    auto &dm = DeviceManager::instance();
    dm.emptyCaches();
    Tensor a = Tensor::ones({64, 64});
    {
        Tensor view = a.reshape({4096});
        EXPECT_EQ(view.data(), a.data());
    }
    // The view died but `a` still holds the storage: a same-size
    // allocation must come from fresh memory, not a's block.
    Tensor c({64, 64});
    EXPECT_NE(c.data(), a.data());
    EXPECT_EQ(a.at(0), 1.0f); // a's contents untouched
}

TEST(TensorAliasing, BlockReturnsToPoolOnlyAfterLastAliasDies)
{
    AllocatorGuard guard(AllocatorKind::Caching);
    auto &dm = DeviceManager::instance();
    dm.emptyCaches();
    const std::size_t hits0 =
        dm.stats(DeviceKind::Cuda).cacheHits;
    const float *old_ptr = nullptr;
    {
        Tensor a = Tensor::ones({32, 32});
        Tensor view = a.reshape({1024});
        old_ptr = a.data();
    }
    // Both aliases are gone: the block is back in the pool and a
    // same-size allocation reuses it.
    Tensor b({32, 32});
    EXPECT_EQ(b.data(), old_ptr);
    EXPECT_GT(dm.stats(DeviceKind::Cuda).cacheHits, hits0);
}

TEST(Tensor, HostNotCountedAsCuda)
{
    auto &dm = DeviceManager::instance();
    const std::size_t before = dm.cudaCurrent();
    Tensor t({64, 64}, DeviceKind::Host);
    EXPECT_EQ(dm.cudaCurrent(), before);
}

TEST(Tensor, ToDeviceCopies)
{
    Tensor h = Tensor::fromVector({1, 2, 3}, {3}, DeviceKind::Host);
    Tensor d = h.to(DeviceKind::Cuda);
    EXPECT_EQ(d.device(), DeviceKind::Cuda);
    EXPECT_EQ(d.at(2), 3.0f);
    // Same-device to() is a cheap shared copy.
    Tensor d2 = d.to(DeviceKind::Cuda);
    d2.set(0, 7.0f);
    EXPECT_EQ(d.at(0), 7.0f);
}

TEST(Ops, AddSubMulDiv)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, {2, 2});
    Tensor b = Tensor::fromVector({4, 3, 2, 1}, {2, 2});
    EXPECT_EQ(ops::add(a, b).at(0), 5.0f);
    EXPECT_EQ(ops::sub(a, b).at(3), 3.0f);
    EXPECT_EQ(ops::mul(a, b).at(1), 6.0f);
    EXPECT_EQ(ops::div(a, b).at(2), 1.5f);
}

TEST(Ops, AddRowsBroadcastsBias)
{
    Tensor x = Tensor::fromVector({1, 2, 3, 4}, {2, 2});
    Tensor b = Tensor::fromVector({10, 20}, {2});
    Tensor y = ops::addRows(x, b);
    EXPECT_EQ(y.at(0, 0), 11.0f);
    EXPECT_EQ(y.at(1, 1), 24.0f);
}

TEST(Ops, MulColsAndDivCols)
{
    Tensor x = Tensor::fromVector({1, 2, 3, 4}, {2, 2});
    Tensor s = Tensor::fromVector({2, 4}, {2});
    Tensor m = ops::mulCols(x, s);
    EXPECT_EQ(m.at(0, 1), 4.0f);
    EXPECT_EQ(m.at(1, 0), 12.0f);
    Tensor d = ops::divCols(x, s);
    EXPECT_FLOAT_EQ(d.at(1, 1), 1.0f);
}

TEST(Ops, InPlaceOps)
{
    Tensor a = Tensor::fromVector({1, 2}, {2});
    Tensor b = Tensor::fromVector({3, 4}, {2});
    ops::addInPlace(a, b);
    EXPECT_EQ(a.at(1), 6.0f);
    ops::addScaledInPlace(a, b, -2.0f);
    EXPECT_EQ(a.at(0), -2.0f);
}

TEST(Ops, Activations)
{
    Tensor x = Tensor::fromVector({-1.0f, 0.0f, 2.0f}, {3});
    EXPECT_EQ(ops::relu(x).at(0), 0.0f);
    EXPECT_EQ(ops::relu(x).at(2), 2.0f);
    EXPECT_NEAR(ops::sigmoid(x).at(2), 1.0 / (1.0 + std::exp(-2.0)),
                1e-6);
    EXPECT_NEAR(ops::tanhT(x).at(0), std::tanh(-1.0), 1e-6);
    EXPECT_NEAR(ops::elu(x).at(0), std::exp(-1.0) - 1.0, 1e-6);
    EXPECT_FLOAT_EQ(ops::leakyRelu(x, 0.1f).at(0), -0.1f);
    EXPECT_FLOAT_EQ(ops::leakyRelu(x, 0.1f).at(2), 2.0f);
}

TEST(Ops, ExpLogSqrtSquareReciprocal)
{
    Tensor x = Tensor::fromVector({1.0f, 4.0f}, {2});
    EXPECT_NEAR(ops::expT(x).at(0), std::exp(1.0), 1e-5);
    EXPECT_NEAR(ops::logT(x).at(1), std::log(4.0), 1e-6);
    EXPECT_FLOAT_EQ(ops::sqrtT(x).at(1), 2.0f);
    EXPECT_FLOAT_EQ(ops::square(x).at(1), 16.0f);
    EXPECT_FLOAT_EQ(ops::reciprocal(x).at(1), 0.25f);
}

TEST(Ops, Reductions)
{
    Tensor x = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {2, 3});
    Tensor cols = ops::sumRows(x);  // per-column sums
    EXPECT_EQ(cols.at(0), 5.0f);
    EXPECT_EQ(cols.at(2), 9.0f);
    Tensor rows = ops::sumCols(x);  // per-row sums
    EXPECT_EQ(rows.at(0), 6.0f);
    EXPECT_EQ(rows.at(1), 15.0f);
    EXPECT_FLOAT_EQ(ops::sumAll(x).at(0), 21.0f);
    EXPECT_FLOAT_EQ(ops::meanAll(x).at(0), 3.5f);
    Tensor mean = ops::meanRows(x);
    EXPECT_FLOAT_EQ(mean.at(1), 3.5f);
    Tensor var = ops::varRows(x, mean);
    EXPECT_FLOAT_EQ(var.at(0), 2.25f);  // values {1,4}
}

TEST(Ops, ArgmaxRows)
{
    Tensor x = Tensor::fromVector({1, 9, 2, 8, 3, 4}, {2, 3});
    auto arg = ops::argmaxRows(x);
    EXPECT_EQ(arg[0], 1);
    EXPECT_EQ(arg[1], 0);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Tensor x = Tensor::fromVector({1, 2, 3, 100, 100, 100}, {2, 3});
    Tensor s = ops::softmaxRows(x);
    for (int64_t i = 0; i < 2; ++i) {
        float sum = s.at(i, 0) + s.at(i, 1) + s.at(i, 2);
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
    EXPECT_NEAR(s.at(1, 0), 1.0f / 3.0f, 1e-5);
    EXPECT_GT(s.at(0, 2), s.at(0, 0));
}

TEST(Ops, LogSoftmaxMatchesSoftmax)
{
    Tensor x = Tensor::fromVector({0.5f, -1.0f, 2.0f}, {1, 3});
    Tensor ls = ops::logSoftmaxRows(x);
    Tensor s = ops::softmaxRows(x);
    for (int64_t j = 0; j < 3; ++j)
        EXPECT_NEAR(std::exp(ls.at(0, j)), s.at(0, j), 1e-5);
}

TEST(Ops, ConcatSliceTranspose)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, {2, 2});
    Tensor b = Tensor::fromVector({5, 6}, {2, 1});
    Tensor c = ops::concatCols(a, b);
    EXPECT_EQ(c.dim(1), 3);
    EXPECT_EQ(c.at(0, 2), 5.0f);
    Tensor s = ops::sliceCols(c, 1, 3);
    EXPECT_EQ(s.at(1, 0), 4.0f);
    Tensor r = ops::sliceRows(a, 1, 2);
    EXPECT_EQ(r.at(0, 1), 4.0f);
    Tensor t = ops::transpose(a);
    EXPECT_EQ(t.at(0, 1), 3.0f);
}

TEST(Ops, GatherAndScatterAddRows)
{
    Tensor x = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {3, 2});
    std::vector<int64_t> idx{2, 0, 2};
    Tensor g = ops::gatherRows(x, idx);
    EXPECT_EQ(g.at(0, 0), 5.0f);
    EXPECT_EQ(g.at(1, 1), 2.0f);
    Tensor s = ops::scatterAddRows(g, idx, 3);
    EXPECT_EQ(s.at(0, 0), 1.0f);   // from idx 1
    EXPECT_EQ(s.at(2, 0), 10.0f);  // 5+5
    EXPECT_EQ(s.at(1, 0), 0.0f);   // untouched
}

TEST(Ops, L2NormalizeRows)
{
    Tensor x = Tensor::fromVector({3, 4, 0, 0}, {2, 2});
    Tensor n = ops::l2NormalizeRows(x);
    EXPECT_NEAR(n.at(0, 0), 0.6f, 1e-5);
    EXPECT_NEAR(n.at(0, 1), 0.8f, 1e-5);
    EXPECT_EQ(n.at(1, 0), 0.0f);  // zero row stays finite
}

TEST(Ops, DropoutMaskAndScale)
{
    Tensor x = Tensor::ones({1000});
    Tensor mask;
    Tensor y = ops::dropout(x, 0.5f, mask, 42);
    int64_t kept = 0;
    for (int64_t i = 0; i < 1000; ++i) {
        if (y.at(i) != 0.0f) {
            EXPECT_FLOAT_EQ(y.at(i), 2.0f);  // inverted scaling
            ++kept;
        }
    }
    EXPECT_NEAR(static_cast<double>(kept), 500.0, 60.0);
}

TEST(Ops, MaximumAndAllFinite)
{
    Tensor a = Tensor::fromVector({1, 5}, {2});
    Tensor b = Tensor::fromVector({3, 2}, {2});
    Tensor m = ops::maximum(a, b);
    EXPECT_EQ(m.at(0), 3.0f);
    EXPECT_EQ(m.at(1), 5.0f);
    EXPECT_TRUE(ops::allFinite(m));
    Tensor bad = Tensor::fromVector({1.0f, INFINITY}, {2});
    EXPECT_FALSE(ops::allFinite(bad));
}
