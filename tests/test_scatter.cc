/**
 * @file
 * Scatter kernel tests (the PyG-side primitives).
 */

#include <gtest/gtest.h>

#include "graph/scatter.hh"
#include "tensor/ops.hh"

using namespace gnnperf;
using namespace gnnperf::graphops;

TEST(Scatter, IndexCounts)
{
    Tensor counts = indexCounts({0, 2, 2, 2}, 4);
    EXPECT_FLOAT_EQ(counts.at(0), 1.0f);
    EXPECT_FLOAT_EQ(counts.at(1), 0.0f);
    EXPECT_FLOAT_EQ(counts.at(2), 3.0f);
    EXPECT_FLOAT_EQ(counts.at(3), 0.0f);
}

TEST(Scatter, MeanAveragesContributions)
{
    Tensor src = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {3, 2});
    Tensor out = scatterMeanRows(src, {1, 1, 0}, 2);
    EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 2.0f);  // (1+3)/2
    EXPECT_FLOAT_EQ(out.at(1, 1), 3.0f);  // (2+4)/2
}

TEST(Scatter, MeanEmptyRowsAreZero)
{
    Tensor src = Tensor::ones({1, 2});
    Tensor out = scatterMeanRows(src, {2}, 4);
    EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out.at(2, 0), 1.0f);
}

TEST(Scatter, MaxPicksWinnersAndArgmax)
{
    Tensor src = Tensor::fromVector({1, 9, 5, 2, 3, 4}, {3, 2});
    std::vector<int64_t> argmax;
    Tensor out = scatterMaxRows(src, {0, 0, 0}, 1, argmax);
    EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 9.0f);
    EXPECT_EQ(argmax[0], 1);  // row 1 wins column 0
    EXPECT_EQ(argmax[1], 0);  // row 0 wins column 1
}

TEST(Scatter, MaxEmptyRowsZeroWithNegInputs)
{
    Tensor src = Tensor::full({2, 1}, -5.0f);
    std::vector<int64_t> argmax;
    Tensor out = scatterMaxRows(src, {0, 0}, 3, argmax);
    EXPECT_FLOAT_EQ(out.at(0, 0), -5.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);
    EXPECT_EQ(argmax[1], -1);
}

TEST(Scatter, MaxBackwardRoutesToWinners)
{
    Tensor src = Tensor::fromVector({1, 9, 5, 2}, {2, 2});
    std::vector<int64_t> argmax;
    scatterMaxRows(src, {0, 0}, 1, argmax);
    Tensor grad = Tensor::fromVector({10, 20}, {1, 2});
    Tensor back = scatterMaxBackward(grad, argmax, 2);
    EXPECT_FLOAT_EQ(back.at(0, 0), 0.0f);   // row 0 lost col 0
    EXPECT_FLOAT_EQ(back.at(0, 1), 20.0f);  // row 0 won col 1
    EXPECT_FLOAT_EQ(back.at(1, 0), 10.0f);  // row 1 won col 0
    EXPECT_FLOAT_EQ(back.at(1, 1), 0.0f);
}

TEST(Scatter, AddMatchesManualSum)
{
    Tensor src = Tensor::fromVector({1, 2, 3, 4, 5, 6}, {3, 2});
    Tensor out = ops::scatterAddRows(src, {1, 1, 1}, 2);
    EXPECT_FLOAT_EQ(out.at(1, 0), 9.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 12.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
}
