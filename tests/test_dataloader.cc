/**
 * @file
 * DataLoader tests: batching arithmetic, shuffling, phase tagging.
 */

#include <gtest/gtest.h>

#include <set>

#include "data/dataloader.hh"
#include "data/tu_dataset.hh"
#include "device/profiler.hh"

using namespace gnnperf;

namespace {

GraphDataset &
smallDataset()
{
    static GraphDataset ds = makeEnzymes(3, 30);
    return ds;
}

std::vector<int64_t>
allIndices(const GraphDataset &ds)
{
    std::vector<int64_t> idx(ds.graphs.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<int64_t>(i);
    return idx;
}

} // namespace

TEST(DataLoader, BatchCountCeils)
{
    DataLoader loader(smallDataset(), allIndices(smallDataset()), 8,
                      getBackend(FrameworkKind::PyG), false, 1);
    EXPECT_EQ(loader.numBatches(), 4);  // 30/8 → 4 batches
    EXPECT_EQ(loader.sampleCount(), 30);
}

TEST(DataLoader, IteratesAllSamplesOnce)
{
    DataLoader loader(smallDataset(), allIndices(smallDataset()), 7,
                      getBackend(FrameworkKind::PyG), false, 1);
    loader.startEpoch();
    BatchedGraph batch;
    int64_t graphs = 0, batches = 0;
    while (loader.next(batch)) {
        graphs += batch.numGraphs;
        ++batches;
        EXPECT_EQ(batch.graphPtr.back(), batch.numNodes);
    }
    EXPECT_EQ(graphs, 30);
    EXPECT_EQ(batches, 5);  // 7×4 + 2
}

TEST(DataLoader, LastBatchIsRemainder)
{
    DataLoader loader(smallDataset(), allIndices(smallDataset()), 7,
                      getBackend(FrameworkKind::PyG), false, 1);
    loader.startEpoch();
    BatchedGraph batch;
    int64_t last = 0;
    while (loader.next(batch))
        last = batch.numGraphs;
    EXPECT_EQ(last, 2);
}

TEST(DataLoader, ShuffleChangesOrderDeterministically)
{
    auto first_labels = [](DataLoader &loader) {
        loader.startEpoch();
        BatchedGraph batch;
        loader.next(batch);
        return batch.graphLabels;
    };
    DataLoader a(smallDataset(), allIndices(smallDataset()), 10,
                 getBackend(FrameworkKind::PyG), true, 5);
    DataLoader b(smallDataset(), allIndices(smallDataset()), 10,
                 getBackend(FrameworkKind::PyG), true, 5);
    DataLoader c(smallDataset(), allIndices(smallDataset()), 10,
                 getBackend(FrameworkKind::PyG), false, 5);
    auto la = first_labels(a);
    auto lb = first_labels(b);
    auto lc = first_labels(c);
    EXPECT_EQ(la, lb);   // same seed → same order
    EXPECT_NE(la, lc);   // shuffled vs unshuffled differ
}

TEST(DataLoader, SubsetRestriction)
{
    std::vector<int64_t> subset{0, 2, 4, 6};
    DataLoader loader(smallDataset(), subset, 3,
                      getBackend(FrameworkKind::PyG), false, 1);
    loader.startEpoch();
    BatchedGraph batch;
    int64_t total = 0;
    while (loader.next(batch))
        total += batch.numGraphs;
    EXPECT_EQ(total, 4);
}

TEST(DataLoader, CollationTaggedAsDataLoading)
{
    Profiler &prof = Profiler::instance();
    prof.reset();
    prof.setEnabled(true);
    DataLoader loader(smallDataset(), allIndices(smallDataset()), 30,
                      getBackend(FrameworkKind::PyG), false, 1);
    loader.startEpoch();
    BatchedGraph batch;
    loader.next(batch);
    bool any = false;
    for (const auto &entry : prof.trace().entries()) {
        const Phase phase =
            entry.isKernel ? entry.kernel.phase : entry.host.phase;
        EXPECT_EQ(phase, Phase::DataLoading);
        any = true;
    }
    EXPECT_TRUE(any);
    prof.reset();
    prof.setEnabled(false);
}
