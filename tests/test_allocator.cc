/**
 * @file
 * Allocator-layer tests: direct vs caching accounting, the pool's
 * reuse/split/coalesce behaviour, emptyCache/trim semantics, and the
 * allocator-invariance of the logical (Fig. 4) numbers.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/checks.hh"
#include "device/allocator.hh"
#include "device/device.hh"
#include "tensor/tensor.hh"

using namespace gnnperf;

namespace {

/** Pin the runtime check level for one test, restoring it on exit. */
class ChecksScope
{
  public:
    explicit ChecksScope(bool on) : saved_(checksEnabled())
    {
        setChecksEnabled(on);
    }
    ~ChecksScope() { setChecksEnabled(saved_); }

  private:
    bool saved_;
};

/**
 * Backing capacity the caching allocator reserves for `bytes`: in
 * checked builds the redzones ride inside the quantum-rounded size.
 */
std::size_t
cachedCapacity(std::size_t bytes)
{
    const std::size_t guard =
        checksEnabled() ? Allocator::kRedzone : 0;
    const std::size_t n = std::max<std::size_t>(bytes + 2 * guard, 1);
    return (n + CachingAllocator::kQuantum - 1) /
           CachingAllocator::kQuantum * CachingAllocator::kQuantum;
}

/** Restore the process-wide allocator selection at scope exit. */
class AllocatorGuard
{
  public:
    AllocatorGuard()
        : saved_(DeviceManager::instance().allocatorKind(
              DeviceKind::Cuda))
    {}
    ~AllocatorGuard() { DeviceManager::instance().setAllocator(saved_); }

  private:
    AllocatorKind saved_;
};

MemoryStats &
cudaStats()
{
    return DeviceManager::instance().stats(DeviceKind::Cuda);
}

} // namespace

TEST(DirectAllocator, ReservedEqualsLiveAndEveryAcquireHitsDevice)
{
    DirectAllocator alloc(DeviceKind::Cuda);
    MemoryStats &s = cudaStats();
    const std::size_t live0 = s.currentBytes;
    const std::size_t reserved0 = s.reservedBytes;
    const std::size_t backing0 = s.allocCount;

    // Checked builds reserve an extra redzone pair per block; the
    // logical (Fig. 4) bytes never include guards.
    const std::size_t g = checksEnabled() ? Allocator::kRedzone : 0;
    MemoryBlock *a = alloc.allocate(1000);
    MemoryBlock *b = alloc.allocate(2000);
    EXPECT_EQ(s.currentBytes, live0 + 3000);
    EXPECT_EQ(s.reservedBytes, reserved0 + 3000 + 4 * g);
    EXPECT_EQ(s.allocCount, backing0 + 2);
    alloc.release(a);
    alloc.release(b);
    EXPECT_EQ(s.currentBytes, live0);
    EXPECT_EQ(s.reservedBytes, reserved0);
}

TEST(DirectAllocator, ZeroByteBlockIsUsable)
{
    DirectAllocator alloc(DeviceKind::Cuda);
    MemoryBlock *b = alloc.allocate(0);
    ASSERT_NE(b->ptr, nullptr);
    b->floats()[0] = 1.0f; // capacity is at least one float
    alloc.release(b);
}

TEST(CachingAllocator, ReleasedBlockIsReused)
{
    CachingAllocator alloc(DeviceKind::Cuda);
    MemoryStats &s = cudaStats();
    const std::size_t hits0 = s.cacheHits;
    const std::size_t backing0 = s.allocCount;

    MemoryBlock *a = alloc.allocate(1000);
    char *ptr = a->ptr;
    alloc.release(a);
    MemoryBlock *b = alloc.allocate(1000);
    EXPECT_EQ(b->ptr, ptr);
    EXPECT_EQ(s.cacheHits, hits0 + 1);
    EXPECT_EQ(s.allocCount, backing0 + 1); // one backing alloc total
    alloc.release(b);
    alloc.emptyCache();
}

TEST(CachingAllocator, RoundsToQuantumAndKeepsReservedAboveLogical)
{
    CachingAllocator alloc(DeviceKind::Cuda);
    MemoryStats &s = cudaStats();
    const std::size_t live0 = s.currentBytes;
    const std::size_t reserved0 = s.reservedBytes;

    MemoryBlock *a = alloc.allocate(10);
    EXPECT_EQ(a->size, CachingAllocator::kQuantum);
    EXPECT_EQ(s.currentBytes, live0 + 10);
    EXPECT_EQ(s.reservedBytes,
              reserved0 + CachingAllocator::kQuantum);
    EXPECT_GE(s.reservedBytes - reserved0, s.currentBytes - live0);
    alloc.release(a);
    alloc.emptyCache();
}

TEST(CachingAllocator, SplitsLargeCachedBlock)
{
    CachingAllocator alloc(DeviceKind::Cuda);
    MemoryStats &s = cudaStats();

    MemoryBlock *big = alloc.allocate(4096);
    char *base = big->ptr;
    alloc.release(big);
    EXPECT_EQ(alloc.cachedBytes(), cachedCapacity(4096));

    const std::size_t splits0 = s.splitCount;
    const std::size_t backing0 = s.allocCount;
    MemoryBlock *small1 = alloc.allocate(512);
    MemoryBlock *small2 = alloc.allocate(512);
    EXPECT_EQ(small1->ptr, base);
    EXPECT_EQ(small2->ptr, base + cachedCapacity(512));
    EXPECT_EQ(s.splitCount, splits0 + 2);
    EXPECT_EQ(s.allocCount, backing0); // no new backing allocation
    EXPECT_EQ(alloc.cachedBytes(),
              cachedCapacity(4096) - 2 * cachedCapacity(512));

    alloc.release(small1);
    alloc.release(small2);
    alloc.emptyCache();
}

TEST(CachingAllocator, CoalescesFreedNeighboursBackToOneSegment)
{
    // This choreography depends on unchecked geometry: with redzones
    // the third 512-byte acquire no longer fits the 2048 segment and
    // spills to a fresh one. Guarded split/coalesce behaviour is
    // covered by test_allocator_guard.cc.
    ChecksScope checks(false);
    CachingAllocator alloc(DeviceKind::Cuda);
    MemoryStats &s = cudaStats();

    MemoryBlock *big = alloc.allocate(2048);
    alloc.release(big);
    MemoryBlock *a = alloc.allocate(512);
    MemoryBlock *b = alloc.allocate(512);
    MemoryBlock *c = alloc.allocate(512);
    // 2048 segment now holds a|b|c|512-free.

    const std::size_t coalesce0 = s.coalesceCount;
    alloc.release(a);
    alloc.release(c); // merges with the trailing free slice
    alloc.release(b); // bridges a and c -> one 2048 block again
    EXPECT_GE(s.coalesceCount, coalesce0 + 3);
    EXPECT_EQ(alloc.cachedBytes(), 2048u);

    // The recombined segment satisfies a full-size request again.
    const std::size_t backing0 = s.allocCount;
    MemoryBlock *again = alloc.allocate(2048);
    EXPECT_EQ(s.allocCount, backing0);
    alloc.release(again);
    alloc.emptyCache();
}

TEST(CachingAllocator, EmptyCacheReturnsReservedBytes)
{
    MemoryStats &s = cudaStats();
    const std::size_t reserved0 = s.reservedBytes;
    CachingAllocator alloc(DeviceKind::Cuda);
    MemoryBlock *a = alloc.allocate(8192);
    alloc.release(a);
    EXPECT_GT(s.reservedBytes, reserved0);
    alloc.emptyCache();
    EXPECT_EQ(s.reservedBytes, reserved0);
    EXPECT_EQ(alloc.cachedBytes(), 0u);
}

TEST(CachingAllocator, TrimDropsBlocksUnusedForAFullGeneration)
{
    CachingAllocator alloc(DeviceKind::Cuda);
    MemoryBlock *a = alloc.allocate(1024);
    alloc.release(a);

    // A block survives the first trim after its last use...
    alloc.trim();
    EXPECT_EQ(alloc.cachedBytes(), cachedCapacity(1024));
    // ...and is dropped by the next one if it stayed unused.
    alloc.trim();
    EXPECT_EQ(alloc.cachedBytes(), 0u);
}

TEST(CachingAllocator, TrimKeepsRecentlyReusedBlocks)
{
    CachingAllocator alloc(DeviceKind::Cuda);
    MemoryBlock *a = alloc.allocate(1024);
    alloc.release(a);
    alloc.trim();
    // Reuse refreshes the generation: the block survives another trim.
    MemoryBlock *b = alloc.allocate(1024);
    alloc.release(b);
    alloc.trim();
    EXPECT_EQ(alloc.cachedBytes(), cachedCapacity(1024));
    alloc.emptyCache();
}

namespace {

/** A tensor-churn workload with a distinctive logical footprint. */
void
churnTensors()
{
    Tensor a({64, 32});
    for (int i = 0; i < 8; ++i) {
        Tensor t({128, 16});
        Tensor u({33, 7});
        t.fill(1.0f);
        u.fill(2.0f);
    }
    Tensor b = a.clone();
    b.fill(0.5f);
}

} // namespace

TEST(AllocatorInvariance, LogicalPeakIsIdenticalUnderBothAllocators)
{
    AllocatorGuard guard;
    DeviceManager &dm = DeviceManager::instance();
    std::size_t peaks[2];
    std::size_t lives[2];
    int i = 0;
    for (AllocatorKind kind :
         {AllocatorKind::Direct, AllocatorKind::Caching}) {
        dm.setAllocator(kind);
        dm.emptyCaches();
        const std::size_t live0 = dm.current(DeviceKind::Cuda);
        dm.resetPeak(DeviceKind::Cuda);
        churnTensors();
        peaks[i] = dm.peak(DeviceKind::Cuda) - live0;
        lives[i] = dm.current(DeviceKind::Cuda) - live0;
        ++i;
    }
    EXPECT_EQ(peaks[0], peaks[1]);
    EXPECT_EQ(lives[0], 0u);
    EXPECT_EQ(lives[1], 0u);
}

TEST(AllocatorInvariance, CachingCutsDeviceAllocations)
{
    AllocatorGuard guard;
    DeviceManager &dm = DeviceManager::instance();
    MemoryStats &s = cudaStats();
    std::size_t backing[2];
    int i = 0;
    for (AllocatorKind kind :
         {AllocatorKind::Direct, AllocatorKind::Caching}) {
        dm.setAllocator(kind);
        dm.emptyCaches();
        const std::size_t backing0 = s.allocCount;
        for (int rep = 0; rep < 4; ++rep)
            churnTensors();
        backing[i++] = s.allocCount - backing0;
    }
    EXPECT_LT(backing[1] * 2, backing[0]); // >= 50% fewer
    dm.emptyCaches();
}

TEST(AllocatorInvariance, ReservedPeakNeverBelowLogicalPeak)
{
    AllocatorGuard guard;
    DeviceManager &dm = DeviceManager::instance();
    for (AllocatorKind kind :
         {AllocatorKind::Direct, AllocatorKind::Caching}) {
        dm.setAllocator(kind);
        dm.emptyCaches();
        dm.resetPeak(DeviceKind::Cuda);
        churnTensors();
        EXPECT_GE(dm.reservedPeak(DeviceKind::Cuda),
                  dm.peak(DeviceKind::Cuda))
            << "allocator: " << allocatorName(kind);
    }
    dm.emptyCaches();
}

TEST(AllocatorInvariance, LeakCheckAcrossWorkload)
{
    AllocatorGuard guard;
    DeviceManager &dm = DeviceManager::instance();
    dm.setAllocator(AllocatorKind::Caching);
    const std::size_t base = cudaStats().currentBytes;
    churnTensors();
    cudaStats().leakCheck(base, "churnTensors");
    dm.emptyCaches();
}
