/**
 * @file
 * Device-model tests: cost model pricing, memory statistics, and the
 * multi-GPU DataParallel composition.
 */

#include <gtest/gtest.h>

#include "device/cost_model.hh"
#include "device/device.hh"
#include "device/multi_gpu.hh"

using namespace gnnperf;

TEST(CostModel, KernelRoofline)
{
    CostModel model;
    // Compute-bound kernel: flops dominate.
    KernelRecord big_flops{"k", 1e12, 1e3, Phase::Forward, -1};
    EXPECT_NEAR(model.kernelTime(big_flops),
                model.gpu.kernelOverhead + 1e12 / model.gpu.flopsPerSec,
                1e-9);
    // Memory-bound kernel: bytes dominate.
    KernelRecord big_bytes{"k", 1e3, 1e12, Phase::Forward, -1};
    EXPECT_NEAR(model.kernelTime(big_bytes),
                model.gpu.kernelOverhead + 1e12 / model.gpu.bytesPerSec,
                1e-9);
}

TEST(CostModel, EmptyKernelCostsOverhead)
{
    CostModel model;
    KernelRecord k{"k", 0.0, 0.0, Phase::Forward, -1};
    EXPECT_DOUBLE_EQ(model.kernelTime(k), model.gpu.kernelOverhead);
}

TEST(CostModel, HostRatesOrdered)
{
    CostModel model;
    HostRecord memcpy_op{"m", HostOpKind::Memcpy, 1e6, 1.0,
                         Phase::DataLoading, -1};
    HostRecord gather_op{"g", HostOpKind::IndexedGather, 1e6, 1.0,
                         Phase::DataLoading, -1};
    // The generic per-element path is much slower per byte — the
    // §IV-C "cannot use PyTorch's efficient data operations" effect.
    EXPECT_GT(model.hostTime(gather_op),
              model.hostTime(memcpy_op) * 5.0);
}

TEST(CostModel, DispatchScalesWithItems)
{
    CostModel model;
    HostRecord one{"d", HostOpKind::Dispatch, 0.0, 1.0, Phase::Other,
                   -1};
    HostRecord ten{"d", HostOpKind::Dispatch, 0.0, 10.0, Phase::Other,
                   -1};
    EXPECT_NEAR(model.hostTime(ten) - model.hostTime(one),
                9.0 * model.host.dispatchItemCost, 1e-12);
}

TEST(CostModel, H2DTransferIncludesLatency)
{
    CostModel model;
    HostRecord h2d{"t", HostOpKind::H2DTransfer, 11e9, 1.0,
                   Phase::DataLoading, -1};
    EXPECT_NEAR(model.hostTime(h2d),
                model.host.hostOpBase + model.host.h2dLatency + 1.0,
                1e-6);
}

TEST(MemoryStats, AllocFreeAndPeak)
{
    MemoryStats stats;
    stats.onAlloc(100);
    stats.onAlloc(50);
    EXPECT_EQ(stats.currentBytes, 150u);
    EXPECT_EQ(stats.peakBytes, 150u);
    stats.onFree(100);
    EXPECT_EQ(stats.currentBytes, 50u);
    EXPECT_EQ(stats.peakBytes, 150u);
    stats.resetPeak();
    EXPECT_EQ(stats.peakBytes, 50u);
    EXPECT_EQ(stats.acquireCount, 2u);
    EXPECT_EQ(stats.totalAllocated, 150u);
    // Logical events do not touch the reserved (pool) line.
    EXPECT_EQ(stats.reservedBytes, 0u);
    EXPECT_EQ(stats.allocCount, 0u);
}

TEST(MemoryStats, ReserveTracksPoolHighWater)
{
    MemoryStats stats;
    stats.onReserve(1024);
    stats.onReserve(512);
    EXPECT_EQ(stats.reservedBytes, 1536u);
    EXPECT_EQ(stats.reservedPeak, 1536u);
    EXPECT_EQ(stats.allocCount, 2u);
    stats.onUnreserve(1024);
    EXPECT_EQ(stats.reservedBytes, 512u);
    EXPECT_EQ(stats.reservedPeak, 1536u);
    stats.resetPeak();
    EXPECT_EQ(stats.reservedPeak, 512u);
    // Reserved events do not touch the logical line.
    EXPECT_EQ(stats.currentBytes, 0u);
    EXPECT_EQ(stats.acquireCount, 0u);
}

TEST(MemoryStats, LeakCheckPassesAtBaseline)
{
    MemoryStats stats;
    stats.onAlloc(64);
    const std::size_t base = stats.currentBytes;
    stats.onAlloc(32);
    stats.onFree(32);
    stats.leakCheck(base, "test scope");
    stats.onFree(64);
    stats.leakCheck(0, "test scope");
}

TEST(DeviceManager, HostPeakResets)
{
    auto &dm = DeviceManager::instance();
    const std::size_t before = dm.current(DeviceKind::Host);
    dm.notifyAlloc(DeviceKind::Host, 1000);
    EXPECT_GE(dm.peak(DeviceKind::Host), before + 1000);
    dm.notifyFree(DeviceKind::Host, 1000);
    // resetCudaPeak() historically could not touch the Host peak; the
    // device-parametric form can.
    dm.resetPeak(DeviceKind::Host);
    EXPECT_EQ(dm.peak(DeviceKind::Host), dm.current(DeviceKind::Host));
}

TEST(DeviceManager, SeparatesDevices)
{
    auto &dm = DeviceManager::instance();
    const std::size_t host_before =
        dm.stats(DeviceKind::Host).currentBytes;
    const std::size_t cuda_before = dm.cudaCurrent();
    dm.notifyAlloc(DeviceKind::Host, 10);
    EXPECT_EQ(dm.stats(DeviceKind::Host).currentBytes,
              host_before + 10);
    EXPECT_EQ(dm.cudaCurrent(), cuda_before);
    dm.notifyFree(DeviceKind::Host, 10);
}

TEST(DataParallel, SingleGpuHasNoTransferTerms)
{
    CostModel model;
    DataParallelParams p;
    p.numGpus = 1;
    p.paramBytes = 1e6;
    p.shardInputBytes = 1e6;
    p.collateTime = 0.01;
    p.shardComputeElapsed = 0.02;
    p.shardDispatchTime = 0.005;
    p.updateTime = 0.001;
    EXPECT_DOUBLE_EQ(DataParallelModel::scatterTime(p, model), 0.0);
    EXPECT_DOUBLE_EQ(DataParallelModel::replicateTime(p, model), 0.0);
    EXPECT_DOUBLE_EQ(DataParallelModel::gatherReduceTime(p, model),
                     0.0);
    EXPECT_NEAR(DataParallelModel::iterationTime(p, model),
                0.01 + 0.02 + 0.001, 1e-12);
}

TEST(DataParallel, TransferGrowsWithGpuCount)
{
    CostModel model;
    DataParallelParams p;
    p.paramBytes = 4e6;
    p.shardInputBytes = 1e6;
    p.shardOutputBytes = 1e4;
    p.numGpus = 2;
    const double t2 = DataParallelModel::replicateTime(p, model) +
                      DataParallelModel::gatherReduceTime(p, model);
    p.numGpus = 8;
    const double t8 = DataParallelModel::replicateTime(p, model) +
                      DataParallelModel::gatherReduceTime(p, model);
    EXPECT_NEAR(t8 / t2, 7.0, 1e-6);
}

TEST(DataParallel, LoadingBoundShapeMatchesPaper)
{
    // With collate dominating, 1→4 GPUs helps mildly and 8 GPUs
    // regresses — the Fig. 6 shape.
    CostModel model;
    DataParallelParams p;
    p.paramBytes = 4e6;
    p.shardInputBytes = 5e5;
    p.shardOutputBytes = 1e4;
    p.collateTime = 0.030;
    p.updateTime = 0.002;

    auto time_at = [&](int gpus) {
        DataParallelParams q = p;
        q.numGpus = gpus;
        // Shard compute shrinks with the shard, dispatch does not.
        q.shardDispatchTime = 0.008;
        q.shardComputeElapsed = 0.008 + 0.012 / gpus;
        return DataParallelModel::iterationTime(q, model);
    };
    const double t1 = time_at(1), t2 = time_at(2), t4 = time_at(4),
                 t8 = time_at(8);
    EXPECT_LT(t2, t1);
    EXPECT_LT(t4, t2);
    EXPECT_GT(t8, t4);           // transfer overhead wins at 8
    EXPECT_GT(t4, t1 * 0.6);     // far from linear speedup
}
