/**
 * @file
 * Collation tests: both backends must produce structurally identical
 * batches (same big disconnected graph), while doing their
 * framework-specific extra work (DGL: hetero processing + eager
 * formats; PyG: neither).
 */

#include <gtest/gtest.h>

#include "backends/backend.hh"
#include "data/tu_dataset.hh"
#include "device/cost_model.hh"
#include "device/profiler.hh"

using namespace gnnperf;

namespace {

std::vector<const Graph *>
members(const GraphDataset &ds, std::size_t count)
{
    std::vector<const Graph *> out;
    for (std::size_t i = 0; i < count && i < ds.graphs.size(); ++i)
        out.push_back(&ds.graphs[i]);
    return out;
}

} // namespace

class CollateTest : public ::testing::TestWithParam<FrameworkKind>
{
};

TEST_P(CollateTest, OffsetsAndCounts)
{
    GraphDataset ds = makeEnzymes(5, 10);
    auto graphs = members(ds, 4);
    BatchedGraph batch = getBackend(GetParam()).collate(graphs);

    int64_t nodes = 0, edges = 0;
    for (const Graph *g : graphs) {
        nodes += g->numNodes;
        edges += g->numEdges();
    }
    EXPECT_EQ(batch.numNodes, nodes);
    EXPECT_EQ(batch.numEdges(), edges);
    EXPECT_EQ(batch.numGraphs, 4);
    ASSERT_EQ(batch.graphPtr.size(), 5u);
    EXPECT_EQ(batch.graphPtr.front(), 0);
    EXPECT_EQ(batch.graphPtr.back(), nodes);
}

TEST_P(CollateTest, EdgesStayWithinTheirGraph)
{
    GraphDataset ds = makeEnzymes(5, 10);
    auto graphs = members(ds, 4);
    BatchedGraph batch = getBackend(GetParam()).collate(graphs);
    for (std::size_t e = 0;
         e < static_cast<std::size_t>(batch.numEdges()); ++e) {
        const int64_t gs =
            batch.nodeGraph[static_cast<std::size_t>(batch.edgeSrc[e])];
        const int64_t gd =
            batch.nodeGraph[static_cast<std::size_t>(batch.edgeDst[e])];
        ASSERT_EQ(gs, gd) << "edge " << e << " crosses graphs";
    }
}

TEST_P(CollateTest, FeaturesConcatenatedInOrder)
{
    GraphDataset ds = makeEnzymes(5, 10);
    auto graphs = members(ds, 3);
    BatchedGraph batch = getBackend(GetParam()).collate(graphs);
    EXPECT_EQ(batch.x.device(), DeviceKind::Cuda);
    int64_t row = 0;
    for (const Graph *g : graphs) {
        for (int64_t i = 0; i < g->numNodes; ++i) {
            for (int64_t j = 0; j < g->x.dim(1); ++j)
                ASSERT_FLOAT_EQ(batch.x.at(row, j), g->x.at(i, j));
            ++row;
        }
    }
}

TEST_P(CollateTest, LabelsCollected)
{
    GraphDataset ds = makeEnzymes(5, 10);
    auto graphs = members(ds, 4);
    BatchedGraph batch = getBackend(GetParam()).collate(graphs);
    ASSERT_EQ(batch.graphLabels.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(batch.graphLabels[i], graphs[i]->graphLabel);
}

TEST_P(CollateTest, DegreesMatchEdges)
{
    GraphDataset ds = makeEnzymes(5, 10);
    auto graphs = members(ds, 2);
    BatchedGraph batch = getBackend(GetParam()).collate(graphs);
    ASSERT_TRUE(batch.inDegrees.defined());
    double total = 0.0;
    for (int64_t i = 0; i < batch.numNodes; ++i)
        total += batch.inDegrees.at(i);
    EXPECT_DOUBLE_EQ(total, static_cast<double>(batch.numEdges()));
}

INSTANTIATE_TEST_SUITE_P(BothFrameworks, CollateTest,
                         ::testing::Values(FrameworkKind::PyG,
                                           FrameworkKind::DGL),
                         [](const auto &info) {
                             return std::string(
                                 frameworkName(info.param));
                         });

TEST(CollateDiff, BackendsProduceIdenticalStructure)
{
    GraphDataset ds = makeEnzymes(5, 10);
    auto graphs = members(ds, 4);
    BatchedGraph pyg = getBackend(FrameworkKind::PyG).collate(graphs);
    BatchedGraph dgl = getBackend(FrameworkKind::DGL).collate(graphs);
    EXPECT_EQ(pyg.edgeSrc, dgl.edgeSrc);
    EXPECT_EQ(pyg.edgeDst, dgl.edgeDst);
    EXPECT_EQ(pyg.nodeGraph, dgl.nodeGraph);
    EXPECT_EQ(pyg.graphLabels, dgl.graphLabels);
}

TEST(CollateDiff, OnlyDglIsHeteroProcessed)
{
    GraphDataset ds = makeEnzymes(5, 10);
    auto graphs = members(ds, 2);
    EXPECT_FALSE(getBackend(FrameworkKind::PyG)
                     .collate(graphs).heteroProcessed);
    EXPECT_TRUE(getBackend(FrameworkKind::DGL)
                    .collate(graphs).heteroProcessed);
}

TEST(CollateDiff, DglBuildsFormatsEagerlyPygDoesNot)
{
    GraphDataset ds = makeEnzymes(5, 10);
    auto graphs = members(ds, 2);
    BatchedGraph pyg = getBackend(FrameworkKind::PyG).collate(graphs);
    BatchedGraph dgl = getBackend(FrameworkKind::DGL).collate(graphs);
    EXPECT_FALSE(pyg.inIndex.has_value());
    EXPECT_FALSE(pyg.outIndex.has_value());
    EXPECT_TRUE(dgl.inIndex.has_value());
    EXPECT_TRUE(dgl.outIndex.has_value());
}

TEST(CollateDiff, DglCollationCostsMoreHostTime)
{
    GraphDataset ds = makeEnzymes(5, 64);
    auto graphs = members(ds, 64);
    Profiler &prof = Profiler::instance();

    auto host_time = [&](FrameworkKind fw) {
        prof.reset();
        prof.setEnabled(true);
        PhaseScope phase(Phase::DataLoading);
        BatchedGraph batch = getBackend(fw).collate(graphs);
        double t = 0.0;
        for (const auto &entry : prof.trace().entries())
            if (!entry.isKernel)
                t += CostModel::defaultModel().hostTime(entry.host);
        prof.reset();
        prof.setEnabled(false);
        return t;
    };

    const double pyg = host_time(FrameworkKind::PyG);
    const double dgl = host_time(FrameworkKind::DGL);
    EXPECT_GT(dgl, pyg * 1.8)
        << "DGL collation should be ≫ PyG (paper Fig. 1/2)";
}
