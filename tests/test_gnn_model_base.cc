/**
 * @file
 * GnnModel base-class tests: layer-width arithmetic for node vs graph
 * tasks, degree normalisation helper, forward preconditions, and
 * parameter-count sanity across configurations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "backends/backend.hh"
#include "data/tu_dataset.hh"
#include "models/gcn.hh"
#include "models/model_factory.hh"

using namespace gnnperf;

namespace {

/** Expose the protected width helpers for testing. */
class ProbeModel : public Gcn
{
  public:
    using Gcn::Gcn;
    using Gcn::isOutputLayer;
    using Gcn::layerInWidth;
    using Gcn::layerOutWidth;
};

ModelConfig
config(bool graph_task)
{
    ModelConfig cfg;
    cfg.inFeatures = 12;
    cfg.hidden = 32;
    cfg.numClasses = 5;
    cfg.numLayers = graph_task ? 4 : 2;
    cfg.graphTask = graph_task;
    cfg.batchNorm = graph_task;
    cfg.residual = graph_task;
    cfg.seed = 1;
    return cfg;
}

} // namespace

TEST(GnnModelBase, NodeTaskLayerWidths)
{
    ProbeModel m(getBackend(FrameworkKind::PyG), config(false));
    EXPECT_EQ(m.layerInWidth(0), 12);   // dataset features
    EXPECT_EQ(m.layerOutWidth(0), 32);  // hidden
    EXPECT_EQ(m.layerInWidth(1), 32);
    EXPECT_EQ(m.layerOutWidth(1), 5);   // classes
    EXPECT_FALSE(m.isOutputLayer(0));
    EXPECT_TRUE(m.isOutputLayer(1));
}

TEST(GnnModelBase, GraphTaskLayerWidths)
{
    ProbeModel m(getBackend(FrameworkKind::PyG), config(true));
    for (int layer = 0; layer < 4; ++layer) {
        EXPECT_EQ(m.layerInWidth(layer), 32);  // embedding precedes
        EXPECT_EQ(m.layerOutWidth(layer), 32);
        EXPECT_FALSE(m.isOutputLayer(layer));  // readout head follows
    }
}

TEST(GnnModelBase, GraphTaskHasEmbedAndClassifier)
{
    auto model = makeModel(ModelKind::GCN,
                           getBackend(FrameworkKind::PyG),
                           config(true));
    bool has_embed = false, has_classifier = false;
    for (const auto &np : model->namedParameters()) {
        if (np.name.rfind("embed.", 0) == 0)
            has_embed = true;
        if (np.name.rfind("classifier.", 0) == 0)
            has_classifier = true;
    }
    EXPECT_TRUE(has_embed);
    EXPECT_TRUE(has_classifier);
}

TEST(GnnModelBase, NodeTaskHasNeither)
{
    auto model = makeModel(ModelKind::GCN,
                           getBackend(FrameworkKind::PyG),
                           config(false));
    for (const auto &np : model->namedParameters()) {
        EXPECT_EQ(np.name.rfind("embed.", 0), std::string::npos);
        EXPECT_EQ(np.name.rfind("classifier.", 0), std::string::npos);
    }
}

TEST(GnnModelBase, ParameterCountMatchesArchitecture)
{
    // Node-task GCN: conv1 (12×32 + 32) + conv2 (32×5 + 5).
    ModelConfig cfg = config(false);
    cfg.dropout = 0.0f;
    auto model = makeModel(ModelKind::GCN,
                           getBackend(FrameworkKind::PyG), cfg);
    EXPECT_EQ(model->parameterCount(),
              12 * 32 + 32 + 32 * 5 + 5);
    EXPECT_DOUBLE_EQ(model->parameterBytes(),
                     model->parameterCount() * 4.0);
}

TEST(GnnModelBase, AnisotropicModelsHaveMoreParameters)
{
    // With matched widths, the gating/attention machinery adds
    // parameters — part of why anisotropic models cost more.
    ModelConfig cfg = config(true);
    auto gcn = makeModel(ModelKind::GCN,
                         getBackend(FrameworkKind::PyG), cfg);
    auto gated = makeModel(ModelKind::GatedGCN,
                           getBackend(FrameworkKind::PyG), cfg);
    EXPECT_GT(gated->parameterCount(), 2 * gcn->parameterCount());
}

TEST(GnnModelBase, ForwardRequiresDeviceFeatures)
{
    auto model = makeModel(ModelKind::GCN,
                           getBackend(FrameworkKind::PyG),
                           config(false));
    BatchedGraph batch;
    batch.numNodes = 3;
    batch.numGraphs = 1;
    batch.x = Tensor::zeros({3, 12}, DeviceKind::Host);  // wrong device
    batch.inDegrees = Tensor::zeros({3});
    EXPECT_DEATH(model->forward(batch), "not on device");
}

TEST(GnnModelBase, DegreeNormalisationInForward)
{
    // A 2-node graph with one edge each way: deg = 1 everywhere, so
    // GCN's normalisation is 1/sqrt(2) pre and post; a single conv
    // layer with identity-ish weights stays finite and symmetric.
    Graph g;
    g.numNodes = 2;
    g.x = Tensor::ones({2, 12}, DeviceKind::Host);
    g.addUndirectedEdge(0, 1);
    g.graphLabel = 0;
    std::vector<const Graph *> members{&g};
    BatchedGraph batch =
        getBackend(FrameworkKind::PyG).collate(members);

    ModelConfig cfg = config(false);
    cfg.dropout = 0.0f;
    auto model = makeModel(ModelKind::GCN,
                           getBackend(FrameworkKind::PyG), cfg);
    model->train(false);
    Var out = model->forward(batch);
    ASSERT_EQ(out.dim(0), 2);
    // Symmetric inputs → identical rows.
    for (int64_t j = 0; j < out.dim(1); ++j)
        EXPECT_FLOAT_EQ(out.value().at(0, j), out.value().at(1, j));
}
