/**
 * @file
 * Property-based sweeps (parameterised gtest): invariants that must
 * hold on random graphs of many shapes and sizes.
 *
 *  - fused GSpMM kernels ≡ gather+scatter compositions;
 *  - aggregation linearity and adjoint (transpose) identities;
 *  - edge softmax: normalisation, positivity, shift invariance;
 *  - pooling: segment reduction ≡ scatter pooling on contiguous
 *    batches; pooled mean of constant features is that constant;
 *  - collation: PyG and DGL batches are structurally identical for
 *    any batch composition.
 */

#include <gtest/gtest.h>

#include "backends/backend.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "data/tu_dataset.hh"
#include "graph/edge_softmax.hh"
#include "graph/scatter.hh"
#include "graph/segment.hh"
#include "graph/spmm.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

using namespace gnnperf;
using namespace gnnperf::graphops;

namespace {

/** Random-graph test case: nodes, edges, feature width, heads. */
struct GraphCase
{
    int64_t nodes;
    int64_t edges;
    int64_t features;
    int64_t heads;
    uint64_t seed;
};

/** COO edges drawn uniformly (self loops allowed, duplicates too —
 *  kernels must handle both). */
struct RandomGraph
{
    std::vector<int64_t> src, dst;
    CsrIndex in, out;
    Tensor x;

    explicit RandomGraph(const GraphCase &c)
    {
        Rng rng(c.seed);
        src.reserve(static_cast<std::size_t>(c.edges));
        dst.reserve(static_cast<std::size_t>(c.edges));
        for (int64_t e = 0; e < c.edges; ++e) {
            src.push_back(static_cast<int64_t>(
                rng.uniformInt(static_cast<uint64_t>(c.nodes))));
            dst.push_back(static_cast<int64_t>(
                rng.uniformInt(static_cast<uint64_t>(c.nodes))));
        }
        in = buildInIndex(c.nodes, src, dst);
        out = buildOutIndex(c.nodes, src, dst);
        x = init::normal({c.nodes, c.features}, 0.0f, 1.0f, rng);
    }
};

void
expectClose(const Tensor &a, const Tensor &b, float tol = 2e-4f)
{
    ASSERT_TRUE(a.sameShape(b));
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_NEAR(a.at(i), b.at(i), tol) << "element " << i;
}

} // namespace

class GraphPropertyTest : public ::testing::TestWithParam<GraphCase>
{
};

TEST_P(GraphPropertyTest, FusedSumEqualsScatterComposition)
{
    RandomGraph g(GetParam());
    Tensor fused = spmmCopyUSum(g.in, g.x);
    Tensor composed = ops::scatterAddRows(ops::gatherRows(g.x, g.src),
                                          g.dst, GetParam().nodes);
    expectClose(fused, composed);
}

TEST_P(GraphPropertyTest, FusedMeanEqualsScatterComposition)
{
    RandomGraph g(GetParam());
    Tensor fused = spmmCopyUMean(g.in, g.x);
    Tensor composed = scatterMeanRows(ops::gatherRows(g.x, g.src),
                                      g.dst, GetParam().nodes);
    expectClose(fused, composed);
}

TEST_P(GraphPropertyTest, FusedMaxEqualsScatterComposition)
{
    RandomGraph g(GetParam());
    std::vector<int64_t> arg_a, arg_b;
    Tensor fused = spmmCopyUMax(g.in, g.x, arg_a);
    Tensor composed = scatterMaxRows(ops::gatherRows(g.x, g.src),
                                     g.dst, GetParam().nodes, arg_b);
    expectClose(fused, composed);
}

TEST_P(GraphPropertyTest, AggregationIsLinear)
{
    RandomGraph g(GetParam());
    Rng rng(GetParam().seed + 1);
    Tensor y = init::normal(g.x.shape(), 0.0f, 1.0f, rng);
    // A(2x + y) == 2A(x) + A(y)
    Tensor lhs = spmmCopyUSum(
        g.in, ops::add(ops::scale(g.x, 2.0f), y));
    Tensor rhs = ops::add(ops::scale(spmmCopyUSum(g.in, g.x), 2.0f),
                          spmmCopyUSum(g.in, y));
    expectClose(lhs, rhs, 1e-3f);
}

TEST_P(GraphPropertyTest, TransposeAdjointIdentity)
{
    // <y, A x> == <Aᵀ y, x> for any x, y.
    RandomGraph g(GetParam());
    Rng rng(GetParam().seed + 2);
    Tensor y = init::normal(g.x.shape(), 0.0f, 1.0f, rng);
    Tensor ax = spmmCopyUSum(g.in, g.x);
    Tensor aty = spmmCopyUSum(g.out, y);
    double lhs = 0.0, rhs = 0.0;
    for (int64_t i = 0; i < ax.numel(); ++i) {
        lhs += static_cast<double>(y.at(i)) * ax.at(i);
        rhs += static_cast<double>(aty.at(i)) * g.x.at(i);
    }
    EXPECT_NEAR(lhs, rhs, std::max(1.0, std::abs(lhs)) * 1e-4);
}

TEST_P(GraphPropertyTest, WeightedWithUnitWeightsEqualsSum)
{
    RandomGraph g(GetParam());
    const auto &c = GetParam();
    Tensor ones = Tensor::ones(
        {static_cast<int64_t>(g.src.size()), c.heads});
    gnnperf_assert(c.features % c.heads == 0, "bad case");
    Tensor weighted = spmmUMulESum(g.in, g.x, ones, c.heads);
    Tensor summed = spmmCopyUSum(g.in, g.x);
    expectClose(weighted, summed);
}

TEST_P(GraphPropertyTest, EdgeSoftmaxRowsSumToOne)
{
    RandomGraph g(GetParam());
    const auto &c = GetParam();
    Rng rng(c.seed + 3);
    Tensor logits = init::normal(
        {static_cast<int64_t>(g.src.size()), c.heads}, 0.0f, 2.0f,
        rng);
    Tensor alpha = edgeSoftmaxFused(g.in, logits);
    // Per destination and head: Σ alpha = 1 (when any in-edge).
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(c.nodes),
        std::vector<double>(static_cast<std::size_t>(c.heads), 0.0));
    for (std::size_t e = 0; e < g.dst.size(); ++e)
        for (int64_t h = 0; h < c.heads; ++h) {
            ASSERT_GT(alpha.at(static_cast<int64_t>(e), h), 0.0f);
            sums[static_cast<std::size_t>(g.dst[e])]
                [static_cast<std::size_t>(h)] +=
                alpha.at(static_cast<int64_t>(e), h);
        }
    for (int64_t v = 0; v < c.nodes; ++v) {
        if (g.in.ptr[v] == g.in.ptr[v + 1])
            continue;
        for (int64_t h = 0; h < c.heads; ++h)
            ASSERT_NEAR(sums[static_cast<std::size_t>(v)]
                            [static_cast<std::size_t>(h)], 1.0, 1e-4);
    }
}

TEST_P(GraphPropertyTest, DegreeSumConservation)
{
    // Column sums of A(x) equal degree-weighted column sums of x:
    // Σ_v A(x)[v] = Σ_e x[src_e] (conservation of mass).
    RandomGraph g(GetParam());
    Tensor agg = spmmCopyUSum(g.in, g.x);
    Tensor lhs = ops::sumRows(agg);
    Tensor gathered = ops::gatherRows(g.x, g.src);
    Tensor rhs = ops::sumRows(gathered);
    expectClose(lhs, rhs,
                2e-3f * static_cast<float>(GetParam().edges));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphSweep, GraphPropertyTest,
    ::testing::Values(GraphCase{1, 1, 4, 1, 11},
                      GraphCase{5, 3, 2, 2, 12},     // isolated nodes
                      GraphCase{16, 64, 8, 4, 13},
                      GraphCase{40, 40, 6, 2, 14},   // sparse
                      GraphCase{64, 512, 12, 4, 15}, // dense-ish
                      GraphCase{128, 256, 16, 8, 16},
                      GraphCase{7, 49, 9, 3, 17}),
    [](const auto &info) {
        return "n" + std::to_string(info.param.nodes) + "_e" +
               std::to_string(info.param.edges) + "_f" +
               std::to_string(info.param.features) + "_h" +
               std::to_string(info.param.heads);
    });

// ----- pooling properties ---------------------------------------------------

class PoolingPropertyTest
    : public ::testing::TestWithParam<std::vector<int64_t>>
{
};

TEST_P(PoolingPropertyTest, SegmentEqualsScatterPooling)
{
    const std::vector<int64_t> &sizes = GetParam();
    std::vector<int64_t> ptr{0};
    std::vector<int64_t> node_graph;
    for (std::size_t gi = 0; gi < sizes.size(); ++gi) {
        ptr.push_back(ptr.back() + sizes[gi]);
        for (int64_t i = 0; i < sizes[gi]; ++i)
            node_graph.push_back(static_cast<int64_t>(gi));
    }
    Rng rng(99);
    Tensor x = init::normal({ptr.back(), 5}, 0.0f, 1.0f, rng);

    Tensor seg = segmentMean(x, ptr);
    Tensor sums = ops::scatterAddRows(
        x, node_graph, static_cast<int64_t>(sizes.size()));
    Tensor counts = indexCounts(node_graph,
                                static_cast<int64_t>(sizes.size()));
    for (int64_t i = 0; i < counts.numel(); ++i)
        if (counts.at(i) == 0.0f)
            counts.set(i, 1.0f);
    Tensor scatter_pool = ops::divCols(sums, counts);
    expectClose(seg, scatter_pool);
}

TEST_P(PoolingPropertyTest, MeanOfConstantIsConstant)
{
    const std::vector<int64_t> &sizes = GetParam();
    std::vector<int64_t> ptr{0};
    for (int64_t s : sizes)
        ptr.push_back(ptr.back() + s);
    Tensor x = Tensor::full({ptr.back(), 3}, 2.5f);
    Tensor seg = segmentMean(x, ptr);
    for (std::size_t gi = 0; gi < sizes.size(); ++gi) {
        if (sizes[gi] == 0)
            continue;
        for (int64_t j = 0; j < 3; ++j)
            ASSERT_FLOAT_EQ(seg.at(static_cast<int64_t>(gi), j), 2.5f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SegmentSweep, PoolingPropertyTest,
    ::testing::Values(std::vector<int64_t>{1},
                      std::vector<int64_t>{3, 3, 3},
                      std::vector<int64_t>{1, 7, 2, 9},
                      std::vector<int64_t>{0, 4, 0, 5},  // empty segs
                      std::vector<int64_t>{20, 1, 1, 1, 40}),
    [](const auto &info) {
        std::string name = "segs";
        for (int64_t s : info.param)
            name += "_" + std::to_string(s);
        return name;
    });

// ----- collation properties -------------------------------------------------

class CollationPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CollationPropertyTest, BackendsAgreeOnAnyBatchComposition)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    GraphDataset ds = makeEnzymes(static_cast<uint64_t>(GetParam()),
                                  20);
    // Random subset in random order.
    std::vector<int64_t> order(20);
    for (int64_t i = 0; i < 20; ++i)
        order[static_cast<std::size_t>(i)] = i;
    rng.shuffle(order);
    const std::size_t take = 1 + rng.uniformInt(uint64_t{19});
    std::vector<const Graph *> members;
    for (std::size_t i = 0; i < take; ++i)
        members.push_back(&ds.graphs[static_cast<std::size_t>(
            order[i])]);

    BatchedGraph pyg = getBackend(FrameworkKind::PyG).collate(members);
    BatchedGraph dgl = getBackend(FrameworkKind::DGL).collate(members);
    ASSERT_EQ(pyg.numNodes, dgl.numNodes);
    ASSERT_EQ(pyg.edgeSrc, dgl.edgeSrc);
    ASSERT_EQ(pyg.edgeDst, dgl.edgeDst);
    ASSERT_EQ(pyg.graphPtr, dgl.graphPtr);
    ASSERT_EQ(pyg.graphLabels, dgl.graphLabels);
    for (int64_t i = 0; i < pyg.x.numel(); ++i)
        ASSERT_FLOAT_EQ(pyg.x.at(i), dgl.x.at(i));
    for (int64_t i = 0; i < pyg.numNodes; ++i)
        ASSERT_FLOAT_EQ(pyg.inDegrees.at(i), dgl.inDegrees.at(i));
}

INSTANTIATE_TEST_SUITE_P(RandomBatches, CollationPropertyTest,
                         ::testing::Range(1, 9));
