/**
 * @file
 * StatsRegistry tests: registration idempotence, bucket math, epoch
 * series/rollover, exporter output shape, hot-path concurrency, and
 * the PyG-vs-DGL edge-traffic gap the registry exists to expose.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "obs/stats.hh"
#include "obs/stats_export.hh"

using namespace gnnperf;

namespace {

/** Fresh-values registry with sampling on for the test's duration. */
class StatsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        stats::Registry::instance().resetValues();
        stats::setSamplingEnabled(true);
    }

    void
    TearDown() override
    {
        stats::setSamplingEnabled(false);
        stats::Registry::instance().resetValues();
    }
};

/** Number of occurrences of `needle` in `haystack`. */
std::size_t
countOf(const std::string &haystack, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = 0;
         (pos = haystack.find(needle, pos)) != std::string::npos;
         pos += needle.size())
        ++n;
    return n;
}

} // namespace

TEST_F(StatsTest, RegistrationIsIdempotent)
{
    stats::Counter &a = stats::counter("test.idempotent");
    stats::Counter &b = stats::counter("test.idempotent");
    EXPECT_EQ(&a, &b);
    stats::Gauge &g1 = stats::gauge("test.idempotent_gauge");
    stats::Gauge &g2 = stats::gauge("test.idempotent_gauge");
    EXPECT_EQ(&g1, &g2);
    stats::Distribution &d1 = stats::distribution("test.idempotent_dist");
    stats::Distribution &d2 = stats::distribution("test.idempotent_dist");
    EXPECT_EQ(&d1, &d2);
}

TEST_F(StatsTest, TypeMismatchIsFatal)
{
    stats::counter("test.typed");
    EXPECT_EXIT(stats::gauge("test.typed"),
                ::testing::ExitedWithCode(1), "registered as");
}

TEST_F(StatsTest, DisabledSamplingRecordsNothing)
{
    stats::Counter &c = stats::counter("test.disabled");
    stats::Gauge &g = stats::gauge("test.disabled_gauge");
    stats::Distribution &d = stats::distribution("test.disabled_dist");
    stats::setSamplingEnabled(false);
    c.inc(7);
    g.set(3.5);
    d.sample(42.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(d.snapshot().count, 0u);
    stats::setSamplingEnabled(true);
    c.inc(7);
    EXPECT_EQ(c.value(), 7u);
}

TEST_F(StatsTest, DistributionBucketMath)
{
    EXPECT_EQ(stats::Distribution::bucketIndex(-3.0), 0);
    EXPECT_EQ(stats::Distribution::bucketIndex(0.0), 0);
    EXPECT_EQ(stats::Distribution::bucketIndex(0.5), 0);
    EXPECT_EQ(stats::Distribution::bucketIndex(1.0), 1);
    EXPECT_EQ(stats::Distribution::bucketIndex(1.9), 1);
    EXPECT_EQ(stats::Distribution::bucketIndex(2.0), 2);
    EXPECT_EQ(stats::Distribution::bucketIndex(3.9), 2);
    EXPECT_EQ(stats::Distribution::bucketIndex(4.0), 3);
    EXPECT_EQ(stats::Distribution::bucketIndex(1024.0), 11);
    // The tail bucket absorbs everything >= 2^31.
    EXPECT_EQ(stats::Distribution::bucketIndex(1e300),
              stats::Distribution::kNumBuckets - 1);
}

TEST_F(StatsTest, DistributionBucketsNonFiniteSamples)
{
    // Regression: ilogb(+inf) is INT_MAX, so the pre-clamp bucket math
    // `1 + ilogb(v)` was signed overflow (UB, caught by UBSan) for
    // infinite samples. Infinities belong in the tail bucket; NaN
    // fails the `v >= 1` test and lands in bucket 0.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(stats::Distribution::bucketIndex(inf),
              stats::Distribution::kNumBuckets - 1);
    EXPECT_EQ(stats::Distribution::bucketIndex(-inf), 0);
    EXPECT_EQ(stats::Distribution::bucketIndex(
                  std::numeric_limits<double>::quiet_NaN()),
              0);
    EXPECT_EQ(stats::Distribution::bucketIndex(
                  std::numeric_limits<double>::max()),
              stats::Distribution::kNumBuckets - 1);

    stats::Distribution &d = stats::distribution("test.nonfinite_dist");
    stats::setSamplingEnabled(true);
    d.sample(inf);
    d.sample(2.0);
    stats::Distribution::Snapshot s = d.snapshot();
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.buckets[stats::Distribution::kNumBuckets - 1], 1u);
}

TEST_F(StatsTest, DistributionMoments)
{
    stats::Distribution &d = stats::distribution("test.moments");
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    auto snap = d.snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_DOUBLE_EQ(snap.min, 2.0);
    EXPECT_DOUBLE_EQ(snap.max, 6.0);
    EXPECT_DOUBLE_EQ(snap.mean, 4.0);
    // Population stddev of {2,4,6} = sqrt(8/3).
    EXPECT_NEAR(snap.stddev, std::sqrt(8.0 / 3.0), 1e-12);
    EXPECT_EQ(snap.buckets[2], 1u);  // 2.0 in [2,4)
    EXPECT_EQ(snap.buckets[3], 2u);  // 4.0 and 6.0 in [4,8)
}

TEST_F(StatsTest, SeriesRollover)
{
    stats::Registry &reg = stats::Registry::instance();
    stats::Counter &c = stats::counter("test.series");
    stats::Gauge &g = stats::gauge("test.series_gauge");

    c.inc(3);
    g.set(10.0);
    reg.rollEpoch();
    c.inc(5);
    g.set(20.0);
    reg.rollEpoch();

    EXPECT_EQ(reg.epochsRolled(), 2u);
    for (const auto &m : reg.snapshotAll()) {
        if (m.name == "test.series") {
            // Counters record per-epoch deltas.
            ASSERT_EQ(m.series.size(), 2u);
            EXPECT_DOUBLE_EQ(m.series[0], 3.0);
            EXPECT_DOUBLE_EQ(m.series[1], 5.0);
        } else if (m.name == "test.series_gauge") {
            // Gauges record end-of-epoch levels.
            ASSERT_EQ(m.series.size(), 2u);
            EXPECT_DOUBLE_EQ(m.series[0], 10.0);
            EXPECT_DOUBLE_EQ(m.series[1], 20.0);
        }
    }
}

TEST_F(StatsTest, LateRegistrationPadsSeries)
{
    stats::Registry &reg = stats::Registry::instance();
    stats::counter("test.early").inc();
    reg.rollEpoch();
    stats::Counter &late = stats::counter("test.late_registration");
    late.inc(4);
    reg.rollEpoch();
    for (const auto &m : reg.snapshotAll()) {
        if (m.name == "test.late_registration") {
            ASSERT_EQ(m.series.size(), 2u);
            EXPECT_DOUBLE_EQ(m.series[0], 0.0);
            EXPECT_DOUBLE_EQ(m.series[1], 4.0);
        }
    }
}

TEST_F(StatsTest, ZeroSampleEpochEmitsZeroDeltaNotStaleValue)
{
    stats::Registry &reg = stats::Registry::instance();
    stats::Counter &c = stats::counter("test.zero_epoch");
    stats::Distribution &d = stats::distribution("test.zero_epoch_dist");

    c.inc(7);
    d.sample(3.0);
    reg.rollEpoch();
    // Nothing sampled this epoch: the series must record zero
    // activity, not repeat the cumulative value from epoch 0.
    reg.rollEpoch();

    for (const auto &m : reg.snapshotAll()) {
        if (m.name == "test.zero_epoch") {
            ASSERT_EQ(m.series.size(), 2u);
            EXPECT_DOUBLE_EQ(m.series[0], 7.0);
            EXPECT_DOUBLE_EQ(m.series[1], 0.0);
        } else if (m.name == "test.zero_epoch_dist") {
            ASSERT_EQ(m.series.size(), 2u);
            EXPECT_DOUBLE_EQ(m.series[0], 1.0);
            EXPECT_DOUBLE_EQ(m.series[1], 0.0);
        }
    }
}

TEST_F(StatsTest, CsvStaysRectangularWithMidRunRegistration)
{
    stats::Registry &reg = stats::Registry::instance();
    stats::counter("test.csv_early").inc(2);
    reg.rollEpoch();
    // A counter born after epoch 0 has already rolled must backfill
    // its column instead of shearing the table.
    stats::counter("test.csv_midrun").inc(5);
    reg.rollEpoch();

    const std::string csv = stats::statsSeriesToCsv();
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < csv.size()) {
        const std::size_t nl = csv.find('\n', start);
        lines.push_back(csv.substr(start, nl - start));
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
    if (!lines.empty() && lines.back().empty())
        lines.pop_back();
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("test.csv_early"), std::string::npos);
    EXPECT_NE(lines[0].find("test.csv_midrun"), std::string::npos);
    const std::size_t commas = countOf(lines[0], ",");
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_EQ(countOf(lines[i], ","), commas) << lines[i];
}

TEST_F(StatsTest, RollEpochIsNoOpWhenDisabled)
{
    stats::Registry &reg = stats::Registry::instance();
    stats::setSamplingEnabled(false);
    reg.rollEpoch();
    reg.rollEpoch();
    EXPECT_EQ(reg.epochsRolled(), 0u);
    EXPECT_TRUE(reg.events().empty());
    stats::setSamplingEnabled(true);
}

TEST_F(StatsTest, JsonSnapshotShape)
{
    stats::counter("test.json_counter").inc(12);
    stats::distribution("test.json_dist").sample(5.0);
    const std::string json = stats::statsToJson();

    // Balanced braces, never negative depth.
    int depth = 0;
    for (char ch : json) {
        if (ch == '{')
            ++depth;
        if (ch == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"value\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"distribution\""),
              std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);

    // Pre-registered core metrics span every namespace even before any
    // subsystem runs.
    for (const char *name :
         {"\"dataloader.batches\"", "\"backend.dgl.dispatch_ops\"",
          "\"kernel.spmm.calls\"", "\"alloc.cuda.peak_bytes\"",
          "\"trainer.epochs\""})
        EXPECT_NE(json.find(name), std::string::npos) << name;
}

TEST_F(StatsTest, SeriesCsvShape)
{
    stats::Registry &reg = stats::Registry::instance();
    stats::counter("test.csv").inc(2);
    reg.rollEpoch();
    stats::counter("test.csv").inc(3);
    reg.rollEpoch();

    const std::string csv = stats::statsSeriesToCsv();
    ASSERT_FALSE(csv.empty());
    // Header plus one row per epoch, all with the same column count.
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < csv.size()) {
        const std::size_t nl = csv.find('\n', start);
        lines.push_back(csv.substr(start, nl - start));
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
    if (!lines.empty() && lines.back().empty())
        lines.pop_back();
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0].rfind("epoch,", 0), 0u);
    const auto commas = countOf(lines[0], ",");
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_EQ(countOf(lines[i], ","), commas) << lines[i];
    EXPECT_NE(lines[0].find("test.csv"), std::string::npos);
    EXPECT_EQ(lines[1].rfind("0,", 0), 0u);
    EXPECT_EQ(lines[2].rfind("1,", 0), 0u);
}

TEST_F(StatsTest, EventsJsonlOneLinePerEpoch)
{
    stats::Registry &reg = stats::Registry::instance();
    stats::counter("test.jsonl").inc();
    reg.rollEpoch();
    stats::counter("test.jsonl").inc();
    reg.rollEpoch();
    reg.rollEpoch();  // empty epoch still logs an event

    const std::string jsonl = stats::eventsToJsonl();
    EXPECT_EQ(countOf(jsonl, "\n"), 3u);
    EXPECT_EQ(countOf(jsonl, "\"event\": \"epoch\""), 3u);
    EXPECT_NE(jsonl.find("\"epoch\": 0"), std::string::npos);
    EXPECT_NE(jsonl.find("\"epoch\": 2"), std::string::npos);
    EXPECT_NE(jsonl.find("\"test.jsonl\": 1"), std::string::npos);
}

TEST_F(StatsTest, ConcurrentCountersAreExact)
{
    stats::Counter &c = stats::counter("test.concurrent");
    constexpr int kThreads = 4;
    constexpr int kIncs = 10000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (int i = 0; i < kIncs; ++i)
                c.inc();
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIncs);
}

TEST_F(StatsTest, ResetValuesKeepsAddresses)
{
    stats::Counter &c = stats::counter("test.reset");
    c.inc(9);
    stats::Registry::instance().rollEpoch();
    stats::Registry::instance().resetValues();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(stats::Registry::instance().epochsRolled(), 0u);
    EXPECT_TRUE(stats::Registry::instance().events().empty());
    EXPECT_EQ(&c, &stats::counter("test.reset"));
    c.inc(2);
    EXPECT_EQ(c.value(), 2u);
}

// The paper's finding #3 made measurable: DGL touches strictly more
// edges than PyG for the same GatedGCN training run (heterograph
// collation walks the edge list five times vs PyG's two, and the edge
// stream updates every edge's features), and moves more collation
// bytes (eager CSR/CSC materialisation).
TEST_F(StatsTest, DglTouchesMoreEdgesThanPygOnGatedGcn)
{
    const GraphDataset ds = makeEnzymes(5, 48);
    const FoldSplit fold =
        stratifiedKFold(ds.labels(), 8, 1).front();
    TrainOptions opts;
    opts.maxEpochs = 2;
    opts.batchSize = 16;
    opts.seed = 2;

    stats::Registry &reg = stats::Registry::instance();
    stats::Counter &pyg_edges =
        stats::counter("backend.pyg.edges_touched");
    stats::Counter &dgl_edges =
        stats::counter("backend.dgl.edges_touched");
    stats::Counter &pyg_bytes =
        stats::counter("backend.pyg.collate_bytes");
    stats::Counter &dgl_bytes =
        stats::counter("backend.dgl.collate_bytes");

    reg.resetValues();
    trainGraphTask(ModelKind::GatedGCN, getBackend(FrameworkKind::PyG),
                   ds, fold, opts);
    const uint64_t pyg_e = pyg_edges.value();
    const uint64_t pyg_b = pyg_bytes.value();

    reg.resetValues();
    trainGraphTask(ModelKind::GatedGCN, getBackend(FrameworkKind::DGL),
                   ds, fold, opts);
    const uint64_t dgl_e = dgl_edges.value();
    const uint64_t dgl_b = dgl_bytes.value();

    ASSERT_GT(pyg_e, 0u);
    ASSERT_GT(dgl_e, 0u);
    EXPECT_GT(dgl_e, pyg_e);
    EXPECT_GT(dgl_b, pyg_b);
}
