/**
 * @file
 * Trace export tests: Chrome JSON validity/shape, CSV contents,
 * kernel summaries.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "common/fs.hh"
#include "common/json.hh"
#include "device/allocator.hh"
#include "device/trace_export.hh"
#include "obs/exec_trace.hh"
#include "obs/spans.hh"

using namespace gnnperf;

namespace {

Trace
sampleTrace()
{
    Trace trace;
    trace.addHost({"collate", HostOpKind::MetaBuild, 100.0, 4.0,
                   Phase::DataLoading, -1});
    trace.addKernel({"sgemm", 2e6, 1e5, Phase::Forward, 0});
    trace.addKernel({"sgemm", 4e6, 2e5, Phase::Forward, 1});
    trace.addKernel({"relu", 1e3, 8e3, Phase::Forward, 1});
    trace.addKernel({"adam_update", 1e4, 4e4, Phase::Update, -1});
    return trace;
}

} // namespace

TEST(ChromeTrace, BalancedBracketsAndTracks)
{
    std::string json = traceToChromeJson(sampleTrace(),
                                         CostModel::defaultModel(),
                                         30e-6);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');
    int braces = 0;
    for (char c : json) {
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        ASSERT_GE(braces, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_NE(json.find("\"name\":\"host\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"gpu stream\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"sgemm\""), std::string::npos);
    EXPECT_NE(json.find("launch sgemm"), std::string::npos);
}

TEST(ChromeTrace, EventCountMatchesTrace)
{
    std::string json = traceToChromeJson(sampleTrace(),
                                         CostModel::defaultModel(),
                                         30e-6);
    // Per kernel: launch slice + kernel slice; per host op: one
    // slice; plus 3 metadata events.
    std::size_t events = 0;
    for (std::size_t pos = 0;
         (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
         ++pos)
        ++events;
    EXPECT_EQ(events, 4u * 2u + 1u);
}

TEST(ChromeTrace, TimestampsMonotoneOnHostTrack)
{
    std::string json = traceToChromeJson(sampleTrace(),
                                         CostModel::defaultModel(),
                                         30e-6);
    double last_ts = -1.0;
    for (std::size_t pos = 0;
         (pos = json.find("\"tid\":1,\"ts\":", pos)) !=
         std::string::npos; ++pos) {
        const double ts = std::strtod(json.c_str() + pos + 14, nullptr);
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
    }
    EXPECT_GT(last_ts, 0.0);
}

TEST(TimelineCsv, ContainsAllPhasesAndTotal)
{
    TimelineResult t = Timeline::replay(sampleTrace(),
                                        CostModel::defaultModel(),
                                        30e-6);
    std::string csv = timelineToCsv(t);
    EXPECT_NE(csv.find("data_loading,"), std::string::npos);
    EXPECT_NE(csv.find("forward,"), std::string::npos);
    EXPECT_NE(csv.find("update,"), std::string::npos);
    EXPECT_NE(csv.find("total,"), std::string::npos);
    // Header + 6 phases + total = 8 lines.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 8);
}

TEST(KernelSummary, AggregatesByName)
{
    auto rows = summarizeKernels(sampleTrace(),
                                 CostModel::defaultModel());
    ASSERT_EQ(rows.size(), 3u);
    const KernelSummaryRow *sgemm = nullptr;
    for (const auto &row : rows)
        if (row.name == "sgemm")
            sgemm = &row;
    ASSERT_NE(sgemm, nullptr);
    EXPECT_EQ(sgemm->count, 2u);
    EXPECT_DOUBLE_EQ(sgemm->flops, 6e6);
    EXPECT_DOUBLE_EQ(sgemm->bytes, 3e5);
    EXPECT_GT(sgemm->gpuSeconds, 0.0);
}

TEST(KernelSummary, SortedByGpuTimeDescending)
{
    auto rows = summarizeKernels(sampleTrace(),
                                 CostModel::defaultModel());
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_GE(rows[i - 1].gpuSeconds, rows[i].gpuSeconds);
}

TEST(KernelSummary, CsvRoundTrip)
{
    auto rows = summarizeKernels(sampleTrace(),
                                 CostModel::defaultModel());
    std::string csv = kernelSummaryToCsv(rows);
    EXPECT_NE(csv.find("kernel,count,flops,bytes,gpu_seconds"),
              std::string::npos);
    EXPECT_NE(csv.find("sgemm,2,"), std::string::npos);
}

TEST(ChromeTrace, EscapesSpecialCharactersInNames)
{
    Trace trace;
    trace.addKernel({"odd\"name\\kernel", 1e3, 1e3, Phase::Forward, 0});
    trace.addHost({"host\nop", HostOpKind::MetaBuild, 1.0, 1.0,
                   Phase::Other, -1});
    std::string json = traceToChromeJson(trace,
                                         CostModel::defaultModel(),
                                         30e-6);
    // Raw quotes/backslashes/newlines never survive into JSON strings.
    EXPECT_NE(json.find("odd\\\"name\\\\kernel"), std::string::npos);
    EXPECT_NE(json.find("launch odd\\\"name\\\\kernel"),
              std::string::npos);
    EXPECT_NE(json.find("host\\nop"), std::string::npos);
    EXPECT_EQ(json.find("host\nop"), std::string::npos);
    // Still structurally balanced.
    int braces = 0;
    for (char c : json) {
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        ASSERT_GE(braces, 0);
    }
    EXPECT_EQ(braces, 0);
}

TEST(KernelSummary, CsvEscapesNames)
{
    Trace trace;
    trace.addKernel({"kernel,with\"comma", 1e3, 1e3, Phase::Forward, 0});
    auto rows = summarizeKernels(trace, CostModel::defaultModel());
    std::string csv = kernelSummaryToCsv(rows);
    // RFC 4180: field quoted, embedded quote doubled.
    EXPECT_NE(csv.find("\"kernel,with\"\"comma\",1,"),
              std::string::npos);
}

TEST(WriteFile, RoundTrip)
{
    const std::string path = "/tmp/gnnperf_test_writefile.txt";
    writeFile(path, "hello\nworld\n");
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "hello\nworld\n");
    std::remove(path.c_str());
}

TEST(WriteFileDeathTest, FatalOnUnwritablePath)
{
    // A directory can never be opened for writing: the single shared
    // artifact writer must die loudly, not skip silently.
    EXPECT_DEATH(writeFile("/tmp", "x"), "cannot open");
}

TEST(ChromeTrace, ParsesWithCommonJson)
{
    const std::string json = traceToChromeJson(
        sampleTrace(), CostModel::defaultModel(), 30e-6);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, &error)) << error;
    ASSERT_TRUE(doc.isArray());
    // 9 slices (see EventCountMatchesTrace) + 3 metadata events.
    EXPECT_EQ(doc.array.size(), 12u);
    for (const JsonValue &ev : doc.array) {
        EXPECT_TRUE(ev.at("name").isString());
        EXPECT_TRUE(ev.at("ph").isString());
        EXPECT_TRUE(ev.at("pid").isNumber());
    }
}

TEST(ExecTraceJson, MergedTraceParsesWithAllTrackGroups)
{
    ExecTrace &trace = ExecTrace::instance();
    trace.enable();
    {
        HostSpan span("unit-span");
        CachingAllocator alloc(DeviceKind::Cuda);
        MemoryBlock *block = alloc.allocate(4096);
        alloc.release(block);
        alloc.emptyCache();
    }
    trace.captureSimulated(sampleTrace(), 30e-6, "unit");
    trace.captureSimulated(sampleTrace(), 30e-6, "unit");
    trace.disable();
    const std::string json = trace.toJson();
    const std::string table = trace.peakTable(DeviceKind::Cuda);
    trace.reset();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, &error)) << error;
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    // All three synchronized views are present: pid 1 simulated,
    // pid 2 real host spans, pid 3 memory timeline.
    std::set<int> pids;
    for (const JsonValue &ev : events.array)
        pids.insert(static_cast<int>(ev.at("pid").asNumber()));
    EXPECT_TRUE(pids.count(1)) << "simulated track missing";
    EXPECT_TRUE(pids.count(2)) << "host span track missing";
    EXPECT_TRUE(pids.count(3)) << "memory track missing";

    EXPECT_EQ(doc.at("meta").at("simulated_epochs").asNumber(), 2.0);
    EXPECT_TRUE(doc.at("stats_peaks").at("cuda").at("logical")
                    .isNumber());
    const JsonValue &cuda_peak =
        doc.at("peak_attribution").at("cuda").at("logical");
    EXPECT_TRUE(cuda_peak.at("valid").isBool());
    EXPECT_TRUE(cuda_peak.at("top_blocks").isArray());

    // The human-readable peak report names the peak and its owner.
    EXPECT_NE(table.find("peak"), std::string::npos);
    EXPECT_NE(table.find("block #"), std::string::npos);
}

TEST(ExecTraceJson, SimulatedEpochsLayOutBackToBack)
{
    ExecTrace &trace = ExecTrace::instance();
    trace.enable();
    trace.captureSimulated(sampleTrace(), 30e-6, "unit");
    trace.captureSimulated(sampleTrace(), 30e-6, "unit");
    trace.disable();
    const std::string json = trace.toJson();
    trace.reset();

    JsonValue doc;
    ASSERT_TRUE(parseJson(json, doc, nullptr));
    // Equal epochs: the second copy of every slice starts after the
    // first epoch ends, so per-(pid,tid) timestamps never collide.
    std::set<std::pair<double, double>> seen;
    bool collision = false;
    for (const JsonValue &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").str != "X" ||
            static_cast<int>(ev.at("pid").asNumber()) != 1)
            continue;
        const auto key = std::make_pair(ev.at("tid").asNumber(),
                                        ev.at("ts").asNumber());
        collision = collision || !seen.insert(key).second;
    }
    EXPECT_FALSE(collision);
}

TEST(EnumNames, PhaseNamesExhaustive)
{
    EXPECT_EQ(kNumPhases, 6);
    const char *expected[kNumPhases] = {
        "data_loading", "forward", "backward",
        "update",       "evaluation", "other",
    };
    for (int i = 0; i < kNumPhases; ++i)
        EXPECT_STREQ(phaseName(static_cast<Phase>(i)), expected[i]);
}

TEST(EnumNames, HostOpKindNamesExhaustive)
{
    EXPECT_EQ(kNumHostOpKinds, 5);
    const char *expected[kNumHostOpKinds] = {
        "memcpy", "indexed_gather", "meta_build", "h2d_transfer",
        "dispatch",
    };
    for (int i = 0; i < kNumHostOpKinds; ++i)
        EXPECT_STREQ(hostOpKindName(static_cast<HostOpKind>(i)),
                     expected[i]);
}

TEST(JsonToString, RoundTripIsLossless)
{
    const std::string src =
        "{\"a\":[1,2.5,true,null,\"s\\n\"],\"b\":{\"c\":-3},"
        "\"a\":\"dup\"}";
    JsonValue doc;
    ASSERT_TRUE(parseJson(src, doc, nullptr));
    const std::string once = jsonToString(doc);
    // Integers stay integers, key order and duplicates survive.
    EXPECT_EQ(once, src);
    JsonValue again;
    ASSERT_TRUE(parseJson(once, again, nullptr));
    EXPECT_EQ(jsonToString(again), once);
}
