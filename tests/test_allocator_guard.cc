/**
 * @file
 * Allocator guard-layer tests: redzone canaries catch overruns and
 * underruns on release, poison fills catch use-after-free writes into
 * pooled memory (on reuse, trim, emptyCache, and the explicit
 * checkGuards sweep), and — just as load-bearing — the whole layer is
 * byte-identical-off when checks are disabled.
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "common/checks.hh"
#include "device/allocator.hh"
#include "device/device.hh"

using namespace gnnperf;

namespace {

/** RAII check-level override; restores the previous level on exit. */
class ChecksScope
{
  public:
    explicit ChecksScope(bool on) : prev_(checksEnabled())
    {
        setChecksEnabled(on);
    }
    ~ChecksScope() { setChecksEnabled(prev_); }

  private:
    bool prev_;
};

} // namespace

TEST(AllocatorGuard, GuardedBlockGeometry)
{
    ChecksScope checks(true);
    DirectAllocator alloc(DeviceKind::Cuda);
    MemoryBlock *b = alloc.allocate(100);
    EXPECT_EQ(b->guard, Allocator::kRedzone);
    EXPECT_EQ(b->requested, 100u);
    EXPECT_EQ(b->data(), b->ptr + Allocator::kRedzone);
    alloc.release(b);
}

TEST(AllocatorGuard, CleanLifecyclePassesDirectAndCaching)
{
    ChecksScope checks(true);
    DirectAllocator direct(DeviceKind::Cuda);
    MemoryBlock *d = direct.allocate(333);
    d->data()[0] = 'x';
    d->data()[332] = 'y';
    direct.release(d);

    CachingAllocator caching(DeviceKind::Cuda);
    MemoryBlock *c = caching.allocate(333);
    c->data()[0] = 'x';
    c->data()[332] = 'y';
    caching.release(c);
    EXPECT_GT(caching.checkGuards(), 0u);
    caching.emptyCache();
}

TEST(AllocatorGuard, RedzoneOverrunDiesOnRelease)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            DirectAllocator alloc(DeviceKind::Cuda);
            MemoryBlock *b = alloc.allocate(100);
            // One byte past the requested size: into the tail canary.
            b->data()[100] = 0;
            alloc.release(b);
        },
        "redzone overrun");
}

TEST(AllocatorGuard, RedzoneUnderrunDiesOnRelease)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            DirectAllocator alloc(DeviceKind::Cuda);
            MemoryBlock *b = alloc.allocate(100);
            b->data()[-1] = 0;
            alloc.release(b);
        },
        "redzone underrun");
}

TEST(AllocatorGuard, CachingReleaseVerifiesRedzonesToo)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            CachingAllocator alloc(DeviceKind::Cuda);
            MemoryBlock *b = alloc.allocate(100);
            b->data()[100] = 0;
            alloc.release(b);
        },
        "redzone overrun");
}

TEST(AllocatorGuard, UseAfterFreeDiesOnReuse)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            CachingAllocator alloc(DeviceKind::Cuda);
            MemoryBlock *b = alloc.allocate(256);
            char *stale = b->data();
            alloc.release(b);
            // Write through the dangling pointer into pooled memory;
            // the next allocation of the same size finds the block and
            // must refuse to hand it out.
            stale[10] = 0;
            alloc.allocate(256);
        },
        "poison torn");
}

TEST(AllocatorGuard, UseAfterFreeDiesOnEmptyCache)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            CachingAllocator alloc(DeviceKind::Cuda);
            MemoryBlock *b = alloc.allocate(256);
            char *stale = b->data();
            alloc.release(b);
            stale[10] = 0;
            alloc.emptyCache();
        },
        "poison torn");
}

TEST(AllocatorGuard, UseAfterFreeDiesOnTrim)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            CachingAllocator alloc(DeviceKind::Cuda);
            MemoryBlock *b = alloc.allocate(256);
            char *stale = b->data();
            alloc.release(b);
            stale[10] = 0;
            // Two trims: the first marks the generation, the second
            // drops (and therefore poison-verifies) the stale segment.
            alloc.trim();
            alloc.trim();
        },
        "poison torn");
}

TEST(AllocatorGuard, UseAfterFreeDiesOnCheckGuardsSweep)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            CachingAllocator alloc(DeviceKind::Cuda);
            MemoryBlock *b = alloc.allocate(256);
            char *stale = b->data();
            alloc.release(b);
            stale[10] = 0;
            alloc.checkGuards();
        },
        "poison torn");
}

TEST(AllocatorGuard, DeviceManagerSweepCoversActiveAllocators)
{
    ChecksScope checks(true);
    // The process-exit sweep walks every allocator of both devices;
    // with nothing corrupted it must pass and report the blocks it
    // verified (possibly zero if no pool holds cached blocks).
    DeviceManager::instance().checkGuards();
}

TEST(AllocatorGuard, ChecksOffIsByteIdentical)
{
    ChecksScope checks(false);
    CachingAllocator alloc(DeviceKind::Cuda);
    const std::size_t quantum = CachingAllocator::kQuantum;

    MemoryBlock *b = alloc.allocate(100);
    EXPECT_EQ(b->guard, 0u);
    EXPECT_EQ(b->ptr, b->data());
    EXPECT_FALSE(b->poisoned);
    // Reserved bytes are exactly the quantum-rounded request: no
    // redzones in the accounting, so unchecked stats are identical to
    // a build without the guard layer.
    EXPECT_EQ(b->size, quantum);
    alloc.release(b);
    EXPECT_EQ(alloc.cachedBytes(), quantum);
    EXPECT_EQ(alloc.checkGuards(), 0u);  // nothing poisoned, no sweep
    alloc.emptyCache();
}

TEST(AllocatorGuard, GuardedAccountingKeepsLogicalBytesFaithful)
{
    ChecksScope checks(true);
    DeviceManager &dm = DeviceManager::instance();
    const std::size_t base = dm.stats(DeviceKind::Cuda).currentBytes;

    DirectAllocator alloc(DeviceKind::Cuda);
    MemoryBlock *b = alloc.allocate(1000);
    // Logical accounting never includes guard bytes (the Fig. 4 line
    // stays faithful); reserved accounting does grow by them.
    EXPECT_EQ(dm.stats(DeviceKind::Cuda).currentBytes, base + 1000);
    alloc.release(b);
    EXPECT_EQ(dm.stats(DeviceKind::Cuda).currentBytes, base);
}

TEST(AllocatorGuard, MidRunToggleReleasesWithAllocationGeometry)
{
    // A block allocated guarded and released after checks were turned
    // off must still verify/poison with the geometry it carries — and
    // vice versa an unguarded block released under checks must not be
    // redzone-verified. Both directions, no aborts.
    CachingAllocator alloc(DeviceKind::Cuda);

    setChecksEnabled(true);
    MemoryBlock *guarded = alloc.allocate(128);
    setChecksEnabled(false);
    MemoryBlock *bare = alloc.allocate(4096);
    EXPECT_EQ(bare->guard, 0u);
    EXPECT_EQ(guarded->guard, Allocator::kRedzone);
    alloc.release(guarded);

    setChecksEnabled(true);
    alloc.release(bare);
    setChecksEnabled(false);
    alloc.emptyCache();
}
