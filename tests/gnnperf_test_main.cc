/**
 * @file
 * Shared test main: RUN_ALL_TESTS plus a process-exit memory audit.
 *
 * Every test binary links this instead of gtest_main. The audit is
 * registered with atexit() *before* any test runs: every function-
 * local static a test constructs afterwards (cached datasets, kernel
 * scratch workspaces) registers its destructor later and is therefore
 * destroyed earlier, so intentional static caches are gone by the
 * time the audit fires and only true leaks survive to it:
 *
 *  1. Workspace::releaseAll() — drain any still-registered kernel
 *     scratch so it cannot mask a real leak;
 *  2. DeviceManager::checkGuards() — verify the poison fill of every
 *     cached block (checked builds; a no-op set of sweeps otherwise);
 *  3. MemoryStats::leakCheck(0) on both devices — any MemoryBlock
 *     still live is a leak and aborts the binary, so a test that
 *     forgets to release storage fails even when its assertions pass.
 *
 * See docs/CORRECTNESS.md.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "device/device.hh"
#include "graph/workspace.hh"

namespace {

void
exitAudit()
{
    gnnperf::Workspace::releaseAll();
    gnnperf::DeviceManager &dm = gnnperf::DeviceManager::instance();
    dm.checkGuards();
    dm.stats(gnnperf::DeviceKind::Host).leakCheck(0, "test process (host)");
    dm.stats(gnnperf::DeviceKind::Cuda).leakCheck(0, "test process (cuda)");
}

} // namespace

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    std::atexit(exitAudit);
    return RUN_ALL_TESTS();
}
