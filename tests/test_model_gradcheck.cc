/**
 * @file
 * Numerical gradient checks through entire models: every parameter's
 * backpropagated gradient is compared against central differences of
 * the cross-entropy loss on a tiny batch. This pins down the whole
 * chain — conv layers, batch norm, readout, classifier — per model
 * and per framework path.
 */

#include <gtest/gtest.h>

#include "autograd/grad_check.hh"
#include "backends/backend.hh"
#include "data/tu_dataset.hh"
#include "models/model_factory.hh"
#include "nn/loss.hh"

using namespace gnnperf;

namespace {

using GridParam = std::tuple<ModelKind, FrameworkKind>;

BatchedGraph
tinyBatch(FrameworkKind fw)
{
    static GraphDataset ds = makeEnzymes(77, 6);
    std::vector<const Graph *> graphs;
    for (const Graph &g : ds.graphs)
        graphs.push_back(&g);
    return getBackend(fw).collate(graphs);
}

} // namespace

class ModelGradCheckTest : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(ModelGradCheckTest, AllParameters)
{
    auto [kind, fw] = GetParam();
    BatchedGraph batch = tinyBatch(fw);

    ModelConfig cfg;
    cfg.inFeatures = 18;
    cfg.hidden = 8;
    cfg.numClasses = 6;
    cfg.numLayers = 1;
    cfg.heads = 2;
    cfg.kernels = 2;
    cfg.graphTask = true;
    cfg.batchNorm = false;  // batch statistics make FD noisy; BN has
                            // its own grad check in test_nn_modules
    cfg.residual = false;
    cfg.seed = 3;
    auto model = makeModel(kind, getBackend(fw), cfg);
    model->train(true);

    // GIN constructs BN internally; run it in eval mode so finite
    // differences see a locally smooth function, while keeping the
    // overall train-mode dropout path (dropout = 0 here).
    if (kind == ModelKind::GIN)
        model->train(false);

    std::vector<Var> leaves = model->parameters();
    auto r = autograd::checkGradients(
        [&] {
            return nn::crossEntropy(model->forward(batch),
                                    batch.graphLabels);
        },
        leaves, 1e-2f, 0.12);  // fp32 forward + ReLU kinks: coarse FD
    EXPECT_TRUE(r.ok) << modelName(kind) << "/" << frameworkName(fw)
                      << " max rel err " << r.maxRelError;
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsBothFrameworks, ModelGradCheckTest,
    ::testing::Combine(::testing::ValuesIn(allModels()),
                       ::testing::Values(FrameworkKind::PyG,
                                         FrameworkKind::DGL)),
    [](const auto &info) {
        return std::string(modelName(std::get<0>(info.param))) + "_" +
               frameworkName(std::get<1>(info.param));
    });
