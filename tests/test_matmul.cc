/**
 * @file
 * Matrix multiplication tests: correctness against a reference
 * triple loop, transposed variants, and shapes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "tensor/init.hh"
#include "tensor/matmul.hh"
#include "tensor/ops.hh"

using namespace gnnperf;

namespace {

Tensor
referenceMatmul(const Tensor &a, const Tensor &b)
{
    const int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
    Tensor c = Tensor::zeros({n, m});
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j) {
            double s = 0.0;
            for (int64_t kk = 0; kk < k; ++kk)
                s += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
            c.set(i, j, static_cast<float>(s));
        }
    return c;
}

void
expectClose(const Tensor &a, const Tensor &b, float tol = 1e-4f)
{
    ASSERT_TRUE(a.sameShape(b));
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_NEAR(a.at(i), b.at(i), tol) << "at " << i;
}

} // namespace

TEST(Matmul, SmallKnownValues)
{
    Tensor a = Tensor::fromVector({1, 2, 3, 4}, {2, 2});
    Tensor b = Tensor::fromVector({5, 6, 7, 8}, {2, 2});
    Tensor c = ops::matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matmul, RectangularMatchesReference)
{
    Rng rng(3);
    Tensor a = init::normal({17, 9}, 0.0f, 1.0f, rng);
    Tensor b = init::normal({9, 23}, 0.0f, 1.0f, rng);
    expectClose(ops::matmul(a, b), referenceMatmul(a, b));
}

TEST(Matmul, IdentityIsNeutral)
{
    Rng rng(5);
    Tensor a = init::normal({6, 6}, 0.0f, 1.0f, rng);
    Tensor eye = Tensor::zeros({6, 6});
    for (int64_t i = 0; i < 6; ++i)
        eye.set(i, i, 1.0f);
    expectClose(ops::matmul(a, eye), a);
    expectClose(ops::matmul(eye, a), a);
}

TEST(Matmul, TransAMatchesExplicitTranspose)
{
    Rng rng(7);
    Tensor a = init::normal({11, 5}, 0.0f, 1.0f, rng);
    Tensor b = init::normal({11, 8}, 0.0f, 1.0f, rng);
    Tensor expected = ops::matmul(ops::transpose(a), b);
    expectClose(ops::matmulTransA(a, b), expected);
}

TEST(Matmul, TransBMatchesExplicitTranspose)
{
    Rng rng(9);
    Tensor a = init::normal({7, 13}, 0.0f, 1.0f, rng);
    Tensor b = init::normal({10, 13}, 0.0f, 1.0f, rng);
    Tensor expected = ops::matmul(a, ops::transpose(b));
    expectClose(ops::matmulTransB(a, b), expected);
}

TEST(Matmul, ZeroSizedDims)
{
    Tensor a = Tensor::zeros({0, 4});
    Tensor b = Tensor::zeros({4, 3});
    Tensor c = ops::matmul(a, b);
    EXPECT_EQ(c.dim(0), 0);
    EXPECT_EQ(c.dim(1), 3);
}

TEST(Matmul, SparseInputSkipPreservesResult)
{
    // The kernel skips zero a-elements; results must be identical to
    // the reference for sparse inputs (Cora features are mostly 0).
    Rng rng(11);
    Tensor a = Tensor::zeros({20, 30});
    for (int64_t i = 0; i < a.numel(); ++i)
        if (rng.bernoulli(0.05))
            a.set(i, static_cast<float>(rng.normal()));
    Tensor b = init::normal({30, 6}, 0.0f, 1.0f, rng);
    expectClose(ops::matmul(a, b), referenceMatmul(a, b));
}

TEST(Init, GlorotBounds)
{
    Rng rng(13);
    Tensor w = init::glorotUniform(100, 50, rng);
    const float bound = std::sqrt(6.0f / 150.0f);
    for (int64_t i = 0; i < w.numel(); ++i) {
        ASSERT_GE(w.at(i), -bound);
        ASSERT_LE(w.at(i), bound);
    }
}

TEST(Init, NormalMoments)
{
    Rng rng(15);
    Tensor w = init::normal({200, 50}, 1.0f, 2.0f, rng);
    double sum = 0.0;
    for (int64_t i = 0; i < w.numel(); ++i)
        sum += w.at(i);
    EXPECT_NEAR(sum / w.numel(), 1.0, 0.05);
}
